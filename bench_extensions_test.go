package repro

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/disease"
	"repro/internal/epihiper"
	"repro/internal/metapop"
	"repro/internal/stats"
	"repro/internal/synthpop"
)

// BenchmarkNationalMetapop runs the sparse 3,142-county national SEIR —
// the "cheap to run" property that lets the metapopulation model calibrate
// inside the MCMC loop.
func BenchmarkNationalMetapop(b *testing.B) {
	model, err := metapop.NewUS(metapop.DefaultNationalConfig())
	if err != nil {
		b.Fatal(err)
	}
	p := metapop.Params{Beta: 0.45, Sigma: 1.0 / 3, Gamma: 1.0 / 5, Detect: 0.2}
	seeds := []metapop.Seed{{CountyIndex: 0, Infectious: 50}}
	b.ResetTimer()
	var final float64
	for i := 0; i < b.N; i++ {
		traj, err := model.Run(p, 200, seeds, nil)
		if err != nil {
			b.Fatal(err)
		}
		final = traj.StateCumConfirmed()[199]
	}
	b.ReportMetric(float64(len(model.Counties)), "counties")
	b.ReportMetric(final, "final_cases")
}

// BenchmarkPartitionToleranceSweep measures the ε knob of the paper's
// partitioner: looser tolerance packs faster but less evenly.
func BenchmarkPartitionToleranceSweep(b *testing.B) {
	net := benchNetwork(b, "CA", 5000)
	for _, eps := range []float64{0.001, 0.01, 0.1, 0.5} {
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			var parts []synthpop.Partition
			for i := 0; i < b.N; i++ {
				parts = net.PartitionNodes(16, eps)
			}
			b.ReportMetric(synthpop.PartitionImbalance(parts), "imbalance")
			b.ReportMetric(float64(len(parts)), "partitions")
		})
	}
}

// BenchmarkBinaryVsCSVNetworkIO compares the two on-disk network formats
// ("the contact network ... is in csv or binary format").
func BenchmarkBinaryVsCSVNetworkIO(b *testing.B) {
	net := benchNetwork(b, "VA", 5000)
	var binBuf, csvBuf bytes.Buffer
	if err := synthpop.WriteNetworkBinary(&binBuf, net); err != nil {
		b.Fatal(err)
	}
	if err := synthpop.WriteNetworkCSV(&csvBuf, net); err != nil {
		b.Fatal(err)
	}
	binData := binBuf.Bytes()
	csvData := csvBuf.Bytes()
	b.Run("binary-read", func(b *testing.B) {
		b.SetBytes(int64(len(binData)))
		for i := 0; i < b.N; i++ {
			if _, err := synthpop.ReadNetworkBinary(bytes.NewReader(binData)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("csv-read", func(b *testing.B) {
		b.SetBytes(int64(len(csvData)))
		for i := 0; i < b.N; i++ {
			if _, err := synthpop.ReadNetworkCSV(bytes.NewReader(csvData), net.Persons, net.Region); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary-write", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := synthpop.WriteNetworkBinary(&buf, net); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEnsembleInterventions measures the Appendix D action-ensemble
// machinery against hand-rolled interventions: a nightly vaccination
// campaign expressed both ways.
func BenchmarkEnsembleInterventions(b *testing.B) {
	net := benchNetwork(b, "VA", 5000)
	run := func(b *testing.B, ivs []epihiper.Intervention) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			sim, err := epihiper.New(epihiper.Config{
				Model: disease.COVID19(), Network: net, Days: 60,
				Parallelism: 4, Seed: 5,
				Seeds:         seedLargest(net, 10),
				Interventions: ivs,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sim.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("ensemble", func(b *testing.B) {
		run(b, []epihiper.Intervention{&epihiper.EnsembleIntervention{
			Label:   "vaccinate",
			Trigger: epihiper.OnDay(10),
			Ensemble: epihiper.ActionEnsemble{
				SampleFrac: 0.3,
				Sampled:    epihiper.OpVaccinate(),
			},
		}})
	})
	b.Run("handrolled", func(b *testing.B) {
		run(b, []epihiper.Intervention{&epihiper.Triggered{
			Label: "vaccinate",
			When:  epihiper.OnDay(10),
			Do: func(s *epihiper.Sim, day int, r *stats.RNG) {
				for pid := int32(0); int(pid) < s.Network().NumNodes(); pid++ {
					if r.Bool(0.3) {
						s.SetSusceptibility(pid, 0)
					}
				}
			},
		}})
	})
}
