// Command epirun executes one ⟨cell, region⟩ EpiHiper simulation and writes
// the raw transition log and the county-level summary to files — the unit
// of work the nightly pipeline schedules thousands of times.
//
// Usage:
//
//	epirun -state VA -days 90 -tau 0.25 -symp 0.65 -sh 0.45 -vhi 0.5 \
//	       -scale 5000 -seed 42 -out /tmp/va
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/core"
	"repro/internal/disease"
	"repro/internal/epihiper"
	"repro/internal/obs"
	"repro/internal/output"
	"repro/internal/synthpop"
	"repro/internal/transfer"
)

func main() {
	state := flag.String("state", "VA", "region postal code")
	days := flag.Int("days", 90, "simulation horizon in days")
	tau := flag.Float64("tau", 0.18, "disease transmissibility (TAU)")
	symp := flag.Float64("symp", 0.65, "symptomatic fraction (SYMP)")
	sh := flag.Float64("sh", 0.45, "stay-at-home compliance")
	vhi := flag.Float64("vhi", 0.5, "voluntary home isolation compliance")
	shStart := flag.Int("sh-start", 15, "stay-at-home start day")
	scale := flag.Int("scale", 5000, "population scale (1:N)")
	seed := flag.Uint64("seed", 42, "random seed")
	par := flag.Int("par", 4, "processing units (partitions); superseded by -shards when set")
	shards := flag.Int("shards", 0, "shard processing units, each owning a disjoint node range (0 = -par, or GOMAXPROCS when -par is 0)")
	outDir := flag.String("out", "", "output directory (omit to skip files)")
	configPath := flag.String("config", "", "JSON simulation configuration (overrides the individual flags; see internal/epihiper JSONConfig)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof format)")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	metricsDump := flag.String("metrics-dump", "", `dump Prometheus text metrics to FILE at the end of the run ("-" = stdout)`)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	var jsonCfg *epihiper.JSONConfig
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			log.Fatal(err)
		}
		jsonCfg, err = epihiper.ParseJSONConfig(data)
		if err != nil {
			log.Fatal(err)
		}
		*state = jsonCfg.Region
		*days = jsonCfg.Days
		if jsonCfg.Seed != 0 {
			*seed = jsonCfg.Seed
		}
		if jsonCfg.Parallelism > 0 {
			*par = jsonCfg.Parallelism
		}
		if jsonCfg.Shards > 0 && *shards == 0 {
			*shards = jsonCfg.Shards
		}
	}

	// The shard count is the parallelism: each shard owns its node range
	// and runs every phase of the tick. -shards (or the config's "shards")
	// wins; -par is the legacy spelling; with neither, use every core.
	effShards := *shards
	if effShards <= 0 {
		effShards = *par
	}
	if effShards <= 0 {
		effShards = runtime.GOMAXPROCS(0)
	}

	st, err := synthpop.StateByCode(*state)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generating %s network at 1:%d scale...\n", st.Name, *scale)
	cfg := synthpop.DefaultConfig(*seed)
	cfg.Scale = *scale
	net, err := synthpop.Generate(st, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d persons, %d contact edges (mean degree %.1f)\n",
		net.NumNodes(), net.NumEdges(), net.MeanDegree())

	pr := core.Params{TAU: *tau, SYMP: *symp, SHCompliance: *sh, VHICompliance: *vhi}
	model, err := pr.ApplyToModel(disease.COVID19())
	if err != nil {
		log.Fatal(err)
	}

	logRec := &output.TransitionLog{}
	agg := output.NewCountyAggregator(net, *days)
	byCounty := map[int32]int{}
	for _, p := range net.Persons {
		byCounty[p.CountyFIPS]++
	}
	var seedCounty int32
	best := 0
	for c, n := range byCounty {
		if n > best {
			seedCounty, best = c, n
		}
	}
	var simCfg epihiper.Config
	if jsonCfg != nil {
		simCfg, err = jsonCfg.Build(net)
		if err != nil {
			log.Fatal(err)
		}
		if len(simCfg.Seeds) == 0 && len(simCfg.SeedPersons) == 0 {
			simCfg.Seeds = []epihiper.Seeding{{CountyFIPS: seedCounty, Day: 0, Count: 5}}
		}
	} else {
		simCfg = epihiper.Config{
			Model: model, Network: net, Days: *days,
			Parallelism: *par, Seed: *seed,
			Seeds: []epihiper.Seeding{{CountyFIPS: seedCounty, Day: 0, Count: 5}},
			Interventions: []epihiper.Intervention{
				&epihiper.VoluntaryHomeIsolation{Compliance: *vhi, IsolationDays: 14},
				&epihiper.SchoolClosure{StartDay: *shStart, EndDay: *days},
				&epihiper.StayAtHome{StartDay: *shStart + 15, EndDay: *days, Compliance: *sh},
			},
		}
	}
	simCfg.Recorder = epihiper.MultiRecorder{logRec, agg}
	simCfg.Parallelism = effShards
	reg := obs.NewRegistry()
	if *metricsDump != "" {
		simCfg.Metrics = reg
	}
	sim, err := epihiper.New(simCfg)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("\nsimulated %d days in %v (%d shards)\n", *days, elapsed, sim.ShardCount())
	fmt.Printf("  total infections: %d (attack rate %.1f%%)\n",
		res.TotalInfections, 100*epihiper.Attack(res, net.NumNodes()))
	conf := agg.StateConfirmedCumulative()
	fmt.Printf("  cumulative confirmed: %.0f\n", conf[len(conf)-1])
	fmt.Printf("  deaths: %d\n", sim.CumulativeCount(disease.Dead))
	fmt.Printf("  transitions logged: %d (raw %s at this scale, ≈%s at 1:1)\n",
		len(logRec.Entries), transfer.HumanBytes(logRec.RawBytes()),
		transfer.HumanBytes(logRec.RawBytes()*int64(*scale)))
	fmt.Printf("  peak modeled memory: %s\n", transfer.HumanBytes(res.PeakMemoryBytes))

	dend := output.BuildDendogram(logRec, disease.Exposed)
	fmt.Printf("  dendogram: %d trees, %d infected, depth %d\n",
		len(dend.Roots), dend.Size(), dend.Depth())

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
		rawPath := filepath.Join(*outDir, "transitions.csv")
		f, err := os.Create(rawPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := logRec.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		sumPath := filepath.Join(*outDir, "summary.csv")
		g, err := os.Create(sumPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := agg.WriteSummaryCSV(g); err != nil {
			log.Fatal(err)
		}
		g.Close()
		fmt.Printf("  wrote %s and %s\n", rawPath, sumPath)
	}

	if *metricsDump != "" {
		reg.Help("epi_run_seconds", "wall-clock of the simulation run")
		reg.Gauge("epi_run_seconds").Set(elapsed.Seconds())
		reg.Help("epi_run_days", "simulated horizon in days")
		reg.Gauge("epi_run_days").Set(float64(*days))
		reg.Help("epi_run_infections_total", "total infections over the run")
		reg.Counter("epi_run_infections_total").Add(res.TotalInfections)
		reg.Help("epi_run_transitions_total", "state transitions logged")
		reg.Counter("epi_run_transitions_total").Add(int64(len(logRec.Entries)))
		reg.Help("epi_run_raw_bytes", "raw transition log size at this scale")
		reg.Gauge("epi_run_raw_bytes").Set(float64(logRec.RawBytes()))
		reg.Help("epi_run_peak_memory_bytes", "modeled peak memory of the run")
		reg.Gauge("epi_run_peak_memory_bytes").Set(float64(res.PeakMemoryBytes))
		w := os.Stdout
		if *metricsDump != "-" {
			f, err := os.Create(*metricsDump)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := reg.WritePrometheus(w); err != nil {
			log.Fatal(err)
		}
	}
}
