package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig7TopRuntimeVsSize/nodes=724         	     494	   2492194 ns/op	       724.0 nodes	  454828 B/op	   12087 allocs/op
PASS
ok  	repro	6.709s
pkg: repro/internal/epihiper
BenchmarkTransmissionPhase 	   20311	     58077 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/epihiper	1.808s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || !strings.Contains(doc.CPU, "Xeon") {
		t.Fatalf("context headers not captured: %+v", doc)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(doc.Benchmarks))
	}
	b0 := doc.Benchmarks[0]
	if b0.Name != "BenchmarkFig7TopRuntimeVsSize/nodes=724" || b0.Pkg != "repro" || b0.Runs != 494 {
		t.Fatalf("first entry wrong: %+v", b0)
	}
	if b0.Metrics["ns/op"] != 2492194 || b0.Metrics["nodes"] != 724 || b0.Metrics["allocs/op"] != 12087 {
		t.Fatalf("first entry metrics wrong: %v", b0.Metrics)
	}
	b1 := doc.Benchmarks[1]
	if b1.Pkg != "repro/internal/epihiper" || b1.Metrics["allocs/op"] != 0 {
		t.Fatalf("second entry wrong: %+v", b1)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkBroken 12 34", // odd trailing fields
		"BenchmarkBroken xyz 34 ns/op",
		"BenchmarkBroken 12 abc ns/op",
	} {
		if _, err := parse(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("parse accepted malformed line %q", line)
		}
	}
}
