// Command benchjson converts `go test -bench` output on stdin into a JSON
// document, so benchmark runs can be archived as machine-readable artifacts
// (the CI bench job uploads one per commit) and diffed across revisions.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -o BENCH.json
//
// Each benchmark line "BenchmarkX-8  120  9523 ns/op  64 B/op  2 allocs/op"
// becomes an entry with the iteration count and a metric map keyed by unit
// (ns/op, B/op, allocs/op, plus any custom b.ReportMetric units). Context
// lines (goos/goarch/pkg/cpu) are carried alongside each entry.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark result line.
type Entry struct {
	Name    string             `json:"name"`
	Pkg     string             `json:"pkg,omitempty"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the full converted record.
type Doc struct {
	Goos       string  `json:"goos,omitempty"`
	Goarch     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	doc, err := parse(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	if len(doc.Benchmarks) == 0 {
		log.Fatal("benchjson: no benchmark lines found on stdin")
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(doc.Benchmarks), *out)
}

// parse reads `go test -bench` output and collects benchmark lines and the
// goos/goarch/pkg/cpu context headers that precede them.
func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			e, err := parseBenchLine(line)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %w in line %q", err, line)
			}
			e.Pkg = pkg
			doc.Benchmarks = append(doc.Benchmarks, e)
		}
	}
	return doc, sc.Err()
}

// parseBenchLine splits "Name N v1 unit1 v2 unit2 ..." into an Entry.
func parseBenchLine(line string) (Entry, error) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Entry{}, fmt.Errorf("malformed benchmark line")
	}
	runs, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Entry{}, fmt.Errorf("bad iteration count %q", f[1])
	}
	e := Entry{Name: f[0], Runs: runs, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Entry{}, fmt.Errorf("bad metric value %q", f[i])
		}
		e.Metrics[f[i+1]] = v
	}
	return e, nil
}
