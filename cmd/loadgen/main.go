// Command loadgen drives sustained concurrent traffic against a running
// episerve (single service or replica cluster) and reports client-side
// p50/p99 latency and throughput.
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8080 -clients 64 -requests 512
//
// Each client issues synchronous submissions (?wait=1) back to back until
// the request budget is spent. The default traffic profile is cache-miss
// prediction specs (every request a distinct content address), so the
// reported throughput measures computation capacity, not cache hits; pass
// -state/-days/-replicates to reshape the spec, or -fixed to hammer one
// spec and measure the dedup/cache path instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/replica"
	"repro/internal/scenario"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "episerve base URL")
	clients := flag.Int("clients", 64, "concurrent closed-loop clients")
	requests := flag.Int("requests", 256, "total request budget across clients")
	priority := flag.String("priority", "", "admission class: interactive | normal | batch")
	state := flag.String("state", "VA", "spec state code")
	days := flag.Int("days", 30, "spec forecast horizon")
	reps := flag.Int("replicates", 2, "spec replicates per configuration")
	fixed := flag.Bool("fixed", false, "send one identical spec (cache/dedup profile) instead of unique specs")
	mix := flag.Bool("mix", false, "cycle priorities interactive/normal/batch across requests (overrides -priority); the report breaks p50/p99 down per class")
	jsonOut := flag.Bool("json", false, "emit the report as JSON on stdout")
	flag.Parse()

	specFor := func(client, seq int) scenario.Spec {
		s := replica.DefaultSpecFor(client, seq)
		s.State, s.Days, s.Replicates = *state, *days, *reps
		if *fixed {
			s.Configs = nil // normalization fills defaults: every spec identical
		}
		return s
	}
	lcfg := replica.LoadgenConfig{
		BaseURL: *addr, Clients: *clients, Requests: *requests,
		Priority: *priority, SpecFor: specFor,
	}
	if *mix {
		classes := []string{"interactive", "normal", "batch"}
		lcfg.PriorityFor = func(client, seq int) string {
			return classes[(client+seq)%len(classes)]
		}
	}
	rep, err := replica.RunLoadgen(lcfg)
	if err != nil {
		log.Fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("clients=%d requests=%d ok=%d errors=%d\n", rep.Clients, rep.Requests, rep.OK, rep.Errors)
	fmt.Printf("p50=%s p99=%s throughput=%.1f req/s over %s\n", rep.P50, rep.P99, rep.Throughput, rep.Elapsed)
	for _, pri := range []string{"interactive", "normal", "batch"} {
		if st, ok := rep.ByPriority[pri]; ok {
			fmt.Printf("  %-11s requests=%d ok=%d p50=%.1fms p99=%.1fms\n",
				pri, st.Requests, st.OK, st.P50ms, st.P99ms)
		}
	}
	for code, n := range rep.StatusDist {
		fmt.Printf("  status %d: %d\n", code, n)
	}
	if rep.SlowestID != "" {
		fmt.Printf("slowest request: %.1fms — inspect with GET %s/debug/requests/%s\n",
			rep.SlowestMS, *addr, rep.SlowestID)
	}
}
