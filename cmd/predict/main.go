// Command predict runs the prediction workflow (Figure 5): it reads (or
// synthesizes) calibrated model configurations, simulates each with
// replicates, and prints the state-level forecast with its 95% band plus
// top county-level products — the Figure 17 output.
//
// Usage:
//
//	predict -state VA -configs posterior.csv -replicates 15 -days 90
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/capacity"
	"repro/internal/core"
	"repro/internal/synthpop"
)

func readConfigs(path string) ([]core.Params, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	var out []core.Params
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if first {
			first = false
			if strings.HasPrefix(line, "tau") {
				continue
			}
		}
		parts := strings.Split(line, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("bad config line %q", line)
		}
		var vals [4]float64
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		out = append(out, core.Params{TAU: vals[0], SYMP: vals[1], SHCompliance: vals[2], VHICompliance: vals[3]})
	}
	return out, sc.Err()
}

func main() {
	state := flag.String("state", "VA", "region postal code")
	configsPath := flag.String("configs", "", "posterior CSV from the calibrate command")
	replicates := flag.Int("replicates", 15, "replicates per configuration")
	days := flag.Int("days", 90, "forecast horizon")
	scale := flag.Int("scale", 20000, "population scale (1:N)")
	seed := flag.Uint64("seed", 2020, "random seed")
	maxConfigs := flag.Int("max-configs", 8, "cap on configurations simulated")
	flag.Parse()

	var configs []core.Params
	if *configsPath != "" {
		var err error
		configs, err = readConfigs(*configsPath)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		// Default what-if spread around the CDC best-guess parameters.
		configs = []core.Params{
			{TAU: 0.16, SYMP: 0.65, SHCompliance: 0.6, VHICompliance: 0.5},
			{TAU: 0.18, SYMP: 0.65, SHCompliance: 0.5, VHICompliance: 0.5},
			{TAU: 0.20, SYMP: 0.60, SHCompliance: 0.4, VHICompliance: 0.4},
			{TAU: 0.22, SYMP: 0.70, SHCompliance: 0.3, VHICompliance: 0.6},
		}
	}
	if len(configs) > *maxConfigs {
		configs = configs[:*maxConfigs]
	}
	p := core.NewPipeline(*seed, core.WithScale(*scale))
	fmt.Printf("prediction workflow: %s, %d configs × %d replicates, %d days\n",
		*state, len(configs), *replicates, *days)
	out, err := p.RunPredictionWorkflow(core.PredictionConfig{
		State: *state, Configs: configs, Replicates: *replicates, Days: *days,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ncumulative confirmed cases (state level):")
	fmt.Println("  day   2.5%     median   97.5%")
	for d := 6; d < *days; d += 7 {
		fmt.Printf("  %3d  %8.0f %8.0f %8.0f\n",
			d, out.Confirmed.Lo[d], out.Confirmed.Median[d], out.Confirmed.Hi[d])
	}
	last := *days - 1
	fmt.Printf("\nfinal forecasts (day %d): confirmed %.0f [%.0f, %.0f], hospitalized %.0f, deaths %.0f\n",
		last, out.Confirmed.Median[last], out.Confirmed.Lo[last], out.Confirmed.Hi[last],
		out.Hospitalized.Median[last], out.Deaths.Median[last])
	fmt.Printf("county-level products: %d counties\n", len(out.CountyMedian))

	// Capacity analysis for the hospital referral regions: compare the
	// upper-band hospitalization path against AHA-derived capacity.
	st, err := synthpop.StateByCode(*state)
	if err != nil {
		log.Fatal(err)
	}
	res := capacity.FromAHA(st)
	// Occupancy approximation: cumulative admissions over a mean stay,
	// scaled back to real-population terms (1:1) for the capacity check.
	occupancy := func(cum []float64, stay int) []float64 {
		occ := make([]float64, len(cum))
		for d := range cum {
			prev := 0.0
			if d >= stay {
				prev = cum[d-stay]
			}
			occ[d] = (cum[d] - prev) * float64(*scale)
		}
		return occ
	}
	demand := capacity.Demand{
		Hospitalized: occupancy(out.Hospitalized.Hi, 7),
		Ventilated:   occupancy(out.Hospitalized.Hi, 7), // conservative: all hospital demand
	}
	for i := range demand.Ventilated {
		demand.Ventilated[i] *= 0.15 // ≈15% of hospitalized need ventilation
	}
	rep, err := capacity.Analyze(res, demand, 0.4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncapacity check (worst-case band scaled to 1:1, %s — beds %d, vents %d available to COVID):\n",
		st.Code, int(float64(res.Beds)*rep.AvailableFraction), int(float64(res.Ventilators)*rep.AvailableFraction))
	if rep.HospitalOverflowDays == 0 && rep.VentilatorOverflowDays == 0 {
		fmt.Printf("  no overflow; peak bed utilization %.0f%% on day %d\n",
			100*rep.HospitalUtilizationPeak, rep.PeakHospitalDay)
	} else {
		fmt.Printf("  OVERFLOW: %d hospital days (first day %d), %d ventilator days\n",
			rep.HospitalOverflowDays, rep.FirstHospitalOverflow, rep.VentilatorOverflowDays)
	}
}
