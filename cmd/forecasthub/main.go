// Command forecasthub runs a prediction ensemble and emits the forecast in
// the CDC Forecast Hub's quantile CSV format ("we also provide our weekly
// forecasts to the Centers for Disease Control and Prevention"), then
// scores it against held-out synthetic surveillance with the hub's
// standard metrics (MAE, interval coverage, WIS).
//
// Usage:
//
//	forecasthub -state VA -weeks 4 -out forecast.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/forecast"
	"repro/internal/metapop"
	"repro/internal/stats"
	"repro/internal/surveillance"
	"repro/internal/synthpop"
)

func main() {
	state := flag.String("state", "VA", "region postal code")
	weeks := flag.Int("weeks", 4, "forecast horizon in weeks")
	trainDays := flag.Int("train", 120, "surveillance days used for calibration")
	truthMode := flag.String("truth", "model", "model (well-specified ground truth) | synthetic (surveillance generator; exhibits structural misfit)")
	out := flag.String("out", "", "hub-format CSV path (omit for stdout summary)")
	seed := flag.Uint64("seed", 2020, "random seed")
	flag.Parse()

	st, err := synthpop.StateByCode(*state)
	if err != nil {
		log.Fatal(err)
	}
	// Metapopulation path: cheap enough to calibrate and forecast live.
	model, err := metapop.NewFromState(st, 0.85)
	if err != nil {
		log.Fatal(err)
	}
	var truth *surveillance.StateTruth
	switch *truthMode {
	case "synthetic":
		tcfg := surveillance.DefaultConfig(*seed)
		tcfg.SecondWave = false // the single-wave regime the SEIR can represent
		truth, err = surveillance.GenerateState(st, tcfg)
		if err != nil {
			log.Fatal(err)
		}
	case "model":
		// Well-specified ground truth: a hidden-parameter stochastic run
		// of the model itself with a mitigation bend — the regime where
		// a calibrated forecaster should achieve nominal coverage.
		hidden := metapop.Params{Beta: 0.42, Sigma: 1.0 / 3, Gamma: 1.0 / 5, Detect: 0.15}
		rng := stats.NewRNG(*seed * 77)
		traj, err := model.RunStochastic(hidden, 210,
			[]metapop.Seed{{CountyIndex: 0, Infectious: 25}},
			[]metapop.Scenario{metapop.MitigationScenario(75, 0.45)}, rng)
		if err != nil {
			log.Fatal(err)
		}
		truth = &surveillance.StateTruth{State: st.Code, Days: 210}
		for c := range model.Counties {
			truth.Counties = append(truth.Counties, surveillance.CountySeries{
				FIPS: model.Counties[c].FIPS, Pop: int(model.Counties[c].Pop),
				Daily: traj.NewConfirmed[c],
			})
		}
	default:
		log.Fatalf("unknown truth mode %q", *truthMode)
	}
	// Align simulation day 0 with the observed community-spread onset,
	// as the production calibration does.
	onset := truth.OnsetDay(20)
	horizon := *trainDays + 7*(*weeks)
	if onset+horizon > truth.Days {
		log.Fatalf("onset %d + horizon %d exceeds surveillance span %d", onset, horizon, truth.Days)
	}
	train := truth.Window(onset, onset+*trainDays)

	// Seed each county from its first two weeks of confirmed counts —
	// "county-level seeding derived from county-level confirmed case
	// counts" — inflated for under-ascertainment.
	var seeds []metapop.Seed
	for c := range train.Counties {
		early := 0.0
		for d := 0; d < 14 && d < train.Days; d++ {
			early += train.Counties[c].Daily[d]
		}
		if early > 0 {
			seeds = append(seeds, metapop.Seed{CountyIndex: c, Infectious: early * 3})
		}
	}
	if len(seeds) == 0 {
		seeds = []metapop.Seed{{CountyIndex: 0, Infectious: 20}}
	}
	// Calibrate transmission, ascertainment and a mitigation factor that
	// kicks in a month after onset — the behavior change that bends the
	// observed curves.
	mitStart := 30
	res, err := model.Calibrate(train, metapop.CalibConfig{
		BetaLo: 0.1, BetaHi: 0.9, DetectLo: 0.02, DetectHi: 0.6,
		Days: *trainDays, Seeds: seeds,
		GammaLo: 0.08, GammaHi: 0.5, CalibrateGamma: true,
		CalibrateMitigation: true, MitigationStart: mitStart,
		MitigationLo: 0.05, MitigationHi: 1,
		Steps: 800, BurnIn: 800, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated %s on days %d–%d: MAP beta=%.3f detect=%.3f mitigation=%.2f (R0=%.2f)\n",
		st.Code, onset, onset+*trainDays, res.MAP.Beta, res.MAP.Detect, res.MAPMitigation, res.MAP.R0())

	// Posterior ensemble forecasts at each weekly horizon (thin the
	// chain, keeping the mitigation draws aligned).
	post := res.Posterior
	mits := res.Mitigations
	if len(post) > 40 {
		stride := len(post) / 40
		var thinP []metapop.Params
		var thinM []float64
		for i := 0; i < len(post) && len(thinP) < 40; i += stride {
			thinP = append(thinP, post[i])
			if i < len(mits) {
				thinM = append(thinM, mits[i])
			}
		}
		post, mits = thinP, thinM
	}
	res.Mitigations = mits
	// Targets are measured from the onset-aligned axis: sim day d maps to
	// truth day onset+d. Cumulative counts are relative to the onset.
	aligned := truth.Window(onset, truth.Days)
	truthCum := aligned.StateCumulative()
	var card forecast.Scorecard
	var rows []string
	noiseRNG := stats.NewRNG(*seed ^ 0xF0C4)
	fmt.Printf("\n%-8s %10s %10s %10s %10s %6s\n", "target", "truth", "median", "2.5%", "97.5%", "WIS")
	for w := 1; w <= *weeks; w++ {
		day := *trainDays + 7*w - 1
		var samples []float64
		for pi, p := range post {
			mit := res.MAPMitigation
			if pi < len(res.Mitigations) {
				mit = res.Mitigations[pi]
			}
			scen := []metapop.Scenario{metapop.MitigationScenario(mitStart, mit)}
			traj, err := model.Run(p, day+1, seeds, scen)
			if err != nil {
				log.Fatal(err)
			}
			// Predictive, not parametric: the hub target is the
			// *observed* count, so each draw carries the observation
			// model's 20% noise.
			v := traj.StateCumConfirmed()[day]
			for k := 0; k < 4; k++ {
				samples = append(samples, noiseRNG.Normal(v, 0.2*v))
			}
		}
		f, err := forecast.FromSamples(samples)
		if err != nil {
			log.Fatal(err)
		}
		obs := truthCum[day]
		card.Add(f, obs)
		lo, hi := f.Interval(0.05)
		fmt.Printf("%d wk     %10.0f %10.0f %10.0f %10.0f %6.0f\n",
			w, obs, f.Median(), lo, hi, forecast.WIS(f, obs))
		for _, q := range f.Quantiles {
			rows = append(rows, fmt.Sprintf("%s,%d wk ahead cum case,quantile,%g,%g",
				st.Code, w, q.P, q.V))
		}
	}
	fmt.Printf("\nscorecard over %d targets: MAE %.0f, mean WIS %.0f, 95%% coverage %.0f%%, 50%% coverage %.0f%%\n",
		card.N, card.MAE(), card.MeanWIS(), 100*card.Coverage95(), 100*card.Coverage50())

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		fmt.Fprintln(f, "location,target,type,quantile,value")
		for _, r := range rows {
			fmt.Fprintln(f, r)
		}
		fmt.Printf("wrote %d hub rows to %s\n", len(rows), *out)
	}
	_ = core.TableI // documentation anchor: the agent-based path feeds the same format
}
