// Command calibrate runs the calibration workflow (Figure 4) for one state:
// an LHS prior design simulated with EpiHiper, a GP-emulator Bayesian fit
// against the surveillance ground truth, and a posterior design written as
// CSV — the model configurations the prediction workflow consumes.
//
// Usage:
//
//	calibrate -state VA -cells 100 -days 70 -scale 20000 -out posterior.csv
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/mcmc"
	"repro/internal/obs"
	"repro/internal/stats"
)

func main() {
	state := flag.String("state", "VA", "region postal code")
	cells := flag.Int("cells", 100, "prior design size")
	days := flag.Int("days", 70, "calibration horizon")
	scale := flag.Int("scale", 20000, "population scale (1:N)")
	seed := flag.Uint64("seed", 2020, "random seed")
	steps := flag.Int("steps", 1200, "MCMC steps per chain")
	chains := flag.Int("chains", 4, "over-dispersed MCMC chains")
	rhatMax := flag.Float64("rhat-max", 0, "fail if any split-R̂ exceeds this (0: advisory only)")
	minESS := flag.Float64("min-ess", 0, "fail if any pooled ESS is below this (0: advisory only)")
	out := flag.String("out", "", "posterior CSV path (omit for stdout summary only)")
	metricsDump := flag.String("metrics-dump", "", `dump Prometheus text metrics to FILE at the end of the run ("-" = stdout)`)
	flag.Parse()

	p := core.NewPipeline(*seed, core.WithScale(*scale))
	fmt.Printf("calibration workflow: %s, %d cells, %d days, scale 1:%d\n",
		*state, *cells, *days, *scale)

	// Span durations (workflow.calibration, sim, calibrate, mcmc.chain, …)
	// land in epi_span_seconds next to the pipeline's transfer and fault
	// series; -metrics-dump writes all of it after the run.
	reg := obs.NewRegistry()
	p.RegisterMetrics(reg)
	ctx := obs.WithTracer(context.Background(), obs.NewTracer(nil, obs.WithSpanMetrics(reg)))

	res, err := p.RunCalibrationWorkflowCtx(ctx, core.CalibrationConfig{
		State: *state, Cells: *cells, Days: *days, Steps: *steps,
		Chains: *chains, RHatMax: *rhatMax, MinESS: *minESS,
	})
	var convErr *mcmc.ConvergenceError
	if errors.As(err, &convErr) {
		// Gate failed, but the posterior is still attached: report and
		// keep going so the diagnostics below can be inspected.
		fmt.Printf("WARNING: %v\n", convErr)
	} else if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nsimulated %d prior cells; MCMC acceptance %.2f (%d chains)\n",
		len(res.Sims), res.AcceptRate, *chains)
	coords := []string{"TAU", "SYMP", "SH", "VHI", "σδ", "σε"}
	for k := range res.RHat {
		name := fmt.Sprintf("dim%d", k)
		if k < len(coords) {
			name = coords[k]
		}
		fmt.Printf("  %-5s split-R̂ %.3f  ESS %.0f\n", name, res.RHat[k], res.ESS[k])
	}
	if !res.Converged {
		fmt.Println("  convergence: NOT MET — consider more steps or chains")
	}
	summarize := func(name string, get func(core.Params) float64) {
		prior := make([]float64, len(res.Prior))
		post := make([]float64, len(res.Posterior))
		for i, pr := range res.Prior {
			prior[i] = get(pr)
		}
		for i, pr := range res.Posterior {
			post[i] = get(pr)
		}
		fmt.Printf("  %-5s prior mean %.3f sd %.3f → posterior mean %.3f sd %.3f\n",
			name, stats.Mean(prior), stats.StdDev(prior), stats.Mean(post), stats.StdDev(post))
	}
	summarize("TAU", func(p core.Params) float64 { return p.TAU })
	summarize("SYMP", func(p core.Params) float64 { return p.SYMP })
	summarize("SH", func(p core.Params) float64 { return p.SHCompliance })
	summarize("VHI", func(p core.Params) float64 { return p.VHICompliance })

	// Figure 15's headline: TAU–SYMP posterior correlation.
	tau := make([]float64, len(res.Posterior))
	symp := make([]float64, len(res.Posterior))
	for i, pr := range res.Posterior {
		tau[i], symp[i] = pr.TAU, pr.SYMP
	}
	fmt.Printf("  posterior corr(TAU, SYMP) = %.3f (paper: negative)\n", stats.Correlation(tau, symp))

	// Figure 16's check: ground truth inside the emulator band at the MAP.
	if len(res.Posterior) > 0 {
		cov := res.Calibrator.CoverageFraction([]float64{
			res.Posterior[0].TAU, res.Posterior[0].SYMP,
			res.Posterior[0].SHCompliance, res.Posterior[0].VHICompliance,
		})
		fmt.Printf("  emulator 95%%-band coverage of ground truth: %.0f%%\n", 100*cov)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		fmt.Fprintln(f, "tau,symp,sh_compliance,vhi_compliance")
		for _, pr := range res.Posterior {
			fmt.Fprintf(f, "%g,%g,%g,%g\n", pr.TAU, pr.SYMP, pr.SHCompliance, pr.VHICompliance)
		}
		fmt.Printf("wrote %d posterior configurations to %s\n", len(res.Posterior), *out)
	}
	if *metricsDump != "" {
		w := os.Stdout
		if *metricsDump != "-" {
			f, err := os.Create(*metricsDump)
			if err != nil {
				log.Fatalf("-metrics-dump: %v", err)
			}
			defer f.Close()
			w = f
		}
		if err := reg.WritePrometheus(w); err != nil {
			log.Fatalf("-metrics-dump: %v", err)
		}
	}
	if convErr != nil {
		os.Exit(1) // a requested convergence gate failed
	}
}
