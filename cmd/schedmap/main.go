// Command schedmap runs the Section V scheduling experiments: it builds a
// nightly workload, packs it with NFDT-DC, FFDT-DC and FIFO, executes each
// on the simulated remote cluster, and prints the Figure 9 utilization
// comparison across multiple nights.
//
// Usage:
//
//	schedmap -nights 9 -cells 12 -replicates 15 -db-bound 16
package main

import (
	"flag"
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/sched"
	"repro/internal/stats"
)

func main() {
	nights := flag.Int("nights", 9, "number of simulated nights")
	cells := flag.Int("cells", 12, "cells per region")
	replicates := flag.Int("replicates", 15, "replicates per cell")
	dbBound := flag.Int("db-bound", 16, "per-region DB connection bound")
	vaOnly := flag.Bool("va-only", false, "simulate Virginia-only nights (Figure 9 right)")
	flag.Parse()

	spec := cluster.Bridges()
	deadline := cluster.NightlyWindow().Seconds()
	fmt.Printf("cluster: %s — %d nodes, %d cores; window %v s\n",
		spec.Name, spec.Nodes, spec.TotalCores(), deadline)

	var nf, ff []float64
	for night := 0; night < *nights; night++ {
		w := sched.Workload{Cells: *cells, Replicates: *replicates,
			Time: sched.DefaultTimeModel(), MaxInterventionFactor: 4}
		tasks := w.Tasks(stats.NewRNG(uint64(night) + 1))
		bounds := sched.DefaultDBBounds(*dbBound)
		if *vaOnly {
			var vaTasks []sched.Task
			for _, t := range tasks {
				if t.Region == "VA" {
					vaTasks = append(vaTasks, t)
				}
			}
			tasks = vaTasks
			bounds = map[string]int{"VA": 180}
		}
		c := sched.Constraints{TotalNodes: spec.Nodes, DBBound: bounds}

		nfSched, err := sched.NFDTDC(tasks, c)
		if err != nil {
			panic(err)
		}
		ffSched, err := sched.FFDTDC(tasks, c)
		if err != nil {
			panic(err)
		}
		nfExec := cluster.ExecuteLevelSync(nfSched, 0)
		ffExec, err := cluster.ExecuteBackfill(cluster.FlattenSchedule(ffSched), c, 0)
		if err != nil {
			panic(err)
		}
		nf = append(nf, nfExec.Utilization)
		ff = append(ff, ffExec.Utilization)
		fits := "fits window"
		if ffExec.Makespan > deadline {
			fits = "OVERRUNS window"
		}
		fmt.Printf("night %d: %5d tasks  NFDT-DC %.1f%% (%.0fs)  FFDT-DC %.1f%% (%.0fs, %s)\n",
			night+1, len(tasks),
			100*nfExec.Utilization, nfExec.Makespan,
			100*ffExec.Utilization, ffExec.Makespan, fits)
	}
	sort.Float64s(nf)
	sort.Float64s(ff)
	fmt.Printf("\nFigure 9 summary over %d nights:\n", *nights)
	fmt.Printf("  NFDT-DC median utilization: %.3f%% (paper: 44.237–55.579%%)\n", 100*stats.Median(nf))
	fmt.Printf("  FFDT-DC median utilization: %.3f%% (paper: 96.698%% all-state, 95.534%% VA-only)\n", 100*stats.Median(ff))
}
