// Command nightly simulates the combined daily pipeline of Figure 1: for
// each Table I workflow it packs and executes a night on the simulated
// remote cluster, accounts the data transfers between the two sites, and
// prints the nightly report — the operational view the paper's Figure 2
// timeline wraps.
//
// Usage:
//
//	nightly -workflow prediction
//	nightly -workflow all -nights 3
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/transfer"
)

func main() {
	workflow := flag.String("workflow", "all", "economic | prediction | calibration | all")
	nights := flag.Int("nights", 1, "nights per workflow")
	heuristic := flag.String("heuristic", "FFDT-DC", "FFDT-DC | NFDT-DC")
	carryover := flag.Bool("carryover", false, "resubmit window-misses on later nights (resiliency mode)")
	seed := flag.Uint64("seed", 7, "random seed")
	flag.Parse()

	p := core.NewPipeline(*seed)
	specs := core.TableI()
	want := strings.ToLower(*workflow)

	fmt.Println("=== weekly timeline (Figure 2) ===")
	for _, step := range core.WeeklyTimeline() {
		kind := "human"
		if step.Automated {
			kind = "auto "
		}
		fmt.Printf("  day %d [%s] %s\n", step.Day, kind, step.Name)
	}
	fmt.Println()

	day := 1
	for _, spec := range specs {
		name := strings.ToLower(spec.Kind.String())
		if want != "all" && want != name {
			continue
		}
		fmt.Printf("=== %s workflow: %d cells × %d states × %d replicates = %d simulations ===\n",
			spec.Kind, spec.Cells, spec.States, spec.Replicates, spec.Simulations())
		var reports []*core.NightReport
		if *carryover {
			var err error
			reports, err = p.RunNights(spec, *heuristic, *nights, *seed)
			if err != nil {
				fmt.Printf("  WARNING: %v\n", err)
			}
		} else {
			for n := 0; n < *nights; n++ {
				rep, err := p.RunNight(core.NightConfig{
					Spec: spec, Heuristic: *heuristic,
					Seed: *seed + uint64(n), Day: day,
				})
				if err != nil {
					log.Fatal(err)
				}
				reports = append(reports, rep)
				day++
			}
		}
		for n, rep := range reports {
			status := "within the 10h window"
			if !rep.FitsWindow {
				status = fmt.Sprintf("MISSED window (%d unstarted)", rep.Unstarted)
			}
			fmt.Printf("  night %d: %d tasks, makespan %.1fh, utilization %.1f%%, %s\n",
				n+1, rep.Tasks, rep.Makespan/3600, 100*rep.Utilization, status)
			fmt.Printf("           configs out %s, summaries back %s, raw kept remote %s\n",
				transfer.HumanBytes(rep.ConfigBytes),
				transfer.HumanBytes(rep.SummaryBytes),
				transfer.HumanBytes(rep.RawBytes))
		}
		fmt.Println()
	}

	fmt.Println("=== transfer ledger (Table II accounting) ===")
	fmt.Printf("  home→remote total: %s\n", transfer.HumanBytes(p.Ledger.TotalBytes(transfer.HomeToRemote)))
	fmt.Printf("  remote→home total: %s\n", transfer.HumanBytes(p.Ledger.TotalBytes(transfer.RemoteToHome)))
	fmt.Printf("  modeled transfer time: %.1f min\n", p.Ledger.TotalSeconds()/60)
	for _, lb := range p.Ledger.ByLabel() {
		fmt.Printf("    %-24s %s\n", lb.Label, transfer.HumanBytes(lb.Bytes))
	}
}
