// Command nightly simulates the combined daily pipeline of Figure 1: for
// each Table I workflow it packs and executes a night on the simulated
// remote cluster, accounts the data transfers between the two sites, and
// prints the nightly report — the operational view the paper's Figure 2
// timeline wraps.
//
// Usage:
//
//	nightly -workflow prediction
//	nightly -workflow all -nights 3
//	nightly -workflow prediction -fault-rate 0.05 -max-retries 3
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/transfer"
)

func main() {
	workflow := flag.String("workflow", "all", "economic | prediction | calibration | all")
	nights := flag.Int("nights", 1, "nights per workflow")
	heuristic := flag.String("heuristic", "FFDT-DC", "FFDT-DC | NFDT-DC")
	carryover := flag.Bool("carryover", false, "resubmit window-misses on later nights (resiliency mode)")
	seed := flag.Uint64("seed", 7, "random seed")
	faultRate := flag.Float64("fault-rate", 0,
		"per-attempt task crash probability; DB refusals and transfer stalls run at half this rate (0 = failure-free)")
	faultSeed := flag.Uint64("fault-seed", 1, "seed of the deterministic fault model")
	maxRetries := flag.Int("max-retries", 3, "per-task requeue budget under faults (negative = shed on first failure)")
	flag.Parse()

	if *faultRate < 0 || *faultRate > 1 {
		log.Fatalf("-fault-rate %v outside [0, 1]", *faultRate)
	}
	if *carryover && *faultRate > 0 {
		log.Fatal("-fault-rate is not supported with -carryover (carryover nights run the failure-free model)")
	}
	faultSpec := faults.Spec{
		Seed:              *faultSeed,
		TaskCrashProb:     *faultRate,
		DBRefusalProb:     *faultRate / 2,
		TransferStallProb: *faultRate / 2,
	}
	recovery := core.RecoveryPolicy{MaxRetries: *maxRetries}

	p := core.NewPipeline(*seed)
	specs := core.TableI()
	want := strings.ToLower(*workflow)

	fmt.Println("=== weekly timeline (Figure 2) ===")
	for _, step := range core.WeeklyTimeline() {
		kind := "human"
		if step.Automated {
			kind = "auto "
		}
		fmt.Printf("  day %d [%s] %s\n", step.Day, kind, step.Name)
	}
	fmt.Println()

	day := 1
	for _, spec := range specs {
		name := strings.ToLower(spec.Kind.String())
		if want != "all" && want != name {
			continue
		}
		fmt.Printf("=== %s workflow: %d cells × %d states × %d replicates = %d simulations ===\n",
			spec.Kind, spec.Cells, spec.States, spec.Replicates, spec.Simulations())
		var reports []*core.NightReport
		if *carryover {
			var err error
			reports, err = p.RunNights(spec, *heuristic, *nights, *seed)
			if err != nil {
				fmt.Printf("  WARNING: %v\n", err)
			}
		} else {
			for n := 0; n < *nights; n++ {
				rep, err := p.RunNight(core.NightConfig{
					Spec: spec, Heuristic: *heuristic,
					Seed: *seed + uint64(n), Day: day,
					Faults: faultSpec, Recovery: recovery,
				})
				if err != nil {
					log.Fatal(err)
				}
				reports = append(reports, rep)
				day++
			}
		}
		for n, rep := range reports {
			status := "within the 10h window"
			if !rep.FitsWindow {
				status = fmt.Sprintf("MISSED window (%d unstarted, %d shed)", rep.Unstarted, len(rep.Shed))
			}
			fmt.Printf("  night %d: %d tasks, makespan %.1fh, utilization %.1f%%, %s\n",
				n+1, rep.Tasks, rep.Makespan/3600, 100*rep.Utilization, status)
			fmt.Printf("           configs out %s, summaries back %s, raw kept remote %s\n",
				transfer.HumanBytes(rep.ConfigBytes),
				transfer.HumanBytes(rep.SummaryBytes),
				transfer.HumanBytes(rep.RawBytes))
			if *faultRate > 0 {
				fmt.Printf("           faults: %d crashes, %d DB refusals; %d requeues over %d rounds, %.0f node-s wasted, %d transfer retries\n",
					rep.Crashes, rep.DBRefusals, rep.Retries, rep.Rounds,
					rep.WastedNodeSeconds, rep.TransferRetries)
				if len(rep.Shed) > 0 {
					fmt.Printf("           shed %d tasks (%d retry-exhausted, %d window); lowest priority first:\n",
						len(rep.Shed), rep.ShedRetryExhausted, rep.ShedWindow)
					show := rep.Shed
					if len(show) > 5 {
						show = show[:5]
					}
					for _, ts := range show {
						fmt.Printf("             - %s cell %d replicate %d (%.0fs on %d nodes)\n",
							ts.Region, ts.Cell, ts.Replicate, ts.Time, ts.Nodes)
					}
					if len(rep.Shed) > len(show) {
						fmt.Printf("             … and %d more\n", len(rep.Shed)-len(show))
					}
				}
			}
		}
		fmt.Println()
	}

	fmt.Println("=== transfer ledger (Table II accounting) ===")
	fmt.Printf("  home→remote total: %s\n", transfer.HumanBytes(p.Ledger.TotalBytes(transfer.HomeToRemote)))
	fmt.Printf("  remote→home total: %s\n", transfer.HumanBytes(p.Ledger.TotalBytes(transfer.RemoteToHome)))
	fmt.Printf("  modeled transfer time: %.1f min\n", p.Ledger.TotalSeconds()/60)
	for _, lb := range p.Ledger.ByLabel() {
		fmt.Printf("    %-24s %s\n", lb.Label, transfer.HumanBytes(lb.Bytes))
	}
}
