// Command nightly simulates the combined daily pipeline of Figure 1: for
// each Table I workflow it packs and executes a night on the simulated
// remote cluster, accounts the data transfers between the two sites, and
// prints the nightly report — the operational view the paper's Figure 2
// timeline wraps.
//
// Usage:
//
//	nightly -workflow prediction
//	nightly -workflow all -nights 3
//	nightly -workflow prediction -fault-rate 0.05 -max-retries 3
//
// Observability: -journal FILE writes a JSONL run journal (one entry per
// closed span and per event: tasks placed/retried/shed, faults injected,
// transfer bytes), -trace-summary prints a per-phase wall-clock breakdown
// and the per-night utilization against the scheduling lower bound, and
// -metrics-dump FILE writes the unified metric registry in Prometheus text
// exposition at the end of the run ("-" for stdout).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/transfer"
)

func main() {
	workflow := flag.String("workflow", "all", "economic | prediction | calibration | all")
	nights := flag.Int("nights", 1, "nights per workflow")
	heuristic := flag.String("heuristic", "FFDT-DC", "FFDT-DC | NFDT-DC")
	carryover := flag.Bool("carryover", false, "resubmit window-misses on later nights (resiliency mode)")
	seed := flag.Uint64("seed", 7, "random seed")
	faultRate := flag.Float64("fault-rate", 0,
		"per-attempt task crash probability; DB refusals and transfer stalls run at half this rate (0 = failure-free)")
	faultSeed := flag.Uint64("fault-seed", 1, "seed of the deterministic fault model")
	maxRetries := flag.Int("max-retries", 3, "per-task requeue budget under faults (negative = shed on first failure)")
	journalPath := flag.String("journal", "", "write a JSONL run journal (span closes + events) to FILE")
	traceSummary := flag.Bool("trace-summary", false, "print per-phase wall-clock breakdown and utilization vs the scheduling bound")
	metricsDump := flag.String("metrics-dump", "", `dump Prometheus text metrics to FILE at the end of the run ("-" = stdout)`)
	flag.Parse()

	if *faultRate < 0 || *faultRate > 1 {
		log.Fatalf("-fault-rate %v outside [0, 1]", *faultRate)
	}
	if *carryover && *faultRate > 0 {
		log.Fatal("-fault-rate is not supported with -carryover (carryover nights run the failure-free model)")
	}
	faultSpec := faults.Spec{
		Seed:              *faultSeed,
		TaskCrashProb:     *faultRate,
		DBRefusalProb:     *faultRate / 2,
		TransferStallProb: *faultRate / 2,
	}
	recovery := core.RecoveryPolicy{MaxRetries: *maxRetries}

	p := core.NewPipeline(*seed)

	// Observability plumbing: a collector keeps the span/event stream in
	// memory for -trace-summary and tees it to the JSONL journal when
	// -journal is set; span durations feed epi_span_seconds on the registry.
	ctx := context.Background()
	reg := obs.NewRegistry()
	p.RegisterMetrics(reg)
	var collector *obs.Collector
	var journal *obs.Journal
	if *journalPath != "" || *traceSummary || *metricsDump != "" {
		var sink obs.Sink
		if *journalPath != "" {
			f, err := os.Create(*journalPath)
			if err != nil {
				log.Fatalf("-journal: %v", err)
			}
			defer f.Close()
			journal = obs.NewJournal(f)
			sink = journal
		}
		collector = obs.NewCollector(sink)
		ctx = obs.WithTracer(ctx, obs.NewTracer(collector, obs.WithSpanMetrics(reg)))
	}
	specs := core.TableI()
	want := strings.ToLower(*workflow)

	fmt.Println("=== weekly timeline (Figure 2) ===")
	for _, step := range core.WeeklyTimeline() {
		kind := "human"
		if step.Automated {
			kind = "auto "
		}
		fmt.Printf("  day %d [%s] %s\n", step.Day, kind, step.Name)
	}
	fmt.Println()

	day := 1
	for _, spec := range specs {
		name := strings.ToLower(spec.Kind.String())
		if want != "all" && want != name {
			continue
		}
		fmt.Printf("=== %s workflow: %d cells × %d states × %d replicates = %d simulations ===\n",
			spec.Kind, spec.Cells, spec.States, spec.Replicates, spec.Simulations())
		var reports []*core.NightReport
		if *carryover {
			var err error
			reports, err = p.RunNightsCtx(ctx, spec, *heuristic, *nights, *seed)
			if err != nil {
				fmt.Printf("  WARNING: %v\n", err)
			}
		} else {
			for n := 0; n < *nights; n++ {
				rep, err := p.RunNightCtx(ctx, core.NightConfig{
					Spec: spec, Heuristic: *heuristic,
					Seed: *seed + uint64(n), Day: day,
					Faults: faultSpec, Recovery: recovery,
				})
				if err != nil {
					log.Fatal(err)
				}
				reports = append(reports, rep)
				day++
			}
		}
		for n, rep := range reports {
			status := "within the 10h window"
			if !rep.FitsWindow {
				status = fmt.Sprintf("MISSED window (%d unstarted, %d shed)", rep.Unstarted, len(rep.Shed))
			}
			fmt.Printf("  night %d: %d tasks, makespan %.1fh, utilization %.1f%%, %s\n",
				n+1, rep.Tasks, rep.Makespan/3600, 100*rep.Utilization, status)
			if *traceSummary && rep.MakespanLB > 0 {
				fmt.Printf("           bound: makespan ≥ %.1fh ⇒ utilization ≤ %.1f%% (achieved %.1f%% of bound)\n",
					rep.MakespanLB/3600, 100*rep.UtilizationBound,
					100*rep.Utilization/rep.UtilizationBound)
			}
			fmt.Printf("           configs out %s, summaries back %s, raw kept remote %s\n",
				transfer.HumanBytes(rep.ConfigBytes),
				transfer.HumanBytes(rep.SummaryBytes),
				transfer.HumanBytes(rep.RawBytes))
			if *faultRate > 0 {
				fmt.Printf("           faults: %d crashes, %d DB refusals; %d requeues over %d rounds, %.0f node-s wasted, %d transfer retries\n",
					rep.Crashes, rep.DBRefusals, rep.Retries, rep.Rounds,
					rep.WastedNodeSeconds, rep.TransferRetries)
				if len(rep.Shed) > 0 {
					fmt.Printf("           shed %d tasks (%d retry-exhausted, %d window); lowest priority first:\n",
						len(rep.Shed), rep.ShedRetryExhausted, rep.ShedWindow)
					show := rep.Shed
					if len(show) > 5 {
						show = show[:5]
					}
					for _, ts := range show {
						fmt.Printf("             - %s cell %d replicate %d (%.0fs on %d nodes)\n",
							ts.Region, ts.Cell, ts.Replicate, ts.Time, ts.Nodes)
					}
					if len(rep.Shed) > len(show) {
						fmt.Printf("             … and %d more\n", len(rep.Shed)-len(show))
					}
				}
			}
		}
		fmt.Println()
	}

	fmt.Println("=== transfer ledger (Table II accounting) ===")
	fmt.Printf("  home→remote total: %s\n", transfer.HumanBytes(p.Ledger.TotalBytes(transfer.HomeToRemote)))
	fmt.Printf("  remote→home total: %s\n", transfer.HumanBytes(p.Ledger.TotalBytes(transfer.RemoteToHome)))
	fmt.Printf("  modeled transfer time: %.1f min\n", p.Ledger.TotalSeconds()/60)
	for _, lb := range p.Ledger.ByLabel() {
		fmt.Printf("    %-24s %s\n", lb.Label, transfer.HumanBytes(lb.Bytes))
	}

	if *traceSummary && collector != nil {
		entries := collector.Entries()
		fmt.Println()
		fmt.Println("=== trace summary (wall-clock by phase) ===")
		for _, ps := range obs.Summarize(entries) {
			fmt.Printf("  %-24s %6d spans  %12.4f s\n", ps.Name, ps.Count, ps.Seconds)
		}
		if events := obs.EventCounts(entries); len(events) > 0 {
			fmt.Println("  events:")
			for _, ev := range events {
				fmt.Printf("    %-24s %6d\n", ev.Name, ev.Count)
			}
		}
	}
	if journal != nil {
		if err := journal.Err(); err != nil {
			log.Printf("journal: %v", err)
		} else {
			fmt.Printf("\nrun journal written to %s\n", *journalPath)
		}
	}
	if *metricsDump != "" {
		out := os.Stdout
		if *metricsDump != "-" {
			f, err := os.Create(*metricsDump)
			if err != nil {
				log.Fatalf("-metrics-dump: %v", err)
			}
			defer f.Close()
			out = f
		}
		if err := reg.WritePrometheus(out); err != nil {
			log.Fatalf("-metrics-dump: %v", err)
		}
	}
}
