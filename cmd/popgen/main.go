// Command popgen generates synthetic populations and contact networks —
// the one-time data-preparation step of the pipeline. It writes the person
// and network files (CSV or binary), the partition cache, and a population
// database snapshot per region, and prints the Figure 6 size summary.
//
// Usage:
//
//	popgen -states VA,MD,DC -scale 2000 -partitions 8 -out /tmp/pops
//	popgen -all -scale 20000 -format binary -out /tmp/pops
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/popdb"
	"repro/internal/synthpop"
	"repro/internal/transfer"
)

func main() {
	statesArg := flag.String("states", "VA", "comma-separated postal codes")
	all := flag.Bool("all", false, "generate all 51 regions")
	scale := flag.Int("scale", 10000, "population scale (1:N)")
	seed := flag.Uint64("seed", 2020, "random seed")
	partitions := flag.Int("partitions", 8, "partitions to precompute")
	format := flag.String("format", "csv", "csv | binary")
	outDir := flag.String("out", "", "output directory (omit to print sizes only)")
	flag.Parse()

	var states []synthpop.StateInfo
	if *all {
		states = synthpop.States
	} else {
		for _, code := range strings.Split(*statesArg, ",") {
			st, err := synthpop.StateByCode(strings.TrimSpace(code))
			if err != nil {
				log.Fatal(err)
			}
			states = append(states, st)
		}
	}
	cfg := synthpop.DefaultConfig(*seed)
	cfg.Scale = *scale

	fmt.Printf("%-6s %10s %12s %8s %10s %10s\n", "state", "persons", "edges", "degree", "person-file", "edge-file")
	var totalNodes, totalEdges int64
	for _, st := range states {
		net, err := synthpop.Generate(st, cfg)
		if err != nil {
			log.Fatal(err)
		}
		totalNodes += int64(net.NumNodes())
		totalEdges += int64(net.NumEdges())
		fmt.Printf("%-6s %10d %12d %8.1f %10s %10s\n",
			st.Code, net.NumNodes(), net.NumEdges(), net.MeanDegree(),
			transfer.HumanBytes(net.PersonBytes()), transfer.HumanBytes(net.EdgeBytes()))
		if *outDir == "" {
			continue
		}
		dir := filepath.Join(*outDir, st.Code)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
		// Person + network files.
		switch *format {
		case "csv":
			writeFile(filepath.Join(dir, "persons.csv"), func(f *os.File) error {
				return synthpop.WritePersonsCSV(f, net)
			})
			writeFile(filepath.Join(dir, "network.csv"), func(f *os.File) error {
				return synthpop.WriteNetworkCSV(f, net)
			})
		case "binary":
			writeFile(filepath.Join(dir, "network.bin"), func(f *os.File) error {
				return synthpop.WriteNetworkBinary(f, net)
			})
		default:
			log.Fatalf("unknown format %q", *format)
		}
		// Partition cache.
		parts := net.PartitionNodes(*partitions, 0.01)
		writeFile(filepath.Join(dir, "partitions.bin"), func(f *os.File) error {
			return synthpop.WritePartitions(f, parts)
		})
		// Population DB snapshot.
		db, err := popdb.NewServer(st.Code, net.Persons, 16)
		if err != nil {
			log.Fatal(err)
		}
		snap, err := db.TakeSnapshot()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "popdb.snapshot"), snap, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\ntotal: %d persons, %d edges (scale 1:%d → %d persons, %d edges at 1:1)\n",
		totalNodes, totalEdges, *scale,
		totalNodes*int64(*scale), totalEdges*int64(*scale))
	if *outDir != "" {
		fmt.Printf("wrote artifacts under %s\n", *outDir)
	}
}

func writeFile(path string, fn func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := fn(f); err != nil {
		log.Fatal(err)
	}
}
