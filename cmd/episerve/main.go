// Command episerve is the scenario service: an HTTP front end over the
// three production workflows (prediction, what-if, nightly). Policy-makers
// submit scenario specs, the service content-addresses each spec, runs it
// through a bounded job queue over a shared core.Pipeline, and serves
// results from an LRU cache with single-flight deduplication.
//
// Usage:
//
//	episerve -addr :8080 -workers 2 -queue 16 -cache 64 -scale 20000 -seed 2020
//
// Submit, poll and fetch:
//
//	curl -s -X POST localhost:8080/scenarios -d '{"workflow":"prediction","state":"VA","days":60}'
//	curl -s localhost:8080/scenarios/<id>
//	curl -s localhost:8080/scenarios/<id>/result
//	curl -s localhost:8080/readyz           # readiness incl. fidelity tier warm state
//	curl -s localhost:8080/metrics          # Prometheus text (unified registry)
//	curl -s localhost:8080/metrics.json     # legacy JSON snapshot
//
// With -fidelity (default on), specs may carry "fidelity": "auto" and a
// "max_uncertainty" budget: the service then answers from a GP emulator or
// the corrected county metapop when they can meet the budget, running the
// full ABM only otherwise (and folding every ABM answer back into the
// emulator's training set). "fidelity": "abm" forces the exact path;
// omitting the field keeps the legacy behavior byte-for-byte.
//
// /metrics serves the unified registry: service counters (submissions,
// queue, cache, per-workflow latency histograms) plus the shared pipeline's
// transfer-ledger and fault counters and the what-if snapshot store
// (epi_snapshot_* hit/miss/eviction/occupancy series; budget set by
// -snap-cache). -pprof additionally mounts net/http/pprof under
// /debug/pprof/.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes, queued
// and in-flight jobs drain (bounded by -drain-timeout), then the process
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/fidelity"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/scenario"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 2, "worker pool size")
	queueCap := flag.Int("queue", 16, "job queue capacity (full queue returns 429)")
	cacheCap := flag.Int("cache", 64, "result cache capacity (LRU entries)")
	snapCacheMB := flag.Int64("snap-cache", core.DefaultSnapshotCacheBytes>>20,
		"what-if snapshot cache budget in MB (0 disables cross-request prefix reuse)")
	scale := flag.Int("scale", 20000, "population scale (1:N)")
	seed := flag.Uint64("seed", 2020, "pipeline random seed")
	parallelism := flag.Int("parallelism", 2, "per-simulation processing units; superseded by -shards when set")
	shards := flag.Int("shards", 0, "per-simulation shard count, each shard owning a disjoint node range (0 = -parallelism); results are bit-identical at any value")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "graceful shutdown budget")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	enableFidelity := flag.Bool("fidelity", true,
		"enable the fidelity ladder (specs with a fidelity field route through emulator/metapop/abm tiers)")
	fidelityMinFit := flag.Int("fidelity-min-fit", 8, "ABM design points before a family's emulator fits")
	fidelityCacheMB := flag.Int64("fidelity-cache", 64, "fidelity training-set cache budget in MB")
	replicas := flag.Int("replicas", 1,
		"scenario service replicas behind one front door (>1 enables the shared result store, work-stealing and /replicas)")
	batchWindow := flag.Duration("batch-window", 0,
		"what-if ensemble batching window under -replicas > 1 (0 disables; e.g. 25ms folds near-identical specs into one run)")
	recorderCap := flag.Int("recorder", 256,
		"flight-recorder capacity: last N request traces kept at /debug/requests (0 disables request tracing, RED series and /slo)")
	sloP99 := flag.Duration("slo-p99", 0,
		"latency objective a good request must meet (0 = error-budget SLO only)")
	sloObjective := flag.Float64("slo-objective", 0.99,
		"fraction of requests that must be good over -slo-window")
	sloWindow := flag.Duration("slo-window", time.Hour,
		"long SLO burn window; burn rates also computed over window/12 and window/3")
	requestJournal := flag.String("request-journal", "",
		"JSONL file receiving every request-trace span/event (flushed and closed on drain); empty disables")
	flag.Parse()

	effShards := *shards
	if effShards <= 0 {
		effShards = *parallelism
	}
	p := core.NewPipeline(*seed, core.WithScale(*scale), core.WithParallelism(effShards),
		core.WithSnapshotCacheBytes(*snapCacheMB<<20))
	reg := obs.NewRegistry()
	p.RegisterMetrics(reg)
	var router *fidelity.Router
	if *enableFidelity {
		router = fidelity.NewRouter(fidelity.Config{
			Fingerprint: p.Fingerprint(), Scale: *scale,
			MinFit: *fidelityMinFit, MaxBytes: *fidelityCacheMB << 20,
		})
		router.RegisterMetrics(reg)
		defer router.Close()
	}
	svcCfg := scenario.Config{
		Pipeline: p, Workers: *workers, QueueCap: *queueCap, CacheCap: *cacheCap,
		Registry: reg, Fidelity: router,
	}
	// Request-scoped serving observability: trace every scenario request
	// into the flight recorder, optionally teeing the span/event stream to
	// a JSONL journal that MUST be flushed+closed after drain (the tail of
	// a terminated run is exactly the part worth keeping).
	var servingObs *scenario.ServingObs
	var journal *obs.Journal
	if *recorderCap > 0 {
		obsCfg := scenario.ServingObsConfig{
			RecorderCapacity: *recorderCap,
			SLOTarget:        *sloP99,
			SLOObjective:     *sloObjective,
			SLOWindow:        *sloWindow,
		}
		if *requestJournal != "" {
			var err error
			journal, err = obs.OpenFileJournal(*requestJournal)
			if err != nil {
				log.Fatalf("request journal: %v", err)
			}
			obsCfg.Journal = journal
		}
		servingObs = scenario.NewServingObs(reg, obsCfg)
	}
	var handler http.Handler
	var drain func(context.Context) error
	if *replicas > 1 {
		coord, err := replica.NewCoordinator(replica.Config{
			Replicas: *replicas, Base: svcCfg,
			BatchWindow: *batchWindow, Registry: reg,
		})
		if err != nil {
			log.Fatal(err)
		}
		handler = scenario.NewBackendServer(coord, servingObs)
		drain = coord.Drain
	} else {
		svc := scenario.NewService(svcCfg)
		handler = scenario.NewServer(svc, servingObs)
		drain = svc.Drain
	}
	if *enablePprof {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
	}
	srv := &http.Server{Addr: *addr, Handler: handler}

	errc := make(chan error, 1)
	go func() {
		log.Printf("episerve listening on %s (replicas=%d workers=%d queue=%d cache=%d scale=1:%d seed=%d)",
			*addr, *replicas, *workers, *queueCap, *cacheCap, *scale, *seed)
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("received %s, draining (budget %s)", sig, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := drain(ctx); err != nil {
		log.Printf("drain interrupted, in-flight jobs canceled: %v", err)
	} else {
		log.Printf("drained cleanly")
	}
	// Close the request journal only after the drain settled: jobs that ran
	// to completion during the drain emit their final spans through it, and
	// Close flushes the buffered writer so those last entries survive.
	if journal != nil {
		if err := journal.Close(); err != nil {
			log.Printf("request journal close: %v", err)
		}
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("serve: %v", err)
	}
}
