package repro

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/scenario"
)

// BenchmarkScenarioQueueThroughput measures how fast the scenario service
// moves distinct jobs through its bounded queue and worker pool, with a
// no-op runner isolating the queue/bookkeeping overhead from workflow cost.
func BenchmarkScenarioQueueThroughput(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			svc := scenario.NewService(scenario.Config{
				Workers: workers, QueueCap: 64, CacheCap: 1,
				Fingerprint: "bench",
				Runner: func(ctx context.Context, spec scenario.Spec) (*scenario.Result, error) {
					return &scenario.Result{}, nil
				},
			})
			defer svc.Drain(context.Background())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Cycle distinct specs so every submission is a fresh job,
				// not a cache hit (CacheCap 1 evicts almost immediately).
				j, err := svc.Submit(scenario.Spec{
					Workflow: "prediction", State: "VA", Days: (i % 300) + 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := j.Wait(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScenarioColdVsWarm contrasts a cold submission (full prediction
// workflow execution) with a warm one served from the content-addressed
// cache — the latency the cache buys for repeated policy questions.
func BenchmarkScenarioColdVsWarm(b *testing.B) {
	spec := scenario.Spec{
		Workflow: "prediction", State: "RI", Days: 30, Replicates: 2,
		Configs: []scenario.ParamSpec{{TAU: 0.22, SYMP: 0.6, SHCompliance: 0.4, VHICompliance: 0.4}},
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			p := core.NewPipeline(uint64(i)+1, core.WithScale(40000), core.WithParallelism(2))
			svc := scenario.NewService(scenario.Config{Pipeline: p, Workers: 1, QueueCap: 4, CacheCap: 4})
			b.StartTimer()
			j, err := svc.Submit(spec)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := j.Wait(context.Background()); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			svc.Drain(context.Background())
			b.StartTimer()
		}
	})
	b.Run("warm", func(b *testing.B) {
		p := core.NewPipeline(1, core.WithScale(40000), core.WithParallelism(2))
		svc := scenario.NewService(scenario.Config{Pipeline: p, Workers: 1, QueueCap: 4, CacheCap: 4})
		defer svc.Drain(context.Background())
		j, err := svc.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := j.Wait(context.Background()); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j, err := svc.Submit(spec)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := j.Wait(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
		if hits := svc.MetricsSnapshot().Cache.Hits; hits < int64(b.N) {
			b.Fatalf("cache hits %d want ≥ %d (warm path fell through to execution)", hits, b.N)
		}
	})
}
