# Repeatable gates for the repo. `make tier1` is the seed gate (build +
# tests); `make race` runs the full suite under the race detector — the
# fault-injection layer and the popdb/workflow concurrency paths must stay
# race-clean. `make check` runs both.

GO ?= go

.PHONY: tier1 race fuzz check

tier1:
	$(GO) build ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short exploratory fuzz pass over the scheduler targets (the seed corpus
# always runs as part of tier1).
fuzz:
	$(GO) test ./internal/sched -fuzz FuzzRelaxedColoring -fuzztime 10s
	$(GO) test ./internal/sched -fuzz FuzzScheduleRoundTrip -fuzztime 10s

check: tier1 race
