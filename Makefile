# Repeatable gates for the repo. `make tier1` is the seed gate (build +
# tests); `make race` runs the full suite under the race detector — the
# fault-injection layer, the popdb/workflow concurrency paths and the
# scenario service's queue/cache must stay race-clean. `make vet` and
# `make fmt-check` are static gates. `make check` runs all of them.

GO ?= go

.PHONY: tier1 race vet fmt-check fuzz check

tier1:
	$(GO) build ./...
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Fails when any file needs `gofmt -w`, listing the offenders.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Short exploratory fuzz pass over the scheduler targets (the seed corpus
# always runs as part of tier1).
fuzz:
	$(GO) test ./internal/sched -fuzz FuzzRelaxedColoring -fuzztime 10s
	$(GO) test ./internal/sched -fuzz FuzzScheduleRoundTrip -fuzztime 10s

check: fmt-check vet tier1 race
