# Repeatable gates for the repo. `make tier1` is the seed gate (build +
# tests); `make race` runs the full suite under the race detector — the
# fault-injection layer, the popdb/workflow concurrency paths and the
# scenario service's queue/cache must stay race-clean. `make vet` and
# `make fmt-check` are static gates. `make check` runs all of them.

GO ?= go

.PHONY: tier1 race vet fmt-check fuzz check bench-json loadtest

tier1:
	$(GO) build ./...
	$(GO) vet ./internal/obs
	$(GO) test ./...
	$(GO) test -race ./internal/mcmc ./internal/calib ./internal/obs
	$(GO) test -race ./internal/castore
	$(GO) test -race ./internal/fidelity
	$(GO) test -race ./internal/scenario ./internal/replica
	$(GO) test -race -run 'Snapshot|WhatIf|Shard|Determinism' ./internal/epihiper ./internal/core

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Fails when any file needs `gofmt -w`, listing the offenders.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Machine-readable record of the performance benchmarks: the Fig 7
# runtime-vs-size sweep, the steady-state transmission-kernel pass, the
# calibration stack (dense vs Woodbury likelihood, serial vs multi-chain
# Sample at a fixed draw budget), the observability overhead pair
# (replicate fan-out with tracing off vs on — budget ≤3% — plus the obs
# primitive costs), and the what-if fan-out sweep (N=8 scenarios unshared
# vs branched from shared-prefix snapshots, cold and warm cache, with the
# speedup_x acceptance metric), the fidelity ladder (emulator hit vs
# corrected metapop vs escalate-to-ABM, with speedup_x = ABM over emulator
# ns/op — the serving tier's ≥100× acceptance metric), and the shard
# scaling curve (full kernel at 1/2/4/8 shards over the golden network),
# with -benchmem so the zero-allocation claims are part of the artifact.
# The replica load proof (64 closed-loop clients over the HTTP front door
# at 1 vs 2 replicas, reporting client-side p50_ms/p99_ms/rps) rides along
# so the multi-replica throughput claim is part of the same artifact, as
# does the serving-tier observability overhead proof (paired off/on stacks
# serving alternating real-pipeline requests; overhead-pct budget ≤3).
# CI uploads the file as a non-gating artifact.
BENCH_JSON ?= BENCH_PR10.json
bench-json:
	$(GO) test -run '^$$' -bench 'BenchmarkFig7TopRuntimeVsSize$$' -benchmem . > bench_raw.txt
	$(GO) test -run '^$$' -bench 'BenchmarkWhatIfFanout$$' -benchmem . >> bench_raw.txt
	$(GO) test -run '^$$' -bench 'BenchmarkTransmissionPhase$$' -benchmem ./internal/epihiper >> bench_raw.txt
	$(GO) test -run '^$$' -bench 'BenchmarkLogLik|BenchmarkSample' -benchmem ./internal/calib >> bench_raw.txt
	$(GO) test -run '^$$' -bench 'BenchmarkReplicatesObs' -benchmem ./internal/epihiper >> bench_raw.txt
	$(GO) test -run '^$$' -bench 'BenchmarkCounterInc|BenchmarkHistogramObserve|BenchmarkSpanStartEnd|BenchmarkWritePrometheus' -benchmem ./internal/obs >> bench_raw.txt
	$(GO) test -run '^$$' -bench 'BenchmarkFidelityLadder' -benchmem ./internal/fidelity >> bench_raw.txt
	$(GO) test -run '^$$' -bench 'BenchmarkShardScaling' -benchmem ./internal/epihiper >> bench_raw.txt
	$(GO) test -run '^$$' -bench 'BenchmarkReplicaLoadgen' -benchmem . >> bench_raw.txt
	$(GO) test -run '^$$' -bench 'BenchmarkServingObsOverhead$$' -benchmem ./internal/scenario >> bench_raw.txt
	$(GO) run ./cmd/benchjson -o $(BENCH_JSON) < bench_raw.txt
	@rm -f bench_raw.txt

# Deterministic short load profile: the 64-client load proof and the chaos
# gate (kill one of three replicas mid-run; every job completes exactly
# once on a peer). Non-gating in CI, cheap enough to run locally on demand.
loadtest:
	$(GO) test -race -run 'TestLoadProof|TestChaosKillReplicaMidRun' -v -count=1 ./internal/replica

# Short exploratory fuzz pass over the scheduler and snapshot-codec
# targets (the seed corpus always runs as part of tier1).
fuzz:
	$(GO) test ./internal/sched -fuzz FuzzRelaxedColoring -fuzztime 10s
	$(GO) test ./internal/sched -fuzz FuzzScheduleRoundTrip -fuzztime 10s
	$(GO) test ./internal/epihiper -fuzz FuzzSnapshotRoundTrip -fuzztime 10s
	$(GO) test ./internal/fidelity -fuzz FuzzFidelityRoute -fuzztime 10s

check: fmt-check vet tier1 race
