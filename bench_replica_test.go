package repro

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/replica"
	"repro/internal/scenario"
)

// BenchmarkReplicaLoadgen is the PR 9 load proof: 64 concurrent closed-loop
// clients drive cache-miss traffic through the full HTTP front door at one
// and two replicas. The modeled workflow cost is a 2ms cancellation-aware
// service time, so the work is latency-bound and sustained throughput
// scales with the cluster's total worker count — the acceptance bar is
// ≥1.5× requests/second at replicas=2 over replicas=1 (each replica runs
// two workers). Client-side p50/p99 latency and throughput are reported as
// benchmark metrics and land in BENCH_PR9.json via `make bench-json`.
func BenchmarkReplicaLoadgen(b *testing.B) {
	const (
		clients     = 64
		serviceTime = 2 * time.Millisecond
	)
	runnerFor := func(int) scenario.Runner {
		return func(ctx context.Context, spec scenario.Spec) (*scenario.Result, error) {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(serviceTime):
				return &scenario.Result{}, nil
			}
		}
	}
	for _, replicas := range []int{1, 2} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			c, err := replica.NewCoordinator(replica.Config{
				Replicas: replicas,
				Base: scenario.Config{
					Workers: 2, QueueCap: 128, Fingerprint: "bench-replica",
				},
				RunnerFor: runnerFor,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				_ = c.Drain(ctx)
			}()
			ts := httptest.NewServer(scenario.NewBackendServer(c))
			defer ts.Close()

			b.ResetTimer()
			rep, err := replica.RunLoadgen(replica.LoadgenConfig{
				BaseURL: ts.URL, Clients: clients, Requests: b.N,
				Priority: "interactive",
			})
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			if rep.Errors > 0 {
				b.Fatalf("%d/%d requests failed: %v", rep.Errors, rep.Requests, rep.StatusDist)
			}
			b.ReportMetric(rep.P50ms, "p50_ms")
			b.ReportMetric(rep.P99ms, "p99_ms")
			b.ReportMetric(rep.Throughput, "rps")
		})
	}
}
