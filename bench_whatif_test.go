package repro

import (
	"testing"
	"time"

	"repro/internal/core"
)

// whatIfBenchConfig is the PR 6 acceptance sweep: one calibrated
// configuration, a 90-day horizon, and N=8 scenarios all pivoting at day
// 60. Unshared, every scenario re-simulates days [0,60) of identical
// baseline history; shared, that prefix is simulated once and every
// scenario branches from its snapshot — the theoretical wall-clock ratio is
// (8*90)/(60+8*30) = 2.4x.
func whatIfBenchConfig() (core.PredictionConfig, []core.WhatIf) {
	cfg := core.PredictionConfig{
		State: "VA",
		Configs: []core.Params{
			{TAU: 0.25, SYMP: 0.65, SHCompliance: 0.5, VHICompliance: 0.5},
		},
		Replicates: 2,
		Days:       90,
		SHStart:    20,
	}
	scenarios := []core.WhatIf{
		{Name: "sh-lifted-2w-early", PivotDay: 60, SHEndShift: -14},
		{Name: "sh-extended-2w", PivotDay: 60, SHEndShift: 14},
		{Name: "compliance-up-25pct", PivotDay: 60, ComplianceScale: 1.25},
		{Name: "compliance-down-25pct", PivotDay: 60, ComplianceScale: 0.75},
		{Name: "testing", PivotDay: 60, AddTesting: 0.2},
		{Name: "tracing-d1", PivotDay: 60, AddTracing: 1, TraceDetectProb: 0.3},
		{Name: "tracing-d2", PivotDay: 60, AddTracing: 2, TraceDetectProb: 0.3},
		{Name: "test-and-trace", PivotDay: 60, AddTesting: 0.2, AddTracing: 1, TraceDetectProb: 0.3},
	}
	return cfg, scenarios
}

func whatIfBenchPipeline() *core.Pipeline {
	return core.NewPipeline(606, core.WithScale(5000), core.WithParallelism(2))
}

// BenchmarkWhatIfFanout measures the N=8 what-if sweep three ways:
// every scenario from scratch (the pre-snapshot baseline), branched from a
// cold checkpoint store (prefix simulated once per call), and branched warm
// (prefixes already cached from a previous call — the steady state of an
// operator iterating on scenarios).
func BenchmarkWhatIfFanout(b *testing.B) {
	cfg, scenarios := whatIfBenchConfig()

	b.Run("unshared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			p := whatIfBenchPipeline()
			p.Network(cfg.State) // stage the network outside the timed region
			b.StartTimer()
			if _, err := p.RunWhatIfScenariosUnshared(b.Context(), cfg, scenarios); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("shared-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			p := whatIfBenchPipeline()
			p.Network(cfg.State)
			b.StartTimer()
			if _, err := p.RunWhatIfScenarios(cfg, scenarios); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("shared-warm", func(b *testing.B) {
		p := whatIfBenchPipeline()
		if _, err := p.RunWhatIfScenarios(cfg, scenarios); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.RunWhatIfScenarios(cfg, scenarios); err != nil {
				b.Fatal(err)
			}
		}
	})

	// speedup runs the cold shared and unshared sweeps back to back on
	// fresh pipelines and reports the acceptance metric directly: the
	// wall-clock ratio unshared/shared (must stay >= 2).
	b.Run("speedup", func(b *testing.B) {
		var shared, unshared time.Duration
		for i := 0; i < b.N; i++ {
			pS := whatIfBenchPipeline()
			pS.Network(cfg.State)
			t0 := time.Now()
			if _, err := pS.RunWhatIfScenarios(cfg, scenarios); err != nil {
				b.Fatal(err)
			}
			shared += time.Since(t0)

			pU := whatIfBenchPipeline()
			pU.Network(cfg.State)
			t1 := time.Now()
			if _, err := pU.RunWhatIfScenariosUnshared(b.Context(), cfg, scenarios); err != nil {
				b.Fatal(err)
			}
			unshared += time.Since(t1)
		}
		b.ReportMetric(unshared.Seconds()/shared.Seconds(), "speedup_x")
	})
}
