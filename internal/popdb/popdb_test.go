package popdb

import (
	"sync"
	"testing"

	"repro/internal/synthpop"
)

func testPersons(n int) []synthpop.Person {
	ps := make([]synthpop.Person, n)
	for i := range ps {
		ps[i] = synthpop.Person{ID: int32(i), Age: uint8(20 + i%50), CountyFIPS: int32(51001 + (i%3)*2)}
	}
	return ps
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer("VA", nil, 0); err == nil {
		t.Fatal("zero connection bound accepted")
	}
	s, err := NewServer("VA", testPersons(10), 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Region() != "VA" || s.NumPersons() != 10 || s.MaxConns() != 2 {
		t.Fatal("accessors wrong")
	}
}

func TestConnectionBoundEnforced(t *testing.T) {
	s, _ := NewServer("VA", testPersons(5), 2)
	c1, err := s.TryConnect()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.TryConnect()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.TryConnect(); err != ErrTooManyConnections {
		t.Fatalf("third connection: %v want ErrTooManyConnections", err)
	}
	c1.Close()
	c3, err := s.TryConnect()
	if err != nil {
		t.Fatalf("connect after close: %v", err)
	}
	c2.Close()
	c3.Close()
	st := s.Stats()
	if st.Open != 0 || st.Peak != 2 || st.Refused != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestDoubleCloseSafe(t *testing.T) {
	s, _ := NewServer("VA", testPersons(5), 1)
	c, _ := s.TryConnect()
	c.Close()
	c.Close()
	if st := s.Stats(); st.Open != 0 {
		t.Fatalf("double close corrupted count: %+v", st)
	}
}

func TestQueries(t *testing.T) {
	s, _ := NewServer("VA", testPersons(9), 4)
	c, _ := s.TryConnect()
	defer c.Close()
	p, err := c.Person(3)
	if err != nil || p.ID != 3 {
		t.Fatalf("person query: %+v, %v", p, err)
	}
	if _, err := c.Person(99); err == nil {
		t.Error("missing person accepted")
	}
	ids, err := c.PersonsInCounty(51001)
	if err != nil || len(ids) != 3 {
		t.Fatalf("county query: %v, %v", ids, err)
	}
	counties, err := c.Counties()
	if err != nil || len(counties) != 3 {
		t.Fatalf("counties: %v, %v", counties, err)
	}
	// Four queries served, including the failed Person lookup.
	if s.Stats().Queries != 4 {
		t.Fatalf("query count %d want 4", s.Stats().Queries)
	}
}

func TestClosedConnectionRejectsQueries(t *testing.T) {
	s, _ := NewServer("VA", testPersons(3), 1)
	c, _ := s.TryConnect()
	c.Close()
	if _, err := c.Person(0); err == nil {
		t.Error("closed conn served Person")
	}
	if _, err := c.PersonsInCounty(51001); err == nil {
		t.Error("closed conn served PersonsInCounty")
	}
	if _, err := c.Counties(); err == nil {
		t.Error("closed conn served Counties")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s, _ := NewServer("VA", testPersons(20), 3)
	snap, err := s.TakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromSnapshot(snap, 5)
	if err != nil {
		t.Fatal(err)
	}
	if back.Region() != "VA" || back.NumPersons() != 20 || back.MaxConns() != 5 {
		t.Fatalf("snapshot server wrong: %s %d %d", back.Region(), back.NumPersons(), back.MaxConns())
	}
	c, _ := back.TryConnect()
	defer c.Close()
	p, err := c.Person(7)
	if err != nil || p.Age != uint8(20+7%50) {
		t.Fatalf("snapshot person: %+v, %v", p, err)
	}
}

func TestFromSnapshotBadData(t *testing.T) {
	if _, err := FromSnapshot([]byte("garbage"), 2); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

func TestConcurrentConnectionsNeverExceedBound(t *testing.T) {
	const bound = 8
	s, _ := NewServer("VA", testPersons(100), bound)
	var wg sync.WaitGroup
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c, err := s.TryConnect()
				if err != nil {
					continue
				}
				if _, err := c.Person(int32(i % 100)); err != nil {
					t.Error(err)
				}
				c.Close()
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.Peak > bound {
		t.Fatalf("peak %d exceeded bound %d", st.Peak, bound)
	}
	if st.Open != 0 {
		t.Fatalf("%d connections leaked", st.Open)
	}
}
