// Package popdb provides the run-time population database of the workflow.
//
// The production pipeline loads each region's synthetic-person table into a
// PostgreSQL server started per population on a cluster node; simulations
// query traits at run time, and the number of simultaneous connections is
// hard-bounded "for technology and efficiency reasons" — the constraint
// that turns the workflow-mapping problem into DB-WMP (Section V). This
// package reproduces that substrate in-process: a per-region Server with a
// strict connection cap, snapshot instantiation (the paper snapshots the
// databases to speed up nightly start-up), and trait queries.
package popdb

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"repro/internal/synthpop"
)

// Server serves one region's person table under a connection bound.
type Server struct {
	region   string
	persons  []synthpop.Person
	byCounty map[int32][]int32
	maxConns int

	mu       sync.Mutex
	open     int
	peak     int
	refused  int
	injected int
	attempts int
	queries  int64
	fault    FaultFn
}

// FaultFn decides whether connection attempt `attempt` (0-based, counted
// over the server's lifetime) is transiently refused — the nightly
// "database connection refused" failure mode the production pipeline
// restarted by hand. Implementations must be deterministic pure functions
// of the attempt number if reproducible runs are wanted; they are called
// under the server lock and must not call back into the server.
type FaultFn func(attempt int) bool

// SetFault installs (or, with nil, clears) a transient connection-fault
// hook consulted by TryConnect before the bound check.
func (s *Server) SetFault(f FaultFn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fault = f
}

// NewServer builds a server over the given persons with the given maximum
// number of simultaneous connections (B(T[r]) in the paper's notation).
func NewServer(region string, persons []synthpop.Person, maxConns int) (*Server, error) {
	if maxConns <= 0 {
		return nil, fmt.Errorf("popdb: connection bound must be positive, got %d", maxConns)
	}
	s := &Server{
		region:   region,
		persons:  persons,
		byCounty: make(map[int32][]int32),
		maxConns: maxConns,
	}
	for i := range persons {
		p := &persons[i]
		s.byCounty[p.CountyFIPS] = append(s.byCounty[p.CountyFIPS], p.ID)
	}
	return s, nil
}

// Region returns the server's region code.
func (s *Server) Region() string { return s.region }

// MaxConns returns the connection bound.
func (s *Server) MaxConns() int { return s.maxConns }

// NumPersons returns the size of the served population.
func (s *Server) NumPersons() int { return len(s.persons) }

// Conn is an open connection to a Server. Connections are not safe for
// concurrent use; open one per worker.
type Conn struct {
	s      *Server
	closed bool
}

// ErrTooManyConnections is returned by TryConnect when the server is at its
// bound.
var ErrTooManyConnections = fmt.Errorf("popdb: connection bound reached")

// ErrConnectionRefused is returned by TryConnect when an injected fault
// transiently refuses the attempt; retrying may succeed.
var ErrConnectionRefused = fmt.Errorf("popdb: connection refused (transient fault)")

// TryConnect opens a connection, failing immediately with
// ErrTooManyConnections when the server is at its cap, or with
// ErrConnectionRefused when the installed fault hook refuses the attempt.
// Schedulers use the cap a priori; TryConnect enforces it at run time as a
// backstop.
func (s *Server) TryConnect() (*Conn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	attempt := s.attempts
	s.attempts++
	if s.fault != nil && s.fault(attempt) {
		s.refused++
		s.injected++
		return nil, ErrConnectionRefused
	}
	if s.open >= s.maxConns {
		s.refused++
		return nil, ErrTooManyConnections
	}
	s.open++
	if s.open > s.peak {
		s.peak = s.open
	}
	return &Conn{s: s}, nil
}

// ConnectWithRetry calls TryConnect up to maxAttempts times, retrying only
// transient injected refusals (ErrConnectionRefused). A bound refusal is
// returned immediately: the scheduler's DB constraint, not a fault,
// produced it, and retrying without a slot being freed cannot help.
func ConnectWithRetry(s *Server, maxAttempts int) (*Conn, error) {
	if maxAttempts <= 0 {
		maxAttempts = 1
	}
	var err error
	for i := 0; i < maxAttempts; i++ {
		var c *Conn
		c, err = s.TryConnect()
		if err == nil {
			return c, nil
		}
		if err != ErrConnectionRefused {
			return nil, err
		}
	}
	return nil, fmt.Errorf("popdb: %d attempts refused: %w", maxAttempts, err)
}

// Close releases the connection. Closing twice is a no-op.
func (c *Conn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.s.mu.Lock()
	c.s.open--
	c.s.mu.Unlock()
}

// Person returns the person with the given ID.
func (c *Conn) Person(id int32) (synthpop.Person, error) {
	if c.closed {
		return synthpop.Person{}, fmt.Errorf("popdb: query on closed connection")
	}
	c.s.mu.Lock()
	c.s.queries++
	c.s.mu.Unlock()
	if id < 0 || int(id) >= len(c.s.persons) {
		return synthpop.Person{}, fmt.Errorf("popdb: person %d not found", id)
	}
	return c.s.persons[id], nil
}

// PersonsInCounty returns the IDs of persons living in the county.
func (c *Conn) PersonsInCounty(fips int32) ([]int32, error) {
	if c.closed {
		return nil, fmt.Errorf("popdb: query on closed connection")
	}
	c.s.mu.Lock()
	c.s.queries++
	c.s.mu.Unlock()
	return c.s.byCounty[fips], nil
}

// Counties returns all county FIPS codes present in the population.
func (c *Conn) Counties() ([]int32, error) {
	if c.closed {
		return nil, fmt.Errorf("popdb: query on closed connection")
	}
	c.s.mu.Lock()
	c.s.queries++
	c.s.mu.Unlock()
	out := make([]int32, 0, len(c.s.byCounty))
	for f := range c.s.byCounty {
		out = append(out, f)
	}
	return out, nil
}

// Stats is a snapshot of the server's usage counters.
type Stats struct {
	Open, Peak, Refused int
	// Injected counts refusals produced by the fault hook (a subset of
	// Refused); Attempts counts every TryConnect call.
	Injected, Attempts int
	Queries            int64
}

// Stats returns current usage counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Open: s.open, Peak: s.peak, Refused: s.refused,
		Injected: s.injected, Attempts: s.attempts, Queries: s.queries}
}

// Snapshot is a serialized person table; the workflow generates one per
// population when the populations are created and instantiates servers
// from it at run time.
type Snapshot struct {
	Region  string
	Persons []synthpop.Person
}

// TakeSnapshot serializes the server's population.
func (s *Server) TakeSnapshot() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(Snapshot{Region: s.region, Persons: s.persons}); err != nil {
		return nil, fmt.Errorf("popdb: snapshot encode: %w", err)
	}
	return buf.Bytes(), nil
}

// FromSnapshot instantiates a server from a snapshot with the given
// connection bound.
func FromSnapshot(data []byte, maxConns int) (*Server, error) {
	var snap Snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("popdb: snapshot decode: %w", err)
	}
	return NewServer(snap.Region, snap.Persons, maxConns)
}
