package popdb

import (
	"errors"
	"sync"
	"testing"
)

func TestFaultHookRefuses(t *testing.T) {
	s, _ := NewServer("VA", testPersons(5), 2)
	s.SetFault(func(attempt int) bool { return attempt == 0 })
	if _, err := s.TryConnect(); !errors.Is(err, ErrConnectionRefused) {
		t.Fatalf("first attempt: %v want ErrConnectionRefused", err)
	}
	c, err := s.TryConnect()
	if err != nil {
		t.Fatalf("second attempt: %v", err)
	}
	c.Close()
	st := s.Stats()
	if st.Injected != 1 || st.Attempts != 2 || st.Refused != 1 {
		t.Fatalf("stats %+v", st)
	}
	// Clearing the hook restores fault-free behaviour.
	s.SetFault(nil)
	c, err = s.TryConnect()
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if got := s.Stats().Injected; got != 1 {
		t.Fatalf("injected count moved to %d after clearing the hook", got)
	}
}

func TestConnectWithRetryRecoversTransientFaults(t *testing.T) {
	s, _ := NewServer("VA", testPersons(5), 2)
	s.SetFault(func(attempt int) bool { return attempt < 2 })
	c, err := ConnectWithRetry(s, 3)
	if err != nil {
		t.Fatalf("retry through 2 refusals: %v", err)
	}
	c.Close()
	if st := s.Stats(); st.Injected != 2 || st.Attempts != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestConnectWithRetryExhausts(t *testing.T) {
	s, _ := NewServer("VA", testPersons(5), 2)
	s.SetFault(func(int) bool { return true })
	if _, err := ConnectWithRetry(s, 4); !errors.Is(err, ErrConnectionRefused) {
		t.Fatalf("exhausted retry should wrap ErrConnectionRefused, got %v", err)
	}
	if st := s.Stats(); st.Attempts != 4 {
		t.Fatalf("attempts %d want 4", st.Attempts)
	}
}

// Bound refusals are the scheduler's constraint, not a transient fault —
// retrying without a freed slot cannot help, so they return immediately.
func TestConnectWithRetryDoesNotRetryBoundRefusals(t *testing.T) {
	s, _ := NewServer("VA", testPersons(5), 1)
	c, _ := s.TryConnect()
	defer c.Close()
	if _, err := ConnectWithRetry(s, 10); !errors.Is(err, ErrTooManyConnections) {
		t.Fatalf("got %v want ErrTooManyConnections", err)
	}
	if st := s.Stats(); st.Attempts != 2 { // the held conn + one refused try
		t.Fatalf("bound refusal was retried: %d attempts", st.Attempts)
	}
}

// The fault hook is consulted under the server lock; hammering TryConnect
// from many goroutines must stay race-free (exercised by `make race`).
func TestFaultHookConcurrent(t *testing.T) {
	s, _ := NewServer("VA", testPersons(5), 4)
	s.SetFault(func(attempt int) bool { return attempt%3 == 0 })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if c, err := ConnectWithRetry(s, 5); err == nil {
					c.Close()
				}
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.Open != 0 {
		t.Fatalf("connections leaked: %+v", st)
	}
	if st.Injected == 0 || st.Attempts < 400 {
		t.Fatalf("fault hook starved: %+v", st)
	}
}
