package obs

import (
	"sync"
	"time"
)

// SLOConfig declares the serving objective the tracker burns against.
type SLOConfig struct {
	// Target is the latency bound a good request must meet (the -slo-p99
	// flag). Zero disables the latency criterion — only 5xx burn budget.
	Target time.Duration
	// Objective is the fraction of requests that must be good over Window
	// (default 0.99). The error budget is 1−Objective.
	Objective float64
	// Window is the long SLO window (default 1h). Burn rates are computed
	// over [Window/12, Window/3, Window] — the standard multi-window pairs
	// (5m/15m/1h at the default) so a fast burn alerts in minutes while
	// the long window tracks sustained erosion.
	Window time.Duration
	// Clock injects timestamps (default time.Now).
	Clock Clock
}

// SLOTracker turns the request stream into rolling burn rates: each
// observation is good or bad (bad = HTTP 5xx, or a sub-500 success slower
// than Target; 4xx client errors are excluded from the SLI), bucketed into
// a time ring covering Window. burn(w) = badFraction(w) / (1−Objective):
// burn 1.0 consumes the budget exactly at the sustainable rate, 14.4 is
// the classic page-now threshold on the short window.
type SLOTracker struct {
	cfg    SLOConfig
	bucket time.Duration
	n      int

	mu      sync.Mutex
	good    []int64
	bad     []int64
	start   time.Time // time bucket[idx] began
	idx     int
	anchor  time.Time // ring epoch for bucket indexing
	totGood int64
	totBad  int64
}

// NewSLOTracker builds a tracker; zero-valued fields take defaults.
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	if cfg.Objective <= 0 || cfg.Objective >= 1 {
		cfg.Objective = 0.99
	}
	if cfg.Window <= 0 {
		cfg.Window = time.Hour
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	bucket := cfg.Window / 120
	if bucket < time.Second {
		bucket = time.Second
	}
	n := int(cfg.Window/bucket) + 1
	t := &SLOTracker{
		cfg:    cfg,
		bucket: bucket,
		n:      n,
		good:   make([]int64, n),
		bad:    make([]int64, n),
	}
	now := cfg.Clock()
	t.anchor = now
	t.start = now
	return t
}

// Target returns the configured latency bound.
func (t *SLOTracker) Target() time.Duration { return t.cfg.Target }

// Objective returns the configured good-fraction objective.
func (t *SLOTracker) Objective() float64 { return t.cfg.Objective }

// Window returns the long SLO window.
func (t *SLOTracker) Window() time.Duration { return t.cfg.Window }

// Observe books one request outcome.
func (t *SLOTracker) Observe(status int, latency time.Duration) {
	if t == nil {
		return
	}
	bad := false
	switch {
	case status >= 500:
		bad = true
	case status >= 400:
		// Client errors don't count against the serving SLI at all.
		return
	default:
		if t.cfg.Target > 0 && latency > t.cfg.Target {
			bad = true
		}
	}
	t.mu.Lock()
	t.advanceLocked(t.cfg.Clock())
	if bad {
		t.bad[t.idx]++
		t.totBad++
	} else {
		t.good[t.idx]++
		t.totGood++
	}
	t.mu.Unlock()
}

// advanceLocked rotates the ring forward to now, zeroing skipped buckets.
func (t *SLOTracker) advanceLocked(now time.Time) {
	for now.Sub(t.start) >= t.bucket {
		t.start = t.start.Add(t.bucket)
		t.idx++
		if t.idx == t.n {
			t.idx = 0
		}
		t.good[t.idx] = 0
		t.bad[t.idx] = 0
	}
}

// windowCounts sums buckets younger than w.
func (t *SLOTracker) windowCounts(now time.Time, w time.Duration) (good, bad int64) {
	nb := int(w / t.bucket)
	if nb < 1 {
		nb = 1
	}
	if nb > t.n {
		nb = t.n
	}
	for i := 0; i < nb; i++ {
		idx := t.idx - i
		if idx < 0 {
			idx += t.n
		}
		good += t.good[idx]
		bad += t.bad[idx]
	}
	return good, bad
}

// BurnRate returns badFraction(w)/(1−Objective) — 0 when the window saw no
// traffic.
func (t *SLOTracker) BurnRate(w time.Duration) float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.advanceLocked(t.cfg.Clock())
	good, bad := t.windowCounts(t.start, w)
	tot := good + bad
	if tot == 0 {
		return 0
	}
	return (float64(bad) / float64(tot)) / (1 - t.cfg.Objective)
}

// SLOWindow is one window's burn reading in a report.
type SLOWindow struct {
	Window   string  `json:"window"`
	Seconds  float64 `json:"seconds"`
	Good     int64   `json:"good"`
	Bad      int64   `json:"bad"`
	BadFrac  float64 `json:"bad_fraction"`
	BurnRate float64 `json:"burn_rate"`
}

// SLOReport is the GET /slo payload for one tracker (one workflow/priority
// series or the aggregate).
type SLOReport struct {
	TargetMS       float64     `json:"target_ms,omitempty"`
	Objective      float64     `json:"objective"`
	WindowSeconds  float64     `json:"window_seconds"`
	TotalGood      int64       `json:"total_good"`
	TotalBad       int64       `json:"total_bad"`
	BudgetRemained float64     `json:"budget_remaining"`
	Windows        []SLOWindow `json:"windows"`
}

// Windows returns the tracker's three burn windows, short to long.
func (t *SLOTracker) Windows() []time.Duration {
	short := t.cfg.Window / 12
	if short < t.bucket {
		short = t.bucket
	}
	mid := t.cfg.Window / 3
	if mid < short {
		mid = short
	}
	return []time.Duration{short, mid, t.cfg.Window}
}

// Report builds the full multi-window view.
func (t *SLOTracker) Report() SLOReport {
	r := SLOReport{
		Objective:     t.cfg.Objective,
		WindowSeconds: t.cfg.Window.Seconds(),
	}
	if t.cfg.Target > 0 {
		r.TargetMS = float64(t.cfg.Target) / float64(time.Millisecond)
	}
	t.mu.Lock()
	t.advanceLocked(t.cfg.Clock())
	r.TotalGood = t.totGood
	r.TotalBad = t.totBad
	for _, w := range t.Windows() {
		good, bad := t.windowCounts(t.start, w)
		win := SLOWindow{
			Window:  w.String(),
			Seconds: w.Seconds(),
			Good:    good,
			Bad:     bad,
		}
		if tot := good + bad; tot > 0 {
			win.BadFrac = float64(bad) / float64(tot)
			win.BurnRate = win.BadFrac / (1 - t.cfg.Objective)
		}
		r.Windows = append(r.Windows, win)
	}
	// Budget remaining over the long window: 1 − burn(Window), floored at 0.
	if len(r.Windows) > 0 {
		rem := 1 - r.Windows[len(r.Windows)-1].BurnRate
		if rem < 0 {
			rem = 0
		}
		r.BudgetRemained = rem
	} else {
		r.BudgetRemained = 1
	}
	t.mu.Unlock()
	return r
}

// SLOSet keys trackers by workflow|priority, lazily created, all sharing
// one config — plus an aggregate tracker across everything. It registers
// burn-rate gauges into a Registry so /metrics carries
// epi_slo_burn_rate{window=...} per series.
type SLOSet struct {
	cfg SLOConfig
	reg *Registry

	mu   sync.Mutex
	agg  *SLOTracker
	byWP map[string]*SLOTracker
}

// NewSLOSet builds the keyed tracker set; reg may be nil (no gauges).
func NewSLOSet(cfg SLOConfig, reg *Registry) *SLOSet {
	s := &SLOSet{cfg: cfg, reg: reg, byWP: map[string]*SLOTracker{}}
	s.agg = NewSLOTracker(cfg)
	s.registerGauges(s.agg, "", "")
	return s
}

// Aggregate returns the cross-series tracker.
func (s *SLOSet) Aggregate() *SLOTracker { return s.agg }

// Observe books one request into the aggregate and its series tracker.
func (s *SLOSet) Observe(workflow, priority string, status int, latency time.Duration) {
	if s == nil {
		return
	}
	s.agg.Observe(status, latency)
	s.tracker(workflow, priority).Observe(status, latency)
}

func (s *SLOSet) tracker(workflow, priority string) *SLOTracker {
	key := workflow + "|" + priority
	s.mu.Lock()
	t := s.byWP[key]
	if t == nil {
		t = NewSLOTracker(s.cfg)
		s.byWP[key] = t
		s.mu.Unlock()
		s.registerGauges(t, workflow, priority)
		return t
	}
	s.mu.Unlock()
	return t
}

// registerGauges exposes the tracker's burn rates as gauge funcs.
func (s *SLOSet) registerGauges(t *SLOTracker, workflow, priority string) {
	if s.reg == nil {
		return
	}
	for _, w := range t.Windows() {
		w := w
		name := `epi_slo_burn_rate{window="` + w.String() + `"`
		if workflow != "" || priority != "" {
			name += `,workflow="` + workflow + `",priority="` + priority + `"`
		}
		name += `}`
		s.reg.GaugeFunc(name, func() float64 { return t.BurnRate(w) })
	}
}

// Reports returns every series' report keyed "workflow|priority", plus the
// aggregate under "".
func (s *SLOSet) Reports() map[string]SLOReport {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	snap := make(map[string]*SLOTracker, len(s.byWP))
	for k, t := range s.byWP {
		snap[k] = t
	}
	s.mu.Unlock()

	out := make(map[string]SLOReport, len(snap)+1)
	out[""] = s.agg.Report()
	for k, t := range snap {
		out[k] = t.Report()
	}
	return out
}
