package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// Entry types.
const (
	// EntrySpan is a span close: a named interval with duration and tree
	// position.
	EntrySpan = "span"
	// EntryEvent is a structured point event (task placed/retried/shed,
	// fault injected, transfer recorded, gate result, ...).
	EntryEvent = "event"
)

// Entry is one line of the run journal.
type Entry struct {
	Type string `json:"type"`
	Name string `json:"name"`
	// Req is the request trace ID the entry belongs to, set when a
	// request-scoped trace exports through a shared journal (span IDs are
	// only unique within one request, so the journal needs the trace ID to
	// reassemble trees).
	Req string `json:"req,omitempty"`
	// Span is the owning span ID (for EntrySpan, the span itself); zero
	// when the event fired outside any span.
	Span   uint64 `json:"span,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
	// StartNS/EndNS bracket a span in unix nanoseconds; AtNS stamps an
	// event.
	StartNS int64    `json:"start_ns,omitempty"`
	EndNS   int64    `json:"end_ns,omitempty"`
	AtNS    int64    `json:"at_ns,omitempty"`
	Seconds float64  `json:"seconds,omitempty"`
	Attrs   AttrList `json:"attrs,omitempty"`
}

// AttrList is an entry's attributes kept as the flat tagged-union slice the
// instrumentation produced — a span close on the traced hot path stores its
// attrs without building a map or boxing values. It still marshals as the
// same JSON object a map would (keys sorted, later duplicates winning), so
// journal lines are byte-identical to the map representation they replace.
type AttrList []Attr

// Get returns the value for key (later duplicates win), boxed as any.
func (l AttrList) Get(key string) (any, bool) {
	for i := len(l) - 1; i >= 0; i-- {
		if l[i].Key == key {
			return l[i].Value(), true
		}
	}
	return nil, false
}

// Map flattens the list into a key→value map for view payloads; nil when
// empty. Later keys win, matching JSON object semantics.
func (l AttrList) Map() map[string]any {
	if len(l) == 0 {
		return nil
	}
	m := make(map[string]any, len(l))
	for _, a := range l {
		m[a.Key] = a.Value()
	}
	return m
}

// MarshalJSON writes the list as a JSON object. Export runs off the hot
// path, so it simply round-trips through the map form encoding/json sorts.
func (l AttrList) MarshalJSON() ([]byte, error) {
	return json.Marshal(l.Map())
}

// UnmarshalJSON parses a JSON object back into a key-sorted list. JSON
// numbers surface as float attrs — the same fidelity the map form had.
func (l *AttrList) UnmarshalJSON(b []byte) error {
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		return err
	}
	if len(m) == 0 {
		*l = nil
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make(AttrList, 0, len(keys))
	for _, k := range keys {
		switch v := m[k].(type) {
		case string:
			out = append(out, String(k, v))
		case float64:
			out = append(out, Float(k, v))
		case bool:
			out = append(out, Bool(k, v))
		default:
			out = append(out, Attr{Key: k, kind: attrAny, v: v})
		}
	}
	*l = out
	return nil
}

// Journal writes entries as JSON Lines — one self-describing object per
// line, append-only, so a night's journal can be tailed while it runs and
// replayed afterwards. Safe for concurrent use.
type Journal struct {
	mu     sync.Mutex
	w      io.Writer
	err    error
	closer func() error
}

// NewJournal wraps a writer. The caller owns the writer's lifecycle
// (e.g. closing the underlying file).
func NewJournal(w io.Writer) *Journal { return &Journal{w: w} }

// OpenFileJournal creates (truncating) a JSONL journal file with a buffered
// writer. The returned journal MUST be Closed — the buffer is not flushed
// on process exit, so a drain path that skips Close loses the run's tail.
func OpenFileJournal(path string) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriterSize(f, 64<<10)
	j := NewJournal(bw)
	j.closer = func() error {
		ferr := bw.Flush()
		if cerr := f.Close(); ferr == nil {
			ferr = cerr
		}
		return ferr
	}
	return j, nil
}

// Close flushes and closes the underlying writer when the journal owns one
// (OpenFileJournal); on a plain NewJournal it only reports the sticky write
// error. Close is idempotent and safe to call concurrently with Emit —
// writes after Close are dropped.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closer != nil {
		cerr := j.closer()
		j.closer = nil
		if j.err == nil {
			j.err = errJournalClosed
		}
		if cerr != nil {
			return cerr
		}
	}
	if j.err == errJournalClosed {
		return nil
	}
	return j.err
}

// errJournalClosed is the sticky error recorded after Close so late Emits
// are dropped instead of writing to a closed file.
var errJournalClosed = fmt.Errorf("obs: journal closed")

// Emit appends one entry as a JSON line. The first write error sticks and
// suppresses further writes (journals must never take the pipeline down).
func (j *Journal) Emit(e Entry) {
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	b = append(b, '\n')
	j.mu.Lock()
	if j.err == nil {
		_, j.err = j.w.Write(b)
	}
	j.mu.Unlock()
}

// Err returns the sticky write error, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// ReadEntries parses a JSONL journal back into entries — the round-trip
// used by -trace-summary and by tests.
func ReadEntries(r io.Reader) ([]Entry, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []Entry
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("obs: journal line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Collector is an in-memory sink, optionally teeing to a next sink — the
// way cmd/nightly both writes the JSONL file and aggregates the
// -trace-summary without re-reading it.
type Collector struct {
	next Sink
	mu   sync.Mutex
	es   []Entry
}

// NewCollector builds a collector; next may be nil.
func NewCollector(next Sink) *Collector { return &Collector{next: next} }

// Emit stores the entry and forwards it.
func (c *Collector) Emit(e Entry) {
	c.mu.Lock()
	c.es = append(c.es, e)
	c.mu.Unlock()
	if c.next != nil {
		c.next.Emit(e)
	}
}

// Entries returns a copy of everything collected so far.
func (c *Collector) Entries() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Entry(nil), c.es...)
}

// PhaseStat aggregates the spans of one name.
type PhaseStat struct {
	Name    string
	Count   int
	Seconds float64
}

// Summarize aggregates span entries by name — the per-phase wall-clock
// breakdown (partition, sim, transfer, calibrate, ...) of a run journal —
// sorted by total seconds descending (name ascending at ties).
func Summarize(entries []Entry) []PhaseStat {
	acc := map[string]*PhaseStat{}
	for _, e := range entries {
		if e.Type != EntrySpan {
			continue
		}
		s, ok := acc[e.Name]
		if !ok {
			s = &PhaseStat{Name: e.Name}
			acc[e.Name] = s
		}
		s.Count++
		s.Seconds += e.Seconds
	}
	out := make([]PhaseStat, 0, len(acc))
	for _, s := range acc {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seconds != out[j].Seconds {
			return out[i].Seconds > out[j].Seconds
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// EventCounts tallies event entries by name, sorted by name — the journal's
// task placed/retried/shed and fault counts at a glance.
func EventCounts(entries []Entry) []PhaseStat {
	acc := map[string]int{}
	for _, e := range entries {
		if e.Type == EntryEvent {
			acc[e.Name]++
		}
	}
	out := make([]PhaseStat, 0, len(acc))
	for name, n := range acc {
		out = append(out, PhaseStat{Name: name, Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
