package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Entry types.
const (
	// EntrySpan is a span close: a named interval with duration and tree
	// position.
	EntrySpan = "span"
	// EntryEvent is a structured point event (task placed/retried/shed,
	// fault injected, transfer recorded, gate result, ...).
	EntryEvent = "event"
)

// Entry is one line of the run journal.
type Entry struct {
	Type string `json:"type"`
	Name string `json:"name"`
	// Span is the owning span ID (for EntrySpan, the span itself); zero
	// when the event fired outside any span.
	Span   uint64 `json:"span,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
	// StartNS/EndNS bracket a span in unix nanoseconds; AtNS stamps an
	// event.
	StartNS int64          `json:"start_ns,omitempty"`
	EndNS   int64          `json:"end_ns,omitempty"`
	AtNS    int64          `json:"at_ns,omitempty"`
	Seconds float64        `json:"seconds,omitempty"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// Journal writes entries as JSON Lines — one self-describing object per
// line, append-only, so a night's journal can be tailed while it runs and
// replayed afterwards. Safe for concurrent use.
type Journal struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewJournal wraps a writer. The caller owns the writer's lifecycle
// (e.g. closing the underlying file).
func NewJournal(w io.Writer) *Journal { return &Journal{w: w} }

// Emit appends one entry as a JSON line. The first write error sticks and
// suppresses further writes (journals must never take the pipeline down).
func (j *Journal) Emit(e Entry) {
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	b = append(b, '\n')
	j.mu.Lock()
	if j.err == nil {
		_, j.err = j.w.Write(b)
	}
	j.mu.Unlock()
}

// Err returns the sticky write error, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// ReadEntries parses a JSONL journal back into entries — the round-trip
// used by -trace-summary and by tests.
func ReadEntries(r io.Reader) ([]Entry, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []Entry
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("obs: journal line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Collector is an in-memory sink, optionally teeing to a next sink — the
// way cmd/nightly both writes the JSONL file and aggregates the
// -trace-summary without re-reading it.
type Collector struct {
	next Sink
	mu   sync.Mutex
	es   []Entry
}

// NewCollector builds a collector; next may be nil.
func NewCollector(next Sink) *Collector { return &Collector{next: next} }

// Emit stores the entry and forwards it.
func (c *Collector) Emit(e Entry) {
	c.mu.Lock()
	c.es = append(c.es, e)
	c.mu.Unlock()
	if c.next != nil {
		c.next.Emit(e)
	}
}

// Entries returns a copy of everything collected so far.
func (c *Collector) Entries() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Entry(nil), c.es...)
}

// PhaseStat aggregates the spans of one name.
type PhaseStat struct {
	Name    string
	Count   int
	Seconds float64
}

// Summarize aggregates span entries by name — the per-phase wall-clock
// breakdown (partition, sim, transfer, calibrate, ...) of a run journal —
// sorted by total seconds descending (name ascending at ties).
func Summarize(entries []Entry) []PhaseStat {
	acc := map[string]*PhaseStat{}
	for _, e := range entries {
		if e.Type != EntrySpan {
			continue
		}
		s, ok := acc[e.Name]
		if !ok {
			s = &PhaseStat{Name: e.Name}
			acc[e.Name] = s
		}
		s.Count++
		s.Seconds += e.Seconds
	}
	out := make([]PhaseStat, 0, len(acc))
	for _, s := range acc {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seconds != out[j].Seconds {
			return out[i].Seconds > out[j].Seconds
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// EventCounts tallies event entries by name, sorted by name — the journal's
// task placed/retried/shed and fault counts at a glance.
func EventCounts(entries []Entry) []PhaseStat {
	acc := map[string]int{}
	for _, e := range entries {
		if e.Type == EntryEvent {
			acc[e.Name]++
		}
	}
	out := make([]PhaseStat, 0, len(acc))
	for name, n := range acc {
		out = append(out, PhaseStat{Name: name, Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
