package obs

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// traceSeq staggers fixedTrace start times so recorder listings have a
// deterministic newest-first order.
var traceSeq atomic.Int64

func fixedTrace(id string, tee Sink) *RequestTrace {
	base := time.Unix(1700000000, 0).Add(time.Duration(traceSeq.Add(1)) * time.Second)
	clock := FixedClock(base, time.Millisecond)
	opts := []ReqTraceOption{WithReqClock(clock)}
	if tee != nil {
		opts = append(opts, WithReqTee(tee))
	}
	return NewRequestTrace(id, opts...)
}

func TestNewRequestIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewRequestID()
		if len(id) != 16 {
			t.Fatalf("id %q: want 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestRequestTraceSnapshotTree(t *testing.T) {
	rt := fixedTrace("req1", nil)
	ctx := rt.Attach(context.Background())

	qctx, qs := StartSpan(ctx, "queue.wait", String("priority", "normal"))
	Event(qctx, "replica.dispatch", Int("replica", 1))
	qs.End()
	rctx, rs := StartSpan(ctx, "job.run")
	_, es := StartSpan(rctx, "engine.tick")
	es.End()
	rs.End()
	rt.SetRequest("prediction", "normal")
	rt.Finish(200, "")

	if !rt.Done() || rt.Status() != 200 {
		t.Fatalf("done=%v status=%d", rt.Done(), rt.Status())
	}
	v := rt.Snapshot()
	if v.ID != "req1" || v.Workflow != "prediction" || v.Priority != "normal" {
		t.Fatalf("summary mismatch: %+v", v.TraceSummary)
	}
	if v.Root == nil || v.Root.Name != "request" {
		t.Fatalf("missing root span: %+v", v.Root)
	}
	if len(v.Root.Children) != 2 {
		t.Fatalf("root children = %d, want 2 (queue.wait, job.run)", len(v.Root.Children))
	}
	if v.Root.Children[0].Name != "queue.wait" || v.Root.Children[1].Name != "job.run" {
		t.Fatalf("children order: %s, %s", v.Root.Children[0].Name, v.Root.Children[1].Name)
	}
	if len(v.Root.Children[0].Events) != 1 || v.Root.Children[0].Events[0].Name != "replica.dispatch" {
		t.Fatalf("queue.wait events: %+v", v.Root.Children[0].Events)
	}
	run := v.Root.Children[1]
	if len(run.Children) != 1 || run.Children[0].Name != "engine.tick" {
		t.Fatalf("job.run children: %+v", run.Children)
	}
	if st, ok := v.Root.Attrs["status"]; !ok || st != int64(200) {
		t.Fatalf("root status attr: %v", v.Root.Attrs)
	}
}

func TestRequestTraceLazySnapshot(t *testing.T) {
	// The 202-async shape: the HTTP exchange finishes, the job keeps
	// reporting spans, and a later Snapshot sees them.
	rt := fixedTrace("async", nil)
	ctx := rt.Attach(context.Background())
	rt.Finish(202, "")
	before := rt.Snapshot()
	if len(before.Root.Children) != 0 {
		t.Fatalf("unexpected children before async work: %d", len(before.Root.Children))
	}
	_, s := StartSpan(ctx, "job.run")
	s.End()
	after := rt.Snapshot()
	if len(after.Root.Children) != 1 || after.Root.Children[0].Name != "job.run" {
		t.Fatalf("async span missing from later snapshot: %+v", after.Root.Children)
	}
}

func TestRequestTraceEscalationFlag(t *testing.T) {
	rt := fixedTrace("esc", nil)
	ctx := rt.Attach(context.Background())
	if rt.Escalated() {
		t.Fatal("escalated before any event")
	}
	Event(ctx, "fidelity.route", String("tier", "emulator"))
	if rt.Escalated() {
		t.Fatal("emulator route must not flag escalation")
	}
	Event(ctx, "fidelity.route", String("tier", "abm"))
	if !rt.Escalated() {
		t.Fatal("abm route must flag escalation")
	}
}

func TestRequestTraceTeeStampsReq(t *testing.T) {
	col := NewCollector(nil)
	rt := fixedTrace("teed", col)
	ctx := rt.Attach(context.Background())
	_, s := StartSpan(ctx, "work")
	s.End()
	rt.Finish(200, "")
	es := col.Entries()
	if len(es) == 0 {
		t.Fatal("tee saw no entries")
	}
	for _, e := range es {
		if e.Req != "teed" {
			t.Fatalf("entry %q missing req stamp: %+v", e.Name, e)
		}
	}
}

func TestAdoptTraceCarriesIdentityNotCancellation(t *testing.T) {
	rt := fixedTrace("adopt", nil)
	src, cancel := context.WithCancel(rt.Attach(context.Background()))
	dst := AdoptTrace(context.Background(), src)
	cancel()
	if dst.Err() != nil {
		t.Fatal("AdoptTrace leaked cancellation")
	}
	if TracerFrom(dst) == nil || RequestTraceFrom(dst) != rt {
		t.Fatal("AdoptTrace dropped tracing identity")
	}
	_, s := StartSpan(dst, "after.cancel")
	s.End()
	if v := rt.Snapshot(); len(v.Root.Children) != 1 {
		t.Fatalf("span on adopted ctx not recorded: %+v", v.Root.Children)
	}
	// Untraced source: dst unchanged.
	if got := AdoptTrace(context.Background(), context.Background()); TracerFrom(got) != nil {
		t.Fatal("AdoptTrace invented a tracer")
	}
}

func TestRecorderEvictionAndKeep(t *testing.T) {
	r := NewRecorder(RecorderConfig{Capacity: 4, KeepCapacity: 16, SlowThreshold: time.Hour})
	// An error trace recorded first: must survive main-ring churn via the
	// kept ring.
	bad := fixedTrace("bad", nil)
	bad.Finish(500, "boom")
	r.Record(bad)
	for i := 0; i < 10; i++ {
		rt := fixedTrace(fmt.Sprintf("ok%d", i), nil)
		rt.Finish(200, "")
		r.Record(rt)
	}
	if r.Get("bad") == nil {
		t.Fatal("error trace evicted despite always-keep")
	}
	if r.Get("ok0") != nil {
		t.Fatal("ok0 should have churned out of the main ring")
	}
	if r.Get("ok9") == nil {
		t.Fatal("newest trace missing")
	}
	list := r.List(0)
	if len(list) != 5 { // 4 main + 1 kept
		t.Fatalf("list length = %d, want 5", len(list))
	}
	if list[len(list)-1].ID != "bad" {
		// newest-first ordering: the old kept trace lists last
		t.Fatalf("expected bad last, got %v", list[len(list)-1].ID)
	}
}

func TestRecorderKeepCriteria(t *testing.T) {
	r := NewRecorder(RecorderConfig{Capacity: 2, KeepCapacity: 4, SlowThreshold: 10 * time.Millisecond})
	slow := NewRequestTrace("slow", WithReqClock(FixedClock(time.Unix(0, 0), 20*time.Millisecond)))
	slow.Finish(200, "")
	esc := fixedTrace("esc", nil)
	esc.MarkEscalated()
	esc.Finish(200, "")
	fast := fixedTrace("fast", nil)
	fast.Finish(200, "")
	r.Record(slow)
	r.Record(esc)
	r.Record(fast)
	// Churn the main ring completely.
	for i := 0; i < 4; i++ {
		rt := fixedTrace(fmt.Sprintf("x%d", i), nil)
		rt.Finish(200, "")
		r.Record(rt)
	}
	if r.Get("slow") == nil {
		t.Fatal("slow trace not kept")
	}
	if r.Get("esc") == nil {
		t.Fatal("escalated trace not kept")
	}
	if r.Get("fast") != nil {
		t.Fatal("fast 200 trace wrongly kept")
	}
}

// TestRecorderChurnRace hammers the recorder from many goroutines —
// recording, listing, and snapshotting concurrently — and is part of the
// tier-1 -race targets.
func TestRecorderChurnRace(t *testing.T) {
	r := NewRecorder(RecorderConfig{Capacity: 8, KeepCapacity: 4, SlowThreshold: time.Millisecond})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rt := fixedTrace(fmt.Sprintf("g%d-%d", g, i), nil)
				ctx := rt.Attach(context.Background())
				_, s := StartSpan(ctx, "work")
				s.End()
				status := 200
				if i%17 == 0 {
					status = 500
				}
				rt.Finish(status, "")
				r.Record(rt)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for _, s := range r.List(16) {
					if rt := r.Get(s.ID); rt != nil {
						_ = rt.Snapshot()
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if n := r.Len(); n == 0 {
		t.Fatal("recorder empty after churn")
	}
}

func TestSLOTrackerWindowsAndBurn(t *testing.T) {
	base := time.Unix(1700000000, 0)
	now := base
	step := func(d time.Duration) { now = now.Add(d) }
	tr := NewSLOTracker(SLOConfig{
		Target:    100 * time.Millisecond,
		Objective: 0.99,
		Window:    time.Hour,
		Clock:     func() time.Time { return now },
	})
	ws := tr.Windows()
	if len(ws) != 3 || ws[0] != 5*time.Minute || ws[1] != 20*time.Minute || ws[2] != time.Hour {
		t.Fatalf("windows = %v", ws)
	}
	// 99 good + 1 bad = exactly the objective boundary: burn 1.0.
	for i := 0; i < 99; i++ {
		tr.Observe(200, 10*time.Millisecond)
	}
	tr.Observe(200, 500*time.Millisecond) // slow success counts bad
	if burn := tr.BurnRate(time.Hour); burn < 0.99 || burn > 1.01 {
		t.Fatalf("burn = %v, want ~1.0", burn)
	}
	// 4xx is excluded from the SLI entirely.
	tr.Observe(404, time.Millisecond)
	rep := tr.Report()
	if rep.TotalGood+rep.TotalBad != 100 {
		t.Fatalf("4xx leaked into SLI: good=%d bad=%d", rep.TotalGood, rep.TotalBad)
	}
	// 5xx is bad regardless of latency.
	tr.Observe(500, time.Microsecond)
	if got := tr.Report().TotalBad; got != 2 {
		t.Fatalf("bad = %d, want 2", got)
	}
	// Advance past the short window: the 5m burn decays to 0 while the 1h
	// window still remembers.
	step(6 * time.Minute)
	if burn := tr.BurnRate(5 * time.Minute); burn != 0 {
		t.Fatalf("short-window burn = %v after idle gap, want 0", burn)
	}
	if burn := tr.BurnRate(time.Hour); burn == 0 {
		t.Fatal("long-window burn forgot the bad requests")
	}
	// Advance past the long window: everything decays.
	step(2 * time.Hour)
	if burn := tr.BurnRate(time.Hour); burn != 0 {
		t.Fatalf("burn = %v after full window expiry, want 0", burn)
	}
}

func TestSLOSetSeriesAndGauges(t *testing.T) {
	reg := NewRegistry()
	now := time.Unix(1700000000, 0)
	set := NewSLOSet(SLOConfig{
		Target: 50 * time.Millisecond, Objective: 0.9, Window: time.Hour,
		Clock: func() time.Time { return now },
	}, reg)
	set.Observe("prediction", "normal", 200, 10*time.Millisecond)
	set.Observe("prediction", "normal", 500, 10*time.Millisecond)
	set.Observe("whatif", "batch", 200, 10*time.Millisecond)
	reports := set.Reports()
	agg := reports[""]
	if agg.TotalGood != 2 || agg.TotalBad != 1 {
		t.Fatalf("aggregate = %+v", agg)
	}
	if reports["prediction|normal"].TotalBad != 1 {
		t.Fatalf("series report: %+v", reports["prediction|normal"])
	}
	if reports["whatif|batch"].TotalGood != 1 {
		t.Fatalf("series report: %+v", reports["whatif|batch"])
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`epi_slo_burn_rate{window="1h0m0s"}`,
		`epi_slo_burn_rate{window="5m0s",workflow="prediction",priority="normal"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in exposition:\n%s", want, out)
		}
	}
}

func TestFileJournalCloseFlushes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "req.jsonl")
	j, err := OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		j.Emit(Entry{Type: EntrySpan, Name: "request", Req: fmt.Sprintf("r%d", i), Seconds: 0.1})
	}
	// The writer is buffered: before Close the file may be empty; after
	// Close every entry must be on disk.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	es, err := ReadEntries(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 10 {
		t.Fatalf("read %d entries, want 10 (tail lost without flush-on-close)", len(es))
	}
	if es[3].Req != "r3" {
		t.Fatalf("Req round-trip: %+v", es[3])
	}
	// Writes after Close are dropped, and a second Close is a no-op.
	j.Emit(Entry{Type: EntryEvent, Name: "late"})
	if err := j.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	f2, _ := os.Open(path)
	defer f2.Close()
	es2, _ := ReadEntries(f2)
	if len(es2) != 10 {
		t.Fatalf("post-close emit leaked to disk (%d entries, size %d)", len(es2), fi.Size())
	}
}
