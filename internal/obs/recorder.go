package obs

import (
	"sort"
	"sync"
	"time"
)

// Recorder is the serving tier's flight recorder: a bounded ring of the
// last N request traces, plus a second always-keep ring for the requests
// worth keeping past churn — slow (duration ≥ SlowThreshold), errored
// (HTTP ≥ 400 or an error message), or escalated to the full ABM. Traces
// are stored live (by pointer), so an async job that finishes after its
// HTTP exchange keeps enriching the recorded trace.
//
// Lookup is by request ID over both rings; a trace evicted from the main
// ring stays reachable while the kept ring references it, and vice versa.
type Recorder struct {
	mu   sync.Mutex
	main ringBuf
	kept ringBuf
	// byID refcounts each trace's ring memberships so eviction from one
	// ring doesn't break lookup through the other.
	byID map[string]*recEntry

	capMain int
	capKept int
	slow    time.Duration
}

type recEntry struct {
	rt   *RequestTrace
	refs int
}

type ringBuf struct {
	buf  []*RequestTrace
	next int
	full bool
}

func (r *ringBuf) push(rt *RequestTrace) (evicted *RequestTrace) {
	if len(r.buf) == 0 {
		return nil
	}
	if r.full {
		evicted = r.buf[r.next]
	}
	r.buf[r.next] = rt
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	return evicted
}

// newest-first iteration order.
func (r *ringBuf) items() []*RequestTrace {
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]*RequestTrace, 0, n)
	for i := 0; i < n; i++ {
		idx := r.next - 1 - i
		if idx < 0 {
			idx += len(r.buf)
		}
		out = append(out, r.buf[idx])
	}
	return out
}

// RecorderConfig sizes the recorder.
type RecorderConfig struct {
	// Capacity bounds the main ring (default 256).
	Capacity int
	// KeepCapacity bounds the always-keep ring (default Capacity/4, min 16).
	KeepCapacity int
	// SlowThreshold marks a request always-keep when its duration reaches
	// it. Zero disables the slowness criterion (errors and escalations are
	// always kept regardless).
	SlowThreshold time.Duration
}

// NewRecorder builds a flight recorder.
func NewRecorder(cfg RecorderConfig) *Recorder {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 256
	}
	if cfg.KeepCapacity <= 0 {
		cfg.KeepCapacity = cfg.Capacity / 4
		if cfg.KeepCapacity < 16 {
			cfg.KeepCapacity = 16
		}
	}
	return &Recorder{
		main:    ringBuf{buf: make([]*RequestTrace, cfg.Capacity)},
		kept:    ringBuf{buf: make([]*RequestTrace, cfg.KeepCapacity)},
		byID:    make(map[string]*recEntry, cfg.Capacity+cfg.KeepCapacity),
		capMain: cfg.Capacity,
		capKept: cfg.KeepCapacity,
		slow:    cfg.SlowThreshold,
	}
}

// SlowThreshold returns the configured always-keep latency bar.
func (r *Recorder) SlowThreshold() time.Duration { return r.slow }

// Record stores a completed (or async-pending) request trace. The keep
// decision is made here, at HTTP completion time: slow, errored, or
// escalated traces also enter the always-keep ring.
func (r *Recorder) Record(rt *RequestTrace) {
	if r == nil || rt == nil {
		return
	}
	keep := rt.Escalated()
	if st := rt.Status(); st >= 400 {
		keep = true
	}
	if r.slow > 0 && rt.Duration() >= r.slow {
		keep = true
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	r.retainLocked(rt)
	r.releaseLocked(r.main.push(rt))
	if keep {
		r.retainLocked(rt)
		r.releaseLocked(r.kept.push(rt))
	}
}

func (r *Recorder) retainLocked(rt *RequestTrace) {
	e := r.byID[rt.ID()]
	if e == nil {
		e = &recEntry{rt: rt}
		r.byID[rt.ID()] = e
	}
	e.refs++
}

func (r *Recorder) releaseLocked(rt *RequestTrace) {
	if rt == nil {
		return
	}
	e := r.byID[rt.ID()]
	if e == nil {
		return
	}
	e.refs--
	if e.refs <= 0 {
		delete(r.byID, rt.ID())
	}
}

// Get returns the trace for a request ID, or nil.
func (r *Recorder) Get(id string) *RequestTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.byID[id]; e != nil {
		return e.rt
	}
	return nil
}

// List returns summaries of every recorded trace, newest first, deduped
// across the two rings. limit ≤ 0 means all.
func (r *Recorder) List(limit int) []TraceSummary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	seen := map[string]bool{}
	var rts []*RequestTrace
	for _, rt := range r.main.items() {
		if !seen[rt.ID()] {
			seen[rt.ID()] = true
			rts = append(rts, rt)
		}
	}
	for _, rt := range r.kept.items() {
		if !seen[rt.ID()] {
			seen[rt.ID()] = true
			rts = append(rts, rt)
		}
	}
	r.mu.Unlock()

	// Summaries take each trace's own lock — outside the recorder lock.
	out := make([]TraceSummary, 0, len(rts))
	for _, rt := range rts {
		out = append(out, rt.Summary())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartNS > out[j].StartNS })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Len reports how many distinct traces are currently reachable.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byID)
}
