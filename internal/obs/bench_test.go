package obs

import (
	"context"
	"io"
	"testing"
	"time"
)

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("epi_bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("epi_bench_seconds", DefaultLatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) / 100)
	}
}

// BenchmarkSpanStartEnd prices one traced unit of work with a discarding
// sink — the per-span cost the pipeline pays when tracing is on.
func BenchmarkSpanStartEnd(b *testing.B) {
	tr := NewTracer(discard{}, WithClock(FixedClock(time.Unix(0, 0), time.Microsecond)))
	ctx := WithTracer(context.Background(), tr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "bench", Int("i", int64(i)))
		sp.End()
	}
}

// BenchmarkSpanStartEndUntraced prices the same call path with no tracer in
// the context — the cost instrumented code pays when observability is off.
func BenchmarkSpanStartEndUntraced(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "bench", Int("i", int64(i)))
		sp.End()
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 8; i++ {
		r.Counter(`epi_bench_total{kind="` + string(rune('a'+i)) + `"}`).Inc()
		r.Histogram(`epi_bench_seconds{kind="`+string(rune('a'+i))+`"}`, DefaultLatencyBuckets).Observe(0.2)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Emit(Entry) {}
