package obs

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

func fixedTracer(sink Sink) *Tracer {
	return NewTracer(sink, WithClock(FixedClock(time.Unix(0, 0), time.Second)))
}

func TestSpanNestingAndAttrs(t *testing.T) {
	col := NewCollector(nil)
	ctx := WithTracer(context.Background(), fixedTracer(col))

	ctx, night := StartSpan(ctx, "night", String("workflow", "Prediction"))
	cctx, part := StartSpan(ctx, "partition")
	part.SetAttr(Int("tasks", 306))
	Event(cctx, "task.placed", Int("cell", 3))
	part.End()
	night.End()

	es := col.Entries()
	if len(es) != 3 {
		t.Fatalf("want 3 entries, got %d: %+v", len(es), es)
	}
	ev, pSpan, nSpan := es[0], es[1], es[2]
	if ev.Type != EntryEvent || ev.Name != "task.placed" {
		t.Fatalf("first entry not the event: %+v", ev)
	}
	if pSpan.Name != "partition" || nSpan.Name != "night" {
		t.Fatalf("span close order wrong: %+v %+v", pSpan, nSpan)
	}
	if pSpan.Parent != nSpan.Span {
		t.Fatalf("partition parent %d != night id %d", pSpan.Parent, nSpan.Span)
	}
	if ev.Span != pSpan.Span {
		t.Fatalf("event bound to span %d, want %d", ev.Span, pSpan.Span)
	}
	if v, _ := pSpan.Attrs.Get("tasks"); v != int64(306) {
		t.Fatalf("attr lost: %+v", pSpan.Attrs)
	}
	if v, _ := nSpan.Attrs.Get("workflow"); v != "Prediction" {
		t.Fatalf("night attrs: %+v", nSpan.Attrs)
	}
	// FixedClock: night opened at t=0s, partition at 1s, event at 2s,
	// partition closed at 3s, night at 4s.
	if pSpan.Seconds != 2 || nSpan.Seconds != 4 {
		t.Fatalf("durations %v/%v, want 2/4", pSpan.Seconds, nSpan.Seconds)
	}
}

func TestNilTracerIsFree(t *testing.T) {
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, "anything", Int("k", 1))
	if s != nil {
		t.Fatal("tracerless StartSpan minted a span")
	}
	if ctx2 != ctx {
		t.Fatal("tracerless StartSpan changed the context")
	}
	// All nil-span methods are no-ops.
	s.SetAttr(String("a", "b"))
	s.Event("e")
	s.End()
	s.End()
	Event(ctx, "nothing")
}

func TestDoubleEndEmitsOnce(t *testing.T) {
	col := NewCollector(nil)
	ctx := WithTracer(context.Background(), fixedTracer(col))
	_, s := StartSpan(ctx, "once")
	s.End()
	s.End()
	if n := len(col.Entries()); n != 1 {
		t.Fatalf("double End emitted %d entries", n)
	}
}

func TestSpanMetricsHistogram(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(nil, WithClock(FixedClock(time.Unix(0, 0), time.Second)), WithSpanMetrics(reg))
	ctx := WithTracer(context.Background(), tr)
	_, s := StartSpan(ctx, "sim")
	s.End()
	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `epi_span_seconds_count{span="sim"} 1`) {
		t.Fatalf("span histogram missing:\n%s", b.String())
	}
}

func TestFixedClockDeterministicJournal(t *testing.T) {
	run := func() string {
		var buf bytes.Buffer
		j := NewJournal(&buf)
		ctx := WithTracer(context.Background(), NewTracer(j,
			WithClock(FixedClock(time.Unix(1000, 0), 250*time.Millisecond))))
		ctx, outer := StartSpan(ctx, "outer")
		Event(ctx, "mark", Int("i", 1))
		_, inner := StartSpan(ctx, "inner")
		inner.End()
		outer.End()
		return buf.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("fixed-clock journals differ:\n%s\nvs\n%s", a, b)
	}
}
