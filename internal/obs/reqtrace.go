package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// reqCounter backs NewRequestID when crypto/rand fails (it practically
// never does, but a request must always get an ID).
var reqCounter atomic.Uint64

// NewRequestID mints a 16-hex-char request trace ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		n := reqCounter.Add(1)
		for i := 0; i < 8; i++ {
			b[i] = byte(n >> (8 * (7 - i)))
		}
	}
	return hex.EncodeToString(b[:])
}

// RequestTrace collects every span close and event of one served request
// into an in-memory buffer, keyed by a request ID. It is itself a Sink: the
// serving tier mints one tracer per request with the trace as its sink, so
// span IDs are unique within the request and the span tree reassembles
// without global coordination. A tee sink (the request journal) optionally
// receives every entry stamped with the request ID.
//
// The trace outlives its HTTP exchange: async (202) submissions keep
// filling it from worker goroutines, so Snapshot builds the tree lazily at
// read time under the lock rather than freezing it at Finish.
type RequestTrace struct {
	id     string
	tracer *Tracer
	root   *Span
	tee    Sink
	start  time.Time
	clock  Clock

	mu        sync.Mutex
	entries   []Entry
	workflow  string
	priority  string
	status    int
	errMsg    string
	end       time.Time
	done      bool
	escalated bool
	annos     map[string]any
}

// ReqTraceOption configures NewRequestTrace.
type ReqTraceOption func(*RequestTrace)

// WithReqClock injects the trace's timestamp source (default time.Now);
// determinism tests use FixedClock.
func WithReqClock(c Clock) ReqTraceOption { return func(rt *RequestTrace) { rt.clock = c } }

// WithReqTee forwards every entry (stamped with the request ID) to an
// additional sink — the optional JSONL request journal.
func WithReqTee(s Sink) ReqTraceOption { return func(rt *RequestTrace) { rt.tee = s } }

// NewRequestTrace builds a request trace with its own tracer and opens the
// root "request" span. An empty id mints a fresh one.
func NewRequestTrace(id string, opts ...ReqTraceOption) *RequestTrace {
	if id == "" {
		id = NewRequestID()
	}
	// Preallocate the entry buffer: a typical served request closes on the
	// order of a dozen spans plus events, and growing from nil would churn
	// six reallocations on every request.
	rt := &RequestTrace{id: id, clock: time.Now, entries: make([]Entry, 0, 32)}
	for _, o := range opts {
		o(rt)
	}
	rt.tracer = NewTracer(rt, WithClock(rt.clock))
	rt.start = rt.clock()
	rt.root = &Span{
		tracer: rt.tracer,
		name:   "request",
		id:     rt.tracer.ids.Add(1),
		start:  rt.start,
	}
	return rt
}

// RequestTraceFrom returns the context's request trace, or nil.
func RequestTraceFrom(ctx context.Context) *RequestTrace {
	rt, _ := ctx.Value(reqTraceKey).(*RequestTrace)
	return rt
}

// Attach returns ctx carrying the trace's tracer, root span, and the trace
// itself — everything below sees StartSpan/Event report into this request.
// One context link, not three: this sits on every served request.
func (rt *RequestTrace) Attach(ctx context.Context) context.Context {
	return &traceCtx{Context: ctx, t: rt.tracer, s: rt.root, rt: rt}
}

// Emit implements Sink: buffer the entry, flag ABM escalation when the
// fidelity router's route event passes through, and tee to the journal
// stamped with the request ID.
func (rt *RequestTrace) Emit(e Entry) {
	rt.mu.Lock()
	rt.entries = append(rt.entries, e)
	if e.Type == EntryEvent && e.Name == "fidelity.route" {
		if tier, ok := e.Attrs.Get("tier"); ok && tier == "abm" {
			rt.escalated = true
		}
	}
	rt.mu.Unlock()
	if rt.tee != nil {
		e.Req = rt.id
		rt.tee.Emit(e)
	}
}

// ID returns the request trace ID.
func (rt *RequestTrace) ID() string { return rt.id }

// Start returns when the trace (root span) opened.
func (rt *RequestTrace) Start() time.Time { return rt.start }

// SetRequest records the classified workflow and priority for the recorder
// listing and RED series.
func (rt *RequestTrace) SetRequest(workflow, priority string) {
	rt.mu.Lock()
	rt.workflow = workflow
	rt.priority = priority
	rt.mu.Unlock()
}

// Annotate attaches a key/value to the trace summary (hash, batch ID, ...).
func (rt *RequestTrace) Annotate(k string, v any) {
	rt.mu.Lock()
	if rt.annos == nil {
		rt.annos = map[string]any{}
	}
	rt.annos[k] = v
	rt.mu.Unlock()
}

// MarkEscalated flags the request as escalated-to-ABM regardless of journal
// events — the serving tier calls it when the result reports tier "abm"
// (the route decision may have happened on another request's trace under
// single-flight).
func (rt *RequestTrace) MarkEscalated() {
	rt.mu.Lock()
	rt.escalated = true
	rt.mu.Unlock()
}

// Finish closes the root span with the HTTP outcome. Idempotent; only the
// first call sets status/err/end.
func (rt *RequestTrace) Finish(status int, errMsg string) {
	rt.mu.Lock()
	if rt.done {
		rt.mu.Unlock()
		return
	}
	rt.done = true
	rt.status = status
	rt.errMsg = errMsg
	rt.mu.Unlock()
	rt.root.SetAttr(Int("status", int64(status)))
	if errMsg != "" {
		rt.root.SetAttr(String("error", errMsg))
	}
	rt.root.End()
	rt.mu.Lock()
	rt.end = rt.clock()
	rt.mu.Unlock()
}

// Done reports whether Finish has run.
func (rt *RequestTrace) Done() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.done
}

// Status returns the recorded HTTP status (0 before Finish).
func (rt *RequestTrace) Status() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.status
}

// Escalated reports whether the request escalated to the full ABM.
func (rt *RequestTrace) Escalated() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.escalated
}

// Duration returns the root span's wall time: end−start once finished,
// otherwise elapsed so far.
func (rt *RequestTrace) Duration() time.Duration {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.done {
		return rt.end.Sub(rt.start)
	}
	return rt.clock().Sub(rt.start)
}

// Workflow returns the recorded workflow ("" before SetRequest).
func (rt *RequestTrace) Workflow() string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.workflow
}

// Priority returns the recorded priority class.
func (rt *RequestTrace) Priority() string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.priority
}

// SpanNode is one span in the reassembled request tree.
type SpanNode struct {
	Name       string         `json:"name"`
	Span       uint64         `json:"span"`
	StartNS    int64          `json:"start_ns"`
	EndNS      int64          `json:"end_ns,omitempty"`
	DurationMS float64        `json:"duration_ms"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Events     []EventNode    `json:"events,omitempty"`
	Children   []*SpanNode    `json:"children,omitempty"`
}

// EventNode is one point event inside a span.
type EventNode struct {
	Name  string         `json:"name"`
	AtNS  int64          `json:"at_ns"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// TraceSummary is the recorder's listing row for one request.
type TraceSummary struct {
	ID         string         `json:"id"`
	Workflow   string         `json:"workflow,omitempty"`
	Priority   string         `json:"priority,omitempty"`
	Status     int            `json:"status,omitempty"`
	Error      string         `json:"error,omitempty"`
	DurationMS float64        `json:"duration_ms"`
	Done       bool           `json:"done"`
	Escalated  bool           `json:"escalated,omitempty"`
	Spans      int            `json:"spans"`
	Events     int            `json:"events"`
	Annos      map[string]any `json:"annotations,omitempty"`
	StartNS    int64          `json:"start_ns"`
}

// TraceView is the full /debug/requests/{id} payload: summary + span tree.
type TraceView struct {
	TraceSummary
	Root    *SpanNode   `json:"root"`
	Orphans []*SpanNode `json:"orphans,omitempty"`
}

// Summary builds the listing row under the lock.
func (rt *RequestTrace) Summary() TraceSummary {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.summaryLocked()
}

func (rt *RequestTrace) summaryLocked() TraceSummary {
	s := TraceSummary{
		ID:        rt.id,
		Workflow:  rt.workflow,
		Priority:  rt.priority,
		Status:    rt.status,
		Error:     rt.errMsg,
		Done:      rt.done,
		Escalated: rt.escalated,
		StartNS:   rt.start.UnixNano(),
	}
	if rt.done {
		s.DurationMS = float64(rt.end.Sub(rt.start)) / float64(time.Millisecond)
	} else {
		s.DurationMS = float64(rt.clock().Sub(rt.start)) / float64(time.Millisecond)
	}
	for _, e := range rt.entries {
		switch e.Type {
		case EntrySpan:
			s.Spans++
		case EntryEvent:
			s.Events++
		}
	}
	if len(rt.annos) > 0 {
		s.Annos = make(map[string]any, len(rt.annos))
		for k, v := range rt.annos {
			s.Annos[k] = v
		}
	}
	return s
}

// Snapshot reassembles the span tree from the buffered entries. Built
// lazily at read time: an async job still running shows the spans closed
// so far, and a later read shows more. Spans whose parent has not closed
// yet (or closed out of order) surface under Orphans rather than being
// dropped. The root span appears even before Finish, with EndNS zero.
func (rt *RequestTrace) Snapshot() TraceView {
	rt.mu.Lock()
	defer rt.mu.Unlock()

	nodes := map[uint64]*SpanNode{}
	rootNode := &SpanNode{
		Name:    "request",
		Span:    rt.root.id,
		StartNS: rt.start.UnixNano(),
	}
	if rt.done {
		rootNode.EndNS = rt.end.UnixNano()
		rootNode.DurationMS = float64(rt.end.Sub(rt.start)) / float64(time.Millisecond)
	} else {
		rootNode.DurationMS = float64(rt.clock().Sub(rt.start)) / float64(time.Millisecond)
	}
	nodes[rt.root.id] = rootNode

	type pendingEvent struct {
		span uint64
		ev   EventNode
	}
	var events []pendingEvent
	for _, e := range rt.entries {
		switch e.Type {
		case EntrySpan:
			n := nodes[e.Span]
			if n == nil {
				n = &SpanNode{Span: e.Span}
				nodes[e.Span] = n
			}
			n.Name = e.Name
			n.StartNS = e.StartNS
			n.EndNS = e.EndNS
			n.DurationMS = e.Seconds * 1e3
			n.Attrs = e.Attrs.Map()
			if e.Span == rt.root.id {
				// Root closes through Finish; its entry carries the final
				// attrs (status, error).
				continue
			}
			parent := nodes[e.Parent]
			if parent == nil {
				parent = &SpanNode{Span: e.Parent}
				nodes[e.Parent] = parent
			}
			parent.Children = append(parent.Children, n)
		case EntryEvent:
			events = append(events, pendingEvent{span: e.Span, ev: EventNode{Name: e.Name, AtNS: e.AtNS, Attrs: e.Attrs.Map()}})
		}
	}
	// Root attrs come from its close entry, if present.
	for _, e := range rt.entries {
		if e.Type == EntrySpan && e.Span == rt.root.id {
			rootNode.Attrs = e.Attrs.Map()
		}
	}
	for _, pe := range events {
		n := nodes[pe.span]
		if n == nil {
			// Event fired on a span that has not closed yet (or span 0):
			// surface it on the root so nothing is lost.
			n = rootNode
		}
		n.Events = append(n.Events, pe.ev)
	}
	var orphans []*SpanNode
	for id, n := range nodes {
		if id == rt.root.id || n.Name != "" {
			continue
		}
		// Placeholder parent that never closed: its children are real,
		// promote them as orphans.
		orphans = append(orphans, n.Children...)
	}
	sortTree(rootNode)
	sort.Slice(orphans, func(i, j int) bool { return orphans[i].StartNS < orphans[j].StartNS })
	for _, o := range orphans {
		sortTree(o)
	}
	return TraceView{TraceSummary: rt.summaryLocked(), Root: rootNode, Orphans: orphans}
}

// sortTree orders children and events by start time, recursively.
func sortTree(n *SpanNode) {
	sort.Slice(n.Children, func(i, j int) bool { return n.Children[i].StartNS < n.Children[j].StartNS })
	sort.Slice(n.Events, func(i, j int) bool { return n.Events[i].AtNS < n.Events[j].AtNS })
	for _, c := range n.Children {
		sortTree(c)
	}
}
