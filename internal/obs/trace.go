package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Clock supplies timestamps to tracers and journals. Production uses
// time.Now; determinism tests inject FixedClock so journal output is
// byte-stable. Instrumented code never reads the clock directly — only the
// tracer does — so the simulated pipeline's RNG streams and results are
// unaffected by whether tracing is on.
type Clock func() time.Time

// FixedClock returns a deterministic clock: the first call yields start and
// every further call advances by step. Safe for concurrent use (the
// sequence is globally ordered, not per-goroutine).
func FixedClock(start time.Time, step time.Duration) Clock {
	var mu sync.Mutex
	next := start
	return func() time.Time {
		mu.Lock()
		t := next
		next = next.Add(step)
		mu.Unlock()
		return t
	}
}

// Attr is one key/value annotation on a span or event.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// Sink consumes journal entries (span closes and point events). Journal and
// Collector implement it.
type Sink interface {
	Emit(e Entry)
}

// Tracer mints hierarchical spans and forwards their close events (and any
// point events) to a sink. A nil *Tracer is valid and inert, which is what
// makes instrumentation free on un-traced paths: StartSpan on a context
// without a tracer returns a nil span whose methods are no-ops.
type Tracer struct {
	sink  Sink
	clock Clock
	reg   *Registry
	ids   atomic.Uint64
}

// TracerOption configures a Tracer.
type TracerOption func(*Tracer)

// WithClock injects a timestamp source (default time.Now).
func WithClock(c Clock) TracerOption { return func(t *Tracer) { t.clock = c } }

// WithSpanMetrics observes every span's duration into the registry
// histogram epi_span_seconds{span="<name>"} so phase timings surface on
// /metrics alongside the journal.
func WithSpanMetrics(r *Registry) TracerOption { return func(t *Tracer) { t.reg = r } }

// NewTracer builds a tracer over a sink. A nil sink is allowed when only
// span metrics are wanted.
func NewTracer(sink Sink, opts ...TracerOption) *Tracer {
	t := &Tracer{sink: sink, clock: time.Now}
	for _, o := range opts {
		o(t)
	}
	if t.clock == nil {
		t.clock = time.Now
	}
	return t
}

// Span is one timed, named unit of pipeline work. Spans nest: children
// carry their parent's ID, so the journal reconstructs the tree.
type Span struct {
	tracer *Tracer
	name   string
	id     uint64
	parent uint64
	start  time.Time

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// ctxKey keys context values privately.
type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
)

// WithTracer attaches a tracer to the context; all StartSpan/Event calls
// below this point in the call tree report to it.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the context's tracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// SpanFrom returns the context's current span, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// StartSpan opens a span under the context's tracer and current span and
// returns the child context carrying it. Without a tracer it returns ctx
// unchanged and a nil span — every Span method is nil-safe, so callers
// never branch.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	var parent uint64
	if p := SpanFrom(ctx); p != nil {
		parent = p.id
	}
	s := &Span{
		tracer: t,
		name:   name,
		id:     t.ids.Add(1),
		parent: parent,
		start:  t.clock(),
		attrs:  attrs,
	}
	return context.WithValue(ctx, spanKey, s), s
}

// Name returns the span's name ("" for a nil span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// ID returns the span's ID (0 for a nil span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// SetAttr appends attributes to the span (visible on its close entry).
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// Event emits a point event inside the span.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.tracer.emitEvent(s.id, name, attrs)
}

// End closes the span, emitting its close entry to the sink and (when
// configured) observing its duration into the span-seconds histogram.
// Multiple End calls are safe; only the first counts.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()

	end := s.tracer.clock()
	dur := end.Sub(s.start).Seconds()
	if s.tracer.sink != nil {
		s.tracer.sink.Emit(Entry{
			Type:    EntrySpan,
			Name:    s.name,
			Span:    s.id,
			Parent:  s.parent,
			StartNS: s.start.UnixNano(),
			EndNS:   end.UnixNano(),
			Seconds: dur,
			Attrs:   attrMap(attrs),
		})
	}
	if s.tracer.reg != nil {
		s.tracer.reg.Histogram(`epi_span_seconds{span="`+s.name+`"}`, nil).Observe(dur)
	}
}

// Event emits a structured point event bound to the context's current span
// (if any). Without a tracer it is a no-op. This is how the pipeline books
// discrete happenings — task placed/retried/shed, fault injected, R-hat
// gate result — into the run journal.
func Event(ctx context.Context, name string, attrs ...Attr) {
	t := TracerFrom(ctx)
	if t == nil {
		return
	}
	t.emitEvent(SpanFrom(ctx).ID(), name, attrs)
}

// emitEvent forwards one point event to the sink.
func (t *Tracer) emitEvent(span uint64, name string, attrs []Attr) {
	if t.sink == nil {
		return
	}
	t.sink.Emit(Entry{
		Type:  EntryEvent,
		Name:  name,
		Span:  span,
		AtNS:  t.clock().UnixNano(),
		Attrs: attrMap(attrs),
	})
}

// attrMap flattens attributes for JSON encoding; later keys win.
func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}
