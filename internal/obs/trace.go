package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Clock supplies timestamps to tracers and journals. Production uses
// time.Now; determinism tests inject FixedClock so journal output is
// byte-stable. Instrumented code never reads the clock directly — only the
// tracer does — so the simulated pipeline's RNG streams and results are
// unaffected by whether tracing is on.
type Clock func() time.Time

// FixedClock returns a deterministic clock: the first call yields start and
// every further call advances by step. Safe for concurrent use (the
// sequence is globally ordered, not per-goroutine).
func FixedClock(start time.Time, step time.Duration) Clock {
	var mu sync.Mutex
	next := start
	return func() time.Time {
		mu.Lock()
		t := next
		next = next.Add(step)
		mu.Unlock()
		return t
	}
}

// Attr is one key/value annotation on a span or event. It is a tagged
// union rather than a boxed any so that building attributes on the traced
// hot path never allocates; Value boxes lazily at read/export time.
type Attr struct {
	Key  string
	kind uint8
	s    string
	i    int64
	f    float64
	v    any // attrAny only (journal read-back of non-scalar values)
}

const (
	attrString uint8 = iota
	attrInt
	attrFloat
	attrBool
	attrAny
)

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, kind: attrString, s: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, kind: attrInt, i: v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, kind: attrFloat, f: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr {
	var i int64
	if v {
		i = 1
	}
	return Attr{Key: k, kind: attrBool, i: i}
}

// Value returns the attribute's value boxed as any.
func (a Attr) Value() any {
	switch a.kind {
	case attrString:
		return a.s
	case attrInt:
		return a.i
	case attrFloat:
		return a.f
	case attrBool:
		return a.i != 0
	default:
		return a.v
	}
}

// Sink consumes journal entries (span closes and point events). Journal and
// Collector implement it.
type Sink interface {
	Emit(e Entry)
}

// Tracer mints hierarchical spans and forwards their close events (and any
// point events) to a sink. A nil *Tracer is valid and inert, which is what
// makes instrumentation free on un-traced paths: StartSpan on a context
// without a tracer returns a nil span whose methods are no-ops.
type Tracer struct {
	sink  Sink
	clock Clock
	reg   *Registry
	ids   atomic.Uint64
}

// TracerOption configures a Tracer.
type TracerOption func(*Tracer)

// WithClock injects a timestamp source (default time.Now).
func WithClock(c Clock) TracerOption { return func(t *Tracer) { t.clock = c } }

// WithSpanMetrics observes every span's duration into the registry
// histogram epi_span_seconds{span="<name>"} so phase timings surface on
// /metrics alongside the journal.
func WithSpanMetrics(r *Registry) TracerOption { return func(t *Tracer) { t.reg = r } }

// NewTracer builds a tracer over a sink. A nil sink is allowed when only
// span metrics are wanted.
func NewTracer(sink Sink, opts ...TracerOption) *Tracer {
	t := &Tracer{sink: sink, clock: time.Now}
	for _, o := range opts {
		o(t)
	}
	if t.clock == nil {
		t.clock = time.Now
	}
	return t
}

// Span is one timed, named unit of pipeline work. Spans nest: children
// carry their parent's ID, so the journal reconstructs the tree.
type Span struct {
	tracer *Tracer
	name   string
	id     uint64
	parent uint64
	start  time.Time

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// ctxKey keys context values privately.
type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
	reqTraceKey
)

// WithTracer attaches a tracer to the context; all StartSpan/Event calls
// below this point in the call tree report to it.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the context's tracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// SpanFrom returns the context's current span, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// traceCtx carries the full tracing identity — tracer, current span, and
// request trace — as ONE context link instead of three stacked WithValue
// wrappers: request attach and trace adoption sit on every served request,
// so the shallower chain saves both allocations and Value-lookup hops. A
// nil field falls through to the parent context.
type traceCtx struct {
	context.Context
	t  *Tracer
	s  *Span
	rt *RequestTrace
}

func (c *traceCtx) Value(key any) any {
	switch key {
	case tracerKey:
		if c.t != nil {
			return c.t
		}
	case spanKey:
		if c.s != nil {
			return c.s
		}
	case reqTraceKey:
		if c.rt != nil {
			return c.rt
		}
	}
	return c.Context.Value(key)
}

// AdoptTrace transplants src's tracing identity — tracer, current span, and
// request trace — onto dst and returns the combined context. It carries NO
// cancellation or deadline from src: the serving tier uses it to let a job
// that outlives its submitting HTTP request (worker-pool execution, replica
// redispatch) keep reporting spans into the submitter's request trace while
// the job's lifecycle stays bound to the service's own context tree. When
// src carries no tracer, dst is returned unchanged.
func AdoptTrace(dst, src context.Context) context.Context {
	t := TracerFrom(src)
	if t == nil {
		return dst
	}
	return &traceCtx{Context: dst, t: t, s: SpanFrom(src), rt: RequestTraceFrom(src)}
}

// StartSpan opens a span under the context's tracer and current span and
// returns the child context carrying it. Without a tracer it returns ctx
// unchanged and a nil span — every Span method is nil-safe, so callers
// never branch.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	var parent uint64
	if p := SpanFrom(ctx); p != nil {
		parent = p.id
	}
	s := &Span{
		tracer: t,
		name:   name,
		id:     t.ids.Add(1),
		parent: parent,
		start:  t.clock(),
		attrs:  attrs,
	}
	return context.WithValue(ctx, spanKey, s), s
}

// Name returns the span's name ("" for a nil span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// ID returns the span's ID (0 for a nil span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// SetAttr appends attributes to the span (visible on its close entry).
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// Event emits a point event inside the span.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.tracer.emitEvent(s.id, name, attrs)
}

// End closes the span, emitting its close entry to the sink and (when
// configured) observing its duration into the span-seconds histogram.
// Multiple End calls are safe; only the first counts.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()

	end := s.tracer.clock()
	dur := end.Sub(s.start).Seconds()
	if s.tracer.sink != nil {
		s.tracer.sink.Emit(Entry{
			Type:    EntrySpan,
			Name:    s.name,
			Span:    s.id,
			Parent:  s.parent,
			StartNS: s.start.UnixNano(),
			EndNS:   end.UnixNano(),
			Seconds: dur,
			Attrs:   attrList(attrs),
		})
	}
	if s.tracer.reg != nil {
		s.tracer.reg.Histogram(`epi_span_seconds{span="`+s.name+`"}`, nil).Observe(dur)
	}
}

// Event emits a structured point event bound to the context's current span
// (if any). Without a tracer it is a no-op. This is how the pipeline books
// discrete happenings — task placed/retried/shed, fault injected, R-hat
// gate result — into the run journal.
func Event(ctx context.Context, name string, attrs ...Attr) {
	t := TracerFrom(ctx)
	if t == nil {
		return
	}
	t.emitEvent(SpanFrom(ctx).ID(), name, attrs)
}

// emitEvent forwards one point event to the sink.
func (t *Tracer) emitEvent(span uint64, name string, attrs []Attr) {
	if t.sink == nil {
		return
	}
	t.sink.Emit(Entry{
		Type:  EntryEvent,
		Name:  name,
		Span:  span,
		AtNS:  t.clock().UnixNano(),
		Attrs: attrList(attrs),
	})
}

// attrList trims the hot-path attr slice for an Entry: nil for empty so
// JSON omitempty fires, otherwise the slice as-is (no copy, no map).
func attrList(attrs []Attr) AttrList {
	if len(attrs) == 0 {
		return nil
	}
	return AttrList(attrs)
}
