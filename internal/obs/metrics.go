// Package obs is the unified observability layer of the pipeline: a
// process-wide metrics registry with Prometheus text exposition, lightweight
// hierarchical tracing propagated through the existing context plumbing, and
// a JSONL run journal. The design constraints mirror the operational story
// of the paper's nightly 10pm–8am window — operators must see task
// placement, utilization against the FFDT-DC bound, and where the night's
// wall-clock went while it runs — without perturbing the bit-reproducible
// simulation paths: no instrumentation call ever touches an RNG stream, and
// all timestamps flow through an injectable clock so golden/determinism
// tests stay bit-identical.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultLatencyBuckets are the histogram bucket upper bounds in seconds
// used for workflow/span latencies; the last implicit bucket is +Inf. The
// range spans sub-millisecond stub runs up to multi-minute full-scale
// workflows.
var DefaultLatencyBuckets = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 120, 300, 600,
}

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored — counters are monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution metric.
type Histogram struct {
	bounds []float64 // upper bounds; implicit +Inf last bucket
	mu     sync.Mutex
	counts []int64 // len(bounds)+1
	sum    float64
	n      int64
}

// Observe books one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// Bounds returns the bucket upper bounds (excluding the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// HistogramSnapshot is a point-in-time cumulative view of a Histogram.
type HistogramSnapshot struct {
	Count int64
	Sum   float64
	// CumCounts[i] is the cumulative count of samples ≤ Bounds[i]; the last
	// element is the total (the +Inf bucket).
	Bounds    []float64
	CumCounts []int64
}

// Snapshot returns the cumulative bucket view.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.n, Sum: h.sum, Bounds: h.bounds}
	s.CumCounts = make([]int64, len(h.counts))
	var cum int64
	for i, c := range h.counts {
		cum += c
		s.CumCounts[i] = cum
	}
	return s
}

// metricKind is the Prometheus TYPE of a metric family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// Registry is a process-wide metrics registry. Metric names follow the
// Prometheus data model and may carry a label set in braces, e.g.
// "epi_transfer_bytes_total{direction=\"home_to_remote\"}" — series with
// the same base name form one family and must share a kind. All methods are
// safe for concurrent use; constructors are get-or-create, so independent
// subsystems can reference the same series without coordination.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	funcs      map[string]func() float64
	funcKinds  map[string]metricKind
	histograms map[string]*Histogram
	kinds      map[string]metricKind // by base name
	help       map[string]string     // by base name
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		funcs:      map[string]func() float64{},
		funcKinds:  map[string]metricKind{},
		histograms: map[string]*Histogram{},
		kinds:      map[string]metricKind{},
		help:       map[string]string{},
	}
}

// Default is the process-wide registry; binaries that expose a single
// /metrics endpoint or an end-of-run dump default to it.
var Default = NewRegistry()

// baseName strips a "{...}" label suffix.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// splitName returns the base name and the raw label list (without braces).
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// claimKind registers the base name's kind, panicking on a conflict —
// reusing one family name with two metric types is a programming error that
// would silently corrupt the exposition otherwise.
func (r *Registry) claimKind(name string, k metricKind) {
	base := baseName(name)
	if prev, ok := r.kinds[base]; ok && prev != k {
		panic(fmt.Sprintf("obs: metric family %q registered as both %s and %s", base, prev, k))
	}
	r.kinds[base] = k
}

// Help sets the HELP text for a metric family (by base name).
func (r *Registry) Help(base, text string) {
	r.mu.Lock()
	r.help[baseName(base)] = text
	r.mu.Unlock()
}

// Counter returns the counter for name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.claimKind(name, kindCounter)
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge for name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.claimKind(name, kindGauge)
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// GaugeFunc registers a callback evaluated at exposition time — the natural
// fit for values another subsystem already tracks (queue depth, cache size,
// ledger totals). Re-registering a name replaces the callback.
func (r *Registry) GaugeFunc(name string, f func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claimKind(name, kindGauge)
	r.funcs[name] = f
	r.funcKinds[name] = kindGauge
}

// CounterFunc registers a callback for a monotone total kept elsewhere
// (cache hit counts, ledger retry totals). Exposed with TYPE counter.
func (r *Registry) CounterFunc(name string, f func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claimKind(name, kindCounter)
	r.funcs[name] = f
	r.funcKinds[name] = kindCounter
}

// Histogram returns the histogram for name, creating it with the given
// bucket bounds on first use (nil bounds take DefaultLatencyBuckets). Bounds
// are fixed at creation; later calls ignore the argument.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	r.claimKind(name, kindHistogram)
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{bounds: bs, counts: make([]int64, len(bs)+1)}
	r.histograms[name] = h
	return h
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	// Integral values (counters, byte totals) read better without the
	// scientific notation 'g' would switch to past 1e6.
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// withLabel appends a label pair to a (possibly empty) label list.
func withLabel(labels, key, val string) string {
	pair := key + `="` + val + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return "{" + labels + "," + pair + "}"
}

// series is one exposition line before sorting.
type series struct {
	name string
	line string
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), families sorted by base name and
// series sorted within each family, so output is stable and diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	families := map[string][]series{}
	add := func(name, line string) {
		base := baseName(name)
		families[base] = append(families[base], series{name: name, line: line})
	}
	for name, c := range r.counters {
		add(name, fmt.Sprintf("%s %d\n", name, c.Value()))
	}
	for name, g := range r.gauges {
		add(name, fmt.Sprintf("%s %s\n", name, formatFloat(g.Value())))
	}
	type fn struct {
		name string
		f    func() float64
	}
	var fns []fn
	for name, f := range r.funcs {
		fns = append(fns, fn{name, f})
	}
	type hist struct {
		name string
		h    *Histogram
	}
	var hists []hist
	for name, h := range r.histograms {
		hists = append(hists, hist{name, h})
	}
	kinds := make(map[string]metricKind, len(r.kinds))
	for k, v := range r.kinds {
		kinds[k] = v
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.RUnlock()

	// Callbacks and histogram snapshots run outside the registry lock so a
	// gauge func may itself take locks (ledger, queue) without deadlock risk.
	for _, e := range fns {
		add(e.name, fmt.Sprintf("%s %s\n", e.name, formatFloat(e.f())))
	}
	for _, e := range hists {
		base, labels := splitName(e.name)
		s := e.h.Snapshot()
		var b strings.Builder
		for i, cum := range s.CumCounts {
			le := "+Inf"
			if i < len(s.Bounds) {
				le = formatFloat(s.Bounds[i])
			}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", base, withLabel(labels, "le", le), cum)
		}
		sumName, countName := base+"_sum", base+"_count"
		if labels != "" {
			sumName += "{" + labels + "}"
			countName += "{" + labels + "}"
		}
		fmt.Fprintf(&b, "%s %s\n", sumName, formatFloat(s.Sum))
		fmt.Fprintf(&b, "%s %d\n", countName, s.Count)
		add(e.name, b.String())
	}

	bases := make([]string, 0, len(families))
	for base := range families {
		bases = append(bases, base)
	}
	sort.Strings(bases)
	for _, base := range bases {
		if h, ok := help[base]; ok {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, h); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kinds[base]); err != nil {
			return err
		}
		ss := families[base]
		sort.Slice(ss, func(i, j int) bool { return ss[i].name < ss[j].name })
		for _, s := range ss {
			if _, err := io.WriteString(w, s.line); err != nil {
				return err
			}
		}
	}
	return nil
}
