package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	in := []Entry{
		{Type: EntrySpan, Name: "night", Span: 1, StartNS: 10, EndNS: 30, Seconds: 2e-8,
			Attrs: AttrList{Float("day", 1), String("workflow", "Prediction")}},
		{Type: EntryEvent, Name: "task.shed", Span: 1, AtNS: 20,
			Attrs: AttrList{Float("cell", 3), String("region", "VA")}},
		{Type: EntrySpan, Name: "transfer", Span: 2, Parent: 1, StartNS: 12, EndNS: 14, Seconds: 2e-9},
	}
	for _, e := range in {
		j.Emit(e)
	}
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(in) {
		t.Fatalf("journal has %d lines, want %d", lines, len(in))
	}
	out, err := ReadEntries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip diverged:\n in %+v\nout %+v", in, out)
	}
}

func TestReadEntriesRejectsGarbage(t *testing.T) {
	if _, err := ReadEntries(strings.NewReader("{\"type\":\"span\"}\nnot json\n")); err == nil {
		t.Fatal("garbage line accepted")
	}
}

func TestCollectorTees(t *testing.T) {
	var buf bytes.Buffer
	col := NewCollector(NewJournal(&buf))
	col.Emit(Entry{Type: EntryEvent, Name: "x"})
	if len(col.Entries()) != 1 {
		t.Fatal("collector dropped the entry")
	}
	if !strings.Contains(buf.String(), `"name":"x"`) {
		t.Fatal("collector did not forward to the journal")
	}
}

func TestSummarize(t *testing.T) {
	es := []Entry{
		{Type: EntrySpan, Name: "sim", Seconds: 3},
		{Type: EntrySpan, Name: "sim", Seconds: 2},
		{Type: EntrySpan, Name: "transfer", Seconds: 1},
		{Type: EntryEvent, Name: "task.shed"},
		{Type: EntryEvent, Name: "task.shed"},
		{Type: EntryEvent, Name: "fault.injected"},
	}
	sum := Summarize(es)
	if len(sum) != 2 || sum[0].Name != "sim" || sum[0].Count != 2 || sum[0].Seconds != 5 {
		t.Fatalf("summary wrong: %+v", sum)
	}
	if sum[1].Name != "transfer" || sum[1].Seconds != 1 {
		t.Fatalf("summary wrong: %+v", sum)
	}
	ev := EventCounts(es)
	if len(ev) != 2 || ev[0].Name != "fault.injected" || ev[0].Count != 1 || ev[1].Count != 2 {
		t.Fatalf("event counts wrong: %+v", ev)
	}
}
