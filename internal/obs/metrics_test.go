package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("epi_x_total")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("epi_x_total"); again != c {
		t.Fatal("Counter is not get-or-create")
	}
	g := r.Gauge("epi_y")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("epi_lat_seconds", []float64{1, 10})
	for _, v := range []float64{0.5, 0.7, 5, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 4 || s.Sum != 106.2 {
		t.Fatalf("count %d sum %v", s.Count, s.Sum)
	}
	want := []int64{2, 3, 4} // ≤1, ≤10, +Inf cumulative
	for i, w := range want {
		if s.CumCounts[i] != w {
			t.Fatalf("bucket %d = %d, want %d", i, s.CumCounts[i], w)
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter(`epi_tasks_total{workflow="prediction"}`).Add(3)
	r.Counter(`epi_tasks_total{workflow="economic"}`).Add(1)
	r.Help("epi_tasks_total", "tasks executed")
	r.Gauge("epi_queue_depth").Set(7)
	r.GaugeFunc("epi_cache_entries", func() float64 { return 2 })
	r.CounterFunc("epi_cache_hits_total", func() float64 { return 9 })
	r.Histogram(`epi_lat_seconds{workflow="night"}`, []float64{1}).Observe(0.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP epi_tasks_total tasks executed\n",
		"# TYPE epi_tasks_total counter\n",
		`epi_tasks_total{workflow="economic"} 1` + "\n",
		`epi_tasks_total{workflow="prediction"} 3` + "\n",
		"# TYPE epi_queue_depth gauge\n",
		"epi_queue_depth 7\n",
		"epi_cache_entries 2\n",
		"# TYPE epi_cache_hits_total counter\n",
		"epi_cache_hits_total 9\n",
		"# TYPE epi_lat_seconds histogram\n",
		`epi_lat_seconds_bucket{workflow="night",le="1"} 1` + "\n",
		`epi_lat_seconds_bucket{workflow="night",le="+Inf"} 1` + "\n",
		`epi_lat_seconds_sum{workflow="night"} 0.5` + "\n",
		`epi_lat_seconds_count{workflow="night"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Families are sorted by base name: the economic series precedes the
	// prediction series, and cache entries precede queue depth.
	if strings.Index(out, `workflow="economic"`) > strings.Index(out, `workflow="prediction"`) {
		t.Fatal("series within a family not sorted")
	}
	if strings.Index(out, "epi_cache_entries") > strings.Index(out, "epi_queue_depth") {
		t.Fatal("families not sorted by base name")
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("epi_thing_total")
	defer func() {
		if recover() == nil {
			t.Fatal("registering one family as counter and gauge did not panic")
		}
	}()
	r.Gauge(`epi_thing_total{a="b"}`)
}

// TestRegistryConcurrency hammers every metric type from many goroutines
// while exposition runs — the -race gate for the shared registry.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("epi_fn", func() float64 { return 1 })
	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("epi_c_total").Inc()
				r.Gauge("epi_g").Add(1)
				r.Histogram("epi_h_seconds", nil).Observe(float64(i) / 100)
				if i%50 == 0 {
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("epi_c_total").Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := r.Gauge("epi_g").Value(); got != workers*iters {
		t.Fatalf("gauge = %v, want %d", got, workers*iters)
	}
	if got := r.Histogram("epi_h_seconds", nil).Snapshot().Count; got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}
