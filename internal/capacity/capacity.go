// Package capacity implements the hospital-capacity analysis the pipeline
// delivers to the state hospital referral regions: forecast hospital and
// ventilator demand compared against bed and ventilator counts ("Hospital
// bed and ventilator counts obtained from individual hospitals, as well as
// from the 2018 American Hospital Association (AHA) estimates"), with
// overflow detection — the product behind "guiding allocation of scarce
// resources and assessing depletion of current resources".
package capacity

import (
	"fmt"
	"math"

	"repro/internal/synthpop"
)

// Resources is a region's medical surge capacity.
type Resources struct {
	Region      string
	Beds        int
	ICUBeds     int
	Ventilators int
}

// FromAHA estimates a state's capacity from its population using the 2018
// AHA national ratios: ≈2.4 staffed beds, ≈0.26 ICU beds and ≈0.19
// ventilators per 1,000 residents.
func FromAHA(st synthpop.StateInfo) Resources {
	return Resources{
		Region:      st.Code,
		Beds:        int(float64(st.Population) * 2.4 / 1000),
		ICUBeds:     int(float64(st.Population) * 0.26 / 1000),
		Ventilators: int(float64(st.Population) * 0.19 / 1000),
	}
}

// Scaled returns the capacity at a 1:scale synthetic population.
func (r Resources) Scaled(scale int) Resources {
	if scale <= 1 {
		return r
	}
	return Resources{
		Region:      r.Region,
		Beds:        ceilDiv(r.Beds, scale),
		ICUBeds:     ceilDiv(r.ICUBeds, scale),
		Ventilators: ceilDiv(r.Ventilators, scale),
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Demand is a daily occupancy forecast for the two constrained resources.
type Demand struct {
	// Hospitalized[d] and Ventilated[d] are the occupancy series
	// (median, or any scenario path).
	Hospitalized []float64
	Ventilated   []float64
}

// Report is the overflow analysis of one demand path against capacity.
type Report struct {
	Region string
	// COVID patients can draw on a fraction of total capacity (the rest
	// serves routine demand); the analysis applies AvailableFraction.
	AvailableFraction float64

	PeakHospitalized        float64
	PeakHospitalDay         int
	PeakVentilated          float64
	PeakVentilatorDay       int
	HospitalOverflowDays    int
	VentilatorOverflowDays  int
	FirstHospitalOverflow   int // day index of first overflow, -1 when never
	FirstVentOverflow       int
	HospitalUtilizationPeak float64 // peak demand / available beds
	VentUtilizationPeak     float64
}

// Analyze compares a demand path against the region's resources.
func Analyze(res Resources, d Demand, availableFraction float64) (*Report, error) {
	if len(d.Hospitalized) == 0 || len(d.Hospitalized) != len(d.Ventilated) {
		return nil, fmt.Errorf("capacity: demand series empty or mismatched (%d vs %d)",
			len(d.Hospitalized), len(d.Ventilated))
	}
	if availableFraction <= 0 || availableFraction > 1 {
		availableFraction = 0.4 // typical surge allocation for COVID
	}
	beds := float64(res.Beds) * availableFraction
	vents := float64(res.Ventilators) * availableFraction
	if beds <= 0 || vents <= 0 {
		return nil, fmt.Errorf("capacity: region %s has no capacity configured", res.Region)
	}
	rep := &Report{
		Region: res.Region, AvailableFraction: availableFraction,
		FirstHospitalOverflow: -1, FirstVentOverflow: -1,
	}
	for day := range d.Hospitalized {
		h, v := d.Hospitalized[day], d.Ventilated[day]
		if h > rep.PeakHospitalized {
			rep.PeakHospitalized = h
			rep.PeakHospitalDay = day
		}
		if v > rep.PeakVentilated {
			rep.PeakVentilated = v
			rep.PeakVentilatorDay = day
		}
		if h > beds {
			rep.HospitalOverflowDays++
			if rep.FirstHospitalOverflow < 0 {
				rep.FirstHospitalOverflow = day
			}
		}
		if v > vents {
			rep.VentilatorOverflowDays++
			if rep.FirstVentOverflow < 0 {
				rep.FirstVentOverflow = day
			}
		}
	}
	rep.HospitalUtilizationPeak = rep.PeakHospitalized / beds
	rep.VentUtilizationPeak = rep.PeakVentilated / vents
	return rep, nil
}

// DaysOfVentilatorRunway returns how many days remain until ventilator
// demand first exceeds the available supply, assuming the demand path
// given — the "assessing depletion of current resources" product. It
// returns math.Inf(1) when the path never overflows.
func DaysOfVentilatorRunway(res Resources, d Demand, availableFraction float64) (float64, error) {
	rep, err := Analyze(res, d, availableFraction)
	if err != nil {
		return 0, err
	}
	if rep.FirstVentOverflow < 0 {
		return math.Inf(1), nil
	}
	return float64(rep.FirstVentOverflow), nil
}
