package capacity

import (
	"math"
	"testing"

	"repro/internal/synthpop"
)

func TestFromAHA(t *testing.T) {
	va, _ := synthpop.StateByCode("VA")
	res := FromAHA(va)
	// VA ≈ 8.5M → ≈20,500 beds, ≈2,200 ICU, ≈1,600 ventilators.
	if res.Beds < 15000 || res.Beds > 25000 {
		t.Fatalf("VA beds %d implausible", res.Beds)
	}
	if res.ICUBeds >= res.Beds || res.Ventilators >= res.ICUBeds*2 {
		t.Fatalf("capacity ordering wrong: %+v", res)
	}
	if res.Region != "VA" {
		t.Fatal("region lost")
	}
}

func TestScaled(t *testing.T) {
	r := Resources{Region: "VA", Beds: 20000, ICUBeds: 2200, Ventilators: 1600}
	s := r.Scaled(10000)
	if s.Beds != 2 || s.ICUBeds != 1 || s.Ventilators != 1 {
		t.Fatalf("scaled %+v", s)
	}
	if r.Scaled(1) != r || r.Scaled(0) != r {
		t.Fatal("identity scaling wrong")
	}
}

func demandPath(days int, peakH, peakV float64, peakDay int) Demand {
	d := Demand{Hospitalized: make([]float64, days), Ventilated: make([]float64, days)}
	for i := 0; i < days; i++ {
		shape := math.Exp(-math.Pow(float64(i-peakDay)/15, 2))
		d.Hospitalized[i] = peakH * shape
		d.Ventilated[i] = peakV * shape
	}
	return d
}

func TestAnalyzeNoOverflow(t *testing.T) {
	res := Resources{Region: "VA", Beds: 1000, Ventilators: 100, ICUBeds: 150}
	d := demandPath(120, 200, 20, 60) // well under 40% of capacity
	rep, err := Analyze(res, d, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HospitalOverflowDays != 0 || rep.VentilatorOverflowDays != 0 {
		t.Fatalf("unexpected overflow: %+v", rep)
	}
	if rep.FirstHospitalOverflow != -1 || rep.FirstVentOverflow != -1 {
		t.Fatal("first-overflow days should be -1")
	}
	if rep.PeakHospitalDay != 60 {
		t.Fatalf("peak day %d want 60", rep.PeakHospitalDay)
	}
	if rep.HospitalUtilizationPeak <= 0 || rep.HospitalUtilizationPeak >= 1 {
		t.Fatalf("utilization %v", rep.HospitalUtilizationPeak)
	}
	runway, err := DaysOfVentilatorRunway(res, d, 0.6)
	if err != nil || !math.IsInf(runway, 1) {
		t.Fatalf("runway %v, %v want +Inf", runway, err)
	}
}

func TestAnalyzeOverflow(t *testing.T) {
	res := Resources{Region: "VA", Beds: 1000, Ventilators: 100, ICUBeds: 150}
	d := demandPath(120, 800, 90, 60) // ventilator demand 90 > 100×0.4
	rep, err := Analyze(res, d, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HospitalOverflowDays == 0 {
		t.Fatal("hospital overflow not detected (800 > 400)")
	}
	if rep.VentilatorOverflowDays == 0 {
		t.Fatal("ventilator overflow not detected (90 > 40)")
	}
	if rep.FirstHospitalOverflow < 0 || rep.FirstHospitalOverflow >= rep.PeakHospitalDay {
		t.Fatalf("first overflow day %d should precede the peak %d",
			rep.FirstHospitalOverflow, rep.PeakHospitalDay)
	}
	if rep.HospitalUtilizationPeak <= 1 {
		t.Fatalf("peak utilization %v should exceed 1", rep.HospitalUtilizationPeak)
	}
	runway, err := DaysOfVentilatorRunway(res, d, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if runway <= 0 || runway >= 60 {
		t.Fatalf("runway %v days implausible", runway)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	res := Resources{Region: "VA", Beds: 100, Ventilators: 10}
	if _, err := Analyze(res, Demand{}, 0.4); err == nil {
		t.Error("empty demand accepted")
	}
	if _, err := Analyze(res, Demand{Hospitalized: []float64{1}, Ventilated: []float64{1, 2}}, 0.4); err == nil {
		t.Error("mismatched series accepted")
	}
	if _, err := Analyze(Resources{Region: "XX"}, demandPath(10, 1, 1, 5), 0.4); err == nil {
		t.Error("zero capacity accepted")
	}
	// Out-of-range fraction falls back to default rather than failing.
	if rep, err := Analyze(res, demandPath(10, 1, 1, 5), 7); err != nil || rep.AvailableFraction != 0.4 {
		t.Error("bad fraction not defaulted")
	}
}
