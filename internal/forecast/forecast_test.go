package forecast

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func normalForecast(t testing.TB, mean, sd float64) *Forecast {
	t.Helper()
	var qs []Quantile
	for _, p := range HubQuantileLevels() {
		qs = append(qs, Quantile{P: p, V: mean + sd*stats.NormQuantile(p)})
	}
	f, err := NewForecast(qs)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewForecastValidation(t *testing.T) {
	if _, err := NewForecast(nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := NewForecast([]Quantile{{P: 0, V: 1}}); err == nil {
		t.Error("level 0 accepted")
	}
	if _, err := NewForecast([]Quantile{{P: 0.2, V: 1}, {P: 0.2, V: 2}}); err == nil {
		t.Error("duplicate level accepted")
	}
	if _, err := NewForecast([]Quantile{{P: 0.2, V: 5}, {P: 0.8, V: 1}}); err == nil {
		t.Error("crossing quantiles accepted")
	}
}

func TestFromSamples(t *testing.T) {
	r := stats.NewRNG(1)
	samples := make([]float64, 5000)
	for i := range samples {
		samples[i] = r.Normal(100, 10)
	}
	f, err := FromSamples(samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Quantiles) != 23 {
		t.Fatalf("%d quantiles want 23 (hub standard)", len(f.Quantiles))
	}
	if math.Abs(f.Median()-100) > 1 {
		t.Fatalf("median %v want ≈100", f.Median())
	}
	lo, hi := f.Interval(0.05)
	if math.Abs(lo-(100-1.96*10)) > 1.5 || math.Abs(hi-(100+1.96*10)) > 1.5 {
		t.Fatalf("95%% interval [%v, %v]", lo, hi)
	}
	if _, err := FromSamples(nil); err == nil {
		t.Error("empty samples accepted")
	}
}

func TestAtInterpolates(t *testing.T) {
	f, err := NewForecast([]Quantile{{P: 0.25, V: 10}, {P: 0.75, V: 20}})
	if err != nil {
		t.Fatal(err)
	}
	if v := f.At(0.5); v != 15 {
		t.Fatalf("At(0.5) = %v want 15", v)
	}
	if v := f.At(0.01); v != 10 {
		t.Fatalf("At below range %v want clamp to 10", v)
	}
	if v := f.At(0.99); v != 20 {
		t.Fatalf("At above range %v want clamp to 20", v)
	}
}

func TestIntervalScoreProperties(t *testing.T) {
	f := normalForecast(t, 100, 10)
	inside := IntervalScore(f, 0.1, 100)
	outside := IntervalScore(f, 0.1, 150)
	if outside <= inside {
		t.Fatal("score should penalize misses")
	}
	// Inside the interval the score equals the width.
	lo, hi := f.Interval(0.1)
	if math.Abs(inside-(hi-lo)) > 1e-9 {
		t.Fatalf("inside score %v want width %v", inside, hi-lo)
	}
}

func TestWISProperties(t *testing.T) {
	f := normalForecast(t, 100, 10)
	atCenter := WIS(f, 100)
	missNear := WIS(f, 120)
	missFar := WIS(f, 200)
	if !(atCenter < missNear && missNear < missFar) {
		t.Fatalf("WIS not monotone in miss distance: %v, %v, %v", atCenter, missNear, missFar)
	}
	// A sharper forecast centered correctly scores better.
	sharp := normalForecast(t, 100, 2)
	if WIS(sharp, 100) >= WIS(f, 100) {
		t.Fatal("sharper correct forecast should score better")
	}
	// But a sharp, wrong forecast scores worse than a wide one.
	if WIS(sharp, 130) <= WIS(f, 130) {
		t.Fatal("overconfident wrong forecast should score worse")
	}
}

func TestWISNonNegativeQuick(t *testing.T) {
	err := quick.Check(func(seed uint16, obsRaw int16) bool {
		r := stats.NewRNG(uint64(seed))
		samples := make([]float64, 100)
		for i := range samples {
			samples[i] = r.Normal(50, 20)
		}
		f, err := FromSamples(samples)
		if err != nil {
			return false
		}
		return WIS(f, float64(obsRaw)) >= 0
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCoverageCalibration(t *testing.T) {
	// Score a well-calibrated forecaster: observations drawn from the
	// same distribution as the forecast.
	r := stats.NewRNG(4)
	var card Scorecard
	f := normalForecast(t, 0, 1)
	for i := 0; i < 2000; i++ {
		card.Add(f, r.Norm())
	}
	if c := card.Coverage95(); c < 0.92 || c > 0.98 {
		t.Fatalf("95%% coverage %v", c)
	}
	if c := card.Coverage50(); c < 0.44 || c > 0.56 {
		t.Fatalf("50%% coverage %v", c)
	}
	if card.MAE() <= 0 || card.MeanWIS() <= 0 {
		t.Fatal("degenerate scores")
	}
}

func TestScorecardEmpty(t *testing.T) {
	var c Scorecard
	if !math.IsNaN(c.MAE()) || !math.IsNaN(c.MeanWIS()) || !math.IsNaN(c.Coverage95()) || !math.IsNaN(c.Coverage50()) {
		t.Fatal("empty scorecard should be NaN")
	}
}

func TestCovered(t *testing.T) {
	f := normalForecast(t, 100, 10)
	if !Covered(f, 0.05, 100) {
		t.Fatal("center not covered")
	}
	if Covered(f, 0.05, 200) {
		t.Fatal("far point covered")
	}
}
