// Package forecast implements the scoring machinery used to evaluate the
// pipeline's weekly forecasts. The paper's group submits to the CDC /
// COVID-19 Forecast Hub ensembles; the hub's standard scores are the mean
// absolute error of the point forecast, prediction-interval coverage, and
// the weighted interval score (WIS) over a set of central intervals —
// implemented here so forecast quality can be tracked release over
// release.
package forecast

import (
	"fmt"
	"math"
	"sort"
)

// Quantile pairs a probability level with its forecast value.
type Quantile struct {
	P float64
	V float64
}

// Forecast is one target's predictive distribution, as the hub formats it:
// a set of quantiles, symmetric around the median.
type Forecast struct {
	Quantiles []Quantile
}

// NewForecast builds a Forecast and sorts/validates the quantiles.
func NewForecast(qs []Quantile) (*Forecast, error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("forecast: no quantiles")
	}
	out := append([]Quantile(nil), qs...)
	sort.Slice(out, func(i, j int) bool { return out[i].P < out[j].P })
	for i, q := range out {
		if q.P <= 0 || q.P >= 1 {
			return nil, fmt.Errorf("forecast: quantile level %g outside (0,1)", q.P)
		}
		if i > 0 {
			if q.P == out[i-1].P {
				return nil, fmt.Errorf("forecast: duplicate quantile level %g", q.P)
			}
			if q.V < out[i-1].V {
				return nil, fmt.Errorf("forecast: quantile crossing at level %g", q.P)
			}
		}
	}
	return &Forecast{Quantiles: out}, nil
}

// FromSamples builds a hub-style forecast from ensemble samples at the
// standard 23 hub quantile levels.
func FromSamples(samples []float64) (*Forecast, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("forecast: no samples")
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	var qs []Quantile
	for _, p := range HubQuantileLevels() {
		qs = append(qs, Quantile{P: p, V: sortedQuantile(s, p)})
	}
	return NewForecast(qs)
}

// HubQuantileLevels returns the 23 standard hub levels.
func HubQuantileLevels() []float64 {
	return []float64{
		0.01, 0.025, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5,
		0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95, 0.975, 0.99,
	}
}

func sortedQuantile(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Median returns the 0.5 quantile (interpolated when absent).
func (f *Forecast) Median() float64 { return f.At(0.5) }

// At interpolates the forecast value at an arbitrary level.
func (f *Forecast) At(p float64) float64 {
	qs := f.Quantiles
	if p <= qs[0].P {
		return qs[0].V
	}
	if p >= qs[len(qs)-1].P {
		return qs[len(qs)-1].V
	}
	for i := 1; i < len(qs); i++ {
		if p <= qs[i].P {
			span := qs[i].P - qs[i-1].P
			if span == 0 {
				return qs[i].V
			}
			frac := (p - qs[i-1].P) / span
			return qs[i-1].V + frac*(qs[i].V-qs[i-1].V)
		}
	}
	return qs[len(qs)-1].V
}

// Interval returns the central (1−alpha) interval.
func (f *Forecast) Interval(alpha float64) (lo, hi float64) {
	return f.At(alpha / 2), f.At(1 - alpha/2)
}

// AbsError returns |median − observed|.
func AbsError(f *Forecast, observed float64) float64 {
	return math.Abs(f.Median() - observed)
}

// IntervalScore computes the classical interval score for the central
// (1−alpha) interval: width + (2/alpha)·distance outside.
func IntervalScore(f *Forecast, alpha, observed float64) float64 {
	lo, hi := f.Interval(alpha)
	score := hi - lo
	if observed < lo {
		score += 2 / alpha * (lo - observed)
	}
	if observed > hi {
		score += 2 / alpha * (observed - hi)
	}
	return score
}

// WIS computes the weighted interval score over the hub's standard alphas
// {0.02, 0.05, 0.1, 0.2, …, 0.9} plus the median term:
//
//	WIS = (|y − median|/2 + Σ_k (α_k/2)·IS_{α_k}) / (K + 1/2)
func WIS(f *Forecast, observed float64) float64 {
	alphas := []float64{0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	total := 0.5 * AbsError(f, observed)
	for _, a := range alphas {
		total += (a / 2) * IntervalScore(f, a, observed)
	}
	return total / (float64(len(alphas)) + 0.5)
}

// Covered reports whether the observation falls inside the central
// (1−alpha) interval.
func Covered(f *Forecast, alpha, observed float64) bool {
	lo, hi := f.Interval(alpha)
	return observed >= lo && observed <= hi
}

// Scorecard aggregates scores over many (forecast, observation) pairs —
// one row per forecast date × horizon × location, as the hub evaluates.
type Scorecard struct {
	N         int
	SumAE     float64
	SumWIS    float64
	Covered95 int
	Covered50 int
}

// Add scores one pair into the card.
func (c *Scorecard) Add(f *Forecast, observed float64) {
	c.N++
	c.SumAE += AbsError(f, observed)
	c.SumWIS += WIS(f, observed)
	if Covered(f, 0.05, observed) {
		c.Covered95++
	}
	if Covered(f, 0.5, observed) {
		c.Covered50++
	}
}

// MAE returns the mean absolute error.
func (c *Scorecard) MAE() float64 {
	if c.N == 0 {
		return math.NaN()
	}
	return c.SumAE / float64(c.N)
}

// MeanWIS returns the mean weighted interval score.
func (c *Scorecard) MeanWIS() float64 {
	if c.N == 0 {
		return math.NaN()
	}
	return c.SumWIS / float64(c.N)
}

// Coverage95 returns the empirical 95% interval coverage.
func (c *Scorecard) Coverage95() float64 {
	if c.N == 0 {
		return math.NaN()
	}
	return float64(c.Covered95) / float64(c.N)
}

// Coverage50 returns the empirical 50% interval coverage.
func (c *Scorecard) Coverage50() float64 {
	if c.N == 0 {
		return math.NaN()
	}
	return float64(c.Covered50) / float64(c.N)
}
