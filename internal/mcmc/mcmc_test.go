package mcmc

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/stats"
)

// Gaussian target centered at (1, -0.5).
func gaussTarget(theta []float64) float64 {
	d0 := theta[0] - 1
	d1 := theta[1] + 0.5
	return -0.5 * (d0*d0/0.04 + d1*d1/0.01)
}

func TestMetropolisRecoversGaussian(t *testing.T) {
	res, err := Metropolis(gaussTarget, Config{
		Init: []float64{0, 0},
		Lo:   []float64{-3, -3}, Hi: []float64{3, 3},
		Steps: 4000, BurnIn: 1000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	m0 := ColumnMean(res.Samples, 0)
	m1 := ColumnMean(res.Samples, 1)
	if math.Abs(m0-1) > 0.08 {
		t.Errorf("mean[0] = %v want 1", m0)
	}
	if math.Abs(m1+0.5) > 0.05 {
		t.Errorf("mean[1] = %v want -0.5", m1)
	}
	// Posterior spread roughly matches the target sd (0.2): the central
	// 95% interval should span ≈ 4 sd.
	qlo := ColumnQuantile(res.Samples, 0, 0.025)
	qhi := ColumnQuantile(res.Samples, 0, 0.975)
	span := qhi - qlo
	if span < 0.5 || span > 1.3 {
		t.Errorf("95%% span %v want ≈0.78", span)
	}
}

func TestMetropolisValidation(t *testing.T) {
	if _, err := Metropolis(gaussTarget, Config{}); err == nil {
		t.Error("empty init accepted")
	}
	if _, err := Metropolis(gaussTarget, Config{Init: []float64{0}, Lo: []float64{0, 0}, Hi: []float64{1}}); err == nil {
		t.Error("mismatched bounds accepted")
	}
	if _, err := Metropolis(gaussTarget, Config{Init: []float64{5}, Lo: []float64{0}, Hi: []float64{1}, Steps: 10}); err == nil {
		t.Error("init outside box accepted")
	}
	if _, err := Metropolis(gaussTarget, Config{Init: []float64{0.5}, Lo: []float64{0}, Hi: []float64{1}, Steps: 0}); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := Metropolis(gaussTarget, Config{Init: []float64{0.5}, Lo: []float64{1}, Hi: []float64{0}, Steps: 5}); err == nil {
		t.Error("inverted bounds accepted")
	}
}

func TestSamplesStayInBox(t *testing.T) {
	res, err := Metropolis(gaussTarget, Config{
		Init: []float64{0.5, 0.5},
		Lo:   []float64{0, 0}, Hi: []float64{1, 1},
		Steps: 2000, BurnIn: 200, Seed: 2, StepFrac: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Samples {
		for k, v := range s {
			if v < 0 || v > 1 {
				t.Fatalf("sample dim %d escaped box: %v", k, v)
			}
		}
	}
}

func TestBestTracksHighestPosterior(t *testing.T) {
	res, err := Metropolis(gaussTarget, Config{
		Init: []float64{-2, 2},
		Lo:   []float64{-3, -3}, Hi: []float64{3, 3},
		Steps: 3000, BurnIn: 500, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Best[0]-1) > 0.2 || math.Abs(res.Best[1]+0.5) > 0.2 {
		t.Fatalf("best %v far from mode (1, -0.5)", res.Best)
	}
	for _, lp := range res.LogPosts {
		if lp > res.BestLogP+1e-12 {
			t.Fatal("a sample beats Best")
		}
	}
}

func TestThinning(t *testing.T) {
	res, err := Metropolis(gaussTarget, Config{
		Init: []float64{0, 0},
		Lo:   []float64{-3, -3}, Hi: []float64{3, 3},
		Steps: 1000, BurnIn: 100, Thin: 10, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 100 {
		t.Fatalf("thinned chain length %d want 100", len(res.Samples))
	}
}

func TestDeterministicBySeed(t *testing.T) {
	run := func(seed uint64) float64 {
		res, err := Metropolis(gaussTarget, Config{
			Init: []float64{0, 0},
			Lo:   []float64{-3, -3}, Hi: []float64{3, 3},
			Steps: 500, BurnIn: 100, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ColumnMean(res.Samples, 0)
	}
	if run(7) != run(7) {
		t.Fatal("same seed differs")
	}
	if run(7) == run(8) {
		t.Fatal("different seeds identical")
	}
}

func TestDegenerateDimension(t *testing.T) {
	// One dimension pinned (lo == hi) must not wedge the sampler.
	res, err := Metropolis(func(th []float64) float64 {
		return -th[0] * th[0]
	}, Config{
		Init: []float64{0.5, 2},
		Lo:   []float64{0, 2}, Hi: []float64{1, 2},
		Steps: 200, BurnIn: 50, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Samples {
		if s[1] != 2 {
			t.Fatalf("pinned dimension moved: %v", s[1])
		}
	}
}

func TestESS(t *testing.T) {
	// Independent samples: ESS ≈ n.
	r := stats.NewRNG(6)
	var ind [][]float64
	for i := 0; i < 500; i++ {
		ind = append(ind, []float64{r.Norm()})
	}
	if ess := ESS(ind, 0); ess < 250 {
		t.Fatalf("independent ESS %v too low", ess)
	}
	// Perfectly correlated samples: ESS ≪ n.
	var corr [][]float64
	v := 0.0
	for i := 0; i < 500; i++ {
		v += 0.01 * r.Norm()
		corr = append(corr, []float64{v})
	}
	if ess := ESS(corr, 0); ess > 100 {
		t.Fatalf("random-walk ESS %v too high", ess)
	}
	if ESS(nil, 0) != 0 {
		t.Fatal("empty ESS should be 0")
	}
}

// Regression: a NaN log-posterior at Init used to run a silently stuck
// chain (every accept test false against NaN); it must be an error now.
func TestNaNAtInitIsAnError(t *testing.T) {
	nanAtInit := func(th []float64) float64 {
		if th[0] == 0.5 && th[1] == 0.5 {
			return math.NaN()
		}
		return gaussTarget(th)
	}
	_, err := Metropolis(nanAtInit, Config{
		Init: []float64{0.5, 0.5},
		Lo:   []float64{0, 0}, Hi: []float64{1, 1},
		Steps: 100, BurnIn: 10, Seed: 1,
	})
	if err == nil {
		t.Fatal("NaN initial log-posterior accepted; chain would be permanently stuck")
	}
}

// Regression: NaN proposals must be rejected, not wedge the chain. A target
// with a NaN pocket still explores the rest of the box.
func TestNaNProposalsAreRejected(t *testing.T) {
	nanPocket := func(th []float64) float64 {
		if th[0] > 0.8 {
			return math.NaN()
		}
		return gaussTarget(th)
	}
	res, err := Metropolis(nanPocket, Config{
		Init: []float64{0.5, 0.5},
		Lo:   []float64{0, 0}, Hi: []float64{1, 1},
		Steps: 2000, BurnIn: 200, Seed: 2, StepFrac: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AcceptRate == 0 {
		t.Fatal("chain never moved around a NaN pocket")
	}
	for _, s := range res.Samples {
		if s[0] > 0.8 {
			t.Fatalf("NaN-region sample retained: %v", s)
		}
		if math.IsNaN(s[0]) || math.IsNaN(s[1]) {
			t.Fatalf("NaN sample retained: %v", s)
		}
	}
	for _, lp := range res.LogPosts {
		if math.IsNaN(lp) {
			t.Fatal("NaN log-posterior retained")
		}
	}
}

// Regression: with bounds wide enough that hi-lo overflows to +Inf, the
// proposal scale is +Inf and draws are ±Inf (or NaN). The reflection loop
// used to oscillate 2·lo−x / 2·hi−x forever; it must now clamp and return.
func TestReflectionTerminatesOnNonFiniteProposals(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		res, err := Metropolis(func(th []float64) float64 {
			d := th[0] / 1e300
			return -d * d // finite for any in-box value
		}, Config{
			Init: []float64{0},
			Lo:   []float64{-1e308}, Hi: []float64{1e308},
			Steps: 200, BurnIn: 20, Seed: 3,
		})
		if err == nil {
			for _, s := range res.Samples {
				if s[0] < -1e308 || s[0] > 1e308 || math.IsNaN(s[0]) {
					err = fmt.Errorf("sample escaped box: %v", s[0])
					break
				}
			}
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Metropolis hung in the reflection loop on a non-finite proposal")
	}
}

func TestReflectHelper(t *testing.T) {
	cases := []struct {
		x, cur, lo, hi, want float64
	}{
		{0.5, 0.2, 0, 1, 0.5},        // in box: untouched
		{-0.25, 0.2, 0, 1, 0.25},     // one reflection at lo
		{1.25, 0.2, 0, 1, 0.75},      // one reflection at hi
		{math.Inf(1), 0.2, 0, 1, 1},  // +Inf clamps to hi
		{math.Inf(-1), 0.2, 0, 1, 0}, // -Inf clamps to lo
		{math.NaN(), 0.2, 0, 1, 0.2}, // NaN keeps the current value
		{123, 0.5, 2, 2, 2},          // degenerate span pins to lo
		{1e300, 0.2, 0, 1, 0},        // reflection budget exceeded: clamp
	}
	for _, c := range cases {
		if got := reflect(c.x, c.cur, c.lo, c.hi); got != c.want {
			t.Errorf("reflect(%g, %g, %g, %g) = %g want %g", c.x, c.cur, c.lo, c.hi, got, c.want)
		}
	}
}

func TestColumnStatsEmpty(t *testing.T) {
	if !math.IsNaN(ColumnMean(nil, 0)) {
		t.Fatal("empty mean should be NaN")
	}
	if !math.IsNaN(ColumnQuantile(nil, 0, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}
