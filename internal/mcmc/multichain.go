package mcmc

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/obs"
	"repro/internal/stats"
)

// MultiConfig controls a multi-chain Metropolis run. The embedded Config
// describes each individual chain (Init seeds chain 0; the remaining chains
// start from over-dispersed points drawn uniformly in the prior box).
type MultiConfig struct {
	Config
	// Chains is the number of independent chains M (default 4).
	Chains int
	// Parallelism caps how many chains run concurrently (default
	// min(Chains, GOMAXPROCS)). The pooled result is bit-identical for a
	// fixed Seed at ANY parallelism: every chain's seed and starting point
	// are derived before launch, chains never share state, and draws are
	// pooled in chain order.
	Parallelism int
	// RHatMax, when > 0, gates convergence: if any coordinate's split-R̂
	// exceeds it, RunChains returns the pooled result together with a
	// *ConvergenceError instead of silently handing back a bad posterior.
	RHatMax float64
	// MinESS, when > 0, additionally requires every coordinate's pooled
	// effective sample size to reach it.
	MinESS float64
}

// MultiResult pools M chains: per-chain results, the chain-ordered pooled
// post-burn-in draws, and per-coordinate convergence diagnostics.
type MultiResult struct {
	Chains []*Result
	// Samples and LogPosts concatenate the retained draws of every chain
	// in chain order.
	Samples  [][]float64
	LogPosts []float64
	// AcceptRate averages the per-chain acceptance rates.
	AcceptRate float64
	Best       []float64
	BestLogP   float64
	// RHat is the split-R̂ of each coordinate across the chains (NaN when
	// the chains are too short to split).
	RHat []float64
	// ESS is the pooled effective sample size per coordinate (sum of the
	// per-chain estimates).
	ESS []float64
	// Converged reports whether every coordinate passed the gate (against
	// RHatMax/MinESS, or against DefaultRHatMax when no gate was set).
	Converged bool
}

// DefaultRHatMax is the advisory split-R̂ threshold used for the Converged
// flag when no explicit gate is configured. 1.05 is the conventional
// "converged" cutoff; gates may be looser.
const DefaultRHatMax = 1.05

// ConvergenceError reports a failed convergence gate. The caller still
// receives the pooled MultiResult so diagnostics can be inspected or the
// run extended.
type ConvergenceError struct {
	RHat    []float64
	ESS     []float64
	RHatMax float64
	MinESS  float64
}

func (e *ConvergenceError) Error() string {
	worstR, worstK := 0.0, -1
	for k, r := range e.RHat {
		if math.IsNaN(r) || r > worstR {
			worstR, worstK = r, k
			if math.IsNaN(r) {
				break
			}
		}
	}
	minESS, minK := math.Inf(1), -1
	for k, n := range e.ESS {
		if n < minESS {
			minESS, minK = n, k
		}
	}
	return fmt.Sprintf("mcmc: chains not converged: worst split-R̂ %.4g (dim %d, gate %.4g), min ESS %.4g (dim %d, gate %.4g)",
		worstR, worstK, e.RHatMax, minESS, minK, e.MinESS)
}

// RunChains runs M over-dispersed Metropolis chains concurrently and pools
// their post-burn-in draws. newTarget is called once per chain (with the
// chain index) before any chain starts, so targets may carry per-chain
// scratch state without synchronization; pass the same function for a
// stateless target. The result is deterministic for a fixed cfg.Seed at any
// Parallelism.
func RunChains(newTarget func(chain int) LogTarget, cfg MultiConfig) (*MultiResult, error) {
	return RunChainsCtx(context.Background(), newTarget, cfg)
}

// RunChainsCtx is RunChains under an "mcmc" span with one "mcmc.chain" child
// per chain and a "calibration.gate" event recording the R̂/ESS verdict.
// Chain seeding and pooling are untouched by tracing, so the posterior is
// bit-identical with or without a tracer on ctx.
func RunChainsCtx(ctx context.Context, newTarget func(chain int) LogTarget, cfg MultiConfig) (*MultiResult, error) {
	if newTarget == nil {
		return nil, fmt.Errorf("mcmc: nil target factory")
	}
	if cfg.Chains <= 0 {
		cfg.Chains = 4
	}
	m := cfg.Chains
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	if cfg.Parallelism > m {
		cfg.Parallelism = m
	}
	d := len(cfg.Init)
	ctx, sp := obs.StartSpan(ctx, "mcmc",
		obs.Int("chains", int64(m)),
		obs.Int("parallelism", int64(cfg.Parallelism)),
		obs.Int("steps", int64(cfg.Steps)))
	defer sp.End()

	// Derive every chain's seed and starting point up front, from a
	// dedicated seeding stream, so the per-chain work is a pure function
	// of (chain index, cfg) regardless of scheduling.
	seedRNG := stats.NewRNG(cfg.Seed ^ 0xC4A1B5EED)
	cfgs := make([]Config, m)
	for c := 0; c < m; c++ {
		cc := cfg.Config
		cc.Seed = seedRNG.Uint64()
		if c > 0 {
			// Over-dispersed start: uniform in the prior box.
			init := make([]float64, d)
			for k := 0; k < d; k++ {
				init[k] = cfg.Lo[k] + seedRNG.Float64()*(cfg.Hi[k]-cfg.Lo[k])
			}
			cc.Init = init
		}
		cfgs[c] = cc
	}
	targets := make([]LogTarget, m)
	for c := 0; c < m; c++ {
		targets[c] = newTarget(c)
	}

	results := make([]*Result, m)
	errs := make([]error, m)
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Parallelism)
	for c := 0; c < m; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			_, csp := obs.StartSpan(ctx, "mcmc.chain", obs.Int("chain", int64(c)))
			results[c], errs[c] = Metropolis(targets[c], cfgs[c])
			if results[c] != nil {
				csp.SetAttr(obs.Float("accept_rate", results[c].AcceptRate))
			}
			csp.End()
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mcmc: chain %d: %w", c, err)
		}
	}

	out := &MultiResult{Chains: results, BestLogP: math.Inf(-1)}
	for _, r := range results {
		out.Samples = append(out.Samples, r.Samples...)
		out.LogPosts = append(out.LogPosts, r.LogPosts...)
		out.AcceptRate += r.AcceptRate / float64(m)
		if r.BestLogP > out.BestLogP {
			out.BestLogP = r.BestLogP
			out.Best = append([]float64(nil), r.Best...)
		}
	}

	chains := make([][][]float64, m)
	for c, r := range results {
		chains[c] = r.Samples
	}
	out.RHat = make([]float64, d)
	out.ESS = make([]float64, d)
	for k := 0; k < d; k++ {
		out.RHat[k] = SplitRHat(chains, k)
		for _, r := range results {
			out.ESS[k] += ESS(r.Samples, k)
		}
	}

	rGate := cfg.RHatMax
	if rGate <= 0 {
		rGate = DefaultRHatMax
	}
	out.Converged = true
	for k := 0; k < d; k++ {
		if !(out.RHat[k] <= rGate) || (cfg.MinESS > 0 && out.ESS[k] < cfg.MinESS) {
			out.Converged = false
		}
	}
	worstR, minESS := 0.0, math.Inf(1)
	for k := 0; k < d; k++ {
		if math.IsNaN(out.RHat[k]) || out.RHat[k] > worstR {
			worstR = out.RHat[k]
		}
		if out.ESS[k] < minESS {
			minESS = out.ESS[k]
		}
	}
	obs.Event(ctx, "calibration.gate",
		obs.Bool("converged", out.Converged),
		obs.Float("worst_rhat", worstR),
		obs.Float("min_ess", minESS))
	if (cfg.RHatMax > 0 || cfg.MinESS > 0) && !out.Converged {
		return out, &ConvergenceError{
			RHat: out.RHat, ESS: out.ESS,
			RHatMax: cfg.RHatMax, MinESS: cfg.MinESS,
		}
	}
	return out, nil
}

// SplitRHat computes the split-R̂ (Gelman–Rubin potential scale reduction
// with each chain split in half, the form recommended in BDA3) of
// coordinate k across the given chains. It returns NaN when fewer than 4
// draws per chain are available, and 1 for a completely degenerate (zero
// variance) coordinate — a pinned dimension is converged by definition.
func SplitRHat(chains [][][]float64, k int) float64 {
	var halves [][]float64
	// Split every chain in half; truncate odd chains so halves match.
	n := math.MaxInt
	for _, ch := range chains {
		if len(ch) < n {
			n = len(ch)
		}
	}
	if n < 4 || len(chains) == 0 {
		return math.NaN()
	}
	half := n / 2
	for _, ch := range chains {
		a := make([]float64, half)
		b := make([]float64, half)
		for i := 0; i < half; i++ {
			a[i] = ch[i][k]
			b[i] = ch[n-half+i][k]
		}
		halves = append(halves, a, b)
	}
	mGroups := len(halves)
	means := make([]float64, mGroups)
	vars := make([]float64, mGroups)
	for j, h := range halves {
		means[j] = stats.Mean(h)
		s := 0.0
		for _, v := range h {
			dv := v - means[j]
			s += dv * dv
		}
		vars[j] = s / float64(half-1)
	}
	grand := stats.Mean(means)
	w := stats.Mean(vars)
	b := 0.0
	for _, mu := range means {
		dm := mu - grand
		b += dm * dm
	}
	b *= float64(half) / float64(mGroups-1)
	if w == 0 {
		if b == 0 {
			return 1
		}
		return math.Inf(1)
	}
	varPlus := float64(half-1)/float64(half)*w + b/float64(half)
	return math.Sqrt(varPlus / w)
}
