// Package mcmc provides the Markov chain Monte Carlo machinery used by the
// Bayesian calibration workflows: a random-walk Metropolis sampler over a
// box prior (the paper gives every calibration parameter a uniform prior
// over its range), adaptive step scaling during burn-in, and simple chain
// diagnostics.
package mcmc

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// LogTarget evaluates the unnormalized log posterior at a parameter vector.
type LogTarget func(theta []float64) float64

// Config controls a Metropolis run.
type Config struct {
	// Init is the starting point; it must lie inside the prior box.
	Init []float64
	// Lo and Hi bound the uniform prior box.
	Lo, Hi []float64
	// Steps is the post-burn-in chain length.
	Steps int
	// BurnIn steps are discarded (and used for step-size adaptation).
	BurnIn int
	// Thin keeps every Thin-th sample (1 = keep all).
	Thin int
	// StepFrac is the initial proposal standard deviation as a fraction
	// of each parameter's range.
	StepFrac float64
	Seed     uint64
}

// Result holds the retained samples and diagnostics.
type Result struct {
	Samples    [][]float64
	LogPosts   []float64
	AcceptRate float64
	// Best is the highest-posterior sample seen (including burn-in).
	Best     []float64
	BestLogP float64
}

// Metropolis runs a random-walk Metropolis chain with reflection at the
// prior box boundaries. During burn-in the proposal scale adapts toward a
// ~30% acceptance rate.
func Metropolis(target LogTarget, cfg Config) (*Result, error) {
	d := len(cfg.Init)
	if d == 0 {
		return nil, fmt.Errorf("mcmc: empty initial point")
	}
	if len(cfg.Lo) != d || len(cfg.Hi) != d {
		return nil, fmt.Errorf("mcmc: bounds dimension mismatch (%d, %d vs %d)", len(cfg.Lo), len(cfg.Hi), d)
	}
	for k := 0; k < d; k++ {
		if cfg.Hi[k] < cfg.Lo[k] {
			return nil, fmt.Errorf("mcmc: inverted bound in dim %d", k)
		}
		if cfg.Init[k] < cfg.Lo[k] || cfg.Init[k] > cfg.Hi[k] {
			return nil, fmt.Errorf("mcmc: init outside prior box in dim %d", k)
		}
	}
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("mcmc: non-positive steps %d", cfg.Steps)
	}
	if cfg.Thin <= 0 {
		cfg.Thin = 1
	}
	if cfg.StepFrac <= 0 {
		cfg.StepFrac = 0.1
	}
	r := stats.NewRNG(cfg.Seed)
	scale := make([]float64, d)
	for k := range scale {
		span := cfg.Hi[k] - cfg.Lo[k]
		if span == 0 {
			span = 1e-12
		}
		scale[k] = cfg.StepFrac * span
	}
	cur := append([]float64(nil), cfg.Init...)
	curLP := target(cur)
	// A NaN initial log-posterior would make the accept test permanently
	// false (NaN comparisons are false, exp(NaN) is NaN), silently running
	// a chain stuck at Init. Error out instead.
	if math.IsNaN(curLP) {
		return nil, fmt.Errorf("mcmc: target is NaN at the initial point %v", cur)
	}
	res := &Result{Best: append([]float64(nil), cur...), BestLogP: curLP}
	prop := make([]float64, d)
	accepted, proposed := 0, 0
	adaptAccepted, adaptWindow := 0, 0

	total := cfg.BurnIn + cfg.Steps
	for step := 0; step < total; step++ {
		for k := 0; k < d; k++ {
			prop[k] = reflect(cur[k]+r.Norm()*scale[k], cur[k], cfg.Lo[k], cfg.Hi[k])
		}
		lp := target(prop)
		proposed++
		// A NaN proposal log-posterior is an explicit rejection (never a
		// new state): accepting it would poison curLP and wedge the chain
		// the same way a NaN init does.
		accept := false
		if !math.IsNaN(lp) {
			accept = lp >= curLP || r.Float64() < math.Exp(lp-curLP)
		}
		if accept {
			copy(cur, prop)
			curLP = lp
			accepted++
			adaptAccepted++
			if lp > res.BestLogP {
				res.BestLogP = lp
				copy(res.Best, cur)
			}
		}
		adaptWindow++
		// Adapt during burn-in every 50 proposals.
		if step < cfg.BurnIn && adaptWindow >= 50 {
			rate := float64(adaptAccepted) / float64(adaptWindow)
			factor := 1.0
			if rate < 0.15 {
				factor = 0.7
			} else if rate > 0.45 {
				factor = 1.4
			}
			for k := range scale {
				scale[k] *= factor
			}
			adaptAccepted, adaptWindow = 0, 0
		}
		if step >= cfg.BurnIn && (step-cfg.BurnIn)%cfg.Thin == 0 {
			res.Samples = append(res.Samples, append([]float64(nil), cur...))
			res.LogPosts = append(res.LogPosts, curLP)
		}
	}
	res.AcceptRate = float64(accepted) / float64(proposed)
	return res, nil
}

// maxReflections bounds the boundary-reflection loop. A finite draw that is
// k·span outside the box needs ~k reflections; anything needing more than
// this is a pathological proposal scale and is clamped to the bound instead.
const maxReflections = 64

// reflect folds a proposal coordinate into [lo, hi] by reflecting at the
// bounds. Non-finite draws are handled explicitly: ±Inf would oscillate
// between 2·lo−x and 2·hi−x forever (2·lo−(+Inf) = −Inf, 2·hi−(−Inf) = +Inf),
// so infinities clamp to the nearest bound and a NaN draw (e.g. 0·Inf from a
// degenerate scale) keeps the current value.
func reflect(x, cur, lo, hi float64) float64 {
	span := hi - lo
	if span <= 0 {
		return lo
	}
	if math.IsNaN(x) {
		return cur
	}
	for iter := 0; x < lo || x > hi; iter++ {
		if math.IsInf(x, 0) || iter >= maxReflections {
			if x < lo {
				return lo
			}
			return hi
		}
		if x < lo {
			x = 2*lo - x
		}
		if x > hi {
			x = 2*hi - x
		}
	}
	return x
}

// ColumnMean returns the mean of one coordinate across samples.
func ColumnMean(samples [][]float64, k int) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range samples {
		s += x[k]
	}
	return s / float64(len(samples))
}

// ColumnQuantile returns a quantile of one coordinate across samples.
func ColumnQuantile(samples [][]float64, k int, q float64) float64 {
	col := make([]float64, len(samples))
	for i, x := range samples {
		col[i] = x[k]
	}
	return stats.Quantile(col, q)
}

// ESS estimates the effective sample size of one coordinate using the
// initial-positive-sequence autocorrelation estimator.
func ESS(samples [][]float64, k int) float64 {
	n := len(samples)
	if n < 4 {
		return float64(n)
	}
	col := make([]float64, n)
	for i, x := range samples {
		col[i] = x[k]
	}
	m := stats.Mean(col)
	var c0 float64
	for _, v := range col {
		c0 += (v - m) * (v - m)
	}
	c0 /= float64(n)
	if c0 == 0 {
		return float64(n)
	}
	sumRho := 0.0
	for lag := 1; lag < n/2; lag++ {
		var c float64
		for i := 0; i+lag < n; i++ {
			c += (col[i] - m) * (col[i+lag] - m)
		}
		c /= float64(n)
		rho := c / c0
		if rho <= 0 {
			break
		}
		sumRho += rho
	}
	ess := float64(n) / (1 + 2*sumRho)
	if ess > float64(n) {
		ess = float64(n)
	}
	return ess
}
