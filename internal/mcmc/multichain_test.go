package mcmc

import (
	"errors"
	"math"
	"testing"
)

func sharedTarget(t LogTarget) func(int) LogTarget {
	return func(int) LogTarget { return t }
}

func gaussMulti(steps int, chains, parallelism int, rhatMax float64) (*MultiResult, error) {
	return RunChains(sharedTarget(gaussTarget), MultiConfig{
		Config: Config{
			Init: []float64{0, 0},
			Lo:   []float64{-3, -3}, Hi: []float64{3, 3},
			Steps: steps, BurnIn: steps / 2, Seed: 11,
		},
		Chains: chains, Parallelism: parallelism, RHatMax: rhatMax,
	})
}

func TestRunChainsRecoversGaussian(t *testing.T) {
	res, err := gaussMulti(3000, 4, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Chains) != 4 {
		t.Fatalf("chains %d want 4", len(res.Chains))
	}
	if len(res.Samples) != 4*3000 {
		t.Fatalf("pooled samples %d want %d", len(res.Samples), 4*3000)
	}
	m0 := ColumnMean(res.Samples, 0)
	m1 := ColumnMean(res.Samples, 1)
	if math.Abs(m0-1) > 0.08 || math.Abs(m1+0.5) > 0.05 {
		t.Errorf("pooled means (%v, %v) want (1, -0.5)", m0, m1)
	}
	// A well-mixed unimodal target converges: R̂ near 1, healthy ESS.
	for k := 0; k < 2; k++ {
		if !(res.RHat[k] < 1.1) {
			t.Errorf("split-R̂[%d] = %v", k, res.RHat[k])
		}
		if res.ESS[k] < 100 {
			t.Errorf("pooled ESS[%d] = %v", k, res.ESS[k])
		}
	}
	if !res.Converged {
		t.Error("advisory Converged flag false on a well-mixed run")
	}
	if res.AcceptRate <= 0 || res.AcceptRate >= 1 {
		t.Errorf("pooled acceptance %v", res.AcceptRate)
	}
}

// The tentpole determinism contract: bit-identical pooled output for a
// fixed seed at any parallelism.
func TestRunChainsDeterministicAcrossParallelism(t *testing.T) {
	a, err := gaussMulti(600, 4, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gaussMulti(600, 4, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := gaussMulti(600, 4, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, other := range []*MultiResult{b, c} {
		if len(a.Samples) != len(other.Samples) {
			t.Fatal("sample count differs across parallelism")
		}
		for i := range a.Samples {
			for k := range a.Samples[i] {
				if a.Samples[i][k] != other.Samples[i][k] {
					t.Fatalf("sample %d dim %d differs across parallelism: %v vs %v",
						i, k, a.Samples[i][k], other.Samples[i][k])
				}
			}
		}
		if a.BestLogP != other.BestLogP || a.AcceptRate != other.AcceptRate {
			t.Fatal("diagnostics differ across parallelism")
		}
		for k := range a.RHat {
			if a.RHat[k] != other.RHat[k] || a.ESS[k] != other.ESS[k] {
				t.Fatal("R̂/ESS differ across parallelism")
			}
		}
	}
}

func TestRunChainsOverDispersedStarts(t *testing.T) {
	res, err := gaussMulti(40, 3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Chains 1..M-1 start from distinct uniform draws, so their first
	// retained samples should not all coincide with chain 0's.
	s0 := res.Chains[0].Samples[0]
	distinct := false
	for _, ch := range res.Chains[1:] {
		s := ch.Samples[0]
		if s[0] != s0[0] || s[1] != s0[1] {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("all chains collapsed onto the same trajectory")
	}
}

// A bimodal target with far-apart modes traps different chains in
// different modes: the gate must fire and surface a ConvergenceError.
func TestRHatGateFiresOnStuckChains(t *testing.T) {
	bimodal := func(th []float64) float64 {
		a := th[0] + 8
		b := th[0] - 8
		// Two needle modes at ±8; a chain cannot cross between them.
		return math.Log(math.Exp(-0.5*a*a/0.0001) + math.Exp(-0.5*b*b/0.0001) + 1e-300)
	}
	res, err := RunChains(sharedTarget(bimodal), MultiConfig{
		Config: Config{
			Init: []float64{-8},
			Lo:   []float64{-10}, Hi: []float64{10},
			Steps: 400, BurnIn: 200, Seed: 5, StepFrac: 0.02,
		},
		Chains: 4, RHatMax: 1.05,
	})
	var ce *ConvergenceError
	if !errors.As(err, &ce) {
		t.Fatalf("expected ConvergenceError, got %v", err)
	}
	if res == nil {
		t.Fatal("result withheld alongside ConvergenceError")
	}
	if res.Converged {
		t.Fatal("Converged true despite gate failure")
	}
	if ce.Error() == "" {
		t.Fatal("empty error message")
	}
}

func TestRunChainsChainErrorPropagates(t *testing.T) {
	nan := func([]float64) float64 { return math.NaN() }
	_, err := RunChains(sharedTarget(nan), MultiConfig{
		Config: Config{
			Init: []float64{0.5},
			Lo:   []float64{0}, Hi: []float64{1},
			Steps: 50, Seed: 1,
		},
		Chains: 2,
	})
	if err == nil {
		t.Fatal("NaN-everywhere target accepted")
	}
	var ce *ConvergenceError
	if errors.As(err, &ce) {
		t.Fatal("chain failure misreported as convergence failure")
	}
}

func TestSplitRHat(t *testing.T) {
	// Two identical stationary chains: R̂ ≈ 1.
	mk := func(level float64, n int) [][]float64 {
		out := make([][]float64, n)
		for i := range out {
			// Stationary wiggle around the level.
			out[i] = []float64{level + 0.1*float64(i%7)}
		}
		return out
	}
	same := [][][]float64{mk(1, 200), mk(1, 200)}
	if r := SplitRHat(same, 0); math.Abs(r-1) > 0.1 {
		t.Fatalf("identical chains R̂ = %v want ≈1", r)
	}
	// Two tight chains at far-apart levels: R̂ far above 1.
	apart := [][][]float64{mk(1, 200), mk(40, 200)}
	if r := SplitRHat(apart, 0); r < 2 {
		t.Fatalf("separated chains R̂ = %v want ≫1", r)
	}
	// Too short to split.
	if !math.IsNaN(SplitRHat([][][]float64{mk(1, 3)}, 0)) {
		t.Fatal("short chains should give NaN")
	}
	// Pinned coordinate: converged by definition.
	pinned := make([][]float64, 50)
	for i := range pinned {
		pinned[i] = []float64{7}
	}
	if r := SplitRHat([][][]float64{pinned, pinned}, 0); r != 1 {
		t.Fatalf("pinned coordinate R̂ = %v want 1", r)
	}
}
