package core

import (
	"testing"
)

func TestRefitCalibrationReusesConfigurations(t *testing.T) {
	if testing.Short() {
		t.Skip("refit in short mode")
	}
	p := testPipeline(40)
	orig, err := p.RunCalibrationWorkflow(CalibrationConfig{
		State: "VA", Cells: 24, Days: 60,
		Steps: 400, BurnIn: 200, PosteriorSize: 20, Day: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Refit against a shorter (earlier) truth window: no new simulations.
	simsBefore := len(orig.Sims)
	refit, err := p.RefitCalibration(orig, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(refit.Sims) != simsBefore {
		t.Fatal("refit re-simulated")
	}
	if len(refit.Posterior) == 0 {
		t.Fatal("refit produced no posterior")
	}
	if refit.Config.Days != 40 {
		t.Fatalf("refit horizon %d want 40", refit.Config.Days)
	}
	if len(refit.ObsLog) != 40 {
		t.Fatalf("refit observation length %d", len(refit.ObsLog))
	}
	// Prior design carried over unchanged.
	if len(refit.Prior) != len(orig.Prior) {
		t.Fatal("prior design changed")
	}
	for i := range refit.Prior {
		if refit.Prior[i] != orig.Prior[i] {
			t.Fatal("prior parameters changed")
		}
	}
	// Posterior stays in the prior box.
	cfg := orig.Config
	for _, pr := range refit.Posterior {
		if pr.TAU < cfg.TAURange[0] || pr.TAU > cfg.TAURange[1] {
			t.Fatalf("refit posterior TAU %v escaped the prior", pr.TAU)
		}
	}
}

func TestRefitCalibrationValidation(t *testing.T) {
	p := testPipeline(41)
	if _, err := p.RefitCalibration(nil, 10); err == nil {
		t.Fatal("nil outcome accepted")
	}
	if _, err := p.RefitCalibration(&CalibrationOutcome{}, 10); err == nil {
		t.Fatal("empty outcome accepted")
	}
}
