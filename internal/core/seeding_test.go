package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/surveillance"
	"repro/internal/synthpop"
)

func TestSeedsFromSurveillance(t *testing.T) {
	va, _ := synthpop.StateByCode("VA")
	cfg := surveillance.DefaultConfig(3)
	cfg.AttackRate = 0.2
	truth, err := surveillance.GenerateState(va, cfg)
	if err != nil {
		t.Fatal(err)
	}
	seeds, err := SeedsFromSurveillance(truth, 120, 14, 2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) == 0 {
		t.Fatal("no seeds derived")
	}
	total := 0
	for _, s := range seeds {
		if s.Count <= 0 {
			t.Fatalf("non-positive seed count %+v", s)
		}
		if s.Day != 0 {
			t.Fatal("seeds should start at day 0")
		}
		if synthpop.StateOfCountyFIPS(int(s.CountyFIPS)) != va.FIPS {
			t.Fatal("seed outside state")
		}
		total += s.Count
	}
	// Larger counties (earlier FIPS under the Zipf profile) should carry
	// more seeds than the smallest ones.
	first, last := 0, 0
	for _, s := range seeds {
		if s.CountyFIPS == seeds[0].CountyFIPS {
			first = s.Count
		}
		last = seeds[len(seeds)-1].Count
	}
	if first < last {
		t.Fatalf("seeding not population-ordered: first %d last %d", first, last)
	}
}

func TestSeedsFromSurveillanceScalesDown(t *testing.T) {
	va, _ := synthpop.StateByCode("VA")
	cfg := surveillance.DefaultConfig(4)
	cfg.AttackRate = 0.2
	truth, _ := surveillance.GenerateState(va, cfg)
	coarse, err := SeedsFromSurveillance(truth, 120, 14, 20000, 5)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := SeedsFromSurveillance(truth, 120, 14, 2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	coarseTotal, fineTotal := 0, 0
	for _, s := range coarse {
		coarseTotal += s.Count
	}
	for _, s := range fine {
		fineTotal += s.Count
	}
	if fineTotal <= coarseTotal {
		t.Fatalf("finer scale should seed more synthetic cases: %d vs %d", fineTotal, coarseTotal)
	}
}

func TestSeedsFromSurveillanceErrors(t *testing.T) {
	if _, err := SeedsFromSurveillance(nil, 0, 14, 1000, 5); err == nil {
		t.Error("nil truth accepted")
	}
	va, _ := synthpop.StateByCode("VA")
	truth, _ := surveillance.GenerateState(va, surveillance.DefaultConfig(5))
	if _, err := SeedsFromSurveillance(truth, 9999, 14, 1000, 5); err == nil {
		t.Error("out-of-range day accepted")
	}
	// Day 0 has no cases anywhere → no resolvable seeds.
	if _, err := SeedsFromSurveillance(truth, 0, 14, 1000000, 1); err == nil {
		t.Error("unresolvable seeding accepted")
	}
}

func TestRunNightsCarryover(t *testing.T) {
	p := testPipeline(20)
	// Shrink the window so one night cannot hold the calibration load.
	p.Window = cluster.Window{StartHour: 0, EndHour: 2}
	spec := TableI()[2] // Calibration: 15300 sims
	reports, err := p.RunNights(spec, "FFDT-DC", 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) < 2 {
		t.Fatalf("expected carryover across nights, got %d reports", len(reports))
	}
	// Conservation: completed tasks across nights = total workload.
	total := reports[0].Tasks
	completed := 0
	for _, r := range reports {
		completed += r.Tasks - r.Unstarted
	}
	if completed != total {
		t.Fatalf("completed %d of %d tasks across nights", completed, total)
	}
	// Every night obeys its window.
	for i, r := range reports {
		if r.Makespan > p.Window.Seconds() {
			t.Fatalf("night %d overran the window", i)
		}
	}
	last := reports[len(reports)-1]
	if last.Unstarted != 0 {
		t.Fatal("final night left tasks unfinished despite nil error")
	}
}

func TestRunNightsExhaustion(t *testing.T) {
	p := testPipeline(21)
	p.Window = cluster.Window{StartHour: 0, EndHour: 1}
	spec := TableI()[2]
	if _, err := p.RunNights(spec, "FFDT-DC", 1, 3); err == nil {
		t.Fatal("one short night should not finish the calibration workload")
	}
}

func TestRunNightsBadHeuristic(t *testing.T) {
	p := testPipeline(22)
	if _, err := p.RunNights(TableI()[1], "bogus", 2, 1); err == nil {
		t.Fatal("bogus heuristic accepted")
	}
}
