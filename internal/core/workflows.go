package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/calib"
	"repro/internal/disease"
	"repro/internal/epihiper"
	"repro/internal/lhs"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/output"
	"repro/internal/stats"
	"repro/internal/surveillance"
	"repro/internal/synthpop"
	"repro/internal/transfer"
)

// SimJob is one simulation instance (one replicate of one cell).
type SimJob struct {
	State     string
	Cell      int
	Replicate int
	Params    Params
	Days      int
	// SeedCases places this many initial infections in each of the
	// region's most populous SeedCounties counties.
	SeedCases    int
	SeedCounties int
}

// SimOutput couples a job with its aggregated result.
type SimOutput struct {
	Job    SimJob
	Result *epihiper.Result
	Agg    *output.CountyAggregator
	// RawBytes estimates the individual-level output size at 1:1 scale.
	RawBytes int64
}

// interventionsFor builds the VA-case-study intervention stack for a cell:
// SC at 100% compliance, SH and VHI at the cell's compliance parameters.
// Timing follows the case study: SC from day shStart, SH from shStart+15
// through shEnd.
func interventionsFor(pr Params, shStart, shEnd int) []epihiper.Intervention {
	return []epihiper.Intervention{
		&epihiper.VoluntaryHomeIsolation{Compliance: pr.VHICompliance, IsolationDays: 14},
		&epihiper.SchoolClosure{StartDay: shStart, EndDay: shEnd},
		&epihiper.StayAtHome{StartDay: shStart + 15, EndDay: shEnd, Compliance: pr.SHCompliance},
	}
}

// topCounties returns the region's most populous counties.
func topCounties(net *synthpop.Network, n int) []int32 {
	counts := map[int32]int{}
	for i := range net.Persons {
		counts[net.Persons[i].CountyFIPS]++
	}
	out := make([]int32, 0, len(counts))
	for c := range counts {
		out = append(out, c)
	}
	// Selection sort by descending count (county lists are small).
	for i := 0; i < len(out); i++ {
		best := i
		for j := i + 1; j < len(out); j++ {
			if counts[out[j]] > counts[out[best]] ||
				(counts[out[j]] == counts[out[best]] && out[j] < out[best]) {
				best = j
			}
		}
		out[i], out[best] = out[best], out[i]
	}
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// RunSim executes one simulation job against the pipeline's substrates.
func (p *Pipeline) RunSim(job SimJob, shStart, shEnd int) (*SimOutput, error) {
	net, err := p.Network(job.State)
	if err != nil {
		return nil, err
	}
	db, err := p.DB(job.State)
	if err != nil {
		return nil, err
	}
	model, err := job.Params.ApplyToModel(disease.COVID19())
	if err != nil {
		return nil, err
	}
	if job.Days <= 0 {
		return nil, fmt.Errorf("core: job %+v has no horizon", job)
	}
	seedCounties := job.SeedCounties
	if seedCounties <= 0 {
		seedCounties = 1
	}
	seedCases := job.SeedCases
	if seedCases <= 0 {
		seedCases = 5
	}
	var seeds []epihiper.Seeding
	for _, c := range topCounties(net, seedCounties) {
		seeds = append(seeds, epihiper.Seeding{CountyFIPS: c, Day: 0, Count: seedCases})
	}
	agg := output.NewCountyAggregator(net, job.Days)
	log := &output.TransitionLog{}
	sim, err := epihiper.New(epihiper.Config{
		Model:         model,
		Network:       net,
		Days:          job.Days,
		Parallelism:   p.Parallelism,
		Seed:          p.Seed ^ jobSeed(job),
		Seeds:         seeds,
		Interventions: interventionsFor(job.Params, shStart, shEnd),
		DB:            db,
		Recorder:      epihiper.MultiRecorder{agg, log},
	})
	if err != nil {
		return nil, err
	}
	res, err := sim.Run()
	if err != nil {
		return nil, err
	}
	return &SimOutput{
		Job: job, Result: res, Agg: agg,
		RawBytes: log.RawBytes() * int64(p.Scale),
	}, nil
}

// jobSeed derives a deterministic per-job seed.
func jobSeed(job SimJob) uint64 {
	h := uint64(1469598103934665603)
	for _, c := range job.State {
		h = (h ^ uint64(c)) * 1099511628211
	}
	h ^= uint64(uint32(job.Cell)) * 0x9E3779B97F4A7C15
	h ^= uint64(uint32(job.Replicate)) * 0xC2B2AE3D27D4EB4F
	return h
}

// runJobs executes jobs with bounded parallelism across jobs and records
// the Table I transfer accounting (configs out on the given day, summaries
// back). Cancelling ctx stops dispatching new jobs; in-flight simulations
// finish (one sim is the cancellation granularity) and ctx.Err() is
// returned, so abandoned requests stop burning CPU.
func (p *Pipeline) runJobs(ctx context.Context, day int, label string, jobs []SimJob, shStart, shEnd int) ([]*SimOutput, error) {
	ctx, sp := obs.StartSpan(ctx, "sim",
		obs.String("label", label), obs.Int("jobs", int64(len(jobs))))
	defer sp.End()
	// Daily configuration push (100MB–8.7GB band at full scale).
	configBytes := int64(len(jobs)) * 64 * transfer.KB
	if _, err := p.Ledger.MoveCtx(ctx, day, transfer.HomeToRemote, label+"-configs", configBytes); err != nil {
		return nil, err
	}
	outs := make([]*SimOutput, len(jobs))
	errs := make([]error, len(jobs))
	// Bounded worker pool over jobs; per-sim parallelism stays at
	// p.Parallelism, mirroring replicate-level × rank-level parallelism.
	const workers = 4
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				_, jsp := obs.StartSpan(ctx, "sim.job",
					obs.String("state", jobs[i].State),
					obs.Int("cell", int64(jobs[i].Cell)),
					obs.Int("replicate", int64(jobs[i].Replicate)))
				outs[i], errs[i] = p.RunSim(jobs[i], shStart, shEnd)
				jsp.End()
			}
		}()
	}
dispatch:
	for i := range jobs {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var summaryBytes int64
	for i := range outs {
		if errs[i] != nil {
			return nil, fmt.Errorf("core: job %d: %w", i, errs[i])
		}
		summaryBytes += outs[i].Agg.SummaryBytes()
	}
	if _, err := p.Ledger.MoveCtx(ctx, day, transfer.RemoteToHome, label+"-summaries", summaryBytes); err != nil {
		return nil, err
	}
	return outs, nil
}

// CalibrationConfig parameterizes the calibration workflow (Figure 4 and
// case study 3).
type CalibrationConfig struct {
	State string
	// Cells is the prior design size (the VA case study uses 100; the
	// Table I calibration row uses 300).
	Cells int
	// Days is the simulated horizon; the observation is truncated to it.
	Days int
	// Ranges bound the four parameters; zero values take the case-study
	// defaults.
	TAURange, SYMPRange, SHRange, VHIRange [2]float64
	// SHStart / SHEnd time the mitigation schedule.
	SHStart, SHEnd int
	// MCMC controls.
	Steps, BurnIn, PosteriorSize int
	// Chains is the number of over-dispersed MCMC chains (default 4) and
	// ChainParallelism how many run concurrently (default: all). Results
	// are bit-identical for a fixed seed at any parallelism.
	Chains, ChainParallelism int
	// RHatMax / MinESS, when positive, gate the posterior on split-R̂ and
	// effective sample size: a failed gate surfaces as a
	// *mcmc.ConvergenceError alongside the (still usable) outcome.
	RHatMax, MinESS float64
	Day             int // pipeline day for transfer accounting

	// TruthOffset aligns simulation day 0 with the surveillance day when
	// community spread begins (default 40: early March for a Jan 21
	// day 0). TruthAttack sets the synthetic ground truth's final attack
	// rate; at heavy down-scaling the truth epidemic must be large
	// enough to be resolvable at whole-synthetic-person granularity
	// (the paper's 1:1 population has no such constraint — DESIGN.md,
	// substitutions).
	TruthOffset int
	TruthAttack float64
	// SigmaDeltaMax caps the discrepancy scale σδ (default: the
	// observation's standard deviation). A smaller cap forces the
	// parameters — rather than the discrepancy term — to explain the
	// curve's magnitude, sharpening parameter identification.
	SigmaDeltaMax float64
}

func (c *CalibrationConfig) fillDefaults() {
	if c.Cells <= 0 {
		c.Cells = 100
	}
	if c.Days <= 0 {
		c.Days = 70
	}
	if c.TAURange == [2]float64{} {
		c.TAURange = [2]float64{0.08, 0.35}
	}
	if c.SYMPRange == [2]float64{} {
		c.SYMPRange = [2]float64{0.35, 0.85}
	}
	if c.SHRange == [2]float64{} {
		c.SHRange = [2]float64{0.1, 0.9}
	}
	if c.VHIRange == [2]float64{} {
		c.VHIRange = [2]float64{0.1, 0.9}
	}
	if c.SHStart <= 0 {
		c.SHStart = 15
	}
	if c.SHEnd <= 0 {
		c.SHEnd = c.Days
	}
	if c.Steps <= 0 {
		c.Steps = 1200
	}
	if c.BurnIn <= 0 {
		c.BurnIn = c.Steps / 2
	}
	if c.PosteriorSize <= 0 {
		c.PosteriorSize = 100
	}
	if c.TruthOffset <= 0 {
		c.TruthOffset = 40
	}
	if c.TruthAttack <= 0 {
		c.TruthAttack = 0.25
	}
}

// CalibrationOutcome is the calibration workflow's product: the prior
// design, the fitted calibrator, and the posterior configurations the
// prediction workflow consumes.
type CalibrationOutcome struct {
	Config     CalibrationConfig
	Prior      []Params
	Posterior  []Params
	Calibrator *calib.Calibrator
	Sims       []*SimOutput
	// ObsLog is the logged ground-truth cumulative series the fit used.
	ObsLog     []float64
	AcceptRate float64
	// Chain diagnostics from the multi-chain sampler: split-R̂ and ESS per
	// MCMC coordinate ([θ..., σδ, σε]) and whether the run met the
	// configured (or default-advisory) convergence thresholds.
	RHat, ESS []float64
	Converged bool
	// MeanSigmaDelta / MeanSigmaEps are the posterior means of the
	// discrepancy and observation-noise scales, used by the Figure 16
	// predictive band.
	MeanSigmaDelta, MeanSigmaEps float64
}

// RunCalibrationWorkflow executes Figure 4 end to end: LHS prior design →
// EpiHiper simulations for every cell → aggregation to logged cumulative
// confirmed-case curves → GP-emulator Bayesian calibration against the
// ground truth → posterior configurations.
func (p *Pipeline) RunCalibrationWorkflow(cfg CalibrationConfig) (*CalibrationOutcome, error) {
	return p.RunCalibrationWorkflowCtx(context.Background(), cfg)
}

// RunCalibrationWorkflowCtx is RunCalibrationWorkflow under a context:
// cancelling ctx stops the simulation fan-out and skips the MCMC fit.
func (p *Pipeline) RunCalibrationWorkflowCtx(ctx context.Context, cfg CalibrationConfig) (*CalibrationOutcome, error) {
	cfg.fillDefaults()
	ctx, sp := obs.StartSpan(ctx, "workflow.calibration",
		obs.String("state", cfg.State), obs.Int("cells", int64(cfg.Cells)))
	defer sp.End()
	st, err := synthpop.StateByCode(cfg.State)
	if err != nil {
		return nil, err
	}
	// Calibration-specific ground truth: larger attack so the scaled
	// curve is resolvable, no second wave inside the fitting window.
	tcfg := surveillance.DefaultConfig(p.Seed)
	tcfg.AttackRate = cfg.TruthAttack
	tcfg.SecondWave = false
	tcfg.Days = cfg.TruthOffset + cfg.Days
	truth, err := surveillance.GenerateState(st, tcfg)
	if err != nil {
		return nil, err
	}
	r := stats.NewRNG(p.Seed ^ 0xCA11B)
	ranges := []lhs.Range{
		{Name: "TAU", Lo: cfg.TAURange[0], Hi: cfg.TAURange[1]},
		{Name: "SYMP", Lo: cfg.SYMPRange[0], Hi: cfg.SYMPRange[1]},
		{Name: "SH", Lo: cfg.SHRange[0], Hi: cfg.SHRange[1]},
		{Name: "VHI", Lo: cfg.VHIRange[0], Hi: cfg.VHIRange[1]},
	}
	design, err := calib.NewLHSDesign(r, cfg.Cells, ranges)
	if err != nil {
		return nil, err
	}
	out := &CalibrationOutcome{Config: cfg}
	jobs := make([]SimJob, cfg.Cells)
	for i, th := range design.Thetas {
		pr := Params{TAU: th[0], SYMP: th[1], SHCompliance: th[2], VHICompliance: th[3]}
		out.Prior = append(out.Prior, pr)
		jobs[i] = SimJob{State: cfg.State, Cell: i, Replicate: 0, Params: pr, Days: cfg.Days}
	}
	sims, err := p.runJobs(ctx, cfg.Day, "calibration", jobs, cfg.SHStart, cfg.SHEnd)
	if err != nil {
		return nil, err
	}
	out.Sims = sims
	design.Outputs = linalg.NewMatrix(cfg.Cells, cfg.Days)
	for i, s := range sims {
		logged := calib.Log1p(s.Agg.StateConfirmedCumulative())
		for d, v := range logged {
			design.Outputs.Set(i, d, v)
		}
	}
	// Observation: state cumulative cases in the window starting at the
	// community-spread onset, scaled to the synthetic population
	// (1:Scale) and logged.
	full := truth.StateCumulative()
	obs := make([]float64, cfg.Days)
	base := full[cfg.TruthOffset]
	for i := range obs {
		obs[i] = (full[cfg.TruthOffset+i] - base) / float64(p.Scale)
	}
	out.ObsLog = calib.Log1p(obs)

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cal, err := calib.Fit(design, out.ObsLog, calib.Config{NumBasis: 5})
	if err != nil {
		return nil, err
	}
	out.Calibrator = cal
	post, err := cal.SampleCtx(ctx, calib.Config{
		Steps: cfg.Steps, BurnIn: cfg.BurnIn, Seed: p.Seed ^ 0x9057E7107,
		SigmaDeltaMax: cfg.SigmaDeltaMax,
		Chains:        cfg.Chains, Parallelism: cfg.ChainParallelism,
		RHatMax: cfg.RHatMax, MinESS: cfg.MinESS,
	}, cfg.PosteriorSize)
	if post == nil {
		return nil, err
	}
	out.fillPosterior(post)
	// A convergence-gate failure still delivers the outcome so callers can
	// inspect the diagnostics (and, e.g., rerun with more steps).
	return out, err
}

// fillPosterior copies the sampled posterior and its chain diagnostics
// into the outcome.
func (out *CalibrationOutcome) fillPosterior(post *calib.Posterior) {
	out.AcceptRate = post.AcceptRate
	out.RHat = post.RHat
	out.ESS = post.ESS
	out.Converged = post.Converged
	out.MeanSigmaDelta = stats.Mean(post.SigmaDelta)
	out.MeanSigmaEps = stats.Mean(post.SigmaEps)
	for _, th := range post.Thetas {
		out.Posterior = append(out.Posterior, Params{
			TAU: th[0], SYMP: th[1], SHCompliance: th[2], VHICompliance: th[3],
		})
	}
}

// RefitCalibration re-runs the Bayesian fit of an existing calibration
// against updated ground truth without re-simulating — the paper's
// resume path: "the calibration workflow typically resumes when ground
// truth data is updated ... may reuse the existing model configurations".
// The refit horizon is capped at the original simulation horizon.
func (p *Pipeline) RefitCalibration(prev *CalibrationOutcome, newDays int) (*CalibrationOutcome, error) {
	if prev == nil || prev.Calibrator == nil {
		return nil, fmt.Errorf("core: nothing to refit")
	}
	cfg := prev.Config
	if newDays <= 0 || newDays > cfg.Days {
		newDays = cfg.Days
	}
	st, err := synthpop.StateByCode(cfg.State)
	if err != nil {
		return nil, err
	}
	tcfg := surveillance.DefaultConfig(p.Seed)
	tcfg.AttackRate = cfg.TruthAttack
	tcfg.SecondWave = false
	tcfg.Days = cfg.TruthOffset + cfg.Days
	truth, err := surveillance.GenerateState(st, tcfg)
	if err != nil {
		return nil, err
	}
	full := truth.StateCumulative()
	obs := make([]float64, newDays)
	base := full[cfg.TruthOffset]
	for i := range obs {
		obs[i] = (full[cfg.TruthOffset+i] - base) / float64(p.Scale)
	}
	// Rebuild the design over the truncated horizon from the retained
	// simulation outputs.
	d := prev.Calibrator.Design
	design := &calib.Design{Ranges: d.Ranges, Thetas: d.Thetas}
	design.Outputs = linalg.NewMatrix(d.Outputs.Rows, newDays)
	for i := 0; i < d.Outputs.Rows; i++ {
		for j := 0; j < newDays; j++ {
			design.Outputs.Set(i, j, d.Outputs.At(i, j))
		}
	}
	out := &CalibrationOutcome{Config: cfg, Prior: prev.Prior, Sims: prev.Sims}
	cfg.Days = newDays
	out.Config = cfg
	out.ObsLog = calib.Log1p(obs)
	cal, err := calib.Fit(design, out.ObsLog, calib.Config{NumBasis: 5})
	if err != nil {
		return nil, err
	}
	out.Calibrator = cal
	post, err := cal.Sample(calib.Config{
		Steps: cfg.Steps, BurnIn: cfg.BurnIn, Seed: p.Seed ^ 0x9057E7107 ^ uint64(newDays),
		SigmaDeltaMax: cfg.SigmaDeltaMax,
		Chains:        cfg.Chains, Parallelism: cfg.ChainParallelism,
		RHatMax: cfg.RHatMax, MinESS: cfg.MinESS,
	}, cfg.PosteriorSize)
	if post == nil {
		return nil, err
	}
	out.fillPosterior(post)
	return out, err
}

// PredictionConfig parameterizes the prediction workflow (Figure 5).
type PredictionConfig struct {
	State string
	// Configs are the model configurations from calibration; the workflow
	// simulates each with Replicates replicates.
	Configs    []Params
	Replicates int
	Days       int
	SHStart    int
	SHEnd      int
	Day        int
}

// Forecast is a daily series with a 95% band.
type Forecast struct {
	Median, Lo, Hi []float64
}

// PredictionOutcome carries the ensemble forecast.
type PredictionOutcome struct {
	Config PredictionConfig
	// Cumulative confirmed cases, state level, with uncertainty.
	Confirmed Forecast
	// Hospitalized and Deaths support the other forecasting targets.
	Hospitalized Forecast
	Deaths       Forecast
	// CountyMedian maps county FIPS to its median cumulative confirmed
	// series (the county-level forecast product).
	CountyMedian map[int32][]float64
	Sims         []*SimOutput
}

// RunPredictionWorkflow executes Figure 5: simulate every calibrated
// configuration with replicates, aggregate, and quantify uncertainty.
func (p *Pipeline) RunPredictionWorkflow(cfg PredictionConfig) (*PredictionOutcome, error) {
	return p.RunPredictionWorkflowCtx(context.Background(), cfg)
}

// RunPredictionWorkflowCtx is RunPredictionWorkflow under a context:
// cancelling ctx stops the replicate fan-out and returns ctx.Err().
func (p *Pipeline) RunPredictionWorkflowCtx(ctx context.Context, cfg PredictionConfig) (*PredictionOutcome, error) {
	if len(cfg.Configs) == 0 {
		return nil, fmt.Errorf("core: prediction needs calibrated configs")
	}
	ctx, sp := obs.StartSpan(ctx, "workflow.prediction",
		obs.String("state", cfg.State), obs.Int("configs", int64(len(cfg.Configs))))
	defer sp.End()
	if cfg.Replicates <= 0 {
		cfg.Replicates = 15
	}
	if cfg.Days <= 0 {
		cfg.Days = 120
	}
	if cfg.SHStart <= 0 {
		cfg.SHStart = 15
	}
	if cfg.SHEnd <= 0 {
		cfg.SHEnd = cfg.Days
	}
	var jobs []SimJob
	for c, pr := range cfg.Configs {
		for rep := 0; rep < cfg.Replicates; rep++ {
			jobs = append(jobs, SimJob{
				State: cfg.State, Cell: c, Replicate: rep, Params: pr, Days: cfg.Days,
			})
		}
	}
	sims, err := p.runJobs(ctx, cfg.Day, "prediction", jobs, cfg.SHStart, cfg.SHEnd)
	if err != nil {
		return nil, err
	}
	out := &PredictionOutcome{Config: cfg, Sims: sims, CountyMedian: map[int32][]float64{}}
	out.Confirmed = ensembleBand(sims, cfg.Days, func(s *SimOutput) []float64 {
		return s.Agg.StateConfirmedCumulative()
	})
	out.Hospitalized = ensembleBand(sims, cfg.Days, func(s *SimOutput) []float64 {
		return s.Agg.StateCumulative(disease.Hospitalized)
	})
	out.Deaths = ensembleBand(sims, cfg.Days, func(s *SimOutput) []float64 {
		return s.Agg.StateCumulative(disease.Dead)
	})
	// County-level medians.
	counties := sims[0].Agg.Counties()
	for _, county := range counties {
		c := county
		f := ensembleBand(sims, cfg.Days, func(s *SimOutput) []float64 {
			cum := make([]float64, cfg.Days)
			acc := 0.0
			for d, v := range s.Agg.ConfirmedCases(c) {
				acc += float64(v)
				cum[d] = acc
			}
			return cum
		})
		out.CountyMedian[c] = f.Median
	}
	return out, nil
}

// ensembleBand computes pointwise (2.5, 50, 97.5) percentiles over the
// extracted series of every simulation.
func ensembleBand(sims []*SimOutput, days int, extract func(*SimOutput) []float64) Forecast {
	series := make([][]float64, len(sims))
	for i, s := range sims {
		series[i] = extract(s)
	}
	f := Forecast{
		Median: make([]float64, days),
		Lo:     make([]float64, days),
		Hi:     make([]float64, days),
	}
	vals := make([]float64, len(series))
	for d := 0; d < days; d++ {
		for i := range series {
			vals[i] = series[i][d]
		}
		qs := stats.Quantiles(vals, 0.025, 0.5, 0.975)
		f.Lo[d], f.Median[d], f.Hi[d] = qs[0], qs[1], qs[2]
	}
	return f
}

// CounterfactualConfig parameterizes the economic / counter-factual
// workflow (Figure 3): a factorial design of NPI durations and compliances.
type CounterfactualConfig struct {
	States     []string
	Replicates int
	Days       int
	// Base is the calibrated parameter setting (towards R0 = 2.5).
	Base Params
	// VHICompliances × SHDurations × SHCompliances form the factorial
	// design (2 × 3 × 2 = 12 cells in the paper).
	VHICompliances []float64
	SHDurations    []int
	SHCompliances  []float64
	SHStart        int
	Day            int
}

// Cell is one factorial combination.
type Cell struct {
	Index                       int
	VHICompliance, SHCompliance float64
	SHDuration                  int
}

// Name renders the cell for reports.
func (c Cell) Name() string {
	return fmt.Sprintf("cell%02d-vhi%.0f%%-sh%dd-c%.0f%%",
		c.Index, c.VHICompliance*100, c.SHDuration, c.SHCompliance*100)
}

// CounterfactualOutcome carries per-cell aggregate results.
type CounterfactualOutcome struct {
	Config CounterfactualConfig
	Cells  []Cell
	// Sims[cellIndex] lists the outputs across states and replicates.
	Sims map[int][]*SimOutput
}

// FactorialCells expands the design.
func (cfg CounterfactualConfig) FactorialCells() []Cell {
	var out []Cell
	i := 0
	for _, vhi := range cfg.VHICompliances {
		for _, dur := range cfg.SHDurations {
			for _, shc := range cfg.SHCompliances {
				out = append(out, Cell{Index: i, VHICompliance: vhi, SHCompliance: shc, SHDuration: dur})
				i++
			}
		}
	}
	return out
}

// RunCounterfactualWorkflow executes Figure 3: the factorial design across
// the given regions with replicates.
func (p *Pipeline) RunCounterfactualWorkflow(cfg CounterfactualConfig) (*CounterfactualOutcome, error) {
	return p.RunCounterfactualWorkflowCtx(context.Background(), cfg)
}

// RunCounterfactualWorkflowCtx is RunCounterfactualWorkflow under a
// context, cancellable between cells and between jobs within a cell.
func (p *Pipeline) RunCounterfactualWorkflowCtx(ctx context.Context, cfg CounterfactualConfig) (*CounterfactualOutcome, error) {
	if len(cfg.States) == 0 {
		return nil, fmt.Errorf("core: counterfactual needs states")
	}
	if cfg.Replicates <= 0 {
		cfg.Replicates = 15
	}
	if cfg.Days <= 0 {
		cfg.Days = 120
	}
	if cfg.SHStart <= 0 {
		cfg.SHStart = 15
	}
	cells := cfg.FactorialCells()
	if len(cells) == 0 {
		return nil, fmt.Errorf("core: empty factorial design")
	}
	ctx, sp := obs.StartSpan(ctx, "workflow.economic",
		obs.Int("cells", int64(len(cells))), obs.Int("states", int64(len(cfg.States))))
	defer sp.End()
	out := &CounterfactualOutcome{Config: cfg, Cells: cells, Sims: map[int][]*SimOutput{}}
	for _, cell := range cells {
		pr := cfg.Base
		pr.VHICompliance = cell.VHICompliance
		pr.SHCompliance = cell.SHCompliance
		var jobs []SimJob
		for _, st := range cfg.States {
			for rep := 0; rep < cfg.Replicates; rep++ {
				jobs = append(jobs, SimJob{
					State: st, Cell: cell.Index, Replicate: rep, Params: pr, Days: cfg.Days,
				})
			}
		}
		sims, err := p.runJobs(ctx, cfg.Day, fmt.Sprintf("economic-%s", cell.Name()), jobs,
			cfg.SHStart, cfg.SHStart+cell.SHDuration)
		if err != nil {
			return nil, err
		}
		out.Sims[cell.Index] = sims
	}
	return out, nil
}
