package core

import (
	"fmt"
	"math"

	"repro/internal/epihiper"
	"repro/internal/surveillance"
)

// SeedsFromSurveillance derives county-level seeding from confirmed case
// counts, the paper's initialization for the economic and prediction
// workflows ("county-level seeding derived from county-level confirmed
// case counts"): each county is seeded with its recent confirmed cases
// (the trailing `window` days up to asOfDay), scaled to the synthetic
// population and inflated by the ascertainment multiplier (confirmed
// counts undercount infections).
func SeedsFromSurveillance(truth *surveillance.StateTruth, asOfDay, window, scale int, ascertainment float64) ([]epihiper.Seeding, error) {
	if truth == nil {
		return nil, fmt.Errorf("core: nil surveillance truth")
	}
	if asOfDay < 0 || asOfDay >= truth.Days {
		return nil, fmt.Errorf("core: asOfDay %d outside [0, %d)", asOfDay, truth.Days)
	}
	if window <= 0 {
		window = 14
	}
	if scale <= 0 {
		scale = 1
	}
	if ascertainment < 1 {
		ascertainment = 1
	}
	lo := asOfDay - window + 1
	if lo < 0 {
		lo = 0
	}
	var out []epihiper.Seeding
	for _, c := range truth.Counties {
		recent := 0.0
		for d := lo; d <= asOfDay; d++ {
			recent += c.Daily[d]
		}
		if recent == 0 {
			continue
		}
		count := int(math.Round(recent * ascertainment / float64(scale)))
		if count <= 0 {
			// Probabilistic rounding would need an RNG; at coarse
			// scales, guarantee at least one seed per county with any
			// recent activity above half a synthetic person.
			if recent*ascertainment/float64(scale) >= 0.5 {
				count = 1
			} else {
				continue
			}
		}
		out = append(out, epihiper.Seeding{CountyFIPS: c.FIPS, Day: 0, Count: count})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: no counties had resolvable case counts by day %d at scale 1:%d", asOfDay, scale)
	}
	return out, nil
}
