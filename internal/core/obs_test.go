package core

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
)

// tracedCtx builds a context carrying a deterministic tracer whose span
// stream is both collected in memory and journaled to buf.
func tracedCtx(buf *bytes.Buffer) (context.Context, *obs.Collector) {
	col := obs.NewCollector(obs.NewJournal(buf))
	tr := obs.NewTracer(col, obs.WithClock(obs.FixedClock(time.Unix(0, 0), time.Millisecond)))
	return obs.WithTracer(context.Background(), tr), col
}

// A traced faulty night must emit a span tree that mirrors the pipeline
// phases — partition and sim rounds nested under the night span, cluster
// execution under sim — plus the task/fault event stream, and the JSONL
// journal must round-trip to exactly the collected entries.
func TestNightSpanNestingAndJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	ctx, col := tracedCtx(&buf)
	p := NewPipeline(32)
	rep, err := p.RunNightCtx(ctx, NightConfig{
		Spec: smallSpec(), Seed: 32,
		Faults: faults.Spec{Seed: 9, TaskCrashProb: 0.1, DBRefusalProb: 0.05, TransferStallProb: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}

	entries := col.Entries()
	spans := map[string][]obs.Entry{}
	events := map[string]int{}
	for _, e := range entries {
		switch e.Type {
		case obs.EntrySpan:
			spans[e.Name] = append(spans[e.Name], e)
		case obs.EntryEvent:
			events[e.Name]++
		}
	}
	for _, name := range []string{"night", "partition", "sim", "cluster.backfill", "transfer"} {
		if len(spans[name]) == 0 {
			t.Fatalf("no %q span emitted; spans: %v", name, keys(spans))
		}
	}
	if n := len(spans["night"]); n != 1 {
		t.Fatalf("%d night spans, want 1", n)
	}
	night := spans["night"][0]
	if night.Parent != 0 {
		t.Fatalf("night span has parent %d, want root", night.Parent)
	}
	if got := spans["partition"][0].Parent; got != night.Span {
		t.Fatalf("partition parent %d, want night %d", got, night.Span)
	}
	simIDs := map[uint64]bool{}
	for _, s := range spans["sim"] {
		if s.Parent != night.Span {
			t.Fatalf("sim round parent %d, want night %d", s.Parent, night.Span)
		}
		simIDs[s.Span] = true
	}
	if len(spans["sim"]) != rep.Rounds {
		t.Fatalf("%d sim spans, want one per round (%d)", len(spans["sim"]), rep.Rounds)
	}
	for _, c := range spans["cluster.backfill"] {
		if !simIDs[c.Parent] {
			t.Fatalf("cluster span parent %d is not a sim round", c.Parent)
		}
	}
	if events["task.placed"] != rep.Rounds {
		t.Fatalf("%d task.placed events, want %d", events["task.placed"], rep.Rounds)
	}
	if events["fault.injected"] != rep.Crashes+rep.DBRefusals {
		t.Fatalf("%d fault.injected events, want crashes+refusals = %d",
			events["fault.injected"], rep.Crashes+rep.DBRefusals)
	}
	if events["task.retried"] != rep.Retries {
		t.Fatalf("%d task.retried events, want %d", events["task.retried"], rep.Retries)
	}
	if events["task.shed"] != len(rep.Shed) {
		t.Fatalf("%d task.shed events, want %d", events["task.shed"], len(rep.Shed))
	}
	if events["transfer.bytes"] == 0 {
		t.Fatal("no transfer.bytes events")
	}

	// FixedClock makes every span close with a positive, finite duration.
	for name, ss := range spans {
		for _, s := range ss {
			if s.Seconds <= 0 {
				t.Fatalf("%s span has non-positive duration %v", name, s.Seconds)
			}
		}
	}

	// The JSONL file decodes back to exactly what the collector saw.
	decoded, err := obs.ReadEntries(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(entries) {
		t.Fatalf("journal has %d entries, collector %d", len(decoded), len(entries))
	}
	for i := range decoded {
		if decoded[i].Type != entries[i].Type || decoded[i].Name != entries[i].Name ||
			decoded[i].Span != entries[i].Span || decoded[i].Parent != entries[i].Parent {
			t.Fatalf("entry %d diverges: %+v vs %+v", i, decoded[i], entries[i])
		}
	}
}

func keys(m map[string][]obs.Entry) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Instrumentation must be a pure observer: the same faulty night run with
// and without a tracer produces byte-identical reports.
func TestTracedNightReportBitIdentical(t *testing.T) {
	cfg := NightConfig{
		Spec: smallSpec(), Seed: 33,
		Faults: faults.Spec{Seed: 5, TaskCrashProb: 0.15, DBRefusalProb: 0.05, TransferStallProb: 0.3},
	}
	marshal := func(rep *NightReport, err error) []byte {
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	plain := marshal(NewPipeline(33).RunNight(cfg))
	var buf bytes.Buffer
	ctx, _ := tracedCtx(&buf)
	traced := marshal(NewPipeline(33).RunNightCtx(ctx, cfg))
	if !bytes.Equal(plain, traced) {
		t.Fatalf("tracer changed the report:\nplain  %s\ntraced %s", plain, traced)
	}
}

// The pipeline-level fault counters must agree with the per-night report
// accounting, and the failure-free baseline must leave them all zero.
func TestFaultCountersMatchReport(t *testing.T) {
	p := NewPipeline(32)
	rep, err := p.RunNight(NightConfig{
		Spec: smallSpec(), Seed: 32,
		Faults: faults.Spec{Seed: 9, TaskCrashProb: 0.1, DBRefusalProb: 0.05, TransferStallProb: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := p.FaultCounters.Snapshot()
	if snap.Crashes != int64(rep.Crashes) || snap.DBRefusals != int64(rep.DBRefusals) {
		t.Fatalf("counters %+v disagree with report crashes=%d refusals=%d",
			snap, rep.Crashes, rep.DBRefusals)
	}
	if snap.TransferStalls != int64(rep.TransferRetries) {
		t.Fatalf("transfer stalls %d != report retries %d", snap.TransferStalls, rep.TransferRetries)
	}
	if snap.Recovered != int64(rep.Recovered) || snap.Shed != int64(len(rep.Shed)) {
		t.Fatalf("counters %+v disagree with report recovered=%d shed=%d",
			snap, rep.Recovered, len(rep.Shed))
	}
	if rep.Retries > 0 && rep.Recovered == 0 && rep.ShedRetryExhausted == 0 {
		t.Fatal("requeues happened but nothing was recovered or shed")
	}

	clean := NewPipeline(31)
	if _, err := clean.RunNight(NightConfig{Spec: smallSpec(), Seed: 31}); err != nil {
		t.Fatal(err)
	}
	if s := clean.FaultCounters.Snapshot(); s != (faults.CountersSnapshot{}) {
		t.Fatalf("failure-free night bumped fault counters: %+v", s)
	}
}

// The scheduling bound attached to the report must dominate the achieved
// night: makespan ≥ lower bound, utilization ≤ bound.
func TestNightReportSchedulingBound(t *testing.T) {
	p := NewPipeline(31)
	rep, err := p.RunNight(NightConfig{Spec: smallSpec(), Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MakespanLB <= 0 || rep.UtilizationBound <= 0 {
		t.Fatalf("bounds not computed: LB %v, utilization bound %v", rep.MakespanLB, rep.UtilizationBound)
	}
	if rep.Makespan < rep.MakespanLB {
		t.Fatalf("makespan %v beats its lower bound %v", rep.Makespan, rep.MakespanLB)
	}
	if rep.Utilization > rep.UtilizationBound+1e-9 {
		t.Fatalf("utilization %v exceeds bound %v", rep.Utilization, rep.UtilizationBound)
	}
}
