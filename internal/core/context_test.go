package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
)

// smallPredictionConfig keeps cancellation tests fast: one configuration,
// few replicates, a short horizon on the smallest state.
func smallPredictionConfig(replicates, days int) PredictionConfig {
	return PredictionConfig{
		State:      "RI",
		Configs:    []Params{{TAU: 0.22, SYMP: 0.6, SHCompliance: 0.4, VHICompliance: 0.4}},
		Replicates: replicates,
		Days:       days,
		SHStart:    10, SHEnd: days,
	}
}

func TestPredictionWorkflowPreCanceledContext(t *testing.T) {
	p := testPipeline(31)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.RunPredictionWorkflowCtx(ctx, smallPredictionConfig(2, 20)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled prediction returned %v want context.Canceled", err)
	}
}

func TestPredictionWorkflowMidRunCancel(t *testing.T) {
	p := testPipeline(32)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// Enough replicates that cancellation lands mid-run; sized for
		// the optimized transmission kernel, which finishes a dozen
		// replicates well inside the cancellation sleep.
		_, err := p.RunPredictionWorkflowCtx(ctx, smallPredictionConfig(96, 120))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled prediction returned %v want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("prediction did not unwind after cancel")
	}
}

func TestWhatIfWorkflowPreCanceledContext(t *testing.T) {
	p := testPipeline(33)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := p.RunWhatIfScenariosCtx(ctx, smallPredictionConfig(1, 20),
		[]WhatIf{{Name: "noop"}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled what-if returned %v want context.Canceled", err)
	}
}

func TestRunNightsCtxCancelStopsBetweenNights(t *testing.T) {
	p := testPipeline(34)
	// Shrink the window and inflate the workload so the campaign carries
	// over across many nights — long enough that the cancel lands between
	// night boundaries.
	p.Window = cluster.Window{StartHour: 0, EndHour: 2}
	spec := TableI()[2]
	spec.Cells *= 20

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	reps, err := p.RunNightsCtx(ctx, spec, "FFDT-DC", 1_000_000, 5)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled nights returned %v want context.Canceled (after %d nights)", err, len(reps))
	}
	if len(reps) >= 1_000_000 {
		t.Fatalf("ran all %d nights despite cancel", len(reps))
	}

	// A pre-canceled context runs zero nights.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	reps, err = p.RunNightsCtx(ctx2, spec, "FFDT-DC", 3, 5)
	if !errors.Is(err, context.Canceled) || len(reps) != 0 {
		t.Fatalf("pre-canceled nights: %d reports, err %v", len(reps), err)
	}
}

func TestNightCtxPreCanceled(t *testing.T) {
	p := testPipeline(35)
	spec := TableI()[1]
	spec.Cells, spec.Replicates = 4, 2
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.RunNightCtx(ctx, NightConfig{Spec: spec, Heuristic: "FFDT-DC", Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled night returned %v want context.Canceled", err)
	}
}

// TestConcurrentPredictionsShareOnePipeline is the shared-substrate safety
// test for the scenario service: two goroutines run prediction workflows on
// one Pipeline (shared synthetic population, network cache, transfer
// ledger) concurrently. Under -race this exercises the memoized substrate
// paths; the assertions pin determinism — each concurrent run must equal
// its solo baseline.
func TestConcurrentPredictionsShareOnePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrent full workflows in short mode")
	}
	cfgA := smallPredictionConfig(2, 25)
	cfgB := smallPredictionConfig(3, 25)

	solo := testPipeline(40)
	baseA, err := solo.RunPredictionWorkflow(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	baseB, err := solo.RunPredictionWorkflow(cfgB)
	if err != nil {
		t.Fatal(err)
	}

	shared := testPipeline(40)
	var wg sync.WaitGroup
	outs := make([]*PredictionOutcome, 2)
	errs := make([]error, 2)
	for i, cfg := range []PredictionConfig{cfgA, cfgB} {
		wg.Add(1)
		go func(i int, cfg PredictionConfig) {
			defer wg.Done()
			outs[i], errs[i] = shared.RunPredictionWorkflowCtx(context.Background(), cfg)
		}(i, cfg)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent run %d: %v", i, err)
		}
	}
	for d := range baseA.Confirmed.Median {
		if outs[0].Confirmed.Median[d] != baseA.Confirmed.Median[d] {
			t.Fatalf("run A day %d: concurrent %v != solo %v",
				d, outs[0].Confirmed.Median[d], baseA.Confirmed.Median[d])
		}
	}
	for d := range baseB.Confirmed.Median {
		if outs[1].Confirmed.Median[d] != baseB.Confirmed.Median[d] {
			t.Fatalf("run B day %d: concurrent %v != solo %v",
				d, outs[1].Confirmed.Median[d], baseB.Confirmed.Median[d])
		}
	}
}
