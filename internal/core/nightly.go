package core

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/transfer"
)

// WorkflowKind identifies a Table I workflow family.
type WorkflowKind int

// The three Table I workflow families.
const (
	Economic WorkflowKind = iota
	Prediction
	Calibration
)

func (k WorkflowKind) String() string {
	switch k {
	case Economic:
		return "Economic"
	case Prediction:
		return "Prediction"
	case Calibration:
		return "Calibration"
	default:
		return fmt.Sprintf("WorkflowKind(%d)", int(k))
	}
}

// WorkflowSpec is a Table I row: the scale of one workflow family.
type WorkflowSpec struct {
	Kind       WorkflowKind
	Cells      int
	States     int
	Replicates int
	// RawBytesPerSim and SummaryBytesPerSim model the 1:1-scale output
	// volume (Table I: raw 3.0TB/9180 ≈ 340MB per simulation for the
	// economic workflow; summaries a few hundred KB).
	RawBytesPerSim     int64
	SummaryBytesPerSim int64
}

// Simulations returns cells × states × replicates.
func (w WorkflowSpec) Simulations() int { return w.Cells * w.States * w.Replicates }

// RawBytes returns the total raw output estimate.
func (w WorkflowSpec) RawBytes() int64 { return int64(w.Simulations()) * w.RawBytesPerSim }

// SummaryBytes returns the total summarized output estimate.
func (w WorkflowSpec) SummaryBytes() int64 { return int64(w.Simulations()) * w.SummaryBytesPerSim }

// TableI returns the paper's three representative workflows with their
// published scales: Economic 12×51×15 (9180 sims, 3.0TB raw / 5.0GB
// summary), Prediction 12×51×15 (9180, 1.0TB / 2.5GB), Calibration
// 300×51×1 (15300, 5.0TB / 4.0GB).
func TableI() []WorkflowSpec {
	return []WorkflowSpec{
		{Kind: Economic, Cells: 12, States: 51, Replicates: 15,
			RawBytesPerSim:     3 * transfer.TB / 9180,
			SummaryBytesPerSim: 5 * transfer.GB / 9180},
		{Kind: Prediction, Cells: 12, States: 51, Replicates: 15,
			RawBytesPerSim:     1 * transfer.TB / 9180,
			SummaryBytesPerSim: 5 * transfer.GB / 2 / 9180},
		{Kind: Calibration, Cells: 300, States: 51, Replicates: 1,
			RawBytesPerSim:     5 * transfer.TB / 15300,
			SummaryBytesPerSim: 4 * transfer.GB / 15300},
	}
}

// NightConfig assembles one night on the remote cluster.
type NightConfig struct {
	Spec WorkflowSpec
	// Heuristic selects the packing: "FFDT-DC" (default) or "NFDT-DC".
	Heuristic string
	// Seed adds night-to-night task-time noise.
	Seed uint64
	Day  int
	// Faults injects the operational failures of the production nights
	// (task/node crashes, DB connection refusals, transfer stalls). The
	// zero value is failure-free and reproduces the baseline bit for bit.
	Faults faults.Spec
	// Recovery tunes requeue/backoff/shed behaviour under faults; zero
	// fields take DefaultRecoveryPolicy.
	Recovery RecoveryPolicy
}

// NightReport summarizes one simulated night (the Figure 9 data points).
type NightReport struct {
	Config      NightConfig
	Tasks       int
	Makespan    float64
	Utilization float64
	// MakespanLB is the FFDT-DC packing's lower bound (max of the area and
	// longest-task bounds from internal/sched) for the night's workload;
	// UtilizationBound is the best utilization any schedule could reach
	// inside the achieved makespan-lower-bound, i.e. busy-work area over
	// (MakespanLB × nodes). Achieved Utilization ≤ UtilizationBound, and the
	// -trace-summary report prints the two side by side.
	MakespanLB       float64
	UtilizationBound float64
	// FitsWindow reports whether everything completed inside 10 hours
	// with nothing shed.
	FitsWindow bool
	Unstarted  int
	// ConfigBytes / SummaryBytes / RawBytes are the night's data volumes
	// at 1:1 scale (Table I / Table II accounting).
	ConfigBytes, SummaryBytes, RawBytes int64

	// Failure/retry/shed accounting (the fault-injection extension). On a
	// failure-free night Completed = Tasks − Unstarted, Rounds = 1 and
	// everything else below is zero.
	Completed  int
	Crashes    int
	DBRefusals int
	// Retries counts requeue events; Rounds counts scheduling passes.
	Retries int
	Rounds  int
	// Recovered counts tasks that completed after at least one failed
	// attempt — the requeue machinery's successes.
	Recovered int
	// Shed lists exactly the work dropped when the window could not
	// absorb the retries, lowest priority first. ShedRetryExhausted and
	// ShedWindow split the count by cause.
	Shed               []sched.Task
	ShedRetryExhausted int
	ShedWindow         int
	// WastedNodeSeconds is node-time consumed by crashed attempts.
	WastedNodeSeconds float64
	// TransferRetries counts stalled-and-retried transfer attempts.
	TransferRetries int
}

// RunNight simulates one night of the given workflow on the remote
// cluster: build the ⟨cell, region⟩ tasks with the empirical time model,
// pack with the chosen heuristic, execute (level-synchronous for NFDT-DC,
// backfilled for FFDT-DC — how the respective production configurations
// ran) under the configured fault model with retry/requeue/shed recovery,
// and account the data movement.
func (p *Pipeline) RunNight(cfg NightConfig) (*NightReport, error) {
	report, _, err := p.ExecuteNight(cfg)
	return report, err
}

// RunNightCtx is RunNight under a context: cancellation interrupts the
// recovery rounds between scheduling passes.
func (p *Pipeline) RunNightCtx(ctx context.Context, cfg NightConfig) (*NightReport, error) {
	report, _, err := p.ExecuteNightCtx(ctx, cfg)
	return report, err
}

// ExecuteNight is RunNight exposing the merged execution trace across all
// recovery rounds, so callers can replay or validate it (e.g. with
// cluster.ValidateExecution against the night's constraints).
func (p *Pipeline) ExecuteNight(cfg NightConfig) (*NightReport, cluster.ExecResult, error) {
	return p.ExecuteNightCtx(context.Background(), cfg)
}

// ExecuteNightCtx is ExecuteNight under a context.
func (p *Pipeline) ExecuteNightCtx(ctx context.Context, cfg NightConfig) (*NightReport, cluster.ExecResult, error) {
	if err := cfg.Faults.Validate(); err != nil {
		return nil, cluster.ExecResult{}, err
	}
	ctx, night := obs.StartSpan(ctx, "night",
		obs.String("workflow", cfg.Spec.Kind.String()),
		obs.String("heuristic", cfg.Heuristic),
		obs.Int("day", int64(cfg.Day)))
	defer night.End()
	// Counter-factual and prediction designs sweep intervention
	// complexity (up to the ≈4× D2CT factor of Figure 7); calibration
	// cells sweep disease parameters on a fixed mitigation schedule, so
	// their run times spread far less.
	ivSpread := 4.0
	if cfg.Spec.Kind == Calibration {
		ivSpread = 1.4
	}
	w := sched.Workload{
		Cells:                 cfg.Spec.Cells,
		Replicates:            cfg.Spec.Replicates,
		Time:                  sched.DefaultTimeModel(),
		MaxInterventionFactor: ivSpread,
	}
	_, part := obs.StartSpan(ctx, "partition")
	tasks := w.Tasks(stats.NewRNG(cfg.Seed))
	part.SetAttr(obs.Int("tasks", int64(len(tasks))))
	part.End()
	constraints := sched.Constraints{
		TotalNodes: p.Remote.Nodes,
		DBBound:    sched.DefaultDBBounds(p.DBConnBound),
	}
	deadline := p.Window.Seconds()
	report := &NightReport{Config: cfg, Tasks: len(tasks)}
	report.MakespanLB = sched.MakespanLowerBound(tasks, constraints.TotalNodes)
	if report.MakespanLB > 0 && constraints.TotalNodes > 0 {
		area := 0.0
		for _, t := range tasks {
			area += t.Time * float64(t.Nodes)
		}
		report.UtilizationBound = area / (report.MakespanLB * float64(constraints.TotalNodes))
	}

	fm := faults.New(cfg.Faults)
	fm.SetCounters(p.FaultCounters)
	exec, err := p.runNightRounds(ctx, cfg, fm, tasks, constraints, deadline, report)
	if err != nil {
		return nil, cluster.ExecResult{}, err
	}
	report.Makespan = exec.Makespan
	report.Utilization = exec.Utilization
	report.Unstarted = len(exec.Unstarted)
	report.Completed = len(exec.Records)
	report.WastedNodeSeconds = exec.WastedNodeSeconds
	report.FitsWindow = len(exec.Unstarted) == 0 && len(report.Shed) == 0 && exec.Makespan <= deadline

	// Data accounting: configs out, summaries back; raw output stays on
	// the remote filesystem (Table II). Each executed task is one
	// simulation (tasks are per-replicate); shed work produces nothing.
	completed := int64(len(exec.Records))
	report.ConfigBytes = int64(len(tasks)) * 580 * transfer.KB
	report.SummaryBytes = completed * cfg.Spec.SummaryBytesPerSim
	report.RawBytes = completed * cfg.Spec.RawBytesPerSim
	if err := p.moveWithRecovery(ctx, cfg, fm, report, transfer.HomeToRemote, "night-configs", report.ConfigBytes); err != nil {
		return nil, cluster.ExecResult{}, err
	}
	if err := p.moveWithRecovery(ctx, cfg, fm, report, transfer.RemoteToHome, "night-summaries", report.SummaryBytes); err != nil {
		return nil, cluster.ExecResult{}, err
	}
	night.SetAttr(
		obs.Int("tasks", int64(report.Tasks)),
		obs.Int("completed", int64(report.Completed)),
		obs.Int("rounds", int64(report.Rounds)),
		obs.Int("shed", int64(len(report.Shed))),
		obs.Float("makespan", report.Makespan),
		obs.Float("utilization", report.Utilization),
		obs.Float("makespan_lb", report.MakespanLB),
		obs.Float("utilization_bound", report.UtilizationBound),
	)
	return report, exec, nil
}

// moveWithRecovery ships bytes over the ledger; under a fault model the
// transfer retries stalled attempts with jittered backoff and the retry
// count lands in the report. A transfer that stalls through the whole
// retry budget fails the night — the morning's products cannot ship.
func (p *Pipeline) moveWithRecovery(ctx context.Context, cfg NightConfig, fm *faults.Model, report *NightReport,
	dir transfer.Direction, label string, bytes int64) error {
	if fm == nil {
		_, err := p.Ledger.MoveCtx(ctx, cfg.Day, dir, label, bytes)
		return err
	}
	pol := cfg.Recovery.withDefaults()
	_, retries, err := p.Ledger.MoveWithRetryCtx(ctx, cfg.Day, dir, label, bytes, pol.Transfer,
		func(attempt int) (bool, float64) {
			return fm.TransferStall(label, attempt), fm.Jitter(label, 0, 0, attempt)
		})
	report.TransferRetries += retries
	return err
}

// RunNights executes a workload across consecutive nightly windows with
// carryover — the resiliency behaviour of the production pipeline: tasks
// that do not fit tonight's 10-hour window are resubmitted the next night
// until the workload drains or maxNights is exhausted.
func (p *Pipeline) RunNights(spec WorkflowSpec, heuristic string, maxNights int, seed uint64) ([]*NightReport, error) {
	return p.RunNightsCtx(context.Background(), spec, heuristic, maxNights, seed)
}

// RunNightsCtx is RunNights under a context: long multi-night campaigns
// check ctx at each night boundary, so cancellation returns the reports of
// the nights already simulated together with ctx.Err().
func (p *Pipeline) RunNightsCtx(ctx context.Context, spec WorkflowSpec, heuristic string, maxNights int, seed uint64) ([]*NightReport, error) {
	if maxNights <= 0 {
		maxNights = 1
	}
	ivSpread := 4.0
	if spec.Kind == Calibration {
		ivSpread = 1.4
	}
	w := sched.Workload{
		Cells: spec.Cells, Replicates: spec.Replicates,
		Time: sched.DefaultTimeModel(), MaxInterventionFactor: ivSpread,
	}
	remaining := w.Tasks(stats.NewRNG(seed))
	constraints := sched.Constraints{
		TotalNodes: p.Remote.Nodes,
		DBBound:    sched.DefaultDBBounds(p.DBConnBound),
	}
	deadline := p.Window.Seconds()
	var reports []*NightReport
	for night := 0; night < maxNights && len(remaining) > 0; night++ {
		if err := ctx.Err(); err != nil {
			return reports, err
		}
		nctx, nsp := obs.StartSpan(ctx, "night",
			obs.String("workflow", spec.Kind.String()),
			obs.String("heuristic", heuristic),
			obs.Int("day", int64(night)))
		var exec cluster.ExecResult
		switch heuristic {
		case "", "FFDT-DC":
			s, err := sched.FFDTDC(remaining, constraints)
			if err != nil {
				nsp.End()
				return nil, err
			}
			exec, err = cluster.ExecuteBackfillOpts(cluster.FlattenSchedule(s), constraints,
				cluster.ExecOptions{Deadline: deadline, Ctx: nctx})
			if err != nil {
				nsp.End()
				return nil, err
			}
		case "NFDT-DC":
			s, err := sched.NFDTDC(remaining, constraints)
			if err != nil {
				nsp.End()
				return nil, err
			}
			exec = cluster.ExecuteLevelSyncOpts(s, cluster.ExecOptions{Deadline: deadline, Ctx: nctx})
		default:
			nsp.End()
			return nil, fmt.Errorf("core: unknown heuristic %q", heuristic)
		}
		completed := int64(len(exec.Records))
		rep := &NightReport{
			Config:       NightConfig{Spec: spec, Heuristic: heuristic, Seed: seed, Day: night},
			Tasks:        len(remaining),
			Makespan:     exec.Makespan,
			Utilization:  exec.Utilization,
			Unstarted:    len(exec.Unstarted),
			FitsWindow:   len(exec.Unstarted) == 0 && exec.Makespan <= deadline,
			ConfigBytes:  int64(len(remaining)) * 580 * transfer.KB,
			SummaryBytes: completed * spec.SummaryBytesPerSim,
			RawBytes:     completed * spec.RawBytesPerSim,
		}
		rep.MakespanLB = sched.MakespanLowerBound(remaining, constraints.TotalNodes)
		if rep.MakespanLB > 0 && constraints.TotalNodes > 0 {
			area := 0.0
			for _, t := range remaining {
				area += t.Time * float64(t.Nodes)
			}
			rep.UtilizationBound = area / (rep.MakespanLB * float64(constraints.TotalNodes))
		}
		if _, err := p.Ledger.MoveCtx(nctx, night, transfer.HomeToRemote, "night-configs", rep.ConfigBytes); err != nil {
			nsp.End()
			return nil, err
		}
		if _, err := p.Ledger.MoveCtx(nctx, night, transfer.RemoteToHome, "night-summaries", rep.SummaryBytes); err != nil {
			nsp.End()
			return nil, err
		}
		nsp.SetAttr(
			obs.Int("tasks", int64(rep.Tasks)),
			obs.Float("makespan", rep.Makespan),
			obs.Float("utilization", rep.Utilization),
		)
		nsp.End()
		reports = append(reports, rep)
		remaining = exec.Unstarted
	}
	if len(remaining) > 0 {
		return reports, fmt.Errorf("core: %d tasks still unfinished after %d nights", len(remaining), maxNights)
	}
	return reports, nil
}

// TimelineStep is one task of the multi-day human-in-the-loop cycle of
// Figure 2.
type TimelineStep struct {
	Day       int
	Name      string
	Automated bool
}

// WeeklyTimeline returns the paper's calibration–prediction cycle: model
// configuration on day 0, calibration nights, analyst review, projection
// nights, and the Wednesday delivery of products on day 6.
func WeeklyTimeline() []TimelineStep {
	return []TimelineStep{
		{Day: 0, Name: "update ground truth & model configuration", Automated: false},
		{Day: 0, Name: "generate calibration design (cells)", Automated: true},
		{Day: 0, Name: "transfer configurations to remote cluster", Automated: false},
		{Day: 1, Name: "nightly calibration simulations (10pm–8am)", Automated: true},
		{Day: 1, Name: "aggregate outputs, transfer summaries home", Automated: true},
		{Day: 2, Name: "Bayesian calibration (GP emulator + MCMC)", Automated: true},
		{Day: 2, Name: "analyst review of calibration fit", Automated: false},
		{Day: 3, Name: "generate prediction configurations + what-if scenarios", Automated: false},
		{Day: 4, Name: "nightly prediction simulations (10pm–8am)", Automated: true},
		{Day: 5, Name: "ensemble analysis, county-level products", Automated: true},
		{Day: 5, Name: "domain-expert consistency review", Automated: false},
		{Day: 6, Name: "deliver weekly products to stakeholders (Wednesday)", Automated: false},
	}
}
