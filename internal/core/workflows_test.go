package core

import (
	"testing"

	"repro/internal/econ"
	"repro/internal/stats"
	"repro/internal/transfer"
)

// calibTestConfig keeps the end-to-end calibration fast: a small design on
// a coarse network.
func calibTestConfig() CalibrationConfig {
	return CalibrationConfig{
		State: "VA",
		Cells: 24,
		Days:  50,
		Steps: 400, BurnIn: 200,
		PosteriorSize: 30,
		Day:           1,
	}
}

func TestCalibrationWorkflowEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end calibration in short mode")
	}
	p := testPipeline(10)
	out, err := p.RunCalibrationWorkflow(calibTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Prior) != 24 || len(out.Sims) != 24 {
		t.Fatalf("prior/sims %d/%d want 24", len(out.Prior), len(out.Sims))
	}
	if len(out.Posterior) == 0 {
		t.Fatal("empty posterior")
	}
	// Posterior parameters stay inside the prior ranges.
	cfg := out.Config
	for _, pr := range out.Posterior {
		if pr.TAU < cfg.TAURange[0] || pr.TAU > cfg.TAURange[1] {
			t.Fatalf("posterior TAU %v outside prior", pr.TAU)
		}
		if pr.SYMP < cfg.SYMPRange[0] || pr.SYMP > cfg.SYMPRange[1] {
			t.Fatalf("posterior SYMP %v outside prior", pr.SYMP)
		}
	}
	// Figure 15: the posterior should be tighter than the prior in TAU.
	priorTau := make([]float64, len(out.Prior))
	for i, pr := range out.Prior {
		priorTau[i] = pr.TAU
	}
	postTau := make([]float64, len(out.Posterior))
	for i, pr := range out.Posterior {
		postTau[i] = pr.TAU
	}
	if stats.StdDev(postTau) >= stats.StdDev(priorTau)*1.05 {
		t.Fatalf("posterior TAU sd %v not tighter than prior %v",
			stats.StdDev(postTau), stats.StdDev(priorTau))
	}
	// Transfer accounting: configs out, summaries back.
	if p.Ledger.DayBytes(1, transfer.HomeToRemote) == 0 {
		t.Fatal("no config transfer recorded")
	}
	if p.Ledger.DayBytes(1, transfer.RemoteToHome) == 0 {
		t.Fatal("no summary transfer recorded")
	}
}

func TestPredictionWorkflowEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end prediction in short mode")
	}
	p := testPipeline(11)
	configs := []Params{
		{TAU: 0.2, SYMP: 0.6, SHCompliance: 0.4, VHICompliance: 0.4},
		{TAU: 0.24, SYMP: 0.65, SHCompliance: 0.5, VHICompliance: 0.3},
		{TAU: 0.28, SYMP: 0.55, SHCompliance: 0.3, VHICompliance: 0.5},
	}
	out, err := p.RunPredictionWorkflow(PredictionConfig{
		State: "VA", Configs: configs, Replicates: 4, Days: 60, Day: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Sims) != 12 {
		t.Fatalf("%d sims want 12 (3 configs × 4 replicates)", len(out.Sims))
	}
	// Band ordering and monotonicity (cumulative).
	for d := 0; d < 60; d++ {
		if out.Confirmed.Lo[d] > out.Confirmed.Median[d] || out.Confirmed.Median[d] > out.Confirmed.Hi[d] {
			t.Fatalf("confirmed band inverted at day %d", d)
		}
	}
	for d := 1; d < 60; d++ {
		if out.Confirmed.Median[d] < out.Confirmed.Median[d-1] {
			t.Fatal("median cumulative decreased")
		}
	}
	if out.Confirmed.Median[59] <= 0 {
		t.Fatal("no predicted cases")
	}
	// Other targets present; deaths ≤ confirmed.
	if out.Deaths.Median[59] > out.Confirmed.Median[59] {
		t.Fatal("more deaths than confirmed cases")
	}
	// County products cover the state's counties.
	if len(out.CountyMedian) < 10 {
		t.Fatalf("only %d county forecasts", len(out.CountyMedian))
	}
	if _, err := p.RunPredictionWorkflow(PredictionConfig{State: "VA"}); err == nil {
		t.Fatal("prediction without configs accepted")
	}
}

func TestCounterfactualWorkflowEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end counterfactual in short mode")
	}
	p := testPipeline(12)
	cfg := CounterfactualConfig{
		States:     []string{"RI"},
		Replicates: 2,
		Days:       50,
		Base:       Params{TAU: 0.25, SYMP: 0.65},
		// 2 × 2 × 1 = 4 cells (the paper's design is 2 × 3 × 2 = 12).
		VHICompliances: []float64{0.2, 0.8},
		SHDurations:    []int{10, 30},
		SHCompliances:  []float64{0.6},
		SHStart:        10,
		Day:            3,
	}
	out, err := p.RunCounterfactualWorkflow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Cells) != 4 {
		t.Fatalf("%d cells want 4", len(out.Cells))
	}
	// Medical costs per cell; stricter NPIs should not cost more in
	// medical terms than the weakest cell.
	costs := map[string]econ.Tally{}
	for _, cell := range out.Cells {
		var tally econ.Tally
		for _, s := range out.Sims[cell.Index] {
			tt, err := econ.TallyFromSeries(s.Result.Daily, s.Result.Current)
			if err != nil {
				t.Fatal(err)
			}
			tally.Add(tt)
		}
		costs[cell.Name()] = tally
	}
	ranked := econ.CompareScenarios(econ.DefaultCosts(), costs)
	if len(ranked) != 4 {
		t.Fatalf("%d ranked scenarios", len(ranked))
	}
	// The strongest NPI cell (VHI 0.8, 30d SH) should have fewer attended
	// cases than the weakest (VHI 0.2, 10d SH).
	var weak, strong econ.Tally
	for _, cell := range out.Cells {
		if cell.VHICompliance == 0.2 && cell.SHDuration == 10 {
			weak = costs[cell.Name()]
		}
		if cell.VHICompliance == 0.8 && cell.SHDuration == 30 {
			strong = costs[cell.Name()]
		}
	}
	if strong.AttendedCases >= weak.AttendedCases {
		t.Logf("warning: strong NPI (%d attended) not below weak (%d) — small-sample noise",
			strong.AttendedCases, weak.AttendedCases)
	}
	if _, err := p.RunCounterfactualWorkflow(CounterfactualConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := p.RunCounterfactualWorkflow(CounterfactualConfig{States: []string{"RI"}}); err == nil {
		t.Fatal("empty factorial accepted")
	}
}

func TestFactorialCells(t *testing.T) {
	cfg := CounterfactualConfig{
		VHICompliances: []float64{0.3, 0.7},
		SHDurations:    []int{14, 30, 60},
		SHCompliances:  []float64{0.5, 0.9},
	}
	cells := cfg.FactorialCells()
	if len(cells) != 12 {
		t.Fatalf("%d cells want 12 (the paper's 2 × 3 × 2 design)", len(cells))
	}
	seen := map[string]bool{}
	for i, c := range cells {
		if c.Index != i {
			t.Fatal("cell indices not sequential")
		}
		if seen[c.Name()] {
			t.Fatalf("duplicate cell %s", c.Name())
		}
		seen[c.Name()] = true
	}
}
