package core

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
)

func TestStandardWhatIfs(t *testing.T) {
	ws := StandardWhatIfs()
	if len(ws) != 3 {
		t.Fatalf("%d scenarios want 3 (the paper's examples)", len(ws))
	}
	names := map[string]bool{}
	for _, w := range ws {
		if w.Name == "" || names[w.Name] {
			t.Fatalf("bad or duplicate scenario name %q", w.Name)
		}
		names[w.Name] = true
	}
}

func TestWhatIfApply(t *testing.T) {
	pr := Params{TAU: 0.2, SYMP: 0.6, SHCompliance: 0.6, VHICompliance: 0.8}
	// Compliance scaling caps at 1.
	w := WhatIf{ComplianceScale: 1.5}
	scaled, ivs := w.apply(pr, 10, 60)
	if math.Abs(scaled.SHCompliance-0.9) > 1e-12 {
		t.Fatalf("SH compliance %v want 0.9", scaled.SHCompliance)
	}
	if scaled.VHICompliance != 1 {
		t.Fatalf("VHI compliance %v want cap at 1", scaled.VHICompliance)
	}
	if len(ivs) != 3 {
		t.Fatalf("%d interventions want 3", len(ivs))
	}
	// Early lift cannot precede the start.
	w2 := WhatIf{SHEndShift: -100}
	_, ivs2 := w2.apply(pr, 10, 60)
	_ = ivs2
	// Testing and tracing layers appear.
	w3 := WhatIf{AddTesting: 0.2, AddTracing: 2, TraceDetectProb: 0.3}
	_, ivs3 := w3.apply(pr, 10, 60)
	if len(ivs3) != 5 {
		t.Fatalf("%d interventions want 5 (base 3 + TA + CT)", len(ivs3))
	}
	names := map[string]bool{}
	for _, iv := range ivs3 {
		names[iv.Name()] = true
	}
	if !names["TA"] || !names["D2CT"] {
		t.Fatalf("layers missing: %v", names)
	}
}

func TestRunWhatIfScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("what-if scenarios in short mode")
	}
	p := testPipeline(30)
	configs := []Params{
		{TAU: 0.24, SYMP: 0.65, SHCompliance: 0.5, VHICompliance: 0.5},
		{TAU: 0.27, SYMP: 0.6, SHCompliance: 0.45, VHICompliance: 0.55},
	}
	cfg := PredictionConfig{State: "VA", Configs: configs, Replicates: 3, Days: 70}
	scenarios := []WhatIf{
		{Name: "as-is-proxy"}, // no modification
		{Name: "sh-lifted-early", SHEndShift: -30},
		{Name: "better-compliance", ComplianceScale: 1.6},
	}
	outs, err := p.RunWhatIfScenarios(cfg, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("%d outcomes want 3", len(outs))
	}
	byName := map[string]*ScenarioOutcome{}
	for _, o := range outs {
		byName[o.Scenario.Name] = o
		// Bands ordered and monotone.
		for d := 1; d < cfg.Days; d++ {
			if o.Confirmed.Median[d] < o.Confirmed.Median[d-1] {
				t.Fatalf("%s: median decreased", o.Scenario.Name)
			}
			if o.Confirmed.Lo[d] > o.Confirmed.Hi[d] {
				t.Fatalf("%s: band inverted", o.Scenario.Name)
			}
		}
	}
	last := cfg.Days - 1
	asIs := byName["as-is-proxy"].Confirmed.Median[last]
	early := byName["sh-lifted-early"].Confirmed.Median[last]
	better := byName["better-compliance"].Confirmed.Median[last]
	// Lifting early should not reduce cases; better compliance should not
	// increase them (allow small-sample slack of 10%).
	if early < asIs*0.9 {
		t.Fatalf("lifting SH early reduced cases: %v vs %v", early, asIs)
	}
	if better > asIs*1.1 {
		t.Fatalf("better compliance increased cases: %v vs %v", better, asIs)
	}
}

func TestRunWhatIfValidation(t *testing.T) {
	p := testPipeline(31)
	if _, err := p.RunWhatIfScenarios(PredictionConfig{State: "VA"}, StandardWhatIfs()); err == nil {
		t.Error("no configs accepted")
	}
	if _, err := p.RunWhatIfScenarios(PredictionConfig{
		State: "VA", Configs: []Params{{TAU: 0.2, SYMP: 0.6}},
	}, nil); err == nil {
		t.Error("no scenarios accepted")
	}
}

// TestWhatIfSharedMatchesUnshared is the workflow-level equivalence gate:
// branching every scenario from the shared-prefix snapshot must produce
// bit-identical forecasts to re-simulating each scenario's history from
// scratch. The scenarios span three distinct pivot days so the test also
// exercises the multi-checkpoint prefix walk.
func TestWhatIfSharedMatchesUnshared(t *testing.T) {
	p := testPipeline(77)
	cfg := PredictionConfig{
		State: "VA",
		Configs: []Params{
			{TAU: 0.24, SYMP: 0.65, SHCompliance: 0.5, VHICompliance: 0.5},
			{TAU: 0.27, SYMP: 0.6, SHCompliance: 0.45, VHICompliance: 0.55},
		},
		Replicates: 2, Days: 40,
	}
	scenarios := []WhatIf{
		{Name: "default-pivot", SHEndShift: -10}, // pivots at SHStart (15)
		{Name: "early-pivot", PivotDay: 10, ComplianceScale: 1.4},
		{Name: "late-pivot", PivotDay: 25, AddTesting: 0.2},
	}
	shared, err := p.RunWhatIfScenarios(cfg, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	unshared, err := p.RunWhatIfScenariosUnshared(context.Background(), cfg, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if len(shared) != len(unshared) {
		t.Fatalf("outcome counts differ: %d vs %d", len(shared), len(unshared))
	}
	for i := range shared {
		if !reflect.DeepEqual(shared[i], unshared[i]) {
			t.Errorf("scenario %q: shared and unshared forecasts differ", shared[i].Scenario.Name)
		}
	}
	if st := p.SnapshotStats(); st.Misses == 0 {
		t.Error("shared run recorded no snapshot misses; the prefix walk never ran")
	}
}

// TestWhatIfSnapshotCacheReuse: a second identical what-if call must serve
// every prefix from the checkpoint store (hits, no new misses) and return
// identical forecasts.
func TestWhatIfSnapshotCacheReuse(t *testing.T) {
	p := testPipeline(78)
	cfg := PredictionConfig{
		State:      "VA",
		Configs:    []Params{{TAU: 0.25, SYMP: 0.6, SHCompliance: 0.5, VHICompliance: 0.5}},
		Replicates: 2, Days: 35,
	}
	scenarios := []WhatIf{
		{Name: "a", SHEndShift: -5},
		{Name: "b", ComplianceScale: 1.3},
	}
	first, err := p.RunWhatIfScenarios(cfg, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	st1 := p.SnapshotStats()
	if st1.Misses == 0 || st1.Entries == 0 {
		t.Fatalf("first call should miss and populate the store: %+v", st1)
	}
	second, err := p.RunWhatIfScenarios(cfg, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	st2 := p.SnapshotStats()
	if st2.Misses != st1.Misses {
		t.Errorf("second call re-simulated prefixes: misses %d -> %d", st1.Misses, st2.Misses)
	}
	if st2.Hits <= st1.Hits {
		t.Errorf("second call recorded no cache hits: %d -> %d", st1.Hits, st2.Hits)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("cached and fresh forecasts differ")
	}
}

// TestWhatIfCacheDisabled: WithSnapshotCacheBytes(0) turns cross-call
// caching off but the prefix is still shared within a call — and the
// forecasts still match a caching pipeline's.
func TestWhatIfCacheDisabled(t *testing.T) {
	cfg := PredictionConfig{
		State:      "VA",
		Configs:    []Params{{TAU: 0.25, SYMP: 0.6, SHCompliance: 0.5, VHICompliance: 0.5}},
		Replicates: 2, Days: 35,
	}
	scenarios := []WhatIf{{Name: "a", SHEndShift: -5}, {Name: "b", AddTesting: 0.15}}

	nocache := NewPipeline(79, WithScale(40000), WithParallelism(2), WithSnapshotCacheBytes(0))
	got, err := nocache.RunWhatIfScenarios(cfg, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if st := nocache.SnapshotStats(); st.Entries != 0 || st.Hits != 0 {
		t.Errorf("disabled store has activity: %+v", st)
	}
	cached := NewPipeline(79, WithScale(40000), WithParallelism(2))
	want, err := cached.RunWhatIfScenarios(cfg, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("cache-disabled forecasts differ from cached pipeline's")
	}
}

// TestWhatIfCanceledContext: a pre-canceled context must abort before any
// simulation work.
func TestWhatIfCanceledContext(t *testing.T) {
	p := testPipeline(80)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := p.RunWhatIfScenariosCtx(ctx, PredictionConfig{
		State:   "VA",
		Configs: []Params{{TAU: 0.25, SYMP: 0.6, SHCompliance: 0.5, VHICompliance: 0.5}},
	}, StandardWhatIfs())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
