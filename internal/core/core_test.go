package core

import (
	"math"
	"testing"

	"repro/internal/disease"
	"repro/internal/transfer"
)

// testPipeline runs at a very coarse scale so workflows stay fast.
func testPipeline(seed uint64) *Pipeline {
	return NewPipeline(seed, WithScale(40000), WithParallelism(2))
}

func TestPipelineOptions(t *testing.T) {
	p := NewPipeline(1, WithScale(5000), WithParallelism(3), WithDBConnBound(7))
	if p.Scale != 5000 || p.Parallelism != 3 || p.DBConnBound != 7 {
		t.Fatalf("options not applied: %+v", p)
	}
	db, err := p.DB("RI")
	if err != nil {
		t.Fatal(err)
	}
	if db.MaxConns() != 7 {
		t.Fatal("DB bound option not propagated")
	}
}

func TestNetworkCachedAndStaged(t *testing.T) {
	p := testPipeline(1)
	a, err := p.Network("VA")
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Network("VA")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("network not cached")
	}
	// Exactly one staging transfer.
	staged := 0
	for _, r := range p.Ledger.Records {
		if r.Label == "network-staging" {
			staged++
		}
	}
	if staged != 1 {
		t.Fatalf("%d staging transfers want 1", staged)
	}
	if _, err := p.Network("ZZ"); err == nil {
		t.Fatal("unknown state accepted")
	}
}

func TestDBFromSnapshot(t *testing.T) {
	p := testPipeline(2)
	db, err := p.DB("VA")
	if err != nil {
		t.Fatal(err)
	}
	db2, err := p.DB("VA")
	if err != nil {
		t.Fatal(err)
	}
	if db != db2 {
		t.Fatal("DB not cached")
	}
	net, _ := p.Network("VA")
	if db.NumPersons() != net.NumNodes() {
		t.Fatal("DB population mismatch")
	}
	if db.MaxConns() != p.DBConnBound {
		t.Fatal("DB bound not applied")
	}
}

func TestTruthCached(t *testing.T) {
	p := testPipeline(3)
	a, err := p.Truth("VA")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := p.Truth("VA")
	if a != b {
		t.Fatal("truth not cached")
	}
}

func TestParamsApplyToModel(t *testing.T) {
	pr := Params{TAU: 0.25, SYMP: 0.7}
	m, err := pr.ApplyToModel(disease.COVID19())
	if err != nil {
		t.Fatal(err)
	}
	if m.Transmissibility != 0.25 {
		t.Fatal("TAU not applied")
	}
	for _, tr := range m.Transitions(disease.Exposed) {
		switch tr.To {
		case disease.Presymptomatic:
			if tr.Prob[disease.Age18to49] != 0.7 {
				t.Fatalf("SYMP not applied: %v", tr.Prob)
			}
		case disease.Asymptomatic:
			if math.Abs(tr.Prob[disease.Age18to49]-0.3) > 1e-12 {
				t.Fatalf("asymptomatic complement wrong: %v", tr.Prob)
			}
		}
	}
	// Original model untouched.
	base := disease.COVID19()
	if base.Transmissibility != 0.18 {
		t.Fatal("base model mutated")
	}
	if _, err := (Params{TAU: -1, SYMP: 0.5}).ApplyToModel(base); err == nil {
		t.Fatal("negative TAU accepted")
	}
	if _, err := (Params{TAU: 0.2, SYMP: 1.5}).ApplyToModel(base); err == nil {
		t.Fatal("SYMP > 1 accepted")
	}
}

func TestRunSim(t *testing.T) {
	p := testPipeline(4)
	out, err := p.RunSim(SimJob{
		State: "VA", Cell: 0, Replicate: 0,
		Params: Params{TAU: 0.25, SYMP: 0.65, SHCompliance: 0.3, VHICompliance: 0.3},
		Days:   40,
	}, 15, 40)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.TotalInfections == 0 {
		t.Fatal("no epidemic")
	}
	if out.RawBytes <= 0 {
		t.Fatal("raw byte estimate non-positive")
	}
	conf := out.Agg.StateConfirmedCumulative()
	if conf[len(conf)-1] <= 0 {
		t.Fatal("no confirmed cases aggregated")
	}
}

func TestRunSimDeterministicPerJob(t *testing.T) {
	p := testPipeline(5)
	job := SimJob{State: "VA", Params: Params{TAU: 0.22, SYMP: 0.6, SHCompliance: 0.2, VHICompliance: 0.2}, Days: 30}
	a, err := p.RunSim(job, 10, 30)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.RunSim(job, 10, 30)
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.TotalInfections != b.Result.TotalInfections {
		t.Fatal("same job differs")
	}
	job2 := job
	job2.Replicate = 1
	c, err := p.RunSim(job2, 10, 30)
	if err != nil {
		t.Fatal(err)
	}
	if c.Result.TotalInfections == a.Result.TotalInfections {
		t.Log("warning: replicate produced identical infections (possible but unlikely)")
	}
}

func TestTableIAccounting(t *testing.T) {
	rows := TableI()
	if len(rows) != 3 {
		t.Fatalf("%d rows want 3", len(rows))
	}
	byKind := map[WorkflowKind]WorkflowSpec{}
	for _, r := range rows {
		byKind[r.Kind] = r
	}
	// The published simulation counts.
	if n := byKind[Economic].Simulations(); n != 9180 {
		t.Errorf("economic sims %d want 9180", n)
	}
	if n := byKind[Prediction].Simulations(); n != 9180 {
		t.Errorf("prediction sims %d want 9180", n)
	}
	if n := byKind[Calibration].Simulations(); n != 15300 {
		t.Errorf("calibration sims %d want 15300", n)
	}
	// The published data volumes (within rounding of the per-sim model).
	within := func(got, want int64, tol float64) bool {
		return math.Abs(float64(got-want)) <= tol*float64(want)
	}
	if !within(byKind[Economic].RawBytes(), 3*transfer.TB, 0.01) {
		t.Errorf("economic raw %v want ≈3TB", transfer.HumanBytes(byKind[Economic].RawBytes()))
	}
	if !within(byKind[Prediction].RawBytes(), 1*transfer.TB, 0.01) {
		t.Errorf("prediction raw %v want ≈1TB", transfer.HumanBytes(byKind[Prediction].RawBytes()))
	}
	if !within(byKind[Calibration].RawBytes(), 5*transfer.TB, 0.01) {
		t.Errorf("calibration raw %v want ≈5TB", transfer.HumanBytes(byKind[Calibration].RawBytes()))
	}
	if !within(byKind[Economic].SummaryBytes(), 5*transfer.GB, 0.01) {
		t.Errorf("economic summary %v want ≈5GB", transfer.HumanBytes(byKind[Economic].SummaryBytes()))
	}
	if !within(byKind[Calibration].SummaryBytes(), 4*transfer.GB, 0.01) {
		t.Errorf("calibration summary %v want ≈4GB", transfer.HumanBytes(byKind[Calibration].SummaryBytes()))
	}
}

func TestRunNightFFDTvsNFDT(t *testing.T) {
	p := testPipeline(6)
	pred := TableI()[1]
	ff, err := p.RunNight(NightConfig{Spec: pred, Heuristic: "FFDT-DC", Seed: 11, Day: 1})
	if err != nil {
		t.Fatal(err)
	}
	nf, err := p.RunNight(NightConfig{Spec: pred, Heuristic: "NFDT-DC", Seed: 11, Day: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ff.Utilization < 0.90 {
		t.Fatalf("FFDT night utilization %v", ff.Utilization)
	}
	if nf.Utilization > 0.65 || nf.Utilization < 0.35 {
		t.Fatalf("NFDT night utilization %v outside the paper's band", nf.Utilization)
	}
	if !ff.FitsWindow {
		t.Fatal("FFDT night missed the 10-hour window")
	}
	if ff.Tasks != pred.Simulations() {
		t.Fatalf("night ran %d tasks want %d", ff.Tasks, pred.Simulations())
	}
	if ff.RawBytes <= 0 || ff.SummaryBytes <= 0 || ff.ConfigBytes <= 0 {
		t.Fatal("night data accounting missing")
	}
	if _, err := p.RunNight(NightConfig{Spec: pred, Heuristic: "bogus"}); err == nil {
		t.Fatal("bogus heuristic accepted")
	}
}

func TestWeeklyTimeline(t *testing.T) {
	steps := WeeklyTimeline()
	if len(steps) < 10 {
		t.Fatalf("%d steps", len(steps))
	}
	if steps[0].Day != 0 || steps[len(steps)-1].Day != 6 {
		t.Fatal("timeline should span day 0 to day 6 (Wednesday)")
	}
	auto, manual := 0, 0
	for i := 1; i < len(steps); i++ {
		if steps[i].Day < steps[i-1].Day {
			t.Fatal("timeline not ordered")
		}
	}
	for _, s := range steps {
		if s.Automated {
			auto++
		} else {
			manual++
		}
	}
	if auto == 0 || manual == 0 {
		t.Fatal("timeline should mix automated and human steps (Figure 2)")
	}
}

func TestWorkflowKindString(t *testing.T) {
	if Economic.String() != "Economic" || Calibration.String() != "Calibration" {
		t.Fatal("kind names wrong")
	}
	if WorkflowKind(9).String() == "" {
		t.Fatal("unknown kind name empty")
	}
}
