// Package core is the workflow engine — the paper's primary contribution:
// the real-time epidemiological pipeline that every night generates
// simulation configurations on the home cluster, ships them to the remote
// super-computing cluster, schedules and runs thousands of EpiHiper
// simulations under the 10-hour window, aggregates individual-level output
// to county time series, ships the summaries home, and feeds calibration,
// prediction and counter-factual analyses (Figures 1–5).
//
// The pipeline object owns the shared substrates: per-region synthetic
// networks (generated once and cached, like the paper's static partitions),
// population database servers instantiated from snapshots, synthetic
// surveillance ground truth, the transfer ledger between the two sites, and
// the simulated cluster specs.
package core

import (
	"fmt"
	"sync"

	"repro/internal/castore"
	"repro/internal/cluster"
	"repro/internal/disease"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/popdb"
	"repro/internal/surveillance"
	"repro/internal/synthpop"
	"repro/internal/transfer"
)

// Pipeline is the two-site workflow context.
type Pipeline struct {
	// Scale is the population down-scaling factor (1:Scale).
	Scale int
	// Seed drives all randomness.
	Seed uint64
	// Parallelism is the per-simulation processing-unit count.
	Parallelism int
	// DBConnBound is B(T[r]), the per-region database connection bound.
	DBConnBound int

	Home   cluster.Spec
	Remote cluster.Spec
	Window cluster.Window
	Ledger *transfer.Ledger
	// FaultCounters accumulates injected/recovered/shed counts across every
	// night run on this pipeline; fault models built by ExecuteNightCtx
	// report into it.
	FaultCounters *faults.Counters

	mu       sync.Mutex
	networks map[string]*synthpop.Network
	dbs      map[string]*popdb.Server
	truth    map[string]*surveillance.StateTruth

	// snapshots is the content-addressed checkpoint store of the what-if
	// workflow: keys are SHA-256 of (pipeline fingerprint, prefix spec,
	// tick); values are serialized simulator checkpoints shared by every
	// scenario branching from the same history.
	snapshots *castore.Store[*whatIfCheckpoint]
}

// Option mutates a Pipeline during construction.
type Option func(*Pipeline)

// WithScale sets the population scale.
func WithScale(s int) Option { return func(p *Pipeline) { p.Scale = s } }

// WithParallelism sets the per-simulation processing units.
func WithParallelism(n int) Option { return func(p *Pipeline) { p.Parallelism = n } }

// WithDBConnBound sets the per-region DB connection bound.
func WithDBConnBound(b int) Option { return func(p *Pipeline) { p.DBConnBound = b } }

// WithSnapshotCacheBytes bounds the what-if checkpoint store. Zero or
// negative disables snapshot caching entirely (every what-if run
// re-simulates its shared prefix once per call, still sharing it across the
// call's scenarios).
func WithSnapshotCacheBytes(n int64) Option {
	return func(p *Pipeline) {
		if n <= 0 {
			p.snapshots = nil
			return
		}
		p.snapshots = castore.New(castore.WithMaxCost[*whatIfCheckpoint](n, checkpointCost))
	}
}

// DefaultSnapshotCacheBytes bounds the checkpoint store when no option is
// given (~256 MB of serialized simulator state).
const DefaultSnapshotCacheBytes = int64(256 << 20)

// NewPipeline builds a pipeline with the paper's site configuration:
// Rivanna-like home cluster, Bridges-like remote cluster, 10pm–8am window.
func NewPipeline(seed uint64, opts ...Option) *Pipeline {
	p := &Pipeline{
		Scale:         20000,
		Seed:          seed,
		Parallelism:   2,
		DBConnBound:   16,
		Home:          cluster.Rivanna(),
		Remote:        cluster.Bridges(),
		Window:        cluster.NightlyWindow(),
		Ledger:        transfer.NewLedger(transfer.DefaultLink()),
		FaultCounters: &faults.Counters{},
		networks:      map[string]*synthpop.Network{},
		dbs:           map[string]*popdb.Server{},
		truth:         map[string]*surveillance.StateTruth{},
		snapshots: castore.New(
			castore.WithMaxCost[*whatIfCheckpoint](DefaultSnapshotCacheBytes, checkpointCost)),
	}
	for _, o := range opts {
		o(p)
	}
	p.Ledger.WindowSeconds = p.Window.Seconds()
	return p
}

// RegisterMetrics exposes the pipeline's transfer ledger and fault counters
// on a registry — the one call a binary needs to put the epi_transfer_* and
// epi_faults_* series on its /metrics endpoint or end-of-run dump.
func (p *Pipeline) RegisterMetrics(reg *obs.Registry) {
	transfer.RegisterMetrics(reg, p.Ledger)
	p.FaultCounters.Register(reg)
	if p.snapshots != nil {
		p.snapshots.RegisterMetrics(reg, "epi_snapshot")
	}
}

// Fingerprint identifies the pipeline parameters that shape simulation
// results: two pipelines may share cached results or checkpoints only when
// their fingerprints match.
func (p *Pipeline) Fingerprint() string {
	return fmt.Sprintf("seed=%d;scale=%d;par=%d;dbb=%d;nodes=%d;window=%g",
		p.Seed, p.Scale, p.Parallelism, p.DBConnBound, p.Remote.Nodes, p.Window.Seconds())
}

// SnapshotStats reports the what-if checkpoint store counters (zero value
// when snapshot caching is disabled).
func (p *Pipeline) SnapshotStats() castore.Stats {
	if p.snapshots == nil {
		return castore.Stats{}
	}
	return p.snapshots.Stats()
}

// Network returns the cached contact network for a region, generating it on
// first use (the paper generates networks once and reuses static
// partitions; the 2 TB one-time transfer is accounted on first
// materialization).
func (p *Pipeline) Network(state string) (*synthpop.Network, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n, ok := p.networks[state]; ok {
		return n, nil
	}
	st, err := synthpop.StateByCode(state)
	if err != nil {
		return nil, err
	}
	cfg := synthpop.DefaultConfig(p.Seed)
	cfg.Scale = p.Scale
	net, err := synthpop.Generate(st, cfg)
	if err != nil {
		return nil, err
	}
	p.networks[state] = net
	// One-time staging of traits + network to the remote site (Table II).
	if _, err := p.Ledger.Move(0, transfer.HomeToRemote, "network-staging",
		net.PersonBytes()+net.EdgeBytes()); err != nil {
		return nil, err
	}
	return net, nil
}

// DB returns the population database server for a region, instantiating it
// from a snapshot on first use.
func (p *Pipeline) DB(state string) (*popdb.Server, error) {
	net, err := p.Network(state)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if db, ok := p.dbs[state]; ok {
		return db, nil
	}
	// Snapshot round-trip: the paper instantiates DB snapshots at run
	// time to speed nightly start-up.
	db, err := popdb.NewServer(state, net.Persons, p.DBConnBound)
	if err != nil {
		return nil, err
	}
	snap, err := db.TakeSnapshot()
	if err != nil {
		return nil, err
	}
	db, err = popdb.FromSnapshot(snap, p.DBConnBound)
	if err != nil {
		return nil, err
	}
	p.dbs[state] = db
	return db, nil
}

// Truth returns the surveillance ground truth for a region.
func (p *Pipeline) Truth(state string) (*surveillance.StateTruth, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if t, ok := p.truth[state]; ok {
		return t, nil
	}
	st, err := synthpop.StateByCode(state)
	if err != nil {
		return nil, err
	}
	t, err := surveillance.GenerateState(st, surveillance.DefaultConfig(p.Seed))
	if err != nil {
		return nil, err
	}
	p.truth[state] = t
	return t, nil
}

// Params is one model configuration (cell) of a calibration or prediction
// design: the four parameters of the VA case study (Figure 15).
type Params struct {
	TAU           float64 // disease transmissibility ω
	SYMP          float64 // symptomatic fraction (Exposed → Presymptomatic prob)
	SHCompliance  float64 // stay-at-home compliance
	VHICompliance float64 // voluntary home isolation compliance
}

// ApplyToModel clones the COVID model with TAU and SYMP applied: TAU
// replaces the global transmissibility; SYMP rebalances the Exposed branch
// between the symptomatic and asymptomatic tracks.
func (pr Params) ApplyToModel(base *disease.Model) (*disease.Model, error) {
	if pr.TAU < 0 {
		return nil, fmt.Errorf("core: negative TAU %g", pr.TAU)
	}
	if pr.SYMP < 0 || pr.SYMP > 1 {
		return nil, fmt.Errorf("core: SYMP %g outside [0,1]", pr.SYMP)
	}
	m := base.Clone()
	m.Transmissibility = pr.TAU
	ts := m.Transitions(disease.Exposed)
	for i := range ts {
		var prob float64
		switch ts[i].To {
		case disease.Presymptomatic:
			prob = pr.SYMP
		case disease.Asymptomatic:
			prob = 1 - pr.SYMP
		default:
			continue
		}
		for ag := range ts[i].Prob {
			ts[i].Prob[ag] = prob
		}
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("core: params %+v produce invalid model: %w", pr, err)
	}
	return m, nil
}
