package core

import (
	"math"
	"testing"

	"repro/internal/capacity"
	"repro/internal/disease"
	"repro/internal/forecast"
	"repro/internal/surveillance"
	"repro/internal/synthpop"
	"repro/internal/transfer"
)

// TestCombinedWeeklyCycle exercises the full Figure 1 pipeline in one
// test: calibration → posterior → prediction → forecast scoring →
// capacity report → transfer accounting, on a coarse-scale Virginia.
func TestCombinedWeeklyCycle(t *testing.T) {
	if testing.Short() {
		t.Skip("combined cycle in short mode")
	}
	p := testPipeline(100)

	// --- Day 0–2: calibration (Figure 4) ---
	cal, err := p.RunCalibrationWorkflow(CalibrationConfig{
		State: "VA", Cells: 30, Days: 50,
		Steps: 500, BurnIn: 300, PosteriorSize: 12, Day: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cal.Posterior) == 0 {
		t.Fatal("no posterior configurations")
	}

	// --- Day 3–4: prediction from calibrated configs (Figure 5) ---
	configs := cal.Posterior
	if len(configs) > 4 {
		configs = configs[:4]
	}
	pred, err := p.RunPredictionWorkflow(PredictionConfig{
		State: "VA", Configs: configs, Replicates: 3, Days: 80, Day: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	// --- Forecast scoring: build hub-format forecasts from the ensemble
	// and score against the simulation ensemble's own median draws (a
	// calibration sanity check: the ensemble must cover itself).
	var samples []float64
	day := 70
	for _, s := range pred.Sims {
		samples = append(samples, s.Agg.StateConfirmedCumulative()[day])
	}
	f, err := forecast.FromSamples(samples)
	if err != nil {
		t.Fatal(err)
	}
	var card forecast.Scorecard
	for _, obs := range samples {
		card.Add(f, obs)
	}
	if c := card.Coverage95(); c < 0.8 {
		t.Fatalf("ensemble 95%% self-coverage %v", c)
	}
	if math.IsNaN(card.MeanWIS()) {
		t.Fatal("WIS NaN")
	}

	// --- Capacity report for the hospital referral regions ---
	va, _ := synthpop.StateByCode("VA")
	res := capacity.FromAHA(va)
	occ := make([]float64, 80)
	vent := make([]float64, 80)
	for d := 0; d < 80; d++ {
		prev := 0.0
		if d >= 7 {
			prev = pred.Hospitalized.Median[d-7]
		}
		occ[d] = (pred.Hospitalized.Median[d] - prev) * float64(p.Scale)
		vent[d] = occ[d] * 0.15
	}
	rep, err := capacity.Analyze(res, capacity.Demand{Hospitalized: occ, Ventilated: vent}, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakHospitalized < 0 {
		t.Fatal("negative peak")
	}

	// --- Transfer accounting across the whole cycle ---
	outBytes := p.Ledger.TotalBytes(transfer.HomeToRemote)
	inBytes := p.Ledger.TotalBytes(transfer.RemoteToHome)
	if outBytes == 0 || inBytes == 0 {
		t.Fatal("transfer ledger empty after a full cycle")
	}
	labels := p.Ledger.ByLabel()
	wantLabels := map[string]bool{
		"network-staging": false, "calibration-configs": false,
		"calibration-summaries": false, "prediction-configs": false,
		"prediction-summaries": false,
	}
	for _, lb := range labels {
		if _, ok := wantLabels[lb.Label]; ok {
			wantLabels[lb.Label] = true
		}
	}
	for label, seen := range wantLabels {
		if !seen {
			t.Fatalf("transfer label %q missing from ledger", label)
		}
	}
}

// TestSurveillanceSeededSimulation wires SeedsFromSurveillance into a run —
// the economic workflow's "county-level seeding derived from county-level
// confirmed case counts".
func TestSurveillanceSeededSimulation(t *testing.T) {
	p := testPipeline(101)
	// A hot ground truth so counts resolve at the coarse 1:40000 scale.
	va, _ := synthpop.StateByCode("VA")
	tcfg := surveillance.DefaultConfig(101)
	tcfg.AttackRate = 0.3
	truth, err := surveillance.GenerateState(va, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	net, err := p.Network("VA")
	if err != nil {
		t.Fatal(err)
	}
	seeds, err := SeedsFromSurveillance(truth, 150, 14, p.Scale, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Keep only seeds for counties that exist at this scale.
	present := map[int32]bool{}
	for _, person := range net.Persons {
		present[person.CountyFIPS] = true
	}
	kept := seeds[:0]
	for _, s := range seeds {
		if present[s.CountyFIPS] {
			kept = append(kept, s)
		}
	}
	if len(kept) == 0 {
		t.Skip("no seeded counties materialized at this scale")
	}
	job := SimJob{State: "VA", Params: Params{TAU: 0.2, SYMP: 0.65}, Days: 30}
	out, err := p.RunSim(job, 10, 30)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.TotalInfections == 0 && len(kept) > 0 {
		t.Log("note: default seeding used; surveillance seeds validated separately")
	}
}

// TestParamsGridMonotoneAttack checks the core response surface the
// calibration exploits: attack rate increases with TAU.
func TestParamsGridMonotoneAttack(t *testing.T) {
	p := testPipeline(102)
	attack := func(tau float64) float64 {
		total := 0.0
		for rep := 0; rep < 3; rep++ {
			job := SimJob{State: "VA", Cell: int(tau * 100), Replicate: rep,
				Params: Params{TAU: tau, SYMP: 0.65}, Days: 60}
			out, err := p.RunSim(job, 60, 60) // no interventions active
			if err != nil {
				t.Fatal(err)
			}
			net, _ := p.Network("VA")
			total += float64(out.Result.TotalInfections) / float64(net.NumNodes())
		}
		return total / 3
	}
	low := attack(0.08)
	high := attack(0.30)
	if high <= low {
		t.Fatalf("attack not monotone in TAU: %v at 0.08 vs %v at 0.30", low, high)
	}
	_ = disease.COVID19 // documentation anchor
}
