package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"slices"
	"sort"
	"sync"

	"repro/internal/disease"
	"repro/internal/epihiper"
	"repro/internal/obs"
	"repro/internal/output"
	"repro/internal/popdb"
	"repro/internal/synthpop"
)

// WhatIf is a future scenario the prediction workflow layers on top of the
// as-is calibrated configurations — "what if the stay-at-home order is
// lifted earlier; what if the mitigation compliance rate increases; what
// if testing and contact tracing are improved".
//
// Scenario semantics are counterfactual from a pivot date: history up to
// PivotDay is the shared as-is baseline (same seeds, same baseline
// intervention stack, common random numbers across scenarios), and the
// scenario's modified stack takes over at the pivot with the baseline
// stack's accumulated state handed across — a scenario can change the
// future, never the past. The shared prefix is what the workflow simulates
// once and snapshots; every scenario branches from the checkpoint.
type WhatIf struct {
	Name string
	// PivotDay is the day the scenario's interventions take effect; days
	// before it replay the as-is baseline. Zero or negative defaults to
	// the prediction's SHStart.
	PivotDay int
	// SHEndShift moves the stay-at-home expiry by this many days
	// (negative = lifted earlier).
	SHEndShift int
	// ComplianceScale multiplies SH and VHI compliance (>1 = better
	// adherence, capped at 1).
	ComplianceScale float64
	// AddTesting layers a TA intervention with the given daily detection.
	AddTesting float64
	// AddTracing layers contact tracing at the given distance (0 = none).
	AddTracing      int
	TraceDetectProb float64
}

// StandardWhatIfs returns the paper's three example scenarios.
func StandardWhatIfs() []WhatIf {
	return []WhatIf{
		{Name: "sh-lifted-2w-early", SHEndShift: -14},
		{Name: "compliance-up-25pct", ComplianceScale: 1.25},
		{Name: "test-and-trace", AddTesting: 0.3, AddTracing: 1, TraceDetectProb: 0.4},
	}
}

// pivot resolves the scenario's effective pivot day for a prediction
// config: default SHStart, clamped into [1, Days].
func (w WhatIf) pivot(cfg PredictionConfig) int {
	d := w.PivotDay
	if d <= 0 {
		d = cfg.SHStart
	}
	if d < 1 {
		d = 1
	}
	if d > cfg.Days {
		d = cfg.Days
	}
	return d
}

// apply builds the scenario's intervention stack for one configuration.
func (w WhatIf) apply(pr Params, shStart, shEnd int) (Params, []epihiper.Intervention) {
	scaled := pr
	if w.ComplianceScale > 0 {
		scaled.SHCompliance = minf(1, pr.SHCompliance*w.ComplianceScale)
		scaled.VHICompliance = minf(1, pr.VHICompliance*w.ComplianceScale)
	}
	end := shEnd + w.SHEndShift
	if end < shStart {
		end = shStart
	}
	ivs := []epihiper.Intervention{
		&epihiper.VoluntaryHomeIsolation{Compliance: scaled.VHICompliance, IsolationDays: 14},
		&epihiper.SchoolClosure{StartDay: shStart, EndDay: end},
		&epihiper.StayAtHome{StartDay: shStart + 15, EndDay: end, Compliance: scaled.SHCompliance},
	}
	if w.AddTesting > 0 {
		ivs = append(ivs, &epihiper.TestAndIsolate{DailyDetectRate: w.AddTesting, IsolationDays: 14})
	}
	if w.AddTracing > 0 {
		ivs = append(ivs, &epihiper.ContactTracing{
			Distance: w.AddTracing, DetectProb: w.TraceDetectProb,
			TraceCompliance: 0.8, IsolationDays: 14,
		})
	}
	return scaled, ivs
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// ScenarioOutcome is one what-if scenario's forecast next to the as-is
// baseline.
type ScenarioOutcome struct {
	Scenario  WhatIf
	Confirmed Forecast
	Deaths    Forecast
	// Sims lists the per-(cell, replicate) outputs behind the bands, in job
	// order — consumers (e.g. the fidelity router's training harvest) can
	// regroup them by Job.Cell.
	Sims []*SimOutput
}

// whatIfCheckpoint is one cached shared-prefix state: the serialized
// simulator snapshot at a pivot tick, the partial Result up to it, and the
// transition log to replay into each branch's aggregator. All three are
// read-only once stored — branches deep-copy on use (RunSuffix clones the
// Result; Restore fills branch-owned slabs; the log is only replayed).
type whatIfCheckpoint struct {
	tick int
	snap []byte
	res  *epihiper.Result
	log  []output.Transition
}

// checkpointCost approximates a checkpoint's resident bytes for the
// store's cost bound.
func checkpointCost(cp *whatIfCheckpoint) int64 {
	resBytes := int64(len(cp.res.Daily)) * int64(disease.NumStates) * 8
	return int64(len(cp.snap)) + int64(len(cp.log))*20 + resBytes
}

// snapshotKey content-addresses a shared prefix: SHA-256 over the pipeline
// fingerprint, the normalized prefix spec (everything that shapes the
// pre-pivot simulation), and the pivot tick.
func (p *Pipeline) snapshotKey(cfg PredictionConfig, pr Params, cell, rep, tick int) string {
	spec := fmt.Sprintf("state=%s;days=%d;shstart=%d;shend=%d;cell=%d;rep=%d;tau=%g;symp=%g;shc=%g;vhic=%g",
		cfg.State, cfg.Days, cfg.SHStart, cfg.SHEnd, cell, rep,
		pr.TAU, pr.SYMP, pr.SHCompliance, pr.VHICompliance)
	h := sha256.New()
	h.Write([]byte(p.Fingerprint()))
	h.Write([]byte{0})
	h.Write([]byte(spec))
	h.Write([]byte{0})
	fmt.Fprintf(h, "tick=%d", tick)
	return hex.EncodeToString(h.Sum(nil))
}

// RunWhatIfScenarios simulates the expanded configurations and returns one
// forecast per scenario, combined with the as-is predictions the caller
// already holds. Each scenario runs every configuration with the given
// replicates; the shared pre-pivot prefix of each (cell, replicate) is
// simulated once and every scenario branches from its snapshot.
func (p *Pipeline) RunWhatIfScenarios(cfg PredictionConfig, scenarios []WhatIf) ([]*ScenarioOutcome, error) {
	return p.RunWhatIfScenariosCtx(context.Background(), cfg, scenarios)
}

// RunWhatIfScenariosCtx is RunWhatIfScenarios under a context: work is
// dispatched in simulation-sized units and the dispatcher checks ctx, so
// cancellation costs at most the in-flight simulations.
func (p *Pipeline) RunWhatIfScenariosCtx(ctx context.Context, cfg PredictionConfig, scenarios []WhatIf) ([]*ScenarioOutcome, error) {
	return p.runWhatIf(ctx, cfg, scenarios, true)
}

// RunWhatIfScenariosUnshared runs the same analysis without prefix
// sharing: every scenario re-simulates its pre-pivot history from scratch
// (then swaps in the scenario stack at the pivot). Results are bit-identical
// to the shared path — it exists as the equivalence oracle and the
// before/after benchmark baseline.
func (p *Pipeline) RunWhatIfScenariosUnshared(ctx context.Context, cfg PredictionConfig, scenarios []WhatIf) ([]*ScenarioOutcome, error) {
	return p.runWhatIf(ctx, cfg, scenarios, false)
}

// whatIfWorkers bounds the branch fan-out (matching runJobs' job-level
// parallelism; each simulation additionally uses p.Parallelism units).
const whatIfWorkers = 4

func (p *Pipeline) runWhatIf(ctx context.Context, cfg PredictionConfig, scenarios []WhatIf, share bool) ([]*ScenarioOutcome, error) {
	if len(cfg.Configs) == 0 {
		return nil, fmt.Errorf("core: what-if analysis needs calibrated configs")
	}
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("core: no scenarios given")
	}
	if cfg.Replicates <= 0 {
		cfg.Replicates = 5
	}
	if cfg.Days <= 0 {
		cfg.Days = 120
	}
	if cfg.SHStart <= 0 {
		cfg.SHStart = 15
	}
	if cfg.SHEnd <= 0 {
		cfg.SHEnd = cfg.Days
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ctx, sp := obs.StartSpan(ctx, "core.whatif",
		obs.String("state", cfg.State),
		obs.Int("scenarios", int64(len(scenarios))),
		obs.Int("configs", int64(len(cfg.Configs))),
		obs.Int("replicates", int64(cfg.Replicates)),
		obs.Bool("prefix_shared", share))
	defer sp.End()
	net, err := p.Network(cfg.State)
	if err != nil {
		return nil, err
	}
	db, err := p.DB(cfg.State)
	if err != nil {
		return nil, err
	}
	var seeds []epihiper.Seeding
	for _, c := range topCounties(net, 1) {
		seeds = append(seeds, epihiper.Seeding{CountyFIPS: c, Day: 0, Count: 5})
	}

	// The sorted unique pivot ticks every (cell, replicate) prefix walk
	// must checkpoint.
	pivotSet := map[int]bool{}
	for _, sc := range scenarios {
		pivotSet[sc.pivot(cfg)] = true
	}
	pivots := make([]int, 0, len(pivotSet))
	for d := range pivotSet {
		pivots = append(pivots, d)
	}
	sort.Ints(pivots)

	reps := cfg.Replicates
	type repJob struct{ cell, rep int }
	repJobs := make([]repJob, 0, len(cfg.Configs)*reps)
	for ci := range cfg.Configs {
		for rep := 0; rep < reps; rep++ {
			repJobs = append(repJobs, repJob{cell: ci, rep: rep})
		}
	}

	// checkpoints[(cell, rep)][tick], pinned locally for the duration of
	// the call so LRU eviction cannot drop a checkpoint between the prefix
	// walk and the branch fan-out.
	checkpoints := make([]map[int]*whatIfCheckpoint, len(repJobs))

	runParallel := func(n int, f func(i int) error) error {
		workers := whatIfWorkers
		if workers > n {
			workers = n
		}
		jobs := make(chan int)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					errs[i] = f(i)
				}
			}()
		}
	dispatch:
		for i := 0; i < n; i++ {
			select {
			case jobs <- i:
			case <-ctx.Done():
				break dispatch
			}
		}
		close(jobs)
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}

	if share {
		// Phase 1: walk each (cell, replicate)'s shared prefix once,
		// checkpointing at every pivot tick not already cached.
		err := runParallel(len(repJobs), func(i int) error {
			j := repJobs[i]
			cps, err := p.ensureCheckpoints(ctx, cfg, net, db, seeds, j.cell, j.rep, pivots)
			if err != nil {
				return err
			}
			checkpoints[i] = cps
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	// Phase 2: fan the scenario branches out in parallel. Outputs land in
	// (scenario, cell, replicate) order regardless of scheduling.
	type branch struct{ si, ji int }
	branches := make([]branch, 0, len(scenarios)*len(repJobs))
	for si := range scenarios {
		for ji := range repJobs {
			branches = append(branches, branch{si: si, ji: ji})
		}
	}
	sims := make([][]*SimOutput, len(scenarios))
	for si := range sims {
		sims[si] = make([]*SimOutput, len(repJobs))
	}
	err = runParallel(len(branches), func(i int) error {
		b := branches[i]
		sc := scenarios[b.si]
		j := repJobs[b.ji]
		pr := cfg.Configs[j.cell]
		pivot := sc.pivot(cfg)
		scaled, ivs := sc.apply(pr, cfg.SHStart, cfg.SHEnd)
		model, err := scaled.ApplyToModel(disease.COVID19())
		if err != nil {
			return err
		}
		job := SimJob{State: cfg.State, Cell: j.cell, Replicate: j.rep, Params: scaled, Days: cfg.Days}
		agg := output.NewCountyAggregator(net, cfg.Days)
		simCfg := epihiper.Config{
			Model: model, Network: net, Days: cfg.Days,
			Parallelism: p.Parallelism,
			Seed:        p.Seed ^ jobSeed(job),
			Seeds:       seeds, Interventions: ivs,
			DB: db, Recorder: agg,
		}
		var res *epihiper.Result
		if share {
			cp := checkpoints[b.ji][pivot]
			if cp == nil {
				return fmt.Errorf("core: missing checkpoint for cell %d rep %d tick %d", j.cell, j.rep, pivot)
			}
			for _, t := range cp.log {
				agg.Record(int(t.Tick), t.PID, t.From, t.To, t.Infector)
			}
			sim, err := epihiper.NewFromSnapshot(simCfg, cp.snap)
			if err != nil {
				return err
			}
			res, err = sim.RunSuffix(cp.res)
			if err != nil {
				return err
			}
		} else {
			// From-scratch oracle: baseline history to the pivot, then the
			// scenario stack takes over with the state handed across — the
			// exact computation the snapshot path shortcuts.
			simCfg.Interventions = interventionsFor(pr, cfg.SHStart, cfg.SHEnd)
			sim, err := epihiper.New(simCfg)
			if err != nil {
				return err
			}
			prefixRes, err := sim.RunPrefix(pivot)
			if err != nil {
				return err
			}
			sim.SwapInterventions(ivs)
			res, err = sim.RunSuffix(prefixRes)
			if err != nil {
				return err
			}
		}
		sims[b.si][b.ji] = &SimOutput{Job: job, Result: res, Agg: agg}
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := make([]*ScenarioOutcome, 0, len(scenarios))
	for si, sc := range scenarios {
		so := &ScenarioOutcome{Scenario: sc}
		so.Confirmed = ensembleBand(sims[si], cfg.Days, func(s *SimOutput) []float64 {
			return s.Agg.StateConfirmedCumulative()
		})
		so.Deaths = ensembleBand(sims[si], cfg.Days, func(s *SimOutput) []float64 {
			return s.Agg.StateCumulative(disease.Dead)
		})
		so.Sims = sims[si]
		out = append(out, so)
	}
	return out, nil
}

// ensureCheckpoints returns the shared-prefix checkpoints of one
// (cell, replicate) at every pivot tick, simulating only the ticks the
// content-addressed store does not already hold: the walk resumes from the
// deepest cached checkpoint at or below the first missing tick and
// checkpoints forward.
func (p *Pipeline) ensureCheckpoints(ctx context.Context, cfg PredictionConfig,
	net *synthpop.Network, db *popdb.Server, seeds []epihiper.Seeding, cell, rep int, pivots []int,
) (map[int]*whatIfCheckpoint, error) {
	pr := cfg.Configs[cell]
	out := make(map[int]*whatIfCheckpoint, len(pivots))
	var missing []int
	for _, tick := range pivots {
		key := p.snapshotKey(cfg, pr, cell, rep, tick)
		if p.snapshots != nil {
			if cp, ok := p.snapshots.Get(key); ok {
				obs.Event(ctx, "snapshot.hit",
					obs.Int("cell", int64(cell)), obs.Int("replicate", int64(rep)),
					obs.Int("tick", int64(tick)), obs.String("key", key[:16]))
				out[tick] = cp
				continue
			}
			p.snapshots.RecordMiss()
		}
		obs.Event(ctx, "snapshot.miss",
			obs.Int("cell", int64(cell)), obs.Int("replicate", int64(rep)),
			obs.Int("tick", int64(tick)), obs.String("key", key[:16]))
		missing = append(missing, tick)
	}
	if len(missing) == 0 {
		return out, nil
	}
	// Resume from the deepest cached checkpoint below the first gap.
	var base *whatIfCheckpoint
	for _, tick := range pivots {
		if tick >= missing[0] {
			break
		}
		if cp := out[tick]; cp != nil {
			base = cp
		}
	}
	model, err := pr.ApplyToModel(disease.COVID19())
	if err != nil {
		return nil, err
	}
	job := SimJob{State: cfg.State, Cell: cell, Replicate: rep, Params: pr, Days: cfg.Days}
	log := &output.TransitionLog{}
	simCfg := epihiper.Config{
		Model: model, Network: net, Days: cfg.Days,
		Parallelism:   p.Parallelism,
		Seed:          p.Seed ^ jobSeed(job),
		Seeds:         seeds,
		Interventions: interventionsFor(pr, cfg.SHStart, cfg.SHEnd),
		DB:            db, Recorder: log,
	}
	var sim *epihiper.Sim
	var res *epihiper.Result
	if base != nil {
		log.Entries = slices.Clone(base.log)
		sim, err = epihiper.NewFromSnapshot(simCfg, base.snap)
		res = base.res
	} else {
		sim, err = epihiper.New(simCfg)
	}
	if err != nil {
		return nil, err
	}
	for _, tick := range missing {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err = sim.RunSegment(res, tick)
		if err != nil {
			return nil, err
		}
		snap, err := sim.Snapshot()
		if err != nil {
			return nil, err
		}
		cp := &whatIfCheckpoint{tick: tick, snap: snap, res: res, log: slices.Clone(log.Entries)}
		out[tick] = cp
		if p.snapshots != nil {
			p.snapshots.Put(p.snapshotKey(cfg, pr, cell, rep, tick), cp)
		}
	}
	return out, nil
}
