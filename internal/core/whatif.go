package core

import (
	"context"
	"fmt"

	"repro/internal/disease"
	"repro/internal/epihiper"
	"repro/internal/output"
)

// WhatIf is a future scenario the prediction workflow layers on top of the
// as-is calibrated configurations — "what if the stay-at-home order is
// lifted earlier; what if the mitigation compliance rate increases; what
// if testing and contact tracing are improved".
type WhatIf struct {
	Name string
	// SHEndShift moves the stay-at-home expiry by this many days
	// (negative = lifted earlier).
	SHEndShift int
	// ComplianceScale multiplies SH and VHI compliance (>1 = better
	// adherence, capped at 1).
	ComplianceScale float64
	// AddTesting layers a TA intervention with the given daily detection.
	AddTesting float64
	// AddTracing layers contact tracing at the given distance (0 = none).
	AddTracing      int
	TraceDetectProb float64
}

// StandardWhatIfs returns the paper's three example scenarios.
func StandardWhatIfs() []WhatIf {
	return []WhatIf{
		{Name: "sh-lifted-2w-early", SHEndShift: -14},
		{Name: "compliance-up-25pct", ComplianceScale: 1.25},
		{Name: "test-and-trace", AddTesting: 0.3, AddTracing: 1, TraceDetectProb: 0.4},
	}
}

// apply builds the scenario's intervention stack for one configuration.
func (w WhatIf) apply(pr Params, shStart, shEnd int) (Params, []epihiper.Intervention) {
	scaled := pr
	if w.ComplianceScale > 0 {
		scaled.SHCompliance = minf(1, pr.SHCompliance*w.ComplianceScale)
		scaled.VHICompliance = minf(1, pr.VHICompliance*w.ComplianceScale)
	}
	end := shEnd + w.SHEndShift
	if end < shStart {
		end = shStart
	}
	ivs := []epihiper.Intervention{
		&epihiper.VoluntaryHomeIsolation{Compliance: scaled.VHICompliance, IsolationDays: 14},
		&epihiper.SchoolClosure{StartDay: shStart, EndDay: end},
		&epihiper.StayAtHome{StartDay: shStart + 15, EndDay: end, Compliance: scaled.SHCompliance},
	}
	if w.AddTesting > 0 {
		ivs = append(ivs, &epihiper.TestAndIsolate{DailyDetectRate: w.AddTesting, IsolationDays: 14})
	}
	if w.AddTracing > 0 {
		ivs = append(ivs, &epihiper.ContactTracing{
			Distance: w.AddTracing, DetectProb: w.TraceDetectProb,
			TraceCompliance: 0.8, IsolationDays: 14,
		})
	}
	return scaled, ivs
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// ScenarioOutcome is one what-if scenario's forecast next to the as-is
// baseline.
type ScenarioOutcome struct {
	Scenario  WhatIf
	Confirmed Forecast
	Deaths    Forecast
}

// RunWhatIfScenarios simulates the expanded configurations and returns one
// forecast per scenario, combined with the as-is predictions the caller
// already holds. Each scenario runs every configuration with the given
// replicates.
func (p *Pipeline) RunWhatIfScenarios(cfg PredictionConfig, scenarios []WhatIf) ([]*ScenarioOutcome, error) {
	return p.RunWhatIfScenariosCtx(context.Background(), cfg, scenarios)
}

// RunWhatIfScenariosCtx is RunWhatIfScenarios under a context: the
// replicate loop checks ctx before each simulation, so cancellation costs
// at most one in-flight simulation.
func (p *Pipeline) RunWhatIfScenariosCtx(ctx context.Context, cfg PredictionConfig, scenarios []WhatIf) ([]*ScenarioOutcome, error) {
	if len(cfg.Configs) == 0 {
		return nil, fmt.Errorf("core: what-if analysis needs calibrated configs")
	}
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("core: no scenarios given")
	}
	if cfg.Replicates <= 0 {
		cfg.Replicates = 5
	}
	if cfg.Days <= 0 {
		cfg.Days = 120
	}
	if cfg.SHStart <= 0 {
		cfg.SHStart = 15
	}
	if cfg.SHEnd <= 0 {
		cfg.SHEnd = cfg.Days
	}
	net, err := p.Network(cfg.State)
	if err != nil {
		return nil, err
	}
	db, err := p.DB(cfg.State)
	if err != nil {
		return nil, err
	}
	var out []*ScenarioOutcome
	for _, sc := range scenarios {
		var sims []*SimOutput
		for ci, pr := range cfg.Configs {
			scaled, ivs := sc.apply(pr, cfg.SHStart, cfg.SHEnd)
			model, err := scaled.ApplyToModel(disease.COVID19())
			if err != nil {
				return nil, err
			}
			for rep := 0; rep < cfg.Replicates; rep++ {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				job := SimJob{State: cfg.State, Cell: ci, Replicate: rep, Params: scaled, Days: cfg.Days}
				var seeds []epihiper.Seeding
				for _, c := range topCounties(net, 1) {
					seeds = append(seeds, epihiper.Seeding{CountyFIPS: c, Day: 0, Count: 5})
				}
				agg := output.NewCountyAggregator(net, cfg.Days)
				sim, err := epihiper.New(epihiper.Config{
					Model: model, Network: net, Days: cfg.Days,
					Parallelism: p.Parallelism,
					Seed:        p.Seed ^ jobSeed(job) ^ hashName(sc.Name),
					Seeds:       seeds, Interventions: ivs,
					DB: db, Recorder: agg,
				})
				if err != nil {
					return nil, err
				}
				res, err := sim.Run()
				if err != nil {
					return nil, err
				}
				sims = append(sims, &SimOutput{Job: job, Result: res, Agg: agg})
			}
		}
		so := &ScenarioOutcome{Scenario: sc}
		so.Confirmed = ensembleBand(sims, cfg.Days, func(s *SimOutput) []float64 {
			return s.Agg.StateConfirmedCumulative()
		})
		so.Deaths = ensembleBand(sims, cfg.Days, func(s *SimOutput) []float64 {
			return s.Agg.StateCumulative(disease.Dead)
		})
		out = append(out, so)
	}
	return out, nil
}

func hashName(s string) uint64 {
	h := uint64(1469598103934665603)
	for _, c := range s {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}
