package core

import (
	"encoding/json"
	"runtime"
	"testing"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/transfer"
)

// smallSpec is a reduced prediction night (2 cells × 51 regions × 3
// replicates = 306 simulations) so fault-recovery tests stay fast.
func smallSpec() WorkflowSpec {
	return WorkflowSpec{Kind: Prediction, Cells: 2, States: 51, Replicates: 3,
		RawBytesPerSim: 100 * transfer.MB, SummaryBytesPerSim: 300 * transfer.KB}
}

func nightConstraints(p *Pipeline) (sched.Constraints, float64) {
	return sched.Constraints{
		TotalNodes: p.Remote.Nodes,
		DBBound:    sched.DefaultDBBounds(p.DBConnBound),
	}, p.Window.Seconds()
}

// A zero fault spec must reproduce the failure-free baseline bit for bit:
// the same floats as packing and executing directly, and nothing in the new
// accounting fields.
func TestZeroFaultSpecIsBitForBitBaseline(t *testing.T) {
	p := NewPipeline(31)
	cfg := NightConfig{Spec: smallSpec(), Seed: 31}
	rep, exec, err := p.ExecuteNight(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Re-derive the night the pre-fault way.
	w := sched.Workload{Cells: cfg.Spec.Cells, Replicates: cfg.Spec.Replicates,
		Time: sched.DefaultTimeModel(), MaxInterventionFactor: 4}
	tasks := w.Tasks(stats.NewRNG(cfg.Seed))
	c, deadline := nightConstraints(p)
	s, err := sched.FFDTDC(tasks, c)
	if err != nil {
		t.Fatal(err)
	}
	base, err := cluster.ExecuteBackfill(cluster.FlattenSchedule(s), c, deadline)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan != base.Makespan {
		t.Fatalf("makespan %v != baseline %v", rep.Makespan, base.Makespan)
	}
	if rep.Utilization != base.Utilization {
		t.Fatalf("utilization %v != baseline %v", rep.Utilization, base.Utilization)
	}
	if len(exec.Records) != len(base.Records) {
		t.Fatalf("%d records vs baseline %d", len(exec.Records), len(base.Records))
	}
	for i := range exec.Records {
		if exec.Records[i] != base.Records[i] {
			t.Fatalf("record %d diverges: %+v vs %+v", i, exec.Records[i], base.Records[i])
		}
	}
	if rep.Rounds != 1 || rep.Crashes != 0 || rep.DBRefusals != 0 || rep.Retries != 0 ||
		len(rep.Shed) != 0 || rep.WastedNodeSeconds != 0 || rep.TransferRetries != 0 {
		t.Fatalf("failure-free night carries fault accounting: %+v", rep)
	}
	if rep.Completed != rep.Tasks-rep.Unstarted {
		t.Fatalf("completed %d != tasks %d - unstarted %d", rep.Completed, rep.Tasks, rep.Unstarted)
	}
}

func TestFaultNightAccountingAndValidation(t *testing.T) {
	p := NewPipeline(32)
	cfg := NightConfig{
		Spec: smallSpec(), Seed: 32,
		Faults: faults.Spec{Seed: 9, TaskCrashProb: 0.1, DBRefusalProb: 0.05, TransferStallProb: 0.2},
	}
	rep, exec, err := p.ExecuteNight(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashes == 0 && rep.DBRefusals == 0 {
		t.Fatal("fault rates 0.1/0.05 injected nothing")
	}
	if rep.Retries == 0 || rep.Rounds < 2 {
		t.Fatalf("no recovery happened: retries %d rounds %d", rep.Retries, rep.Rounds)
	}
	// Every task ends in exactly one bucket.
	if rep.Completed+rep.Unstarted+len(rep.Shed) != rep.Tasks {
		t.Fatalf("task accounting broken: %d completed + %d unstarted + %d shed != %d tasks",
			rep.Completed, rep.Unstarted, len(rep.Shed), rep.Tasks)
	}
	if len(rep.Shed) != rep.ShedRetryExhausted+rep.ShedWindow {
		t.Fatalf("shed causes don't sum: %d != %d + %d",
			len(rep.Shed), rep.ShedRetryExhausted, rep.ShedWindow)
	}
	// The merged trace across all recovery rounds must still respect the
	// machine: node capacity, DB bounds and the window deadline.
	c, deadline := nightConstraints(p)
	if err := cluster.ValidateExecution(exec, c, deadline); err != nil {
		t.Fatal(err)
	}
	if rep.Crashes > 0 && rep.WastedNodeSeconds <= 0 {
		t.Fatal("crashes wasted no node-time")
	}
}

// The determinism regression of the ISSUE: the same seed must produce a
// byte-identical NightReport across independent runs and across
// GOMAXPROCS=1 vs the default.
func TestFaultyNightReportDeterministic(t *testing.T) {
	cfg := NightConfig{
		Spec: smallSpec(), Seed: 33,
		Faults: faults.Spec{Seed: 5, TaskCrashProb: 0.15, DBRefusalProb: 0.05, TransferStallProb: 0.3},
	}
	run := func() []byte {
		rep, err := NewPipeline(33).RunNight(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	first := run()
	if second := run(); string(first) != string(second) {
		t.Fatal("same seed, two runs, different reports")
	}
	prev := runtime.GOMAXPROCS(1)
	serial := run()
	runtime.GOMAXPROCS(prev)
	if string(first) != string(serial) {
		t.Fatal("GOMAXPROCS=1 changed the report")
	}
}

// Under heavy faults the night degrades by shedding — and what is shed is
// reported lowest priority first (high replicate indices lead).
func TestShedOrderedLowestPriorityFirst(t *testing.T) {
	p := NewPipeline(34)
	cfg := NightConfig{
		Spec: smallSpec(), Seed: 34,
		Faults:   faults.Spec{Seed: 2, TaskCrashProb: 0.6, DBRefusalProb: 0.2},
		Recovery: RecoveryPolicy{MaxRetries: 1},
	}
	rep, err := p.RunNight(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Shed) < 2 {
		t.Fatalf("crash prob 0.6 with 1 retry shed only %d tasks", len(rep.Shed))
	}
	for i := 0; i+1 < len(rep.Shed); i++ {
		if moreImportant(rep.Shed[i], rep.Shed[i+1]) {
			t.Fatalf("shed list not lowest-priority-first at %d: %+v before %+v",
				i, rep.Shed[i], rep.Shed[i+1])
		}
	}
	if rep.FitsWindow {
		t.Fatal("a night that shed work claims to fit the window")
	}
}

// MaxRetries < 0 disables requeueing: every failure sheds immediately.
func TestNegativeMaxRetriesDisablesRequeue(t *testing.T) {
	p := NewPipeline(35)
	cfg := NightConfig{
		Spec: smallSpec(), Seed: 35,
		Faults:   faults.Spec{Seed: 3, TaskCrashProb: 0.2},
		Recovery: RecoveryPolicy{MaxRetries: -1},
	}
	rep, err := p.RunNight(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries != 0 || rep.Rounds != 1 {
		t.Fatalf("requeueing not disabled: retries %d rounds %d", rep.Retries, rep.Rounds)
	}
	if rep.Crashes == 0 || rep.ShedRetryExhausted != rep.Crashes+rep.DBRefusals {
		t.Fatalf("failures not all shed: %+v", rep)
	}
}

func TestTransferRetriesAccounted(t *testing.T) {
	p := NewPipeline(36)
	cfg := NightConfig{
		Spec: smallSpec(), Seed: 36,
		Faults: faults.Spec{Seed: 8, TransferStallProb: 0.5},
	}
	rep, err := p.RunNight(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two transfers (configs out, summaries back) at stall prob 0.5 under a
	// deterministic hash: this seed stalls at least once.
	if rep.TransferRetries == 0 {
		t.Fatal("stall prob 0.5 retried nothing — adjust the fault seed if the hash changed")
	}
	if rep.Crashes != 0 || rep.DBRefusals != 0 || len(rep.Shed) != 0 {
		t.Fatalf("transfer-only faults leaked into task accounting: %+v", rep)
	}
}

func TestExecuteNightRejectsBadInput(t *testing.T) {
	p := NewPipeline(37)
	if _, err := p.RunNight(NightConfig{Spec: smallSpec(), Heuristic: "LPT"}); err == nil {
		t.Fatal("unknown heuristic accepted")
	}
	if _, err := p.RunNight(NightConfig{Spec: smallSpec(),
		Faults: faults.Spec{TaskCrashProb: 1.5}}); err == nil {
		t.Fatal("invalid fault spec accepted")
	}
}

// NFDT-DC nights recover through the same loop: retry rounds always use
// FFDT-DC backfill into the remaining window.
func TestLevelSyncNightRecovers(t *testing.T) {
	p := NewPipeline(38)
	cfg := NightConfig{
		Spec: smallSpec(), Heuristic: "NFDT-DC", Seed: 38,
		Faults: faults.Spec{Seed: 4, TaskCrashProb: 0.1},
	}
	rep, exec, err := p.ExecuteNight(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashes == 0 || rep.Rounds < 2 {
		t.Fatalf("no recovery: %+v", rep)
	}
	if rep.Completed+rep.Unstarted+len(rep.Shed) != rep.Tasks {
		t.Fatalf("task accounting broken: %+v", rep)
	}
	c, deadline := nightConstraints(p)
	if err := cluster.ValidateExecution(exec, c, deadline); err != nil {
		t.Fatal(err)
	}
}
