package core

// This file is the recovery layer of the nightly pipeline: the paper's
// production nights on Bridges hit node failures, database-connection
// exhaustion and transfer stalls inside the hard 10pm–8am window, and the
// team monitored and restarted work by hand. Here that loop is automated
// and deterministic: failed tasks are requeued with exponential backoff and
// rescheduled via FFDT-DC into the remaining window; transfers retry with
// jittered backoff through the ledger; and when the window cannot absorb
// every retry the night degrades gracefully by shedding replicates, lowest
// priority first, reporting exactly what was dropped.

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/transfer"
)

// RecoveryPolicy tunes the nightly retry/requeue/shed behaviour. Zero
// fields take the DefaultRecoveryPolicy values; a negative MaxRetries
// disables requeueing entirely (every failure sheds).
type RecoveryPolicy struct {
	// MaxRetries is the per-task requeue budget.
	MaxRetries int
	// BackoffBase is the wait in seconds before a task's first retry.
	BackoffBase float64
	// BackoffFactor multiplies the backoff on every further attempt.
	BackoffFactor float64
	// BackoffJitterFrac spreads each backoff multiplicatively by
	// [1, 1+frac) so requeued tasks do not re-collide.
	BackoffJitterFrac float64
	// Transfer bounds site-to-site transfer retries.
	Transfer transfer.RetryPolicy
}

// DefaultRecoveryPolicy returns the production-shaped defaults: three
// requeues with 2-minute doubling jittered backoff, five transfer attempts.
func DefaultRecoveryPolicy() RecoveryPolicy {
	return RecoveryPolicy{
		MaxRetries:        3,
		BackoffBase:       120,
		BackoffFactor:     2,
		BackoffJitterFrac: 0.5,
		Transfer:          transfer.DefaultRetryPolicy(),
	}
}

func (p RecoveryPolicy) withDefaults() RecoveryPolicy {
	d := DefaultRecoveryPolicy()
	switch {
	case p.MaxRetries == 0:
		p.MaxRetries = d.MaxRetries
	case p.MaxRetries < 0:
		p.MaxRetries = 0
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = d.BackoffBase
	}
	if p.BackoffFactor < 1 {
		p.BackoffFactor = d.BackoffFactor
	}
	if p.BackoffJitterFrac <= 0 {
		p.BackoffJitterFrac = d.BackoffJitterFrac
	}
	return p
}

// taskID identifies a task across requeues (sched.Task carries the sampled
// time, which stays fixed for a retried task, but identity is the triple).
type taskID struct {
	Region          string
	Cell, Replicate int
}

func tid(t sched.Task) taskID { return taskID{t.Region, t.Cell, t.Replicate} }

// moreImportant orders tasks for shedding decisions: replicate 0 of a cell
// carries the ensemble's signal, so low replicate indices outrank high
// ones; among equals a longer task outranks a shorter one (more sunk work
// to redo); region/cell break ties for determinism.
func moreImportant(a, b sched.Task) bool {
	if a.Replicate != b.Replicate {
		return a.Replicate < b.Replicate
	}
	if a.Time != b.Time {
		return a.Time > b.Time
	}
	if a.Region != b.Region {
		return a.Region < b.Region
	}
	return a.Cell < b.Cell
}

// retryItem is a requeued task waiting out its backoff.
type retryItem struct {
	task       sched.Task
	eligibleAt float64
}

// runNightRounds executes one night under the fault model with the
// recovery policy: round 1 runs the full workload under the configured
// heuristic; every later round reschedules the eligible retries via
// FFDT-DC + backfill into the remaining window. The merged ExecResult
// spans all rounds; failure/retry/shed accounting lands in the report.
// With a nil fault model this is exactly one failure-free round — the
// bit-for-bit baseline. Cancelling ctx interrupts the retry loop between
// scheduling passes and returns ctx.Err().
func (p *Pipeline) runNightRounds(ctx context.Context, cfg NightConfig, fm *faults.Model, tasks []sched.Task,
	constraints sched.Constraints, deadline float64, report *NightReport) (cluster.ExecResult, error) {

	if err := ctx.Err(); err != nil {
		return cluster.ExecResult{}, err
	}
	pol := cfg.Recovery.withDefaults()
	attempts := map[taskID]int{}
	var inj cluster.Injector
	if fm != nil {
		inj = func(t sched.Task) cluster.Fault {
			f := fm.Task(t.Region, t.Cell, t.Replicate, attempts[tid(t)])
			switch f.Kind {
			case faults.Crash:
				return cluster.Fault{Kind: cluster.FaultCrash, Frac: f.Frac}
			case faults.DBRefusal:
				return cluster.Fault{Kind: cluster.FaultDBRefused}
			}
			return cluster.Fault{}
		}
	}

	shed := func(t sched.Task, counter *int) {
		*counter++
		report.Shed = append(report.Shed, t)
		obs.Event(ctx, "task.shed",
			obs.String("region", t.Region),
			obs.Int("cell", int64(t.Cell)),
			obs.Int("replicate", int64(t.Replicate)))
	}

	// Round 1: the full workload under the configured heuristic.
	var merged cluster.ExecResult
	rctx, rsp := obs.StartSpan(ctx, "sim", obs.Int("round", 1))
	switch cfg.Heuristic {
	case "", "FFDT-DC":
		s, err := sched.FFDTDC(tasks, constraints)
		if err != nil {
			rsp.End()
			return cluster.ExecResult{}, err
		}
		merged, err = cluster.ExecuteBackfillOpts(cluster.FlattenSchedule(s), constraints,
			cluster.ExecOptions{Deadline: deadline, Injector: inj, Ctx: rctx})
		if err != nil {
			rsp.End()
			return cluster.ExecResult{}, err
		}
	case "NFDT-DC":
		s, err := sched.NFDTDC(tasks, constraints)
		if err != nil {
			rsp.End()
			return cluster.ExecResult{}, err
		}
		merged = cluster.ExecuteLevelSyncOpts(s, cluster.ExecOptions{Deadline: deadline, Injector: inj, Ctx: rctx})
	default:
		rsp.End()
		return cluster.ExecResult{}, fmt.Errorf("core: unknown heuristic %q", cfg.Heuristic)
	}
	obs.Event(rctx, "task.placed", obs.Int("count", int64(len(merged.Records))))
	rsp.SetAttr(obs.Int("placed", int64(len(merged.Records))), obs.Int("failed", int64(len(merged.Failed))))
	rsp.End()
	report.Rounds = 1

	// processFailures books each failure and either requeues the task with
	// jittered exponential backoff or sheds it (retry budget spent, or the
	// backoff pushes it past the point where it could still finish).
	var deferred []retryItem
	processFailures := func(failed []cluster.FaultRecord) {
		for _, f := range failed {
			switch f.Kind {
			case cluster.FaultCrash:
				report.Crashes++
			case cluster.FaultDBRefused:
				report.DBRefusals++
			}
			obs.Event(ctx, "fault.injected",
				obs.String("kind", f.Kind.String()),
				obs.String("region", f.Task.Region),
				obs.Int("cell", int64(f.Task.Cell)),
				obs.Int("replicate", int64(f.Task.Replicate)),
				obs.Int("attempt", int64(attempts[tid(f.Task)])))
			id := tid(f.Task)
			a := attempts[id] + 1 // attempts consumed so far
			attempts[id] = a
			if a > pol.MaxRetries {
				shed(f.Task, &report.ShedRetryExhausted)
				continue
			}
			backoff := pol.BackoffBase
			for i := 1; i < a; i++ {
				backoff *= pol.BackoffFactor
			}
			backoff *= 1 + pol.BackoffJitterFrac*fm.Jitter(f.Task.Region, f.Task.Cell, f.Task.Replicate, a)
			eligible := f.At + backoff
			if eligible+f.Task.Time > deadline {
				shed(f.Task, &report.ShedWindow)
				continue
			}
			report.Retries++
			obs.Event(ctx, "task.retried",
				obs.String("region", f.Task.Region),
				obs.Int("cell", int64(f.Task.Cell)),
				obs.Int("replicate", int64(f.Task.Replicate)),
				obs.Int("attempt", int64(a)),
				obs.Float("eligible_at", eligible))
			deferred = append(deferred, retryItem{task: f.Task, eligibleAt: eligible})
		}
	}
	processFailures(merged.Failed)
	now := merged.Makespan

	for len(deferred) > 0 {
		if err := ctx.Err(); err != nil {
			return cluster.ExecResult{}, err
		}
		// Next scheduling point: the cluster has drained the previous
		// round, and at least one retry must have served its backoff.
		minEligible := math.Inf(1)
		for _, r := range deferred {
			if r.eligibleAt < minEligible {
				minEligible = r.eligibleAt
			}
		}
		if minEligible > now {
			now = minEligible
		}
		if now >= deadline {
			for _, r := range deferred {
				shed(r.task, &report.ShedWindow)
			}
			break
		}
		var admitted []sched.Task
		rest := deferred[:0]
		for _, r := range deferred {
			if r.eligibleAt <= now {
				admitted = append(admitted, r.task)
			} else {
				rest = append(rest, r)
			}
		}
		deferred = rest

		// Admission control: the remaining window holds at most
		// (deadline − now) × nodes node-seconds. While the admitted work
		// exceeds that budget, shed the least important task — this is
		// the "degrade gracefully, lowest-priority replicates first" rule.
		sort.SliceStable(admitted, func(i, j int) bool { return moreImportant(admitted[i], admitted[j]) })
		budget := (deadline - now) * float64(constraints.TotalNodes)
		total := 0.0
		for _, t := range admitted {
			total += t.Time * float64(t.Nodes)
		}
		for len(admitted) > 0 && total > budget {
			last := admitted[len(admitted)-1]
			total -= last.Time * float64(last.Nodes)
			shed(last, &report.ShedWindow)
			admitted = admitted[:len(admitted)-1]
		}
		if len(admitted) == 0 {
			continue
		}

		// Reschedule via FFDT-DC into the remaining window — the recovery
		// path always uses the first-fit packing, whatever heuristic ran
		// round 1.
		rctx, rsp := obs.StartSpan(ctx, "sim",
			obs.Int("round", int64(report.Rounds+1)), obs.Float("start_at", now))
		s, err := sched.FFDTDC(admitted, constraints)
		if err != nil {
			rsp.End()
			return cluster.ExecResult{}, err
		}
		exec, err := cluster.ExecuteBackfillOpts(cluster.FlattenSchedule(s), constraints,
			cluster.ExecOptions{Deadline: deadline, StartAt: now, Injector: inj, Ctx: rctx})
		if err != nil {
			rsp.End()
			return cluster.ExecResult{}, err
		}
		obs.Event(rctx, "task.placed", obs.Int("count", int64(len(exec.Records))))
		rsp.SetAttr(obs.Int("placed", int64(len(exec.Records))), obs.Int("failed", int64(len(exec.Failed))))
		rsp.End()
		report.Rounds++
		merged.Records = append(merged.Records, exec.Records...)
		merged.Failed = append(merged.Failed, exec.Failed...)
		merged.BusyNodeSeconds += exec.BusyNodeSeconds
		merged.WastedNodeSeconds += exec.WastedNodeSeconds
		if exec.Makespan > merged.Makespan {
			merged.Makespan = exec.Makespan
		}
		// A retry the executor could not start is a retry the window
		// could not absorb.
		for _, t := range exec.Unstarted {
			shed(t, &report.ShedWindow)
		}
		processFailures(exec.Failed)
		if exec.Makespan > now {
			now = exec.Makespan
		}
	}

	// Report shed work lowest-priority first, deterministically.
	sort.SliceStable(report.Shed, func(i, j int) bool { return moreImportant(report.Shed[j], report.Shed[i]) })
	if merged.Makespan > 0 && constraints.TotalNodes > 0 {
		merged.Utilization = merged.BusyNodeSeconds / (merged.Makespan * float64(constraints.TotalNodes))
	}
	// Recovered = completed tasks that had at least one failed attempt —
	// what the requeue machinery actually saved.
	for _, r := range merged.Records {
		if attempts[tid(r.Task)] > 0 {
			report.Recovered++
		}
	}
	if p.FaultCounters != nil {
		p.FaultCounters.Recovered.Add(int64(report.Recovered))
		p.FaultCounters.Shed.Add(int64(len(report.Shed)))
	}
	return merged, nil
}
