package scenario

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTimedOutWaiterReleaseCancelsRun is the regression test for the
// interest-leak fix: a synchronous waiter whose context expires still holds
// an interest reference until it Releases; once it does, a running job with
// no other interested party must be cancelled rather than left occupying a
// worker forever.
func TestTimedOutWaiterReleaseCancelsRun(t *testing.T) {
	s, r := stubService(t, 1, 4)
	j, err := s.Submit(predSpec("VA", 10))
	if err != nil {
		t.Fatal(err)
	}
	<-r.started // running, gated

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := j.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait returned %v, want deadline exceeded", err)
	}
	// The waiter walked away: dropping its reference abandons the run.
	j.Release()
	waitState(t, j, StateCanceled)
	if _, err := j.Wait(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned job finished with %v, want canceled", err)
	}
	s.mu.Lock()
	_, still := s.inflight[j.Hash]
	s.mu.Unlock()
	if still {
		t.Fatal("terminal job still in the single-flight table")
	}
}

// TestSharedCountsExact pins the dedup bookkeeping: k extra submitters on a
// live hash leave Status().Shared == k and the deduped counter == k.
func TestSharedCountsExact(t *testing.T) {
	s, r := stubService(t, 1, 4)
	j, err := s.Submit(predSpec("VA", 10))
	if err != nil {
		t.Fatal(err)
	}
	<-r.started
	const k = 5
	for i := 0; i < k; i++ {
		dup, err := s.Submit(predSpec("VA", 10))
		if err != nil {
			t.Fatal(err)
		}
		if dup != j {
			t.Fatal("duplicate submission returned a different job")
		}
	}
	if got := j.Status().Shared; got != k {
		t.Fatalf("Shared = %d, want %d", got, k)
	}
	if snap := s.MetricsSnapshot(); snap.Deduped != k {
		t.Fatalf("deduped counter = %d, want %d", snap.Deduped, k)
	}
	r.releaseAll(1)
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k+1; i++ {
		j.Release()
	}
}

// TestDrainGraceReportsStuckRunners drives Drain against a runner that
// ignores cancellation: after the drain context expires and the post-cancel
// grace elapses, Drain must return a *DrainError naming the stuck hashes —
// and keep unwrapping to the context error so existing deadline checks hold.
func TestDrainGraceReportsStuckRunners(t *testing.T) {
	block := make(chan struct{})
	s := NewService(Config{
		Workers: 1, QueueCap: 4, Fingerprint: "test", DrainGrace: 50 * time.Millisecond,
		Runner: func(ctx context.Context, spec Spec) (*Result, error) {
			<-block // deliberately deaf to ctx
			return &Result{}, nil
		},
	})
	defer close(block)
	j, err := s.Submit(predSpec("VA", 10))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Release()
	waitState(t, j, StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err = s.Drain(ctx)
	var de *DrainError
	if !errors.As(err, &de) {
		t.Fatalf("Drain returned %v (%T), want *DrainError", err, err)
	}
	if len(de.Running) != 1 || de.Running[0] != j.Hash {
		t.Fatalf("DrainError.Running = %v, want [%s]", de.Running, j.Hash)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("DrainError does not unwrap to the drain context error: %v", err)
	}
}

// TestSubmitReleaseCancelChurnRace hammers the single-flight table from many
// goroutines mixing Submit, Wait, Release and Cancel on a handful of hashes
// while an auditor repeatedly asserts the core invariant: the inflight table
// never holds a job in a terminal state. Run under -race it doubles as the
// memory-model check for the queue hardening. Accounting must balance
// exactly: every successful Submit is a cache hit, a shared-store hit, a
// fresh submission, or a dedup attach.
func TestSubmitReleaseCancelChurnRace(t *testing.T) {
	s := NewService(Config{
		Workers: 2, QueueCap: 4, Fingerprint: "test", CacheCap: 2,
		Runner: func(ctx context.Context, spec Spec) (*Result, error) {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(100 * time.Microsecond):
				return &Result{}, nil
			}
		},
	})

	stop := make(chan struct{})
	var auditErr atomic.Value
	var auditWG sync.WaitGroup
	auditWG.Add(1)
	go func() {
		defer auditWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.mu.Lock()
			for h, j := range s.inflight {
				j.mu.Lock()
				if j.state != StateQueued && j.state != StateRunning {
					auditErr.Store(fmt.Sprintf("inflight[%s] in terminal state %s", h, j.state))
				}
				j.mu.Unlock()
			}
			s.mu.Unlock()
			time.Sleep(50 * time.Microsecond)
		}
	}()

	var ok, rejected atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				spec := predSpec("VA", 10+rng.Intn(4))
				j, err := s.Submit(spec)
				if err != nil {
					if errors.Is(err, ErrQueueFull) {
						rejected.Add(1)
						continue
					}
					auditErr.Store(fmt.Sprintf("submit: %v", err))
					return
				}
				ok.Add(1)
				switch rng.Intn(3) {
				case 0:
					ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
					_, _ = j.Wait(ctx)
					cancel()
				case 1:
					s.Cancel(j.Hash)
				}
				j.Release()
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	auditWG.Wait()
	if msg := auditErr.Load(); msg != nil {
		t.Fatal(msg)
	}

	snap := s.MetricsSnapshot()
	accounted := snap.Submitted + snap.Deduped + snap.SharedHits + snap.Cache.Hits
	if accounted != ok.Load() {
		t.Fatalf("accounting drift: submitted %d + deduped %d + shared %d + cache hits %d = %d, want %d successful submits",
			snap.Submitted, snap.Deduped, snap.SharedHits, snap.Cache.Hits, accounted, ok.Load())
	}
	if snap.Rejected != rejected.Load() {
		t.Fatalf("rejected counter %d, want %d", snap.Rejected, rejected.Load())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain after churn: %v", err)
	}
	s.mu.Lock()
	n := len(s.inflight)
	s.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d jobs left in the single-flight table after drain", n)
	}
}

// TestServerBackpressureStatusContract pins the HTTP backpressure semantics
// so operators and load balancers can rely on them: queue_full and shed are
// both 429 but carry distinct reasons and Retry-After hints, draining is
// 503, and an unknown priority is the client's fault (400).
func TestServerBackpressureStatusContract(t *testing.T) {
	ts, svc, r := testServer(t, 1, 8)

	decode := func(payload []byte) map[string]string {
		var body map[string]string
		if err := json.Unmarshal(payload, &body); err != nil {
			t.Fatalf("error body not JSON: %v (%s)", err, payload)
		}
		return body
	}

	// Occupy the worker, then fill the queue with normal traffic up to the
	// batch budget (queued >= (cap+1)/2 = 4 sheds batch; normal still in).
	if resp, _ := postSpec(t, ts, predSpec("VA", 10), ""); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	<-r.started
	for i := 0; i < 4; i++ {
		if resp, _ := postSpec(t, ts, predSpec("VA", 11+i), ""); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("fill %d status %d", i, resp.StatusCode)
		}
	}

	// Shed: batch class over budget on a half-full queue.
	resp, payload := postSpec(t, ts, predSpec("VA", 20), "?priority=batch")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("batch over budget: status %d want 429 (%s)", resp.StatusCode, payload)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "5" {
		t.Fatalf("shed Retry-After = %q, want 5", ra)
	}
	if body := decode(payload); body["reason"] != "shed" || body["priority"] != "batch" {
		t.Fatalf("shed body = %v", body)
	}

	// Queue full: interactive bypasses class budgets but not capacity.
	for i := 0; i < 4; i++ {
		if resp, _ := postSpec(t, ts, predSpec("VA", 30+i), "?priority=interactive"); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("interactive fill %d status %d", i, resp.StatusCode)
		}
	}
	resp, payload = postSpec(t, ts, predSpec("VA", 40), "?priority=interactive")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("hard-full: status %d want 429 (%s)", resp.StatusCode, payload)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("queue_full Retry-After = %q, want 1", ra)
	}
	if body := decode(payload); body["reason"] != "queue_full" {
		t.Fatalf("queue_full body = %v", body)
	}

	// Bad priority is a 400, not a shed.
	if resp, _ := postSpec(t, ts, predSpec("VA", 50), "?priority=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus priority status %d want 400", resp.StatusCode)
	}

	r.releaseAll(9) // 1 running + 4 normal + 4 interactive admitted above
	waitDrained := func() bool {
		q, run := svc.Loads()
		return q == 0 && run == 0
	}
	deadline := time.Now().Add(5 * time.Second)
	for !waitDrained() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	// Draining: flip the service into shutdown and submit once more.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, payload = postSpec(t, ts, predSpec("VA", 60), "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit status %d want 503 (%s)", resp.StatusCode, payload)
	}
	if body := decode(payload); body["reason"] != "draining" {
		t.Fatalf("draining body = %v", body)
	}
}

// TestServerReplicasEndpointSingleService pins that /replicas is absent on a
// plain single-service server (404), present only when the backend exposes
// cluster status.
func TestServerReplicasEndpointSingleService(t *testing.T) {
	svc, _ := stubService(t, 1, 4)
	ts := httptest.NewServer(NewServer(svc))
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/replicas")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/replicas on single service: status %d want 404", resp.StatusCode)
	}
}
