package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func testServer(t *testing.T, workers, queueCap int) (*httptest.Server, *Service, *stubRunner) {
	t.Helper()
	svc, r := stubService(t, workers, queueCap)
	ts := httptest.NewServer(NewServer(svc))
	t.Cleanup(ts.Close)
	return ts, svc, r
}

func postSpec(t *testing.T, ts *httptest.Server, spec Spec, query string) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/scenarios"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	payload, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, payload
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestServerEndToEnd is the acceptance scenario: two identical and one
// distinct submission race concurrently and produce exactly two pipeline
// executions (single-flight verified), a resubmission is served from the
// cache without a third execution, and /metrics reflects all of it.
func TestServerEndToEnd(t *testing.T) {
	ts, _, r := testServer(t, 2, 8)

	specA := Spec{Workflow: "prediction", State: "VA", Days: 42}
	specB := Spec{Workflow: "prediction", State: "RI", Days: 42}

	var wg sync.WaitGroup
	status := make([]int, 3)
	results := make([]Result, 3)
	for i, spec := range []Spec{specA, specA, specB} {
		wg.Add(1)
		go func(i int, spec Spec) {
			defer wg.Done()
			resp, payload := postSpec(t, ts, spec, "?wait=1")
			status[i] = resp.StatusCode
			if resp.StatusCode == http.StatusOK {
				if err := json.Unmarshal(payload, &results[i]); err != nil {
					t.Errorf("result %d: %v (%s)", i, err, payload)
				}
			}
		}(i, spec)
	}
	// Exactly two distinct specs reach the workers; release them once both
	// are blocked inside the runner.
	for i := 0; i < 2; i++ {
		select {
		case <-r.started:
		case <-time.After(5 * time.Second):
			t.Fatal("runs did not start")
		}
	}
	r.releaseAll(2)
	wg.Wait()

	for i, st := range status {
		if st != http.StatusOK {
			t.Fatalf("request %d status %d want 200", i, st)
		}
	}
	if got := r.runs.Load(); got != 2 {
		t.Fatalf("%d executions want exactly 2 (singleflight)", got)
	}
	if results[0].Hash != results[1].Hash || results[0].Hash == results[2].Hash {
		t.Fatalf("hashes wrong: %s %s %s", results[0].Hash, results[1].Hash, results[2].Hash)
	}

	// Resubmission of specA is a cache hit: still two executions.
	resp, payload := postSpec(t, ts, specA, "?wait=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached resubmit status %d: %s", resp.StatusCode, payload)
	}
	if got := r.runs.Load(); got != 2 {
		t.Fatalf("%d executions after cached resubmit want 2", got)
	}

	// GET result by content address.
	var fetched Result
	if code := getJSON(t, ts.URL+"/scenarios/"+results[0].Hash+"/result", &fetched); code != http.StatusOK {
		t.Fatalf("result fetch status %d", code)
	}
	if fetched.Hash != results[0].Hash {
		t.Fatalf("fetched hash %s want %s", fetched.Hash, results[0].Hash)
	}

	// /metrics reflects the whole story.
	var snap Snapshot
	if code := getJSON(t, ts.URL+"/metrics.json", &snap); code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if snap.Submitted != 2 {
		t.Fatalf("submitted %d want 2", snap.Submitted)
	}
	if snap.Deduped != 1 {
		t.Fatalf("deduped %d want 1 (second identical submission attached)", snap.Deduped)
	}
	if snap.Jobs["done"] != 2 {
		t.Fatalf("done %d want 2", snap.Jobs["done"])
	}
	if snap.Cache.Hits < 1 || snap.Cache.Misses != 2 {
		t.Fatalf("cache hits/misses %d/%d want ≥1/2", snap.Cache.Hits, snap.Cache.Misses)
	}
	if h := snap.Latency[WorkflowPrediction]; h.Count != 2 {
		t.Fatalf("latency count %d want 2", h.Count)
	}
}

// TestServerQueueFull429 verifies admission control: when the worker pool
// and the bounded queue are saturated, a further distinct submission sheds
// with 429 and the rejection lands in /metrics.
func TestServerQueueFull429(t *testing.T) {
	ts, _, r := testServer(t, 1, 1)
	// Saturate: one running (blocked in the runner) + one queued.
	if resp, payload := postSpec(t, ts, Spec{Workflow: "prediction", State: "VA", Days: 10}, ""); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1 status %d: %s", resp.StatusCode, payload)
	}
	<-r.started
	if resp, _ := postSpec(t, ts, Spec{Workflow: "prediction", State: "VA", Days: 11}, ""); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 2 status %d", resp.StatusCode)
	}
	resp, payload := postSpec(t, ts, Spec{Workflow: "prediction", State: "VA", Days: 12}, "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit status %d want 429: %s", resp.StatusCode, payload)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	var snap Snapshot
	getJSON(t, ts.URL+"/metrics.json", &snap)
	if snap.Rejected != 1 {
		t.Fatalf("rejected %d want 1", snap.Rejected)
	}
	if snap.QueueDepth != 1 || snap.Jobs["running"] != 1 {
		t.Fatalf("queue depth %d / running %d want 1/1", snap.QueueDepth, snap.Jobs["running"])
	}
	r.releaseAll(2)
}

// TestServerDisconnectCancelsJob verifies cancellation plumbing end to end:
// a synchronous submitter that disconnects drops the job's last interest
// reference, the context is cancelled through the pipeline layer, and the
// job lands in the canceled state.
func TestServerDisconnectCancelsJob(t *testing.T) {
	ts, svc, r := testServer(t, 1, 4)
	spec := Spec{Workflow: "prediction", State: "VA", Days: 33}
	ns, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	hash, err := ns.Hash("test")
	if err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(spec)
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/scenarios?wait=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-r.started // job is running, blocked in the runner
	cancel()    // client disconnects
	<-done

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if j, ok := svc.Lookup(hash); ok && j.Status().State == "canceled" {
			break
		}
		time.Sleep(time.Millisecond)
	}
	j, ok := svc.Lookup(hash)
	if !ok || j.Status().State != "canceled" {
		t.Fatalf("job after disconnect: ok=%v status=%+v", ok, j.Status())
	}
	var snap Snapshot
	getJSON(t, ts.URL+"/metrics.json", &snap)
	if snap.Jobs["canceled"] != 1 {
		t.Fatalf("canceled %d want 1", snap.Jobs["canceled"])
	}
	// The job never completed: no result, and polling reports canceled.
	code := getJSON(t, ts.URL+"/scenarios/"+hash+"/result", nil)
	if code != http.StatusConflict {
		t.Fatalf("result of canceled job status %d want 409", code)
	}
}

func TestServerStatusAndCancelEndpoints(t *testing.T) {
	ts, _, r := testServer(t, 1, 4)
	resp, payload := postSpec(t, ts, Spec{Workflow: "prediction", State: "VA", Days: 21}, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var st JobStatus
	if err := json.Unmarshal(payload, &st); err != nil {
		t.Fatal(err)
	}
	<-r.started

	// Poll while running.
	var polled JobStatus
	if code := getJSON(t, ts.URL+"/scenarios/"+st.ID, &polled); code != http.StatusOK {
		t.Fatalf("status poll %d", code)
	}
	if polled.State != "running" {
		t.Fatalf("state %s want running", polled.State)
	}
	// Result before completion → 202 with status payload.
	if code := getJSON(t, ts.URL+"/scenarios/"+st.ID+"/result", nil); code != http.StatusAccepted {
		t.Fatalf("early result %d want 202", code)
	}

	// DELETE cancels the pinned job.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/scenarios/"+st.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", dresp.StatusCode)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if code := getJSON(t, ts.URL+"/scenarios/"+st.ID+"/result", nil); code == http.StatusConflict {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Unknown IDs 404 on all job routes.
	if code := getJSON(t, ts.URL+"/scenarios/doesnotexist", nil); code != http.StatusNotFound {
		t.Fatalf("unknown status %d want 404", code)
	}
	if code := getJSON(t, ts.URL+"/scenarios/doesnotexist/result", nil); code != http.StatusNotFound {
		t.Fatalf("unknown result %d want 404", code)
	}

	// Bad specs 400.
	if resp, _ := postSpec(t, ts, Spec{Workflow: "bogus"}, ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec status %d want 400", resp.StatusCode)
	}
	badBody, _ := http.Post(ts.URL+"/scenarios", "application/json", bytes.NewReader([]byte("{not json")))
	if badBody.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json status %d want 400", badBody.StatusCode)
	}
	badBody.Body.Close()
}

func TestServerHealthzAndDraining(t *testing.T) {
	svc, _ := stubService(t, 1, 2)
	ts := httptest.NewServer(NewServer(svc))
	defer ts.Close()
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz %d want 200", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz %d want 503", code)
	}
	resp, _ := postSpec(t, ts, Spec{Workflow: "prediction", State: "VA"}, "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining %d want 503", resp.StatusCode)
	}
}

// TestServerRealPipeline runs the service over a real core.Pipeline: one
// prediction, one what-if and one night scenario end to end through HTTP,
// with the prediction resubmitted to verify the cached result is served
// byte-identical (determinism makes caching sound).
func TestServerRealPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("real pipeline service in short mode")
	}
	p := core.NewPipeline(77, core.WithScale(40000), core.WithParallelism(2))
	svc := NewService(Config{Pipeline: p, Workers: 2, QueueCap: 8, CacheCap: 8})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = svc.Drain(ctx)
	})
	ts := httptest.NewServer(NewServer(svc))
	t.Cleanup(ts.Close)

	pred := Spec{
		Workflow: "prediction", State: "RI", Days: 30, Replicates: 2,
		Configs: []ParamSpec{{TAU: 0.22, SYMP: 0.6, SHCompliance: 0.4, VHICompliance: 0.4}},
	}
	resp, payload := postSpec(t, ts, pred, "?wait=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prediction status %d: %s", resp.StatusCode, payload)
	}
	var res Result
	if err := json.Unmarshal(payload, &res); err != nil {
		t.Fatal(err)
	}
	if res.Prediction == nil || len(res.Prediction.Confirmed.Median) != 30 {
		t.Fatalf("prediction result malformed: %+v", res.Prediction)
	}
	if res.Prediction.Confirmed.Median[29] <= 0 {
		t.Fatal("no predicted cases")
	}

	// Cached resubmit returns the identical payload.
	resp2, payload2 := postSpec(t, ts, pred, "?wait=1")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("cached status %d", resp2.StatusCode)
	}
	if !bytes.Equal(payload, payload2) {
		t.Fatal("cached result differs from computed result")
	}

	whatif := Spec{
		Workflow: "whatif", State: "RI", Days: 25, Replicates: 1,
		Configs: []ParamSpec{{TAU: 0.22, SYMP: 0.6, SHCompliance: 0.4, VHICompliance: 0.4}},
		WhatIfs: []WhatIfSpec{{Name: "sh-lifted-1w-early", SHEndShift: -7}},
	}
	resp, payload = postSpec(t, ts, whatif, "?wait=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("whatif status %d: %s", resp.StatusCode, payload)
	}
	var wres Result
	if err := json.Unmarshal(payload, &wres); err != nil {
		t.Fatal(err)
	}
	if len(wres.Scenarios) != 1 || wres.Scenarios[0].Name != "sh-lifted-1w-early" {
		t.Fatalf("whatif result malformed: %+v", wres.Scenarios)
	}
	if len(wres.Scenarios[0].Confirmed.Median) != 25 {
		t.Fatalf("whatif horizon %d want 25", len(wres.Scenarios[0].Confirmed.Median))
	}

	night := Spec{Workflow: "night", Night: &NightSpec{Family: "prediction", Cells: 4, Replicates: 3}}
	resp, payload = postSpec(t, ts, night, "?wait=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("night status %d: %s", resp.StatusCode, payload)
	}
	var nres Result
	if err := json.Unmarshal(payload, &nres); err != nil {
		t.Fatal(err)
	}
	if nres.Night == nil || nres.Night.Tasks == 0 || nres.Night.Makespan <= 0 {
		t.Fatalf("night result malformed: %+v", nres.Night)
	}

	var snap Snapshot
	getJSON(t, ts.URL+"/metrics.json", &snap)
	if snap.Jobs["done"] != 3 {
		t.Fatalf("done %d want 3", snap.Jobs["done"])
	}
	for _, wf := range []string{WorkflowPrediction, WorkflowWhatIf, WorkflowNight} {
		if snap.Latency[wf].Count != 1 {
			t.Fatalf("latency[%s] count %d want 1", wf, snap.Latency[wf].Count)
		}
	}
}

// TestServerMetricsPrometheus verifies /metrics serves the unified registry
// in Prometheus text exposition while the pre-existing JSON shape stays
// reachable at /metrics.json.
func TestServerMetricsPrometheus(t *testing.T) {
	ts, _, _ := testServer(t, 1, 4)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE epi_scenario_queue_capacity gauge",
		"epi_scenario_queue_capacity 4",
		"# TYPE epi_scenario_workers gauge",
		"# TYPE epi_scenario_submitted_total counter",
		"epi_scenario_cache_capacity",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in exposition:\n%s", want, text)
		}
	}
	var snap Snapshot
	if code := getJSON(t, ts.URL+"/metrics.json", &snap); code != http.StatusOK {
		t.Fatalf("json metrics status %d", code)
	}
	if snap.QueueCapacity != 4 {
		t.Fatalf("legacy snapshot queue capacity = %d, want 4", snap.QueueCapacity)
	}
}
