package scenario

import (
	"strings"
	"testing"
)

// TestShardsHintNeverSplitsCache pins the cache-key invariance of the
// shards execution hint: the engine is bit-identical at any shard count,
// so two specs differing only in "shards" denote the same computation and
// must share one content address (and the canonical form must not mention
// the field at all).
func TestShardsHintNeverSplitsCache(t *testing.T) {
	base, err := Spec{Workflow: "prediction", State: "VA", Days: 60}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	href, err := base.Hash("fp")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 4, 8, 256} {
		s, err := Spec{Workflow: "prediction", State: "VA", Days: 60, Shards: n}.Normalize()
		if err != nil {
			t.Fatalf("shards=%d: %v", n, err)
		}
		if s.Shards != 0 {
			t.Fatalf("shards=%d survived normalization", s.Shards)
		}
		canon, err := s.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(canon), "shards") {
			t.Fatalf("canonical JSON leaked the execution hint: %s", canon)
		}
		h, err := s.Hash("fp")
		if err != nil {
			t.Fatal(err)
		}
		if h != href {
			t.Fatalf("shards=%d changed the content address: %s != %s", n, h, href)
		}
	}
	for _, n := range []int{-1, 257, 1 << 20} {
		if _, err := (Spec{Workflow: "prediction", State: "VA", Shards: n}).Normalize(); err == nil {
			t.Fatalf("shards=%d: want validation error", n)
		}
	}
}
