package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// benchBackend is one serving stack (pipeline, service, HTTP server) for the
// overhead benchmark, with or without the observability layer.
type benchBackend struct {
	svc *Service
	srv http.Handler
}

func newBenchBackend(traced bool) *benchBackend {
	p := core.NewPipeline(77, core.WithScale(40000), core.WithParallelism(2))
	reg := obs.NewRegistry()
	svc := NewService(Config{
		Pipeline: p, Workers: 2, QueueCap: 64, CacheCap: 8, Registry: reg,
	})
	var so *ServingObs
	if traced {
		so = NewServingObs(reg, ServingObsConfig{
			RecorderCapacity: 256, SLOTarget: time.Second,
		})
	}
	return &benchBackend{svc: svc, srv: NewServer(svc, so)}
}

// submit drives one synchronous real-pipeline prediction through the serving
// path, in-process (no sockets). tau wiggles per call so every request is a
// cache miss and carries the complete path: admission, queue wait, job run.
func (bb *benchBackend) submit(b *testing.B, i int) {
	spec := Spec{
		Workflow: WorkflowPrediction, State: "RI", Days: 120, Replicates: 4,
		Configs: []ParamSpec{{
			TAU:  0.16 + float64(i%100000)*1e-7,
			SYMP: 0.65, SHCompliance: 0.6, VHICompliance: 0.5,
		}},
	}
	body, err := json.Marshal(spec)
	if err != nil {
		b.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/scenarios?wait=1", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	bb.srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("status %d at iteration %d", rec.Code, i)
	}
}

// BenchmarkServingObsOverhead prices the request-scoped observability layer
// on the serving path — the PR 5 overhead discipline applied to the serving
// tier. Two identical real-pipeline stacks serve alternating requests: one
// with the layer absent (nil ServingObs — the exact pre-layer handler
// chain), one fully on (per-request trace, flight recorder, RED series, SLO
// burn tracking). Requests alternate between the stacks within a single
// timed loop so that machine drift lands on both arms equally; the reported
// ns/req-off, ns/req-on and overhead-pct metrics are the paired comparison.
// Budget: overhead-pct ≤ 3 — the layer's fixed per-request cost is tens of
// microseconds against a milliseconds-scale engine run (see DESIGN.md §18).
func BenchmarkServingObsOverhead(b *testing.B) {
	off := newBenchBackend(false)
	on := newBenchBackend(true)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = off.svc.Drain(ctx)
		_ = on.svc.Drain(ctx)
	}()
	// Symmetric warmup so first-touch costs stay out of the timed loop.
	for i := 0; i < 4; i++ {
		off.submit(b, i)
		on.submit(b, i)
	}

	offSamples := make([]time.Duration, 0, b.N/2+1)
	onSamples := make([]time.Duration, 0, b.N/2+1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if i%2 == 0 {
			off.submit(b, i)
			offSamples = append(offSamples, time.Since(start))
		} else {
			on.submit(b, i)
			onSamples = append(onSamples, time.Since(start))
		}
	}
	b.StopTimer()
	if len(offSamples) > 0 && len(onSamples) > 0 {
		perOff := trimmedMeanNS(offSamples)
		perOn := trimmedMeanNS(onSamples)
		b.ReportMetric(perOff, "ns/req-off")
		b.ReportMetric(perOn, "ns/req-on")
		b.ReportMetric((perOn-perOff)/perOff*100, "overhead-pct")
	}
}

// trimmedMeanNS averages the middle 60% of the samples: GC cycles and
// scheduler hiccups land on whichever request happens to be in flight, so
// the tails carry cross-arm noise, not signal.
func trimmedMeanNS(samples []time.Duration) float64 {
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	lo, hi := len(sorted)/5, len(sorted)-len(sorted)/5
	var sum time.Duration
	for _, d := range sorted[lo:hi] {
		sum += d
	}
	return float64(sum.Nanoseconds()) / float64(hi-lo)
}
