package scenario

import (
	"math"
	"sync"

	"repro/internal/obs"
)

// latencyBounds are the histogram bucket upper bounds in seconds; the last
// implicit bucket is +Inf. The range spans sub-millisecond stub runs up to
// multi-minute full-scale workflows.
var latencyBounds = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 120, 300, 600,
}

// HistogramBucket is one cumulative histogram bucket.
type HistogramBucket struct {
	// LE is the bucket's inclusive upper bound in seconds; the last bucket
	// reports +Inf as 0 with Inf set.
	LE    float64 `json:"le"`
	Inf   bool    `json:"inf,omitempty"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is a point-in-time cumulative view.
type HistogramSnapshot struct {
	Count      int64             `json:"count"`
	SumSeconds float64           `json:"sum_seconds"`
	Buckets    []HistogramBucket `json:"buckets"`
}

// fromObs converts an obs histogram snapshot to the JSON shape this
// package's /metrics.json payload has always served.
func fromObs(s obs.HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{Count: s.Count, SumSeconds: s.Sum}
	for i, cum := range s.CumCounts {
		b := HistogramBucket{Count: cum}
		if i < len(s.Bounds) && !math.IsInf(s.Bounds[i], 1) {
			b.LE = s.Bounds[i]
		} else {
			b.Inf = true
		}
		out.Buckets = append(out.Buckets, b)
	}
	return out
}

// Metrics aggregates the service counters on a shared obs.Registry — the
// histogram machinery this package used to carry privately now lives in
// internal/obs, so the same series surface both on the legacy JSON snapshot
// and on the unified Prometheus /metrics endpoint.
type Metrics struct {
	reg        *obs.Registry
	submitted  *obs.Counter
	rejected   *obs.Counter
	deduped    *obs.Counter
	shed       *obs.Counter
	sharedHits *obs.Counter

	mu      sync.Mutex
	latency map[string]*obs.Histogram // by workflow, for snapshot enumeration
}

// NewMetrics builds the service metrics over a registry; nil allocates a
// private one.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	reg.Help("epi_scenario_submitted_total", "scenario jobs admitted to the queue")
	reg.Help("epi_scenario_rejected_total", "scenario submissions shed by backpressure")
	reg.Help("epi_scenario_deduped_total", "submissions attached to an identical in-flight job")
	reg.Help("epi_scenario_shed_total", "submissions shed by priority-class admission control")
	reg.Help("epi_scenario_shared_hits_total", "results forwarded from the peer-shared store")
	reg.Help("epi_scenario_latency_seconds", "scenario run latency by workflow")
	return &Metrics{
		reg:        reg,
		submitted:  reg.Counter("epi_scenario_submitted_total"),
		rejected:   reg.Counter("epi_scenario_rejected_total"),
		deduped:    reg.Counter("epi_scenario_deduped_total"),
		shed:       reg.Counter("epi_scenario_shed_total"),
		sharedHits: reg.Counter("epi_scenario_shared_hits_total"),
		latency:    map[string]*obs.Histogram{},
	}
}

// Registry returns the backing registry (for exposition and for wiring
// further gauges onto the same endpoint).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

func (m *Metrics) incSubmitted() { m.submitted.Inc() }
func (m *Metrics) incRejected()  { m.rejected.Inc() }
func (m *Metrics) incDeduped()   { m.deduped.Inc() }
func (m *Metrics) incShed()      { m.shed.Inc() }
func (m *Metrics) incSharedHit() { m.sharedHits.Inc() }

// observeLatency books one completed run of the given workflow.
func (m *Metrics) observeLatency(workflow string, seconds float64) {
	m.mu.Lock()
	h, ok := m.latency[workflow]
	if !ok {
		h = m.reg.Histogram(`epi_scenario_latency_seconds{workflow="`+workflow+`"}`, latencyBounds)
		m.latency[workflow] = h
	}
	m.mu.Unlock()
	h.Observe(seconds)
}

// Snapshot is the /metrics.json payload.
type Snapshot struct {
	QueueDepth    int   `json:"queue_depth"`
	QueueCapacity int   `json:"queue_capacity"`
	Workers       int   `json:"workers"`
	Draining      bool  `json:"draining"`
	Submitted     int64 `json:"submitted"`
	// Rejected counts 429 backpressure shed at admission.
	Rejected int64 `json:"rejected"`
	// Deduped counts submissions that attached to an identical in-flight
	// job (single-flight sharing).
	Deduped int64 `json:"deduped"`
	// Shed counts submissions refused by priority-class admission control
	// while spare queue capacity remained (distinct from Rejected).
	Shed int64 `json:"shed"`
	// SharedHits counts results served from the peer-shared store rather
	// than recomputed locally.
	SharedHits int64 `json:"shared_hits"`
	// Jobs by state: queued and running are live gauges; done, failed and
	// canceled are lifetime totals.
	Jobs  map[string]int64 `json:"jobs"`
	Cache CacheStats       `json:"cache"`
	// Latency holds one cumulative histogram per workflow.
	Latency map[string]HistogramSnapshot `json:"latency"`
}

// counters returns the scalar counters and per-workflow histograms.
func (m *Metrics) counters() (submitted, rejected, deduped, shed, sharedHits int64, latency map[string]HistogramSnapshot) {
	m.mu.Lock()
	defer m.mu.Unlock()
	latency = make(map[string]HistogramSnapshot, len(m.latency))
	for k, h := range m.latency {
		latency[k] = fromObs(h.Snapshot())
	}
	return m.submitted.Value(), m.rejected.Value(), m.deduped.Value(),
		m.shed.Value(), m.sharedHits.Value(), latency
}
