package scenario

import (
	"sort"
	"sync"
)

// latencyBounds are the histogram bucket upper bounds in seconds; the last
// implicit bucket is +Inf. The range spans sub-millisecond stub runs up to
// multi-minute full-scale workflows.
var latencyBounds = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 120, 300, 600,
}

// Histogram is a fixed-bucket latency histogram.
type Histogram struct {
	counts []int64 // len(latencyBounds)+1; last bucket is +Inf
	sum    float64
	n      int64
}

func newHistogram() *Histogram {
	return &Histogram{counts: make([]int64, len(latencyBounds)+1)}
}

// observe books one duration in seconds. Caller holds the metrics lock.
func (h *Histogram) observe(seconds float64) {
	i := sort.SearchFloat64s(latencyBounds, seconds)
	h.counts[i]++
	h.sum += seconds
	h.n++
}

// HistogramBucket is one cumulative histogram bucket.
type HistogramBucket struct {
	// LE is the bucket's inclusive upper bound in seconds; the last bucket
	// reports +Inf as 0 with Inf set.
	LE    float64 `json:"le"`
	Inf   bool    `json:"inf,omitempty"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is a point-in-time cumulative view.
type HistogramSnapshot struct {
	Count      int64             `json:"count"`
	SumSeconds float64           `json:"sum_seconds"`
	Buckets    []HistogramBucket `json:"buckets"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.n, SumSeconds: h.sum}
	var cum int64
	for i, c := range h.counts {
		cum += c
		b := HistogramBucket{Count: cum}
		if i < len(latencyBounds) {
			b.LE = latencyBounds[i]
		} else {
			b.Inf = true
		}
		s.Buckets = append(s.Buckets, b)
	}
	return s
}

// Metrics aggregates the service counters. Gauges that live elsewhere
// (queue depth, cache stats, jobs by state) are merged into the snapshot by
// the service.
type Metrics struct {
	mu        sync.Mutex
	submitted int64
	rejected  int64
	deduped   int64
	latency   map[string]*Histogram
}

// NewMetrics builds an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{latency: map[string]*Histogram{}}
}

func (m *Metrics) incSubmitted() { m.mu.Lock(); m.submitted++; m.mu.Unlock() }
func (m *Metrics) incRejected()  { m.mu.Lock(); m.rejected++; m.mu.Unlock() }
func (m *Metrics) incDeduped()   { m.mu.Lock(); m.deduped++; m.mu.Unlock() }

// observeLatency books one completed run of the given workflow.
func (m *Metrics) observeLatency(workflow string, seconds float64) {
	m.mu.Lock()
	h, ok := m.latency[workflow]
	if !ok {
		h = newHistogram()
		m.latency[workflow] = h
	}
	h.observe(seconds)
	m.mu.Unlock()
}

// Snapshot is the /metrics payload.
type Snapshot struct {
	QueueDepth    int   `json:"queue_depth"`
	QueueCapacity int   `json:"queue_capacity"`
	Workers       int   `json:"workers"`
	Draining      bool  `json:"draining"`
	Submitted     int64 `json:"submitted"`
	// Rejected counts 429 backpressure shed at admission.
	Rejected int64 `json:"rejected"`
	// Deduped counts submissions that attached to an identical in-flight
	// job (single-flight sharing).
	Deduped int64 `json:"deduped"`
	// Jobs by state: queued and running are live gauges; done, failed and
	// canceled are lifetime totals.
	Jobs  map[string]int64 `json:"jobs"`
	Cache CacheStats       `json:"cache"`
	// Latency holds one cumulative histogram per workflow.
	Latency map[string]HistogramSnapshot `json:"latency"`
}

// counters returns the scalar counters and per-workflow histograms.
func (m *Metrics) counters() (submitted, rejected, deduped int64, latency map[string]HistogramSnapshot) {
	m.mu.Lock()
	defer m.mu.Unlock()
	latency = make(map[string]HistogramSnapshot, len(m.latency))
	for k, h := range m.latency {
		latency[k] = h.snapshot()
	}
	return m.submitted, m.rejected, m.deduped, latency
}
