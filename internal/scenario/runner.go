package scenario

import (
	"context"
	"fmt"

	"repro/internal/core"
)

// PipelineRunner executes normalized specs against the shared pipeline's
// three production workflows. The pipeline memoizes networks, population
// databases and ground truth internally, so concurrent jobs for the same
// region share substrates.
func PipelineRunner(p *core.Pipeline) Runner {
	return func(ctx context.Context, spec Spec) (*Result, error) {
		if p == nil {
			return nil, fmt.Errorf("scenario: no pipeline configured")
		}
		switch spec.Workflow {
		case WorkflowPrediction:
			return runPrediction(ctx, p, spec)
		case WorkflowWhatIf:
			return runWhatIf(ctx, p, spec)
		case WorkflowNight:
			return runNight(ctx, p, spec)
		default:
			return nil, fmt.Errorf("scenario: unknown workflow %q", spec.Workflow)
		}
	}
}

func predictionConfig(spec Spec) core.PredictionConfig {
	cfg := core.PredictionConfig{
		State: spec.State, Replicates: spec.Replicates, Days: spec.Days,
		SHStart: spec.SHStart, SHEnd: spec.SHEnd,
	}
	for _, c := range spec.Configs {
		cfg.Configs = append(cfg.Configs, c.toCore())
	}
	return cfg
}

func runPrediction(ctx context.Context, p *core.Pipeline, spec Spec) (*Result, error) {
	out, err := p.RunPredictionWorkflowCtx(ctx, predictionConfig(spec))
	if err != nil {
		return nil, err
	}
	return predictionResult(out), nil
}

func predictionResult(out *core.PredictionOutcome) *Result {
	return &Result{Prediction: &PredictionResult{
		Confirmed:    bandFrom(out.Confirmed),
		Hospitalized: bandFrom(out.Hospitalized),
		Deaths:       bandFrom(out.Deaths),
		Counties:     len(out.CountyMedian),
	}}
}

func whatIfScenarios(spec Spec) []core.WhatIf {
	var scenarios []core.WhatIf
	for _, w := range spec.WhatIfs {
		scenarios = append(scenarios, w.toCore())
	}
	return scenarios
}

func runWhatIf(ctx context.Context, p *core.Pipeline, spec Spec) (*Result, error) {
	outs, err := p.RunWhatIfScenariosCtx(ctx, predictionConfig(spec), whatIfScenarios(spec))
	if err != nil {
		return nil, err
	}
	return whatIfResult(outs), nil
}

func whatIfResult(outs []*core.ScenarioOutcome) *Result {
	res := &Result{}
	for _, o := range outs {
		res.Scenarios = append(res.Scenarios, ScenarioResult{
			Name:      o.Scenario.Name,
			Confirmed: bandFrom(o.Confirmed),
			Deaths:    bandFrom(o.Deaths),
		})
	}
	return res
}

func runNight(ctx context.Context, p *core.Pipeline, spec Spec) (*Result, error) {
	n := spec.Night
	rep, err := p.RunNightCtx(ctx, core.NightConfig{
		Spec: n.workflowSpec(), Heuristic: n.Heuristic, Seed: n.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Night: &NightResult{
		Tasks:       rep.Tasks,
		Completed:   rep.Completed,
		Unstarted:   rep.Unstarted,
		Retries:     rep.Retries,
		Shed:        len(rep.Shed),
		Makespan:    rep.Makespan,
		Utilization: rep.Utilization,
		FitsWindow:  rep.FitsWindow,
		ConfigBytes: rep.ConfigBytes,
		SummaryB:    rep.SummaryBytes,
		RawBytes:    rep.RawBytes,
	}}, nil
}
