package scenario

import (
	"container/list"
	"sync"
)

// Cache is a content-addressed LRU result cache. Keys are spec hashes;
// because the pipeline's seeded RNG makes runs deterministic, a cached
// result is exactly what a re-run would produce.
type Cache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	key string
	res *Result
}

// NewCache builds an LRU cache holding up to capacity results; capacity
// ≤ 0 falls back to 64.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 64
	}
	return &Cache{cap: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

// Get returns the cached result for key and records a hit. A lookup miss
// records nothing — the service records a miss only when it actually
// schedules a run, so singleflight attaches do not skew the ratio.
func (c *Cache) Get(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return el.Value.(*cacheEntry).res, true
}

// RecordMiss books one cache miss (a spec that had to be computed).
func (c *Cache) RecordMiss() {
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
}

// Put inserts or refreshes a result, evicting the least recently used
// entry when over capacity.
func (c *Cache) Put(key string, res *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats is a point-in-time view of the cache counters.
type CacheStats struct {
	Entries   int     `json:"entries"`
	Capacity  int     `json:"capacity"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	HitRatio  float64 `json:"hit_ratio"`
}

// Stats snapshots the counters. HitRatio is hits / (hits + misses), 0 when
// nothing has been looked up.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheStats{
		Entries: c.ll.Len(), Capacity: c.cap,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
	}
	if total := c.hits + c.misses; total > 0 {
		s.HitRatio = float64(c.hits) / float64(total)
	}
	return s
}
