package scenario

import (
	"repro/internal/castore"
)

// Cache is the service's content-addressed LRU result cache, built on the
// generic castore.Store. Keys are spec hashes; because the pipeline's
// seeded RNG makes runs deterministic, a cached result is exactly what a
// re-run would produce.
type Cache struct {
	cap   int
	store *castore.Store[*Result]
}

// NewCache builds an LRU cache holding up to capacity results; capacity
// ≤ 0 falls back to 64.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 64
	}
	return &Cache{cap: capacity, store: castore.New(castore.WithMaxEntries[*Result](capacity))}
}

// Get returns the cached result for key and records a hit. A lookup miss
// records nothing — the service records a miss only when it actually
// schedules a run, so singleflight attaches do not skew the ratio.
func (c *Cache) Get(key string) (*Result, bool) {
	return c.store.Get(key)
}

// RecordMiss books one cache miss (a spec that had to be computed).
func (c *Cache) RecordMiss() { c.store.RecordMiss() }

// Put inserts or refreshes a result, evicting the least recently used
// entry when over capacity.
func (c *Cache) Put(key string, res *Result) { c.store.Put(key, res) }

// Len returns the number of cached results.
func (c *Cache) Len() int { return c.store.Len() }

// CacheStats is a point-in-time view of the cache counters.
type CacheStats struct {
	Entries   int     `json:"entries"`
	Capacity  int     `json:"capacity"`
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	HitRatio  float64 `json:"hit_ratio"`
}

// Stats snapshots the counters. HitRatio is hits / (hits + misses), 0 when
// nothing has been looked up.
func (c *Cache) Stats() CacheStats {
	s := c.store.Stats()
	return CacheStats{
		Entries: s.Entries, Capacity: c.cap,
		Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions,
		HitRatio: s.HitRatio,
	}
}
