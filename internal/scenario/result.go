package scenario

import "repro/internal/core"

// Band is a daily series with its 95% uncertainty band.
type Band struct {
	Median []float64 `json:"median"`
	Lo     []float64 `json:"lo"`
	Hi     []float64 `json:"hi"`
}

func bandFrom(f core.Forecast) Band {
	return Band{Median: f.Median, Lo: f.Lo, Hi: f.Hi}
}

// PredictionResult is the prediction workflow's product.
type PredictionResult struct {
	Confirmed    Band `json:"confirmed"`
	Hospitalized Band `json:"hospitalized"`
	Deaths       Band `json:"deaths"`
	// Counties is the number of county-level forecast products.
	Counties int `json:"counties"`
}

// ScenarioResult is one what-if scenario's forecast.
type ScenarioResult struct {
	Name      string `json:"name"`
	Confirmed Band   `json:"confirmed"`
	Deaths    Band   `json:"deaths"`
}

// NightResult summarizes a simulated night (the NightReport essentials).
type NightResult struct {
	Tasks       int     `json:"tasks"`
	Completed   int     `json:"completed"`
	Unstarted   int     `json:"unstarted"`
	Retries     int     `json:"retries"`
	Shed        int     `json:"shed"`
	Makespan    float64 `json:"makespan_seconds"`
	Utilization float64 `json:"utilization"`
	FitsWindow  bool    `json:"fits_window"`
	ConfigBytes int64   `json:"config_bytes"`
	SummaryB    int64   `json:"summary_bytes"`
	RawBytes    int64   `json:"raw_bytes"`
}

// Result is a completed scenario run, keyed by the spec's content address.
// Exactly one of Prediction / Scenarios / Night is populated, matching the
// spec's workflow.
type Result struct {
	Hash     string `json:"hash"`
	Workflow string `json:"workflow"`
	Spec     Spec   `json:"spec"`

	Prediction *PredictionResult `json:"prediction,omitempty"`
	Scenarios  []ScenarioResult  `json:"scenarios,omitempty"`
	Night      *NightResult      `json:"night,omitempty"`

	// ElapsedSeconds is the wall time of the computation that produced the
	// result (cache hits keep the original run's time).
	ElapsedSeconds float64 `json:"elapsed_seconds"`

	// Tier / TierReason / Uncertainty report the fidelity ladder's routing:
	// which rung answered, why, and its 95% relative error estimate. All
	// empty on the legacy path (fidelity unset), keeping those payloads
	// byte-identical to pre-ladder responses.
	Tier        string  `json:"tier,omitempty"`
	TierReason  string  `json:"tier_reason,omitempty"`
	Uncertainty float64 `json:"uncertainty,omitempty"`
}
