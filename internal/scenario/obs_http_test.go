package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// obsServer builds a stub-backed server with serving observability over a
// shared registry, so RED series land on the same /metrics the service
// exports.
func obsServer(t *testing.T, workers, queueCap int) (*httptest.Server, *stubRunner) {
	t.Helper()
	reg := obs.NewRegistry()
	r := newStubRunner()
	svc := NewService(Config{
		Workers: workers, QueueCap: queueCap, Runner: r.run,
		Fingerprint: "test", Registry: reg,
	})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = svc.Drain(ctx)
	})
	so := NewServingObs(reg, ServingObsConfig{RecorderCapacity: 64, SLOTarget: time.Minute})
	ts := httptest.NewServer(NewServer(svc, so))
	t.Cleanup(ts.Close)
	return ts, r
}

// postSpecID posts a spec with an explicit X-Request-Id header.
func postSpecID(t *testing.T, ts *httptest.Server, spec Spec, query, reqID string) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/scenarios"+query, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if reqID != "" {
		req.Header.Set("X-Request-Id", reqID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, payload
}

// findSpan walks a snapshot tree for a span by name.
func findSpan(n *obs.SpanNode, name string) *obs.SpanNode {
	if n == nil {
		return nil
	}
	if n.Name == name {
		return n
	}
	for _, c := range n.Children {
		if m := findSpan(c, name); m != nil {
			return m
		}
	}
	return nil
}

// TestServingObsTraceEndToEnd drives one synchronous request through the
// traced server and pulls its span tree back out of the flight recorder:
// the trace must carry the queue wait and the engine-side job.run span, the
// classified workflow/priority, and the content-address annotation.
func TestServingObsTraceEndToEnd(t *testing.T) {
	ts, r := obsServer(t, 2, 8)
	r.releaseAll(1)

	const reqID = "feedfacefeedface"
	resp, _ := postSpecID(t, ts, predSpec("VA", 42), "?wait=1&priority=interactive", reqID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != reqID {
		t.Fatalf("X-Request-Id echo = %q, want %q", got, reqID)
	}

	var view obs.TraceView
	if code := getJSON(t, ts.URL+"/debug/requests/"+reqID, &view); code != http.StatusOK {
		t.Fatalf("debug get: %d", code)
	}
	if view.ID != reqID || view.Workflow != "prediction" || view.Priority != "interactive" {
		t.Fatalf("trace summary: %+v", view.TraceSummary)
	}
	if view.Status != http.StatusOK || !view.Done {
		t.Fatalf("trace not finished: status=%d done=%v", view.Status, view.Done)
	}
	if view.Annos["hash"] == nil {
		t.Fatalf("missing hash annotation: %v", view.Annos)
	}
	qs := findSpan(view.Root, "queue.wait")
	if qs == nil {
		t.Fatalf("no queue.wait span in trace: %+v", view.Root)
	}
	if qs.Attrs["outcome"] != "run" {
		t.Fatalf("queue.wait outcome: %v", qs.Attrs)
	}
	if findSpan(view.Root, "job.run") == nil {
		t.Fatal("no job.run span in trace")
	}

	// The listing includes the request, newest first.
	var list struct {
		Count    int                `json:"count"`
		Requests []obs.TraceSummary `json:"requests"`
	}
	if code := getJSON(t, ts.URL+"/debug/requests", &list); code != http.StatusOK {
		t.Fatalf("debug list: %d", code)
	}
	found := false
	for _, s := range list.Requests {
		found = found || s.ID == reqID
	}
	if !found || list.Count == 0 {
		t.Fatalf("request %s missing from listing: %+v", reqID, list)
	}
}

// TestServingObsMintsRequestID checks a client that sends no X-Request-Id
// still gets a retrievable trace under a server-minted ID.
func TestServingObsMintsRequestID(t *testing.T) {
	ts, r := obsServer(t, 1, 4)
	r.releaseAll(1)
	resp, _ := postSpecID(t, ts, predSpec("RI", 30), "?wait=1", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Request-Id")
	if len(id) != 16 {
		t.Fatalf("minted id %q, want 16 hex chars", id)
	}
	if code := getJSON(t, ts.URL+"/debug/requests/"+id, nil); code != http.StatusOK {
		t.Fatalf("trace for minted id: %d", code)
	}
}

// TestServingObsAsyncTraceFills pins the flight recorder's live-trace
// semantics: a 202 submission's trace is recorded at HTTP completion but
// keeps growing as the job runs, so a later read shows the engine span.
func TestServingObsAsyncTraceFills(t *testing.T) {
	ts, r := obsServer(t, 1, 4)
	resp, _ := postSpecID(t, ts, predSpec("VT", 21), "", "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Request-Id")
	<-r.started // the job is now running; its trace already holds queue.wait
	var view obs.TraceView
	if code := getJSON(t, ts.URL+"/debug/requests/"+id, &view); code != http.StatusOK {
		t.Fatalf("debug get: %d", code)
	}
	if view.Status != http.StatusAccepted {
		t.Fatalf("async trace status = %d, want 202", view.Status)
	}
	if findSpan(view.Root, "job.run") != nil {
		t.Fatal("job.run closed before the gate opened")
	}
	r.releaseAll(1)
	deadline := time.Now().Add(5 * time.Second)
	for {
		getJSON(t, ts.URL+"/debug/requests/"+id, &view)
		if findSpan(view.Root, "job.run") != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job.run span never appeared in the async trace")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServingObsREDAndSLO checks the RED series reach /metrics and the /slo
// report books good traffic while excluding 4xx from the SLI.
func TestServingObsREDAndSLO(t *testing.T) {
	ts, r := obsServer(t, 1, 4)
	r.releaseAll(1)
	if resp, _ := postSpecID(t, ts, predSpec("VA", 14), "?wait=1", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	// A 4xx: bad workflow fails validation. Excluded from the SLI, but the
	// errored trace is always-kept in the recorder.
	resp, _ := postSpecID(t, ts, Spec{Workflow: "bogus"}, "?wait=1", "badbadbadbadbad0")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: %d", resp.StatusCode)
	}

	httpResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(httpResp.Body)
	httpResp.Body.Close()
	for _, want := range []string{
		`epi_http_requests_total{workflow="prediction",priority="normal",code="200"} 1`,
		`epi_http_requests_total{workflow="bogus",priority="normal",code="400"} 1`,
		`epi_http_request_seconds`,
		`epi_slo_burn_rate`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("missing %q in /metrics:\n%s", want, metrics)
		}
	}

	var slo struct {
		Aggregate obs.SLOReport            `json:"aggregate"`
		Series    map[string]obs.SLOReport `json:"series"`
	}
	if code := getJSON(t, ts.URL+"/slo", &slo); code != http.StatusOK {
		t.Fatalf("/slo: %d", code)
	}
	if slo.Aggregate.TotalGood != 1 || slo.Aggregate.TotalBad != 0 {
		t.Fatalf("aggregate SLI: good=%d bad=%d (4xx must not count)",
			slo.Aggregate.TotalGood, slo.Aggregate.TotalBad)
	}
	if _, ok := slo.Series["prediction|normal"]; !ok {
		t.Fatalf("missing prediction|normal series: %v", slo.Series)
	}
	if code := getJSON(t, ts.URL+"/debug/requests/badbadbadbadbad0", nil); code != http.StatusOK {
		t.Fatalf("errored trace not kept: %d", code)
	}
}

// TestServerWithoutObsUnchanged pins the nil-ServingObs contract: no
// X-Request-Id header, no debug or SLO routes — the pre-observability
// surface exactly.
func TestServerWithoutObsUnchanged(t *testing.T) {
	ts, _, r := testServer(t, 1, 4)
	r.releaseAll(1)
	resp, _ := postSpec(t, ts, predSpec("VA", 30), "?wait=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "" {
		t.Fatalf("untraced server set X-Request-Id %q", got)
	}
	for _, path := range []string{"/debug/requests", "/slo"} {
		if code := getJSON(t, ts.URL+path, nil); code != http.StatusNotFound {
			t.Fatalf("%s = %d on untraced server, want 404", path, code)
		}
	}
}
