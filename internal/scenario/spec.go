// Package scenario is the serving layer over the three production
// workflows: policy-makers submit what-if scenario requests over HTTP, the
// service canonicalizes and content-addresses each spec, runs it through a
// bounded job queue with a fixed worker pool over core.Pipeline, and serves
// results from a content-addressed LRU cache with single-flight
// deduplication. The seeded RNG in the pipeline makes every run
// deterministic, so identical specs share one execution and cached results
// are sound.
package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/fidelity"
	"repro/internal/synthpop"
)

// Workflow names accepted in a Spec.
const (
	WorkflowPrediction = "prediction"
	WorkflowWhatIf     = "whatif"
	WorkflowNight      = "night"
)

// Admission bounds: a spec outside these limits is rejected at submit time
// rather than admitted to the queue (the service's first line of
// backpressure — oversized work never competes for workers).
const (
	MaxDays       = 366
	MaxReplicates = 64
	MaxConfigs    = 32
	MaxWhatIfs    = 8
	MaxNightCells = 1000
)

// ParamSpec is one calibrated model configuration on the wire (the four VA
// case-study parameters).
type ParamSpec struct {
	TAU           float64 `json:"tau"`
	SYMP          float64 `json:"symp"`
	SHCompliance  float64 `json:"sh_compliance"`
	VHICompliance float64 `json:"vhi_compliance"`
}

func (ps ParamSpec) toCore() core.Params {
	return core.Params{TAU: ps.TAU, SYMP: ps.SYMP,
		SHCompliance: ps.SHCompliance, VHICompliance: ps.VHICompliance}
}

// WhatIfSpec is a future scenario layered on the calibrated configurations
// (core.WhatIf on the wire).
type WhatIfSpec struct {
	Name string `json:"name"`
	// PivotDay is the day the scenario diverges from the shared as-is
	// baseline; 0 takes the workflow default (SHStart). Scenarios sharing
	// a pivot share one simulated prefix per (config, replicate).
	PivotDay        int     `json:"pivot_day,omitempty"`
	SHEndShift      int     `json:"sh_end_shift,omitempty"`
	ComplianceScale float64 `json:"compliance_scale,omitempty"`
	AddTesting      float64 `json:"add_testing,omitempty"`
	AddTracing      int     `json:"add_tracing,omitempty"`
	TraceDetectProb float64 `json:"trace_detect_prob,omitempty"`
}

func (ws WhatIfSpec) toCore() core.WhatIf {
	return core.WhatIf{
		Name: ws.Name, PivotDay: ws.PivotDay,
		SHEndShift: ws.SHEndShift, ComplianceScale: ws.ComplianceScale,
		AddTesting: ws.AddTesting, AddTracing: ws.AddTracing, TraceDetectProb: ws.TraceDetectProb,
	}
}

// NightSpec parameterizes a simulated night of one Table I workflow family.
type NightSpec struct {
	// Family selects the Table I row: economic | prediction | calibration.
	Family string `json:"family"`
	// Cells / Replicates override the row's published scale when positive.
	Cells      int `json:"cells,omitempty"`
	Replicates int `json:"replicates,omitempty"`
	// Heuristic is FFDT-DC (default) or NFDT-DC.
	Heuristic string `json:"heuristic,omitempty"`
	// Seed drives the night's task-time noise.
	Seed uint64 `json:"seed,omitempty"`
}

// workflowSpec resolves the night to a core.WorkflowSpec. Family must
// already be normalized.
func (n NightSpec) workflowSpec() core.WorkflowSpec {
	rows := core.TableI()
	var base core.WorkflowSpec
	switch n.Family {
	case "economic":
		base = rows[0]
	case "prediction":
		base = rows[1]
	case "calibration":
		base = rows[2]
	}
	base.Cells = n.Cells
	base.Replicates = n.Replicates
	return base
}

// Spec is a scenario request. The zero values of most fields are filled
// with the workflow's production defaults during normalization, so two
// submissions that mean the same run hash to the same content address
// whether or not the client spelled the defaults out.
type Spec struct {
	// Workflow is prediction | whatif | night.
	Workflow string `json:"workflow"`
	// State is the region postal code (prediction and whatif).
	State string `json:"state,omitempty"`
	// Days is the forecast horizon.
	Days int `json:"days,omitempty"`
	// Replicates per configuration.
	Replicates int `json:"replicates,omitempty"`
	// SHStart / SHEnd time the mitigation schedule.
	SHStart int `json:"sh_start,omitempty"`
	SHEnd   int `json:"sh_end,omitempty"`
	// Configs are the calibrated model configurations; empty takes the
	// CDC-best-guess spread of cmd/predict.
	Configs []ParamSpec `json:"configs,omitempty"`
	// WhatIfs are the interventions to layer (whatif workflow); empty takes
	// core.StandardWhatIfs.
	WhatIfs []WhatIfSpec `json:"whatifs,omitempty"`
	// Night parameterizes the night workflow.
	Night *NightSpec `json:"night,omitempty"`

	// Fidelity selects the serving tier: "" (legacy exact ABM path, the
	// default), auto, emulator, metapop, or abm. New fields stay at the end
	// of the struct so legacy specs keep their canonical JSON byte-for-byte
	// (and therefore their content hashes).
	Fidelity string `json:"fidelity,omitempty"`
	// MaxUncertainty is the fidelity=auto escalation budget: the maximum
	// acceptable 95% relative error of a surrogate answer. Defaults to 0.1
	// under fidelity=auto; meaningless (and cleared) otherwise.
	MaxUncertainty float64 `json:"max_uncertainty,omitempty"`
	// Shards is the simulator shard count the client suggests. It is an
	// execution hint only — results are bit-identical at any shard count
	// (the engine's determinism contract) — so normalization validates and
	// then CLEARS it: a hint must never split the content-addressed result
	// cache between requests that denote the same computation. The
	// server's -shards flag governs the pipeline's actual shard count.
	Shards int `json:"shards,omitempty"`
}

// defaultConfigs is the spread cmd/predict uses when no posterior is given.
func defaultConfigs() []ParamSpec {
	return []ParamSpec{
		{TAU: 0.16, SYMP: 0.65, SHCompliance: 0.6, VHICompliance: 0.5},
		{TAU: 0.18, SYMP: 0.65, SHCompliance: 0.5, VHICompliance: 0.5},
		{TAU: 0.20, SYMP: 0.60, SHCompliance: 0.4, VHICompliance: 0.4},
		{TAU: 0.22, SYMP: 0.70, SHCompliance: 0.3, VHICompliance: 0.6},
	}
}

// Normalize returns the canonical form of the spec — lowercased workflow,
// uppercased state, every defaultable zero field filled — or an error when
// the spec is invalid or exceeds the admission bounds. Hashing and
// execution both operate on the normalized spec.
func (s Spec) Normalize() (Spec, error) {
	if s.Shards < 0 || s.Shards > 256 {
		return s, fmt.Errorf("scenario: shards %d outside [0, 256]", s.Shards)
	}
	s.Shards = 0 // execution hint: never part of the spec's identity
	s.Workflow = strings.ToLower(strings.TrimSpace(s.Workflow))
	switch s.Workflow {
	case WorkflowPrediction, WorkflowWhatIf:
		return s.normalizeForecast()
	case WorkflowNight:
		return s.normalizeNight()
	case "":
		return s, fmt.Errorf("scenario: missing workflow (want %s | %s | %s)",
			WorkflowPrediction, WorkflowWhatIf, WorkflowNight)
	default:
		return s, fmt.Errorf("scenario: unknown workflow %q", s.Workflow)
	}
}

func (s Spec) normalizeForecast() (Spec, error) {
	s.Night = nil
	s.State = strings.ToUpper(strings.TrimSpace(s.State))
	if _, err := synthpop.StateByCode(s.State); err != nil {
		return s, fmt.Errorf("scenario: bad state %q: %w", s.State, err)
	}
	if s.Days <= 0 {
		s.Days = 120
	}
	if s.Days > MaxDays {
		return s, fmt.Errorf("scenario: days %d exceeds bound %d", s.Days, MaxDays)
	}
	if s.Replicates <= 0 {
		if s.Workflow == WorkflowWhatIf {
			s.Replicates = 5
		} else {
			s.Replicates = 15
		}
	}
	if s.Replicates > MaxReplicates {
		return s, fmt.Errorf("scenario: replicates %d exceeds bound %d", s.Replicates, MaxReplicates)
	}
	if s.SHStart <= 0 {
		s.SHStart = 15
	}
	if s.SHEnd <= 0 {
		s.SHEnd = s.Days
	}
	if len(s.Configs) == 0 {
		s.Configs = defaultConfigs()
	}
	if len(s.Configs) > MaxConfigs {
		return s, fmt.Errorf("scenario: %d configs exceed bound %d", len(s.Configs), MaxConfigs)
	}
	for i, c := range s.Configs {
		if c.TAU < 0 || c.SYMP < 0 || c.SYMP > 1 ||
			c.SHCompliance < 0 || c.SHCompliance > 1 ||
			c.VHICompliance < 0 || c.VHICompliance > 1 {
			return s, fmt.Errorf("scenario: config %d out of range: %+v", i, c)
		}
	}
	switch s.Workflow {
	case WorkflowWhatIf:
		if len(s.WhatIfs) == 0 {
			for _, w := range core.StandardWhatIfs() {
				s.WhatIfs = append(s.WhatIfs, WhatIfSpec{
					Name: w.Name, PivotDay: w.PivotDay,
					SHEndShift: w.SHEndShift, ComplianceScale: w.ComplianceScale,
					AddTesting: w.AddTesting, AddTracing: w.AddTracing, TraceDetectProb: w.TraceDetectProb,
				})
			}
		}
		if len(s.WhatIfs) > MaxWhatIfs {
			return s, fmt.Errorf("scenario: %d what-ifs exceed bound %d", len(s.WhatIfs), MaxWhatIfs)
		}
		seen := map[string]bool{}
		for i, w := range s.WhatIfs {
			if w.Name == "" {
				return s, fmt.Errorf("scenario: what-if %d has no name", i)
			}
			if seen[w.Name] {
				return s, fmt.Errorf("scenario: duplicate what-if name %q", w.Name)
			}
			seen[w.Name] = true
			if w.PivotDay < 0 || w.PivotDay > s.Days {
				return s, fmt.Errorf("scenario: what-if %q pivot day %d outside [0, %d]", w.Name, w.PivotDay, s.Days)
			}
		}
	default:
		s.WhatIfs = nil
	}
	return s.normalizeFidelity()
}

// normalizeFidelity canonicalizes the serving-tier fields: tier names are
// case-insensitive on the wire, the auto tier defaults its budget, and the
// budget is cleared wherever it cannot influence routing (so specs that
// mean the same run hash the same).
func (s Spec) normalizeFidelity() (Spec, error) {
	s.Fidelity = strings.ToLower(strings.TrimSpace(s.Fidelity))
	if math.IsNaN(s.MaxUncertainty) || math.IsInf(s.MaxUncertainty, 0) || s.MaxUncertainty < 0 {
		return s, fmt.Errorf("scenario: bad max_uncertainty %v", s.MaxUncertainty)
	}
	switch s.Fidelity {
	case "":
		s.MaxUncertainty = 0
	case string(fidelity.TierAuto):
		if s.MaxUncertainty == 0 {
			s.MaxUncertainty = fidelity.DefaultBudget
		}
	case string(fidelity.TierEmulator), string(fidelity.TierMetapop), string(fidelity.TierABM):
		s.MaxUncertainty = 0
	default:
		return s, fmt.Errorf("scenario: unknown fidelity %q (want auto | emulator | metapop | abm)", s.Fidelity)
	}
	return s, nil
}

func (s Spec) normalizeNight() (Spec, error) {
	s.State, s.Days, s.Replicates, s.SHStart, s.SHEnd = "", 0, 0, 0, 0
	s.Configs, s.WhatIfs = nil, nil
	s.Fidelity, s.MaxUncertainty = "", 0
	n := NightSpec{Family: "prediction", Heuristic: "FFDT-DC", Seed: 1}
	if s.Night != nil {
		n = *s.Night
	}
	n.Family = strings.ToLower(strings.TrimSpace(n.Family))
	if n.Family == "" {
		n.Family = "prediction"
	}
	rows := map[string]core.WorkflowSpec{
		"economic": core.TableI()[0], "prediction": core.TableI()[1], "calibration": core.TableI()[2],
	}
	row, ok := rows[n.Family]
	if !ok {
		return s, fmt.Errorf("scenario: unknown night family %q", n.Family)
	}
	if n.Cells <= 0 {
		n.Cells = row.Cells
	}
	if n.Cells > MaxNightCells {
		return s, fmt.Errorf("scenario: night cells %d exceed bound %d", n.Cells, MaxNightCells)
	}
	if n.Replicates <= 0 {
		n.Replicates = row.Replicates
	}
	if n.Replicates > MaxReplicates {
		return s, fmt.Errorf("scenario: night replicates %d exceed bound %d", n.Replicates, MaxReplicates)
	}
	switch n.Heuristic {
	case "":
		n.Heuristic = "FFDT-DC"
	case "FFDT-DC", "NFDT-DC":
	default:
		return s, fmt.Errorf("scenario: unknown heuristic %q", n.Heuristic)
	}
	if n.Seed == 0 {
		n.Seed = 1
	}
	s.Night = &n
	return s, nil
}

// Canonical renders the normalized spec as canonical JSON (Go marshals
// struct fields in declaration order, so the encoding is deterministic).
// It must be called on a normalized spec.
func (s Spec) Canonical() ([]byte, error) {
	return json.Marshal(s)
}

// Hash content-addresses the normalized spec under a pipeline fingerprint:
// SHA-256 over fingerprint + canonical JSON. Two requests hash equal iff
// they denote the same deterministic computation on the same pipeline.
func (s Spec) Hash(fingerprint string) (string, error) {
	canon, err := s.Canonical()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(fingerprint))
	h.Write([]byte{0})
	h.Write(canon)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Fingerprint identifies the pipeline parameters that shape results:
// different seeds, scales or site configurations must not share cache
// entries. It delegates to the pipeline's own fingerprint, which also keys
// the what-if snapshot store — the result cache and the checkpoint cache
// agree on what "the same pipeline" means.
func Fingerprint(p *core.Pipeline) string { return p.Fingerprint() }
