package scenario

import (
	"fmt"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(3)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), &Result{Hash: fmt.Sprintf("k%d", i)})
	}
	// Touch k0 so k1 becomes least recently used.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	c.Put("k3", &Result{Hash: "k3"})
	if _, ok := c.Get("k1"); ok {
		t.Fatal("k1 survived eviction despite being LRU")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 3 {
		t.Fatalf("stats %+v want 1 eviction, 3 entries", st)
	}
}

func TestCacheRefreshDoesNotGrow(t *testing.T) {
	c := NewCache(2)
	c.Put("a", &Result{})
	c.Put("a", &Result{})
	c.Put("b", &Result{})
	if c.Len() != 2 {
		t.Fatalf("len %d want 2", c.Len())
	}
	if st := c.Stats(); st.Evictions != 0 {
		t.Fatalf("%d evictions want 0", st.Evictions)
	}
}

func TestCacheHitRatio(t *testing.T) {
	c := NewCache(2)
	c.Put("a", &Result{})
	c.Get("a")
	c.Get("a")
	c.RecordMiss()
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("hits/misses %d/%d want 2/1", st.Hits, st.Misses)
	}
	if want := 2.0 / 3.0; st.HitRatio != want {
		t.Fatalf("ratio %v want %v", st.HitRatio, want)
	}
	// A lookup miss alone records nothing (the service books misses only
	// for actually scheduled runs).
	c.Get("absent")
	if got := c.Stats().Misses; got != 1 {
		t.Fatalf("misses %d want 1", got)
	}
}
