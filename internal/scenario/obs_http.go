package scenario

import (
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// ServingObsConfig parameterizes the serving tier's request observability.
type ServingObsConfig struct {
	// RecorderCapacity bounds the flight recorder's main ring (default 256).
	RecorderCapacity int
	// SlowThreshold always-keeps traces at least this slow (default = the
	// SLO target when set, else 1s).
	SlowThreshold time.Duration
	// SLOTarget is the latency a good request must meet (-slo-p99). Zero
	// disables the latency criterion.
	SLOTarget time.Duration
	// SLOObjective is the good-fraction objective (default 0.99).
	SLOObjective float64
	// SLOWindow is the long burn window (default 1h).
	SLOWindow time.Duration
	// Journal optionally tees every trace entry (stamped with the request
	// ID) into a JSONL sink — the flight recorder's durable export.
	Journal obs.Sink
	// Clock injects timestamps; determinism tests use obs.FixedClock.
	Clock obs.Clock
}

// ServingObs is the request-scoped observability bundle the HTTP layer
// wires in: a per-request trace (span tree through admission, queue,
// dispatch, batching, fidelity, engine), the flight recorder holding the
// last N traces, RED series, and SLO burn tracking. A nil *ServingObs is
// valid and inert — the server behaves exactly as before the layer
// existed, which is what the overhead benchmark's "off" arm measures.
type ServingObs struct {
	recorder *obs.Recorder
	slo      *obs.SLOSet
	journal  obs.Sink
	clock    obs.Clock
	reg      *obs.Registry
	// traceOpts is the option slice every request trace is built with,
	// assembled once instead of per request.
	traceOpts []obs.ReqTraceOption

	// redMu guards red, a cache of resolved RED series handles keyed by
	// (workflow, priority, code): series names are assembled and looked up
	// in the registry once per distinct key, not once per request.
	redMu sync.RWMutex
	red   map[redKey]redSeries
}

// redKey identifies one RED series combination.
type redKey struct {
	workflow, priority string
	code               int
}

// redSeries holds the resolved registry handles for one key.
type redSeries struct {
	requests *obs.Counter
	seconds  *obs.Histogram
}

// NewServingObs builds the bundle over the backend's registry (reg may be
// nil: metrics are skipped, traces and recorder still work).
func NewServingObs(reg *obs.Registry, cfg ServingObsConfig) *ServingObs {
	if cfg.SlowThreshold <= 0 {
		cfg.SlowThreshold = cfg.SLOTarget
		if cfg.SlowThreshold <= 0 {
			cfg.SlowThreshold = time.Second
		}
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	so := &ServingObs{
		recorder: obs.NewRecorder(obs.RecorderConfig{
			Capacity:      cfg.RecorderCapacity,
			SlowThreshold: cfg.SlowThreshold,
		}),
		journal: cfg.Journal,
		clock:   cfg.Clock,
		reg:     reg,
	}
	so.traceOpts = []obs.ReqTraceOption{obs.WithReqClock(cfg.Clock)}
	if cfg.Journal != nil {
		so.traceOpts = append(so.traceOpts, obs.WithReqTee(cfg.Journal))
	}
	so.slo = obs.NewSLOSet(obs.SLOConfig{
		Target:    cfg.SLOTarget,
		Objective: cfg.SLOObjective,
		Window:    cfg.SLOWindow,
		Clock:     cfg.Clock,
	}, reg)
	if reg != nil {
		reg.Help("epi_http_requests_total", "served requests by workflow/priority/code")
		reg.Help("epi_http_request_seconds", "request latency by workflow/priority")
		reg.Help("epi_slo_burn_rate", "SLO error-budget burn rate per rolling window (1.0 = budget consumed exactly at the sustainable rate)")
	}
	return so
}

// Recorder exposes the flight recorder (tests, episerve).
func (so *ServingObs) Recorder() *obs.Recorder {
	if so == nil {
		return nil
	}
	return so.recorder
}

// SLO exposes the tracker set.
func (so *ServingObs) SLO() *obs.SLOSet {
	if so == nil {
		return nil
	}
	return so.slo
}

// statusWriter captures the response code for the trace and RED series.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Middleware traces one handler: mint or accept X-Request-Id, attach a
// request trace to the context, and on return record the trace, observe
// the RED series, and book the SLO outcome. A nil receiver returns h
// untouched — zero overhead when serving observability is off.
func (so *ServingObs) Middleware(h http.HandlerFunc) http.HandlerFunc {
	if so == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		rt := obs.NewRequestTrace(id, so.traceOpts...)
		w.Header().Set("X-Request-Id", rt.ID())
		sw := &statusWriter{ResponseWriter: w}
		start := so.clock()
		h(sw, r.WithContext(rt.Attach(r.Context())))
		elapsed := so.clock().Sub(start)
		code := sw.code
		if code == 0 {
			// Handler wrote nothing (e.g. client disconnected mid-wait).
			code = http.StatusOK
			if r.Context().Err() != nil {
				code = 499 // client closed request
			}
		}
		rt.Finish(code, "")
		so.recorder.Record(rt)
		so.observe(rt.Workflow(), rt.Priority(), code, elapsed)
	}
}

// observe books one request into the RED series and SLO trackers.
func (so *ServingObs) observe(workflow, priority string, code int, elapsed time.Duration) {
	if workflow == "" {
		workflow = "other"
	}
	if priority == "" {
		priority = "none"
	}
	if so.reg != nil {
		s := so.redFor(workflow, priority, code)
		s.requests.Inc()
		s.seconds.Observe(elapsed.Seconds())
	}
	so.slo.Observe(workflow, priority, code, elapsed)
}

// redFor resolves (and caches) the RED series handles for one key. The
// cardinality is tiny — workflows × priorities × status codes — so the
// cache never needs eviction.
func (so *ServingObs) redFor(workflow, priority string, code int) redSeries {
	k := redKey{workflow: workflow, priority: priority, code: code}
	so.redMu.RLock()
	s, ok := so.red[k]
	so.redMu.RUnlock()
	if ok {
		return s
	}
	s = redSeries{
		requests: so.reg.Counter(`epi_http_requests_total{workflow="` + workflow +
			`",priority="` + priority + `",code="` + strconv.Itoa(code) + `"}`),
		seconds: so.reg.Histogram(`epi_http_request_seconds{workflow="`+workflow+
			`",priority="`+priority+`"}`, nil),
	}
	so.redMu.Lock()
	if so.red == nil {
		so.red = make(map[redKey]redSeries)
	}
	so.red[k] = s
	so.redMu.Unlock()
	return s
}

// handleDebugList serves GET /debug/requests: newest-first trace
// summaries; ?limit=N bounds the listing (default 64).
func (so *ServingObs) handleDebugList(w http.ResponseWriter, r *http.Request) {
	limit := 64
	if v := r.URL.Query().Get("limit"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			limit = n
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":    so.recorder.Len(),
		"requests": so.recorder.List(limit),
	})
}

// handleDebugGet serves GET /debug/requests/{id}: the full span tree. A
// trace still being filled by an async job shows the spans closed so far.
func (so *ServingObs) handleDebugGet(w http.ResponseWriter, r *http.Request) {
	rt := so.recorder.Get(r.PathValue("id"))
	if rt == nil {
		writeError(w, http.StatusNotFound, "unknown request id")
		return
	}
	writeJSON(w, http.StatusOK, rt.Snapshot())
}

// handleSLO serves GET /slo: the aggregate and per-series burn reports.
func (so *ServingObs) handleSLO(w http.ResponseWriter, _ *http.Request) {
	reports := so.slo.Reports()
	out := map[string]any{"aggregate": reports[""]}
	series := map[string]obs.SLOReport{}
	for k, v := range reports {
		if k != "" {
			series[k] = v
		}
	}
	if len(series) > 0 {
		out["series"] = series
	}
	writeJSON(w, http.StatusOK, out)
}
