package scenario

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/fidelity"
)

// fidelityRequest maps a normalized spec onto the router's request shape.
// The spec must be normalized (tier lowercased, budget defaulted) — the
// service only runs normalized specs.
func fidelityRequest(spec Spec) fidelity.Request {
	req := fidelity.Request{
		Workflow: spec.Workflow, State: spec.State,
		Days: spec.Days, SHStart: spec.SHStart, SHEnd: spec.SHEnd,
		Replicates:     spec.Replicates,
		Mode:           fidelity.Tier(spec.Fidelity),
		MaxUncertainty: spec.MaxUncertainty,
	}
	for _, c := range spec.Configs {
		req.Configs = append(req.Configs, c.toCore())
	}
	req.WhatIfs = whatIfScenarios(spec)
	return req
}

// FidelityPipelineRunner wraps the exact pipeline runner with the fidelity
// ladder. Specs without a fidelity field (and night specs, which have no
// surrogate) take the legacy path untouched — byte-identical responses.
// Specs with one are routed: surrogate tiers answer from the router's
// fitted emulator or corrected metapop; a TierABM decision runs the same
// legacy workflow code path and additionally feeds the outcome back to the
// router as training data.
func FidelityPipelineRunner(p *core.Pipeline, router *fidelity.Router) Runner {
	legacy := PipelineRunner(p)
	return func(ctx context.Context, spec Spec) (*Result, error) {
		if router == nil || spec.Fidelity == "" || spec.Workflow == WorkflowNight {
			return legacy(ctx, spec)
		}
		req := fidelityRequest(spec)
		d, err := router.Route(ctx, req)
		if err != nil {
			return nil, err
		}
		var res *Result
		switch d.Tier {
		case fidelity.TierABM:
			switch spec.Workflow {
			case WorkflowPrediction:
				out, err := p.RunPredictionWorkflowCtx(ctx, predictionConfig(spec))
				if err != nil {
					return nil, err
				}
				if err := router.ObservePrediction(ctx, req, out); err != nil {
					return nil, fmt.Errorf("scenario: recording fidelity observation: %w", err)
				}
				res = predictionResult(out)
			case WorkflowWhatIf:
				outs, err := p.RunWhatIfScenariosCtx(ctx, predictionConfig(spec), req.WhatIfs)
				if err != nil {
					return nil, err
				}
				if err := router.ObserveWhatIf(ctx, req, outs); err != nil {
					return nil, fmt.Errorf("scenario: recording fidelity observation: %w", err)
				}
				res = whatIfResult(outs)
			default:
				return nil, fmt.Errorf("scenario: workflow %q not servable by fidelity ladder", spec.Workflow)
			}
		case fidelity.TierEmulator, fidelity.TierMetapop:
			res, err = resultFromAnswer(spec, d)
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("scenario: unexpected fidelity tier %q", d.Tier)
		}
		res.Tier = string(d.Tier)
		res.TierReason = d.Reason
		res.Uncertainty = d.Uncertainty
		return res, nil
	}
}

// resultFromAnswer shapes a surrogate-tier answer like the corresponding
// workflow result.
func resultFromAnswer(spec Spec, d fidelity.Decision) (*Result, error) {
	ans := d.Answer
	if ans == nil {
		return nil, fmt.Errorf("scenario: tier %s decision carried no answer", d.Tier)
	}
	band := func(name string) (Band, error) {
		f, ok := ans.Series[name]
		if !ok {
			return Band{}, fmt.Errorf("scenario: tier %s answer missing series %q", d.Tier, name)
		}
		return bandFrom(f), nil
	}
	switch spec.Workflow {
	case WorkflowPrediction:
		pr := &PredictionResult{Counties: ans.Counties}
		var err error
		if pr.Confirmed, err = band(fidelity.SeriesConfirmed); err != nil {
			return nil, err
		}
		if pr.Hospitalized, err = band(fidelity.SeriesHospitalized); err != nil {
			return nil, err
		}
		if pr.Deaths, err = band(fidelity.SeriesDeaths); err != nil {
			return nil, err
		}
		return &Result{Prediction: pr}, nil
	case WorkflowWhatIf:
		res := &Result{}
		for _, w := range spec.WhatIfs {
			sr := ScenarioResult{Name: w.Name}
			var err error
			if sr.Confirmed, err = band(fidelity.ScenarioSeries(w.Name, fidelity.SeriesConfirmed)); err != nil {
				return nil, err
			}
			if sr.Deaths, err = band(fidelity.ScenarioSeries(w.Name, fidelity.SeriesDeaths)); err != nil {
				return nil, err
			}
			res.Scenarios = append(res.Scenarios, sr)
		}
		return res, nil
	default:
		return nil, fmt.Errorf("scenario: workflow %q has no surrogate answer shape", spec.Workflow)
	}
}
