package scenario

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// stubRunner counts executions and blocks each run on a gate until released
// or the run's context is cancelled.
type stubRunner struct {
	runs    atomic.Int64
	started chan string   // receives the spec's state+workflow when a run begins
	gate    chan struct{} // each receive releases one run
}

func newStubRunner() *stubRunner {
	return &stubRunner{started: make(chan string, 64), gate: make(chan struct{}, 64)}
}

func (r *stubRunner) run(ctx context.Context, spec Spec) (*Result, error) {
	r.runs.Add(1)
	r.started <- spec.Workflow + "/" + spec.State
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-r.gate:
		return &Result{}, nil
	}
}

// releaseAll opens the gate for n runs.
func (r *stubRunner) releaseAll(n int) {
	for i := 0; i < n; i++ {
		r.gate <- struct{}{}
	}
}

func stubService(t *testing.T, workers, queueCap int) (*Service, *stubRunner) {
	t.Helper()
	r := newStubRunner()
	s := NewService(Config{Workers: workers, QueueCap: queueCap, Runner: r.run, Fingerprint: "test"})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s, r
}

func predSpec(state string, days int) Spec {
	return Spec{Workflow: WorkflowPrediction, State: state, Days: days}
}

func waitState(t *testing.T, j *Job, want JobState) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if j.Status().State == want.String() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s stuck in %s, want %s", j.Hash, j.Status().State, want)
}

func TestSubmitValidationErrors(t *testing.T) {
	s, _ := stubService(t, 1, 4)
	var bad *BadSpecError
	if _, err := s.Submit(Spec{Workflow: "bogus"}); !errors.As(err, &bad) {
		t.Fatalf("want BadSpecError, got %v", err)
	}
	if _, err := s.Submit(predSpec("ZZ", 10)); !errors.As(err, &bad) {
		t.Fatalf("want BadSpecError for bad state, got %v", err)
	}
}

func TestSingleflightSharesOneRun(t *testing.T) {
	s, r := stubService(t, 2, 8)
	j1, err := s.Submit(predSpec("VA", 30))
	if err != nil {
		t.Fatal(err)
	}
	<-r.started // running and blocked on the gate
	j2, err := s.Submit(predSpec("va", 30))
	if err != nil {
		t.Fatal(err)
	}
	if j1 != j2 {
		t.Fatal("identical in-flight specs did not share a job")
	}
	if got := j2.Status().Shared; got != 1 {
		t.Fatalf("shared %d want 1", got)
	}
	r.releaseAll(1)
	if _, err := j1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := r.runs.Load(); got != 1 {
		t.Fatalf("%d executions want 1", got)
	}
}

func TestCacheHitSkipsQueue(t *testing.T) {
	s, r := stubService(t, 1, 4)
	j, err := s.Submit(predSpec("VA", 20))
	if err != nil {
		t.Fatal(err)
	}
	<-r.started
	r.releaseAll(1)
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(predSpec("VA", 20))
	if err != nil {
		t.Fatal(err)
	}
	st := j2.Status()
	if st.State != "done" || !st.Cached {
		t.Fatalf("resubmit not served from cache: %+v", st)
	}
	if got := r.runs.Load(); got != 1 {
		t.Fatalf("%d executions want 1 (second served from cache)", got)
	}
	res, err := j2.Wait(context.Background())
	if err != nil || res == nil {
		t.Fatalf("cached job result: %v %v", res, err)
	}
	if res.Hash != j.Hash {
		t.Fatalf("cached hash %s want %s", res.Hash, j.Hash)
	}
}

func TestQueueFullRejects(t *testing.T) {
	s, r := stubService(t, 1, 1)
	// One running (blocked on the gate) + one queued fills the service.
	j1, err := s.Submit(predSpec("VA", 10))
	if err != nil {
		t.Fatal(err)
	}
	<-r.started
	if _, err := s.Submit(predSpec("VA", 11)); err != nil {
		t.Fatal(err)
	}
	_, err = s.Submit(predSpec("VA", 12))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if got := s.MetricsSnapshot().Rejected; got != 1 {
		t.Fatalf("rejected %d want 1", got)
	}
	// Deduplication onto the running job still succeeds under a full queue.
	if _, err := s.Submit(predSpec("VA", 10)); err != nil {
		t.Fatalf("singleflight attach rejected: %v", err)
	}
	j1.Release() // drop the extra attach reference
	r.releaseAll(2)
}

func TestReleaseCancelsAbandonedJobs(t *testing.T) {
	s, r := stubService(t, 1, 4)
	running, err := s.Submit(predSpec("VA", 10))
	if err != nil {
		t.Fatal(err)
	}
	<-r.started
	queued, err := s.Submit(predSpec("VA", 11))
	if err != nil {
		t.Fatal(err)
	}
	// Abandoning a queued job cancels it synchronously — no worker time.
	queued.Release()
	if st := queued.Status().State; st != "canceled" {
		t.Fatalf("abandoned queued job state %s want canceled", st)
	}
	// Abandoning a running job cancels its context; the runner unwinds.
	running.Release()
	waitState(t, running, StateCanceled)
	if got := r.runs.Load(); got != 1 {
		t.Fatalf("%d executions want 1 (queued job never ran)", got)
	}
	snap := s.MetricsSnapshot()
	if snap.Jobs["canceled"] != 2 {
		t.Fatalf("canceled count %d want 2", snap.Jobs["canceled"])
	}
}

func TestPinnedJobSurvivesRelease(t *testing.T) {
	s, r := stubService(t, 1, 4)
	j, err := s.Submit(predSpec("VA", 10))
	if err != nil {
		t.Fatal(err)
	}
	j.Pin()
	j.Release()
	<-r.started
	if st := j.Status().State; st != "running" {
		t.Fatalf("pinned job state %s want running", st)
	}
	r.releaseAll(1)
	waitState(t, j, StateDone)
}

func TestExplicitCancel(t *testing.T) {
	s, r := stubService(t, 1, 4)
	running, _ := s.Submit(predSpec("VA", 10))
	running.Pin()
	running.Release()
	<-r.started
	queued, _ := s.Submit(predSpec("VA", 11))
	queued.Pin()
	queued.Release()

	if !s.Cancel(queued.Hash) {
		t.Fatal("cancel queued failed")
	}
	if st := queued.Status().State; st != "canceled" {
		t.Fatalf("queued job state %s want canceled", st)
	}
	if !s.Cancel(running.Hash) {
		t.Fatal("cancel running failed")
	}
	waitState(t, running, StateCanceled)
	if s.Cancel(running.Hash) {
		t.Fatal("cancel of finished job reported success")
	}
	if s.Cancel("no-such-id") {
		t.Fatal("cancel of unknown id reported success")
	}
	if got := r.runs.Load(); got != 1 {
		t.Fatalf("%d executions want 1", got)
	}
}

func TestLookupFindsTerminalAndCachedJobs(t *testing.T) {
	s, r := stubService(t, 1, 4)
	j, _ := s.Submit(predSpec("VA", 10))
	<-r.started
	r.releaseAll(1)
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Lookup(j.Hash)
	if !ok || got.Status().State != "done" {
		t.Fatalf("lookup after completion: ok=%v", ok)
	}
	if _, ok := s.Lookup("absent"); ok {
		t.Fatal("lookup of unknown id succeeded")
	}
}

func TestDrainRunsQueuedJobsThenRejects(t *testing.T) {
	r := newStubRunner()
	s := NewService(Config{Workers: 1, QueueCap: 8, Runner: r.run, Fingerprint: "test"})
	var jobs []*Job
	for i := 0; i < 3; i++ {
		j, err := s.Submit(predSpec("VA", 10+i))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	r.releaseAll(3)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for i, j := range jobs {
		if st := j.Status().State; st != "done" {
			t.Fatalf("job %d state %s want done after drain", i, st)
		}
	}
	if _, err := s.Submit(predSpec("VA", 99)); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain: %v want ErrDraining", err)
	}
}

func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	r := newStubRunner()
	s := NewService(Config{Workers: 1, QueueCap: 4, Runner: r.run, Fingerprint: "test"})
	j, err := s.Submit(predSpec("VA", 10))
	if err != nil {
		t.Fatal(err)
	}
	<-r.started // runner blocked, never released
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain returned %v want deadline exceeded", err)
	}
	if st := j.Status().State; st != "canceled" {
		t.Fatalf("straggler state %s want canceled", st)
	}
}

func TestMetricsSnapshotShape(t *testing.T) {
	s, r := stubService(t, 2, 4)
	for i := 0; i < 3; i++ {
		if _, err := s.Submit(predSpec("VA", 20+i)); err != nil {
			t.Fatal(err)
		}
	}
	r.releaseAll(3)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && s.MetricsSnapshot().Jobs["done"] < 3 {
		time.Sleep(time.Millisecond)
	}
	snap := s.MetricsSnapshot()
	if snap.Submitted != 3 || snap.Jobs["done"] != 3 {
		t.Fatalf("snapshot %+v want 3 submitted/done", snap)
	}
	if snap.QueueCapacity != 4 || snap.Workers != 2 {
		t.Fatalf("capacity/workers %d/%d want 4/2", snap.QueueCapacity, snap.Workers)
	}
	h, ok := snap.Latency[WorkflowPrediction]
	if !ok || h.Count != 3 {
		t.Fatalf("latency histogram missing or wrong count: %+v", snap.Latency)
	}
	last := h.Buckets[len(h.Buckets)-1]
	if !last.Inf || last.Count != 3 {
		t.Fatalf("+Inf bucket %+v want cumulative 3", last)
	}
	if snap.Cache.Misses != 3 {
		t.Fatalf("cache misses %d want 3", snap.Cache.Misses)
	}
}

func TestRecentEvictionKeepsRegistryBounded(t *testing.T) {
	s, r := stubService(t, 1, 4)
	go func() {
		for {
			if _, ok := <-r.started; !ok {
				return
			}
			r.gate <- struct{}{}
		}
	}()
	var last *Job
	for i := 0; i < recentCap+10; i++ {
		j, err := s.Submit(predSpec("VA", (i%300)+1))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		last = j
	}
	s.mu.Lock()
	regSize, recSize := len(s.registry), len(s.recent)
	s.mu.Unlock()
	if recSize > recentCap || regSize > recentCap+1 {
		t.Fatalf("registry/recent grew unbounded: %d/%d", regSize, recSize)
	}
	if _, ok := s.Lookup(last.Hash); !ok {
		t.Fatal("most recent job evicted")
	}
	close(r.started)
}
