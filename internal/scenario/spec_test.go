package scenario

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestNormalizePredictionDefaults(t *testing.T) {
	s, err := Spec{Workflow: "Prediction", State: "va"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Workflow != WorkflowPrediction || s.State != "VA" {
		t.Fatalf("workflow/state not canonicalized: %+v", s)
	}
	if s.Days != 120 || s.Replicates != 15 || s.SHStart != 15 || s.SHEnd != 120 {
		t.Fatalf("defaults not filled: %+v", s)
	}
	if len(s.Configs) != 4 {
		t.Fatalf("%d default configs want 4", len(s.Configs))
	}
	if s.WhatIfs != nil || s.Night != nil {
		t.Fatalf("foreign fields not cleared: %+v", s)
	}
}

func TestNormalizeWhatIfDefaults(t *testing.T) {
	s, err := Spec{Workflow: WorkflowWhatIf, State: "VA"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Replicates != 5 {
		t.Fatalf("whatif replicates %d want 5", s.Replicates)
	}
	std := core.StandardWhatIfs()
	if len(s.WhatIfs) != len(std) {
		t.Fatalf("%d default what-ifs want %d", len(s.WhatIfs), len(std))
	}
	for i, w := range s.WhatIfs {
		if w.Name != std[i].Name {
			t.Fatalf("what-if %d name %q want %q", i, w.Name, std[i].Name)
		}
	}
}

func TestNormalizeNightDefaults(t *testing.T) {
	s, err := Spec{Workflow: WorkflowNight}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	n := s.Night
	if n == nil {
		t.Fatal("no night spec")
	}
	row := core.TableI()[1] // prediction family
	if n.Family != "prediction" || n.Cells != row.Cells || n.Replicates != row.Replicates {
		t.Fatalf("night defaults wrong: %+v", n)
	}
	if n.Heuristic != "FFDT-DC" || n.Seed != 1 {
		t.Fatalf("night heuristic/seed defaults wrong: %+v", n)
	}
	if s.State != "" || s.Days != 0 || s.Configs != nil {
		t.Fatalf("forecast fields not cleared for night: %+v", s)
	}
}

func TestHashCanonicalization(t *testing.T) {
	// A spec that spells out every default must hash identically to the
	// terse form — they denote the same deterministic computation.
	terse, err := Spec{Workflow: "prediction", State: "va"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	spelled, err := Spec{
		Workflow: "PREDICTION", State: "VA", Days: 120, Replicates: 15,
		SHStart: 15, SHEnd: 120, Configs: defaultConfigs(),
	}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	h1, err := terse.Hash("fp")
	if err != nil {
		t.Fatal(err)
	}
	h2, err := spelled.Hash("fp")
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("equivalent specs hash differently: %s vs %s", h1, h2)
	}
	if len(h1) != 64 {
		t.Fatalf("hash %q not 64 hex chars", h1)
	}

	other, _ := Spec{Workflow: "prediction", State: "VA", Days: 121}.Normalize()
	h3, _ := other.Hash("fp")
	if h3 == h1 {
		t.Fatal("different horizons hash equal")
	}
	h4, _ := terse.Hash("other-pipeline")
	if h4 == h1 {
		t.Fatal("different pipeline fingerprints hash equal")
	}
}

func TestNormalizeRejections(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"missing workflow", Spec{}, "missing workflow"},
		{"unknown workflow", Spec{Workflow: "calibrate-all"}, "unknown workflow"},
		{"bad state", Spec{Workflow: "prediction", State: "ZZ"}, "bad state"},
		{"days bound", Spec{Workflow: "prediction", State: "VA", Days: MaxDays + 1}, "exceeds bound"},
		{"replicates bound", Spec{Workflow: "prediction", State: "VA", Replicates: MaxReplicates + 1}, "exceeds bound"},
		{"bad config", Spec{Workflow: "prediction", State: "VA",
			Configs: []ParamSpec{{TAU: -1}}}, "out of range"},
		{"dup whatif", Spec{Workflow: "whatif", State: "VA",
			WhatIfs: []WhatIfSpec{{Name: "x"}, {Name: "x"}}}, "duplicate"},
		{"unnamed whatif", Spec{Workflow: "whatif", State: "VA",
			WhatIfs: []WhatIfSpec{{SHEndShift: -7}}}, "no name"},
		{"bad family", Spec{Workflow: "night", Night: &NightSpec{Family: "mystery"}}, "unknown night family"},
		{"bad heuristic", Spec{Workflow: "night", Night: &NightSpec{Heuristic: "LPT"}}, "unknown heuristic"},
		{"night cells bound", Spec{Workflow: "night", Night: &NightSpec{Cells: MaxNightCells + 1}}, "exceed bound"},
	}
	for _, tc := range cases {
		if _, err := tc.spec.Normalize(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.want)
		}
	}
}

func TestFingerprintDistinguishesPipelines(t *testing.T) {
	a := Fingerprint(core.NewPipeline(1))
	b := Fingerprint(core.NewPipeline(2))
	c := Fingerprint(core.NewPipeline(1, core.WithScale(999)))
	if a == b || a == c {
		t.Fatalf("fingerprints collide: %q %q %q", a, b, c)
	}
	if a != Fingerprint(core.NewPipeline(1)) {
		t.Fatal("fingerprint not deterministic")
	}
}
