package scenario

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"

	"repro/internal/obs"
)

// Server exposes a Backend over HTTP:
//
//	POST   /scenarios             submit a spec (JSON body); ?wait=1 blocks,
//	                              ?priority=interactive|normal|batch classifies
//	GET    /scenarios/{id}        poll job status
//	GET    /scenarios/{id}/result fetch the result when done
//	DELETE /scenarios/{id}        cancel a queued or running job
//	GET    /healthz               liveness
//	GET    /readyz                readiness (workers up; fidelity tiers warm)
//	GET    /metrics               queue / cache / latency snapshot
//	GET    /replicas              cluster view (replica-coordinator backends)
//
// Submit responses carry the spec's content address as the job ID, so
// clients can re-derive, share and re-poll result URLs.
//
// Backpressure contract (pinned by server_test.go):
//
//	ErrQueueFull → 429, Retry-After: 1, body reason "queue_full"
//	*ShedError   → 429, Retry-After: 5, body reason "shed" (class included)
//	ErrDraining  → 503, body reason "draining"
type Server struct {
	backend Backend
	mux     *http.ServeMux
	obs     *ServingObs
}

// replicaStatuser is the optional Backend extension that enables the
// /replicas route (implemented by the replica coordinator).
type replicaStatuser interface{ ReplicaStatus() any }

// NewServer wires the routes over a single service. An optional ServingObs
// enables request tracing, the flight recorder, RED series and SLO routes.
func NewServer(svc *Service, so ...*ServingObs) *Server {
	return NewBackendServer(AsBackend(svc), so...)
}

// NewBackendServer wires the routes over any Backend — one service or a
// replica coordinator fronting several. An optional ServingObs traces the
// scenario routes (submit/status/result/cancel), records every request
// into the flight recorder at /debug/requests, and serves SLO burn at
// /slo; without it the server behaves exactly as before.
func NewBackendServer(b Backend, so ...*ServingObs) *Server {
	s := &Server{backend: b, mux: http.NewServeMux()}
	if len(so) > 0 {
		s.obs = so[0]
	}
	s.mux.HandleFunc("POST /scenarios", s.obs.Middleware(s.handleSubmit))
	s.mux.HandleFunc("GET /scenarios/{id}", s.obs.Middleware(s.handleStatus))
	s.mux.HandleFunc("GET /scenarios/{id}/result", s.obs.Middleware(s.handleResult))
	s.mux.HandleFunc("DELETE /scenarios/{id}", s.obs.Middleware(s.handleCancel))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics.json", s.handleMetricsJSON)
	if s.obs != nil {
		s.mux.HandleFunc("GET /debug/requests", s.obs.handleDebugList)
		s.mux.HandleFunc("GET /debug/requests/{id}", s.obs.handleDebugGet)
		s.mux.HandleFunc("GET /slo", s.obs.handleSLO)
	}
	if rs, ok := b.(replicaStatuser); ok {
		s.mux.HandleFunc("GET /replicas", func(w http.ResponseWriter, _ *http.Request) {
			writeJSON(w, http.StatusOK, rs.ReplicaStatus())
		})
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// writeReasonError is writeError plus a machine-readable "reason" field, so
// clients can distinguish responses sharing a status code (queue_full vs
// shed both map to 429 but call for different backoff).
func writeReasonError(w http.ResponseWriter, code int, reason, msg string, extra map[string]string) {
	body := map[string]string{"error": msg, "reason": reason}
	for k, v := range extra {
		body[k] = v
	}
	writeJSON(w, code, body)
}

// handleSubmit admits a spec. Asynchronous submissions (the default) pin
// the job and return 202 with its status; ?wait=1 holds the request open
// until the job finishes and returns the result — and because the waiting
// request is the job's only interest, a client disconnect cancels the run.
// ?priority= (or X-Priority) selects the admission class.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad spec JSON: "+err.Error())
		return
	}
	priStr := r.URL.Query().Get("priority")
	if priStr == "" {
		priStr = r.Header.Get("X-Priority")
	}
	pri, err := ParsePriority(priStr)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	rt := obs.RequestTraceFrom(r.Context())
	if rt != nil {
		rt.SetRequest(strings.ToLower(spec.Workflow), pri.String())
	}
	job, err := s.backend.Submit(r.Context(), spec, pri)
	var shedErr *ShedError
	switch {
	case err == nil:
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeReasonError(w, http.StatusTooManyRequests, "queue_full", err.Error(), nil)
		return
	case errors.As(err, &shedErr):
		w.Header().Set("Retry-After", "5")
		writeReasonError(w, http.StatusTooManyRequests, "shed", err.Error(),
			map[string]string{"priority": shedErr.Class.String()})
		return
	case errors.Is(err, ErrDraining):
		writeReasonError(w, http.StatusServiceUnavailable, "draining", err.Error(), nil)
		return
	default:
		var bad *BadSpecError
		if errors.As(err, &bad) {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}

	if rt != nil {
		rt.Annotate("hash", job.ID())
	}

	wait := r.URL.Query().Get("wait")
	if wait == "" || wait == "0" || wait == "false" {
		job.Pin()
		job.Release()
		writeJSON(w, http.StatusAccepted, job.Status())
		return
	}
	// Synchronous: the request context carries the client's interest; when
	// the client disconnects, Release drops the job's last reference and
	// the run is cancelled. Release is deferred — not conditional on Wait's
	// error — so a ctx-expired waiter cannot leak its interest reference.
	defer job.Release()
	res, err := job.Wait(r.Context())
	if err != nil {
		if r.Context().Err() != nil {
			return // client gone; nothing to write
		}
		code := http.StatusInternalServerError
		if errors.Is(err, errCanceledResult) || job.Status().State == StateCanceled.String() {
			code = http.StatusConflict
		}
		writeError(w, code, err.Error())
		return
	}
	if rt != nil {
		if res.Tier != "" {
			rt.Annotate("tier", res.Tier)
			if res.Tier == "abm" {
				// The route decision may have fired on another request's
				// trace (single-flight): flag escalation from the result.
				rt.MarkEscalated()
			}
		}
		if res.Hash != "" {
			rt.Annotate("hash", res.Hash)
		}
	}
	writeJSON(w, http.StatusOK, res)
}

// errCanceledResult classifies cancellation in handleSubmit.
var errCanceledResult = errors.New("scenario: job canceled")

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.backend.Lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown scenario")
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.backend.Lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown scenario")
		return
	}
	st := job.Status()
	switch st.State {
	case StateDone.String():
		// The job is terminal: Wait returns immediately, so don't race it
		// against the request context (a just-disconnected client could
		// otherwise turn a completed result into a spurious ctx error).
		res, err := job.Wait(context.Background())
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, res)
	case StateFailed.String():
		writeError(w, http.StatusInternalServerError, st.Error)
	case StateCanceled.String():
		writeError(w, http.StatusConflict, "scenario canceled")
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.backend.Cancel(id) {
		writeJSON(w, http.StatusOK, map[string]string{"id": id, "state": "canceling"})
		return
	}
	if _, ok := s.backend.Lookup(id); ok {
		writeError(w, http.StatusConflict, "scenario already finished")
		return
	}
	writeError(w, http.StatusNotFound, "unknown scenario")
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.backend.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness, distinct from /healthz liveness: a live
// process may still be warming up (workers not started, no emulator fitted
// yet under fidelity serving). The body always carries the per-layer state
// so operators can see which gate is holding readiness back.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	r := s.backend.Readiness()
	code := http.StatusOK
	if !r.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, r)
}

// handleMetrics serves the unified registry in Prometheus text exposition;
// the pre-existing JSON shape moved to /metrics.json.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.backend.Registry().WritePrometheus(w)
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.backend.MetricsSnapshot())
}
