package scenario

import (
	"encoding/json"
	"errors"
	"net/http"
)

// Server exposes the service over HTTP:
//
//	POST   /scenarios             submit a spec (JSON body); ?wait=1 blocks
//	GET    /scenarios/{id}        poll job status
//	GET    /scenarios/{id}/result fetch the result when done
//	DELETE /scenarios/{id}        cancel a queued or running job
//	GET    /healthz               liveness
//	GET    /readyz                readiness (workers up; fidelity tiers warm)
//	GET    /metrics               queue / cache / latency snapshot
//
// Submit responses carry the spec's content address as the job ID, so
// clients can re-derive, share and re-poll result URLs.
type Server struct {
	svc *Service
	mux *http.ServeMux
}

// NewServer wires the routes.
func NewServer(svc *Service) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /scenarios", s.handleSubmit)
	s.mux.HandleFunc("GET /scenarios/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /scenarios/{id}/result", s.handleResult)
	s.mux.HandleFunc("DELETE /scenarios/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics.json", s.handleMetricsJSON)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// handleSubmit admits a spec. Asynchronous submissions (the default) pin
// the job and return 202 with its status; ?wait=1 holds the request open
// until the job finishes and returns the result — and because the waiting
// request is the job's only interest, a client disconnect cancels the run.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad spec JSON: "+err.Error())
		return
	}
	job, err := s.svc.Submit(spec)
	switch {
	case err == nil:
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	default:
		var bad *BadSpecError
		if errors.As(err, &bad) {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}

	wait := r.URL.Query().Get("wait")
	if wait == "" || wait == "0" || wait == "false" {
		job.Pin()
		job.Release()
		writeJSON(w, http.StatusAccepted, job.Status())
		return
	}
	// Synchronous: the request context carries the client's interest; when
	// the client disconnects, Release drops the job's last reference and
	// the run is cancelled.
	defer job.Release()
	res, err := job.Wait(r.Context())
	if err != nil {
		if r.Context().Err() != nil {
			return // client gone; nothing to write
		}
		code := http.StatusInternalServerError
		if errors.Is(err, errCanceledResult) || job.Status().State == StateCanceled.String() {
			code = http.StatusConflict
		}
		writeError(w, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// errCanceledResult classifies cancellation in handleSubmit.
var errCanceledResult = errors.New("scenario: job canceled")

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.svc.Lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown scenario")
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.svc.Lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown scenario")
		return
	}
	st := job.Status()
	switch st.State {
	case StateDone.String():
		res, err := job.Wait(r.Context())
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, res)
	case StateFailed.String():
		writeError(w, http.StatusInternalServerError, st.Error)
	case StateCanceled.String():
		writeError(w, http.StatusConflict, "scenario canceled")
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.svc.Cancel(id) {
		writeJSON(w, http.StatusOK, map[string]string{"id": id, "state": "canceling"})
		return
	}
	if _, ok := s.svc.Lookup(id); ok {
		writeError(w, http.StatusConflict, "scenario already finished")
		return
	}
	writeError(w, http.StatusNotFound, "unknown scenario")
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.svc.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness, distinct from /healthz liveness: a live
// process may still be warming up (workers not started, no emulator fitted
// yet under fidelity serving). The body always carries the per-layer state
// so operators can see which gate is holding readiness back.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	r := s.svc.Readiness()
	code := http.StatusOK
	if !r.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, r)
}

// handleMetrics serves the unified registry in Prometheus text exposition;
// the pre-existing JSON shape moved to /metrics.json.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.svc.Registry().WritePrometheus(w)
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.MetricsSnapshot())
}
