package scenario

import (
	"context"

	"repro/internal/obs"
)

// Handle is the waiter-side view of an admitted submission: the HTTP layer
// (and any other front door) holds exactly one interest reference per
// Handle and must Release it. *Job implements Handle for the single-service
// deployment; the replica coordinator's ticket implements it for the
// multi-replica one, where the job behind a handle may migrate between
// replicas mid-wait.
type Handle interface {
	// ID is the spec's content address.
	ID() string
	// Status snapshots the submission.
	Status() JobStatus
	// Wait blocks until a terminal result or ctx expiry. A ctx expiry does
	// NOT release the caller's interest — pair every Handle with Release.
	Wait(ctx context.Context) (*Result, error)
	// Pin keeps the work alive independent of interest references.
	Pin()
	// Release drops the caller's interest reference; the last release of an
	// unpinned, unfinished submission cancels it.
	Release()
}

// ID returns the job's content address (Handle).
func (j *Job) ID() string { return j.Hash }

// Backend is the serving surface the HTTP layer runs over: a single
// *Service (via serviceBackend) or a replica coordinator fronting many.
type Backend interface {
	// Submit admits a spec at a priority class and returns a Handle holding
	// one interest reference. ctx contributes tracing identity only (a
	// request trace rides it into the queue and engine); it does NOT govern
	// the submission's lifecycle — that is what interest references are for.
	// Errors: *BadSpecError, ErrQueueFull, *ShedError, ErrDraining.
	Submit(ctx context.Context, spec Spec, pri Priority) (Handle, error)
	// Lookup resolves a previously issued ID. The returned Handle carries
	// NO interest reference: Status and Wait are safe, Release is not owed.
	Lookup(id string) (Handle, bool)
	// Cancel cancels a queued or running submission by ID.
	Cancel(id string) bool
	// Draining reports whether shutdown has begun.
	Draining() bool
	// Readiness is the /readyz payload.
	Readiness() Readiness
	// Registry backs the Prometheus /metrics endpoint.
	Registry() *obs.Registry
	// MetricsSnapshot is the legacy /metrics.json payload.
	MetricsSnapshot() Snapshot
}

// serviceBackend adapts one *Service to the Backend surface.
type serviceBackend struct{ svc *Service }

// AsBackend wraps a single Service as a Backend for the HTTP layer.
func AsBackend(svc *Service) Backend { return serviceBackend{svc: svc} }

func (b serviceBackend) Submit(ctx context.Context, spec Spec, pri Priority) (Handle, error) {
	j, err := b.svc.SubmitCtx(ctx, spec, pri)
	if err != nil {
		return nil, err
	}
	return j, nil
}

func (b serviceBackend) Lookup(id string) (Handle, bool) {
	j, ok := b.svc.Lookup(id)
	if !ok {
		return nil, false
	}
	return j, true
}

func (b serviceBackend) Cancel(id string) bool     { return b.svc.Cancel(id) }
func (b serviceBackend) Draining() bool            { return b.svc.Draining() }
func (b serviceBackend) Readiness() Readiness      { return b.svc.Readiness() }
func (b serviceBackend) Registry() *obs.Registry   { return b.svc.Registry() }
func (b serviceBackend) MetricsSnapshot() Snapshot { return b.svc.MetricsSnapshot() }
