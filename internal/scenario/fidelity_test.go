package scenario

import (
	"context"
	"encoding/json"
	"math"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fidelity"
)

func TestNormalizeFidelityTiers(t *testing.T) {
	for _, tc := range []struct {
		in, want   string
		wantBudget float64
	}{
		{"", "", 0},
		{"AUTO", "auto", fidelity.DefaultBudget},
		{"  Auto ", "auto", fidelity.DefaultBudget},
		{"Emulator", "emulator", 0},
		{"METAPOP", "metapop", 0},
		{"abm", "abm", 0},
	} {
		s, err := Spec{Workflow: "prediction", State: "VA", Fidelity: tc.in}.Normalize()
		if err != nil {
			t.Fatalf("fidelity %q rejected: %v", tc.in, err)
		}
		if s.Fidelity != tc.want || s.MaxUncertainty != tc.wantBudget {
			t.Errorf("fidelity %q → (%q, %v), want (%q, %v)",
				tc.in, s.Fidelity, s.MaxUncertainty, tc.want, tc.wantBudget)
		}
	}
}

func TestNormalizeFidelityRejections(t *testing.T) {
	for name, spec := range map[string]Spec{
		"unknown tier": {Workflow: "prediction", State: "VA", Fidelity: "gp"},
		"neg budget":   {Workflow: "prediction", State: "VA", Fidelity: "auto", MaxUncertainty: -0.5},
		"nan budget":   {Workflow: "prediction", State: "VA", Fidelity: "auto", MaxUncertainty: math.NaN()},
		"inf budget":   {Workflow: "prediction", State: "VA", Fidelity: "auto", MaxUncertainty: math.Inf(1)},
	} {
		if _, err := spec.Normalize(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestFidelityBudgetClearedWhereMeaningless: non-auto tiers ignore the
// budget, so it must not leak into the content hash.
func TestFidelityBudgetClearedWhereMeaningless(t *testing.T) {
	a, err := Spec{Workflow: "prediction", State: "VA", Fidelity: "abm", MaxUncertainty: 0.2}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Spec{Workflow: "prediction", State: "VA", Fidelity: "abm"}.Normalize()
	ha, _ := a.Hash("fp")
	hb, _ := b.Hash("fp")
	if ha != hb {
		t.Fatal("budget under forced tier changed the hash")
	}
	// Night specs have no fidelity at all.
	n, err := Spec{Workflow: "night", Fidelity: "auto", MaxUncertainty: 0.3}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Fidelity != "" || n.MaxUncertainty != 0 {
		t.Fatalf("night spec kept fidelity fields: %+v", n)
	}
}

// TestLegacySpecHashUnchanged pins the exact content address of a
// fidelity-free spec: the new trailing Spec fields are omitempty, so legacy
// clients' cache keys must survive this PR byte-for-byte.
func TestLegacySpecHashUnchanged(t *testing.T) {
	s, err := Spec{Workflow: "prediction", State: "VA"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	canon, err := s.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(canon), "fidelity") || strings.Contains(string(canon), "max_uncertainty") {
		t.Fatalf("legacy canonical JSON mentions fidelity fields: %s", canon)
	}
	const pinned = "1be607d7b4868ec6d705c5cd79fa6638b917c1922dd4f6e0fc39645106a8935f"
	h, err := s.Hash("pin")
	if err != nil {
		t.Fatal(err)
	}
	if h != pinned {
		t.Fatalf("legacy spec hash drifted: %s (pinned %s)", h, pinned)
	}
}

// TestFidelityGoldenJSONRoundTrip: a spec with fidelity fields survives
// JSON marshal → unmarshal → normalize with identical canonical form and
// hash, regardless of field order on the wire.
func TestFidelityGoldenJSONRoundTrip(t *testing.T) {
	s, err := Spec{Workflow: "whatif", State: "va", Fidelity: "Auto", MaxUncertainty: 0.25}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	canon, err := s.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(canon, &back); err != nil {
		t.Fatal(err)
	}
	back2, err := back.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	canon2, _ := back2.Canonical()
	if string(canon) != string(canon2) {
		t.Fatalf("round trip changed canonical form:\n%s\n%s", canon, canon2)
	}

	// Same fields, shuffled order on the wire ⇒ same SHA-256.
	shuffled := `{"max_uncertainty":0.25,"state":"VA","fidelity":"auto","workflow":"whatif"}`
	var alt Spec
	if err := json.Unmarshal([]byte(shuffled), &alt); err != nil {
		t.Fatal(err)
	}
	altN, err := alt.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	h1, _ := s.Hash("fp")
	h2, _ := altN.Hash("fp")
	if h1 != h2 {
		t.Fatalf("field order changed the hash: %s vs %s", h1, h2)
	}
}

func fidelityTestService(t *testing.T, scale int, minFit int) (*Service, *core.Pipeline, *fidelity.Router) {
	t.Helper()
	p := core.NewPipeline(2020, core.WithScale(scale), core.WithParallelism(2))
	router := fidelity.NewRouter(fidelity.Config{
		Fingerprint: p.Fingerprint(), Scale: scale, MinFit: minFit, MaxStale: 1, Sync: true,
	})
	svc := NewService(Config{Pipeline: p, Workers: 1, Fidelity: router})
	t.Cleanup(func() {
		_ = svc.Drain(context.Background())
		router.Close()
	})
	return svc, p, router
}

// TestFidelityABMBitIdentical: a spec forced to the abm tier must produce
// byte-identical forecasts to the same spec on the legacy runner — the
// ladder may only annotate, never perturb, the exact path.
func TestFidelityABMBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the ABM")
	}
	svc, p, _ := fidelityTestService(t, 40000, 4)
	spec := Spec{
		Workflow: "prediction", State: "VA", Days: 30, Replicates: 2,
		Configs: []ParamSpec{{TAU: 0.2, SYMP: 0.65, SHCompliance: 0.5, VHICompliance: 0.5}},
	}
	legacy, err := PipelineRunner(p)(context.Background(), mustNormalize(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	spec.Fidelity = "abm"
	job, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Tier != "abm" || res.TierReason != "forced" || res.Uncertainty != 0 {
		t.Fatalf("tier annotation = (%q, %q, %v)", res.Tier, res.TierReason, res.Uncertainty)
	}
	if !reflect.DeepEqual(res.Prediction, legacy.Prediction) {
		t.Fatal("forced-abm forecast differs from the legacy path")
	}

	// A fidelity-free spec through the fidelity runner is the legacy result
	// with no tier annotation at all.
	spec.Fidelity = ""
	job2, err := svc.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := job2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Tier != "" || res2.TierReason != "" || res2.Uncertainty != 0 {
		t.Fatalf("legacy spec carries tier annotation: %+v", res2)
	}
	if !reflect.DeepEqual(res2.Prediction, legacy.Prediction) {
		t.Fatal("legacy spec through fidelity runner differs from legacy runner")
	}
}

func mustNormalize(t *testing.T, s Spec) Spec {
	t.Helper()
	ns, err := s.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	return ns
}

// TestFidelityServiceLearns: through the full service, auto-routed specs
// escalate to the ABM while cold, train the emulator, and eventually serve
// without simulating.
func TestFidelityServiceLearns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the ABM")
	}
	svc, _, router := fidelityTestService(t, 40000, 3)
	submit := func(tau float64) *Result {
		t.Helper()
		job, err := svc.Submit(Spec{
			Workflow: "prediction", State: "VA", Days: 30, Replicates: 2,
			Configs:  []ParamSpec{{TAU: tau, SYMP: 0.65, SHCompliance: 0.5, VHICompliance: 0.5}},
			Fidelity: "auto", MaxUncertainty: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := job.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, tau := range []float64{0.16, 0.20, 0.24} {
		if res := submit(tau); res.Tier != "abm" {
			t.Fatalf("cold query served by %q", res.Tier)
		}
	}
	if router.FittedFamilies() != 1 {
		t.Fatalf("emulator not fitted after %d observations", 3)
	}
	res := submit(0.18)
	if res.Tier != "emulator" {
		t.Fatalf("warm in-region query served by %q (%s)", res.Tier, res.TierReason)
	}
	if res.Uncertainty <= 0 {
		t.Fatalf("emulator answer with zero uncertainty")
	}
	if res.Prediction == nil || len(res.Prediction.Confirmed.Median) != 30 {
		t.Fatalf("malformed emulator result: %+v", res.Prediction)
	}
}

func TestReadyzGatesOnFidelityWarmth(t *testing.T) {
	svc, _, _ := fidelityTestService(t, 40000, 3)
	srv := NewServer(svc)

	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest("GET", "/readyz", nil))
	if w.Code != 503 {
		t.Fatalf("cold /readyz = %d, want 503", w.Code)
	}
	var r Readiness
	if err := json.Unmarshal(w.Body.Bytes(), &r); err != nil {
		t.Fatal(err)
	}
	if r.Ready {
		t.Fatal("cold service reports ready")
	}
	if r.Fidelity == nil || r.Fidelity["emulator"].Ready {
		t.Fatalf("per-tier state missing or wrong: %+v", r.Fidelity)
	}
	if !r.Fidelity["abm"].Ready || !r.Fidelity["metapop"].Ready {
		t.Fatalf("abm/metapop tiers must always be ready: %+v", r.Fidelity)
	}
	// /healthz is liveness and stays 200 while /readyz gates.
	hw := httptest.NewRecorder()
	srv.ServeHTTP(hw, httptest.NewRequest("GET", "/healthz", nil))
	if hw.Code != 200 {
		t.Fatalf("/healthz = %d, want 200", hw.Code)
	}
}

func TestReadyzWithoutFidelity(t *testing.T) {
	svc := NewService(Config{Runner: func(ctx context.Context, spec Spec) (*Result, error) {
		return &Result{}, nil
	}, Fingerprint: "fp", Workers: 1})
	t.Cleanup(func() { _ = svc.Drain(context.Background()) })
	// Workers start asynchronously; readiness flips once they are up.
	deadline := 0
	for !svc.Readiness().Ready && deadline < 1000 {
		deadline++
	}
	srv := NewServer(svc)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest("GET", "/readyz", nil))
	var r Readiness
	if err := json.Unmarshal(w.Body.Bytes(), &r); err != nil {
		t.Fatal(err)
	}
	if r.Fidelity != nil {
		t.Fatalf("fidelity-less service reports tier state: %+v", r.Fidelity)
	}
}

func TestResultCacheHitRatioGauge(t *testing.T) {
	svc := NewService(Config{Runner: func(ctx context.Context, spec Spec) (*Result, error) {
		return &Result{}, nil
	}, Fingerprint: "fp", Workers: 1})
	t.Cleanup(func() { _ = svc.Drain(context.Background()) })
	var sb strings.Builder
	if err := svc.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "epi_result_cache_hit_ratio") {
		t.Fatal("epi_result_cache_hit_ratio not exposed")
	}
}
