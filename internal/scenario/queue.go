package scenario

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"sync"

	"repro/internal/castore"
	"repro/internal/core"
	"repro/internal/fidelity"
	"repro/internal/obs"
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull is 429 backpressure: the bounded queue cannot admit the
	// job (mirrors the nightly pipeline's shed semantics — excess load is
	// dropped explicitly, never buffered unboundedly).
	ErrQueueFull = errors.New("scenario: queue full")
	// ErrDraining rejects submissions during graceful shutdown.
	ErrDraining = errors.New("scenario: service draining")
	// ErrStolen finalizes a queued job claimed by a peer replica through
	// StealQueued. A coordinator watcher that observes it must NOT surface
	// it to waiters: the steal path owns the redispatch, so no client ever
	// sees this error through a ticket.
	ErrStolen = errors.New("scenario: job stolen by a peer replica")
)

// Priority classifies a submission for admission control. Interactive
// requests (a policy-maker at a dashboard) may use the whole queue; normal
// requests keep a small headroom reserved for interactive ones on large
// queues; batch requests (sweeps, pre-warming) are shed once half the queue
// is occupied so background load can never starve the foreground.
type Priority int

// Priority classes, lowest ordinal = default.
const (
	PriorityNormal Priority = iota
	PriorityInteractive
	PriorityBatch
)

func (p Priority) String() string {
	switch p {
	case PriorityInteractive:
		return "interactive"
	case PriorityBatch:
		return "batch"
	default:
		return "normal"
	}
}

// ParsePriority maps the wire form ("", interactive, normal, batch) to a
// Priority; the empty string is PriorityNormal.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "", "normal":
		return PriorityNormal, nil
	case "interactive":
		return PriorityInteractive, nil
	case "batch":
		return PriorityBatch, nil
	default:
		return PriorityNormal, fmt.Errorf("scenario: unknown priority %q (want interactive | normal | batch)", s)
	}
}

// ShedError rejects a submission by priority-class admission control: the
// queue still has room, but not for this class. Distinct from ErrQueueFull
// so clients can tell "the service is saturated" from "your class is being
// shed to protect the foreground" (and back off accordingly).
type ShedError struct {
	Class Priority
	// Depth / Capacity snapshot the queue at the admission decision.
	Depth    int
	Capacity int
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("scenario: %s-priority submission shed (queue %d/%d)", e.Class, e.Depth, e.Capacity)
}

// DrainError reports a drain whose post-cancel grace expired: the listed
// jobs were cancelled but their runners had not unwound when Drain gave up
// waiting. It unwraps to the drain context's error so existing
// errors.Is(err, context.DeadlineExceeded) checks keep working.
type DrainError struct {
	// Running lists the hashes of jobs still occupying a worker, sorted.
	Running []string
	cause   error
}

func (e *DrainError) Error() string {
	return fmt.Sprintf("scenario: drain grace expired with %d jobs still running (%s): %v",
		len(e.Running), strings.Join(e.Running, ", "), e.cause)
}

func (e *DrainError) Unwrap() error { return e.cause }

// BadSpecError wraps a validation failure (HTTP 400).
type BadSpecError struct{ Err error }

func (e *BadSpecError) Error() string { return e.Err.Error() }
func (e *BadSpecError) Unwrap() error { return e.Err }

// JobState is the lifecycle of a job.
type JobState int32

// Job lifecycle states.
const (
	StateQueued JobState = iota
	StateRunning
	StateDone
	StateFailed
	StateCanceled
)

func (s JobState) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("JobState(%d)", int32(s))
	}
}

// Runner executes one normalized spec. The default runner drives the
// core.Pipeline workflows; tests substitute stubs.
type Runner func(ctx context.Context, spec Spec) (*Result, error)

// Job is one admitted scenario run. Identical in-flight specs share one Job
// (single-flight): every submitter holds an interest reference, and when
// the last interested party walks away the run is cancelled so abandoned
// requests stop burning CPU.
type Job struct {
	// Hash is the spec's content address and the job's public ID.
	Hash string
	// Spec is the normalized spec.
	Spec Spec

	svc    *Service
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
	// runCtx carries the submitter's tracing identity (tracer, current span,
	// request trace) on top of the job's own lifecycle context (obs.AdoptTrace)
	// so engine spans report into the submitting request's trace while
	// cancellation stays bound to j.ctx. Equal to j.ctx for untraced
	// submissions. Set before the job is published; read-only afterwards.
	runCtx context.Context
	// pri is the admission class the job entered the queue under (for the
	// per-class queue accounting).
	pri Priority
	// qspan is the open queue.wait span, ended exactly once when the job
	// leaves the queue (run, steal, or cancel). Span methods are internally
	// synchronized and nil-safe.
	qspan *obs.Span

	mu       sync.Mutex
	state    JobState
	err      error
	result   *Result
	interest int
	pinned   bool
	shared   int64
	cached   bool
	started  time.Time
}

// completedJob wraps a cache hit as an already-done job.
func completedJob(hash string, spec Spec, res *Result) *Job {
	j := &Job{Hash: hash, Spec: spec, done: make(chan struct{}),
		state: StateDone, result: res, cached: true}
	close(j.done)
	return j
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job finishes or ctx is done.
func (j *Job) Wait(ctx context.Context) (*Result, error) {
	select {
	case <-j.done:
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.result, j.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Pin keeps the job alive independent of interest references — an
// asynchronously submitted job must survive its submitter's disconnect
// until polled or explicitly cancelled.
func (j *Job) Pin() {
	j.mu.Lock()
	j.pinned = true
	j.mu.Unlock()
}

// Release drops one interest reference (a waiting client that completed or
// disconnected). When the count reaches zero on an unpinned, unfinished
// job, the run is cancelled.
func (j *Job) Release() {
	if j.svc == nil {
		return // cache-hit pseudo job
	}
	s := j.svc
	s.mu.Lock()
	j.mu.Lock()
	j.interest--
	abandon := j.interest <= 0 && !j.pinned && (j.state == StateQueued || j.state == StateRunning)
	if abandon && j.state == StateQueued {
		s.cancelQueuedLocked(j)
		j.mu.Unlock()
		s.mu.Unlock()
		j.cancel()
		return
	}
	j.mu.Unlock()
	s.mu.Unlock()
	if abandon {
		j.cancel() // running: the runner observes ctx and unwinds
	}
}

// JobStatus is the poll payload.
type JobStatus struct {
	ID       string `json:"id"`
	Workflow string `json:"workflow"`
	State    string `json:"state"`
	// Shared counts submitters deduplicated onto this run.
	Shared int64 `json:"shared"`
	// Cached marks a result served straight from the cache.
	Cached bool   `json:"cached"`
	Error  string `json:"error,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.Hash, Workflow: j.Spec.Workflow, State: j.state.String(),
		Shared: j.shared, Cached: j.cached,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// Config parameterizes a Service.
type Config struct {
	// Name identifies the service in traces and pprof labels — the replica
	// coordinator names its members "r0", "r1", ...; a single service
	// defaults to "r0".
	Name string
	// Pipeline is the shared workflow substrate.
	Pipeline *core.Pipeline
	// Workers is the fixed worker-pool size (default 2).
	Workers int
	// QueueCap bounds queued jobs; a full queue rejects with ErrQueueFull
	// (default 16).
	QueueCap int
	// CacheCap bounds the LRU result cache (default 64).
	CacheCap int
	// Runner overrides the pipeline runner (tests).
	Runner Runner
	// Fingerprint overrides the pipeline fingerprint (tests without a
	// pipeline).
	Fingerprint string
	// Registry receives the service's metric series (queue depth, in-flight
	// jobs, cache size/hit-ratio, per-workflow latency histograms). Nil
	// allocates a private registry, reachable via Service.Registry().
	Registry *obs.Registry
	// Fidelity enables the fidelity ladder: specs carrying a fidelity field
	// route through it; everything else takes the exact path. Nil disables
	// the ladder (fidelity specs then fall through to the legacy runner,
	// which ignores the field).
	Fidelity *fidelity.Router
	// Shared is an optional peer-visible content-addressed result store.
	// Completed results are published into it, and submissions consult it
	// after the local cache — so in a multi-replica deployment any replica
	// serves any peer's cached result instead of recomputing it. All
	// services sharing a store must share a pipeline fingerprint.
	Shared *castore.Store[*Result]
	// DrainGrace bounds how long Drain waits for cancelled runners to
	// unwind after its context expires (default 5s). A runner that ignores
	// cancellation past the grace is abandoned and reported via DrainError.
	DrainGrace time.Duration
}

// Service is the scenario engine: admission control, content-addressed
// cache, single-flight queue, worker pool, metrics, graceful drain.
type Service struct {
	name        string
	runner      Runner
	fingerprint string
	cache       *Cache
	shared      *castore.Store[*Result]
	metrics     *Metrics
	workers     int
	queueCap    int
	drainGrace  time.Duration
	fidelity    *fidelity.Router
	workersUp   atomic.Int64

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu       sync.Mutex // guards the fields below; lock order: Service.mu before Job.mu
	queue    chan *Job
	inflight map[string]*Job // queued or running, by hash (the single-flight table)
	recent   []*Job          // terminal jobs kept for status polls, oldest first
	registry map[string]*Job // every known job, for status lookup
	draining bool
	counts   struct {
		queued, running                int
		queuedBy                       [3]int // per Priority class
		done, failed, canceled, stolen int64
	}
}

// recentCap bounds how many terminal jobs stay pollable (results live on in
// the LRU cache beyond this).
const recentCap = 256

// NewService builds and starts a service; callers must Drain it.
func NewService(cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 16
	}
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = 5 * time.Second
	}
	if cfg.Name == "" {
		cfg.Name = "r0"
	}
	s := &Service{
		name:       cfg.Name,
		workers:    cfg.Workers,
		queueCap:   cfg.QueueCap,
		drainGrace: cfg.DrainGrace,
		cache:      NewCache(cfg.CacheCap),
		shared:     cfg.Shared,
		metrics:    NewMetrics(cfg.Registry),
		queue:      make(chan *Job, cfg.QueueCap),
		inflight:   map[string]*Job{},
		registry:   map[string]*Job{},
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.fidelity = cfg.Fidelity
	s.runner = cfg.Runner
	if s.runner == nil {
		if cfg.Fidelity != nil {
			s.runner = FidelityPipelineRunner(cfg.Pipeline, cfg.Fidelity)
		} else {
			s.runner = PipelineRunner(cfg.Pipeline)
		}
	}
	s.fingerprint = cfg.Fingerprint
	if s.fingerprint == "" && cfg.Pipeline != nil {
		s.fingerprint = Fingerprint(cfg.Pipeline)
	}
	s.registerGauges()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Registry returns the obs registry carrying the service's metric series —
// the source the HTTP layer's Prometheus /metrics endpoint renders.
func (s *Service) Registry() *obs.Registry { return s.metrics.Registry() }

// registerGauges wires the live queue/job/cache state onto the registry as
// exposition-time callbacks. Callbacks run outside the registry lock, so
// taking s.mu / the cache lock here is deadlock-free.
func (s *Service) registerGauges() {
	reg := s.Registry()
	jobCount := func(pick func() int64) func() float64 {
		return func() float64 { return float64(pick()) }
	}
	counts := func() (queued, running int, done, failed, canceled int64, draining bool) {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.counts.queued, s.counts.running, s.counts.done, s.counts.failed, s.counts.canceled, s.draining
	}
	reg.Help("epi_scenario_queue_depth", "jobs waiting for a worker")
	reg.GaugeFunc("epi_scenario_queue_depth", jobCount(func() int64 { q, _, _, _, _, _ := counts(); return int64(q) }))
	reg.Help("epi_scenario_queue_depth_class", "jobs waiting for a worker, by priority class")
	for _, pri := range []Priority{PriorityInteractive, PriorityNormal, PriorityBatch} {
		pri := pri
		reg.GaugeFunc(`epi_scenario_queue_depth_class{class="`+pri.String()+`"}`, func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.counts.queuedBy[pri])
		})
	}
	reg.Help("epi_scenario_queue_capacity", "bounded queue capacity")
	reg.GaugeFunc("epi_scenario_queue_capacity", func() float64 { return float64(s.queueCap) })
	reg.Help("epi_scenario_workers", "worker-pool size")
	reg.GaugeFunc("epi_scenario_workers", func() float64 { return float64(s.workers) })
	reg.Help("epi_scenario_inflight_jobs", "jobs currently running on a worker")
	reg.GaugeFunc("epi_scenario_inflight_jobs", jobCount(func() int64 { _, r, _, _, _, _ := counts(); return int64(r) }))
	reg.Help("epi_scenario_draining", "1 while the service is shutting down")
	reg.GaugeFunc("epi_scenario_draining", func() float64 {
		if _, _, _, _, _, d := counts(); d {
			return 1
		}
		return 0
	})
	reg.Help("epi_scenario_jobs_total", "terminal jobs by state")
	reg.CounterFunc(`epi_scenario_jobs_total{state="done"}`, jobCount(func() int64 { _, _, d, _, _, _ := counts(); return d }))
	reg.CounterFunc(`epi_scenario_jobs_total{state="failed"}`, jobCount(func() int64 { _, _, _, f, _, _ := counts(); return f }))
	reg.CounterFunc(`epi_scenario_jobs_total{state="canceled"}`, jobCount(func() int64 { _, _, _, _, c, _ := counts(); return c }))
	reg.Help("epi_scenario_cache_entries", "cached results")
	reg.GaugeFunc("epi_scenario_cache_entries", func() float64 { return float64(s.cache.Stats().Entries) })
	reg.Help("epi_scenario_cache_capacity", "result-cache capacity")
	reg.GaugeFunc("epi_scenario_cache_capacity", func() float64 { return float64(s.cache.Stats().Capacity) })
	reg.Help("epi_scenario_cache_hits_total", "result-cache hits")
	reg.CounterFunc("epi_scenario_cache_hits_total", func() float64 { return float64(s.cache.Stats().Hits) })
	reg.Help("epi_scenario_cache_misses_total", "specs that had to be computed")
	reg.CounterFunc("epi_scenario_cache_misses_total", func() float64 { return float64(s.cache.Stats().Misses) })
	reg.Help("epi_scenario_cache_evictions_total", "results evicted by the LRU")
	reg.CounterFunc("epi_scenario_cache_evictions_total", func() float64 { return float64(s.cache.Stats().Evictions) })
	reg.Help("epi_scenario_cache_hit_ratio", "hits over lookups, 0 when idle")
	reg.GaugeFunc("epi_scenario_cache_hit_ratio", func() float64 { return s.cache.Stats().HitRatio })
	reg.Help("epi_result_cache_hit_ratio", "result-cache hits over lookups (alias of epi_scenario_cache_hit_ratio)")
	reg.GaugeFunc("epi_result_cache_hit_ratio", func() float64 { return s.cache.Stats().HitRatio })
}

// Submit normalizes, hashes and admits a spec at normal priority. The
// caller holds one interest reference on the returned job and must Release
// it (cache hits return an already-done job where Release is a no-op).
// Identical in-flight specs share one job; a full queue returns
// ErrQueueFull.
func (s *Service) Submit(spec Spec) (*Job, error) {
	return s.SubmitPri(spec, PriorityNormal)
}

// SubmitPri is Submit with an explicit priority class. Admission control is
// layered on the bounded queue: batch submissions are shed once half the
// queue is occupied, normal submissions keep a small headroom reserved for
// interactive ones on queues of eight or more slots, and interactive
// submissions may fill the queue. Cache and single-flight attachment are
// class-blind — a result that already exists (or is being computed) is
// served to any class.
func (s *Service) SubmitPri(spec Spec, pri Priority) (*Job, error) {
	return s.SubmitCtx(context.Background(), spec, pri)
}

// SubmitCtx is SubmitPri with the submitter's context: when ctx carries a
// request trace (obs), the admission decision, queue wait, and the job's
// whole execution report spans and events into it. ctx contributes ONLY
// tracing identity — job lifecycle and cancellation are governed by
// interest references and the service's own context tree, exactly as for
// an untraced submission, so traced runs stay bit-identical to untraced.
func (s *Service) SubmitCtx(ctx context.Context, spec Spec, pri Priority) (*Job, error) {
	ns, err := spec.Normalize()
	if err != nil {
		return nil, &BadSpecError{Err: err}
	}
	hash, err := ns.Hash(s.fingerprint)
	if err != nil {
		return nil, &BadSpecError{Err: err}
	}
	if res, ok := s.cache.Get(hash); ok {
		obs.Event(ctx, "cache.hit", obs.String("hash", hash), obs.String("replica", s.name))
		return completedJob(hash, ns, res), nil
	}
	if s.shared != nil {
		if res, ok := s.shared.Get(hash); ok {
			// A peer already computed this spec: forward its result and
			// keep a local copy so repeats stay local.
			s.cache.Put(hash, res)
			s.metrics.incSharedHit()
			obs.Event(ctx, "castore.hit", obs.String("hash", hash), obs.String("replica", s.name))
			return completedJob(hash, ns, res), nil
		}
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	if j, ok := s.inflight[hash]; ok {
		j.mu.Lock()
		j.shared++
		j.interest++
		state := j.state
		j.mu.Unlock()
		s.mu.Unlock()
		s.metrics.incDeduped()
		obs.Event(ctx, "singleflight.attach",
			obs.String("hash", hash), obs.String("owner_state", state.String()),
			obs.String("replica", s.name))
		return j, nil
	}
	if !s.admitLocked(pri) {
		depth := s.counts.queued
		s.mu.Unlock()
		if depth >= s.queueCap {
			// Not a class decision: the queue is genuinely full.
			s.metrics.incRejected()
			obs.Event(ctx, "admission.reject", obs.String("reason", "queue_full"),
				obs.Int("depth", int64(depth)), obs.String("replica", s.name))
			return nil, ErrQueueFull
		}
		s.metrics.incShed()
		obs.Event(ctx, "admission.reject", obs.String("reason", "shed"),
			obs.String("class", pri.String()), obs.Int("depth", int64(depth)),
			obs.String("replica", s.name))
		return nil, &ShedError{Class: pri, Depth: depth, Capacity: s.queueCap}
	}
	j := &Job{Hash: hash, Spec: ns, svc: s, pri: pri, done: make(chan struct{}), interest: 1}
	j.ctx, j.cancel = context.WithCancel(s.baseCtx)
	j.runCtx = obs.AdoptTrace(j.ctx, ctx)
	_, j.qspan = obs.StartSpan(ctx, "queue.wait",
		obs.String("hash", hash), obs.String("priority", pri.String()),
		obs.String("replica", s.name))
	select {
	case s.queue <- j:
		s.inflight[hash] = j
		s.registry[hash] = j
		s.counts.queued++
		s.counts.queuedBy[pri]++
		s.mu.Unlock()
		s.metrics.incSubmitted()
		s.cache.RecordMiss()
		return j, nil
	default:
		s.mu.Unlock()
		// The job never entered the queue: cancel its context immediately
		// so the rejected submission does not leak a child context (and its
		// goroutine bookkeeping) on baseCtx until shutdown.
		j.cancel()
		j.qspan.SetAttr(obs.String("outcome", "queue_full"))
		j.qspan.End()
		s.metrics.incRejected()
		return nil, ErrQueueFull
	}
}

// admitLocked applies the per-class queue budget; caller holds s.mu. Batch
// may use the first half of the queue, normal everything except a reserved
// eighth (zero on small queues, so single-replica defaults are unchanged),
// interactive the whole queue.
func (s *Service) admitLocked(pri Priority) bool {
	switch pri {
	case PriorityBatch:
		return s.counts.queued < (s.queueCap+1)/2
	case PriorityNormal:
		return s.counts.queued < s.queueCap-s.queueCap/8
	default:
		return true
	}
}

// StealQueued atomically claims a still-queued job for execution elsewhere:
// the job is removed from the queue bookkeeping and the single-flight
// table, finalized locally, and its normalized spec returned so a replica
// coordinator can redispatch it onto an idle peer while keeping one
// canonical owner per hash. Running or terminal jobs cannot be stolen (a
// false return means the job must finish where it is). The worker that
// later pops the stolen job from the channel skips it.
func (s *Service) StealQueued(id string) (Spec, bool) {
	s.mu.Lock()
	j, ok := s.registry[id]
	if !ok {
		s.mu.Unlock()
		return Spec{}, false
	}
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		s.mu.Unlock()
		return Spec{}, false
	}
	j.state = StateCanceled
	j.err = ErrStolen
	close(j.done)
	delete(s.inflight, j.Hash)
	if s.registry[j.Hash] == j {
		delete(s.registry, j.Hash)
	}
	s.counts.queued--
	s.counts.queuedBy[j.pri]--
	s.counts.stolen++
	spec := j.Spec
	j.mu.Unlock()
	s.mu.Unlock()
	j.cancel()
	j.qspan.SetAttr(obs.String("outcome", "stolen"))
	j.qspan.End()
	return spec, true
}

// Lookup returns the job for an ID, falling back to the result cache for
// jobs whose bookkeeping has been evicted.
func (s *Service) Lookup(id string) (*Job, bool) {
	s.mu.Lock()
	j, ok := s.registry[id]
	s.mu.Unlock()
	if ok {
		return j, true
	}
	if res, ok := s.cache.Get(id); ok {
		return completedJob(id, res.Spec, res), true
	}
	return nil, false
}

// Cancel cancels a queued or running job by ID. It reports whether a
// cancellation was initiated.
func (s *Service) Cancel(id string) bool {
	s.mu.Lock()
	j, ok := s.registry[id]
	if !ok {
		s.mu.Unlock()
		return false
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		s.cancelQueuedLocked(j)
		j.mu.Unlock()
		s.mu.Unlock()
		j.cancel()
		return true
	case StateRunning:
		j.mu.Unlock()
		s.mu.Unlock()
		j.cancel()
		return true
	default:
		j.mu.Unlock()
		s.mu.Unlock()
		return false
	}
}

// cancelQueuedLocked finalizes a still-queued job as canceled. Caller holds
// s.mu and j.mu. The worker that later pops the job skips it.
func (s *Service) cancelQueuedLocked(j *Job) {
	j.state = StateCanceled
	j.err = context.Canceled
	close(j.done)
	delete(s.inflight, j.Hash)
	s.counts.queued--
	s.counts.queuedBy[j.pri]--
	s.counts.canceled++
	s.retainLocked(j)
	j.qspan.SetAttr(obs.String("outcome", "canceled"))
	j.qspan.End()
}

// retainLocked records a terminal job for later status polls, evicting the
// oldest retained job beyond recentCap. Caller holds s.mu.
func (s *Service) retainLocked(j *Job) {
	s.recent = append(s.recent, j)
	for len(s.recent) > recentCap {
		old := s.recent[0]
		s.recent = s.recent[1:]
		if s.registry[old.Hash] == old {
			delete(s.registry, old.Hash)
		}
	}
}

func (s *Service) worker() {
	defer s.wg.Done()
	s.workersUp.Add(1)
	for j := range s.queue {
		s.runJob(j)
	}
}

// Readiness is the /readyz payload: overall readiness plus the state of
// each serving layer.
type Readiness struct {
	Ready      bool `json:"ready"`
	WorkersUp  int  `json:"workers_up"`
	WorkersSet int  `json:"workers_configured"`
	Draining   bool `json:"draining"`
	// Fidelity reports per-tier warm state when the ladder is enabled
	// (absent otherwise). The emulator tier is warm once at least one
	// config family has a fitted emulator.
	Fidelity map[string]fidelity.TierState `json:"fidelity,omitempty"`
}

// Readiness reports whether the service can usefully serve: the worker pool
// is up, the service is not draining, and — when the fidelity ladder is
// enabled — at least one emulator is fitted (before that, every auto-routed
// query escalates to a full simulation, which is availability but not the
// latency contract /readyz guards).
func (s *Service) Readiness() Readiness {
	r := Readiness{
		WorkersUp:  int(s.workersUp.Load()),
		WorkersSet: s.workers,
		Draining:   s.Draining(),
	}
	r.Ready = r.WorkersUp >= r.WorkersSet && !r.Draining
	if s.fidelity != nil {
		r.Fidelity = s.fidelity.Status()
		if !r.Fidelity[string(fidelity.TierEmulator)].Ready {
			r.Ready = false
		}
	}
	return r
}

func (s *Service) runJob(j *Job) {
	s.mu.Lock()
	j.mu.Lock()
	if j.state != StateQueued { // cancelled while queued
		j.mu.Unlock()
		s.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	s.counts.queued--
	s.counts.queuedBy[j.pri]--
	s.counts.running++
	j.mu.Unlock()
	s.mu.Unlock()

	j.qspan.SetAttr(obs.String("outcome", "run"))
	j.qspan.End()

	// tier is the requested fidelity ("auto" when unset) — the decided tier
	// lands on the job.run span after the runner returns.
	tier := j.Spec.Fidelity
	if tier == "" {
		tier = "auto"
	}
	runCtx := j.runCtx
	if runCtx == nil { // jobs constructed outside SubmitCtx (tests)
		runCtx = j.ctx
	}
	runCtx, rspan := obs.StartSpan(runCtx, "job.run",
		obs.String("hash", j.Hash), obs.String("workflow", j.Spec.Workflow),
		obs.String("replica", s.name))

	var res *Result
	var err error
	// pprof labels attribute CPU samples in the -pprof profiles to the
	// request being served; they are invisible to the runner itself.
	pprof.Do(runCtx, pprof.Labels(
		"hash", j.Hash, "workflow", j.Spec.Workflow,
		"tier", tier, "replica", s.name,
	), func(ctx context.Context) {
		res, err = s.runner(ctx, j.Spec)
	})
	elapsed := time.Since(j.started)

	if err != nil {
		rspan.SetAttr(obs.String("error", err.Error()))
	} else if res != nil && res.Tier != "" {
		rspan.SetAttr(obs.String("tier", res.Tier))
	}
	rspan.End()

	s.mu.Lock()
	j.mu.Lock()
	delete(s.inflight, j.Hash)
	s.counts.running--
	switch {
	case err == nil:
		j.state = StateDone
		s.counts.done++
		res.Hash = j.Hash
		res.Workflow = j.Spec.Workflow
		res.Spec = j.Spec
		res.ElapsedSeconds = elapsed.Seconds()
		j.result = res
		s.cache.Put(j.Hash, res)
		if s.shared != nil {
			s.shared.Put(j.Hash, res)
		}
		s.metrics.observeLatency(j.Spec.Workflow, elapsed.Seconds())
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = StateCanceled
		j.err = err
		s.counts.canceled++
	default:
		j.state = StateFailed
		j.err = err
		s.counts.failed++
	}
	close(j.done)
	s.retainLocked(j)
	j.mu.Unlock()
	s.mu.Unlock()
	j.cancel() // release the context's resources
}

// QueueDepth returns the number of jobs waiting for a worker.
func (s *Service) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts.queued
}

// Draining reports whether the service has begun shutting down.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// MetricsSnapshot assembles the /metrics payload.
func (s *Service) MetricsSnapshot() Snapshot {
	submitted, rejected, deduped, shed, sharedHits, latency := s.metrics.counters()
	s.mu.Lock()
	snap := Snapshot{
		QueueDepth:    s.counts.queued,
		QueueCapacity: s.queueCap,
		Workers:       s.workers,
		Draining:      s.draining,
		Submitted:     submitted,
		Rejected:      rejected,
		Deduped:       deduped,
		Shed:          shed,
		SharedHits:    sharedHits,
		Jobs: map[string]int64{
			"queued":   int64(s.counts.queued),
			"running":  int64(s.counts.running),
			"done":     s.counts.done,
			"failed":   s.counts.failed,
			"canceled": s.counts.canceled,
			"stolen":   s.counts.stolen,
		},
		Latency: latency,
	}
	s.mu.Unlock()
	snap.Cache = s.cache.Stats()
	return snap
}

// Drain gracefully shuts the service down: new submissions are rejected,
// queued and in-flight jobs run to completion, workers exit. If ctx
// expires first, the remaining jobs are cancelled and Drain waits up to
// the configured DrainGrace for the workers to unwind, then returns
// ctx.Err() — or, when a runner ignores cancellation past the grace, a
// *DrainError listing the hashes still occupying workers (it unwraps to
// ctx.Err(), so deadline checks via errors.Is keep working).
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue) // Submit checks draining under s.mu before sending
	}
	s.mu.Unlock()
	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
	}
	s.baseCancel()
	grace := time.NewTimer(s.drainGrace)
	defer grace.Stop()
	select {
	case <-finished:
		return ctx.Err()
	case <-grace.C:
		return &DrainError{Running: s.runningHashes(), cause: ctx.Err()}
	}
}

// runningHashes snapshots the hashes of jobs currently on a worker, sorted
// for stable error messages.
func (s *Service) runningHashes() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for h, j := range s.inflight {
		j.mu.Lock()
		if j.state == StateRunning {
			out = append(out, h)
		}
		j.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// Fingerprint returns the pipeline fingerprint the service hashes specs
// under — replicas behind one front door must agree on it for the shared
// result store to be sound.
func (s *Service) Fingerprint() string { return s.fingerprint }

// QueueCap returns the bounded queue's capacity.
func (s *Service) QueueCap() int { return s.queueCap }

// Workers returns the configured worker-pool size.
func (s *Service) Workers() int { return s.workers }

// Loads returns the live queued and running job counts — the cheap view a
// replica coordinator polls for dispatch and steal decisions.
func (s *Service) Loads() (queued, running int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts.queued, s.counts.running
}

// Name returns the service's trace/pprof identity.
func (s *Service) Name() string { return s.name }

// QueuedByClass returns the live queued counts per priority class, keyed by
// Priority.String() — the /replicas per-class queue view.
func (s *Service) QueuedByClass() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return map[string]int{
		PriorityInteractive.String(): s.counts.queuedBy[PriorityInteractive],
		PriorityNormal.String():      s.counts.queuedBy[PriorityNormal],
		PriorityBatch.String():       s.counts.queuedBy[PriorityBatch],
	}
}
