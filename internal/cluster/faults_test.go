package cluster

import (
	"reflect"
	"testing"

	"repro/internal/sched"
)

// injectOn builds an injector that fails the given ⟨region, cell⟩ tasks on
// their (single) execution and passes everything else.
func injectOn(faults map[[2]interface{}]Fault) Injector {
	return func(t sched.Task) Fault {
		return faults[[2]interface{}{t.Region, t.Cell}]
	}
}

func TestNilInjectorMatchesBaseline(t *testing.T) {
	tasks, c := nightly(21)
	ff, _ := sched.FFDTDC(tasks, c)
	flat := FlattenSchedule(ff)
	base, err := ExecuteBackfill(flat, c, 0)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := ExecuteBackfillOpts(flat, c, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, opt) {
		t.Fatal("ExecuteBackfillOpts with zero options diverges from ExecuteBackfill")
	}
	nf, _ := sched.NFDTDC(tasks, c)
	lvBase := ExecuteLevelSync(nf, 0)
	lvOpt := ExecuteLevelSyncOpts(nf, ExecOptions{})
	if !reflect.DeepEqual(lvBase, lvOpt) {
		t.Fatal("ExecuteLevelSyncOpts with zero options diverges from ExecuteLevelSync")
	}
}

func TestBackfillCrashAccounting(t *testing.T) {
	tasks := []sched.Task{
		{Region: "CA", Cell: 0, Nodes: 4, Time: 100},
		{Region: "VA", Cell: 1, Nodes: 4, Time: 80},
		{Region: "WY", Cell: 2, Nodes: 2, Time: 50},
	}
	c := sched.Constraints{TotalNodes: 10}
	inj := injectOn(map[[2]interface{}]Fault{
		{"VA", 1}: {Kind: FaultCrash, Frac: 0.5},
	})
	res, err := ExecuteBackfillOpts(tasks, c, ExecOptions{Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 2 || len(res.Failed) != 1 {
		t.Fatalf("got %d records, %d failed; want 2, 1", len(res.Records), len(res.Failed))
	}
	f := res.Failed[0]
	if f.Kind != FaultCrash || f.Task.Region != "VA" {
		t.Fatalf("wrong failure: %+v", f)
	}
	// Crashed halfway: held [0, 40) on 4 nodes → 160 wasted node-seconds.
	if f.Start != 0 || f.At != 40 {
		t.Fatalf("crash interval [%g, %g) want [0, 40)", f.Start, f.At)
	}
	if res.WastedNodeSeconds != 160 {
		t.Fatalf("wasted %g want 160", res.WastedNodeSeconds)
	}
	// Completed work only: 4·100 + 2·50 = 500 busy node-seconds.
	if res.BusyNodeSeconds != 500 {
		t.Fatalf("busy %g want 500", res.BusyNodeSeconds)
	}
	if err := ValidateExecution(res, c, 0); err != nil {
		t.Fatal(err)
	}
}

func TestBackfillRefusalHoldsNothing(t *testing.T) {
	tasks := []sched.Task{
		{Region: "CA", Cell: 0, Nodes: 8, Time: 100},
		{Region: "CA", Cell: 1, Nodes: 8, Time: 90},
	}
	// One CA connection: a refused task must not consume it.
	c := sched.Constraints{TotalNodes: 8, DBBound: map[string]int{"CA": 1}}
	inj := injectOn(map[[2]interface{}]Fault{
		{"CA", 0}: {Kind: FaultDBRefused},
	})
	res, err := ExecuteBackfillOpts(tasks, c, ExecOptions{Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 1 || res.Failed[0].At != res.Failed[0].Start {
		t.Fatalf("refusal should be zero-length: %+v", res.Failed)
	}
	if res.WastedNodeSeconds != 0 {
		t.Fatalf("refusal wasted %g node-seconds", res.WastedNodeSeconds)
	}
	// The surviving task starts immediately — the refusal freed the slot.
	if len(res.Records) != 1 || res.Records[0].Start != 0 {
		t.Fatalf("survivor did not start at 0: %+v", res.Records)
	}
	if err := ValidateExecution(res, c, 0); err != nil {
		t.Fatal(err)
	}
}

// A crashed task frees its nodes at the crash instant, so backfill can
// start queued work earlier than the full runtime would allow.
func TestBackfillCrashFreesNodesEarly(t *testing.T) {
	tasks := []sched.Task{
		{Region: "CA", Cell: 0, Nodes: 8, Time: 100},
		{Region: "VA", Cell: 1, Nodes: 8, Time: 60},
	}
	c := sched.Constraints{TotalNodes: 8}
	inj := injectOn(map[[2]interface{}]Fault{
		{"CA", 0}: {Kind: FaultCrash, Frac: 0.25},
	})
	res, err := ExecuteBackfillOpts(tasks, c, ExecOptions{Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 {
		t.Fatalf("want 1 completed, got %d", len(res.Records))
	}
	// CA crashes at t=25; VA backfills then, not at t=100.
	if got := res.Records[0].Start; got != 25 {
		t.Fatalf("VA started at %g, want 25 (crash instant)", got)
	}
	if res.Makespan != 85 {
		t.Fatalf("makespan %g want 85", res.Makespan)
	}
}

func TestLevelSyncFaultsKeepBarrier(t *testing.T) {
	tasks, c := nightly(22)
	nf, _ := sched.NFDTDC(tasks, c)
	crashEverything := func(t sched.Task) Fault { return Fault{Kind: FaultCrash, Frac: 0.5} }
	base := ExecuteLevelSync(nf, 0)
	res := ExecuteLevelSyncOpts(nf, ExecOptions{Injector: crashEverything})
	// The barrier waits for the packed height regardless of crashes.
	if res.Makespan != base.Makespan {
		t.Fatalf("faults changed the level-sync makespan: %g vs %g", res.Makespan, base.Makespan)
	}
	if len(res.Records) != 0 || len(res.Failed) != len(tasks) {
		t.Fatalf("crash-everything run completed %d, failed %d of %d", len(res.Records), len(res.Failed), len(tasks))
	}
	if res.BusyNodeSeconds != 0 || res.WastedNodeSeconds <= 0 {
		t.Fatalf("busy %g wasted %g", res.BusyNodeSeconds, res.WastedNodeSeconds)
	}
	if err := ValidateExecution(res, c, 0); err != nil {
		t.Fatal(err)
	}
}

func TestStartAtShiftsClock(t *testing.T) {
	tasks := []sched.Task{{Region: "VA", Cell: 0, Nodes: 2, Time: 10}}
	c := sched.Constraints{TotalNodes: 4}
	res, err := ExecuteBackfillOpts(tasks, c, ExecOptions{StartAt: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records[0].Start != 500 || res.Records[0].End != 510 || res.Makespan != 510 {
		t.Fatalf("StartAt ignored: %+v makespan %g", res.Records[0], res.Makespan)
	}
	// Deadline applies to the absolute clock, not the offset.
	res, err = ExecuteBackfillOpts(tasks, c, ExecOptions{StartAt: 500, Deadline: 505})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unstarted) != 1 {
		t.Fatal("task past the absolute deadline was started")
	}
}

func TestClampFrac(t *testing.T) {
	for _, tc := range []struct{ in, want float64 }{
		{0.5, 0.5}, {0, 1}, {-1, 1}, {1, 1}, {1.5, 1},
	} {
		if got := clampFrac(tc.in); got != tc.want {
			t.Errorf("clampFrac(%g) = %g want %g", tc.in, got, tc.want)
		}
	}
}

func TestValidateExecutionCatchesFailedOveruse(t *testing.T) {
	// A crashed attempt overlapping a completed task must count as occupancy.
	res := ExecResult{
		Records: []TaskRecord{{Task: sched.Task{Region: "VA", Nodes: 6, Time: 10}, Start: 0, End: 10}},
		Failed: []FaultRecord{
			{Task: sched.Task{Region: "VA", Nodes: 6}, Kind: FaultCrash, Start: 2, At: 8},
		},
	}
	if err := ValidateExecution(res, sched.Constraints{TotalNodes: 10}, 0); err == nil {
		t.Fatal("crashed attempt's node occupancy not validated")
	}
	if err := ValidateExecution(res, sched.Constraints{TotalNodes: 12}, 5); err == nil {
		t.Fatal("crashed attempt holding nodes past the deadline not caught")
	}
	if err := ValidateExecution(res, sched.Constraints{TotalNodes: 12}, 0); err != nil {
		t.Fatal(err)
	}
}
