package cluster

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/stats"
)

// nightly is the canonical all-state prediction night: 12 cells × 51
// regions × 15 replicates (9180 simulations, Table I), intervention
// complexity spread 1–4×, DB bound 16 connections per region.
func nightly(seed uint64) ([]sched.Task, sched.Constraints) {
	w := sched.Workload{Cells: 12, Replicates: 15, Time: sched.DefaultTimeModel(),
		MaxInterventionFactor: 4}
	tasks := w.Tasks(stats.NewRNG(seed))
	return tasks, sched.Constraints{TotalNodes: Bridges().Nodes, DBBound: sched.DefaultDBBounds(16)}
}

func TestTableIIConfig(t *testing.T) {
	b := Bridges()
	if b.Nodes != 720 || b.CPUsPerNode != 2 || b.CoresPerCPU != 14 || b.RAMPerNodeGB != 128 {
		t.Fatalf("Bridges spec wrong: %+v", b)
	}
	// "over 20,000 cores of the remote super-computing cluster".
	if b.TotalCores() != 20160 {
		t.Fatalf("Bridges cores %d want 20160", b.TotalCores())
	}
	r := Rivanna()
	if r.Nodes != 50 || r.CoresPerCPU != 20 || r.RAMPerNodeGB != 384 {
		t.Fatalf("Rivanna spec wrong: %+v", r)
	}
	if r.TotalCores() != 2000 {
		t.Fatalf("Rivanna cores %d want 2000", r.TotalCores())
	}
	if b.Filesystem != "Lustre" || r.Filesystem != "Lustre" {
		t.Fatal("filesystems wrong")
	}
}

func TestNightlyWindow(t *testing.T) {
	w := NightlyWindow()
	if w.Hours() != 10 {
		t.Fatalf("window %d hours want 10 (10pm–8am)", w.Hours())
	}
	if w.Seconds() != 36000 {
		t.Fatalf("window seconds %v", w.Seconds())
	}
	if (Window{StartHour: 9, EndHour: 17}).Hours() != 8 {
		t.Fatal("daytime window wrong")
	}
}

// The Figure 9 reproduction: FFDT-DC ordering under backfill reaches the
// mid-90s; the NFDT-DC level-synchronous runs sit in the 44–56% band.
func TestFig9UtilizationBands(t *testing.T) {
	tasks, c := nightly(1)
	nf, err := sched.NFDTDC(tasks, c)
	if err != nil {
		t.Fatal(err)
	}
	ff, err := sched.FFDTDC(tasks, c)
	if err != nil {
		t.Fatal(err)
	}
	nfExec := ExecuteLevelSync(nf, 0)
	ffExec, err := ExecuteBackfill(FlattenSchedule(ff), c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if nfExec.Utilization < 0.40 || nfExec.Utilization > 0.65 {
		t.Fatalf("NFDT-DC utilization %v outside the paper's 44–56%% band", nfExec.Utilization)
	}
	if ffExec.Utilization < 0.90 {
		t.Fatalf("FFDT-DC utilization %v below the paper's ≈96.7%% regime", ffExec.Utilization)
	}
	if ffExec.Makespan >= nfExec.Makespan {
		t.Fatal("FFDT-DC backfill should finish earlier")
	}
	if len(nfExec.Records) != len(tasks) || len(ffExec.Records) != len(tasks) {
		t.Fatal("not all tasks executed")
	}
}

func TestBackfillRespectsConstraints(t *testing.T) {
	tasks, c := nightly(2)
	ff, _ := sched.FFDTDC(tasks, c)
	res, err := ExecuteBackfill(FlattenSchedule(ff), c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateExecution(res, c, 0); err != nil {
		t.Fatal(err)
	}
}

func TestLevelSyncRespectsConstraints(t *testing.T) {
	tasks, c := nightly(3)
	nf, _ := sched.NFDTDC(tasks, c)
	res := ExecuteLevelSync(nf, 0)
	if err := ValidateExecution(res, c, 0); err != nil {
		t.Fatal(err)
	}
}

// The whole nightly workload must fit the 10-hour window on Bridges —
// the operational requirement the paper's scheduling work exists to meet.
func TestNightlyFitsWindow(t *testing.T) {
	tasks, c := nightly(4)
	ff, _ := sched.FFDTDC(tasks, c)
	deadline := NightlyWindow().Seconds()
	res, err := ExecuteBackfill(FlattenSchedule(ff), c, deadline)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unstarted) > 0 {
		t.Fatalf("%d tasks missed the 10-hour window (makespan %v)", len(res.Unstarted), res.Makespan)
	}
	if res.Makespan > deadline {
		t.Fatalf("makespan %v exceeds window %v", res.Makespan, deadline)
	}
	if err := ValidateExecution(res, c, deadline); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlineDropsTasks(t *testing.T) {
	tasks, c := nightly(5)
	ff, _ := sched.FFDTDC(tasks, c)
	// An absurdly short deadline: almost nothing runs.
	res, err := ExecuteBackfill(FlattenSchedule(ff), c, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unstarted) == 0 {
		t.Fatal("100-second deadline dropped nothing")
	}
	if len(res.Records)+len(res.Unstarted) != len(tasks) {
		t.Fatalf("task accounting broken: %d + %d != %d", len(res.Records), len(res.Unstarted), len(tasks))
	}
	if err := ValidateExecution(res, c, 100); err != nil {
		t.Fatal(err)
	}
}

func TestLevelSyncDeadline(t *testing.T) {
	tasks, c := nightly(6)
	nf, _ := sched.NFDTDC(tasks, c)
	full := ExecuteLevelSync(nf, 0)
	cut := ExecuteLevelSync(nf, full.Makespan/2)
	if len(cut.Unstarted) == 0 {
		t.Fatal("half-makespan deadline dropped nothing")
	}
	if cut.Makespan > full.Makespan/2+1e-9 {
		t.Fatal("level-sync exceeded deadline")
	}
}

func TestBackfillValidation(t *testing.T) {
	if _, err := ExecuteBackfill(nil, sched.Constraints{TotalNodes: 0}, 0); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := ExecuteBackfill([]sched.Task{{Region: "VA", Nodes: 99, Time: 1}},
		sched.Constraints{TotalNodes: 10}, 0); err == nil {
		t.Error("oversized task accepted")
	}
}

func TestBackfillEmptyWorkload(t *testing.T) {
	res, err := ExecuteBackfill(nil, sched.Constraints{TotalNodes: 10}, 0)
	if err != nil || res.Makespan != 0 || len(res.Records) != 0 {
		t.Fatalf("empty workload mishandled: %+v, %v", res, err)
	}
}

func TestWaitMetrics(t *testing.T) {
	tasks, c := nightly(9)
	ff, _ := sched.FFDTDC(tasks, c)
	res, err := ExecuteBackfill(FlattenSchedule(ff), c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanWait() < 0 || res.MeanWait() > res.Makespan {
		t.Fatalf("mean wait %v outside [0, makespan]", res.MeanWait())
	}
	if res.MaxWait() < res.MeanWait() {
		t.Fatal("max wait below mean wait")
	}
	if res.MaxWait() >= res.Makespan {
		t.Fatal("a task started at or after the makespan")
	}
	var empty ExecResult
	if empty.MeanWait() != 0 || empty.MaxWait() != 0 {
		t.Fatal("empty result wait metrics should be 0")
	}
	// Backfill should start tasks earlier on average than level-sync.
	nf, _ := sched.NFDTDC(tasks, c)
	lv := ExecuteLevelSync(nf, 0)
	if res.MeanWait() >= lv.MeanWait() {
		t.Fatalf("backfill mean wait %v should beat level-sync %v", res.MeanWait(), lv.MeanWait())
	}
}

func TestBackfillUtilizationNeverExceedsOne(t *testing.T) {
	tasks, c := nightly(7)
	ff, _ := sched.FFDTDC(tasks, c)
	res, err := ExecuteBackfill(FlattenSchedule(ff), c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization > 1+1e-9 {
		t.Fatalf("utilization %v > 1", res.Utilization)
	}
}

func TestValidateExecutionCatchesOverlap(t *testing.T) {
	res := ExecResult{Records: []TaskRecord{
		{Task: sched.Task{Region: "VA", Nodes: 8, Time: 10}, Start: 0, End: 10},
		{Task: sched.Task{Region: "VA", Nodes: 8, Time: 10}, Start: 5, End: 15},
	}}
	c := sched.Constraints{TotalNodes: 10}
	if err := ValidateExecution(res, c, 0); err == nil {
		t.Fatal("node oversubscription not caught")
	}
	c2 := sched.Constraints{TotalNodes: 100, DBBound: map[string]int{"VA": 1}}
	if err := ValidateExecution(res, c2, 0); err == nil {
		t.Fatal("DB bound violation not caught")
	}
	if err := ValidateExecution(res, sched.Constraints{TotalNodes: 100}, 12); err == nil {
		t.Fatal("deadline violation not caught")
	}
}

// VA-only nights (Figure 9 right): 300 calibration cells on one region.
func TestVAOnlyNightUtilization(t *testing.T) {
	w := sched.Workload{Cells: 300, Replicates: 1, Time: sched.DefaultTimeModel(),
		MaxInterventionFactor: 4}
	all := w.Tasks(stats.NewRNG(8))
	var tasks []sched.Task
	for _, tk := range all {
		if tk.Region == "VA" {
			tasks = append(tasks, tk)
		}
	}
	c := sched.Constraints{TotalNodes: Bridges().Nodes, DBBound: map[string]int{"VA": 180}}
	ff, err := sched.FFDTDC(tasks, c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExecuteBackfill(FlattenSchedule(ff), c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization < 0.85 {
		t.Fatalf("VA-only utilization %v below the paper's ≈95.5%% regime", res.Utilization)
	}
	if err := ValidateExecution(res, c, 0); err != nil {
		t.Fatal(err)
	}
}
