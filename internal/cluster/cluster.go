// Package cluster simulates the two HPC systems of the paper (Table II) —
// the remote super-computing cluster (Bridges, PSC) and the home cluster
// (Rivanna, UVA) — and executes packed workloads on them with a Slurm-like
// discrete-event scheduler. Two execution policies reproduce the paper's
// Figure 9 comparison: LevelSync replays a level packing with a barrier
// after every level (how the initial NFDT-DC workflows ran as dependent job
// arrays), while Backfill is work-conserving — a queued task starts the
// moment enough nodes and database connections are free, Slurm's "certain
// amount of real-time optimization" on top of the FFDT-DC ordering.
package cluster

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/sched"
)

// Spec is a cluster configuration (the rows of Table II).
type Spec struct {
	Name         string
	Nodes        int
	CPUsPerNode  int
	CoresPerCPU  int
	RAMPerNodeGB int
	CPU          string
	Network      string
	Filesystem   string
}

// TotalCores returns nodes × CPUs × cores.
func (s Spec) TotalCores() int { return s.Nodes * s.CPUsPerNode * s.CoresPerCPU }

// Bridges returns the remote super-computing cluster of Table II: 720
// allocated nodes, 2 × 14-core Haswell CPUs and 128 GB per node — the
// "over 20,000 cores" dedicated nightly.
func Bridges() Spec {
	return Spec{
		Name: "Bridges (PSC)", Nodes: 720, CPUsPerNode: 2, CoresPerCPU: 14,
		RAMPerNodeGB: 128, CPU: "Intel Haswell E5-2695 v3",
		Network: "Intel Omnipath-1", Filesystem: "Lustre",
	}
}

// Rivanna returns the home cluster of Table II: 50 nodes, 2 × 20-core Xeon
// Gold CPUs and 384 GB per node.
func Rivanna() Spec {
	return Spec{
		Name: "Rivanna (UVA)", Nodes: 50, CPUsPerNode: 2, CoresPerCPU: 20,
		RAMPerNodeGB: 384, CPU: "Intel Xeon Gold 6148",
		Network: "Mellanox ConnectX-5", Filesystem: "Lustre",
	}
}

// Window is the nightly access window (10 pm to 8 am in the paper).
type Window struct {
	StartHour, EndHour int
}

// NightlyWindow returns the paper's 22:00–08:00 window.
func NightlyWindow() Window { return Window{StartHour: 22, EndHour: 8} }

// Hours returns the window length in hours.
func (w Window) Hours() int {
	h := w.EndHour - w.StartHour
	if h <= 0 {
		h += 24
	}
	return h
}

// Seconds returns the window length in seconds.
func (w Window) Seconds() float64 { return float64(w.Hours()) * 3600 }

// TaskRecord is one executed task with its realized interval.
type TaskRecord struct {
	Task       sched.Task
	Start, End float64
}

// FaultKind classifies an injected execution failure.
type FaultKind int

// Execution fault classes.
const (
	FaultNone FaultKind = iota
	// FaultCrash kills a running task partway through its interval.
	FaultCrash
	// FaultDBRefused fails a task instantly at start: its region database
	// refused the connection.
	FaultDBRefused
)

func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultDBRefused:
		return "db-refused"
	default:
		return "none"
	}
}

// Fault is an injector's verdict for one task start.
type Fault struct {
	Kind FaultKind
	// Frac is the fraction of the task's runtime completed before a
	// FaultCrash; ignored for other kinds.
	Frac float64
}

// Injector decides the fate of a task at the moment the executor starts it.
// It is consulted at most once per task per execution; callers that requeue
// failed tasks re-execute with a fresh injector bound to the new attempt
// number. A nil Injector is failure-free.
type Injector func(t sched.Task) Fault

// FaultRecord is one injected failure observed during execution: the task
// held its nodes (and DB connection) on [Start, At); refusals are
// zero-length.
type FaultRecord struct {
	Task      sched.Task
	Kind      FaultKind
	Start, At float64
}

// ExecResult summarizes an executed workload.
type ExecResult struct {
	Records []TaskRecord
	// Failed lists injected failures, in the order they were decided.
	Failed []FaultRecord
	// Makespan is the completion time of the last task.
	Makespan float64
	// Utilization is the paper's EC metric: busy node-time over
	// (allocated nodes × makespan). Under faults only completed work
	// counts as busy; crashed node-time is in WastedNodeSeconds.
	Utilization float64
	// Unstarted lists tasks that could not begin within the deadline
	// (zero deadline = unlimited).
	Unstarted []sched.Task
	// BusyNodeSeconds is the node-time of completed tasks.
	BusyNodeSeconds float64
	// WastedNodeSeconds is the node-time consumed by crashed attempts.
	WastedNodeSeconds float64
}

// ExecOptions extends the executors for fault-injected, resumable runs.
type ExecOptions struct {
	// Deadline is the absolute cut-off (zero = unlimited).
	Deadline float64
	// StartAt is the clock value at which execution begins — recovery
	// rounds resume mid-window.
	StartAt float64
	// Injector, when non-nil, is consulted as each task starts.
	Injector Injector
	// Ctx carries the tracer for executor spans; nil means untraced.
	Ctx context.Context
}

// execCtx returns the options' context, defaulting to Background.
func (o ExecOptions) execCtx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// endExecSpan annotates and closes an executor span with the run's shape.
func endExecSpan(sp *obs.Span, tasks int, res *ExecResult) {
	if sp == nil {
		return
	}
	sp.SetAttr(
		obs.Int("tasks", int64(tasks)),
		obs.Int("completed", int64(len(res.Records))),
		obs.Int("failed", int64(len(res.Failed))),
		obs.Int("unstarted", int64(len(res.Unstarted))),
		obs.Float("makespan", res.Makespan),
	)
	sp.End()
}

// MeanWait returns the average task start time — the queueing delay a
// submitted simulation experiences, the timeliness metric behind the
// paper's "reducing the time span required to execute a given set of
// jobs".
func (r *ExecResult) MeanWait() float64 {
	if len(r.Records) == 0 {
		return 0
	}
	s := 0.0
	for _, rec := range r.Records {
		s += rec.Start
	}
	return s / float64(len(r.Records))
}

// MaxWait returns the longest start delay.
func (r *ExecResult) MaxWait() float64 {
	max := 0.0
	for _, rec := range r.Records {
		if rec.Start > max {
			max = rec.Start
		}
	}
	return max
}

// ExecuteLevelSync replays a level packing with a barrier after each level:
// all tasks of level i run concurrently starting when level i−1 completes.
// Tasks whose level would end past the deadline are not started.
func ExecuteLevelSync(s *sched.Schedule, deadline float64) ExecResult {
	return ExecuteLevelSyncOpts(s, ExecOptions{Deadline: deadline})
}

// ExecuteLevelSyncOpts is ExecuteLevelSync with fault injection and a
// resumable start clock. A crashed task frees nothing early — the barrier
// waits for the level's packed height regardless — but its node-time counts
// as wasted rather than busy, and the failure is recorded for requeueing.
func ExecuteLevelSyncOpts(s *sched.Schedule, opt ExecOptions) ExecResult {
	var res ExecResult
	_, sp := obs.StartSpan(opt.execCtx(), "cluster.levelsync")
	defer func() { endExecSpan(sp, len(FlattenSchedule(s)), &res) }()
	start := opt.StartAt
	busy := 0.0
	for _, l := range s.Levels {
		if opt.Deadline > 0 && start+l.Height > opt.Deadline {
			for _, t := range l.Tasks {
				res.Unstarted = append(res.Unstarted, t)
			}
			continue
		}
		for _, t := range l.Tasks {
			if opt.Injector != nil {
				switch f := opt.Injector(t); f.Kind {
				case FaultDBRefused:
					res.Failed = append(res.Failed, FaultRecord{Task: t, Kind: f.Kind, Start: start, At: start})
					continue
				case FaultCrash:
					at := start + clampFrac(f.Frac)*t.Time
					res.Failed = append(res.Failed, FaultRecord{Task: t, Kind: f.Kind, Start: start, At: at})
					res.WastedNodeSeconds += (at - start) * float64(t.Nodes)
					continue
				}
			}
			res.Records = append(res.Records, TaskRecord{Task: t, Start: start, End: start + t.Time})
			busy += t.Time * float64(t.Nodes)
		}
		start += l.Height
	}
	res.Makespan = start
	res.BusyNodeSeconds = busy
	if s.TotalNodes > 0 && res.Makespan > 0 {
		res.Utilization = busy / (res.Makespan * float64(s.TotalNodes))
	}
	return res
}

// clampFrac bounds a crash fraction to (0, 1].
func clampFrac(f float64) float64 {
	if f <= 0 || f > 1 {
		return 1
	}
	return f
}

// ExecuteBackfill runs an ordered task list on the cluster with
// work-conserving backfill: at every scheduling point the queue is scanned
// in order and every task that fits (free nodes, per-region DB bound,
// deadline) is started. Order is the packing's flattened (level, position)
// sequence — for FFDT-DC, non-increasing time.
func ExecuteBackfill(tasks []sched.Task, c sched.Constraints, deadline float64) (ExecResult, error) {
	return ExecuteBackfillOpts(tasks, c, ExecOptions{Deadline: deadline})
}

// ExecuteBackfillOpts is ExecuteBackfill with fault injection and a
// resumable start clock. A refused task fails instantly and holds nothing;
// a crashed task holds its nodes and DB connection until the crash instant,
// then frees them for backfilling — its partial node-time counts as wasted.
func ExecuteBackfillOpts(tasks []sched.Task, c sched.Constraints, opt ExecOptions) (ExecResult, error) {
	if c.TotalNodes <= 0 {
		return ExecResult{}, fmt.Errorf("cluster: non-positive node count")
	}
	for _, t := range tasks {
		if t.Nodes <= 0 || t.Nodes > c.TotalNodes {
			return ExecResult{}, fmt.Errorf("cluster: task %+v cannot fit on %d nodes", t, c.TotalNodes)
		}
	}
	type running struct {
		end  float64
		task sched.Task
	}
	var res ExecResult
	_, sp := obs.StartSpan(opt.execCtx(), "cluster.backfill")
	defer func() { endExecSpan(sp, len(tasks), &res) }()
	queue := append([]sched.Task(nil), tasks...)
	pending := make([]bool, len(queue))
	for i := range pending {
		pending[i] = true
	}
	remaining := len(queue)
	free := c.TotalNodes
	regionRunning := map[string]int{}
	var active []running
	now := opt.StartAt
	busy := 0.0

	for remaining > 0 || len(active) > 0 {
		// Start everything that fits, scanning the queue in order.
		startedAny := false
		for i := range queue {
			if !pending[i] {
				continue
			}
			t := queue[i]
			if t.Nodes > free {
				continue
			}
			if bound, ok := c.DBBound[t.Region]; ok && regionRunning[t.Region] >= bound {
				continue
			}
			if opt.Deadline > 0 && now+t.Time > opt.Deadline {
				pending[i] = false
				remaining--
				res.Unstarted = append(res.Unstarted, t)
				continue
			}
			if opt.Injector != nil {
				if f := opt.Injector(t); f.Kind != FaultNone {
					pending[i] = false
					remaining--
					if f.Kind == FaultDBRefused {
						res.Failed = append(res.Failed, FaultRecord{Task: t, Kind: f.Kind, Start: now, At: now})
						continue
					}
					end := now + clampFrac(f.Frac)*t.Time
					res.Failed = append(res.Failed, FaultRecord{Task: t, Kind: f.Kind, Start: now, At: end})
					res.WastedNodeSeconds += (end - now) * float64(t.Nodes)
					free -= t.Nodes
					regionRunning[t.Region]++
					active = append(active, running{end: end, task: t})
					startedAny = true
					continue
				}
			}
			pending[i] = false
			remaining--
			free -= t.Nodes
			regionRunning[t.Region]++
			active = append(active, running{end: now + t.Time, task: t})
			res.Records = append(res.Records, TaskRecord{Task: t, Start: now, End: now + t.Time})
			busy += t.Time * float64(t.Nodes)
			startedAny = true
		}
		if len(active) == 0 {
			if !startedAny && remaining > 0 {
				// Nothing runnable and nothing running: all remaining
				// tasks are blocked by the deadline (handled above) —
				// defensive break against malformed bounds.
				for i := range queue {
					if pending[i] {
						res.Unstarted = append(res.Unstarted, queue[i])
					}
				}
				break
			}
			continue
		}
		// Advance to the earliest completion.
		sort.Slice(active, func(a, b int) bool { return active[a].end < active[b].end })
		now = active[0].end
		for len(active) > 0 && active[0].end <= now {
			done := active[0]
			active = active[1:]
			free += done.task.Nodes
			regionRunning[done.task.Region]--
		}
		if now > res.Makespan {
			res.Makespan = now
		}
	}
	res.BusyNodeSeconds = busy
	if res.Makespan > 0 {
		res.Utilization = busy / (res.Makespan * float64(c.TotalNodes))
	}
	return res, nil
}

// FlattenSchedule returns the packing's tasks in (level, position) order —
// the submission order handed to the executor.
func FlattenSchedule(s *sched.Schedule) []sched.Task {
	var out []sched.Task
	for _, l := range s.Levels {
		out = append(out, l.Tasks...)
	}
	return out
}

// ValidateExecution checks an ExecResult against the constraints: at no
// instant do running tasks exceed the node count or any region's DB bound,
// and no task interval overlaps the deadline. Crashed attempts held their
// nodes and DB connection until the crash instant and are validated as
// occupancy; zero-length refusals are not.
func ValidateExecution(res ExecResult, c sched.Constraints, deadline float64) error {
	type event struct {
		t     float64
		nodes int // positive at start, negative at end
		reg   string
		d     int
	}
	var events []event
	for _, r := range res.Records {
		if deadline > 0 && r.End > deadline+1e-9 {
			return fmt.Errorf("cluster: task %+v ends at %g past deadline %g", r.Task, r.End, deadline)
		}
		events = append(events, event{t: r.Start, nodes: r.Task.Nodes, reg: r.Task.Region, d: 1})
		events = append(events, event{t: r.End, nodes: -r.Task.Nodes, reg: r.Task.Region, d: -1})
	}
	for _, f := range res.Failed {
		if f.At <= f.Start {
			continue // refusals hold nothing
		}
		if deadline > 0 && f.At > deadline+1e-9 {
			return fmt.Errorf("cluster: failed task %+v held nodes until %g past deadline %g", f.Task, f.At, deadline)
		}
		events = append(events, event{t: f.Start, nodes: f.Task.Nodes, reg: f.Task.Region, d: 1})
		events = append(events, event{t: f.At, nodes: -f.Task.Nodes, reg: f.Task.Region, d: -1})
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].t != events[b].t {
			return events[a].t < events[b].t
		}
		return events[a].d < events[b].d // process ends before starts at ties
	})
	nodes := 0
	perRegion := map[string]int{}
	for _, e := range events {
		nodes += e.nodes
		perRegion[e.reg] += e.d
		if nodes > c.TotalNodes {
			return fmt.Errorf("cluster: %d nodes in use at t=%g (limit %d)", nodes, e.t, c.TotalNodes)
		}
		if bound, ok := c.DBBound[e.reg]; ok && perRegion[e.reg] > bound {
			return fmt.Errorf("cluster: region %s has %d concurrent tasks at t=%g (bound %d)", e.reg, perRegion[e.reg], e.t, bound)
		}
	}
	return nil
}
