package transfer

import (
	"math"
	"testing"
)

func TestDurationRejectsBadLinks(t *testing.T) {
	bad := []Link{
		{BandwidthBytesPerSec: 0, LatencySec: 1},
		{BandwidthBytesPerSec: -5, LatencySec: 1},
		{BandwidthBytesPerSec: math.Inf(1), LatencySec: 1},
		{BandwidthBytesPerSec: math.NaN(), LatencySec: 1},
		{BandwidthBytesPerSec: 100, LatencySec: -1},
		{BandwidthBytesPerSec: 100, LatencySec: math.Inf(1)},
		{BandwidthBytesPerSec: 100, LatencySec: math.NaN()},
	}
	for _, l := range bad {
		if d, err := l.Duration(MB); err == nil {
			t.Errorf("link %+v accepted (duration %v)", l, d)
		}
	}
}

// A zero-bandwidth link must surface an error from Move, not an infinite
// duration that poisons downstream sums.
func TestMoveRejectsBadLinkWithoutRecording(t *testing.T) {
	l := NewLedger(Link{BandwidthBytesPerSec: 0, LatencySec: 30})
	if _, err := l.Move(0, HomeToRemote, "configs", GB); err == nil {
		t.Fatal("zero-bandwidth Move succeeded")
	}
	if _, _, err := l.MoveWithRetry(0, HomeToRemote, "configs", GB, RetryPolicy{}, nil); err == nil {
		t.Fatal("zero-bandwidth MoveWithRetry succeeded")
	}
	if len(l.Records) != 0 {
		t.Fatalf("failed moves recorded: %+v", l.Records)
	}
	if s := l.TotalSeconds(); math.IsInf(s, 0) || math.IsNaN(s) {
		t.Fatalf("non-finite total seconds %v leaked", s)
	}
}

func TestMoveWithRetrySucceedsAfterStalls(t *testing.T) {
	link := Link{BandwidthBytesPerSec: 100, LatencySec: 10}
	l := NewLedger(link)
	pol := RetryPolicy{MaxAttempts: 5, BaseBackoff: 60, Factor: 2}
	stallFirst := func(n int) func(int) (bool, float64) {
		return func(attempt int) (bool, float64) { return attempt < n, 0 }
	}
	elapsed, retries, err := l.MoveWithRetry(3, RemoteToHome, "summaries", 1000, pol, stallFirst(2))
	if err != nil {
		t.Fatal(err)
	}
	if retries != 2 {
		t.Fatalf("retries %d want 2", retries)
	}
	// Two stalls: (10+60) + (10+120), then the real transfer 10 + 1000/100.
	want := 70.0 + 130 + 20
	if elapsed != want {
		t.Fatalf("elapsed %g want %g", elapsed, want)
	}
	if len(l.Records) != 1 {
		t.Fatalf("want one record, got %d", len(l.Records))
	}
	r := l.Records[0]
	if r.Retries != 2 || r.Seconds != want || r.Day != 3 || r.Label != "summaries" {
		t.Fatalf("record wrong: %+v", r)
	}
}

func TestMoveWithRetryExhaustsBudget(t *testing.T) {
	l := NewLedger(Link{BandwidthBytesPerSec: 100, LatencySec: 10})
	pol := RetryPolicy{MaxAttempts: 3, BaseBackoff: 1, Factor: 2}
	alwaysStall := func(int) (bool, float64) { return true, 0 }
	elapsed, retries, err := l.MoveWithRetry(0, HomeToRemote, "configs", 1000, pol, alwaysStall)
	if err == nil {
		t.Fatal("all-stalled transfer succeeded")
	}
	if retries != 3 {
		t.Fatalf("retries %d want 3", retries)
	}
	// Three stalled attempts: (10+1) + (10+2) + (10+4).
	if elapsed != 37 {
		t.Fatalf("elapsed %g want 37", elapsed)
	}
	if len(l.Records) != 0 {
		t.Fatal("failed transfer was recorded")
	}
}

func TestMoveWithRetryNilFaultMatchesMove(t *testing.T) {
	a, b := NewLedger(DefaultLink()), NewLedger(DefaultLink())
	d1, err := a.Move(0, HomeToRemote, "x", MB)
	if err != nil {
		t.Fatal(err)
	}
	d2, retries, err := b.MoveWithRetry(0, HomeToRemote, "x", MB, RetryPolicy{}, nil)
	if err != nil || retries != 0 {
		t.Fatalf("nil-fault retry: %v retries %d", err, retries)
	}
	if d1 != d2 {
		t.Fatalf("durations diverge: %g vs %g", d1, d2)
	}
}

func TestBackoffGrowthAndJitter(t *testing.T) {
	pol := RetryPolicy{MaxAttempts: 5, BaseBackoff: 60, Factor: 2}
	for i, want := range []float64{60, 120, 240} {
		if got := pol.Backoff(i, 0); got != want {
			t.Errorf("backoff(%d) = %g want %g", i, got, want)
		}
	}
	if got := pol.Backoff(0, 0.5); got != 90 {
		t.Errorf("jittered backoff %g want 90", got)
	}
	// Zero policy falls back to defaults rather than never backing off.
	if got := (RetryPolicy{}).Backoff(0, 0); got != 60 {
		t.Errorf("default backoff %g want 60", got)
	}
}
