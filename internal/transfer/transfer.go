// Package transfer models the data movement between the home cluster and
// the remote super-computing cluster (the production workflow uses Globus):
// a bandwidth/latency link plus the byte accounting that Tables I and II
// report — 2 TB of one-time network staging, 100 MB–8.7 GB of daily
// configurations outbound, and 120 MB–70 GB of summaries inbound, while the
// 20 GB–3.5 TB of raw output stays on the remote filesystem.
package transfer

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Byte-size constants.
const (
	KB int64 = 1 << 10
	MB int64 = 1 << 20
	GB int64 = 1 << 30
	TB int64 = 1 << 40
)

// Link is a point-to-point transfer channel.
type Link struct {
	Name string
	// BandwidthBytesPerSec is the sustained throughput.
	BandwidthBytesPerSec float64
	// LatencySec is the per-transfer startup overhead (checksums,
	// handshakes — Globus transfers are batched, so this is per batch).
	LatencySec float64
}

// DefaultLink models the Internet2 path between the two sites at a
// sustained 2 Gb/s with 30 s of per-batch overhead.
func DefaultLink() Link {
	return Link{Name: "home↔remote (Globus)", BandwidthBytesPerSec: 250e6, LatencySec: 30}
}

// Duration returns the modeled wall time to move n bytes. Zero, negative or
// non-finite bandwidth and negative or non-finite latency are rejected so
// that Inf/NaN durations can never leak into downstream accounting (night
// reports sum these values).
func (l Link) Duration(n int64) (float64, error) {
	if n < 0 {
		return 0, fmt.Errorf("transfer: negative size %d", n)
	}
	if !(l.BandwidthBytesPerSec > 0) || math.IsInf(l.BandwidthBytesPerSec, 0) {
		return 0, fmt.Errorf("transfer: bandwidth %v must be positive and finite", l.BandwidthBytesPerSec)
	}
	if !(l.LatencySec >= 0) || math.IsInf(l.LatencySec, 0) {
		return 0, fmt.Errorf("transfer: latency %v must be non-negative and finite", l.LatencySec)
	}
	return l.LatencySec + float64(n)/l.BandwidthBytesPerSec, nil
}

// Direction of a transfer relative to the home cluster.
type Direction int

// Transfer directions.
const (
	HomeToRemote Direction = iota
	RemoteToHome
)

func (d Direction) String() string {
	if d == HomeToRemote {
		return "home→remote"
	}
	return "remote→home"
}

// Record is one completed transfer.
type Record struct {
	Day       int
	Direction Direction
	Label     string
	Bytes     int64
	Seconds   float64
	// Retries counts stalled attempts before the transfer went through.
	Retries int
}

// Ledger accumulates transfer records and answers the Table I / Table II
// accounting questions. It is safe for concurrent use: multiple workflows
// sharing one Pipeline (the scenario service's worker pool) move bytes
// through the same ledger.
type Ledger struct {
	Link Link
	// WindowSeconds, when positive, is the nightly transfer window; any
	// single transfer whose elapsed seconds exceed it counts as a window
	// violation in Snapshot. core.NewPipeline sets it from the night window.
	WindowSeconds float64

	mu      sync.Mutex
	Records []Record
}

// NewLedger builds a ledger over a link.
func NewLedger(link Link) *Ledger { return &Ledger{Link: link} }

// Move records a transfer and returns its modeled duration.
func (l *Ledger) Move(day int, dir Direction, label string, bytes int64) (float64, error) {
	d, err := l.Link.Duration(bytes)
	if err != nil {
		return 0, err
	}
	l.mu.Lock()
	l.Records = append(l.Records, Record{Day: day, Direction: dir, Label: label, Bytes: bytes, Seconds: d})
	l.mu.Unlock()
	return d, nil
}

// RetryPolicy bounds transfer retries with exponential backoff. Zero fields
// take the defaults of DefaultRetryPolicy.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts (≥ 1).
	MaxAttempts int
	// BaseBackoff is the wait in seconds before the second attempt.
	BaseBackoff float64
	// Factor multiplies the backoff after every stalled attempt.
	Factor float64
}

// DefaultRetryPolicy mirrors the production Globus retry configuration:
// five attempts, one minute base backoff, doubling.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 5, BaseBackoff: 60, Factor: 2}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = d.BaseBackoff
	}
	if p.Factor < 1 {
		p.Factor = d.Factor
	}
	return p
}

// Backoff returns the wait after stalled attempt `attempt` (0-based),
// spread by a jitter fraction u ∈ [0, 1): base·factor^attempt·(1 + u).
func (p RetryPolicy) Backoff(attempt int, u float64) float64 {
	p = p.withDefaults()
	b := p.BaseBackoff
	for i := 0; i < attempt; i++ {
		b *= p.Factor
	}
	return b * (1 + u)
}

// MoveWithRetry records a transfer whose attempts may stall. fault(attempt)
// reports whether 0-based attempt `attempt` stalls and supplies the jitter
// u ∈ [0, 1) for that attempt's backoff; a nil fault never stalls. Each
// stalled attempt costs the link's per-batch latency plus the jittered
// backoff before the next try. On success the ledger gains one record
// carrying the total elapsed seconds and the retry count; when every
// attempt stalls the transfer fails, nothing is recorded, and the retry
// count is returned with the error.
func (l *Ledger) MoveWithRetry(day int, dir Direction, label string, bytes int64, pol RetryPolicy, fault func(attempt int) (stalled bool, jitter float64)) (float64, int, error) {
	pol = pol.withDefaults()
	d, err := l.Link.Duration(bytes)
	if err != nil {
		return 0, 0, err
	}
	elapsed := 0.0
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		stalled, jitter := false, 0.0
		if fault != nil {
			stalled, jitter = fault(attempt)
		}
		if !stalled {
			elapsed += d
			l.mu.Lock()
			l.Records = append(l.Records, Record{
				Day: day, Direction: dir, Label: label, Bytes: bytes,
				Seconds: elapsed, Retries: attempt,
			})
			l.mu.Unlock()
			return elapsed, attempt, nil
		}
		elapsed += l.Link.LatencySec + pol.Backoff(attempt, jitter)
	}
	return elapsed, pol.MaxAttempts, fmt.Errorf("transfer: %s stalled on all %d attempts", label, pol.MaxAttempts)
}

// TotalBytes sums transferred bytes, optionally filtered by direction.
func (l *Ledger) TotalBytes(dir Direction) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var total int64
	for _, r := range l.Records {
		if r.Direction == dir {
			total += r.Bytes
		}
	}
	return total
}

// DayBytes sums one day's bytes in one direction.
func (l *Ledger) DayBytes(day int, dir Direction) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var total int64
	for _, r := range l.Records {
		if r.Day == day && r.Direction == dir {
			total += r.Bytes
		}
	}
	return total
}

// TotalSeconds sums modeled transfer time.
func (l *Ledger) TotalSeconds() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := 0.0
	for _, r := range l.Records {
		total += r.Seconds
	}
	return total
}

// ByLabel returns total bytes per label, sorted by label for stable output.
func (l *Ledger) ByLabel() []LabelBytes {
	l.mu.Lock()
	defer l.mu.Unlock()
	m := map[string]int64{}
	for _, r := range l.Records {
		m[r.Label] += r.Bytes
	}
	out := make([]LabelBytes, 0, len(m))
	for k, v := range m {
		out = append(out, LabelBytes{Label: k, Bytes: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// LabelBytes pairs a label with a byte total.
type LabelBytes struct {
	Label string
	Bytes int64
}

// HumanBytes formats a byte count the way the paper's tables do.
func HumanBytes(n int64) string {
	switch {
	case n >= TB:
		return fmt.Sprintf("%.1fTB", float64(n)/float64(TB))
	case n >= GB:
		return fmt.Sprintf("%.1fGB", float64(n)/float64(GB))
	case n >= MB:
		return fmt.Sprintf("%.1fMB", float64(n)/float64(MB))
	case n >= KB:
		return fmt.Sprintf("%.1fKB", float64(n)/float64(KB))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
