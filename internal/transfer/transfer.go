// Package transfer models the data movement between the home cluster and
// the remote super-computing cluster (the production workflow uses Globus):
// a bandwidth/latency link plus the byte accounting that Tables I and II
// report — 2 TB of one-time network staging, 100 MB–8.7 GB of daily
// configurations outbound, and 120 MB–70 GB of summaries inbound, while the
// 20 GB–3.5 TB of raw output stays on the remote filesystem.
package transfer

import (
	"fmt"
	"sort"
)

// Byte-size constants.
const (
	KB int64 = 1 << 10
	MB int64 = 1 << 20
	GB int64 = 1 << 30
	TB int64 = 1 << 40
)

// Link is a point-to-point transfer channel.
type Link struct {
	Name string
	// BandwidthBytesPerSec is the sustained throughput.
	BandwidthBytesPerSec float64
	// LatencySec is the per-transfer startup overhead (checksums,
	// handshakes — Globus transfers are batched, so this is per batch).
	LatencySec float64
}

// DefaultLink models the Internet2 path between the two sites at a
// sustained 2 Gb/s with 30 s of per-batch overhead.
func DefaultLink() Link {
	return Link{Name: "home↔remote (Globus)", BandwidthBytesPerSec: 250e6, LatencySec: 30}
}

// Duration returns the modeled wall time to move n bytes.
func (l Link) Duration(n int64) (float64, error) {
	if n < 0 {
		return 0, fmt.Errorf("transfer: negative size %d", n)
	}
	if l.BandwidthBytesPerSec <= 0 {
		return 0, fmt.Errorf("transfer: non-positive bandwidth")
	}
	return l.LatencySec + float64(n)/l.BandwidthBytesPerSec, nil
}

// Direction of a transfer relative to the home cluster.
type Direction int

// Transfer directions.
const (
	HomeToRemote Direction = iota
	RemoteToHome
)

func (d Direction) String() string {
	if d == HomeToRemote {
		return "home→remote"
	}
	return "remote→home"
}

// Record is one completed transfer.
type Record struct {
	Day       int
	Direction Direction
	Label     string
	Bytes     int64
	Seconds   float64
}

// Ledger accumulates transfer records and answers the Table I / Table II
// accounting questions.
type Ledger struct {
	Link    Link
	Records []Record
}

// NewLedger builds a ledger over a link.
func NewLedger(link Link) *Ledger { return &Ledger{Link: link} }

// Move records a transfer and returns its modeled duration.
func (l *Ledger) Move(day int, dir Direction, label string, bytes int64) (float64, error) {
	d, err := l.Link.Duration(bytes)
	if err != nil {
		return 0, err
	}
	l.Records = append(l.Records, Record{Day: day, Direction: dir, Label: label, Bytes: bytes, Seconds: d})
	return d, nil
}

// TotalBytes sums transferred bytes, optionally filtered by direction.
func (l *Ledger) TotalBytes(dir Direction) int64 {
	var total int64
	for _, r := range l.Records {
		if r.Direction == dir {
			total += r.Bytes
		}
	}
	return total
}

// DayBytes sums one day's bytes in one direction.
func (l *Ledger) DayBytes(day int, dir Direction) int64 {
	var total int64
	for _, r := range l.Records {
		if r.Day == day && r.Direction == dir {
			total += r.Bytes
		}
	}
	return total
}

// TotalSeconds sums modeled transfer time.
func (l *Ledger) TotalSeconds() float64 {
	total := 0.0
	for _, r := range l.Records {
		total += r.Seconds
	}
	return total
}

// ByLabel returns total bytes per label, sorted by label for stable output.
func (l *Ledger) ByLabel() []LabelBytes {
	m := map[string]int64{}
	for _, r := range l.Records {
		m[r.Label] += r.Bytes
	}
	out := make([]LabelBytes, 0, len(m))
	for k, v := range m {
		out = append(out, LabelBytes{Label: k, Bytes: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// LabelBytes pairs a label with a byte total.
type LabelBytes struct {
	Label string
	Bytes int64
}

// HumanBytes formats a byte count the way the paper's tables do.
func HumanBytes(n int64) string {
	switch {
	case n >= TB:
		return fmt.Sprintf("%.1fTB", float64(n)/float64(TB))
	case n >= GB:
		return fmt.Sprintf("%.1fGB", float64(n)/float64(GB))
	case n >= MB:
		return fmt.Sprintf("%.1fMB", float64(n)/float64(MB))
	case n >= KB:
		return fmt.Sprintf("%.1fKB", float64(n)/float64(KB))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
