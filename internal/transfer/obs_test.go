package transfer

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// Snapshot must aggregate the ledger's records by direction and flag
// transfers that overran the configured window; RegisterMetrics must render
// exactly those numbers in the Prometheus exposition.
func TestSnapshotAndRegisteredMetrics(t *testing.T) {
	l := NewLedger(DefaultLink())
	if _, err := l.Move(0, HomeToRemote, "configs", 500*MB); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Move(0, RemoteToHome, "summaries", 2*GB); err != nil {
		t.Fatal(err)
	}
	pol := RetryPolicy{MaxAttempts: 5, BaseBackoff: 1, Factor: 2}
	fault := func(attempt int) (bool, float64) { return attempt == 0, 0 }
	if _, retries, err := l.MoveWithRetry(1, HomeToRemote, "configs", 300*MB, pol, fault); err != nil {
		t.Fatal(err)
	} else if retries != 1 {
		t.Fatalf("retries %d want 1", retries)
	}

	s := l.Snapshot()
	if s.Transfers != 3 {
		t.Fatalf("transfers %d want 3", s.Transfers)
	}
	if s.BytesHomeToRemote != 800*MB || s.BytesRemoteToHome != 2*GB {
		t.Fatalf("bytes %d/%d want %d/%d", s.BytesHomeToRemote, s.BytesRemoteToHome, 800*MB, 2*GB)
	}
	if s.Retries != 1 {
		t.Fatalf("retries %d want 1", s.Retries)
	}
	if s.Seconds != l.TotalSeconds() {
		t.Fatalf("seconds %v want %v", s.Seconds, l.TotalSeconds())
	}
	if s.WindowViolations != 0 {
		t.Fatalf("window violations %d with no window configured", s.WindowViolations)
	}

	// A window tighter than any transfer flags all of them.
	l.WindowSeconds = 1e-9
	if v := l.Snapshot().WindowViolations; v != 3 {
		t.Fatalf("window violations %d want 3", v)
	}
	l.WindowSeconds = 0

	reg := obs.NewRegistry()
	RegisterMetrics(reg, l)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`epi_transfer_bytes_total{direction="home_to_remote"} 838860800`,
		`epi_transfer_bytes_total{direction="remote_to_home"} 2147483648`,
		"epi_transfer_count_total 3",
		"epi_transfer_retries_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in exposition:\n%s", want, text)
		}
	}
}

// MoveCtx and MoveWithRetryCtx must book the same ledger records as their
// untraced counterparts while emitting transfer spans and events.
func TestMoveCtxMatchesMove(t *testing.T) {
	plain := NewLedger(DefaultLink())
	dPlain, err := plain.Move(0, HomeToRemote, "configs", 500*MB)
	if err != nil {
		t.Fatal(err)
	}

	col := obs.NewCollector(nil)
	tr := obs.NewTracer(col, obs.WithClock(obs.FixedClock(time.Unix(0, 0), time.Millisecond)))
	ctx := obs.WithTracer(context.Background(), tr)
	traced := NewLedger(DefaultLink())
	dTraced, err := traced.MoveCtx(ctx, 0, HomeToRemote, "configs", 500*MB)
	if err != nil {
		t.Fatal(err)
	}
	if dPlain != dTraced {
		t.Fatalf("modeled duration %v diverges from %v under tracing", dTraced, dPlain)
	}

	pol := RetryPolicy{MaxAttempts: 5, BaseBackoff: 1, Factor: 2}
	fault := func(attempt int) (bool, float64) { return attempt < 2, 0 }
	if _, retries, err := traced.MoveWithRetryCtx(ctx, 1, RemoteToHome, "summaries", GB, pol, fault); err != nil {
		t.Fatal(err)
	} else if retries != 2 {
		t.Fatalf("retries %d want 2", retries)
	}

	spans, retried, moved := 0, 0, 0
	for _, e := range col.Entries() {
		switch {
		case e.Type == obs.EntrySpan && e.Name == "transfer":
			spans++
		case e.Type == obs.EntryEvent && e.Name == "transfer.retried":
			retried++
		case e.Type == obs.EntryEvent && e.Name == "transfer.bytes":
			moved++
		}
	}
	if spans != 2 || retried != 2 || moved != 2 {
		t.Fatalf("spans %d retried %d moved %d, want 2/2/2", spans, retried, moved)
	}
}
