package transfer

import (
	"strings"
	"testing"
)

func TestDuration(t *testing.T) {
	l := Link{BandwidthBytesPerSec: 100, LatencySec: 5}
	d, err := l.Duration(1000)
	if err != nil || d != 15 {
		t.Fatalf("duration %v, %v want 15", d, err)
	}
	if _, err := l.Duration(-1); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := (Link{}).Duration(10); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestLedgerAccounting(t *testing.T) {
	l := NewLedger(DefaultLink())
	if _, err := l.Move(0, HomeToRemote, "configs", 500*MB); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Move(0, RemoteToHome, "summaries", 2*GB); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Move(1, HomeToRemote, "configs", 300*MB); err != nil {
		t.Fatal(err)
	}
	if got := l.TotalBytes(HomeToRemote); got != 800*MB {
		t.Fatalf("outbound %d want %d", got, 800*MB)
	}
	if got := l.TotalBytes(RemoteToHome); got != 2*GB {
		t.Fatalf("inbound %d want %d", got, 2*GB)
	}
	if got := l.DayBytes(0, HomeToRemote); got != 500*MB {
		t.Fatalf("day-0 outbound %d", got)
	}
	if l.TotalSeconds() <= 0 {
		t.Fatal("zero transfer time")
	}
	by := l.ByLabel()
	if len(by) != 2 || by[0].Label != "configs" || by[0].Bytes != 800*MB {
		t.Fatalf("by-label wrong: %+v", by)
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int64]string{
		512:          "512B",
		2 * KB:       "2.0KB",
		100 * MB:     "100.0MB",
		87 * GB / 10: "8.7GB",
		2 * TB:       "2.0TB",
	}
	for n, want := range cases {
		if got := HumanBytes(n); got != want {
			t.Errorf("HumanBytes(%d) = %q want %q", n, got, want)
		}
	}
}

func TestDirectionString(t *testing.T) {
	if !strings.Contains(HomeToRemote.String(), "remote") || !strings.Contains(RemoteToHome.String(), "home") {
		t.Fatal("direction strings wrong")
	}
}

// Table II plausibility: the one-time 2 TB staging takes hours on the
// default link, while a daily 8.7 GB config push takes about a minute.
func TestTableIITransferTimes(t *testing.T) {
	link := DefaultLink()
	staging, err := link.Duration(2 * TB)
	if err != nil {
		t.Fatal(err)
	}
	if staging < 3600 || staging > 24*3600 {
		t.Fatalf("2TB staging takes %v s — expected hours", staging)
	}
	configs, _ := link.Duration(87 * GB / 10)
	if configs > 300 {
		t.Fatalf("8.7GB configs take %v s — expected under 5 minutes", configs)
	}
	summaries, _ := link.Duration(70 * GB)
	if summaries > 3600 {
		t.Fatalf("70GB summaries take %v s — expected under an hour", summaries)
	}
}

func TestMoveError(t *testing.T) {
	l := NewLedger(Link{BandwidthBytesPerSec: 0})
	if _, err := l.Move(0, HomeToRemote, "x", 10); err == nil {
		t.Fatal("zero-bandwidth move accepted")
	}
	if len(l.Records) != 0 {
		t.Fatal("failed move recorded")
	}
}
