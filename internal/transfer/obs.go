package transfer

import (
	"context"

	"repro/internal/obs"
)

// Snapshot is the ledger's aggregate state at one instant — the numbers the
// unified /metrics endpoint and the nightly trace summary report.
type Snapshot struct {
	// Transfers is the number of completed transfers.
	Transfers int
	// BytesHomeToRemote / BytesRemoteToHome split moved bytes by direction.
	BytesHomeToRemote int64
	BytesRemoteToHome int64
	// Retries is the total stalled-attempt count across all transfers.
	Retries int
	// Seconds is the total modeled transfer wall time.
	Seconds float64
	// WindowViolations counts transfers whose elapsed time exceeded the
	// ledger's WindowSeconds (0 when no window is configured).
	WindowViolations int
}

// Snapshot aggregates the ledger under its lock.
func (l *Ledger) Snapshot() Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	var s Snapshot
	s.Transfers = len(l.Records)
	for _, r := range l.Records {
		if r.Direction == HomeToRemote {
			s.BytesHomeToRemote += r.Bytes
		} else {
			s.BytesRemoteToHome += r.Bytes
		}
		s.Retries += r.Retries
		s.Seconds += r.Seconds
		if l.WindowSeconds > 0 && r.Seconds > l.WindowSeconds {
			s.WindowViolations++
		}
	}
	return s
}

// metricLabel renders a direction as a Prometheus-safe label value.
func metricLabel(d Direction) string {
	if d == HomeToRemote {
		return "home_to_remote"
	}
	return "remote_to_home"
}

// MoveCtx is Move wrapped in a "transfer" span carrying the label,
// direction, byte count and modeled duration. Without a tracer on ctx it is
// exactly Move.
func (l *Ledger) MoveCtx(ctx context.Context, day int, dir Direction, label string, bytes int64) (float64, error) {
	ctx, sp := obs.StartSpan(ctx, "transfer",
		obs.String("label", label),
		obs.String("direction", metricLabel(dir)),
		obs.Int("bytes", bytes))
	d, err := l.Move(day, dir, label, bytes)
	if err != nil {
		sp.SetAttr(obs.String("error", err.Error()))
	} else {
		sp.SetAttr(obs.Float("model_seconds", d))
		obs.Event(ctx, "transfer.bytes",
			obs.String("label", label),
			obs.String("direction", metricLabel(dir)),
			obs.Int("bytes", bytes))
	}
	sp.End()
	return d, err
}

// MoveWithRetryCtx is MoveWithRetry wrapped in a "transfer" span; every
// stalled attempt books a transfer.retried event with the attempt number.
func (l *Ledger) MoveWithRetryCtx(ctx context.Context, day int, dir Direction, label string, bytes int64, pol RetryPolicy, fault func(attempt int) (stalled bool, jitter float64)) (float64, int, error) {
	ctx, sp := obs.StartSpan(ctx, "transfer",
		obs.String("label", label),
		obs.String("direction", metricLabel(dir)),
		obs.Int("bytes", bytes))
	traced := fault
	if sp != nil && fault != nil {
		traced = func(attempt int) (bool, float64) {
			stalled, jitter := fault(attempt)
			if stalled {
				obs.Event(ctx, "transfer.retried",
					obs.String("label", label),
					obs.Int("attempt", int64(attempt)))
			}
			return stalled, jitter
		}
	}
	elapsed, retries, err := l.MoveWithRetry(day, dir, label, bytes, pol, traced)
	sp.SetAttr(obs.Int("retries", int64(retries)), obs.Float("model_seconds", elapsed))
	if err != nil {
		sp.SetAttr(obs.String("error", err.Error()))
	} else {
		obs.Event(ctx, "transfer.bytes",
			obs.String("label", label),
			obs.String("direction", metricLabel(dir)),
			obs.Int("bytes", bytes))
	}
	sp.End()
	return elapsed, retries, err
}

// RegisterMetrics exposes the ledger on a registry: per-direction byte
// totals, transfer/retry counts, total modeled seconds and window
// violations. Callbacks read a fresh Snapshot at exposition time, so the
// series always reflect the live ledger.
func RegisterMetrics(reg *obs.Registry, l *Ledger) {
	reg.Help("epi_transfer_bytes_total", "bytes moved between sites by direction")
	reg.CounterFunc(`epi_transfer_bytes_total{direction="home_to_remote"}`,
		func() float64 { return float64(l.Snapshot().BytesHomeToRemote) })
	reg.CounterFunc(`epi_transfer_bytes_total{direction="remote_to_home"}`,
		func() float64 { return float64(l.Snapshot().BytesRemoteToHome) })
	reg.Help("epi_transfer_count_total", "completed transfers")
	reg.CounterFunc("epi_transfer_count_total",
		func() float64 { return float64(l.Snapshot().Transfers) })
	reg.Help("epi_transfer_retries_total", "stalled transfer attempts before success")
	reg.CounterFunc("epi_transfer_retries_total",
		func() float64 { return float64(l.Snapshot().Retries) })
	reg.Help("epi_transfer_seconds_total", "total modeled transfer wall time")
	reg.CounterFunc("epi_transfer_seconds_total",
		func() float64 { return l.Snapshot().Seconds })
	reg.Help("epi_transfer_window_violations", "transfers exceeding the nightly window")
	reg.GaugeFunc("epi_transfer_window_violations",
		func() float64 { return float64(l.Snapshot().WindowViolations) })
}
