package fidelity

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/castore"
	"repro/internal/core"
	"repro/internal/disease"
	"repro/internal/obs"
)

// Config parameterizes a Router.
type Config struct {
	// Fingerprint is the owning pipeline's content fingerprint; it salts
	// every family key so training data never leaks across data/config
	// versions.
	Fingerprint string
	// Scale is the pipeline's population down-scaling factor (core
	// WithScale), so surrogate curves live on the ABM's synthetic scale.
	Scale int
	// MinFit is the number of design points a family needs before its GP
	// emulator fits. Default 8.
	MinFit int
	// MaxStale bounds staleness: once a family has accumulated this many
	// observations not yet reflected in its fitted snapshot, a refit is
	// scheduled. Default 4.
	MaxStale int
	// MaxFamilies / MaxBytes bound the castore-backed training-set cache.
	// Defaults 64 families / 64 MiB.
	MaxFamilies int
	MaxBytes    int64
	// Sync makes observations refit inline instead of in the background
	// (deterministic tests).
	Sync bool
}

func (c Config) withDefaults() Config {
	if c.MinFit <= 0 {
		c.MinFit = 8
	}
	if c.MaxStale <= 0 {
		c.MaxStale = 4
	}
	if c.MaxFamilies <= 0 {
		c.MaxFamilies = 64
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 64 << 20
	}
	return c
}

// Router picks the cheapest tier that can answer a request within its
// uncertainty budget, and turns reported ABM answers into training data.
// Safe for concurrent use.
type Router struct {
	cfg    Config
	mapper *metapopMapper

	mu       sync.Mutex // guards get-or-create on families
	families *castore.Store[*family]

	refits sync.WaitGroup
	m      metrics
}

// NewRouter builds a router for one pipeline.
func NewRouter(cfg Config) *Router {
	cfg = cfg.withDefaults()
	r := &Router{cfg: cfg, mapper: newMetapopMapper(cfg.Scale)}
	r.families = castore.New[*family](
		castore.WithMaxEntries[*family](cfg.MaxFamilies),
		castore.WithMaxCost[*family](cfg.MaxBytes, func(f *family) int64 { return f.cost() }),
	)
	return r
}

// Close waits for in-flight background refits to finish.
func (r *Router) Close() { r.refits.Wait() }

// family returns the training family for a request, creating it on first
// sight.
func (r *Router) family(req Request, key string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families.Get(key); ok {
		return f
	}
	f := newFamily(key, req)
	r.families.Put(key, f)
	r.m.families.inc()
	return f
}

// Route decides which tier answers a request, computing the answer for the
// surrogate tiers. It never runs the ABM: a TierABM decision instructs the
// caller to run the legacy workflow (bit-identical to a router-less
// deployment) and report the outcome back via an Observe hook.
func (r *Router) Route(ctx context.Context, req Request) (Decision, error) {
	if req.Mode == "" {
		req.Mode = TierAuto
	}
	if err := req.Validate(); err != nil {
		return Decision{}, err
	}
	key := req.FamilyKey(r.cfg.Fingerprint)
	budget := req.budget()
	d, err := r.decide(req, key, budget)
	if err != nil {
		return Decision{}, err
	}
	r.m.served(d.Tier)
	obs.Event(ctx, "fidelity.route",
		obs.String("tier", string(d.Tier)),
		obs.String("reason", d.Reason),
		obs.String("family", key[:12]),
		obs.Float("uncertainty", d.Uncertainty),
		obs.Float("budget", d.Budget))
	return d, nil
}

func (r *Router) decide(req Request, key string, budget float64) (Decision, error) {
	fam := r.family(req, key)
	snap := fam.snapshotView()
	base := Decision{Budget: budget, FamilyKey: key}

	switch req.Mode {
	case TierABM:
		base.Tier, base.Reason = TierABM, "forced"
		return base, nil
	case TierEmulator:
		if snap == nil || snap.emu == nil {
			return Decision{}, fmt.Errorf("fidelity: emulator not fitted for family %s (have %d of %d design points)",
				key[:12], fam.size(), r.cfg.MinFit)
		}
		ans, u := snap.emu.emulate(req)
		base.Tier, base.Reason, base.Uncertainty, base.Answer = TierEmulator, "forced", u, ans
		return base, nil
	case TierMetapop:
		var corr *correction
		if snap != nil {
			corr = snap.corr
		}
		ans, u, err := metapopAnswer(r.mapper, req, corr)
		if err != nil {
			return Decision{}, err
		}
		base.Tier, base.Reason, base.Uncertainty, base.Answer = TierMetapop, "forced", u, ans
		return base, nil
	}

	// Auto mode: walk the ladder bottom-up, recording why each rung passes.
	reason := "no training data"
	if snap != nil && snap.emu != nil {
		if !allInRegion(snap.emu, req) {
			reason = "outside trained region"
		} else if u := snap.emu.uncertaintyAt(req); u > budget {
			reason = fmt.Sprintf("emulator uncertainty %.3g > budget %.3g", u, budget)
		} else {
			ans, u := snap.emu.emulate(req)
			base.Tier, base.Uncertainty, base.Answer = TierEmulator, u, ans
			base.Reason = fmt.Sprintf("uncertainty %.3g within budget %.3g", u, budget)
			return base, nil
		}
	}
	if snap != nil && snap.corr != nil && snap.corr.err <= budget {
		ans, u, err := metapopAnswer(r.mapper, req, snap.corr)
		if err != nil {
			return Decision{}, err
		}
		base.Tier, base.Uncertainty, base.Answer = TierMetapop, u, ans
		base.Reason = fmt.Sprintf("%s; metapop error %.3g within budget %.3g", reason, u, budget)
		return base, nil
	}
	if snap != nil && snap.corr != nil {
		reason = fmt.Sprintf("%s; metapop error %.3g > budget %.3g", reason, snap.corr.err, budget)
	}
	r.m.escalated.inc()
	base.Tier, base.Reason = TierABM, reason
	return base, nil
}

func allInRegion(e *emulator, req Request) bool {
	for _, pr := range req.Configs {
		if !e.inRegion(theta(pr)) {
			return false
		}
	}
	return true
}

// ObservePrediction records an ABM prediction outcome as training data: one
// observation per configuration, with per-series replicate-mean log1p
// curves.
func (r *Router) ObservePrediction(ctx context.Context, req Request, out *core.PredictionOutcome) error {
	if out == nil || len(out.Sims) == 0 {
		return nil
	}
	req.Workflow = WorkflowPrediction
	extractors := map[string]func(*core.SimOutput) []float64{
		SeriesConfirmed: func(s *core.SimOutput) []float64 {
			return s.Agg.StateConfirmedCumulative()
		},
		SeriesHospitalized: func(s *core.SimOutput) []float64 {
			return s.Agg.StateCumulative(disease.Hospitalized)
		},
		SeriesDeaths: func(s *core.SimOutput) []float64 {
			return s.Agg.StateCumulative(disease.Dead)
		},
	}
	curves := map[string]map[int][]float64{}
	noise := map[string]map[int]float64{}
	for name, ex := range extractors {
		means := curvesFromSims(out.Sims, req.Days, ex)
		curves[name] = means
		noise[name] = noiseFromSims(out.Sims, req.Days, means, ex)
	}
	perConfig := func(c int) (map[string][]float64, float64) {
		m := map[string][]float64{}
		worst := 0.0
		for name, byCell := range curves {
			m[name] = byCell[c]
			worst = math.Max(worst, noise[name][c])
		}
		return m, worst
	}
	return r.observe(ctx, req, perConfig)
}

// ObserveWhatIf records an ABM what-if outcome as training data, one
// observation per configuration spanning every scenario's series.
func (r *Router) ObserveWhatIf(ctx context.Context, req Request, outs []*core.ScenarioOutcome) error {
	if len(outs) == 0 {
		return nil
	}
	req.Workflow = WorkflowWhatIf
	bySeries := map[string]map[int][]float64{}
	noise := map[string]map[int]float64{}
	record := func(name string, sims []*core.SimOutput, ex func(*core.SimOutput) []float64) {
		means := curvesFromSims(sims, req.Days, ex)
		bySeries[name] = means
		noise[name] = noiseFromSims(sims, req.Days, means, ex)
	}
	for _, o := range outs {
		if len(o.Sims) == 0 {
			return nil // outcome predates per-sim reporting; nothing to learn
		}
		record(ScenarioSeries(o.Scenario.Name, SeriesConfirmed), o.Sims,
			func(s *core.SimOutput) []float64 { return s.Agg.StateConfirmedCumulative() })
		record(ScenarioSeries(o.Scenario.Name, SeriesDeaths), o.Sims,
			func(s *core.SimOutput) []float64 { return s.Agg.StateCumulative(disease.Dead) })
	}
	perConfig := func(c int) (map[string][]float64, float64) {
		m := map[string][]float64{}
		worst := 0.0
		for name, byCell := range bySeries {
			m[name] = byCell[c]
			worst = math.Max(worst, noise[name][c])
		}
		return m, worst
	}
	return r.observe(ctx, req, perConfig)
}

// observe folds per-config curves into the request's family and schedules a
// refit when staleness crosses the bound.
func (r *Router) observe(ctx context.Context, req Request, perConfig func(int) (map[string][]float64, float64)) error {
	if err := req.Validate(); err != nil {
		return err
	}
	key := req.FamilyKey(r.cfg.Fingerprint)
	fam := r.family(req, key)
	names := req.seriesNames()
	var n, pending int
	for c, pr := range req.Configs {
		curves, noise := perConfig(c)
		if err := checkCurves(names, req.Days, curves); err != nil {
			return err
		}
		base, err := r.mapper.baseCurves(req, pr)
		if err != nil {
			return err
		}
		n, pending = fam.add(observation{theta: theta(pr), curves: curves, base: base, noise: noise})
		r.m.observations.inc()
	}
	obs.Event(ctx, "fidelity.observe",
		obs.String("family", key[:12]),
		obs.Int("configs", int64(len(req.Configs))),
		obs.Int("train_n", int64(n)))
	// Re-Put refreshes the family's cost and LRU position now that it
	// holds more data.
	r.mu.Lock()
	r.families.Put(key, fam)
	r.mu.Unlock()
	if pending >= r.cfg.MaxStale || (n >= minCorrection && fam.snapshotView() == nil) {
		r.scheduleRefit(fam)
	}
	return nil
}

// scheduleRefit triggers a background (or, under Config.Sync, inline) refit
// of one family; concurrent triggers coalesce.
func (r *Router) scheduleRefit(fam *family) {
	fam.mu.Lock()
	if fam.fitting {
		fam.mu.Unlock()
		return
	}
	fam.fitting = true
	fam.mu.Unlock()
	run := func() {
		defer func() {
			fam.mu.Lock()
			fam.fitting = false
			fam.mu.Unlock()
		}()
		if err := fam.refit(r.cfg.MinFit); err == nil {
			r.m.refits.inc()
		} else {
			r.m.refitErrors.inc()
		}
	}
	if r.cfg.Sync {
		run()
		return
	}
	r.refits.Add(1)
	go func() {
		defer r.refits.Done()
		run()
	}()
}

// TierState summarizes one rung's warm state for readiness reporting.
type TierState struct {
	Ready    bool   `json:"ready"`
	Families int    `json:"families,omitempty"`
	Detail   string `json:"detail,omitempty"`
}

// Status reports per-tier warm state: how many families have a fitted
// emulator / metapop correction.
func (r *Router) Status() map[string]TierState {
	keys := r.families.Keys()
	fams := make([]*family, 0, len(keys))
	for _, k := range keys {
		if f, ok := r.families.Peek(k); ok {
			fams = append(fams, f)
		}
	}
	var fitted, corrected int
	for _, f := range fams {
		if snap := f.snapshotView(); snap != nil {
			if snap.emu != nil {
				fitted++
			}
			if snap.corr != nil {
				corrected++
			}
		}
	}
	return map[string]TierState{
		string(TierEmulator): {Ready: fitted > 0, Families: fitted,
			Detail: fmt.Sprintf("%d of %d families fitted", fitted, len(fams))},
		string(TierMetapop): {Ready: true, Families: corrected,
			Detail: fmt.Sprintf("%d of %d families delta-corrected", corrected, len(fams))},
		string(TierABM): {Ready: true, Detail: "always available"},
	}
}

// FittedFamilies reports how many families currently have a fitted
// emulator.
func (r *Router) FittedFamilies() int {
	st := r.Status()
	return st[string(TierEmulator)].Families
}
