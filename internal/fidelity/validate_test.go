package fidelity

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/disease"
)

// TestValidationSweep is the PR's acceptance gate: train the ladder on a
// design-point sweep, then check that ≥95% of auto-routed held-out queries
// fall within the decision's declared uncertainty bound against ABM ground
// truth computed at the same statistic the emulator trains on (the
// replicate-mean log1p curve — deviations in that space are relative errors
// in natural units). The pipeline is seeded, so the sweep is deterministic:
// it either always passes or always fails.
func TestValidationSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full ABM training sweep")
	}
	const scale = 5000
	ctx := context.Background()
	p := core.NewPipeline(2020, core.WithScale(scale), core.WithParallelism(2))
	r := NewRouter(Config{Fingerprint: p.Fingerprint(), Scale: scale, MinFit: 10, MaxStale: 1, Sync: true})

	base := Request{
		Workflow: WorkflowPrediction, State: "VA",
		Days: 40, SHStart: 15, SHEnd: 40, Replicates: 2,
		Mode: TierAuto,
	}

	// Training design: a 2-D sweep over the active parameters (TAU,
	// SHCompliance); SYMP and VHICompliance stay at the case-study values.
	train := [][2]float64{
		{0.16, 0.30}, {0.16, 0.70}, {0.24, 0.30}, {0.24, 0.70},
		{0.18, 0.40}, {0.18, 0.60}, {0.22, 0.40}, {0.22, 0.60},
		{0.20, 0.30}, {0.20, 0.50}, {0.20, 0.70}, {0.17, 0.55},
	}
	cfgAt := func(tau, shc float64) core.Params {
		return core.Params{TAU: tau, SYMP: 0.65, SHCompliance: shc, VHICompliance: 0.5}
	}
	runABM := func(pr core.Params) *core.PredictionOutcome {
		t.Helper()
		out, err := p.RunPredictionWorkflowCtx(ctx, core.PredictionConfig{
			State: base.State, Replicates: base.Replicates, Days: base.Days,
			SHStart: base.SHStart, SHEnd: base.SHEnd, Configs: []core.Params{pr},
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	for _, d := range train {
		req := base
		req.Configs = []core.Params{cfgAt(d[0], d[1])}
		if err := r.ObservePrediction(ctx, req, runABM(req.Configs[0])); err != nil {
			t.Fatal(err)
		}
	}

	// Held-out queries, all inside the trained region.
	held := [][2]float64{
		{0.17, 0.45}, {0.19, 0.35}, {0.19, 0.65}, {0.21, 0.50},
		{0.21, 0.38}, {0.23, 0.55}, {0.18, 0.52}, {0.22, 0.67},
	}
	truthStat := func(out *core.PredictionOutcome, name string) []float64 {
		extract := map[string]func(*core.SimOutput) []float64{
			SeriesConfirmed:    func(s *core.SimOutput) []float64 { return s.Agg.StateConfirmedCumulative() },
			SeriesHospitalized: func(s *core.SimOutput) []float64 { return s.Agg.StateCumulative(disease.Hospitalized) },
			SeriesDeaths:       func(s *core.SimOutput) []float64 { return s.Agg.StateCumulative(disease.Dead) },
		}[name]
		return curvesFromSims(out.Sims, base.Days, extract)[0]
	}

	within := 0
	emulated := 0
	for _, q := range held {
		req := base
		req.Configs = []core.Params{cfgAt(q[0], q[1])}
		req.MaxUncertainty = 2.0 // loose budget: routing picks the surrogate, the check uses the declared bound
		d, err := r.Route(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if d.Tier == TierABM {
			t.Fatalf("held-out in-region query (%v) escalated: %s", q, d.Reason)
		}
		if d.Tier == TierEmulator {
			emulated++
		}
		truthOut := runABM(req.Configs[0])
		worst := 0.0
		for _, name := range req.seriesNames() {
			truth := truthStat(truthOut, name)
			pred := d.Answer.Series[name].Median
			for day := 0; day < base.Days; day++ {
				dev := math.Abs(math.Log1p(math.Max(0, pred[day])) - truth[day])
				if dev > worst {
					worst = dev
				}
			}
		}
		if worst <= d.Uncertainty {
			within++
		} else {
			t.Logf("query %v: worst deviation %.4f > declared %.4f (tier %s)", q, worst, d.Uncertainty, d.Tier)
		}
	}
	if emulated == 0 {
		t.Fatalf("no held-out query was served by the emulator")
	}
	frac := float64(within) / float64(len(held))
	t.Logf("validation: %d/%d within declared bound (%.0f%%), %d emulator-served",
		within, len(held), 100*frac, emulated)
	if frac < 0.95 {
		t.Fatalf("only %.0f%% of held-out queries within the declared bound, want ≥95%%", 100*frac)
	}
}

// TestWhatIfLadder trains on what-if outcomes and serves a scenario request
// from the surrogates.
func TestWhatIfLadder(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ABM what-if training")
	}
	const scale = 40000
	ctx := context.Background()
	p := core.NewPipeline(2020, core.WithScale(scale), core.WithParallelism(2))
	r := NewRouter(Config{Fingerprint: p.Fingerprint(), Scale: scale, MinFit: 4, MaxStale: 1, Sync: true})

	whatifs := []core.WhatIf{
		{Name: "sh-extended", SHEndShift: 20},
		{Name: "sh-lifted", SHEndShift: -10},
	}
	base := Request{
		Workflow: WorkflowWhatIf, State: "VA",
		Days: 35, SHStart: 15, SHEnd: 35, Replicates: 2,
		WhatIfs: whatifs, Mode: TierAuto,
	}
	taus := []float64{0.16, 0.19, 0.22, 0.25}
	for _, tau := range taus {
		req := base
		req.Configs = []core.Params{{TAU: tau, SYMP: 0.65, SHCompliance: 0.5, VHICompliance: 0.5}}
		outs, err := p.RunWhatIfScenariosCtx(ctx, core.PredictionConfig{
			State: req.State, Replicates: req.Replicates, Days: req.Days,
			SHStart: req.SHStart, SHEnd: req.SHEnd, Configs: req.Configs,
		}, whatifs)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.ObserveWhatIf(ctx, req, outs); err != nil {
			t.Fatal(err)
		}
	}
	req := base
	req.Configs = []core.Params{{TAU: 0.2, SYMP: 0.65, SHCompliance: 0.5, VHICompliance: 0.5}}
	req.MaxUncertainty = 2.0
	d, err := r.Route(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if d.Tier != TierEmulator {
		t.Fatalf("trained what-if family routed to %s (%s), want emulator", d.Tier, d.Reason)
	}
	checkAnswerShape(t, d.Answer, req)
	for _, w := range whatifs {
		for _, s := range []string{SeriesConfirmed, SeriesDeaths} {
			if _, ok := d.Answer.Series[ScenarioSeries(w.Name, s)]; !ok {
				t.Errorf("missing scenario series %s/%s", w.Name, s)
			}
		}
	}
}
