// Package fidelity implements the serving tier's fidelity ladder: a router
// that answers a normalized scenario request from the cheapest model that
// can meet the request's uncertainty budget. Three tiers are available, in
// ascending cost and fidelity:
//
//   - emulator: a per-family Gaussian-process emulator (internal/gp) over
//     the calibrated parameter space, trained on curves harvested from past
//     ABM answers — microseconds per query, with a predictive variance that
//     doubles as the escalation signal;
//   - metapop: the county metapopulation SEIR (internal/metapop) mapped
//     from the request's parameters and corrected by a per-day delta model
//     learned against the same ABM training curves — milliseconds;
//   - abm: the full agent-based workflow (internal/core) — seconds; the
//     router never runs it, it only decides that the caller must.
//
// "Simulating Larger Models Using Smaller Ones" (PAPERS.md) motivates the
// design: most planning queries land near previously simulated
// configurations, where a cheap surrogate is indistinguishable from the
// large model — so the expensive simulator should only burn CPU on queries
// the surrogate provably cannot answer.
//
// Routing is per config-family: requests that differ only in their
// calibrated parameter configurations share one training set, keyed by a
// SHA-256 fingerprint of everything else (workflow, region, horizon,
// mitigation schedule, what-if stack, pipeline fingerprint). Each family
// maintains the emulator's trained region (the bounding box of its design
// points), a LOO-CV variance calibration (internal/gp/loocv.go), and the
// metapop delta correction. Every ABM answer the caller reports back via
// the Observe hooks becomes a new design point; emulators are refitted in
// the background with bounded staleness.
//
// Escalation rule, in auto mode: serve from the emulator iff the family is
// fitted, every requested configuration lies inside the trained region, and
// the (LOO-CV-inflated) predictive uncertainty is within the request's
// budget; otherwise serve from the corrected metapop iff its empirical
// error estimate is within budget; otherwise escalate to the ABM. Forced
// modes bypass the gates. The uncertainty number is a 95% relative error
// bound: predictions and truth are compared as log1p curves, where an
// absolute deviation u approximates a relative deviation of u in natural
// units.
package fidelity

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
)

// Tier names a rung of the fidelity ladder (or the auto mode that picks
// one).
type Tier string

// The ladder's tiers, plus the auto mode.
const (
	TierAuto     Tier = "auto"
	TierEmulator Tier = "emulator"
	TierMetapop  Tier = "metapop"
	TierABM      Tier = "abm"
)

// ParseTier normalizes a tier name case-insensitively. The empty string is
// not a tier — callers that treat "" as "legacy ABM path" must branch
// before parsing.
func ParseTier(s string) (Tier, error) {
	switch t := Tier(strings.ToLower(strings.TrimSpace(s))); t {
	case TierAuto, TierEmulator, TierMetapop, TierABM:
		return t, nil
	default:
		return "", fmt.Errorf("fidelity: unknown tier %q (want %s|%s|%s|%s)",
			s, TierAuto, TierEmulator, TierMetapop, TierABM)
	}
}

// Workflows the ladder can serve.
const (
	WorkflowPrediction = "prediction"
	WorkflowWhatIf     = "whatif"
)

// Series names: the curves a family emulates. Prediction families carry
// the three state-level targets; what-if families carry confirmed and
// deaths per scenario, named via ScenarioSeries.
const (
	SeriesConfirmed    = "confirmed"
	SeriesHospitalized = "hospitalized"
	SeriesDeaths       = "deaths"
)

// ScenarioSeries names one what-if scenario's curve, e.g. "sh-lifted/confirmed".
func ScenarioSeries(scenario, series string) string { return scenario + "/" + series }

// Request is a normalized scenario request as the router sees it: the
// family-defining shape plus the configurations to answer for.
type Request struct {
	// Workflow is prediction or whatif.
	Workflow string
	// State is the region postal code.
	State string
	// Days / SHStart / SHEnd / Replicates shape the simulated curves and
	// are part of the family key.
	Days, SHStart, SHEnd, Replicates int
	// Configs are the calibrated parameter points to answer for. They are
	// NOT part of the family key — the emulator generalizes over them.
	Configs []core.Params
	// WhatIfs is the scenario stack (whatif workflow only); part of the
	// family key.
	WhatIfs []core.WhatIf
	// Mode selects the tier (TierAuto gates on uncertainty).
	Mode Tier
	// MaxUncertainty is the auto mode's escalation budget: the maximum
	// acceptable 95% relative error of a surrogate answer. Zero or
	// negative takes DefaultBudget.
	MaxUncertainty float64
}

// DefaultBudget is the escalation budget when a request does not state one.
const DefaultBudget = 0.1

// Validate rejects malformed requests before any routing state is touched.
func (r Request) Validate() error {
	switch r.Workflow {
	case WorkflowPrediction, WorkflowWhatIf:
	default:
		return fmt.Errorf("fidelity: workflow %q not servable", r.Workflow)
	}
	if r.State == "" {
		return fmt.Errorf("fidelity: missing state")
	}
	if r.Days <= 0 {
		return fmt.Errorf("fidelity: non-positive horizon %d", r.Days)
	}
	if len(r.Configs) == 0 {
		return fmt.Errorf("fidelity: no configurations to answer for")
	}
	if math.IsNaN(r.MaxUncertainty) || math.IsInf(r.MaxUncertainty, 0) || r.MaxUncertainty < 0 {
		return fmt.Errorf("fidelity: bad uncertainty budget %v", r.MaxUncertainty)
	}
	if r.Workflow == WorkflowWhatIf && len(r.WhatIfs) == 0 {
		return fmt.Errorf("fidelity: whatif request without scenarios")
	}
	if _, err := ParseTier(string(r.Mode)); err != nil {
		return err
	}
	return nil
}

// budget resolves the effective escalation budget.
func (r Request) budget() float64 {
	if r.MaxUncertainty > 0 {
		return r.MaxUncertainty
	}
	return DefaultBudget
}

// seriesNames lists the curves this request's family trains on, in
// deterministic order.
func (r Request) seriesNames() []string {
	if r.Workflow == WorkflowPrediction {
		return []string{SeriesConfirmed, SeriesHospitalized, SeriesDeaths}
	}
	names := make([]string, 0, 2*len(r.WhatIfs))
	for _, w := range r.WhatIfs {
		names = append(names, ScenarioSeries(w.Name, SeriesConfirmed),
			ScenarioSeries(w.Name, SeriesDeaths))
	}
	return names
}

// familyKeyPayload is the canonical family-defining shape — everything that
// changes the meaning of a curve except the parameter configurations.
type familyKeyPayload struct {
	Workflow   string
	State      string
	Days       int
	SHStart    int
	SHEnd      int
	Replicates int
	WhatIfs    []core.WhatIf
}

// FamilyKey content-addresses the request's config family under a pipeline
// fingerprint: two requests share training data iff their keys match.
func (r Request) FamilyKey(fingerprint string) string {
	canon, _ := json.Marshal(familyKeyPayload{
		Workflow: r.Workflow, State: r.State, Days: r.Days,
		SHStart: r.SHStart, SHEnd: r.SHEnd, Replicates: r.Replicates,
		WhatIfs: r.WhatIfs,
	})
	h := sha256.New()
	h.Write([]byte(fingerprint))
	h.Write([]byte{0})
	h.Write(canon)
	return hex.EncodeToString(h.Sum(nil))
}

// theta flattens a configuration into the emulator's input space.
func theta(p core.Params) [paramDim]float64 {
	return [paramDim]float64{p.TAU, p.SYMP, p.SHCompliance, p.VHICompliance}
}

// paramDim is the dimensionality of the calibrated parameter space.
const paramDim = 4

// Answer is a surrogate-tier result: one forecast band per series, in
// natural units.
type Answer struct {
	// Series maps series names (see seriesNames) to bands. Median is the
	// surrogate's central curve; Lo/Hi bracket its ±2 SD envelope across
	// the requested configurations.
	Series map[string]core.Forecast
	// Counties reports how many county-level products the tier models:
	// the metapop tier carries the state's county count, the emulator is
	// state-level only (0).
	Counties int
}

// Decision is the router's verdict on one request.
type Decision struct {
	// Tier is the rung that answers: TierEmulator, TierMetapop or TierABM.
	Tier Tier
	// Reason explains the choice ("forced", "within budget", or the
	// escalation cause: "no training data", "outside trained region",
	// "uncertainty 0.23 > budget 0.10", ...).
	Reason string
	// Uncertainty is the serving tier's 95% relative error estimate
	// (0 for the ABM tier — it is the ground truth).
	Uncertainty float64
	// Budget echoes the effective escalation budget the decision used.
	Budget float64
	// FamilyKey identifies the training family consulted.
	FamilyKey string
	// Answer carries the surrogate result; nil when Tier == TierABM (the
	// caller runs the workflow itself and reports back via Observe).
	Answer *Answer
}
