package fidelity

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
)

// FuzzFidelityRoute drives Route with adversarial request shapes: whatever
// the bytes decode to, routing must either answer or error — never panic —
// and a forced-abm request must always come back as a bare TierABM decision
// (no surrogate answer), which is what guarantees the caller falls through
// to the exact legacy code path.
func FuzzFidelityRoute(f *testing.F) {
	f.Add("prediction", "VA", 40, 15, 40, 2, "auto", 0.1, 0.2, 0.65, 0.5, 0.5, uint8(1))
	f.Add("whatif", "RI", 10, 5, 10, 1, "abm", 0.0, 0.1, 0.1, 0.0, 1.0, uint8(2))
	f.Add("night", "", -3, 0, 0, 0, "emulator", -1.0, math.NaN(), 0.0, 2.0, -1.0, uint8(0))
	f.Add("prediction", "zz", 1000000, -5, -9, 3, "Metapop", math.Inf(1), 0.3, 0.7, 0.4, 0.6, uint8(7))

	r := NewRouter(Config{Fingerprint: "fuzz", Scale: 40000, Sync: true})
	f.Fuzz(func(t *testing.T, workflow, state string, days, shStart, shEnd, reps int,
		mode string, budget, tau, symp, shc, vhic float64, nWhatIfs uint8) {
		req := Request{
			Workflow: workflow, State: state,
			Days: days, SHStart: shStart, SHEnd: shEnd, Replicates: reps,
			Configs:        []core.Params{{TAU: tau, SYMP: symp, SHCompliance: shc, VHICompliance: vhic}},
			Mode:           Tier(mode),
			MaxUncertainty: budget,
		}
		for i := 0; i < int(nWhatIfs%4); i++ {
			req.WhatIfs = append(req.WhatIfs, core.WhatIf{Name: string(rune('a' + i)), SHEndShift: i * 10})
		}
		d, err := r.Route(context.Background(), req)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		if d.Tier == TierABM && d.Answer != nil {
			t.Fatalf("abm decision carried a surrogate answer (mode %q)", mode)
		}
		if req.Mode == TierABM && d.Tier != TierABM {
			t.Fatalf("forced abm was routed to %s", d.Tier)
		}
		if d.Tier != TierABM && d.Answer == nil {
			t.Fatalf("surrogate tier %s carried no answer", d.Tier)
		}
		if math.IsNaN(d.Uncertainty) || d.Uncertainty < 0 {
			t.Fatalf("bad uncertainty %v", d.Uncertainty)
		}
	})
}
