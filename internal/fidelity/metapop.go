package fidelity

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/metapop"
	"repro/internal/synthpop"
)

// metapopMapper turns router requests into county metapopulation SEIR runs
// — the ladder's middle rung. The mapping from the ABM's calibrated
// parameters (TAU, SYMP, compliances) to SEIR rates is a fixed analytic
// approximation; the systematic error it leaves is exactly what the
// per-family delta correction (family.go) learns from ABM answers, so the
// raw mapping only has to correlate with the ABM, not match it.
type metapopMapper struct {
	// scale is the pipeline's population down-scaling factor, so metapop
	// curves live on the same synthetic-person scale as ABM curves.
	scale int

	mu     sync.Mutex
	models map[string]*metapop.Model
}

func newMetapopMapper(scale int) *metapopMapper {
	if scale <= 0 {
		scale = 1
	}
	return &metapopMapper{scale: scale, models: map[string]*metapop.Model{}}
}

// model returns the cached metapopulation geography for a state, scaled to
// the pipeline's synthetic population.
func (m *metapopMapper) model(state string) (*metapop.Model, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if mdl, ok := m.models[state]; ok {
		return mdl, nil
	}
	st, err := synthpop.StateByCode(state)
	if err != nil {
		return nil, err
	}
	st.Population /= m.scale
	if st.Population < st.Counties {
		st.Population = st.Counties
	}
	mdl, err := metapop.NewFromState(st, 0)
	if err != nil {
		return nil, err
	}
	m.models[state] = mdl
	return mdl, nil
}

// seirParams maps a calibrated ABM configuration to SEIR rates. COVID-like
// latent (3d) and infectious (5d) periods; transmission scales with TAU and
// detection with the symptomatic fraction.
func seirParams(p core.Params) metapop.Params {
	return metapop.Params{
		Beta:   1.5 * p.TAU,
		Sigma:  1.0 / 3.0,
		Gamma:  1.0 / 5.0,
		Detect: clamp01(0.6 * p.SYMP),
	}
}

func clamp01(v float64) float64 { return math.Max(0, math.Min(1, v)) }

// baselineScenarios mirrors core.interventionsFor as transmission-reduction
// windows: school closure over [SHStart, end), stay-at-home over
// [SHStart+15, end) scaled by compliance, and voluntary home isolation as a
// horizon-wide damping.
func baselineScenarios(p core.Params, shStart, end, days int) []metapop.Scenario {
	return []metapop.Scenario{
		{Name: "school-closure", Start: shStart, End: end, Factor: 0.85},
		{Name: "stay-at-home", Start: shStart + 15, End: end, Factor: 1 - 0.5*clamp01(p.SHCompliance)},
		{Name: "vhi", Start: 0, End: days, Factor: 1 - 0.25*clamp01(p.VHICompliance)},
	}
}

// scenarioStack builds the metapop scenario windows for one what-if layered
// on the baseline: the modified stack takes effect at the pivot, mirroring
// the ABM's counterfactual-from-pivot semantics.
func scenarioStack(req Request, p core.Params, w *core.WhatIf) []metapop.Scenario {
	end := req.SHEnd
	sp := p
	pivot := req.SHStart
	if w != nil {
		if w.PivotDay > 0 {
			pivot = w.PivotDay
		}
		end += w.SHEndShift
		if end < req.SHStart {
			end = req.SHStart
		}
		if w.ComplianceScale > 0 {
			sp.SHCompliance = clamp01(p.SHCompliance * w.ComplianceScale)
			sp.VHICompliance = clamp01(p.VHICompliance * w.ComplianceScale)
		}
	}
	scs := baselineScenarios(sp, req.SHStart, end, req.Days)
	if w != nil {
		if w.AddTesting > 0 {
			scs = append(scs, metapop.Scenario{
				Name: "test-isolate", Start: pivot, End: req.Days,
				Factor: 1 - 0.3*clamp01(w.AddTesting),
			})
		}
		if w.AddTracing > 0 {
			scs = append(scs, metapop.Scenario{
				Name: "tracing", Start: pivot, End: req.Days,
				Factor: 1 - 0.1*clamp01(w.TraceDetectProb),
			})
		}
	}
	return scs
}

// seedCases mirrors the ABM's default seeding (5 initial cases in the most
// populous county).
const seedCases = 5

// runCurve integrates the mapped SEIR and returns the log1p state
// cumulative confirmed curve.
func (m *metapopMapper) runCurve(req Request, p core.Params, w *core.WhatIf) ([]float64, error) {
	mdl, err := m.model(req.State)
	if err != nil {
		return nil, err
	}
	traj, err := mdl.Run(seirParams(p), req.Days,
		[]metapop.Seed{{CountyIndex: 0, Infectious: seedCases}},
		scenarioStack(req, p, w))
	if err != nil {
		return nil, err
	}
	return log1pCurve(traj.StateCumConfirmed()), nil
}

// baseCurves returns the metapop base curves for one configuration, one per
// family series name. Confirmed-type and deaths-type series share the same
// base dynamic — the per-day delta correction learns the level shift (IFR,
// detection, down-scaling) separately per series.
func (m *metapopMapper) baseCurves(req Request, p core.Params) (map[string][]float64, error) {
	out := map[string][]float64{}
	if req.Workflow == WorkflowPrediction {
		c, err := m.runCurve(req, p, nil)
		if err != nil {
			return nil, err
		}
		out[SeriesConfirmed] = c
		out[SeriesHospitalized] = c
		out[SeriesDeaths] = c
		return out, nil
	}
	for i := range req.WhatIfs {
		w := req.WhatIfs[i]
		c, err := m.runCurve(req, p, &w)
		if err != nil {
			return nil, err
		}
		out[ScenarioSeries(w.Name, SeriesConfirmed)] = c
		out[ScenarioSeries(w.Name, SeriesDeaths)] = c
	}
	return out, nil
}

// counties reports the county count the metapop tier models for a state.
func (m *metapopMapper) counties(state string) int {
	mdl, err := m.model(state)
	if err != nil {
		return 0
	}
	return len(mdl.Counties)
}

// log1pCurve maps a natural-unit curve into the log1p space every surrogate
// operates in (absolute deviations there ≈ relative deviations in natural
// units).
func log1pCurve(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = math.Log1p(math.Max(0, v))
	}
	return out
}

// expm1Clamped inverts log1pCurve, clamping at zero.
func expm1Clamped(v float64) float64 { return math.Max(0, math.Expm1(v)) }

// checkCurves validates that an observation's curves match the family's
// series and horizon.
func checkCurves(names []string, days int, curves map[string][]float64) error {
	if len(curves) != len(names) {
		return fmt.Errorf("fidelity: observation has %d series, family wants %d", len(curves), len(names))
	}
	for _, n := range names {
		c, ok := curves[n]
		if !ok {
			return fmt.Errorf("fidelity: observation missing series %q", n)
		}
		if len(c) != days {
			return fmt.Errorf("fidelity: series %q has %d days, family wants %d", n, len(c), days)
		}
	}
	return nil
}
