package fidelity

import (
	"context"
	"testing"

	"repro/internal/core"
)

// BenchmarkFidelityLadder measures the three rungs of the ladder on the
// same trained family: an emulator hit (the serving fast path), a forced
// corrected-metapop answer, and an escalation that falls through to the
// real ABM. The EscalateABM rung reports speedup_x — ABM ns/op over
// emulator ns/op — which is the PR's headline acceptance metric (the
// emulator must be ≥100× cheaper than the simulator it stands in for).
func BenchmarkFidelityLadder(b *testing.B) {
	const scale = 5000
	ctx := context.Background()
	p := core.NewPipeline(2020, core.WithScale(scale), core.WithParallelism(2))
	r := NewRouter(Config{Fingerprint: p.Fingerprint(), Scale: scale, MinFit: 5, MaxStale: 1, Sync: true})
	defer r.Close()

	base := Request{
		Workflow: WorkflowPrediction, State: "VA",
		Days: 40, SHStart: 15, SHEnd: 40, Replicates: 2,
		Mode: TierAuto, MaxUncertainty: 5,
	}
	taus := []float64{0.16, 0.18, 0.20, 0.22, 0.24}
	shcs := []float64{0.30, 0.70, 0.50, 0.35, 0.65}
	for i := range taus {
		req := base
		req.Configs = []core.Params{{TAU: taus[i], SYMP: 0.65, SHCompliance: shcs[i], VHICompliance: 0.5}}
		out, err := p.RunPredictionWorkflowCtx(ctx, core.PredictionConfig{
			State: req.State, Replicates: req.Replicates, Days: req.Days,
			SHStart: req.SHStart, SHEnd: req.SHEnd, Configs: req.Configs,
		})
		if err != nil {
			b.Fatalf("training run %d: %v", i, err)
		}
		if err := r.ObservePrediction(ctx, req, out); err != nil {
			b.Fatalf("observe %d: %v", i, err)
		}
	}
	if r.FittedFamilies() != 1 {
		b.Fatal("emulator did not fit during warmup")
	}
	held := base
	held.Configs = []core.Params{{TAU: 0.19, SYMP: 0.65, SHCompliance: 0.55, VHICompliance: 0.5}}

	var emuNs float64
	b.Run("EmulatorHit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d, err := r.Route(ctx, held)
			if err != nil {
				b.Fatal(err)
			}
			if d.Tier != TierEmulator {
				b.Fatalf("held-out query served by %s (%s)", d.Tier, d.Reason)
			}
		}
		emuNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})

	b.Run("Metapop", func(b *testing.B) {
		req := held
		req.Mode = TierMetapop
		for i := 0; i < b.N; i++ {
			d, err := r.Route(ctx, req)
			if err != nil {
				b.Fatal(err)
			}
			if d.Tier != TierMetapop {
				b.Fatalf("forced metapop served by %s", d.Tier)
			}
		}
	})

	b.Run("EscalateABM", func(b *testing.B) {
		req := held
		req.MaxUncertainty = 1e-9 // impossible budget: every query escalates
		for i := 0; i < b.N; i++ {
			d, err := r.Route(ctx, req)
			if err != nil {
				b.Fatal(err)
			}
			if d.Tier != TierABM {
				b.Fatalf("impossible budget served by %s", d.Tier)
			}
			// The escalated decision is executed by the caller on the exact
			// path; that execution dominates and is what the speedup is
			// measured against.
			if _, err := p.RunPredictionWorkflowCtx(ctx, core.PredictionConfig{
				State: req.State, Replicates: req.Replicates, Days: req.Days,
				SHStart: req.SHStart, SHEnd: req.SHEnd, Configs: req.Configs,
			}); err != nil {
				b.Fatal(err)
			}
		}
		abmNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		if emuNs > 0 {
			b.ReportMetric(abmNs/emuNs, "speedup_x")
		}
	})
}
