package fidelity

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/gp"
	"repro/internal/linalg"
)

// observation is one ABM-answered design point: the configuration and its
// per-series log1p curves, plus the metapop base curves at the same point
// (computed once, so refits never re-run the SEIR).
type observation struct {
	theta  [paramDim]float64
	curves map[string][]float64
	base   map[string][]float64
	// noise is the sampling noise of the curves themselves (the standard
	// error, in log1p space, of the replicate mean — worst day, worst
	// series). The emulator's declared band adds it in quadrature: a
	// surrogate cannot be more certain than the ABM statistic it imitates.
	noise float64
}

// maxObservations bounds a family's training set; beyond it the oldest
// design points roll off (the trained region follows the surviving points
// at the next refit).
const maxObservations = 128

// family is one config-family's training state: the accumulated ABM
// observations and the fitted surrogate snapshot serving reads.
type family struct {
	key   string
	proto Request // family-defining shape; Configs empty

	mu      sync.Mutex
	obs     []observation
	seen    map[string]int // theta fingerprint -> obs index
	pending int            // observations not yet reflected in snap
	fitting bool
	snap    *snapshot
}

// snapshot is an immutable fitted view: readers use it without holding the
// family lock.
type snapshot struct {
	n    int
	emu  *emulator
	corr *correction
}

// emulator is the fitted GP tier for one family.
type emulator struct {
	n       int
	scaler  *gp.Scaler
	lo, hi  [paramDim]float64 // trained region (natural units)
	gps     map[string]*gp.MultiGP
	inflate map[string]float64 // LOO-CV variance calibration, ≥ 1
	noise   float64            // training-curve sampling noise floor (log1p SD)
}

// correction is the metapop tier's learned per-day delta (ABM − base, log1p
// space) and its empirical spread.
type correction struct {
	n     int
	delta map[string][]float64
	sd    map[string][]float64
	// err is the tier's 95% relative error estimate: max over series and
	// days of 2·sd, inflated for small n.
	err float64
}

func newFamily(key string, proto Request) *family {
	proto.Configs = nil
	proto.Mode = ""
	proto.MaxUncertainty = 0
	return &family{key: key, proto: proto, seen: map[string]int{}}
}

// thetaKey fingerprints a design point for dedup.
func thetaKey(th [paramDim]float64) string {
	return fmt.Sprintf("%.9g,%.9g,%.9g,%.9g", th[0], th[1], th[2], th[3])
}

// add records an observation (replacing any prior observation at the same
// design point) and reports the new training-set size and pending count.
func (f *family) add(o observation) (n, pending int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	k := thetaKey(o.theta)
	if i, ok := f.seen[k]; ok {
		f.obs[i] = o
	} else {
		if len(f.obs) >= maxObservations {
			f.obs = f.obs[1:]
			f.seen = make(map[string]int, len(f.obs))
			for i := range f.obs {
				f.seen[thetaKey(f.obs[i].theta)] = i
			}
		}
		f.obs = append(f.obs, o)
		f.seen[k] = len(f.obs) - 1
	}
	f.pending++
	return len(f.obs), f.pending
}

// snapshotView returns the current fitted snapshot (nil before first fit).
func (f *family) snapshotView() *snapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.snap
}

// size reports the training-set size.
func (f *family) size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.obs)
}

// cost approximates resident bytes for the castore bound: curves dominate
// (two map[string][]float64 per observation), plus the fitted Cholesky
// factors (n² per basis GP per series).
func (f *family) cost() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	names := len(f.proto.seriesNames())
	perObs := int64(2*names*f.proto.Days+paramDim) * 8
	c := int64(len(f.obs)) * perObs
	if f.snap != nil && f.snap.emu != nil {
		n := int64(f.snap.emu.n)
		c += n * n * 8 * 5 * int64(names)
	}
	return c
}

// minCorrection is the smallest training set the metapop delta correction
// fits on; below it the tier serves uncorrected with a conservative error.
const minCorrection = 3

// refit fits a fresh snapshot from the current observations (outside the
// family lock — fitting is the expensive step) and installs it. minFit
// gates the emulator; the correction fits from minCorrection points.
func (f *family) refit(minFit int) error {
	f.mu.Lock()
	obs := make([]observation, len(f.obs))
	copy(obs, f.obs)
	names := f.proto.seriesNames()
	days := f.proto.Days
	pendingAtCopy := f.pending
	f.mu.Unlock()

	snap := &snapshot{n: len(obs)}
	var err error
	if len(obs) >= minCorrection {
		snap.corr = fitCorrection(names, days, obs)
	}
	if len(obs) >= minFit {
		snap.emu, err = fitEmulator(names, days, obs)
		if err != nil {
			snap.emu = nil // degenerate design: keep serving the correction
		}
	}

	f.mu.Lock()
	f.snap = snap
	f.pending -= pendingAtCopy
	if f.pending < 0 {
		f.pending = 0
	}
	f.mu.Unlock()
	return err
}

// fitCorrection estimates the per-day delta between ABM curves and metapop
// base curves.
func fitCorrection(names []string, days int, obs []observation) *correction {
	c := &correction{n: len(obs), delta: map[string][]float64{}, sd: map[string][]float64{}}
	worst := 0.0
	for _, name := range names {
		delta := make([]float64, days)
		sd := make([]float64, days)
		for d := 0; d < days; d++ {
			var sum float64
			for i := range obs {
				sum += obs[i].curves[name][d] - obs[i].base[name][d]
			}
			mean := sum / float64(len(obs))
			var ss float64
			for i := range obs {
				r := (obs[i].curves[name][d] - obs[i].base[name][d]) - mean
				ss += r * r
			}
			delta[d] = mean
			sd[d] = math.Sqrt(ss / float64(len(obs)-1))
			if u := 2 * sd[d]; u > worst {
				worst = u
			}
		}
		c.delta[name] = delta
		c.sd[name] = sd
	}
	// Small-sample inflation: the sd of n points understates the error a
	// new point will see by ~sqrt(1+1/n).
	c.err = worst * math.Sqrt(1+1/float64(c.n))
	return c
}

// fitEmulator fits one MultiGP per series over the observations' design
// points, with a LOO-CV variance calibration per series.
func fitEmulator(names []string, days int, obs []observation) (*emulator, error) {
	n := len(obs)
	e := &emulator{n: n, gps: map[string]*gp.MultiGP{}, inflate: map[string]float64{}}
	for k := 0; k < paramDim; k++ {
		e.lo[k], e.hi[k] = math.Inf(1), math.Inf(-1)
	}
	for i := range obs {
		for k := 0; k < paramDim; k++ {
			e.lo[k] = math.Min(e.lo[k], obs[i].theta[k])
			e.hi[k] = math.Max(e.hi[k], obs[i].theta[k])
		}
		e.noise = math.Max(e.noise, obs[i].noise)
	}
	scaler, err := gp.NewScaler(e.lo[:], e.hi[:])
	if err != nil {
		return nil, err
	}
	e.scaler = scaler
	x := make([][]float64, n)
	for i := range obs {
		x[i] = scaler.ToUnit(obs[i].theta[:])
	}
	for _, name := range names {
		y := linalg.NewMatrix(n, days)
		for i := range obs {
			for d, v := range obs[i].curves[name] {
				y.Set(i, d, v)
			}
		}
		numBasis := 5
		if numBasis > n-1 {
			numBasis = n - 1
		}
		mg, err := gp.FitMulti(x, y, numBasis)
		if err != nil {
			return nil, fmt.Errorf("fidelity: series %q: %w", name, err)
		}
		e.gps[name] = mg
		e.inflate[name] = looInflation(mg, days)
	}
	return e, nil
}

// looSafety pads the leave-one-out calibration: held-out queries sit
// slightly farther from the design than LOO points do on average.
const looSafety = 1.2

// looInflation calibrates the emulator's declared uncertainty against its
// own leave-one-out residuals, in curve space and at the exact statistic
// the router declares (worst day of the ±2 SD band): for each design point,
// the LOO curve deviation is the basis image of the per-weight LOO
// residuals (internal/gp/loocv.go) and the LOO band is the basis image of
// the per-weight LOO variances plus the off-basis residual variance. The
// inflation is the worst ratio of deviation bound to declared bound across
// design points, clamped ≥ 1 so a lucky fit never shrinks the band, times a
// safety factor.
func looInflation(mg *gp.MultiGP, days int) float64 {
	if len(mg.GPs) == 0 {
		return 1
	}
	n := len(mg.GPs[0].X)
	res := make([][]float64, len(mg.GPs))
	vars := make([][]float64, len(mg.GPs))
	for k, g := range mg.GPs {
		rk, vk, err := g.LOOCV()
		if err != nil {
			return looSafety * 2 // cannot calibrate: be conservative
		}
		res[k], vars[k] = rk, vk
	}
	worst := 1.0
	for i := 0; i < n; i++ {
		var dev, bound float64
		for d := 0; d < days; d++ {
			var md, vd float64
			row := mg.Basis.Data[d*mg.Basis.Cols : d*mg.Basis.Cols+len(mg.GPs)]
			for k, b := range row {
				md += b * res[k][i]
				vd += b * b * vars[k][i]
			}
			vd += mg.ResidVar[d]
			if a := math.Abs(md); a > dev {
				dev = a
			}
			if b := 2 * math.Sqrt(math.Max(vd, 1e-18)); b > bound {
				bound = b
			}
		}
		if bound > 0 && dev/bound > worst {
			worst = dev / bound
		}
	}
	return looSafety * worst
}

// regionMargin is the slack, as a fraction of each dimension's trained
// span, allowed before a configuration counts as outside the region.
const regionMargin = 0.05

// inRegion reports whether a configuration lies inside the trained region.
func (e *emulator) inRegion(th [paramDim]float64) bool {
	for k := 0; k < paramDim; k++ {
		span := e.hi[k] - e.lo[k]
		tol := regionMargin * span
		if span == 0 {
			tol = 1e-9
		}
		if th[k] < e.lo[k]-tol || th[k] > e.hi[k]+tol {
			return false
		}
	}
	return true
}

// predictConfig returns one series' mean and calibrated SD curves (log1p
// space) at a configuration.
func (e *emulator) predictConfig(name string, th [paramDim]float64, buf *gp.MultiBuf, mean, sd []float64) {
	mg := e.gps[name]
	mg.PredictInto(e.scaler.ToUnit(th[:]), mean, sd, buf)
	inf := e.inflate[name]
	for d := range sd {
		gpSD := math.Sqrt(math.Max(0, sd[d])) * inf
		sd[d] = math.Hypot(gpSD, e.noise)
	}
}

// emulate answers a request from the fitted emulator: per-series bands
// across the requested configurations and the worst-case uncertainty.
func (e *emulator) emulate(req Request) (*Answer, float64) {
	names := req.seriesNames()
	days := req.Days
	nc := len(req.Configs)
	buf := e.gps[names[0]].NewBuf()
	mean := make([]float64, days)
	sd := make([]float64, days)
	ans := &Answer{Series: map[string]core.Forecast{}}
	uncertainty := 0.0
	vals := make([]float64, nc)
	for _, name := range names {
		means := make([][]float64, nc)
		f := core.Forecast{
			Median: make([]float64, days),
			Lo:     make([]float64, days),
			Hi:     make([]float64, days),
		}
		for d := range f.Lo {
			f.Lo[d] = math.Inf(1)
			f.Hi[d] = math.Inf(-1)
		}
		for c, pr := range req.Configs {
			e.predictConfig(name, theta(pr), buf, mean, sd)
			means[c] = append([]float64(nil), mean...)
			for d := 0; d < days; d++ {
				if u := 2 * sd[d]; u > uncertainty {
					uncertainty = u
				}
				f.Lo[d] = math.Min(f.Lo[d], expm1Clamped(mean[d]-2*sd[d]))
				f.Hi[d] = math.Max(f.Hi[d], expm1Clamped(mean[d]+2*sd[d]))
			}
		}
		for d := 0; d < days; d++ {
			for c := range means {
				vals[c] = means[c][d]
			}
			f.Median[d] = expm1Clamped(median(vals))
		}
		ans.Series[name] = f
	}
	return ans, uncertainty
}

// uncertaintyAt is the emulator's worst-case uncertainty over the request's
// configurations without assembling the answer (the routing probe).
func (e *emulator) uncertaintyAt(req Request) float64 {
	names := req.seriesNames()
	buf := e.gps[names[0]].NewBuf()
	mean := make([]float64, req.Days)
	sd := make([]float64, req.Days)
	u := 0.0
	for _, name := range names {
		for _, pr := range req.Configs {
			e.predictConfig(name, theta(pr), buf, mean, sd)
			for d := range sd {
				if v := 2 * sd[d]; v > u {
					u = v
				}
			}
		}
	}
	return u
}

// median returns the sample median (sorting a scratch copy).
func median(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// uncorrectedError is the metapop tier's declared uncertainty before any
// delta correction exists — deliberately conservative: an uncalibrated
// mechanistic surrogate should only be served when forced or under a very
// loose budget.
const uncorrectedError = 1.0

// metapopAnswer serves a request from the (possibly corrected) metapop
// tier. Curves come from the mapper; the correction snapshot may be nil.
func metapopAnswer(m *metapopMapper, req Request, corr *correction) (*Answer, float64, error) {
	names := req.seriesNames()
	ans := &Answer{Series: map[string]core.Forecast{}, Counties: m.counties(req.State)}
	days := req.Days
	uncertainty := uncorrectedError
	if corr != nil {
		uncertainty = corr.err
	}
	type acc struct{ med, lo, hi []float64 }
	accs := map[string]*acc{}
	for _, name := range names {
		a := &acc{med: make([]float64, days), lo: make([]float64, days), hi: make([]float64, days)}
		for d := range a.lo {
			a.lo[d] = math.Inf(1)
			a.hi[d] = math.Inf(-1)
		}
		accs[name] = a
	}
	perConfig := make(map[string][][]float64, len(names))
	for _, pr := range req.Configs {
		base, err := m.baseCurves(req, pr)
		if err != nil {
			return nil, 0, err
		}
		for _, name := range names {
			curve := base[name]
			sd := make([]float64, days)
			if corr != nil {
				corrected := make([]float64, days)
				for d := 0; d < days; d++ {
					corrected[d] = curve[d] + corr.delta[name][d]
					sd[d] = corr.sd[name][d]
				}
				curve = corrected
			} else {
				for d := range sd {
					sd[d] = uncorrectedError / 2
				}
			}
			perConfig[name] = append(perConfig[name], curve)
			a := accs[name]
			for d := 0; d < days; d++ {
				a.lo[d] = math.Min(a.lo[d], expm1Clamped(curve[d]-2*sd[d]))
				a.hi[d] = math.Max(a.hi[d], expm1Clamped(curve[d]+2*sd[d]))
			}
		}
	}
	vals := make([]float64, len(req.Configs))
	for _, name := range names {
		a := accs[name]
		for d := 0; d < days; d++ {
			for c := range perConfig[name] {
				vals[c] = perConfig[name][c][d]
			}
			a.med[d] = expm1Clamped(median(vals))
		}
		ans.Series[name] = core.Forecast{Median: a.med, Lo: a.lo, Hi: a.hi}
	}
	return ans, uncertainty, nil
}

// curvesFromSims extracts per-config replicate-mean log1p curves from ABM
// simulation outputs: for each config cell, the mean over its replicates of
// the log1p series.
func curvesFromSims(sims []*core.SimOutput, days int, extract func(*core.SimOutput) []float64) map[int][]float64 {
	sums := map[int][]float64{}
	counts := map[int]int{}
	for _, s := range sims {
		cell := s.Job.Cell
		acc, ok := sums[cell]
		if !ok {
			acc = make([]float64, days)
			sums[cell] = acc
		}
		series := extract(s)
		for d := 0; d < days && d < len(series); d++ {
			acc[d] += math.Log1p(math.Max(0, series[d]))
		}
		counts[cell]++
	}
	for cell, acc := range sums {
		n := float64(counts[cell])
		for d := range acc {
			acc[d] /= n
		}
	}
	return sums
}

// noiseFromSims estimates, per config cell, the standard error of the
// replicate-mean log1p curve (worst day): the sampling noise of the
// statistic curvesFromSims extracts. Cells with a single replicate report
// zero — there is nothing to estimate from.
func noiseFromSims(sims []*core.SimOutput, days int, means map[int][]float64, extract func(*core.SimOutput) []float64) map[int]float64 {
	ss := map[int][]float64{}
	counts := map[int]int{}
	for _, s := range sims {
		cell := s.Job.Cell
		acc, ok := ss[cell]
		if !ok {
			acc = make([]float64, days)
			ss[cell] = acc
		}
		series := extract(s)
		mean := means[cell]
		for d := 0; d < days && d < len(series); d++ {
			r := math.Log1p(math.Max(0, series[d])) - mean[d]
			acc[d] += r * r
		}
		counts[cell]++
	}
	out := map[int]float64{}
	for cell, acc := range ss {
		n := counts[cell]
		if n < 2 {
			out[cell] = 0
			continue
		}
		worst := 0.0
		for _, v := range acc {
			// SE of the mean: sample variance (n−1 denominator) over n.
			if se := math.Sqrt(v / float64(n-1) / float64(n)); se > worst {
				worst = se
			}
		}
		out[cell] = worst
	}
	return out
}
