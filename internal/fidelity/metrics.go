package fidelity

import (
	"sync/atomic"

	"repro/internal/obs"
)

// counter is a registry-independent atomic counter: the router counts
// unconditionally and RegisterMetrics exposes the values lazily, so a
// router without a registry costs one atomic add per event.
type counter struct{ v atomic.Int64 }

func (c *counter) inc()         { c.v.Add(1) }
func (c *counter) value() int64 { return c.v.Load() }

// metrics holds the router's internal counters.
type metrics struct {
	servedEmulator counter
	servedMetapop  counter
	servedABM      counter
	escalated      counter
	observations   counter
	refits         counter
	refitErrors    counter
	families       counter
}

func (m *metrics) served(t Tier) {
	switch t {
	case TierEmulator:
		m.servedEmulator.inc()
	case TierMetapop:
		m.servedMetapop.inc()
	case TierABM:
		m.servedABM.inc()
	}
}

// RegisterMetrics exposes the router's counters and the training-set
// cache's stats on a registry:
//
//	epi_fidelity_served_total{tier=...}  decisions per serving tier
//	epi_fidelity_escalations_total       auto-mode budget escalations to ABM
//	epi_fidelity_observations_total      ABM answers folded into training sets
//	epi_fidelity_refits_total            completed emulator/correction refits
//	epi_fidelity_refit_errors_total      refits that failed to fit
//	epi_fidelity_families                resident config families
//	epi_fidelity_fitted_families         families with a fitted emulator
//	epi_fidelity_train_*                 castore stats for the training cache
func (r *Router) RegisterMetrics(reg *obs.Registry) {
	reg.Help("epi_fidelity_served_total", "Fidelity routing decisions by serving tier.")
	reg.CounterFunc(`epi_fidelity_served_total{tier="emulator"}`,
		func() float64 { return float64(r.m.servedEmulator.value()) })
	reg.CounterFunc(`epi_fidelity_served_total{tier="metapop"}`,
		func() float64 { return float64(r.m.servedMetapop.value()) })
	reg.CounterFunc(`epi_fidelity_served_total{tier="abm"}`,
		func() float64 { return float64(r.m.servedABM.value()) })
	reg.Help("epi_fidelity_escalations_total", "Auto-mode escalations to the ABM tier.")
	reg.CounterFunc("epi_fidelity_escalations_total",
		func() float64 { return float64(r.m.escalated.value()) })
	reg.Help("epi_fidelity_observations_total", "ABM answers recorded as emulator training observations.")
	reg.CounterFunc("epi_fidelity_observations_total",
		func() float64 { return float64(r.m.observations.value()) })
	reg.CounterFunc("epi_fidelity_refits_total",
		func() float64 { return float64(r.m.refits.value()) })
	reg.CounterFunc("epi_fidelity_refit_errors_total",
		func() float64 { return float64(r.m.refitErrors.value()) })
	reg.GaugeFunc("epi_fidelity_families",
		func() float64 { return float64(r.families.Len()) })
	reg.GaugeFunc("epi_fidelity_fitted_families",
		func() float64 { return float64(r.FittedFamilies()) })
	r.families.RegisterMetrics(reg, "epi_fidelity_train")
}
