package fidelity

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gp"
	"repro/internal/obs"
)

func TestParseTier(t *testing.T) {
	cases := []struct {
		in   string
		want Tier
		ok   bool
	}{
		{"auto", TierAuto, true},
		{"AUTO", TierAuto, true},
		{"  Emulator ", TierEmulator, true},
		{"metapop", TierMetapop, true},
		{"ABM", TierABM, true},
		{"", "", false},
		{"gp", "", false},
		{"abm2", "", false},
	}
	for _, c := range cases {
		got, err := ParseTier(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseTier(%q) = %q, %v; want %q", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseTier(%q) accepted; want error", c.in)
		}
	}
}

func validRequest() Request {
	return Request{
		Workflow: WorkflowPrediction, State: "VA",
		Days: 40, SHStart: 15, SHEnd: 40, Replicates: 2,
		Configs: []core.Params{{TAU: 0.2, SYMP: 0.65, SHCompliance: 0.5, VHICompliance: 0.5}},
		Mode:    TierAuto,
	}
}

func TestRequestValidate(t *testing.T) {
	if err := validRequest().Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	mutate := map[string]func(*Request){
		"bad workflow": func(r *Request) { r.Workflow = "night" },
		"empty state":  func(r *Request) { r.State = "" },
		"zero days":    func(r *Request) { r.Days = 0 },
		"no configs":   func(r *Request) { r.Configs = nil },
		"nan budget":   func(r *Request) { r.MaxUncertainty = math.NaN() },
		"inf budget":   func(r *Request) { r.MaxUncertainty = math.Inf(1) },
		"neg budget":   func(r *Request) { r.MaxUncertainty = -0.1 },
		"bad mode":     func(r *Request) { r.Mode = "turbo" },
		"whatif no stack": func(r *Request) {
			r.Workflow = WorkflowWhatIf
			r.WhatIfs = nil
		},
	}
	for name, f := range mutate {
		r := validRequest()
		f(&r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: accepted; want error", name)
		}
	}
}

func TestFamilyKey(t *testing.T) {
	a := validRequest()
	b := validRequest()
	// Configs do not key the family — the emulator generalizes over them.
	b.Configs = []core.Params{{TAU: 0.9, SYMP: 0.1}}
	if a.FamilyKey("fp") != b.FamilyKey("fp") {
		t.Errorf("configs must not change the family key")
	}
	// Mode and budget route, they do not key.
	b = validRequest()
	b.Mode, b.MaxUncertainty = TierABM, 0.5
	if a.FamilyKey("fp") != b.FamilyKey("fp") {
		t.Errorf("mode/budget must not change the family key")
	}
	// Everything shape-defining does key.
	for name, f := range map[string]func(*Request){
		"days":     func(r *Request) { r.Days = 41 },
		"state":    func(r *Request) { r.State = "RI" },
		"shstart":  func(r *Request) { r.SHStart = 16 },
		"shend":    func(r *Request) { r.SHEnd = 41 },
		"reps":     func(r *Request) { r.Replicates = 3 },
		"workflow": func(r *Request) { r.Workflow = WorkflowWhatIf },
	} {
		b = validRequest()
		f(&b)
		if a.FamilyKey("fp") == b.FamilyKey("fp") {
			t.Errorf("%s must change the family key", name)
		}
	}
	if a.FamilyKey("fp") == a.FamilyKey("fp2") {
		t.Errorf("pipeline fingerprint must salt the family key")
	}
}

func TestColdAutoEscalates(t *testing.T) {
	r := NewRouter(Config{Fingerprint: "fp", Scale: 40000, Sync: true})
	d, err := r.Route(context.Background(), validRequest())
	if err != nil {
		t.Fatal(err)
	}
	if d.Tier != TierABM {
		t.Fatalf("cold auto route picked %s, want abm", d.Tier)
	}
	if d.Answer != nil {
		t.Fatalf("abm decision must not carry an answer")
	}
	if !strings.Contains(d.Reason, "no training data") {
		t.Errorf("reason %q should name the missing training data", d.Reason)
	}
	if d.Budget != DefaultBudget {
		t.Errorf("budget %v, want default %v", d.Budget, DefaultBudget)
	}
}

func TestForcedABMBypasses(t *testing.T) {
	r := NewRouter(Config{Fingerprint: "fp", Scale: 40000, Sync: true})
	req := validRequest()
	req.Mode = TierABM
	d, err := r.Route(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if d.Tier != TierABM || d.Reason != "forced" || d.Answer != nil || d.Uncertainty != 0 {
		t.Fatalf("forced abm decision = %+v", d)
	}
}

func TestForcedEmulatorUnfittedErrors(t *testing.T) {
	r := NewRouter(Config{Fingerprint: "fp", Scale: 40000, Sync: true})
	req := validRequest()
	req.Mode = TierEmulator
	if _, err := r.Route(context.Background(), req); err == nil {
		t.Fatal("forced emulator with no fit must error")
	}
}

func TestForcedMetapopServesUncorrected(t *testing.T) {
	r := NewRouter(Config{Fingerprint: "fp", Scale: 40000, Sync: true})
	req := validRequest()
	req.Mode = TierMetapop
	d, err := r.Route(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if d.Tier != TierMetapop || d.Answer == nil {
		t.Fatalf("forced metapop decision = %+v", d)
	}
	if d.Uncertainty != uncorrectedError {
		t.Errorf("uncorrected metapop uncertainty %v, want %v", d.Uncertainty, uncorrectedError)
	}
	checkAnswerShape(t, d.Answer, req)
}

func checkAnswerShape(t *testing.T, ans *Answer, req Request) {
	t.Helper()
	names := req.seriesNames()
	if len(ans.Series) != len(names) {
		t.Fatalf("answer has %d series, want %d", len(ans.Series), len(names))
	}
	for _, name := range names {
		f, ok := ans.Series[name]
		if !ok {
			t.Fatalf("missing series %q", name)
		}
		if len(f.Median) != req.Days || len(f.Lo) != req.Days || len(f.Hi) != req.Days {
			t.Fatalf("series %q length %d/%d/%d, want %d", name, len(f.Median), len(f.Lo), len(f.Hi), req.Days)
		}
		for d := 0; d < req.Days; d++ {
			if math.IsNaN(f.Median[d]) || f.Median[d] < 0 {
				t.Fatalf("series %q day %d median %v", name, d, f.Median[d])
			}
			if f.Lo[d] > f.Median[d]+1e-9 || f.Hi[d] < f.Median[d]-1e-9 {
				t.Fatalf("series %q day %d band [%v, %v] excludes median %v",
					name, d, f.Lo[d], f.Hi[d], f.Median[d])
			}
		}
	}
}

// trainRouter runs the ABM prediction workflow at len(taus) design points
// and feeds each outcome to the router, returning the shared pipeline.
func trainRouter(t *testing.T, r *Router, p *core.Pipeline, base Request, taus, shcs []float64) {
	t.Helper()
	ctx := context.Background()
	for i := range taus {
		req := base
		req.Configs = []core.Params{{TAU: taus[i], SYMP: 0.65, SHCompliance: shcs[i], VHICompliance: 0.5}}
		out, err := p.RunPredictionWorkflowCtx(ctx, core.PredictionConfig{
			State: req.State, Replicates: req.Replicates, Days: req.Days,
			SHStart: req.SHStart, SHEnd: req.SHEnd, Configs: req.Configs,
		})
		if err != nil {
			t.Fatalf("training run %d: %v", i, err)
		}
		if err := r.ObservePrediction(ctx, req, out); err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
	}
}

func TestLadderTrainsAndServes(t *testing.T) {
	if testing.Short() {
		t.Skip("trains on real ABM runs")
	}
	p := core.NewPipeline(2020, core.WithScale(40000), core.WithParallelism(2))
	r := NewRouter(Config{Fingerprint: p.Fingerprint(), Scale: 40000, MinFit: 5, MaxStale: 1, Sync: true})
	base := validRequest()

	taus := []float64{0.16, 0.18, 0.20, 0.22, 0.24}
	shcs := []float64{0.30, 0.70, 0.50, 0.35, 0.65}
	trainRouter(t, r, p, base, taus, shcs)

	// Held-out point inside the trained region, generous budget: the
	// emulator must serve.
	req := base
	req.Configs = []core.Params{{TAU: 0.19, SYMP: 0.65, SHCompliance: 0.55, VHICompliance: 0.5}}
	req.MaxUncertainty = 2.0
	d, err := r.Route(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if d.Tier != TierEmulator {
		t.Fatalf("in-region query picked %s (%s), want emulator", d.Tier, d.Reason)
	}
	if d.Uncertainty <= 0 || d.Uncertainty > req.MaxUncertainty {
		t.Fatalf("served uncertainty %v outside (0, %v]", d.Uncertainty, req.MaxUncertainty)
	}
	checkAnswerShape(t, d.Answer, req)

	// Outside the trained region the emulator must refuse.
	out := req
	out.Configs = []core.Params{{TAU: 0.5, SYMP: 0.65, SHCompliance: 0.5, VHICompliance: 0.5}}
	d, err = r.Route(context.Background(), out)
	if err != nil {
		t.Fatal(err)
	}
	if d.Tier == TierEmulator {
		t.Fatalf("out-of-region query must not be served by the emulator (reason %q)", d.Reason)
	}
	if !strings.Contains(d.Reason, "outside trained region") {
		t.Errorf("reason %q should name the region violation", d.Reason)
	}

	// An impossible budget escalates all the way to the ABM.
	tight := req
	tight.MaxUncertainty = 1e-9
	d, err = r.Route(context.Background(), tight)
	if err != nil {
		t.Fatal(err)
	}
	if d.Tier != TierABM {
		t.Fatalf("budget 1e-9 served by %s (uncertainty %v), want abm", d.Tier, d.Uncertainty)
	}

	// The corrected metapop serves under a loose budget once trained; its
	// declared error must come from the learned correction, not the
	// uncorrected constant.
	forced := req
	forced.Mode = TierMetapop
	d, err = r.Route(context.Background(), forced)
	if err != nil {
		t.Fatal(err)
	}
	if d.Uncertainty >= uncorrectedError {
		t.Errorf("corrected metapop uncertainty %v not below uncorrected %v", d.Uncertainty, uncorrectedError)
	}
	checkAnswerShape(t, d.Answer, forced)

	// Status reflects the warm family.
	st := r.Status()
	if !st[string(TierEmulator)].Ready || st[string(TierEmulator)].Families != 1 {
		t.Errorf("emulator tier state %+v, want ready with 1 family", st[string(TierEmulator)])
	}
	if r.FittedFamilies() != 1 {
		t.Errorf("FittedFamilies = %d, want 1", r.FittedFamilies())
	}
}

func TestObserveDedupsDesignPoints(t *testing.T) {
	f := newFamily("k", validRequest())
	o := observation{theta: [paramDim]float64{1, 2, 3, 4}}
	f.add(o)
	f.add(o)
	if n := f.size(); n != 1 {
		t.Fatalf("duplicate design point stored twice: size %d", n)
	}
	o2 := o
	o2.theta[0] = 1.5
	f.add(o2)
	if n := f.size(); n != 2 {
		t.Fatalf("distinct design point deduped: size %d", n)
	}
}

func TestObservationCap(t *testing.T) {
	f := newFamily("k", validRequest())
	for i := 0; i < maxObservations+10; i++ {
		f.add(observation{theta: [paramDim]float64{float64(i), 0, 0, 0}})
	}
	if n := f.size(); n != maxObservations {
		t.Fatalf("size %d, want cap %d", n, maxObservations)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.obs[0].theta[0] != 10 {
		t.Errorf("oldest surviving theta %v, want 10 (oldest dropped first)", f.obs[0].theta[0])
	}
	if len(f.seen) != maxObservations {
		t.Errorf("seen index has %d entries, want %d", len(f.seen), maxObservations)
	}
}

func TestRegionMargin(t *testing.T) {
	e := &emulator{lo: [paramDim]float64{0.1, 0.6, 0.3, 0.5}, hi: [paramDim]float64{0.3, 0.7, 0.7, 0.5}}
	in := [paramDim]float64{0.2, 0.65, 0.5, 0.5}
	if !e.inRegion(in) {
		t.Errorf("interior point rejected")
	}
	// Within the 5% margin.
	if !e.inRegion([paramDim]float64{0.305, 0.65, 0.5, 0.5}) {
		t.Errorf("margin point rejected")
	}
	if e.inRegion([paramDim]float64{0.35, 0.65, 0.5, 0.5}) {
		t.Errorf("far point accepted")
	}
	// Degenerate dimension: only exact (within epsilon) values pass.
	if e.inRegion([paramDim]float64{0.2, 0.65, 0.5, 0.6}) {
		t.Errorf("degenerate-dim excursion accepted")
	}
}

func TestRouterMetricsRegistered(t *testing.T) {
	r := NewRouter(Config{Fingerprint: "fp", Scale: 40000, Sync: true})
	reg := obs.NewRegistry()
	r.RegisterMetrics(reg)
	if _, err := r.Route(context.Background(), validRequest()); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`epi_fidelity_served_total{tier="abm"} 1`,
		"epi_fidelity_escalations_total 1",
		"epi_fidelity_families 1",
		"epi_fidelity_fitted_families 0",
		"epi_fidelity_train_hit_ratio",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestRouterConcurrency exercises concurrent Route/Observe/Status under the
// race detector. Synthetic observations keep it fast.
func TestRouterConcurrency(t *testing.T) {
	r := NewRouter(Config{Fingerprint: "fp", Scale: 40000, MinFit: 4, MaxStale: 1})
	base := validRequest()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				req := base
				req.Configs = []core.Params{{TAU: 0.15 + 0.01*float64(g*8+i), SYMP: 0.65, SHCompliance: 0.5, VHICompliance: 0.5}}
				if _, err := r.Route(context.Background(), req); err != nil {
					t.Error(err)
					return
				}
				if err := r.observe(context.Background(), req, func(int) (map[string][]float64, float64) {
					return syntheticCurves(req), 0.01
				}); err != nil {
					t.Error(err)
					return
				}
				r.Status()
			}
		}(g)
	}
	wg.Wait()
	r.Close()
	if got := int(r.m.observations.value()); got != 32 {
		t.Errorf("observations %d, want 32", got)
	}
}

// syntheticCurves fabricates a plausible log1p curve set for concurrency
// tests without running any simulator.
func syntheticCurves(req Request) map[string][]float64 {
	out := map[string][]float64{}
	for _, name := range req.seriesNames() {
		c := make([]float64, req.Days)
		for d := range c {
			c[d] = math.Log1p(float64(d) * req.Configs[0].TAU * 100)
		}
		out[name] = c
	}
	return out
}

func TestCurvesFromSims(t *testing.T) {
	// Verified indirectly in the ladder test; here check the grouping math
	// with a stub extractor over fake outputs is stable under cell order.
	days := 3
	mk := func(cell int, vals ...float64) *core.SimOutput {
		return &core.SimOutput{Job: core.SimJob{Cell: cell}, RawBytes: int64(vals[0])}
	}
	sims := []*core.SimOutput{mk(1, 8), mk(0, 2), mk(1, 4), mk(0, 6)}
	got := curvesFromSims(sims, days, func(s *core.SimOutput) []float64 {
		v := float64(s.RawBytes)
		return []float64{v, v, v}
	})
	if len(got) != 2 {
		t.Fatalf("got %d cells, want 2", len(got))
	}
	wantCell0 := (math.Log1p(2) + math.Log1p(6)) / 2
	if math.Abs(got[0][0]-wantCell0) > 1e-12 {
		t.Errorf("cell 0 mean %v, want %v", got[0][0], wantCell0)
	}
	for cell, c := range got {
		if len(c) != days {
			t.Errorf("cell %d curve length %d, want %d", cell, len(c), days)
		}
	}
}

func TestLOOInflationAtLeastOne(t *testing.T) {
	// An empty MultiGP must still return the neutral factor 1.
	if got := looInflation(&gp.MultiGP{}, 10); got != 1 {
		t.Errorf("inflation %v, want 1", got)
	}
}
