package surveillance

import (
	"testing"

	"repro/internal/synthpop"
)

func TestOnsetDay(t *testing.T) {
	va, _ := synthpop.StateByCode("VA")
	truth, err := GenerateState(va, DefaultConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	onset := truth.OnsetDay(20)
	if onset <= 0 || onset > 100 {
		t.Fatalf("onset day %d implausible", onset)
	}
	cum := truth.StateCumulative()
	if cum[onset] <= 20 {
		t.Fatalf("cumulative at onset %v should exceed threshold", cum[onset])
	}
	if onset > 0 && cum[onset-1] > 20 {
		t.Fatal("onset not the first crossing")
	}
	// A threshold nothing reaches returns 0.
	if truth.OnsetDay(1e12) != 0 {
		t.Fatal("unreachable threshold should give 0")
	}
}

func TestWindow(t *testing.T) {
	va, _ := synthpop.StateByCode("VA")
	truth, _ := GenerateState(va, DefaultConfig(8))
	w := truth.Window(50, 120)
	if w.Days != 70 {
		t.Fatalf("window days %d want 70", w.Days)
	}
	for c := range w.Counties {
		for d := 0; d < 70; d++ {
			if w.Counties[c].Daily[d] != truth.Counties[c].Daily[50+d] {
				t.Fatalf("window values shifted wrong at county %d day %d", c, d)
			}
		}
	}
	// Clamping.
	if truth.Window(-5, 10).Days != 10 {
		t.Fatal("negative from not clamped")
	}
	if truth.Window(0, 10_000).Days != truth.Days {
		t.Fatal("oversized to not clamped")
	}
	if truth.Window(100, 50).Days != 0 {
		t.Fatal("inverted window should be empty")
	}
	// Window does not alias the original.
	w.Counties[0].Daily[0] = 999999
	if truth.Counties[0].Daily[50] == 999999 {
		t.Fatal("window aliases original data")
	}
}
