package surveillance

import (
	"testing"

	"repro/internal/synthpop"
)

func TestGenerateStateShape(t *testing.T) {
	va, _ := synthpop.StateByCode("VA")
	truth, err := GenerateState(va, DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if truth.Days != 210 {
		t.Fatalf("days %d want 210 (over 200 days of entries)", truth.Days)
	}
	if len(truth.Counties) != va.Counties {
		t.Fatalf("%d county series want %d", len(truth.Counties), va.Counties)
	}
	for _, c := range truth.Counties {
		if len(c.Daily) != truth.Days {
			t.Fatalf("county %d series length %d", c.FIPS, len(c.Daily))
		}
		for d, v := range c.Daily {
			if v < 0 {
				t.Fatalf("negative count %v on day %d", v, d)
			}
			if v != float64(int(v)) {
				t.Fatalf("non-integral count %v", v)
			}
		}
	}
}

func TestGenerateStateDeterministic(t *testing.T) {
	va, _ := synthpop.StateByCode("VA")
	a, _ := GenerateState(va, DefaultConfig(9))
	b, _ := GenerateState(va, DefaultConfig(9))
	for i := range a.Counties {
		for d := range a.Counties[i].Daily {
			if a.Counties[i].Daily[d] != b.Counties[i].Daily[d] {
				t.Fatalf("nondeterministic at county %d day %d", i, d)
			}
		}
	}
	c, _ := GenerateState(va, DefaultConfig(10))
	diff := false
	for i := range a.Counties {
		for d := range a.Counties[i].Daily {
			if a.Counties[i].Daily[d] != c.Counties[i].Daily[d] {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("different seeds identical")
	}
}

func TestCumulativeMonotoneAndPositive(t *testing.T) {
	ca, _ := synthpop.StateByCode("CA")
	truth, _ := GenerateState(ca, DefaultConfig(2))
	cum := truth.StateCumulative()
	for d := 1; d < len(cum); d++ {
		if cum[d] < cum[d-1] {
			t.Fatal("state cumulative decreased")
		}
	}
	if cum[len(cum)-1] <= 0 {
		t.Fatal("no cases generated for CA")
	}
	// Early days (before community spread) should be near zero.
	if cum[10] > cum[len(cum)-1]*0.01 {
		t.Fatalf("day 10 already has %v of %v cases", cum[10], cum[len(cum)-1])
	}
}

func TestCountyOnsetsStaggered(t *testing.T) {
	tx, _ := synthpop.StateByCode("TX")
	truth, _ := GenerateState(tx, DefaultConfig(3))
	early := truth.CountiesWithCases(60)
	late := truth.CountiesWithCases(200)
	if early >= late {
		t.Fatalf("county onsets not staggered: %d at day 60, %d at day 200", early, late)
	}
	if late < tx.Counties/2 {
		t.Fatalf("only %d/%d counties ever see cases", late, tx.Counties)
	}
}

func TestBiggerStatesMoreCases(t *testing.T) {
	ca, _ := synthpop.StateByCode("CA")
	wy, _ := synthpop.StateByCode("WY")
	tCA, _ := GenerateState(ca, DefaultConfig(4))
	tWY, _ := GenerateState(wy, DefaultConfig(4))
	cCA := tCA.StateCumulative()
	cWY := tWY.StateCumulative()
	if cCA[len(cCA)-1] <= cWY[len(cWY)-1] {
		t.Fatalf("CA (%v) should outnumber WY (%v)", cCA[len(cCA)-1], cWY[len(cWY)-1])
	}
}

func TestGenerateUSCountyCount(t *testing.T) {
	cfg := DefaultConfig(5)
	cfg.Days = 50 // keep the test fast
	us, err := GenerateUS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(us) != 51 {
		t.Fatalf("%d states want 51", len(us))
	}
	counties := 0
	for _, st := range us {
		counties += len(st.Counties)
	}
	if counties < 3100 || counties > 3200 {
		t.Fatalf("%d counties want ≈3140", counties)
	}
}

func TestTruncateTo(t *testing.T) {
	va, _ := synthpop.StateByCode("VA")
	truth, _ := GenerateState(va, DefaultConfig(6))
	cut := truth.TruncateTo(80)
	if cut.Days != 80 || len(cut.Counties[0].Daily) != 80 {
		t.Fatal("truncation wrong")
	}
	// Original unchanged; truncation beyond horizon clamps.
	if truth.Days != 210 {
		t.Fatal("truncation mutated original")
	}
	if truth.TruncateTo(999).Days != 210 {
		t.Fatal("over-truncation not clamped")
	}
	// Values preserved.
	for d := 0; d < 80; d++ {
		if cut.Counties[0].Daily[d] != truth.Counties[0].Daily[d] {
			t.Fatal("truncation changed values")
		}
	}
}

func TestCountySeriesCumulative(t *testing.T) {
	c := CountySeries{Daily: []float64{1, 0, 2, 3}}
	cum := c.Cumulative()
	want := []float64{1, 1, 3, 6}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cumulative %v want %v", cum, want)
		}
	}
}

func TestGenerateStateErrors(t *testing.T) {
	va, _ := synthpop.StateByCode("VA")
	if _, err := GenerateState(va, Config{Days: 0}); err == nil {
		t.Fatal("zero horizon accepted")
	}
}
