// Package surveillance synthesizes the ground-truth datasets the paper's
// calibration workflows consume: county-level daily confirmed case counts
// "starting from January 21, 2020, for over 3000 counties". The production
// pipeline pulls these from the NYT/JHU/UVA dashboards; here a seeded
// generator produces curves with the same statistical character — staggered
// county onsets, logistic growth with a second wave, reporting noise,
// weekend under-reporting and occasional batching — so the calibration code
// paths (Figures 13 and 14) see realistic input.
package surveillance

import (
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/synthpop"
)

// StartDate is day 0 of every ground-truth series.
const StartDate = "2020-01-21"

// CountySeries is one county's daily confirmed new-case counts.
type CountySeries struct {
	FIPS  int32
	Pop   int
	Daily []float64
}

// Cumulative returns the county's cumulative series.
func (c *CountySeries) Cumulative() []float64 {
	out := make([]float64, len(c.Daily))
	acc := 0.0
	for i, v := range c.Daily {
		acc += v
		out[i] = acc
	}
	return out
}

// StateTruth is the ground truth for one state.
type StateTruth struct {
	State    string
	Days     int
	Counties []CountySeries
}

// Config controls ground-truth synthesis.
type Config struct {
	Days int
	Seed uint64
	// AttackRate is the fraction of a county's population confirmed by
	// the end of the horizon in the first wave.
	AttackRate float64
	// SecondWave enables a second, later wave in a random subset of
	// counties (the resurgence the paper's conclusion mentions).
	SecondWave bool
	// NoiseSD is the lognormal reporting-noise scale.
	NoiseSD float64
}

// DefaultConfig returns the standard ground-truth configuration
// (200+ days, matching "about 3000 counties × over 200 days of entries").
func DefaultConfig(seed uint64) Config {
	return Config{Days: 210, Seed: seed, AttackRate: 0.015, SecondWave: true, NoiseSD: 0.3}
}

// GenerateState synthesizes ground truth for one state.
func GenerateState(st synthpop.StateInfo, cfg Config) (*StateTruth, error) {
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("surveillance: non-positive horizon %d", cfg.Days)
	}
	if cfg.AttackRate <= 0 {
		cfg.AttackRate = 0.015
	}
	r := stats.NewRNG(cfg.Seed*2654435761 + uint64(st.FIPS))
	t := &StateTruth{State: st.Code, Days: cfg.Days}

	// County populations follow the same Zipf profile as synthpop.
	weights := make([]float64, st.Counties)
	total := 0.0
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), 0.8)
		total += weights[i]
	}
	for c := 0; c < st.Counties; c++ {
		pop := int(float64(st.Population) * weights[c] / total)
		if pop < 100 {
			pop = 100
		}
		series := make([]float64, cfg.Days)
		// First US case was Jan 21; community spread ramps from ~day 40
		// (early March), with larger counties seeded earlier.
		onset := 40.0 + r.Exp(1.0/15.0)*(1+2*float64(c)/float64(st.Counties))
		growth := 0.08 + 0.06*r.Float64()
		k := cfg.AttackRate * float64(pop) * (0.5 + r.Float64())
		mid := onset + 30 + 40*r.Float64()
		addLogisticWave(series, k, growth, mid)
		if cfg.SecondWave && r.Bool(0.6) {
			mid2 := mid + 70 + 40*r.Float64()
			addLogisticWave(series, k*(0.5+r.Float64()), growth*0.8, mid2)
		}
		// Reporting artefacts: multiplicative noise, weekend dips, and
		// occasional batch reporting (a dip followed by a spike).
		for d := range series {
			if series[d] <= 0 {
				continue
			}
			v := series[d] * r.LogNormal(0, cfg.NoiseSD)
			if d%7 == 5 || d%7 == 6 { // weekend
				carried := v * 0.4
				v -= carried
				if d+2 < len(series) {
					series[d+2] += carried
				}
			}
			series[d] = v
		}
		for d := range series {
			series[d] = math.Round(series[d])
			if series[d] < 0 {
				series[d] = 0
			}
		}
		t.Counties = append(t.Counties, CountySeries{
			FIPS: int32(synthpop.CountyFIPS(st.FIPS, c)), Pop: pop, Daily: series,
		})
	}
	return t, nil
}

// addLogisticWave adds the daily increments of a logistic cumulative wave
// with carrying capacity k, growth rate r and midpoint mid.
func addLogisticWave(series []float64, k, r, mid float64) {
	prev := k / (1 + math.Exp(r*mid))
	for d := range series {
		cur := k / (1 + math.Exp(-r*(float64(d)-mid)))
		series[d] += cur - prev
		prev = cur
	}
}

// StateDaily returns the state-level daily series (sum over counties).
func (t *StateTruth) StateDaily() []float64 {
	out := make([]float64, t.Days)
	for _, c := range t.Counties {
		for d, v := range c.Daily {
			out[d] += v
		}
	}
	return out
}

// StateCumulative returns the state-level cumulative series (Figure 14).
func (t *StateTruth) StateCumulative() []float64 {
	daily := t.StateDaily()
	acc := 0.0
	out := make([]float64, len(daily))
	for d, v := range daily {
		acc += v
		out[d] = acc
	}
	return out
}

// CountiesWithCases returns how many counties have a positive cumulative
// count by the given day (the paper: 2772 counties with cases by April 22,
// day 92).
func (t *StateTruth) CountiesWithCases(day int) int {
	n := 0
	for _, c := range t.Counties {
		cum := 0.0
		for d := 0; d <= day && d < len(c.Daily); d++ {
			cum += c.Daily[d]
		}
		if cum > 0 {
			n++
		}
	}
	return n
}

// GenerateUS synthesizes ground truth for all 51 regions.
func GenerateUS(cfg Config) (map[string]*StateTruth, error) {
	out := make(map[string]*StateTruth, len(synthpop.States))
	for _, st := range synthpop.States {
		t, err := GenerateState(st, cfg)
		if err != nil {
			return nil, err
		}
		out[st.Code] = t
	}
	return out, nil
}

// OnsetDay returns the first day the state's cumulative count exceeds the
// threshold (or 0 when it never does) — the community-spread alignment
// point calibration windows start from.
func (t *StateTruth) OnsetDay(threshold float64) int {
	cum := t.StateCumulative()
	for d, v := range cum {
		if v > threshold {
			return d
		}
	}
	return 0
}

// Window returns a copy of the truth restricted to days [from, to).
func (t *StateTruth) Window(from, to int) *StateTruth {
	if from < 0 {
		from = 0
	}
	if to > t.Days {
		to = t.Days
	}
	if to < from {
		to = from
	}
	out := &StateTruth{State: t.State, Days: to - from}
	for _, c := range t.Counties {
		out.Counties = append(out.Counties, CountySeries{
			FIPS: c.FIPS, Pop: c.Pop, Daily: append([]float64(nil), c.Daily[from:to]...),
		})
	}
	return out
}

// TruncateTo returns a copy of the truth limited to the first n days — the
// calibration workflows train on data "through April 11" and predict
// forward.
func (t *StateTruth) TruncateTo(n int) *StateTruth {
	if n > t.Days {
		n = t.Days
	}
	out := &StateTruth{State: t.State, Days: n}
	for _, c := range t.Counties {
		out.Counties = append(out.Counties, CountySeries{
			FIPS: c.FIPS, Pop: c.Pop, Daily: append([]float64(nil), c.Daily[:n]...),
		})
	}
	return out
}
