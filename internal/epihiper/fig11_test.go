package epihiper

import (
	"testing"

	"repro/internal/disease"
	"repro/internal/stats"
	"repro/internal/synthpop"
)

// fivePersonNetwork builds the illustrative workplace network of Figure 11:
// five people (A=0 … E=4) with daily contacts A–B, A–E, B–D, B–E, D–C.
func fivePersonNetwork() *synthpop.Network {
	net := &synthpop.Network{Region: "XX"}
	for i := int32(0); i < 5; i++ {
		net.Persons = append(net.Persons, synthpop.Person{
			ID: i, HouseholdID: i, Age: 30, CountyFIPS: 99001,
		})
	}
	net.Adj = make([][]synthpop.HalfEdge, 5)
	edges := [][2]int32{{0, 1}, {0, 4}, {1, 3}, {1, 4}, {3, 2}}
	for _, e := range edges {
		net.Adj[e[0]] = append(net.Adj[e[0]], synthpop.HalfEdge{
			Neighbor: e[1], SrcContext: synthpop.CtxWork, DstContext: synthpop.CtxWork,
			StartMin: 9 * 60, DurationMin: 480, Weight: 1,
		})
		net.Adj[e[1]] = append(net.Adj[e[1]], synthpop.HalfEdge{
			Neighbor: e[0], SrcContext: synthpop.CtxWork, DstContext: synthpop.CtxWork,
			StartMin: 9 * 60, DurationMin: 480, Weight: 1,
		})
	}
	return net
}

// fig11Run simulates the SIR dynamics of Appendix A on the five-person
// network with A initially infectious and returns the set of ever-infected
// people.
func fig11Run(t *testing.T, seed uint64, ivs []Intervention) map[int32]bool {
	t.Helper()
	net := fivePersonNetwork()
	// A strong SIR model so transmission along live edges is likely.
	m := disease.SIR(3.0, 4)
	sim, err := New(Config{
		Model: m, Network: net, Days: 30, Parallelism: 1, Seed: seed,
		SeedPersons:   []int32{0}, // infections start from A
		Interventions: ivs,
	})
	if err != nil {
		t.Fatal(err)
	}
	infected := map[int32]bool{}
	// Identify who got infected by scanning final states plus recorder.
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	for pid := int32(0); pid < 5; pid++ {
		if sim.Health(pid) != disease.Susceptible {
			infected[pid] = true
		}
	}
	return infected
}

// TestFig11SmallNetworkTrajectories reproduces the figure's story: the
// same seed node yields different outbreak subsets across random
// trajectories, and interventions (isolation, vaccination) prune
// transmission paths.
func TestFig11SmallNetworkTrajectories(t *testing.T) {
	// (1) Stochasticity: different trajectories infect different subsets.
	sizes := map[int]int{}
	for seed := uint64(0); seed < 40; seed++ {
		inf := fig11Run(t, seed, nil)
		sizes[len(inf)]++
	}
	if len(sizes) < 2 {
		t.Fatalf("all trajectories identical in size: %v", sizes)
	}
	// Every outbreak contains at least the seed.
	if sizes[0] > 0 {
		t.Fatal("an outbreak lost its seed")
	}

	// (2) Isolation: if D goes home (is isolated) for the whole run, C can
	// never be infected — C's only path is through D.
	iso := &Triggered{
		Label: "isolate-D",
		When:  OnDay(0),
		Do: func(s *Sim, day int, r *stats.RNG) {
			s.Isolate(3, 1000)
		},
	}
	for seed := uint64(0); seed < 40; seed++ {
		inf := fig11Run(t, seed, []Intervention{iso})
		if inf[2] {
			t.Fatalf("seed %d: C infected despite D's isolation", seed)
		}
		if inf[3] && seed == 0 {
			// D may still be infected (isolation cuts work contacts;
			// Figure 11's D goes home before infecting C, possibly after
			// being infected). Our isolation from day 0 cuts both ways
			// on this all-work network, so D must stay susceptible too.
			t.Fatal("D infected through a disabled contact")
		}
	}

	// (3) Vaccination: making C insusceptible keeps C uninfected even
	// when everyone else falls.
	vax := &Triggered{
		Label: "vaccinate-C",
		When:  OnDay(0),
		Do: func(s *Sim, day int, r *stats.RNG) {
			s.SetSusceptibility(2, 0)
		},
	}
	for seed := uint64(0); seed < 40; seed++ {
		inf := fig11Run(t, seed, []Intervention{vax})
		if inf[2] {
			t.Fatalf("seed %d: vaccinated C was infected", seed)
		}
	}

	// (4) The full cascade A→B→D→C of the figure occurs for some seed.
	sawFull := false
	for seed := uint64(0); seed < 200; seed++ {
		inf := fig11Run(t, seed, nil)
		if len(inf) == 5 {
			sawFull = true
			break
		}
	}
	if !sawFull {
		t.Fatal("the all-five-infected trajectory never occurred in 200 draws")
	}
}
