package epihiper

import (
	"context"
	"testing"
	"time"

	"repro/internal/obs"
)

// benchReplicates runs the replicate fan-out the nightly pipeline schedules,
// with or without a tracer in the context, so the pair of benchmarks prices
// the observability overhead on the simulation kernel (budget: ≤3%).
func benchReplicates(b *testing.B, ctx context.Context) {
	net := testNetwork(b, 13)
	cfg := baseConfig(net, 61)
	cfg.Days = 40
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunReplicatesCtx(ctx, cfg, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplicatesObsOff(b *testing.B) {
	benchReplicates(b, context.Background())
}

type discardSink struct{}

func (discardSink) Emit(obs.Entry) {}

func BenchmarkReplicatesObsOn(b *testing.B) {
	tr := obs.NewTracer(discardSink{}, obs.WithClock(obs.FixedClock(time.Unix(0, 0), time.Microsecond)),
		obs.WithSpanMetrics(obs.NewRegistry()))
	benchReplicates(b, obs.WithTracer(context.Background(), tr))
}
