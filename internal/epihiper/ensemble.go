package epihiper

import (
	"repro/internal/disease"
	"repro/internal/stats"
	"repro/internal/synthpop"
)

// This file implements the paper's full intervention form (Appendix D):
// an intervention comprises a trigger and an action ensemble; the ensemble
// operates on a target set of nodes, with operations performed (i) once per
// intervention, (ii) for each element of the target set, and (iii) for a
// sampled subset as well as for the remaining non-sampled elements —
// sampling may be nested, and operations may be delayed to a later point in
// the simulation. Node traits (Table V's nodeTrait[traitName]) are
// user-defined attributes that triggers and targets may read and actions
// may write; they do not influence transmission or progression directly.

// NodeOp mutates one person.
type NodeOp func(s *Sim, pid int32)

// TargetFunc selects the persons an ensemble operates on.
type TargetFunc func(s *Sim, day int) []int32

// ActionEnsemble is the paper's action-ensemble structure.
type ActionEnsemble struct {
	// Target selects the target set. Nil targets every person.
	Target TargetFunc
	// Once runs one time when the ensemble fires (typically to update
	// user-defined variables).
	Once func(s *Sim, day int)
	// ForEach runs for every element of the target set.
	ForEach NodeOp
	// SampleFrac, when positive, splits the target set: Sampled runs on
	// the sampled subset, Remainder on the rest.
	SampleFrac float64
	Sampled    NodeOp
	Remainder  NodeOp
	// Nested, when non-nil, is applied to the sampled subset as its own
	// ensemble target ("sampling may be nested").
	Nested *ActionEnsemble
	// DelayDays postpones the per-element operations by this many days.
	DelayDays int
}

// Apply executes the ensemble against the current system state.
func (a *ActionEnsemble) Apply(s *Sim, day int, r *stats.RNG) {
	if a.Once != nil {
		a.Once(s, day)
	}
	var target []int32
	if a.Target != nil {
		target = a.Target(s, day)
	} else {
		target = make([]int32, s.net.NumNodes())
		for i := range target {
			target[i] = int32(i)
		}
	}
	run := func(op NodeOp, pids []int32) {
		if op == nil || len(pids) == 0 {
			return
		}
		if a.DelayDays > 0 {
			cp := append([]int32(nil), pids...)
			s.Schedule(day+a.DelayDays, func(sim *Sim) {
				for _, pid := range cp {
					op(sim, pid)
				}
			})
			return
		}
		for _, pid := range pids {
			op(s, pid)
		}
	}
	run(a.ForEach, target)
	if a.SampleFrac > 0 {
		var sampled, rest []int32
		for _, pid := range target {
			if r.Bool(a.SampleFrac) {
				sampled = append(sampled, pid)
			} else {
				rest = append(rest, pid)
			}
		}
		run(a.Sampled, sampled)
		run(a.Remainder, rest)
		if a.Nested != nil {
			nested := *a.Nested
			captured := sampled
			nested.Target = func(*Sim, int) []int32 { return captured }
			nested.Apply(s, day, r)
		}
	}
}

// EnsembleIntervention pairs a trigger with an action ensemble, completing
// the Appendix D form.
type EnsembleIntervention struct {
	Label    string
	Trigger  func(s *Sim, day int) bool
	Ensemble ActionEnsemble
}

// Name implements Intervention.
func (e *EnsembleIntervention) Name() string { return e.Label }

// Step implements Intervention.
func (e *EnsembleIntervention) Step(s *Sim, day int, r *stats.RNG) {
	if e.Trigger == nil || e.Trigger(s, day) {
		e.Ensemble.Apply(s, day, r)
	}
}

// ---------------------------------------------------------------------------
// Table V node traits

// NodeTrait returns the value of a user-defined node trait (0 when unset).
func (s *Sim) NodeTrait(name string, pid int32) float64 {
	if s.nodeTraits == nil {
		return 0
	}
	t := s.nodeTraits[name]
	if t == nil {
		return 0
	}
	return t[pid]
}

// SetNodeTrait assigns a user-defined node trait value.
func (s *Sim) SetNodeTrait(name string, pid int32, v float64) {
	if s.nodeTraits == nil {
		s.nodeTraits = map[string][]float64{}
	}
	t := s.nodeTraits[name]
	if t == nil {
		t = make([]float64, s.net.NumNodes())
		s.nodeTraits[name] = t
		s.AddDynamicMemory(int64(s.net.NumNodes()) * 8)
	}
	t[pid] = v
}

// ---------------------------------------------------------------------------
// Common target-set constructors

// TargetInState selects persons currently in the given health state.
func TargetInState(st disease.State) TargetFunc {
	return func(s *Sim, _ int) []int32 {
		var out []int32
		for pid := int32(0); int(pid) < s.net.NumNodes(); pid++ {
			if s.health[pid] == st {
				out = append(out, pid)
			}
		}
		return out
	}
}

// TargetAgeBand selects persons in an age band.
func TargetAgeBand(ag disease.AgeGroup) TargetFunc {
	return func(s *Sim, _ int) []int32 {
		var out []int32
		for i := range s.net.Persons {
			if s.net.Persons[i].AgeGroup() == ag {
				out = append(out, s.net.Persons[i].ID)
			}
		}
		return out
	}
}

// TargetCounty selects persons living in a county.
func TargetCounty(fips int32) TargetFunc {
	return func(s *Sim, _ int) []int32 {
		var out []int32
		for i := range s.net.Persons {
			if s.net.Persons[i].CountyFIPS == fips {
				out = append(out, s.net.Persons[i].ID)
			}
		}
		return out
	}
}

// TargetTraitAbove selects persons whose named trait exceeds a threshold.
func TargetTraitAbove(name string, threshold float64) TargetFunc {
	return func(s *Sim, _ int) []int32 {
		var out []int32
		for pid := int32(0); int(pid) < s.net.NumNodes(); pid++ {
			if s.NodeTrait(name, pid) > threshold {
				out = append(out, pid)
			}
		}
		return out
	}
}

// ---------------------------------------------------------------------------
// Common node operations

// OpIsolate confines the person to home for the given days from the
// current simulation day.
func OpIsolate(days int) NodeOp {
	return func(s *Sim, pid int32) { s.Isolate(pid, s.Day()+days) }
}

// OpVaccinate zeroes susceptibility — node deletion in the Appendix A
// sense.
func OpVaccinate() NodeOp {
	return func(s *Sim, pid int32) { s.SetSusceptibility(pid, 0) }
}

// OpScaleInfectivity multiplies the person's infectivity (mask-wearing,
// antivirals).
func OpScaleInfectivity(factor float64) NodeOp {
	return func(s *Sim, pid int32) {
		s.SetInfectivity(pid, float64(s.infectivityScale[pid])*factor)
	}
}

// OpSetTrait writes a trait value.
func OpSetTrait(name string, v float64) NodeOp {
	return func(s *Sim, pid int32) { s.SetNodeTrait(name, pid, v) }
}

// OpDisableContext turns one context off for the person.
func OpDisableContext(ctx synthpop.Context) NodeOp {
	return func(s *Sim, pid int32) { s.SetContextEnabled(pid, ctx, false) }
}
