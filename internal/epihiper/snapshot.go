package epihiper

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"repro/internal/disease"
)

// Snapshot format: a little-endian field sequence behind a magic + version
// header, closed by a CRC32 (IEEE) trailer over everything before it. The
// codec serializes exactly the state that cannot be rebuilt from the
// network and model:
//
//   - clock (day, ranTo) and per-person disease state (health, nextState,
//     switchTick) and scales (infectivityScale, susceptibilityScale),
//   - intervention-visible state (ctxMask, globalCtxMask, maskDirtyAll,
//     isolatedUntil, ctxWeight, Vars, nodeTraits),
//   - counters and accounting (currentByState, cumByState, dynamicBytes,
//     memTrace, todayEvents),
//   - the propensity bound's high-watermark scaleHW (NOT derivable from the
//     current scales — it remembers every scale ever set, and a lower bound
//     would change the kernel's rejection behavior) and lastOmega,
//   - the shared intervention RNG position,
//   - pending typed scheduled actions, and the named state of every
//     intervention implementing InterventionState.
//
// Derived tables (effInf, effInfBits, effMaskT, infNbrCount, progBuckets,
// isolExpiry, propBound) are rebuilt at restore: each is a pure function of
// the serialized state, stale progression-bucket entries are filtered by
// switchTick at drain time, and mask refreshes are idempotent — so the
// rebuilt sim is behavior-identical to the original.
const (
	snapMagic   = "EPSNAP"
	snapVersion = uint16(1)
)

// maxSnapSliceLen bounds every decoded count so corrupted lengths fail
// fast instead of attempting a giant allocation.
const maxSnapSliceLen = 1 << 28

// snapWriter accumulates the encoding.
type snapWriter struct{ b []byte }

func (w *snapWriter) u8(v uint8)   { w.b = append(w.b, v) }
func (w *snapWriter) u16(v uint16) { w.b = binary.LittleEndian.AppendUint16(w.b, v) }
func (w *snapWriter) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *snapWriter) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *snapWriter) i32(v int32)  { w.u32(uint32(v)) }
func (w *snapWriter) i64(v int64)  { w.u64(uint64(v)) }
func (w *snapWriter) f64(v float64) {
	w.u64(math.Float64bits(v))
}
func (w *snapWriter) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *snapWriter) str(s string) {
	w.u32(uint32(len(s)))
	w.b = append(w.b, s...)
}
func (w *snapWriter) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.b = append(w.b, b...)
}

// snapReader decodes the encoding; every read is bounds-checked and the
// first failure latches into err so callers can chain reads and check once.
type snapReader struct {
	b   []byte
	off int
	err error
}

func (r *snapReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("epihiper: snapshot decode: "+format, args...)
	}
}

func (r *snapReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.fail("truncated at offset %d (want %d bytes of %d)", r.off, n, len(r.b))
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

func (r *snapReader) u8() uint8 {
	v := r.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}
func (r *snapReader) u16() uint16 {
	v := r.take(2)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(v)
}
func (r *snapReader) u32() uint32 {
	v := r.take(4)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(v)
}
func (r *snapReader) u64() uint64 {
	v := r.take(8)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(v)
}
func (r *snapReader) i32() int32    { return int32(r.u32()) }
func (r *snapReader) i64() int64    { return int64(r.u64()) }
func (r *snapReader) f64() float64  { return math.Float64frombits(r.u64()) }
func (r *snapReader) boolean() bool { return r.u8() != 0 }
func (r *snapReader) length() int {
	n := int(r.u32())
	if n > maxSnapSliceLen {
		r.fail("implausible length %d", n)
		return 0
	}
	return n
}
func (r *snapReader) str() string {
	n := r.length()
	v := r.take(n)
	if v == nil {
		return ""
	}
	return string(v)
}
func (r *snapReader) bytesField() []byte {
	n := r.length()
	v := r.take(n)
	if v == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, v)
	return out
}

// encodeI32s renders an int32 slice as length-prefixed little-endian bytes
// (the InterventionState codecs share it).
func encodeI32s(v []int32) []byte {
	var w snapWriter
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.i32(x)
	}
	return w.b
}

// decodeI32s is the inverse of encodeI32s.
func decodeI32s(b []byte) ([]int32, error) {
	r := snapReader{b: b}
	n := r.length()
	out := make([]int32, 0, min(n, 1<<16))
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, r.i32())
	}
	if r.err == nil && r.off != len(b) {
		r.fail("%d trailing bytes", len(b)-r.off)
	}
	return out, r.err
}

// Snapshot serializes the full mutable simulation state at a day boundary.
// It must be called between days (after Run/RunPrefix returned, not from
// inside an intervention). A pending closure action queued via Schedule
// cannot be serialized and makes Snapshot fail.
func (s *Sim) Snapshot() ([]byte, error) {
	for _, a := range s.scheduled {
		if a.kind == opOpaque {
			return nil, fmt.Errorf("epihiper: cannot snapshot with a pending opaque scheduled action (day %d)", a.day)
		}
	}
	n := s.net.NumNodes()
	var w snapWriter
	w.b = make([]byte, 0, 64+n*16)
	w.b = append(w.b, snapMagic...)
	w.u16(snapVersion)
	w.u32(uint32(n))
	w.i64(int64(s.day))
	w.i64(int64(s.ranTo))
	for _, h := range s.health {
		w.u8(uint8(h))
	}
	for _, h := range s.nextState {
		w.u8(uint8(h))
	}
	for _, t := range s.switchTick {
		w.i32(t)
	}
	for _, v := range s.infectivityScale {
		w.u32(math.Float32bits(v))
	}
	for _, v := range s.susceptibilityScale {
		w.u32(math.Float32bits(v))
	}
	w.b = append(w.b, s.ctxMask...)
	w.u8(s.globalCtxMask)
	w.bool(s.maskDirtyAll)
	for _, v := range s.isolatedUntil {
		w.i32(v)
	}
	for _, v := range s.ctxWeight {
		w.f64(v)
	}
	// Maps in sorted key order for a canonical encoding.
	varKeys := make([]string, 0, len(s.Vars))
	for k := range s.Vars {
		varKeys = append(varKeys, k)
	}
	sort.Strings(varKeys)
	w.u32(uint32(len(varKeys)))
	for _, k := range varKeys {
		w.str(k)
		w.f64(s.Vars[k])
	}
	traitKeys := make([]string, 0, len(s.nodeTraits))
	for k := range s.nodeTraits {
		traitKeys = append(traitKeys, k)
	}
	sort.Strings(traitKeys)
	w.u32(uint32(len(traitKeys)))
	for _, k := range traitKeys {
		w.str(k)
		for _, v := range s.nodeTraits[k] {
			w.f64(v)
		}
	}
	for _, v := range s.currentByState {
		w.i64(int64(v))
	}
	for _, v := range s.cumByState {
		w.i64(v)
	}
	w.i64(s.dynamicBytes)
	w.f64(s.scaleHW)
	w.f64(s.lastOmega)
	for _, v := range s.ivRNG.State() {
		w.u64(v)
	}
	w.u32(uint32(len(s.todayEvents)))
	for _, ev := range s.todayEvents {
		w.i32(ev.PID)
		w.u8(uint8(ev.From))
		w.u8(uint8(ev.To))
		w.i32(ev.Infector)
	}
	w.u32(uint32(len(s.memTrace)))
	for _, v := range s.memTrace {
		w.i64(v)
	}
	w.u32(uint32(len(s.scheduled)))
	for _, a := range s.scheduled {
		w.i64(int64(a.day))
		w.u8(a.kind)
		switch a.kind {
		case opSeedPersons:
			w.u32(uint32(len(a.pids)))
			for _, pid := range a.pids {
				w.i32(pid)
			}
		case opIsolate:
			w.i32(a.pid)
			w.i32(a.until)
		}
	}
	type ivState struct {
		name string
		data []byte
	}
	var states []ivState
	for _, iv := range s.cfg.Interventions {
		if st, ok := iv.(InterventionState); ok {
			states = append(states, ivState{name: iv.Name(), data: st.EncodeState()})
		}
	}
	w.u32(uint32(len(states)))
	for _, st := range states {
		w.str(st.name)
		w.bytes(st.data)
	}
	w.u32(crc32.ChecksumIEEE(w.b))
	return w.b, nil
}

// Restore replaces the simulation's mutable state with a checkpoint
// produced by Snapshot on a sim with the same network, model and horizon.
// Derived tables are rebuilt; intervention state is transferred by name
// into the sim's current intervention stack. On error the sim is left
// unusable and must be discarded (decoding is not transactional).
func (s *Sim) Restore(data []byte) error {
	if len(data) < len(snapMagic)+2+4 {
		return fmt.Errorf("epihiper: snapshot too short (%d bytes)", len(data))
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return fmt.Errorf("epihiper: bad snapshot magic")
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return fmt.Errorf("epihiper: snapshot checksum mismatch (got %08x want %08x)", got, want)
	}
	r := snapReader{b: body, off: len(snapMagic)}
	if v := r.u16(); v != snapVersion {
		return fmt.Errorf("epihiper: unsupported snapshot version %d", v)
	}
	n := s.net.NumNodes()
	if got := int(r.u32()); got != n {
		return fmt.Errorf("epihiper: snapshot for %d nodes, sim has %d", got, n)
	}
	day := int(r.i64())
	ranTo := int(r.i64())
	// day lags ranTo by one at a day boundary (it is the last executed
	// day; runSpan advances it at the top of each tick).
	if r.err == nil && (ranTo < 0 || ranTo > s.cfg.Days || day < 0 || day > ranTo) {
		return fmt.Errorf("epihiper: snapshot clock day=%d ranTo=%d outside horizon %d", day, ranTo, s.cfg.Days)
	}
	for i := 0; i < n; i++ {
		st := disease.State(r.u8())
		if r.err == nil && st >= disease.NumStates {
			return fmt.Errorf("epihiper: person %d in invalid state %d", i, st)
		}
		s.health[i] = st
	}
	for i := 0; i < n; i++ {
		st := disease.State(r.u8())
		if r.err == nil && st >= disease.NumStates {
			return fmt.Errorf("epihiper: person %d invalid next state %d", i, st)
		}
		s.nextState[i] = st
	}
	for i := 0; i < n; i++ {
		s.switchTick[i] = r.i32()
	}
	for i := 0; i < n; i++ {
		s.infectivityScale[i] = math.Float32frombits(r.u32())
	}
	for i := 0; i < n; i++ {
		s.susceptibilityScale[i] = math.Float32frombits(r.u32())
	}
	copy(s.ctxMask, r.take(n))
	s.globalCtxMask = r.u8()
	s.maskDirtyAll = r.boolean()
	for i := 0; i < n; i++ {
		s.isolatedUntil[i] = r.i32()
	}
	for i := range s.ctxWeight {
		s.ctxWeight[i] = r.f64()
	}
	s.Vars = make(map[string]float64)
	for i, m := 0, r.length(); i < m && r.err == nil; i++ {
		k := r.str()
		s.Vars[k] = r.f64()
	}
	s.nodeTraits = nil
	if m := r.length(); m > 0 {
		s.nodeTraits = make(map[string][]float64, m)
		for i := 0; i < m && r.err == nil; i++ {
			k := r.str()
			vals := make([]float64, n)
			for j := range vals {
				vals[j] = r.f64()
			}
			s.nodeTraits[k] = vals
		}
	}
	for i := range s.currentByState {
		s.currentByState[i] = int(r.i64())
	}
	for i := range s.cumByState {
		s.cumByState[i] = r.i64()
	}
	s.dynamicBytes = r.i64()
	s.scaleHW = r.f64()
	s.lastOmega = r.f64()
	var rngState [4]uint64
	for i := range rngState {
		rngState[i] = r.u64()
	}
	s.todayEvents = s.todayEvents[:0]
	for i, m := 0, r.length(); i < m && r.err == nil; i++ {
		ev := TransitionEvent{PID: r.i32(), From: disease.State(r.u8()), To: disease.State(r.u8()), Infector: r.i32()}
		s.todayEvents = append(s.todayEvents, ev)
	}
	s.memTrace = s.memTrace[:0]
	for i, m := 0, r.length(); i < m && r.err == nil; i++ {
		s.memTrace = append(s.memTrace, r.i64())
	}
	s.scheduled = nil
	for i, m := 0, r.length(); i < m && r.err == nil; i++ {
		a := scheduledAction{day: int(r.i64()), kind: r.u8()}
		switch a.kind {
		case opSeedPersons:
			cnt := r.length()
			a.pids = make([]int32, 0, min(cnt, 1<<16))
			for j := 0; j < cnt && r.err == nil; j++ {
				a.pids = append(a.pids, r.i32())
			}
		case opIsolate:
			a.pid = r.i32()
			a.until = r.i32()
		default:
			return fmt.Errorf("epihiper: snapshot holds unknown scheduled-action kind %d", a.kind)
		}
		s.scheduled = append(s.scheduled, a)
	}
	type ivState struct {
		name string
		data []byte
	}
	var states []ivState
	for i, m := 0, r.length(); i < m && r.err == nil; i++ {
		states = append(states, ivState{name: r.str(), data: r.bytesField()})
	}
	if r.err != nil {
		return r.err
	}
	if r.off != len(body) {
		return fmt.Errorf("epihiper: %d trailing snapshot bytes", len(body)-r.off)
	}
	// All fields decoded; commit the clock and rebuild the derived tables.
	s.day = day
	s.ranTo = ranTo
	if err := s.ivRNG.SetState(rngState); err != nil {
		return err
	}
	for _, st := range states {
		s.applyInterventionState(st.name, st.data)
	}
	s.rebuildDerived()
	return nil
}

// applyInterventionState decodes saved state into the first stack
// intervention with the matching name. A name with no taker is skipped: the
// restoring stack may legitimately drop interventions the checkpointed one
// had (a branch cannot change the past, but its future stack may differ).
func (s *Sim) applyInterventionState(name string, data []byte) {
	for _, iv := range s.cfg.Interventions {
		if iv.Name() != name {
			continue
		}
		if st, ok := iv.(InterventionState); ok {
			if err := st.DecodeState(data); err == nil {
				return
			}
		}
	}
}

// rebuildDerived recomputes every table that is a pure function of the
// serialized state: effective-infectivity caches, context masks, infectious
// neighbor counters, progression buckets and isolation-expiry lists.
func (s *Sim) rebuildDerived() {
	n := s.net.NumNodes()
	clear(s.effInfBits)
	clear(s.infNbrCount)
	clear(s.riskBits)
	for i := 0; i < n; i++ {
		s.updateEffInf(int32(i))
		s.effMaskT[i] = s.effMask(int32(i))
	}
	for pid := int32(0); int(pid) < n; pid++ {
		if s.model.IsInfectious(s.health[pid]) {
			for _, v := range s.csr.Neighbors(pid) {
				s.bumpInfNbr(v, 1)
			}
		}
	}
	// Progression buckets live on their owner shards: the snapshot knows
	// nothing about shard counts (it serializes canonical node order), so
	// restore redistributes switchTick into whatever sharding THIS sim
	// runs — a snapshot taken at shard count A restores at any count B.
	for si := range s.shards {
		s.shards[si].progBuckets = make([][]int32, s.cfg.Days)
	}
	for pid := int32(0); int(pid) < n; pid++ {
		if fire := s.switchTick[pid]; fire >= int32(s.ranTo) && int(fire) < s.cfg.Days {
			sh := s.ownerOf(pid)
			sh.progBuckets[fire] = append(sh.progBuckets[fire], pid)
		}
	}
	s.isolExpiry = make([][]int32, s.cfg.Days)
	for pid := int32(0); int(pid) < n; pid++ {
		if until := s.isolatedUntil[pid]; until >= int32(s.ranTo) && int(until) < len(s.isolExpiry) {
			s.isolExpiry[until] = append(s.isolExpiry[until], pid)
		}
	}
}

// NewFromSnapshot builds a simulation positioned mid-horizon from a
// checkpoint: the configuration supplies the (immutable) network, model,
// horizon and the branch's intervention stack; the snapshot supplies the
// state. The configured Seeds/SeedPersons are NOT re-applied — the
// checkpoint already contains their effects. RunSuffix continues the run.
func NewFromSnapshot(cfg Config, data []byte) (*Sim, error) {
	s, err := newSim(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.Restore(data); err != nil {
		return nil, err
	}
	return s, nil
}

// SwapInterventions replaces the intervention stack mid-run, transferring
// the named state of the outgoing stack into the incoming one (the same
// by-name handover a snapshot restore performs). It is the from-scratch
// path of a what-if branch: run the shared stack to the pivot, swap in the
// scenario stack, continue — and must be equivalent to branching from a
// snapshot taken at the pivot.
func (s *Sim) SwapInterventions(ivs []Intervention) {
	type saved struct {
		name string
		data []byte
	}
	var states []saved
	for _, iv := range s.cfg.Interventions {
		if st, ok := iv.(InterventionState); ok {
			states = append(states, saved{name: iv.Name(), data: st.EncodeState()})
		}
	}
	s.cfg.Interventions = ivs
	for _, st := range states {
		s.applyInterventionState(st.name, st.data)
	}
}

// RanTo returns the number of completed simulation days.
func (s *Sim) RanTo() int { return s.ranTo }
