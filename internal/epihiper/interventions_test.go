package epihiper

import (
	"testing"

	"repro/internal/disease"
	"repro/internal/synthpop"
)

// runWith executes the base scenario with the given interventions and a
// longer horizon, returning the mean attack rate over a few replicates so
// intervention effects are not confounded by single-run noise.
func runWith(t *testing.T, net *synthpop.Network, ivs func() []Intervention, seed uint64) float64 {
	t.Helper()
	const reps = 4
	total := 0.0
	for rep := uint64(0); rep < reps; rep++ {
		cfg := baseConfig(net, seed+rep)
		cfg.Days = 90
		if ivs != nil {
			cfg.Interventions = ivs()
		}
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		total += Attack(res, net.NumNodes())
	}
	return total / reps
}

func TestStayAtHomeReducesAttack(t *testing.T) {
	net := testNetwork(t, 20)
	base := runWith(t, net, nil, 100)
	sh := runWith(t, net, func() []Intervention {
		return []Intervention{&StayAtHome{StartDay: 5, EndDay: 90, Compliance: 0.9}}
	}, 100)
	if sh >= base {
		t.Fatalf("SH did not reduce attack rate: %v vs %v", sh, base)
	}
	if base > 0.05 && sh > 0.7*base {
		t.Fatalf("90%% SH only reduced attack from %v to %v", base, sh)
	}
}

func TestVHIReducesAttack(t *testing.T) {
	net := testNetwork(t, 21)
	base := runWith(t, net, nil, 200)
	vhi := runWith(t, net, func() []Intervention {
		return []Intervention{&VoluntaryHomeIsolation{Compliance: 0.9, IsolationDays: 14}}
	}, 200)
	if vhi >= base {
		t.Fatalf("VHI did not reduce attack rate: %v vs %v", vhi, base)
	}
}

func TestSchoolClosureDisablesSchoolTransmission(t *testing.T) {
	net := testNetwork(t, 22)
	cfg := baseConfig(net, 300)
	cfg.Days = 30
	cfg.Interventions = []Intervention{&SchoolClosure{StartDay: 0, EndDay: 30}}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// With SC active the effective mask of every person excludes school.
	for pid := int32(0); pid < 20; pid++ {
		if sim.effMask(pid)&(1<<uint8(synthpop.CtxSchool)) != 0 {
			t.Fatal("school context live during closure")
		}
		if sim.effMask(pid)&(1<<uint8(synthpop.CtxCollege)) != 0 {
			t.Fatal("college context live during closure")
		}
	}
}

func TestSchoolClosureReopens(t *testing.T) {
	net := testNetwork(t, 23)
	cfg := baseConfig(net, 301)
	cfg.Days = 25
	cfg.Interventions = []Intervention{&SchoolClosure{StartDay: 5, EndDay: 20}}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if sim.effMask(0)&(1<<uint8(synthpop.CtxSchool)) == 0 {
		t.Fatal("school context still closed after EndDay")
	}
}

func TestPartialReopenReleasesSome(t *testing.T) {
	net := testNetwork(t, 24)
	sh := &StayAtHome{StartDay: 2, EndDay: 80, Compliance: 0.8}
	ro := &PartialReopen{SH: sh, ReopenDay: 10, Level: 0.5}
	cfg := baseConfig(net, 400)
	cfg.Days = 15
	cfg.Interventions = []Intervention{sh, ro}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	compliant := sh.Compliant()
	if len(compliant) == 0 {
		t.Fatal("no compliant persons sampled")
	}
	released, confined := 0, 0
	for _, pid := range compliant {
		if sim.ctxMask[pid]&(1<<uint8(synthpop.CtxWork)) != 0 {
			released++
		} else {
			confined++
		}
	}
	if released == 0 || confined == 0 {
		t.Fatalf("partial reopen not partial: released %d confined %d", released, confined)
	}
	frac := float64(released) / float64(len(compliant))
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("release fraction %v far from 0.5", frac)
	}
}

func TestPulsingShutdownAlternates(t *testing.T) {
	net := testNetwork(t, 25)
	ps := &PulsingShutdown{StartDay: 0, EndDay: 60, PeriodDays: 10, Compliance: 0.99}
	cfg := baseConfig(net, 500)
	cfg.Days = 45
	cfg.Interventions = []Intervention{ps}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Pulses of period 10 alternate shutdown/open: [0,10) shut, [10,20)
	// open, ... so at day 44 ((44/10)=4, even) the shutdown is active and
	// nearly everyone (compliance 0.99) should be home-confined.
	confined := 0
	for pid := int32(0); int(pid) < net.NumNodes(); pid++ {
		if sim.ctxMask[pid] == homeOnlyMask {
			confined++
		}
	}
	if float64(confined) < 0.9*float64(net.NumNodes()) {
		t.Fatalf("pulse should be active at day 44: only %d/%d confined", confined, net.NumNodes())
	}
}

func TestPulsingShutdownReducesAttack(t *testing.T) {
	net := testNetwork(t, 26)
	base := runWith(t, net, nil, 600)
	ps := runWith(t, net, func() []Intervention {
		return []Intervention{&PulsingShutdown{StartDay: 5, EndDay: 90, PeriodDays: 14, Compliance: 0.9}}
	}, 600)
	if ps >= base {
		t.Fatalf("PS did not reduce attack: %v vs %v", ps, base)
	}
}

func TestContactTracingNames(t *testing.T) {
	if (&ContactTracing{Distance: 1}).Name() != "D1CT" {
		t.Error("D1CT name")
	}
	if (&ContactTracing{Distance: 2}).Name() != "D2CT" {
		t.Error("D2CT name")
	}
}

func TestContactTracingIsolates(t *testing.T) {
	net := testNetwork(t, 27)
	cfg := baseConfig(net, 700)
	cfg.Days = 40
	ct := &ContactTracing{Distance: 1, DetectProb: 1.0, TraceCompliance: 1.0, IsolationDays: 14}
	cfg.Interventions = []Intervention{ct}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	isolated := 0
	for pid := int32(0); int(pid) < net.NumNodes(); pid++ {
		if sim.isolatedUntil[pid] > 0 {
			isolated++
		}
	}
	if isolated == 0 {
		t.Fatal("contact tracing isolated nobody")
	}
}

func TestD2CTIsolatesMoreThanD1CT(t *testing.T) {
	net := testNetwork(t, 28)
	countIsolated := func(distance int) int {
		cfg := baseConfig(net, 800)
		cfg.Days = 30
		cfg.Interventions = []Intervention{
			&ContactTracing{Distance: distance, DetectProb: 1, TraceCompliance: 1, IsolationDays: 14},
		}
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		n := 0
		for pid := int32(0); int(pid) < net.NumNodes(); pid++ {
			if sim.isolatedUntil[pid] > 0 {
				n++
			}
		}
		return n
	}
	d1 := countIsolated(1)
	d2 := countIsolated(2)
	if d2 <= d1 {
		t.Fatalf("D2CT (%d) should isolate more than D1CT (%d)", d2, d1)
	}
}

func TestTestAndIsolateSchedulesDelayedIsolation(t *testing.T) {
	net := testNetwork(t, 29)
	cfg := baseConfig(net, 900)
	cfg.Days = 40
	cfg.Interventions = []Intervention{&TestAndIsolate{DailyDetectRate: 1.0, IsolationDays: 14}}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	isolated := 0
	for pid := int32(0); int(pid) < net.NumNodes(); pid++ {
		if sim.isolatedUntil[pid] > 0 {
			isolated++
		}
	}
	if isolated == 0 {
		t.Fatal("TA isolated nobody despite full detection")
	}
}

func TestMaskMandateReducesAttack(t *testing.T) {
	net := testNetwork(t, 33)
	base := runWith(t, net, nil, 1500)
	masked := runWith(t, net, func() []Intervention {
		return []Intervention{&MaskMandate{StartDay: 5, EndDay: 90, WeightFactor: 0.4}}
	}, 1500)
	if masked >= base {
		t.Fatalf("mask mandate did not reduce attack: %v vs %v", masked, base)
	}
	if base > 0.1 && masked > 0.8*base {
		t.Fatalf("60%% weight reduction only cut attack from %v to %v", base, masked)
	}
}

func TestMaskMandateRestoresWeights(t *testing.T) {
	net := testNetwork(t, 34)
	cfg := baseConfig(net, 1600)
	cfg.Days = 30
	cfg.Interventions = []Intervention{&MaskMandate{StartDay: 5, EndDay: 20, WeightFactor: 0.5}}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for _, c := range nonHomeContexts {
		if sim.ContextWeight(c) != 1 {
			t.Fatalf("context %v weight %v not restored", c, sim.ContextWeight(c))
		}
	}
	if sim.ContextWeight(synthpop.CtxHome) != 1 {
		t.Fatal("home weight should never change")
	}
}

func TestSetContextWeightClamps(t *testing.T) {
	net := testNetwork(t, 35)
	sim, err := New(baseConfig(net, 1700))
	if err != nil {
		t.Fatal(err)
	}
	sim.SetContextWeight(synthpop.CtxWork, -3)
	if sim.ContextWeight(synthpop.CtxWork) != 0 {
		t.Fatal("negative weight not clamped to 0")
	}
}

func TestIsolationConfinesToHome(t *testing.T) {
	net := testNetwork(t, 30)
	cfg := baseConfig(net, 1000)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Isolate(0, 10)
	if !sim.IsIsolated(0) {
		t.Fatal("person not isolated")
	}
	if sim.effMask(0) != homeOnlyMask {
		t.Fatalf("isolated mask %b want home-only", sim.effMask(0))
	}
	sim.day = 10
	if sim.IsIsolated(0) {
		t.Fatal("isolation did not expire")
	}
	if sim.effMask(0) != allContexts {
		t.Fatal("mask not restored after isolation")
	}
}

func TestBaseCaseInterventionSet(t *testing.T) {
	ivs := BaseCaseInterventions(10, 60, 0.6, 0.7)
	if len(ivs) != 3 {
		t.Fatalf("%d interventions want 3 (VHI+SC+SH)", len(ivs))
	}
	names := map[string]bool{}
	for _, iv := range ivs {
		names[iv.Name()] = true
	}
	for _, want := range []string{"VHI", "SC", "SH"} {
		if !names[want] {
			t.Fatalf("missing %s in base case", want)
		}
	}
}

// Higher SH compliance must cost more dynamic memory (Figure 10 left).
func TestMemoryScalesWithCompliance(t *testing.T) {
	net := testNetwork(t, 31)
	peak := func(compliance float64) int64 {
		cfg := baseConfig(net, 1100)
		cfg.Days = 30
		cfg.Interventions = []Intervention{&StayAtHome{StartDay: 5, EndDay: 30, Compliance: compliance}}
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.PeakMemoryBytes
	}
	low := peak(0.2)
	high := peak(0.9)
	if high <= low {
		t.Fatalf("memory did not scale with compliance: %d vs %d", high, low)
	}
}

func TestInterventionsDeterministic(t *testing.T) {
	net := testNetwork(t, 32)
	run := func() int64 {
		cfg := baseConfig(net, 1200)
		cfg.Days = 60
		cfg.Interventions = []Intervention{
			&VoluntaryHomeIsolation{Compliance: 0.5},
			&SchoolClosure{StartDay: 5, EndDay: 50},
			&StayAtHome{StartDay: 10, EndDay: 40, Compliance: 0.45},
			&ContactTracing{Distance: 1, DetectProb: 0.3, TraceCompliance: 0.5},
		}
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalInfections
	}
	if run() != run() {
		t.Fatal("intervention stack not deterministic")
	}
}

var _ = disease.Dead // silence potential unused import in refactors
