package epihiper

import (
	"testing"

	"repro/internal/disease"
	"repro/internal/popdb"
	"repro/internal/stats"
	"repro/internal/synthpop"
)

// testNetwork builds a small deterministic VA network (~800 persons).
func testNetwork(t testing.TB, seed uint64) *synthpop.Network {
	t.Helper()
	va, err := synthpop.StateByCode("VA")
	if err != nil {
		t.Fatal(err)
	}
	cfg := synthpop.DefaultConfig(seed)
	cfg.Scale = 10000
	cfg.MinPersons = 400
	net, err := synthpop.Generate(va, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// seedAll seeds a few infections in the most populous counties.
func seedAll(net *synthpop.Network, count int) []Seeding {
	byCounty := map[int32]int{}
	for _, p := range net.Persons {
		byCounty[p.CountyFIPS]++
	}
	var best int32
	bestN := 0
	for c, n := range byCounty {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return []Seeding{{CountyFIPS: best, Day: 0, Count: count}}
}

func baseConfig(net *synthpop.Network, seed uint64) Config {
	return Config{
		Model:       disease.COVID19(),
		Network:     net,
		Days:        60,
		Parallelism: 2,
		Seed:        seed,
		Seeds:       seedAll(net, 5),
	}
}

func TestNewValidation(t *testing.T) {
	net := testNetwork(t, 1)
	if _, err := New(Config{Network: net, Days: 10}); err == nil {
		t.Error("missing model accepted")
	}
	if _, err := New(Config{Model: disease.COVID19(), Days: 10}); err == nil {
		t.Error("missing network accepted")
	}
	if _, err := New(Config{Model: disease.COVID19(), Network: net, Days: 0}); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestEpidemicSpreads(t *testing.T) {
	net := testNetwork(t, 2)
	sim, err := New(baseConfig(net, 42))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalInfections < 20 {
		t.Fatalf("epidemic did not spread: %d infections (n=%d)", res.TotalInfections, net.NumNodes())
	}
	if res.TotalInfections > int64(net.NumNodes()) {
		t.Fatalf("more infections (%d) than people (%d)", res.TotalInfections, net.NumNodes())
	}
}

func TestZeroTransmissibilityNoSpread(t *testing.T) {
	net := testNetwork(t, 3)
	m := disease.COVID19().Clone()
	m.Transmissibility = 0
	cfg := baseConfig(net, 7)
	cfg.Model = m
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalInfections != 0 {
		t.Fatalf("%d infections with zero transmissibility", res.TotalInfections)
	}
}

func TestPopulationConserved(t *testing.T) {
	net := testNetwork(t, 4)
	sim, err := New(baseConfig(net, 11))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	n := int32(net.NumNodes())
	for d := range res.Current {
		var sum int32
		for _, c := range res.Current[d] {
			sum += c
		}
		if sum != n {
			t.Fatalf("day %d: population %d want %d", d, sum, n)
		}
	}
}

func TestDeterministicSameSeed(t *testing.T) {
	net := testNetwork(t, 5)
	run := func() *Result {
		sim, err := New(baseConfig(net, 99))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TotalInfections != b.TotalInfections {
		t.Fatalf("same seed differs: %d vs %d", a.TotalInfections, b.TotalInfections)
	}
	for d := range a.Daily {
		if a.Daily[d] != b.Daily[d] {
			t.Fatalf("day %d differs", d)
		}
	}
}

// The headline reproducibility property: results are bit-identical across
// different processing-unit counts (our MPI-rank stand-in).
func TestDeterministicAcrossParallelism(t *testing.T) {
	net := testNetwork(t, 6)
	var results []*Result
	for _, p := range []int{1, 2, 4, 8} {
		cfg := baseConfig(net, 1234)
		cfg.Parallelism = p
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		if results[i].TotalInfections != results[0].TotalInfections {
			t.Fatalf("parallelism changed outcome: %d vs %d infections",
				results[i].TotalInfections, results[0].TotalInfections)
		}
		for d := range results[0].Daily {
			if results[i].Daily[d] != results[0].Daily[d] {
				t.Fatalf("parallelism changed day %d", d)
			}
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	net := testNetwork(t, 7)
	outcomes := map[int64]bool{}
	for seed := uint64(0); seed < 4; seed++ {
		sim, err := New(baseConfig(net, seed))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		outcomes[res.TotalInfections] = true
	}
	if len(outcomes) < 2 {
		t.Fatal("different seeds all gave identical infection counts")
	}
}

func TestDelayedSeeding(t *testing.T) {
	net := testNetwork(t, 8)
	cfg := baseConfig(net, 13)
	cfg.Seeds = []Seeding{{CountyFIPS: cfg.Seeds[0].CountyFIPS, Day: 10, Count: 5}}
	cfg.Days = 20
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 10; d++ {
		if res.Daily[d][disease.Exposed] != 0 {
			t.Fatalf("exposure on day %d before delayed seeding", d)
		}
	}
	if res.Daily[10][disease.Exposed] == 0 {
		t.Fatal("delayed seeding did not fire on day 10")
	}
}

func TestRecorderStreamConsistent(t *testing.T) {
	net := testNetwork(t, 9)
	type rec struct {
		tick     int
		pid      int32
		from, to disease.State
		infector int32
	}
	var log []rec
	cfg := baseConfig(net, 21)
	cfg.Recorder = RecorderFunc(func(tick int, pid int32, from, to disease.State, infector int32) {
		log = append(log, rec{tick, pid, from, to, infector})
	})
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Ticks must be non-decreasing; transmissions must name an infector
	// except for seeded cases; per-day counts must match the summary.
	daily := make([][disease.NumStates]int32, cfg.Days)
	prevTick := 0
	transmissions := int64(0)
	for _, e := range log {
		if e.tick < prevTick {
			t.Fatalf("ticks out of order: %d after %d", e.tick, prevTick)
		}
		prevTick = e.tick
		daily[e.tick][e.to]++
		if e.to == disease.Exposed {
			if e.infector != NoInfector {
				transmissions++
			}
		} else if e.infector != NoInfector {
			t.Fatalf("non-transmission event has infector: %+v", e)
		}
	}
	for d := range daily {
		if daily[d] != res.Daily[d] {
			t.Fatalf("day %d recorder/summary mismatch", d)
		}
	}
	if transmissions != res.TotalInfections {
		t.Fatalf("recorder transmissions %d vs result %d", transmissions, res.TotalInfections)
	}
}

func TestInfectorWasInfectious(t *testing.T) {
	net := testNetwork(t, 10)
	m := disease.COVID19()
	// Transmission uses start-of-tick states (synchronous update), so an
	// infector may progress out of infectiousness in the same tick its
	// transmission lands; track both the current and previous state.
	state := make([]disease.State, net.NumNodes())
	prev := make([]disease.State, net.NumNodes())
	changed := make([]int, net.NumNodes())
	for i := range changed {
		changed[i] = -1
	}
	cfg := baseConfig(net, 31)
	cfg.Recorder = RecorderFunc(func(tick int, pid int32, from, to disease.State, infector int32) {
		if infector != NoInfector {
			okNow := m.IsInfectious(state[infector])
			okStart := changed[infector] == tick && m.IsInfectious(prev[infector])
			if !okNow && !okStart {
				t.Errorf("tick %d: infector %d in state %v (prev %v)", tick, infector, state[infector], prev[infector])
			}
		}
		prev[pid] = state[pid]
		state[pid] = to
		changed[pid] = tick
	})
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDBBackedSeeding(t *testing.T) {
	net := testNetwork(t, 11)
	db, err := popdb.NewServer("VA", net.Persons, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(net, 41)
	cfg.DB = db
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalInfections == 0 {
		t.Fatal("DB-backed run produced no epidemic")
	}
	if db.Stats().Queries == 0 {
		t.Fatal("population DB was not queried")
	}
	if db.Stats().Open != 0 {
		t.Fatal("connection leaked")
	}
}

func TestMemoryTraceRecorded(t *testing.T) {
	net := testNetwork(t, 12)
	cfg := baseConfig(net, 51)
	sh := &StayAtHome{StartDay: 10, EndDay: 40, Compliance: 0.7}
	cfg.Interventions = []Intervention{sh}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	trace := sim.MemoryTrace()
	if len(trace) != cfg.Days {
		t.Fatalf("trace length %d want %d", len(trace), cfg.Days)
	}
	if trace[11] <= trace[5] {
		t.Fatalf("memory did not grow at SH start: %d vs %d", trace[11], trace[5])
	}
	if res.PeakMemoryBytes < trace[0] {
		t.Fatal("peak memory below baseline")
	}
}

func TestRunReplicatesEnsemble(t *testing.T) {
	net := testNetwork(t, 13)
	cfg := baseConfig(net, 61)
	cfg.Days = 40
	results, err := RunReplicates(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("%d results", len(results))
	}
	distinct := map[int64]bool{}
	for _, r := range results {
		distinct[r.TotalInfections] = true
	}
	if len(distinct) < 2 {
		t.Fatal("replicates not stochastic")
	}
	qs := EnsembleQuantiles(results, disease.Symptomatic, 0.025, 0.5, 0.975)
	for d := 0; d < cfg.Days; d++ {
		if qs[0][d] > qs[1][d] || qs[1][d] > qs[2][d] {
			t.Fatalf("quantiles not ordered on day %d: %v %v %v", d, qs[0][d], qs[1][d], qs[2][d])
		}
	}
	for d := 1; d < cfg.Days; d++ {
		if qs[1][d] < qs[1][d-1] {
			t.Fatal("median cumulative series decreased")
		}
	}
}

// Stateful interventions require the factory for parallel replicates; the
// results must be identical to the sequential shared-stack path.
func TestRunReplicatesInterventionFactory(t *testing.T) {
	net := testNetwork(t, 15)
	mk := func() []Intervention {
		return []Intervention{
			&StayAtHome{StartDay: 10, EndDay: 30, Compliance: 0.6},
			&VoluntaryHomeIsolation{Compliance: 0.5, IsolationDays: 14},
		}
	}
	cfg := baseConfig(net, 81)
	cfg.Days = 40
	cfg.InterventionsFactory = mk
	parallel, err := RunReplicates(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential path: shared stack, no factory. Stateful interventions
	// are reset at their StartDay, so sequential reuse is well-defined.
	cfg2 := baseConfig(net, 81)
	cfg2.Days = 40
	cfg2.Interventions = mk()
	sequential, err := RunReplicates(cfg2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for rep := range parallel {
		if parallel[rep].TotalInfections != sequential[rep].TotalInfections {
			t.Fatalf("replicate %d: factory %d vs shared %d infections",
				rep, parallel[rep].TotalInfections, sequential[rep].TotalInfections)
		}
	}
}

func TestEnsembleQuantilesEmpty(t *testing.T) {
	if EnsembleQuantiles(nil, disease.Symptomatic, 0.5) != nil {
		t.Fatal("empty ensemble should be nil")
	}
}

func TestAttackRate(t *testing.T) {
	r := &Result{TotalInfections: 50}
	if Attack(r, 200) != 0.25 {
		t.Fatal("attack rate wrong")
	}
	if Attack(r, 0) != 0 {
		t.Fatal("zero population attack should be 0")
	}
}

func TestVarsAndTriggered(t *testing.T) {
	net := testNetwork(t, 14)
	cfg := baseConfig(net, 71)
	fired := -1
	cfg.Interventions = []Intervention{
		&Triggered{
			Label: "threshold",
			When:  PrevalenceAbove(disease.Symptomatic, 0.01),
			Do: func(s *Sim, day int, r *stats.RNG) {
				if fired < 0 {
					fired = day
					s.Vars["fired"] = float64(day)
				}
			},
		},
	}
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if fired < 0 {
		t.Skip("epidemic never crossed 1% symptomatic in this draw")
	}
	if sim.Vars["fired"] != float64(fired) {
		t.Fatal("user-defined variable not persisted")
	}
	if fired == 0 {
		t.Fatal("trigger fired before any spread")
	}
}

func TestOnDayTrigger(t *testing.T) {
	if !OnDay(5)(nil, 5) || OnDay(5)(nil, 4) {
		t.Fatal("OnDay trigger wrong")
	}
}
