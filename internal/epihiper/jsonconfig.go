package epihiper

import (
	"encoding/json"
	"fmt"

	"repro/internal/disease"
	"repro/internal/synthpop"
)

// This file implements the JSON form of a simulation configuration — the
// "model configurations" the workflows generate as cells and ship to the
// remote cluster: disease parameters, initializations (seedings), the
// horizon, and the intervention stack. The contact network is referenced by
// region, not embedded (the paper keeps networks out of the JSON for size).

// JSONConfig is the serializable simulation configuration.
type JSONConfig struct {
	Region      string `json:"region"`
	Days        int    `json:"days"`
	Parallelism int    `json:"parallelism,omitempty"`
	// Shards is the shard count of the shard-owned engine; it supersedes
	// Parallelism (the legacy spelling of the same knob) when both are
	// set. Results are bit-identical at any value — this is an execution
	// hint, not part of the scenario's identity.
	Shards             int                `json:"shards,omitempty"`
	PartitionTolerance float64            `json:"partitionTolerance,omitempty"`
	Seed               uint64             `json:"seed"`
	Model              *disease.Model     `json:"model,omitempty"`
	Seeds              []Seeding          `json:"seeds,omitempty"`
	SeedPersons        []int32            `json:"seedPersons,omitempty"`
	Interventions      []InterventionSpec `json:"interventions,omitempty"`
}

// InterventionSpec is the typed JSON form of one intervention.
type InterventionSpec struct {
	Type            string  `json:"type"` // VHI | SC | SH | RO | TA | PS | D1CT | D2CT | MASKS
	StartDay        int     `json:"startDay,omitempty"`
	EndDay          int     `json:"endDay,omitempty"`
	Compliance      float64 `json:"compliance,omitempty"`
	IsolationDays   int     `json:"isolationDays,omitempty"`
	Level           float64 `json:"level,omitempty"`           // RO release fraction
	ReopenDay       int     `json:"reopenDay,omitempty"`       // RO
	PeriodDays      int     `json:"periodDays,omitempty"`      // PS
	DetectProb      float64 `json:"detectProb,omitempty"`      // TA / CT
	TraceCompliance float64 `json:"traceCompliance,omitempty"` // CT
	WeightFactor    float64 `json:"weightFactor,omitempty"`    // MASKS
}

// BuildInterventions materializes the intervention stack. An RO spec
// attaches to the most recent SH spec before it, mirroring "RO (partial
// reopening), which extends SH".
func BuildInterventions(specs []InterventionSpec) ([]Intervention, error) {
	var out []Intervention
	var lastSH *StayAtHome
	for i, sp := range specs {
		switch sp.Type {
		case "VHI":
			out = append(out, &VoluntaryHomeIsolation{
				Compliance: sp.Compliance, IsolationDays: sp.IsolationDays,
			})
		case "SC":
			out = append(out, &SchoolClosure{StartDay: sp.StartDay, EndDay: sp.EndDay})
		case "SH":
			sh := &StayAtHome{StartDay: sp.StartDay, EndDay: sp.EndDay, Compliance: sp.Compliance}
			lastSH = sh
			out = append(out, sh)
		case "RO":
			if lastSH == nil {
				return nil, fmt.Errorf("epihiper: RO spec %d has no preceding SH", i)
			}
			out = append(out, &PartialReopen{SH: lastSH, ReopenDay: sp.ReopenDay, Level: sp.Level})
		case "TA":
			out = append(out, &TestAndIsolate{DailyDetectRate: sp.DetectProb, IsolationDays: sp.IsolationDays})
		case "PS":
			out = append(out, &PulsingShutdown{
				StartDay: sp.StartDay, EndDay: sp.EndDay,
				PeriodDays: sp.PeriodDays, Compliance: sp.Compliance,
			})
		case "MASKS":
			out = append(out, &MaskMandate{
				StartDay: sp.StartDay, EndDay: sp.EndDay, WeightFactor: sp.WeightFactor,
			})
		case "D1CT", "D2CT":
			dist := 1
			if sp.Type == "D2CT" {
				dist = 2
			}
			out = append(out, &ContactTracing{
				Distance: dist, DetectProb: sp.DetectProb,
				TraceCompliance: sp.TraceCompliance, IsolationDays: sp.IsolationDays,
			})
		default:
			return nil, fmt.Errorf("epihiper: unknown intervention type %q", sp.Type)
		}
	}
	return out, nil
}

// ParseJSONConfig decodes and validates a serialized configuration.
func ParseJSONConfig(data []byte) (*JSONConfig, error) {
	var cfg JSONConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("epihiper: parsing config: %w", err)
	}
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("epihiper: config needs a positive horizon, got %d", cfg.Days)
	}
	if cfg.Region == "" {
		return nil, fmt.Errorf("epihiper: config needs a region")
	}
	if _, err := BuildInterventions(cfg.Interventions); err != nil {
		return nil, err
	}
	return &cfg, nil
}

// Build assembles a runnable Config against a materialized network. When
// the JSON embeds no model, the CDC COVID-19 model is used.
func (c *JSONConfig) Build(net *synthpop.Network) (Config, error) {
	if net == nil {
		return Config{}, fmt.Errorf("epihiper: nil network")
	}
	if net.Region != c.Region {
		return Config{}, fmt.Errorf("epihiper: config is for %s but network is %s", c.Region, net.Region)
	}
	model := c.Model
	if model == nil {
		model = disease.COVID19()
	}
	ivs, err := BuildInterventions(c.Interventions)
	if err != nil {
		return Config{}, err
	}
	par := c.Parallelism
	if c.Shards > 0 {
		par = c.Shards
	}
	return Config{
		Model:              model,
		Network:            net,
		Days:               c.Days,
		Parallelism:        par,
		PartitionTolerance: c.PartitionTolerance,
		Seed:               c.Seed,
		Seeds:              c.Seeds,
		SeedPersons:        c.SeedPersons,
		Interventions:      ivs,
	}, nil
}

// Encode serializes the configuration.
func (c *JSONConfig) Encode() ([]byte, error) {
	return json.MarshalIndent(c, "", "  ")
}
