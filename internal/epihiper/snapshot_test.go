package epihiper

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/disease"
	"repro/internal/synthpop"
)

// This file gates the snapshot subsystem on one obligation: branching a run
// from a checkpoint must be bit-identical to running the same configuration
// from scratch — the transition stream, the daily summaries, the cumulative
// counters and the final per-person state all included. The what-if fan-out
// in internal/core shares simulated prefixes through these snapshots, so any
// state the codec loses would silently skew every counter-factual forecast.

// smallNetwork builds a ~400-person VA network cheap enough for many
// randomized trials.
func smallNetwork(t testing.TB) *synthpop.Network {
	t.Helper()
	va, err := synthpop.StateByCode("VA")
	if err != nil {
		t.Fatal(err)
	}
	cfg := synthpop.DefaultConfig(777)
	cfg.Scale = 20000
	net, err := synthpop.Generate(va, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// randomStack samples an intervention stack from the full snapshotable
// repertoire: stateful compliance sets (SH, PS), pending-isolation
// schedulers (TA), TodayEvents readers (VHI, CT), global-context togglers
// (SC, weekend), mask weights and a Vars/nodeTraits-writing ensemble.
func randomStack(r *rand.Rand, days int) []Intervention {
	var ivs []Intervention
	if r.Intn(2) == 0 {
		ivs = append(ivs, &WeekendSchedule{SundayReligion: r.Intn(2) == 0})
	}
	if r.Intn(2) == 0 {
		start := 1 + r.Intn(days/2)
		ivs = append(ivs, &SchoolClosure{StartDay: start, EndDay: start + 5 + r.Intn(days)})
	}
	if r.Intn(2) == 0 {
		start := 1 + r.Intn(days/2)
		ivs = append(ivs, &StayAtHome{StartDay: start, EndDay: start + 5 + r.Intn(days), Compliance: 0.2 + 0.6*r.Float64()})
	}
	if r.Intn(2) == 0 {
		ivs = append(ivs, &VoluntaryHomeIsolation{Compliance: 0.2 + 0.6*r.Float64(), IsolationDays: 5 + r.Intn(10)})
	}
	if r.Intn(2) == 0 {
		ivs = append(ivs, &TestAndIsolate{DailyDetectRate: 0.05 + 0.2*r.Float64(), IsolationDays: 5 + r.Intn(10)})
	}
	if r.Intn(2) == 0 {
		start := 1 + r.Intn(days/2)
		ivs = append(ivs, &PulsingShutdown{StartDay: start, EndDay: days - 1, PeriodDays: 3 + r.Intn(10), Compliance: 0.2 + 0.5*r.Float64()})
	}
	if r.Intn(2) == 0 {
		ivs = append(ivs, &ContactTracing{Distance: 1 + r.Intn(2), DetectProb: 0.1 + 0.4*r.Float64(), TraceCompliance: 0.5, IsolationDays: 7})
	}
	if r.Intn(2) == 0 {
		start := 1 + r.Intn(days/2)
		ivs = append(ivs, &MaskMandate{StartDay: start, EndDay: days, WeightFactor: 0.5 + 0.4*r.Float64()})
	}
	if r.Intn(2) == 0 {
		fire := 1 + r.Intn(days-1)
		ivs = append(ivs, &EnsembleIntervention{
			Label:   "traits",
			Trigger: OnDay(fire),
			Ensemble: ActionEnsemble{
				Once:       func(s *Sim, day int) { s.Vars["alert_day"] = float64(day) },
				SampleFrac: 0.3,
				Sampled:    OpSetTrait("priority", 1),
				Remainder:  OpScaleInfectivity(0.9),
			},
		})
	}
	return ivs
}

// snapCfg assembles a config over the small network.
func snapCfg(net *synthpop.Network, days, par int, seed uint64, ivs []Intervention, rec Recorder) Config {
	return Config{
		Model:         disease.COVID19(),
		Network:       net,
		Days:          days,
		Parallelism:   par,
		Seed:          seed,
		Seeds:         seedAll(net, 6),
		Interventions: ivs,
		Recorder:      rec,
	}
}

// requireFinalStateEqual compares every piece of simulation state the
// epidemiological output contract depends on.
func requireFinalStateEqual(t *testing.T, want, got *Sim) {
	t.Helper()
	if !reflect.DeepEqual(want.health, got.health) {
		t.Error("final health states differ")
	}
	if !reflect.DeepEqual(want.isolatedUntil, got.isolatedUntil) {
		t.Error("isolation deadlines differ")
	}
	if !reflect.DeepEqual(want.Vars, got.Vars) {
		t.Errorf("Vars differ: want %v, got %v", want.Vars, got.Vars)
	}
	if !reflect.DeepEqual(want.nodeTraits, got.nodeTraits) {
		t.Error("node traits differ")
	}
	if want.cumByState != got.cumByState {
		t.Errorf("cumulative counters differ: want %v, got %v", want.cumByState, got.cumByState)
	}
	if want.currentByState != got.currentByState {
		t.Errorf("occupancy counters differ: want %v, got %v", want.currentByState, got.currentByState)
	}
	if want.ivRNG.State() != got.ivRNG.State() {
		t.Error("intervention RNG positions differ")
	}
}

// TestSnapshotEquivalenceProperty is the randomized equivalence gate:
// for random horizons, seeds, parallelism, pivot ticks and intervention
// stacks, Snapshot at the pivot + Restore into a fresh sim + run-to-end
// must reproduce the from-scratch run bit for bit — the same transition
// stream (prefix + suffix folded into one hash), the same Result digest
// and the same final state.
func TestSnapshotEquivalenceProperty(t *testing.T) {
	net := smallNetwork(t)
	trials := 10
	if testing.Short() {
		trials = 3
	}
	root := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < trials; trial++ {
		trialSeed := root.Int63()
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			r := rand.New(rand.NewSource(trialSeed))
			days := 25 + r.Intn(26)
			pivot := 1 + r.Intn(days-1)
			simSeed := r.Uint64()
			par := 1 + 3*r.Intn(2) // 1 or 4
			// The restored branch runs at an independently drawn shard
			// count: snapshots are canonical-node-order and must cross
			// shard layouts freely.
			parB := []int{1, 2, 4, 8}[r.Intn(4)]
			stackSeed := r.Int63()
			mkStack := func() []Intervention {
				return randomStack(rand.New(rand.NewSource(stackSeed)), days)
			}

			recRef := newHashingRecorder()
			simRef, err := New(snapCfg(net, days, par, simSeed, mkStack(), recRef))
			if err != nil {
				t.Fatal(err)
			}
			resRef, err := simRef.Run()
			if err != nil {
				t.Fatal(err)
			}

			recSplit := newHashingRecorder()
			simA, err := New(snapCfg(net, days, par, simSeed, mkStack(), recSplit))
			if err != nil {
				t.Fatal(err)
			}
			preRes, err := simA.RunPrefix(pivot)
			if err != nil {
				t.Fatal(err)
			}
			snap, err := simA.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			simB, err := NewFromSnapshot(snapCfg(net, days, parB, simSeed, mkStack(), recSplit), snap)
			if err != nil {
				t.Fatal(err)
			}
			if simB.RanTo() != pivot {
				t.Fatalf("restored sim at day %d, want %d", simB.RanTo(), pivot)
			}
			resSplit, err := simB.RunSuffix(preRes)
			if err != nil {
				t.Fatal(err)
			}

			if recRef.count == 0 {
				t.Fatalf("days=%d pivot=%d: reference run produced no events; the trial is vacuous", days, pivot)
			}
			if recRef.h != recSplit.h || recRef.count != recSplit.count {
				t.Errorf("days=%d pivot=%d par=%d→%d: transition streams differ: scratch %d events hash %#x, branched %d events hash %#x",
					days, pivot, par, parB, recRef.count, recRef.h, recSplit.count, recSplit.h)
			}
			if dRef, dSplit := resultDigest(resRef), resultDigest(resSplit); dRef != dSplit {
				t.Errorf("days=%d pivot=%d par=%d→%d: result digests differ: scratch %#x, branched %#x",
					days, pivot, par, parB, dRef, dSplit)
			}
			requireFinalStateEqual(t, simRef, simB)
		})
	}
}

// TestSnapshotBranchMatchesSwap pins the two branch mechanics against each
// other: restoring a checkpoint under a different intervention stack must
// equal running the original stack to the pivot and swapping the stack
// in-place. The what-if workflow uses the first as its shared path and the
// second as its from-scratch oracle, so they must never diverge.
func TestSnapshotBranchMatchesSwap(t *testing.T) {
	net := smallNetwork(t)
	const days, pivot = 50, 20
	baseStack := func() []Intervention {
		return append(BaseCaseInterventions(10, days, 0.3, 0.4),
			&TestAndIsolate{DailyDetectRate: 0.1, IsolationDays: 7})
	}
	branchStack := func() []Intervention {
		return append(BaseCaseInterventions(10, 30, 0.3, 0.4),
			&MaskMandate{StartDay: pivot, EndDay: days, WeightFactor: 0.7},
			&ContactTracing{Distance: 1, DetectProb: 0.3, TraceCompliance: 0.6, IsolationDays: 7})
	}

	recSnap := newHashingRecorder()
	simA, err := New(snapCfg(net, days, 2, 99, baseStack(), recSnap))
	if err != nil {
		t.Fatal(err)
	}
	preA, err := simA.RunPrefix(pivot)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := simA.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	simB, err := NewFromSnapshot(snapCfg(net, days, 2, 99, branchStack(), recSnap), snap)
	if err != nil {
		t.Fatal(err)
	}
	resSnap, err := simB.RunSuffix(preA)
	if err != nil {
		t.Fatal(err)
	}

	recSwap := newHashingRecorder()
	sim2, err := New(snapCfg(net, days, 2, 99, baseStack(), recSwap))
	if err != nil {
		t.Fatal(err)
	}
	pre2, err := sim2.RunPrefix(pivot)
	if err != nil {
		t.Fatal(err)
	}
	sim2.SwapInterventions(branchStack())
	resSwap, err := sim2.RunSuffix(pre2)
	if err != nil {
		t.Fatal(err)
	}

	if recSnap.h != recSwap.h || recSnap.count != recSwap.count {
		t.Errorf("transition streams differ: snapshot-branch %d events hash %#x, swap %d events hash %#x",
			recSnap.count, recSnap.h, recSwap.count, recSwap.h)
	}
	if dSnap, dSwap := resultDigest(resSnap), resultDigest(resSwap); dSnap != dSwap {
		t.Errorf("result digests differ: snapshot-branch %#x, swap %#x", dSnap, dSwap)
	}
	requireFinalStateEqual(t, sim2, simB)
}

// TestSnapshotCarriesPendingIsolations regresses a deep-copy hazard: an
// isolation scheduled for a post-pivot day (TestAndIsolate's 1–3 day test
// turnaround) must survive the snapshot round-trip, or branched runs
// silently drop in-flight test results.
func TestSnapshotCarriesPendingIsolations(t *testing.T) {
	net := smallNetwork(t)
	const days, pivot, pid = 30, 5, 7

	recRef := newHashingRecorder()
	simRef, err := New(snapCfg(net, days, 1, 4242, nil, recRef))
	if err != nil {
		t.Fatal(err)
	}
	simRef.ScheduleIsolate(8, pid, 40)
	if _, err := simRef.Run(); err != nil {
		t.Fatal(err)
	}

	recSplit := newHashingRecorder()
	simA, err := New(snapCfg(net, days, 1, 4242, nil, recSplit))
	if err != nil {
		t.Fatal(err)
	}
	simA.ScheduleIsolate(8, pid, 40)
	pre, err := simA.RunPrefix(pivot)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := simA.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	simB, err := NewFromSnapshot(snapCfg(net, days, 1, 4242, nil, recSplit), snap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := simB.RunSuffix(pre); err != nil {
		t.Fatal(err)
	}
	if simB.isolatedUntil[pid] != 40 {
		t.Errorf("pending isolation lost: person %d isolated until %d, want 40", pid, simB.isolatedUntil[pid])
	}
	if recRef.h != recSplit.h {
		t.Errorf("streams differ: scratch %#x, branched %#x", recRef.h, recSplit.h)
	}
	requireFinalStateEqual(t, simRef, simB)
}

// TestSnapshotCarriesScaleHW regresses the propensity-bound high-watermark:
// scaleHW remembers every infectivity scale ever set (the rejection bound
// must stay an upper bound), so a restore that recomputed it from current
// scales would change kernel rejection behavior.
func TestSnapshotCarriesScaleHW(t *testing.T) {
	net := smallNetwork(t)
	sim, err := New(snapCfg(net, 20, 1, 7, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	sim.SetInfectivity(3, 5.0)
	sim.SetInfectivity(3, 1.0) // watermark must remember the 5.0
	snap, err := sim.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := NewFromSnapshot(snapCfg(net, 20, 1, 7, nil, nil), snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.scaleHW != sim.scaleHW {
		t.Errorf("scale high-watermark lost: got %g, want %g", restored.scaleHW, sim.scaleHW)
	}
	if restored.scaleHW < 5.0 {
		t.Errorf("watermark %g below historic max 5.0", restored.scaleHW)
	}
}

// TestSnapshotDayZeroBranch pins the earliest possible pivot: a snapshot
// taken right after construction still carries the day-0 seeding events in
// todayEvents, so event-driven interventions (VHI, contact tracing) see
// them on the branch's first tick exactly as a from-scratch run would.
func TestSnapshotDayZeroBranch(t *testing.T) {
	net := smallNetwork(t)
	const days = 30
	stack := func() []Intervention {
		return []Intervention{
			&VoluntaryHomeIsolation{Compliance: 0.6, IsolationDays: 10},
			&ContactTracing{Distance: 1, DetectProb: 0.4, TraceCompliance: 0.7, IsolationDays: 7},
		}
	}

	recRef := newHashingRecorder()
	simRef, err := New(snapCfg(net, days, 1, 2024, stack(), recRef))
	if err != nil {
		t.Fatal(err)
	}
	resRef, err := simRef.Run()
	if err != nil {
		t.Fatal(err)
	}

	recSplit := newHashingRecorder()
	simA, err := New(snapCfg(net, days, 1, 2024, stack(), recSplit))
	if err != nil {
		t.Fatal(err)
	}
	pre, err := simA.RunPrefix(0)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := simA.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	simB, err := NewFromSnapshot(snapCfg(net, days, 1, 2024, stack(), recSplit), snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(simB.todayEvents) == 0 {
		t.Error("day-0 seeding events lost in snapshot round-trip")
	}
	resSplit, err := simB.RunSuffix(pre)
	if err != nil {
		t.Fatal(err)
	}
	if recRef.h != recSplit.h || resultDigest(resRef) != resultDigest(resSplit) {
		t.Error("day-0 branch diverges from scratch run")
	}
}

// TestSnapshotRejectsOpaqueScheduled: a closure queued via Schedule cannot
// be serialized; Snapshot must refuse rather than drop it.
func TestSnapshotRejectsOpaqueScheduled(t *testing.T) {
	net := smallNetwork(t)
	sim, err := New(snapCfg(net, 20, 1, 1, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	sim.Schedule(5, func(s *Sim) {})
	if _, err := sim.Snapshot(); err == nil {
		t.Error("Snapshot succeeded with a pending opaque scheduled action")
	}
}

// TestRestoreRejectsCorruption: every malformed input must produce an
// error, never a silently wrong sim.
func TestRestoreRejectsCorruption(t *testing.T) {
	net := smallNetwork(t)
	mk := func() *Sim {
		sim, err := New(snapCfg(net, 20, 1, 55, nil, nil))
		if err != nil {
			t.Fatal(err)
		}
		return sim
	}
	sim := mk()
	if _, err := sim.RunPrefix(5); err != nil {
		t.Fatal(err)
	}
	snap, err := sim.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"empty":     {},
		"short":     snap[:8],
		"truncated": snap[:len(snap)-9],
		"bad magic": append([]byte("XXSNAP"), snap[6:]...),
	}
	flipped := append([]byte(nil), snap...)
	flipped[len(flipped)/2] ^= 0xFF
	cases["bit flip"] = flipped
	trailing := append(append([]byte(nil), snap...), 0xAB)
	cases["trailing bytes"] = trailing

	for name, data := range cases {
		if err := mk().Restore(data); err == nil {
			t.Errorf("%s: Restore accepted corrupt snapshot", name)
		}
	}

	// A snapshot from a different network must be refused by node count.
	va, _ := synthpop.StateByCode("VA")
	ocfg := synthpop.DefaultConfig(777)
	ocfg.Scale = 40000
	other, err := synthpop.Generate(va, ocfg)
	if err != nil {
		t.Fatal(err)
	}
	osim, err := New(snapCfg(other, 20, 1, 55, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := osim.Restore(snap); err == nil {
		t.Error("Restore accepted a snapshot from a different network")
	}
}

// TestSwapInterventionsTransfersState: the by-name handover must move a
// StayAtHome compliant set into the replacement stack — otherwise the
// branch re-samples compliance and rewrites pre-pivot history.
func TestSwapInterventionsTransfersState(t *testing.T) {
	net := smallNetwork(t)
	sh := &StayAtHome{StartDay: 3, EndDay: 40, Compliance: 0.5}
	sim, err := New(snapCfg(net, 20, 1, 11, []Intervention{sh}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunPrefix(10); err != nil {
		t.Fatal(err)
	}
	if len(sh.Compliant()) == 0 {
		t.Fatal("no compliant persons sampled; test needs a live SH order")
	}
	replacement := &StayAtHome{StartDay: 3, EndDay: 60, Compliance: 0.5}
	sim.SwapInterventions([]Intervention{replacement})
	if !reflect.DeepEqual(sh.Compliant(), replacement.Compliant()) {
		t.Error("compliant set not transferred to the replacement stack")
	}
}

// FuzzSnapshotRoundTrip: arbitrary bytes fed to Restore — into a sim at an
// arbitrary shard count — must either load cleanly or error: never panic,
// never OOM. A successfully restored snapshot must re-serialize, and the
// re-serialization must be byte-identical regardless of the restoring
// sim's shard count (EPSNAP is canonical node order, never shard layout).
func FuzzSnapshotRoundTrip(f *testing.F) {
	net := smallNetwork(f)
	sim, err := New(snapCfg(net, 20, 1, 33, BaseCaseInterventions(5, 15, 0.3, 0.4), nil))
	if err != nil {
		f.Fatal(err)
	}
	if _, err := sim.RunPrefix(10); err != nil {
		f.Fatal(err)
	}
	snap, err := sim.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(snap, uint8(1))
	f.Add(snap, uint8(4))
	f.Add(snap, uint8(8))
	f.Add(snap[:len(snap)-5], uint8(2))
	f.Add([]byte(snapMagic), uint8(3))
	f.Add([]byte{}, uint8(0))

	f.Fuzz(func(t *testing.T, data []byte, shardByte uint8) {
		shards := 1 + int(shardByte%8)
		s, err := newSim(snapCfg(net, 20, shards, 33, BaseCaseInterventions(5, 15, 0.3, 0.4), nil))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Restore(data); err != nil {
			return // rejected: fine
		}
		out, err := s.Snapshot()
		if err != nil {
			t.Fatalf("restored snapshot does not re-serialize: %v", err)
		}
		s1, err := newSim(snapCfg(net, 20, 1, 33, BaseCaseInterventions(5, 15, 0.3, 0.4), nil))
		if err != nil {
			t.Fatal(err)
		}
		if err := s1.Restore(data); err != nil {
			t.Fatalf("snapshot restores at %d shards but not at 1: %v", shards, err)
		}
		out1, err := s1.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, out1) {
			t.Fatalf("re-serialization differs between %d shards and 1 shard", shards)
		}
	})
}
