package epihiper

import (
	"fmt"
	"hash/fnv"
	"reflect"
	"testing"

	"repro/internal/disease"
	"repro/internal/synthpop"
)

// This file pins the simulator's determinism guarantees:
//
//  1. Results are bit-for-bit independent of the Parallelism setting
//     (the number of processing units / partitions), because every
//     stochastic decision draws from an RNG keyed on (seed, node, tick,
//     phase), never on a worker-local stream.
//  2. The kernel's output for fixed seeds is pinned against golden
//     hashes captured from the pre-CSR reference implementation, so a
//     hot-path refactor that changes any output bit fails loudly.

// goldenNetwork builds the mid-scale VA network (~4.3k persons) used by
// the determinism and golden-pin tests.
func goldenNetwork(t testing.TB) *synthpop.Network {
	t.Helper()
	va, err := synthpop.StateByCode("VA")
	if err != nil {
		t.Fatal(err)
	}
	cfg := synthpop.DefaultConfig(777)
	cfg.Scale = 2000
	net, err := synthpop.Generate(va, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// hashingRecorder folds the full transition stream (tick, pid, from, to,
// infector, in emission order) into an FNV-1a hash.
type hashingRecorder struct {
	h     uint64
	count int64
}

func newHashingRecorder() *hashingRecorder {
	return &hashingRecorder{h: 14695981039346656037}
}

func (r *hashingRecorder) Record(tick int, pid int32, from, to disease.State, infector int32) {
	var buf [16]byte
	buf[0] = byte(tick)
	buf[1] = byte(tick >> 8)
	buf[2] = byte(pid)
	buf[3] = byte(pid >> 8)
	buf[4] = byte(pid >> 16)
	buf[5] = byte(pid >> 24)
	buf[6] = byte(from)
	buf[7] = byte(to)
	buf[8] = byte(infector)
	buf[9] = byte(infector >> 8)
	buf[10] = byte(infector >> 16)
	buf[11] = byte(infector >> 24)
	for _, b := range buf[:12] {
		r.h ^= uint64(b)
		r.h *= 1099511628211
	}
	r.count++
}

// resultDigest folds a Result's daily series and totals into an FNV-1a
// hash (memory trace excluded: the modeled-memory account is not part of
// the epidemiological output contract).
func resultDigest(res *Result) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "days=%d total=%d\n", res.Days, res.TotalInfections)
	for d := range res.Daily {
		fmt.Fprintf(h, "%d|%v|%v\n", d, res.Daily[d], res.Current[d])
	}
	return h.Sum64()
}

type goldenCase struct {
	name string
	ivs  func() []Intervention
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{"plain", func() []Intervention { return nil }},
		{"interventions", func() []Intervention {
			// Mild compliance keeps the epidemic alive for the full
			// horizon so the golden run exercises the kernel's mask,
			// context-weight and isolation paths on a live epidemic.
			ivs := BaseCaseInterventions(25, 70, 0.15, 0.2)
			ivs = append(ivs,
				&MaskMandate{StartDay: 35, EndDay: 75, WeightFactor: 0.8},
				&TestAndIsolate{DailyDetectRate: 0.08, IsolationDays: 7},
			)
			return ivs
		}},
	}
}

func runGolden(t testing.TB, net *synthpop.Network, par int, ivs []Intervention) (*Result, *hashingRecorder) {
	t.Helper()
	rec := newHashingRecorder()
	sim, err := New(Config{
		Model:         disease.COVID19(),
		Network:       net,
		Days:          80,
		Parallelism:   par,
		Seed:          12345,
		Seeds:         seedAll(net, 8),
		Interventions: ivs,
		Recorder:      rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, rec
}

// TestDeterminismAcrossParallelism requires the identical Result (daily
// series, occupancy, totals) and the identical recorder stream at every
// shard count in {1, 2, 4, 8} on a mid-scale state network — Parallelism
// is the shard count of the shard-owned engine, so this pins the full
// shard dimension, not just serial-vs-parallel.
func TestDeterminismAcrossParallelism(t *testing.T) {
	net := goldenNetwork(t)
	for _, c := range goldenCases() {
		t.Run(c.name, func(t *testing.T) {
			res1, rec1 := runGolden(t, net, 1, c.ivs())
			for _, shards := range []int{2, 4, 8} {
				resN, recN := runGolden(t, net, shards, c.ivs())
				if rec1.h != recN.h || rec1.count != recN.count {
					t.Errorf("recorder stream differs: P1 %d events hash %#x, P%d %d events hash %#x",
						rec1.count, rec1.h, shards, recN.count, recN.h)
				}
				if res1.TotalInfections != resN.TotalInfections {
					t.Errorf("total infections differ: P1 %d, P%d %d", res1.TotalInfections, shards, resN.TotalInfections)
				}
				if !reflect.DeepEqual(res1.Daily, resN.Daily) || !reflect.DeepEqual(res1.Current, resN.Current) {
					t.Errorf("daily series differ between P1 and P%d", shards)
				}
			}
		})
	}
}

// Golden values captured from the pre-CSR reference kernel (PR 2 tree,
// commit 8ce6920) with the exact configuration of runGolden. The CSR /
// allocation-free kernel must reproduce them bit-for-bit.
var goldenPins = map[string]struct {
	resultHash uint64
	streamHash uint64
	events     int64
	infections int64
}{
	"plain":         {0x90f235fd4241a54f, 0x42fe70828cf8bec9, 14998, 3421},
	"interventions": {0x6a8b060378a19717, 0x448474ae3ee321cb, 9886, 2295},
}

// TestGoldenKernelPin proves a kernel refactor did not change simulation
// output for fixed seeds: the full Result and transition stream are
// hashed and compared against values recorded from the reference
// implementation, at every shard count in {1, 2, 4, 8}.
func TestGoldenKernelPin(t *testing.T) {
	net := goldenNetwork(t)
	for _, c := range goldenCases() {
		pin := goldenPins[c.name]
		for _, par := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%s/par=%d", c.name, par), func(t *testing.T) {
				res, rec := runGolden(t, net, par, c.ivs())
				got := struct {
					resultHash uint64
					streamHash uint64
					events     int64
					infections int64
				}{resultDigest(res), rec.h, rec.count, res.TotalInfections}
				if got != pin {
					t.Errorf("golden mismatch:\n got {resultHash: %#x, streamHash: %#x, events: %d, infections: %d}\nwant {resultHash: %#x, streamHash: %#x, events: %d, infections: %d}",
						got.resultHash, got.streamHash, got.events, got.infections,
						pin.resultHash, pin.streamHash, pin.events, pin.infections)
				}
			})
		}
	}
}
