package epihiper

import (
	"testing"

	"repro/internal/disease"
	"repro/internal/stats"
	"repro/internal/synthpop"
)

func ensembleSim(t *testing.T, ivs []Intervention, days int) (*Sim, *Result) {
	t.Helper()
	net := testNetwork(t, 50)
	cfg := baseConfig(net, 2000)
	cfg.Days = days
	cfg.Interventions = ivs
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return sim, res
}

func TestNodeTraits(t *testing.T) {
	net := testNetwork(t, 51)
	sim, err := New(baseConfig(net, 2100))
	if err != nil {
		t.Fatal(err)
	}
	if sim.NodeTrait("risk", 3) != 0 {
		t.Fatal("unset trait should be 0")
	}
	before := sim.MemoryBytes()
	sim.SetNodeTrait("risk", 3, 0.8)
	if sim.NodeTrait("risk", 3) != 0.8 {
		t.Fatal("trait not stored")
	}
	if sim.NodeTrait("other", 3) != 0 {
		t.Fatal("traits not independent")
	}
	if sim.MemoryBytes() <= before {
		t.Fatal("trait allocation not accounted in memory model")
	}
}

func TestEnsembleOnceAndForEach(t *testing.T) {
	onceCount := 0
	iv := &EnsembleIntervention{
		Label:   "tag-elderly",
		Trigger: OnDay(0),
		Ensemble: ActionEnsemble{
			Target:  TargetAgeBand(disease.Age65Plus),
			Once:    func(s *Sim, day int) { onceCount++ },
			ForEach: OpSetTrait("elderly", 1),
		},
	}
	sim, _ := ensembleSim(t, []Intervention{iv}, 3)
	if onceCount != 1 {
		t.Fatalf("Once ran %d times", onceCount)
	}
	for i := range sim.net.Persons {
		want := 0.0
		if sim.net.Persons[i].AgeGroup() == disease.Age65Plus {
			want = 1
		}
		if sim.NodeTrait("elderly", int32(i)) != want {
			t.Fatalf("person %d trait %v want %v", i, sim.NodeTrait("elderly", int32(i)), want)
		}
	}
}

func TestEnsembleSamplingSplitsTarget(t *testing.T) {
	iv := &EnsembleIntervention{
		Label:   "sample",
		Trigger: OnDay(0),
		Ensemble: ActionEnsemble{
			SampleFrac: 0.5,
			Sampled:    OpSetTrait("group", 1),
			Remainder:  OpSetTrait("group", 2),
		},
	}
	sim, _ := ensembleSim(t, []Intervention{iv}, 2)
	ones, twos := 0, 0
	for pid := int32(0); int(pid) < sim.net.NumNodes(); pid++ {
		switch sim.NodeTrait("group", pid) {
		case 1:
			ones++
		case 2:
			twos++
		default:
			t.Fatalf("person %d in no group", pid)
		}
	}
	n := sim.net.NumNodes()
	if ones == 0 || twos == 0 {
		t.Fatal("sampling degenerate")
	}
	frac := float64(ones) / float64(n)
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("sample fraction %v far from 0.5", frac)
	}
}

func TestEnsembleNestedSampling(t *testing.T) {
	iv := &EnsembleIntervention{
		Label:   "nested",
		Trigger: OnDay(0),
		Ensemble: ActionEnsemble{
			SampleFrac: 0.6,
			Sampled:    OpSetTrait("outer", 1),
			Nested: &ActionEnsemble{
				SampleFrac: 0.5,
				Sampled:    OpSetTrait("inner", 1),
			},
		},
	}
	sim, _ := ensembleSim(t, []Intervention{iv}, 2)
	inner, outer := 0, 0
	for pid := int32(0); int(pid) < sim.net.NumNodes(); pid++ {
		if sim.NodeTrait("inner", pid) == 1 {
			inner++
			if sim.NodeTrait("outer", pid) != 1 {
				t.Fatal("inner sample escaped the outer sample")
			}
		}
		if sim.NodeTrait("outer", pid) == 1 {
			outer++
		}
	}
	if inner == 0 || inner >= outer {
		t.Fatalf("nested sampling wrong: inner %d outer %d", inner, outer)
	}
}

func TestEnsembleDelayedOperation(t *testing.T) {
	iv := &EnsembleIntervention{
		Label:   "delayed-tag",
		Trigger: OnDay(2),
		Ensemble: ActionEnsemble{
			Target:    TargetCounty(topCounty(t)),
			ForEach:   OpSetTrait("tagged", 1),
			DelayDays: 3,
		},
	}
	// Probe trait state per day.
	taggedAt := map[int]bool{}
	probe := &Triggered{
		Label: "probe",
		When:  func(*Sim, int) bool { return true },
		Do: func(s *Sim, day int, r *stats.RNG) {
			county := topCounty(t)
			for i := range s.net.Persons {
				if s.net.Persons[i].CountyFIPS == county {
					taggedAt[day] = s.NodeTrait("tagged", s.net.Persons[i].ID) == 1
					break
				}
			}
		},
	}
	ensembleSim(t, []Intervention{iv, probe}, 8)
	if taggedAt[3] || taggedAt[4] {
		t.Fatal("delayed op ran early")
	}
	if !taggedAt[5] {
		t.Fatal("delayed op never ran (expected day 5 = trigger 2 + delay 3)")
	}
}

// topCounty returns the most populous county of the shared test network.
func topCounty(t *testing.T) int32 {
	t.Helper()
	net := testNetwork(t, 50)
	counts := map[int32]int{}
	for i := range net.Persons {
		counts[net.Persons[i].CountyFIPS]++
	}
	var best int32
	for c, n := range counts {
		if n > counts[best] {
			best = c
		}
	}
	return best
}

// A vaccination campaign expressed as an action ensemble cuts the attack
// rate — the Appendix A "vaccinating nodes (which can be modeled as node
// deletions)".
func TestEnsembleVaccinationCampaign(t *testing.T) {
	attack := func(frac float64) float64 {
		var ivs []Intervention
		if frac > 0 {
			ivs = []Intervention{&EnsembleIntervention{
				Label:   "vaccinate",
				Trigger: OnDay(0),
				Ensemble: ActionEnsemble{
					SampleFrac: frac,
					Sampled:    OpVaccinate(),
				},
			}}
		}
		total := 0.0
		for rep := 0; rep < 3; rep++ {
			net := testNetwork(t, 50)
			cfg := baseConfig(net, 3000+uint64(rep))
			cfg.Days = 90
			cfg.Interventions = ivs
			sim, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run()
			if err != nil {
				t.Fatal(err)
			}
			total += Attack(res, net.NumNodes())
		}
		return total / 3
	}
	base := attack(0)
	vax := attack(0.6)
	if vax >= base {
		t.Fatalf("60%% vaccination did not reduce attack: %v vs %v", vax, base)
	}
	if base > 0.2 && vax > 0.6*base {
		t.Fatalf("vaccination effect too weak: %v vs %v", vax, base)
	}
}

func TestTargetInStateAndTraitAbove(t *testing.T) {
	net := testNetwork(t, 52)
	sim, err := New(baseConfig(net, 2200))
	if err != nil {
		t.Fatal(err)
	}
	// All seeded persons are Exposed at day 0.
	exposed := TargetInState(disease.Exposed)(sim, 0)
	if len(exposed) == 0 {
		t.Fatal("no exposed persons found after seeding")
	}
	for _, pid := range exposed {
		if sim.Health(pid) != disease.Exposed {
			t.Fatal("target selected wrong state")
		}
	}
	sim.SetNodeTrait("score", 5, 2.5)
	hits := TargetTraitAbove("score", 2)(sim, 0)
	if len(hits) != 1 || hits[0] != 5 {
		t.Fatalf("trait target %v want [5]", hits)
	}
}

func TestOpScaleInfectivityAndDisableContext(t *testing.T) {
	net := testNetwork(t, 53)
	sim, err := New(baseConfig(net, 2300))
	if err != nil {
		t.Fatal(err)
	}
	OpScaleInfectivity(0.5)(sim, 0)
	if sim.infectivityScale[0] != 0.5 {
		t.Fatalf("infectivity scale %v", sim.infectivityScale[0])
	}
	OpDisableContext(synthpop.CtxWork)(sim, 0)
	if sim.ctxMask[0]&(1<<uint8(synthpop.CtxWork)) != 0 {
		t.Fatal("work context not disabled")
	}
}
