package epihiper

import (
	"testing"

	"repro/internal/disease"
)

// TestWaningImmunityReinfects exercises the RxFailure path of Table IV:
// with fast-waning immunity, some individuals are infected more than once,
// and the epidemic persists longer than under permanent immunity.
func TestWaningImmunityReinfects(t *testing.T) {
	net := testNetwork(t, 60)
	exposures := map[int32]int{}
	cfg := baseConfig(net, 4000)
	cfg.Days = 200
	cfg.Model = disease.COVID19Waning(25) // fast waning for the test
	cfg.Recorder = RecorderFunc(func(tick int, pid int32, from, to disease.State, infector int32) {
		if to == disease.Exposed {
			exposures[pid]++
		}
	})
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	reinfected := 0
	for _, n := range exposures {
		if n > 1 {
			reinfected++
		}
	}
	if reinfected == 0 {
		t.Fatal("no reinfections despite 25-day waning over 200 days")
	}
	// Reinfections must come from the RxFailure state.
	sawRxFailure := false
	for pid := int32(0); int(pid) < net.NumNodes(); pid++ {
		if sim.Health(pid) == disease.RxFailure {
			sawRxFailure = true
			break
		}
	}
	if !sawRxFailure && reinfected < 2 {
		t.Log("note: all RxFailure individuals were reinfected or recovered by the horizon")
	}
	// More total infections than under permanent immunity.
	cfg2 := baseConfig(net, 4000)
	cfg2.Days = 200
	perm, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	permRes, err := perm.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalInfections <= permRes.TotalInfections {
		t.Fatalf("waning (%d) should exceed permanent immunity (%d)",
			res.TotalInfections, permRes.TotalInfections)
	}
}

func TestWaningModelValidates(t *testing.T) {
	if err := disease.COVID19Waning(0).Validate(); err != nil {
		t.Fatal(err)
	}
	m := disease.COVID19Waning(90)
	if m.IsTerminal(disease.Recovered) {
		t.Fatal("Recovered should wane")
	}
	if !m.IsSusceptible(disease.RxFailure) {
		t.Fatal("RxFailure must be susceptible")
	}
}
