package epihiper

import (
	"testing"

	"repro/internal/disease"
)

// The incremental infectious-neighbor counters must exactly match a
// from-scratch recount after any run — the invariant the transmission
// fast-path depends on.
func TestInfectiousNeighborCountersConsistent(t *testing.T) {
	net := testNetwork(t, 70)
	for _, days := range []int{1, 17, 80} {
		cfg := baseConfig(net, 5000)
		cfg.Days = days
		cfg.Interventions = []Intervention{
			&VoluntaryHomeIsolation{Compliance: 0.5, IsolationDays: 14},
			&ContactTracing{Distance: 1, DetectProb: 0.4, TraceCompliance: 0.5},
		}
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		for pid := int32(0); int(pid) < net.NumNodes(); pid++ {
			var want int32
			for _, e := range net.Adj[pid] {
				if sim.model.IsInfectious(sim.health[e.Neighbor]) {
					want++
				}
			}
			if sim.infNbrCount[pid] != want {
				t.Fatalf("days=%d: counter of %d is %d, recount %d",
					days, pid, sim.infNbrCount[pid], want)
			}
		}
	}
}

// The counters also hold under reinfection dynamics (waning immunity).
func TestInfectiousCountersUnderWaning(t *testing.T) {
	net := testNetwork(t, 71)
	cfg := baseConfig(net, 5100)
	cfg.Days = 150
	cfg.Model = disease.COVID19Waning(25)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for pid := int32(0); int(pid) < net.NumNodes(); pid++ {
		var want int32
		for _, e := range net.Adj[pid] {
			if sim.model.IsInfectious(sim.health[e.Neighbor]) {
				want++
			}
		}
		if sim.infNbrCount[pid] != want {
			t.Fatalf("counter of %d is %d, recount %d", pid, sim.infNbrCount[pid], want)
		}
	}
}
