package epihiper

import (
	"context"
	"testing"
	"time"

	"repro/internal/obs"
)

// Tracing must be a pure observer of the replicate fan-out: the same
// ensemble run with and without a tracer produces identical results, and
// the span stream carries one child per replicate under the fan-out span.
func TestTracedReplicatesBitIdentical(t *testing.T) {
	net := testNetwork(t, 13)
	cfg := baseConfig(net, 61)
	cfg.Days = 40

	plain, err := RunReplicates(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}

	col := obs.NewCollector(nil)
	tr := obs.NewTracer(col, obs.WithClock(obs.FixedClock(time.Unix(0, 0), time.Millisecond)))
	ctx := obs.WithTracer(context.Background(), tr)
	traced, err := RunReplicatesCtx(ctx, cfg, 6)
	if err != nil {
		t.Fatal(err)
	}

	if len(plain) != len(traced) {
		t.Fatalf("%d traced results vs %d plain", len(traced), len(plain))
	}
	for rep := range plain {
		if resultDigest(plain[rep]) != resultDigest(traced[rep]) {
			t.Fatalf("replicate %d diverges under tracing: %d vs %d infections",
				rep, plain[rep].TotalInfections, traced[rep].TotalInfections)
		}
	}

	entries := col.Entries()
	var fanout obs.Entry
	children := 0
	for _, e := range entries {
		if e.Type != obs.EntrySpan {
			continue
		}
		switch e.Name {
		case "epihiper.replicates":
			fanout = e
		case "epihiper.replicate":
			children++
		}
	}
	if fanout.Span == 0 {
		t.Fatal("no epihiper.replicates span")
	}
	if children != 6 {
		t.Fatalf("%d replicate spans, want 6", children)
	}
	for _, e := range entries {
		if e.Type == obs.EntrySpan && e.Name == "epihiper.replicate" && e.Parent != fanout.Span {
			t.Fatalf("replicate span parent %d, want fan-out %d", e.Parent, fanout.Span)
		}
	}
}
