package epihiper

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/disease"
	"repro/internal/obs"
)

// This file gates the shard-owned engine (shard.go): snapshots must be
// shard-count-independent in both directions (taken at A, restored at B),
// the shard layout must respect the bitset-word alignment its no-atomics
// design depends on, replicate fan-outs must honor context cancellation,
// and BenchmarkShardScaling records the scaling curve for BENCH_PR8.json.

// TestSnapshotShardCrossing is the shard × snapshot cross product: a
// checkpoint taken at shard count A must restore and continue bit-
// identically at shard count B — EPSNAP serializes canonical node order,
// never shard layout, so every (A, B) pair reproduces the from-scratch
// reference run: same transition stream, same Result digest, same final
// state.
func TestSnapshotShardCrossing(t *testing.T) {
	net := smallNetwork(t)
	const days, pivot = 40, 17
	stack := func() []Intervention {
		return append(BaseCaseInterventions(8, 30, 0.3, 0.4),
			&TestAndIsolate{DailyDetectRate: 0.1, IsolationDays: 7},
			&MaskMandate{StartDay: 12, EndDay: days, WeightFactor: 0.8})
	}

	recRef := newHashingRecorder()
	simRef, err := New(snapCfg(net, days, 1, 2026, stack(), recRef))
	if err != nil {
		t.Fatal(err)
	}
	resRef, err := simRef.Run()
	if err != nil {
		t.Fatal(err)
	}
	if recRef.count == 0 {
		t.Fatal("reference run produced no events; the fixture is vacuous")
	}
	refDigest := resultDigest(resRef)

	for _, pair := range [][2]int{{1, 4}, {4, 1}, {2, 8}, {8, 2}, {4, 8}, {8, 8}} {
		a, b := pair[0], pair[1]
		t.Run(fmt.Sprintf("snap=%d/restore=%d", a, b), func(t *testing.T) {
			rec := newHashingRecorder()
			simA, err := New(snapCfg(net, days, a, 2026, stack(), rec))
			if err != nil {
				t.Fatal(err)
			}
			pre, err := simA.RunPrefix(pivot)
			if err != nil {
				t.Fatal(err)
			}
			snap, err := simA.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			simB, err := NewFromSnapshot(snapCfg(net, days, b, 2026, stack(), rec), snap)
			if err != nil {
				t.Fatal(err)
			}
			// 64-alignment may merge shards on a ~400-person network
			// (requested counts can exceed the bitset-word supply); the
			// effective count only needs to differ across the pair for
			// the crossing to be exercised.
			if got := simB.ShardCount(); got < 1 || got > b {
				t.Fatalf("restored sim runs %d shards, want 1..%d", got, b)
			}
			res, err := simB.RunSuffix(pre)
			if err != nil {
				t.Fatal(err)
			}
			if rec.h != recRef.h || rec.count != recRef.count {
				t.Errorf("transition stream differs from scratch run: got %d events hash %#x, want %d events hash %#x",
					rec.count, rec.h, recRef.count, recRef.h)
			}
			if d := resultDigest(res); d != refDigest {
				t.Errorf("result digest differs from scratch run: got %#x, want %#x", d, refDigest)
			}
			requireFinalStateEqual(t, simRef, simB)
		})
	}
}

// TestShardLayout pins the structural invariants the no-atomics design
// rests on: shards cover the node range contiguously in ascending order,
// and every boundary except the last falls on a 64-node multiple so no
// effInfBits/riskBits word has two owners.
func TestShardLayout(t *testing.T) {
	net := smallNetwork(t)
	for _, shards := range []int{1, 2, 4, 8} {
		sim, err := New(snapCfg(net, 10, shards, 7, nil, nil))
		if err != nil {
			t.Fatal(err)
		}
		// Alignment may merge shards when the network is tiny relative
		// to the requested count (~400 persons is only ~6 bitset words),
		// but never exceed it.
		if got := sim.ShardCount(); got < 1 || got > shards {
			t.Fatalf("shards=%d: got %d shards", shards, got)
		}
		next := int32(0)
		for i := range sim.shards {
			sh := &sim.shards[i]
			if sh.first != next {
				t.Fatalf("shards=%d: shard %d starts at %d, want %d", shards, i, sh.first, next)
			}
			if sh.first%shardAlign != 0 {
				t.Fatalf("shards=%d: shard %d starts at unaligned node %d", shards, i, sh.first)
			}
			if sh.last < sh.first {
				t.Fatalf("shards=%d: shard %d empty range [%d,%d]", shards, i, sh.first, sh.last)
			}
			next = sh.last + 1
		}
		if int(next) != net.NumNodes() {
			t.Fatalf("shards=%d: coverage ends at %d, want %d", shards, next, net.NumNodes())
		}
		for pid := int32(0); int(pid) < net.NumNodes(); pid += 13 {
			if sh := sim.ownerOf(pid); !sh.owns(pid) {
				t.Fatalf("ownerOf(%d) returned shard %d owning [%d,%d]", pid, sh.id, sh.first, sh.last)
			}
		}
	}
}

// TestRunReplicatesCtxPreCancelled regresses the dispatch loop ignoring
// cancellation: a context cancelled before the call (a disconnected
// client) must yield ctx.Err() without executing the queued replicates —
// previously every replicate still ran to completion.
func TestRunReplicatesCtxPreCancelled(t *testing.T) {
	net := smallNetwork(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	cfg := snapCfg(net, 30, 1, 99, nil, nil)
	start := time.Now()
	res, err := RunReplicatesCtx(ctx, cfg, 64)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel path: got (%v, %v), want context.Canceled", res, err)
	}
	if res != nil {
		t.Fatal("parallel path returned results despite cancellation")
	}
	// 64 replicates of a 30-day run take far longer than the bail-out.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled dispatch still took %v", elapsed)
	}

	// The sequential path (shared intervention stack) must bail too.
	cfg.Interventions = BaseCaseInterventions(5, 20, 0.3, 0.4)
	res, err = RunReplicatesCtx(ctx, cfg, 64)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("sequential path: got (%v, %v), want context.Canceled", res, err)
	}
}

// TestRunReplicatesCtxUncancelled pins the happy path after the fix: a
// live context changes nothing about results.
func TestRunReplicatesCtxUncancelled(t *testing.T) {
	net := smallNetwork(t)
	cfg := snapCfg(net, 15, 2, 41, nil, nil)
	want, err := RunReplicates(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunReplicatesCtx(context.Background(), cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i].TotalInfections != got[i].TotalInfections {
			t.Fatalf("replicate %d: %d infections with ctx, %d without", i, got[i].TotalInfections, want[i].TotalInfections)
		}
	}
}

// TestShardMetricsPublished checks the observability satellite: a run with
// a registry publishes the epi_shards gauge and per-phase
// epi_span_seconds{span="epihiper.shard.*"} histograms.
func TestShardMetricsPublished(t *testing.T) {
	net := smallNetwork(t)
	reg := obs.NewRegistry()
	cfg := snapCfg(net, 20, 4, 3, nil, nil)
	cfg.Metrics = reg
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "epi_shards 4") {
		t.Errorf("epi_shards gauge missing or wrong:\n%s", out)
	}
	for _, span := range []string{"transmit", "mutate"} {
		if !strings.Contains(out, `epi_span_seconds_count{span="epihiper.shard.`+span+`"}`) {
			t.Errorf("phase span %q missing from exposition:\n%s", span, out)
		}
	}
	if sim.PhaseSeconds("transmit") <= 0 {
		t.Error("transmit phase accumulated no wall-clock")
	}
}

// BenchmarkShardScaling drives the full kernel (transmission + mutation +
// exchange + merge) over the golden mid-scale network at shard counts
// {1, 2, 4, 8}: the scaling curve published to BENCH_PR8.json. On
// multi-core hardware the curve tracks core count; on a single-CPU host
// it records the engine's overhead at higher shard counts instead.
func BenchmarkShardScaling(b *testing.B) {
	net := goldenNetwork(b)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sim, err := New(Config{
					Model:       disease.COVID19(),
					Network:     net,
					Days:        60,
					Parallelism: shards,
					Seed:        12345,
					Seeds:       seedAll(net, 8),
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sim.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
