package epihiper

import (
	"testing"

	"repro/internal/disease"
)

// This file pins the transmission kernel's allocation contract: once the
// exposure and scratch buffers have grown to steady-state capacity, a full
// transmission pass allocates nothing. The kernel's per-node RNG streams
// live on the stack (stats.Seeded / stats.FirstFloat64), the per-edge
// propensities go to the caller-owned scratch buffer, and every table it
// reads (CSR, effInf, effMaskT, effInfBits) is preallocated — so a regression
// here means someone reintroduced a heap allocation into the hot loop.

// steadyStateSim builds a simulation frozen mid-epidemic: every 20th person
// is moved into the model's most infectious state, so the kernel sees a
// realistic mix of skipped, gated and contributing edges.
func steadyStateSim(tb testing.TB) *Sim {
	net := goldenNetwork(tb)
	sim, err := New(Config{
		Model:       disease.COVID19(),
		Network:     net,
		Days:        30,
		Parallelism: 1,
		Seed:        99,
	})
	if err != nil {
		tb.Fatal(err)
	}
	infState := disease.State(0)
	for st := disease.State(0); st < disease.NumStates; st++ {
		if sim.model.Attrs[st].Infectivity > sim.model.Attrs[infState].Infectivity {
			infState = st
		}
	}
	for pid := int32(0); pid < int32(net.NumNodes()); pid += 20 {
		sim.transitionTo(pid, sim.health[pid], infState, NoInfector, 0)
	}
	sim.prepareTick()
	return sim
}

// TestTransmissionPhaseZeroAlloc requires zero heap allocations per
// transmission pass after buffer warm-up — the "allocation-free hot loop"
// acceptance criterion, checked directly rather than inferred from
// -benchmem deltas.
func TestTransmissionPhaseZeroAlloc(t *testing.T) {
	sim := steadyStateSim(t)
	part := sim.parts[0]
	var buf []exposure
	var scratch []propEntry
	buf, scratch = sim.transmissionPhase(part, 0, buf[:0], scratch[:0])
	if len(buf) == 0 {
		t.Fatal("warm-up pass produced no exposures; the fixture is not exercising the kernel")
	}
	allocs := testing.AllocsPerRun(20, func() {
		buf, scratch = sim.transmissionPhase(part, 0, buf[:0], scratch[:0])
	})
	if allocs != 0 {
		t.Fatalf("transmission phase allocates %.1f times per pass; want 0", allocs)
	}
}

// BenchmarkTransmissionPhase times one kernel pass over the ~4.3k-person
// golden network with 5% of persons infectious; run with -benchmem, the
// 0 B/op / 0 allocs/op columns are the steady-state record cited in
// EXPERIMENTS.md.
func BenchmarkTransmissionPhase(b *testing.B) {
	sim := steadyStateSim(b)
	part := sim.parts[0]
	var buf []exposure
	var scratch []propEntry
	buf, scratch = sim.transmissionPhase(part, 0, buf[:0], scratch[:0])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, scratch = sim.transmissionPhase(part, 0, buf[:0], scratch[:0])
	}
}
