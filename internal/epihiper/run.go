package epihiper

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"slices"
	"sort"
	"sync"
	"time"

	"repro/internal/disease"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/synthpop"
)

// Result summarizes one simulation run.
type Result struct {
	Days int
	// Daily[d][st] is the number of persons entering state st on day d.
	Daily [][disease.NumStates]int32
	// Current[d][st] is the occupancy of state st at the end of day d.
	Current [][disease.NumStates]int32
	// TotalInfections counts all transmission events.
	TotalInfections int64
	// PeakMemoryBytes is the maximum modeled memory during the run.
	PeakMemoryBytes int64
}

// CumulativeInto returns the cumulative daily series of entries into the
// given state.
func (r *Result) CumulativeInto(st disease.State) []float64 {
	out := make([]float64, len(r.Daily))
	var acc int64
	for d := range r.Daily {
		acc += int64(r.Daily[d][st])
		out[d] = float64(acc)
	}
	return out
}

// exposure is a pending infection computed during the transmission phase.
type exposure struct {
	pid      int32
	infector int32
}

// propEntry is one contributing contact recorded in a worker's scratch
// buffer during the propensity accumulation pass, so infector selection
// is a single replay over the buffer instead of a second edge walk.
type propEntry struct {
	nbr int32
	p   float64
}

// Run executes the configured number of ticks and returns the summary.
// It may be called once per Sim.
func (s *Sim) Run() (*Result, error) {
	res := s.newResult()
	s.runSpan(res, s.cfg.Days)
	return res, nil
}

// RunPrefix executes ticks up to (excluding) stop and returns the partial
// summary: daily rows [0, stop) are filled, the rest zero. The sim stays
// live at day stop; Snapshot can checkpoint it and RunSuffix continue it.
func (s *Sim) RunPrefix(stop int) (*Result, error) {
	return s.RunSegment(nil, stop)
}

// RunSuffix continues a sim positioned mid-horizon (a RunPrefix survivor or
// a snapshot restore) to the end of the horizon. The prefix result's rows
// and totals are cloned into the returned summary, so Run on a fresh sim
// and RunPrefix+RunSuffix produce bit-identical Results.
func (s *Sim) RunSuffix(prefix *Result) (*Result, error) {
	if prefix == nil {
		return nil, fmt.Errorf("epihiper: suffix needs the prefix result")
	}
	return s.RunSegment(prefix, s.cfg.Days)
}

// RunSegment executes days [completed, stop) and returns the summary:
// prefix (when non-nil) supplies the rows of the already-completed days and
// is deep-copied, never mutated — a cached prefix result can seed many
// branches. Segments compose: Run ≡ any chain of RunSegment calls ending at
// the horizon, bit for bit.
func (s *Sim) RunSegment(prefix *Result, stop int) (*Result, error) {
	if stop < 0 || stop > s.cfg.Days {
		return nil, fmt.Errorf("epihiper: segment stop %d outside [0, %d]", stop, s.cfg.Days)
	}
	if stop < s.ranTo {
		return nil, fmt.Errorf("epihiper: segment stop %d before completed day %d", stop, s.ranTo)
	}
	var res *Result
	if prefix == nil {
		res = s.newResult()
	} else {
		if prefix.Days != s.cfg.Days {
			return nil, fmt.Errorf("epihiper: prefix result horizon %d != sim horizon %d", prefix.Days, s.cfg.Days)
		}
		res = prefix.clone()
	}
	s.runSpan(res, stop)
	return res, nil
}

func (s *Sim) newResult() *Result {
	return &Result{
		Days:    s.cfg.Days,
		Daily:   make([][disease.NumStates]int32, s.cfg.Days),
		Current: make([][disease.NumStates]int32, s.cfg.Days),
	}
}

// clone deep-copies the summary so a suffix run can extend it without
// mutating the (possibly shared, possibly cached) prefix rows.
func (r *Result) clone() *Result {
	c := *r
	c.Daily = slices.Clone(r.Daily)
	c.Current = slices.Clone(r.Current)
	return &c
}

// runSpan executes days [s.ranTo, stop), accumulating into res.
//
// Each tick runs the shard engine's parallel phases (shard.go documents
// the ownership and barrier protocol) between a serial head (scheduled
// actions, propensity-bound refresh) and a serial tail (canonical merge,
// interventions, accounting). With one shard every phase runs inline on
// the caller — no goroutine round-trip for sequential runs.
func (s *Sim) runSpan(res *Result, stop int) {
	nShards := len(s.shards)
	phaseStart := s.phaseSecs
	if s.memTrace == nil {
		s.memTrace = make([]int64, 0, s.cfg.Days)
	}

	// Persistent worker pool: the workers live for the whole span and
	// receive one shard index per phase dispatch, replacing the per-day
	// goroutine spawn of the reference kernel. The coordinator's writes
	// (s.day, s.curPhase, the dirty flags) happen-before the channel
	// sends, and the workers' writes happen-before wg.Wait returns, so
	// each barrier fully orders the phases.
	var (
		jobs chan int
		wg   sync.WaitGroup
	)
	workers := runtime.GOMAXPROCS(0)
	if workers > nShards {
		workers = nShards
	}
	// A one-worker pool executes the shards in ascending order anyway, so
	// on a single-CPU host (or with one shard) the phases run inline on
	// the caller: same order, no channel round-trips per dispatch.
	inline := workers <= 1 || nShards == 1
	if !inline {
		jobs = make(chan int)
		defer close(jobs)
		for w := 0; w < workers; w++ {
			go func() {
				for si := range jobs {
					s.runPhase(s.curPhase, &s.shards[si])
					wg.Done()
				}
			}()
		}
	}
	dispatch := func(phase int) {
		t0 := time.Now()
		s.curPhase = phase
		if inline {
			for si := 0; si < nShards; si++ {
				s.runPhase(phase, &s.shards[si])
			}
		} else {
			wg.Add(nShards)
			for si := 0; si < nShards; si++ {
				jobs <- si
			}
			wg.Wait()
		}
		s.phaseSecs[phase] += time.Since(t0).Seconds()
	}

	for day := s.ranTo; day < stop; day++ {
		s.day = day
		// Day 0 keeps the seeding events recorded during construction.
		if day > 0 {
			s.todayEvents = s.todayEvents[:0]
		}
		s.runScheduled(day)
		s.prepareTick()

		// Upkeep: the day-driven rebuilds of the cached tables, split
		// across shards; skipped outright on the (common) tick with
		// nothing to refresh.
		if s.omegaDirty || s.maskDirtyAll || (day < len(s.isolExpiry) && len(s.isolExpiry[day]) > 0) {
			dispatch(phUpkeep)
			s.omegaDirty = false
			s.maskDirtyAll = false
			if day < len(s.isolExpiry) {
				s.isolExpiry[day] = nil
			}
		}

		// Transmit: each shard scans the at-risk nodes of its range;
		// reads of neighbor tables are safe because nothing writes
		// during this phase (synchronous update).
		dispatch(phTransmit)

		// Mutate: progression drain + exposure application on owned
		// nodes; risk-counter deltas for remote neighbors are sent to
		// their owners' inboxes.
		dispatch(phMutate)

		// Exchange: owners apply the deltas addressed to them. Skipped
		// when no shard sent anything this tick.
		if nShards > 1 {
			sent := 0
			for si := range s.shards {
				sent += s.shards[si].sent
			}
			if sent > 0 {
				dispatch(phExchange)
			}
		}

		// Serial tail: fold the shards' outputs in canonical order, then
		// interventions (trigger evaluation + action ensembles) and the
		// daily accounting.
		s.mergeTick(res, day)
		for _, iv := range s.cfg.Interventions {
			iv.Step(s, day, s.ivRNG)
		}
		for _, ev := range s.todayEvents {
			res.Daily[day][ev.To]++
		}
		for st, c := range s.currentByState {
			res.Current[day][st] = int32(c)
		}
		mem := s.MemoryBytes()
		s.memTrace = append(s.memTrace, mem)
		if mem > res.PeakMemoryBytes {
			res.PeakMemoryBytes = mem
		}
	}
	s.ranTo = stop
	s.publishMetrics(phaseStart)
}

// prepareTick refreshes the serial per-tick inputs of the parallel phases:
// the transmissibility-change flag (whose O(n) effInf rebuild the upkeep
// phase splits across shards) and the propensity rejection bound.
// propBound · σ(v) · TWSum(v) bounds v's total propensity (every factor is
// bounded termwise), letting the kernel reject nodes whose uniform draw
// cannot produce an infection without visiting a single edge.
func (s *Sim) prepareTick() {
	if s.model.Transmissibility != s.lastOmega {
		s.lastOmega = s.model.Transmissibility
		s.omegaDirty = true
	}
	cwMax := 0.0
	for _, w := range s.ctxWeight {
		if w > cwMax {
			cwMax = w
		}
	}
	s.propBound = cwMax * s.iotaMax * s.scaleHW * s.model.Transmissibility
}

// publishMetrics pushes the simulator's observability series into the
// configured registry, once per run segment (never from the hot loop): the
// shard-count gauge and the segment's per-phase wall-clock (the delta over
// the accumulated totals at segment start, so segmented runs observe each
// span once).
func (s *Sim) publishMetrics(phaseStart [numPhases]float64) {
	reg := s.cfg.Metrics
	if reg == nil {
		return
	}
	reg.Help("epi_shards", "Shard processing units of the simulator run.")
	reg.Gauge("epi_shards").Set(float64(len(s.shards)))
	for ph, name := range phaseNames {
		if d := s.phaseSecs[ph] - phaseStart[ph]; d > 0 {
			reg.Histogram(`epi_span_seconds{span="epihiper.shard.`+name+`"}`, nil).Observe(d)
		}
	}
}

// runScheduled fires queued actions due on or before the given day, in the
// order they were scheduled.
func (s *Sim) runScheduled(day int) {
	if len(s.scheduled) == 0 {
		return
	}
	var remaining []scheduledAction
	var due []scheduledAction
	for _, a := range s.scheduled {
		if a.day <= day {
			due = append(due, a)
		} else {
			remaining = append(remaining, a)
		}
	}
	s.scheduled = remaining
	s.dynamicBytes -= int64(len(due)) * perScheduledChangeBytes
	for _, a := range due {
		a.run(s)
	}
}

// transmissionPhase computes exposures for the susceptible nodes of one
// partition. The per-contact propensity follows eq. (1) of the paper:
// ρ = T · w_e · σ(Pˢ)·ι(Pⁱ) · ω, with T the contact duration (fraction of
// a day) and ω the model transmissibility. Whether the node is infected
// during the tick follows the Gillespie construction: with total propensity
// Λ, infection occurs with probability 1 − e^{−Λ}, and the causing contact
// is drawn proportionally to its propensity.
//
// The hot loop runs on the network's CSR view: T·w_e is precomputed per
// edge, ω·ι·infectivityScale comes from the per-tick effInf table, and
// each contributing contact's propensity is pushed to the caller's
// scratch buffer so infector selection replays the buffer instead of
// rescanning the edges. The phase performs no heap allocation once the
// buffers have reached steady-state capacity.
func (s *Sim) transmissionPhase(p synthpop.Partition, day int, buf []exposure, scratch []propEntry) ([]exposure, []propEntry) {
	offsets := s.csr.Offsets
	csrNbr, csrCtx, csrTW := s.csr.Nbr, s.csr.Ctx, s.csr.TW
	twSum, twMax := s.csr.TWSum, s.csr.TWMax
	infBits := s.effInfBits
	attrs := &s.model.Attrs
	propBound := s.propBound
	// Iterate the at-risk bitset word by word instead of testing every
	// node's neighbor counter: a whole zero word — 64 risk-free nodes, the
	// usual case outside the epidemic frontier — costs one load, and set
	// bits enumerate in ascending node order so the exposure buffer keeps
	// the canonical order the serial kernel produced.
	risk := s.riskBits
	loWord := int(uint32(p.FirstNode) >> 6)
	hiWord := int(uint32(p.LastNode) >> 6)
	for wi := loWord; wi <= hiWord; wi++ {
		w := risk[wi]
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &= w - 1
			pid := int32(wi<<6 | b)
			if pid < p.FirstNode {
				continue // partial first word of an unaligned partition
			}
			if pid > p.LastNode {
				break // partial last word; only reachable when wi == hiWord
			}
			need := s.infNbrCount[pid]
			st := s.health[pid]
			sus := attrs[st].Susceptibility
			if sus <= 0 {
				continue
			}
			maskV := s.effMaskT[pid]
			if maskV == 0 {
				continue
			}
			sigma := float64(s.susceptibilityScale[pid]) * sus
			if sigma <= 0 {
				continue
			}
			// Thinning: σ·propBound·min(ΣT·w, need·maxT·w) bounds the node's
			// total propensity (at most `need` contacts contribute, each at
			// most the row maximum), so a draw above the corresponding
			// infection probability decides "no infection" without visiting a
			// single edge. The per-(node, tick) RNG stream is consumed
			// identically on both paths.
			bound := twSum[pid]
			if b := float64(need) * twMax[pid]; b < bound {
				bound = b
			}
			seed := s.nodeSeed(pid, day, phaseTransmission)
			u := stats.FirstFloat64(seed)
			if notInfectedBound(u, sigma*propBound*bound) {
				continue
			}
			r := stats.Seeded(seed)
			r.Uint64() // the draw u above is this stream's first output
			off, end := offsets[pid], offsets[pid+1]
			total := 0.0
			scratch = scratch[:0]
			nbrs := csrNbr[off:end]
			ctxs := csrCtx[off:end]
			tws := csrTW[off:end]
			found := int32(0)
			for i, nb := range nbrs {
				// The bitset check is the common exit (most neighbors are
				// not infectious) and stays in L1 at any network scale; the
				// SoA split means the scan touches only 4 bytes per skipped
				// edge.
				if infBits[uint32(nb)>>6]&(1<<(uint32(nb)&63)) == 0 {
					continue
				}
				found++
				ctx := ctxs[i]
				src := ctx & 7
				if maskV&(1<<src) != 0 && s.effMaskT[nb]&(1<<(ctx>>3)) != 0 {
					prop := tws[i] * s.ctxWeight[src] * sigma * s.effInf[nb]
					total += prop
					scratch = append(scratch, propEntry{nbr: nb, p: prop})
				}
				// Every bitset-set neighbor is infectious, and there are at
				// most `need` of those in the row: once all are seen, no
				// later edge can contribute.
				if found == need {
					break
				}
			}
			if total <= 0 {
				continue
			}
			if !infected(u, total) {
				continue
			}
			// Pick the causing contact proportionally to propensity by
			// replaying the recorded propensities.
			target := r.Float64() * total
			acc := 0.0
			infector := NoInfector
			for i := range scratch {
				acc += scratch[i].p
				if acc >= target {
					infector = scratch[i].nbr
					break
				}
			}
			buf = append(buf, exposure{pid: pid, infector: infector})
		}
	}
	return buf, scratch
}

// expNeg returns e^{-x} guarding the common small-x case with the two-term
// expansion to avoid the full Exp call in the hot loop.
func expNeg(x float64) float64 {
	if x < 1e-4 {
		return 1 - x + 0.5*x*x
	}
	return math.Exp(-x)
}

// expNegTable[k] = e^{-k/16}, covering x < 37.5 for the banded infection
// test below.
var expNegTable = func() (t [601]float64) {
	for k := range t {
		t[k] = math.Exp(-float64(k) / 16)
	}
	return
}()

// infected reports u < 1 − expNeg(x) — the Gillespie infection test —
// with exactly the result of the direct comparison, while avoiding the
// math.Exp call whenever the draw is clear of the decision boundary.
// A table-plus-quadratic approximation of e^{-x} has absolute error below
// 4.1e-5 on [1e-4, 37) (tail term f³/6 with f ≤ 1/16); draws more than
// eps = 1e-4 away from the approximate boundary are decided outright, and
// only the ~2e-4 fraction inside the band falls back to the exact path.
func infected(u, x float64) bool {
	if x >= 1e-4 && x < 37.0 {
		k := int(x * 16)
		f := x - float64(k)*(1.0/16)
		a := expNegTable[k] * (1 - f + 0.5*f*f)
		const eps = 1e-4
		if u >= 1-(a-eps) {
			return false
		}
		if u < 1-(a+eps) {
			return true
		}
	}
	return u < 1-expNeg(x)
}

// notInfectedBound reports whether the draw u decides "no infection" for
// every possible propensity total ≤ xmax: it is true only when
// u ≥ 1 − expNeg(t) is guaranteed for all t ≤ xmax, with margin covering
// the e^{-x} approximation error and the float slop between the termwise
// bound and the kernel's actual sum. False is always safe — the caller
// then computes the exact total and decides with infected().
func notInfectedBound(u, xmax float64) bool {
	if xmax >= 37.0 {
		return false
	}
	var a float64 // a ≤ e^{-xmax} + 4.1e-5
	if xmax < 1e-4 {
		a = 1 - xmax // 1−x ≤ e^{-x}
	} else {
		k := int(xmax * 16)
		f := xmax - float64(k)*(1.0/16)
		a = expNegTable[k] * (1 - f + 0.5*f*f)
	}
	return u >= 1-(a-2e-4)
}

// Attack returns the final fraction of the population ever infected.
func Attack(res *Result, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(res.TotalInfections) / float64(n)
}

// RunReplicates executes the same configuration with distinct replicate
// seeds and returns the per-replicate results in replicate order.
// Replicates run in parallel when that is safe: either the configuration
// has no interventions, or it supplies InterventionsFactory so each
// replicate gets fresh (non-shared) intervention state. With only a shared
// Interventions slice, replicates run sequentially to avoid racing on
// stateful interventions. Parallel fan-out is bounded by a worker pool of
// GOMAXPROCS goroutines — each replicate holds per-person state for the
// whole network, so unbounded fan-out at production replicate counts
// multiplies peak memory for no throughput gain.
func RunReplicates(cfg Config, replicates int) ([]*Result, error) {
	return RunReplicatesCtx(context.Background(), cfg, replicates)
}

// RunReplicatesCtx is RunReplicates under an "epihiper.replicates" span with
// one child span per replicate. Seeding and scheduling are identical to
// RunReplicates — tracing reads only the tracer's clock, never the
// simulation RNG — so results are bit-identical with or without a tracer.
func RunReplicatesCtx(ctx context.Context, cfg Config, replicates int) ([]*Result, error) {
	ctx, sp := obs.StartSpan(ctx, "epihiper.replicates",
		obs.Int("replicates", int64(replicates)), obs.Int("days", int64(cfg.Days)))
	defer sp.End()
	results := make([]*Result, replicates)
	errs := make([]error, replicates)
	runOne := func(rep int) {
		_, rsp := obs.StartSpan(ctx, "epihiper.replicate", obs.Int("replicate", int64(rep)))
		defer rsp.End()
		c := cfg
		c.Seed = cfg.Seed + uint64(rep)*0x9E3779B97F4A7C15
		c.Recorder = nil // recorders are not safe across replicate goroutines
		if cfg.InterventionsFactory != nil {
			c.Interventions = cfg.InterventionsFactory()
		}
		sim, err := New(c)
		if err != nil {
			errs[rep] = err
			return
		}
		results[rep], errs[rep] = sim.Run()
		if results[rep] != nil {
			rsp.SetAttr(obs.Int("infections", results[rep].TotalInfections))
		}
	}
	parallelSafe := cfg.Interventions == nil || cfg.InterventionsFactory != nil
	var ctxErr error
	if parallelSafe {
		workers := runtime.GOMAXPROCS(0)
		if workers > replicates {
			workers = replicates
		}
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for rep := range jobs {
					runOne(rep)
				}
			}()
		}
		// The dispatch loop watches the context: a cancelled client (an
		// episerve disconnect) must not keep queueing replicates behind
		// the ones already in flight. In-flight replicates drain before
		// return so no sim outlives the call.
		for rep := 0; rep < replicates; rep++ {
			if ctxErr = ctx.Err(); ctxErr != nil {
				break
			}
			select {
			case jobs <- rep:
			case <-ctx.Done():
				ctxErr = ctx.Err()
			}
			if ctxErr != nil {
				break
			}
		}
		close(jobs)
		wg.Wait()
	} else {
		for rep := 0; rep < replicates; rep++ {
			if ctxErr = ctx.Err(); ctxErr != nil {
				break
			}
			runOne(rep)
		}
	}
	if ctxErr != nil {
		return nil, ctxErr
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// EnsembleQuantiles computes pointwise quantiles of the cumulative series
// of a state across replicate results (the prediction workflow's
// uncertainty quantification).
func EnsembleQuantiles(results []*Result, st disease.State, qs ...float64) [][]float64 {
	if len(results) == 0 {
		return nil
	}
	days := results[0].Days
	out := make([][]float64, len(qs))
	for i := range out {
		out[i] = make([]float64, days)
	}
	series := make([][]float64, len(results))
	for i, r := range results {
		series[i] = r.CumulativeInto(st)
	}
	vals := make([]float64, len(results))
	for d := 0; d < days; d++ {
		for i := range series {
			vals[i] = series[i][d]
		}
		sort.Float64s(vals)
		for qi, q := range qs {
			out[qi][d] = sortedQuantile(vals, q)
		}
	}
	return out
}

func sortedQuantile(s []float64, q float64) float64 {
	if len(s) == 0 {
		return 0
	}
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}
