package epihiper

import (
	"math"
	"sort"
	"sync"

	"repro/internal/disease"
	"repro/internal/synthpop"
)

// Result summarizes one simulation run.
type Result struct {
	Days int
	// Daily[d][st] is the number of persons entering state st on day d.
	Daily [][disease.NumStates]int32
	// Current[d][st] is the occupancy of state st at the end of day d.
	Current [][disease.NumStates]int32
	// TotalInfections counts all transmission events.
	TotalInfections int64
	// PeakMemoryBytes is the maximum modeled memory during the run.
	PeakMemoryBytes int64
}

// CumulativeInto returns the cumulative daily series of entries into the
// given state.
func (r *Result) CumulativeInto(st disease.State) []float64 {
	out := make([]float64, len(r.Daily))
	var acc int64
	for d := range r.Daily {
		acc += int64(r.Daily[d][st])
		out[d] = float64(acc)
	}
	return out
}

// exposure is a pending infection computed during the transmission phase.
type exposure struct {
	pid      int32
	infector int32
}

// Run executes the configured number of ticks and returns the summary.
// It may be called once per Sim.
func (s *Sim) Run() (*Result, error) {
	res := &Result{
		Days:    s.cfg.Days,
		Daily:   make([][disease.NumStates]int32, s.cfg.Days),
		Current: make([][disease.NumStates]int32, s.cfg.Days),
	}
	nParts := len(s.parts)
	exposuresPer := make([][]exposure, nParts)
	progressPer := make([][]int32, nParts)

	for day := 0; day < s.cfg.Days; day++ {
		s.day = day
		// Day 0 keeps the seeding events recorded during construction.
		if day > 0 {
			s.todayEvents = s.todayEvents[:0]
		}
		s.runScheduled(day)

		// Phase 1: transmission. Each worker scans the susceptible nodes
		// of its partition; reads of neighbor health are safe because
		// health is not written during this phase (synchronous update).
		// Phase 2: progression collection (nodes whose dwell expires
		// today). Both phases run on the caller when there is a single
		// partition — no goroutine round-trip for sequential runs.
		if nParts == 1 {
			exposuresPer[0] = s.transmissionPhase(s.parts[0], day, exposuresPer[0][:0])
			buf := progressPer[0][:0]
			for pid := s.parts[0].FirstNode; pid <= s.parts[0].LastNode; pid++ {
				if s.switchTick[pid] == int32(day) {
					buf = append(buf, pid)
				}
			}
			progressPer[0] = buf
		} else {
			var wg sync.WaitGroup
			for pi := range s.parts {
				wg.Add(1)
				go func(pi int) {
					defer wg.Done()
					exposuresPer[pi] = s.transmissionPhase(s.parts[pi], day, exposuresPer[pi][:0])
				}(pi)
			}
			wg.Wait()
			for pi := range s.parts {
				wg.Add(1)
				go func(pi int) {
					defer wg.Done()
					buf := progressPer[pi][:0]
					p := s.parts[pi]
					for pid := p.FirstNode; pid <= p.LastNode; pid++ {
						if s.switchTick[pid] == int32(day) {
							buf = append(buf, pid)
						}
					}
					progressPer[pi] = buf
				}(pi)
			}
			wg.Wait()
		}
		for _, buf := range progressPer {
			for _, pid := range buf {
				s.transitionTo(pid, s.health[pid], s.nextState[pid], NoInfector, day)
			}
		}

		// Phase 3: apply exposures in node order. A node that progressed
		// out of susceptibility this tick can no longer be exposed.
		for _, buf := range exposuresPer {
			for _, e := range buf {
				if s.model.IsSusceptible(s.health[e.pid]) {
					s.infect(e.pid, e.infector, day)
					res.TotalInfections++
				}
			}
		}

		// Phase 4: interventions (trigger evaluation + action ensembles).
		for _, iv := range s.cfg.Interventions {
			iv.Step(s, day, s.ivRNG)
		}

		// Daily accounting from the tick's transition events.
		for _, ev := range s.todayEvents {
			res.Daily[day][ev.To]++
		}
		for st, c := range s.currentByState {
			res.Current[day][st] = int32(c)
		}
		mem := s.MemoryBytes()
		s.memTrace = append(s.memTrace, mem)
		if mem > res.PeakMemoryBytes {
			res.PeakMemoryBytes = mem
		}
	}
	return res, nil
}

// runScheduled fires queued actions due on or before the given day, in the
// order they were scheduled.
func (s *Sim) runScheduled(day int) {
	if len(s.scheduled) == 0 {
		return
	}
	var remaining []scheduledAction
	var due []scheduledAction
	for _, a := range s.scheduled {
		if a.day <= day {
			due = append(due, a)
		} else {
			remaining = append(remaining, a)
		}
	}
	s.scheduled = remaining
	s.dynamicBytes -= int64(len(due)) * perScheduledChangeBytes
	for _, a := range due {
		a.fn(s)
	}
}

// transmissionPhase computes exposures for the susceptible nodes of one
// partition. The per-contact propensity follows eq. (1) of the paper:
// ρ = T · w_e · σ(Pˢ)·ι(Pⁱ) · ω, with T the contact duration (fraction of
// a day) and ω the model transmissibility. Whether the node is infected
// during the tick follows the Gillespie construction: with total propensity
// Λ, infection occurs with probability 1 − e^{−Λ}, and the causing contact
// is drawn proportionally to its propensity.
func (s *Sim) transmissionPhase(p synthpop.Partition, day int, buf []exposure) []exposure {
	omega := s.model.Transmissibility
	for pid := p.FirstNode; pid <= p.LastNode; pid++ {
		if s.infNbrCount[pid] == 0 {
			continue // no infectious neighbors: no exposure risk today
		}
		st := s.health[pid]
		if !s.model.IsSusceptible(st) {
			continue
		}
		adj := s.net.Adj[pid]
		if len(adj) == 0 {
			continue
		}
		maskV := s.effMask(pid)
		if maskV == 0 {
			continue
		}
		sigma := float64(s.susceptibilityScale[pid]) * s.model.Attrs[st].Susceptibility
		if sigma <= 0 {
			continue
		}
		total := 0.0
		for _, e := range adj {
			u := e.Neighbor
			iota := s.model.Attrs[s.health[u]].Infectivity
			if iota == 0 {
				continue
			}
			if maskV&(1<<uint8(e.SrcContext)) == 0 {
				continue
			}
			if s.effMask(u)&(1<<uint8(e.DstContext)) == 0 {
				continue
			}
			t := float64(e.DurationMin) / 1440.0
			total += t * float64(e.Weight) * s.ctxWeight[e.SrcContext] * sigma * iota * float64(s.infectivityScale[u]) * omega
		}
		if total <= 0 {
			continue
		}
		r := s.nodeRNG(pid, day, phaseTransmission)
		if r.Float64() >= 1-expNeg(total) {
			continue
		}
		// Pick the causing contact proportionally to propensity.
		target := r.Float64() * total
		acc := 0.0
		infector := NoInfector
		for _, e := range adj {
			u := e.Neighbor
			iota := s.model.Attrs[s.health[u]].Infectivity
			if iota == 0 {
				continue
			}
			if maskV&(1<<uint8(e.SrcContext)) == 0 {
				continue
			}
			if s.effMask(u)&(1<<uint8(e.DstContext)) == 0 {
				continue
			}
			t := float64(e.DurationMin) / 1440.0
			acc += t * float64(e.Weight) * s.ctxWeight[e.SrcContext] * sigma * iota * float64(s.infectivityScale[u]) * omega
			if acc >= target {
				infector = u
				break
			}
		}
		buf = append(buf, exposure{pid: pid, infector: infector})
	}
	return buf
}

// expNeg returns e^{-x} guarding the common small-x case with the two-term
// expansion to avoid the full Exp call in the hot loop.
func expNeg(x float64) float64 {
	if x < 1e-4 {
		return 1 - x + 0.5*x*x
	}
	return math.Exp(-x)
}

// Attack returns the final fraction of the population ever infected.
func Attack(res *Result, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(res.TotalInfections) / float64(n)
}

// RunReplicates executes the same configuration with distinct replicate
// seeds and returns the per-replicate results in replicate order.
// Replicates run in parallel when that is safe: either the configuration
// has no interventions, or it supplies InterventionsFactory so each
// replicate gets fresh (non-shared) intervention state. With only a shared
// Interventions slice, replicates run sequentially to avoid racing on
// stateful interventions.
func RunReplicates(cfg Config, replicates int) ([]*Result, error) {
	results := make([]*Result, replicates)
	errs := make([]error, replicates)
	runOne := func(rep int) {
		c := cfg
		c.Seed = cfg.Seed + uint64(rep)*0x9E3779B97F4A7C15
		c.Recorder = nil // recorders are not safe across replicate goroutines
		if cfg.InterventionsFactory != nil {
			c.Interventions = cfg.InterventionsFactory()
		}
		sim, err := New(c)
		if err != nil {
			errs[rep] = err
			return
		}
		results[rep], errs[rep] = sim.Run()
	}
	parallelSafe := cfg.Interventions == nil || cfg.InterventionsFactory != nil
	if parallelSafe {
		var wg sync.WaitGroup
		for rep := 0; rep < replicates; rep++ {
			wg.Add(1)
			go func(rep int) {
				defer wg.Done()
				runOne(rep)
			}(rep)
		}
		wg.Wait()
	} else {
		for rep := 0; rep < replicates; rep++ {
			runOne(rep)
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// EnsembleQuantiles computes pointwise quantiles of the cumulative series
// of a state across replicate results (the prediction workflow's
// uncertainty quantification).
func EnsembleQuantiles(results []*Result, st disease.State, qs ...float64) [][]float64 {
	if len(results) == 0 {
		return nil
	}
	days := results[0].Days
	out := make([][]float64, len(qs))
	for i := range out {
		out[i] = make([]float64, days)
	}
	series := make([][]float64, len(results))
	for i, r := range results {
		series[i] = r.CumulativeInto(st)
	}
	vals := make([]float64, len(results))
	for d := 0; d < days; d++ {
		for i := range series {
			vals[i] = series[i][d]
		}
		sort.Float64s(vals)
		for qi, q := range qs {
			out[qi][d] = sortedQuantile(vals, q)
		}
	}
	return out
}

func sortedQuantile(s []float64, q float64) float64 {
	if len(s) == 0 {
		return 0
	}
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}
