package epihiper

import (
	"testing"

	"repro/internal/disease"
)

func TestJSONConfigRoundTrip(t *testing.T) {
	cfg := &JSONConfig{
		Region: "VA", Days: 90, Parallelism: 4, Seed: 42,
		Model: disease.COVID19(),
		Seeds: []Seeding{{CountyFIPS: 51001, Day: 0, Count: 5}},
		Interventions: []InterventionSpec{
			{Type: "VHI", Compliance: 0.5, IsolationDays: 14},
			{Type: "SC", StartDay: 15, EndDay: 90},
			{Type: "SH", StartDay: 30, EndDay: 90, Compliance: 0.6},
			{Type: "RO", ReopenDay: 60, Level: 0.5},
		},
	}
	data, err := cfg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSONConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Region != "VA" || back.Days != 90 || back.Seed != 42 {
		t.Fatal("header fields lost")
	}
	if len(back.Seeds) != 1 || back.Seeds[0].CountyFIPS != 51001 {
		t.Fatal("seeds lost")
	}
	if len(back.Interventions) != 4 {
		t.Fatal("interventions lost")
	}
	if back.Model == nil || back.Model.Transmissibility != 0.18 {
		t.Fatal("embedded model lost")
	}
}

func TestJSONConfigBuildAndRun(t *testing.T) {
	net := testNetwork(t, 60)
	cfg := &JSONConfig{
		Region: "VA", Days: 30, Parallelism: 2, Seed: 7,
		Seeds: seedAll(net, 5),
		Interventions: []InterventionSpec{
			{Type: "VHI", Compliance: 0.4, IsolationDays: 14},
			{Type: "SH", StartDay: 10, EndDay: 30, Compliance: 0.5},
		},
	}
	data, err := cfg.Encode()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseJSONConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	runCfg, err := parsed.Build(net)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(runCfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Default model applied (no model embedded).
	if sim.Model().Name != "covid19-cdc-best-guess" {
		t.Fatal("default model not applied")
	}
	if res.Days != 30 {
		t.Fatal("horizon lost")
	}
}

func TestJSONConfigValidation(t *testing.T) {
	if _, err := ParseJSONConfig([]byte(`{`)); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ParseJSONConfig([]byte(`{"region":"VA","days":0}`)); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := ParseJSONConfig([]byte(`{"days":10}`)); err == nil {
		t.Error("missing region accepted")
	}
	if _, err := ParseJSONConfig([]byte(`{"region":"VA","days":10,"interventions":[{"type":"MAGIC"}]}`)); err == nil {
		t.Error("unknown intervention accepted")
	}
	if _, err := ParseJSONConfig([]byte(`{"region":"VA","days":10,"interventions":[{"type":"RO"}]}`)); err == nil {
		t.Error("RO without SH accepted")
	}
}

func TestBuildInterventionsAllTypes(t *testing.T) {
	specs := []InterventionSpec{
		{Type: "VHI", Compliance: 0.5},
		{Type: "SC", StartDay: 1, EndDay: 2},
		{Type: "SH", StartDay: 1, EndDay: 9, Compliance: 0.7},
		{Type: "RO", ReopenDay: 5, Level: 0.4},
		{Type: "TA", DetectProb: 0.2},
		{Type: "PS", StartDay: 1, EndDay: 30, PeriodDays: 7, Compliance: 0.5},
		{Type: "D1CT", DetectProb: 0.3, TraceCompliance: 0.5},
		{Type: "D2CT", DetectProb: 0.3, TraceCompliance: 0.5},
		{Type: "MASKS", StartDay: 1, EndDay: 30, WeightFactor: 0.6},
	}
	ivs, err := BuildInterventions(specs)
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"VHI", "SC", "SH", "RO", "TA", "PS", "D1CT", "D2CT", "masks"}
	for i, iv := range ivs {
		if iv.Name() != wantNames[i] {
			t.Errorf("intervention %d: %s want %s", i, iv.Name(), wantNames[i])
		}
	}
	// RO attached to the SH instance.
	ro := ivs[3].(*PartialReopen)
	if ro.SH != ivs[2].(*StayAtHome) {
		t.Fatal("RO not wired to the preceding SH")
	}
}

func TestBuildMismatchedNetwork(t *testing.T) {
	net := testNetwork(t, 61)
	cfg := &JSONConfig{Region: "TX", Days: 10}
	if _, err := cfg.Build(net); err == nil {
		t.Fatal("region mismatch accepted")
	}
	if _, err := cfg.Build(nil); err == nil {
		t.Fatal("nil network accepted")
	}
}
