package epihiper

import (
	"encoding/json"
	"testing"

	"repro/internal/disease"
)

// FuzzParseJSONConfig hardens the configuration parser: arbitrary input
// must produce an error or a valid, buildable configuration.
func FuzzParseJSONConfig(f *testing.F) {
	good := &JSONConfig{
		Region: "VA", Days: 30, Seed: 1,
		Interventions: []InterventionSpec{
			{Type: "SH", StartDay: 5, EndDay: 20, Compliance: 0.5},
		},
	}
	data, _ := good.Encode()
	f.Add(string(data))
	f.Add(`{"region":"VA","days":10}`)
	f.Add(`{"region":"VA","days":-1}`)
	f.Add(`{`)
	f.Fuzz(func(t *testing.T, data string) {
		cfg, err := ParseJSONConfig([]byte(data))
		if err != nil {
			return
		}
		if cfg.Days <= 0 || cfg.Region == "" {
			t.Fatal("invalid config accepted")
		}
		if _, err := BuildInterventions(cfg.Interventions); err != nil {
			t.Fatal("parsed config has unbuildable interventions")
		}
	})
}

// FuzzDiseaseModelJSON hardens the disease-model decoder: any accepted
// model must pass Validate.
func FuzzDiseaseModelJSON(f *testing.F) {
	data, _ := json.Marshal(disease.COVID19())
	f.Add(string(data))
	f.Add(`{"name":"x","transmissibility":0.1,"exposedState":"Exposed","transitions":[]}`)
	f.Add(`{}`)
	f.Fuzz(func(t *testing.T, data string) {
		var m disease.Model
		if err := json.Unmarshal([]byte(data), &m); err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid model: %v", err)
		}
	})
}
