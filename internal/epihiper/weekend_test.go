package epihiper

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/synthpop"
)

// probeContexts runs a short simulation with the given interventions plus
// a probe that records, for every day, whether each context is globally
// enabled (as seen by person 0's effective mask, which no other
// intervention touches here).
func probeContexts(t *testing.T, ivs []Intervention, days int) map[synthpop.Context][]bool {
	t.Helper()
	net := testNetwork(t, 40)
	out := map[synthpop.Context][]bool{}
	for c := synthpop.Context(0); c < synthpop.NumContexts; c++ {
		out[c] = make([]bool, days)
	}
	probe := &Triggered{
		Label: "probe",
		When:  func(*Sim, int) bool { return true },
		Do: func(s *Sim, day int, r *stats.RNG) {
			m := s.effMask(0)
			for c := synthpop.Context(0); c < synthpop.NumContexts; c++ {
				out[c][day] = m&(1<<uint8(c)) != 0
			}
		},
	}
	cfg := baseConfig(net, 1300)
	cfg.Days = days
	cfg.Interventions = append(ivs, probe)
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestWeekendScheduleTogglesContexts(t *testing.T) {
	ctx := probeContexts(t, []Intervention{&WeekendSchedule{SundayReligion: true}}, 14)
	for day := 0; day < 14; day++ {
		dow := day % 7
		weekend := dow == 5 || dow == 6
		if ctx[synthpop.CtxWork][day] == weekend {
			t.Fatalf("day %d: work context enabled=%v on weekend=%v", day, ctx[synthpop.CtxWork][day], weekend)
		}
		if ctx[synthpop.CtxSchool][day] == weekend {
			t.Fatalf("day %d: school context wrong", day)
		}
		wantReligion := dow == 6
		if ctx[synthpop.CtxReligion][day] != wantReligion {
			t.Fatalf("day %d: religion enabled=%v want %v", day, ctx[synthpop.CtxReligion][day], wantReligion)
		}
		// Home is never touched.
		if !ctx[synthpop.CtxHome][day] {
			t.Fatalf("day %d: home context disabled", day)
		}
	}
}

func TestWeekendScheduleWithoutSundayReligion(t *testing.T) {
	ctx := probeContexts(t, []Intervention{&WeekendSchedule{}}, 7)
	for day := 0; day < 7; day++ {
		if !ctx[synthpop.CtxReligion][day] {
			t.Fatalf("day %d: religion disabled without SundayReligion", day)
		}
	}
}

// School closure wins over the weekend schedule on weekdays when ordered
// after it.
func TestWeekendComposesWithSchoolClosure(t *testing.T) {
	ctx := probeContexts(t, []Intervention{
		&WeekendSchedule{},
		&SchoolClosure{StartDay: 3, EndDay: 100},
	}, 14)
	for day := 0; day < 14; day++ {
		if day >= 3 && ctx[synthpop.CtxSchool][day] {
			t.Fatalf("day %d: school open during closure", day)
		}
		// Work still follows the weekly rhythm.
		dow := day % 7
		weekend := dow == 5 || dow == 6
		if ctx[synthpop.CtxWork][day] == weekend {
			t.Fatalf("day %d: work rhythm broken by SC", day)
		}
	}
}
