// Package epihiper implements the agent-based discrete-time epidemic
// simulator of the paper (EpiHiper, described in companion publications and
// reproduced here from the paper's Appendices A, B and D): probabilistic
// disease transmission between nodes of a contact network, PTTS disease
// progression within each infected individual, and externally-triggered
// interventions.
//
// Parallel execution over network partitions stands in for the C++/MPI
// implementation: the network is split with the paper's edge-balanced
// partitioner and each partition is owned by one worker goroutine
// ("processing unit"). Results are bit-for-bit independent of the number of
// processing units because every stochastic decision draws from an RNG
// keyed on (seed, node, tick, phase) rather than on a worker-local stream.
package epihiper

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/disease"
	"repro/internal/obs"
	"repro/internal/popdb"
	"repro/internal/stats"
	"repro/internal/synthpop"
)

// NoInfector marks a state transition not caused by disease transmission.
const NoInfector int32 = -1

// Recorder receives every individual state transition, in deterministic
// order (by tick, then by person ID). This is the paper's per-line EpiHiper
// output: tick, person, exit state, and the infector for transmissions.
type Recorder interface {
	Record(tick int, pid int32, from, to disease.State, infector int32)
}

// RecorderFunc adapts a function to the Recorder interface.
type RecorderFunc func(tick int, pid int32, from, to disease.State, infector int32)

// Record implements Recorder.
func (f RecorderFunc) Record(tick int, pid int32, from, to disease.State, infector int32) {
	f(tick, pid, from, to, infector)
}

// MultiRecorder fans transitions out to several recorders.
type MultiRecorder []Recorder

// Record implements Recorder.
func (m MultiRecorder) Record(tick int, pid int32, from, to disease.State, infector int32) {
	for _, r := range m {
		r.Record(tick, pid, from, to, infector)
	}
}

// Seeding places initial infections in a county: Count persons of the
// county enter the model's exposed state on Day.
type Seeding struct {
	CountyFIPS int32
	Day        int
	Count      int
}

// Config assembles one simulation instance (one replicate of one cell).
type Config struct {
	Model   *disease.Model
	Network *synthpop.Network
	// Days is the number of ticks to simulate (1 tick = 1 day).
	Days int
	// Parallelism is the number of processing units. Zero means 1.
	Parallelism int
	// PartitionTolerance is the ε of the paper's partitioner.
	PartitionTolerance float64
	Seed               uint64
	Seeds              []Seeding
	// SeedPersons infects these exact persons at day 0, in addition to
	// any county-level Seeds — useful for controlled experiments like
	// the Figure 11 five-person network.
	SeedPersons   []int32
	Interventions []Intervention
	// InterventionsFactory, when set, builds a fresh intervention stack
	// per simulation. Several interventions are stateful (StayAtHome
	// retains its compliant set, PulsingShutdown its pulse state), so
	// concurrent replicates must not share instances; RunReplicates uses
	// the factory to parallelize safely and falls back to sequential
	// execution when only shared Interventions are given.
	InterventionsFactory func() []Intervention
	// DB optionally supplies the population at start-up, exercising the
	// bounded-connection database path of the production workflow. When
	// nil, the network's own person table is used directly.
	DB *popdb.Server
	// Recorder receives the transition stream; may be nil.
	Recorder Recorder
	// Metrics optionally receives the simulator's observability series:
	// the epi_shards gauge and the per-phase wall-clock histograms
	// epi_span_seconds{span="epihiper.shard.<phase>"}, published once per
	// run segment. Nil disables publication (the kernel never touches the
	// registry from its hot loop either way).
	Metrics *obs.Registry
}

// Sim is the mutable simulation state (the paper's "system state":
// attributes of nodes and edges, simulation time, user-defined variables).
type Sim struct {
	cfg   Config
	model *disease.Model
	net   *synthpop.Network
	// csr is the flat adjacency the transmission kernel scans: offsets +
	// one contiguous edge array with the static T·w_e factor precomputed.
	csr *synthpop.CSR

	day int

	health     []disease.State
	nextState  []disease.State
	switchTick []int32 // tick at which the pending progression fires; -1 none

	infectivityScale    []float32
	susceptibilityScale []float32

	// ctxMask holds per-person enabled-context bits; globalCtxMask gates
	// contexts network-wide (school closure). A contact is live when both
	// endpoints' contexts pass their masks and the global mask.
	ctxMask       []uint8
	globalCtxMask uint8
	isolatedUntil []int32 // person isolated (home contacts only) while day < value

	// ctxWeight scales the effective edge weight per context (Table V's
	// writable edge weight, expressed at context granularity): mask
	// mandates and distancing rules reduce transmission in a context
	// without removing the contacts.
	ctxWeight [synthpop.NumContexts]float64

	// Vars are the user-defined named variables of the EpiHiper system
	// state (Table V), read and written by intervention triggers.
	Vars map[string]float64

	parts []synthpop.Partition
	ivRNG *stats.RNG

	// shards are the processing units of the shard-owned engine (see
	// shard.go): one per partition, each privately owning its contiguous
	// 64-aligned node range of every per-person slab plus its own
	// progression buckets. shardStarts[i] = shards[i].first; ownerWord
	// maps each 64-node bitset word to its owning shard (alignment makes
	// ownership word-constant), backing the O(1) ownerOf on the
	// per-neighbor path. curPhase is written by the coordinator
	// between barriers and read by the workers (ordered by the jobs
	// channel); omegaDirty/maskDirtyAll flag the pending O(n) table
	// rebuilds the upkeep phase splits across shards; phaseSecs
	// accumulates per-phase wall-clock for the obs registry.
	shards      []shard
	shardStarts []int32
	ownerWord   []uint16
	curPhase    int
	omegaDirty  bool
	phaseSecs   [numPhases]float64

	// ranTo is the number of completed days: RunPrefix/RunSuffix segment the
	// run at day boundaries and resume from here; Run is the single segment
	// [0, Days).
	ranTo int

	// Bookkeeping for memory accounting and summaries.
	currentByState [disease.NumStates]int
	cumByState     [disease.NumStates]int64
	scheduled      []scheduledAction
	memTrace       []int64
	dynamicBytes   int64

	// todayEvents collects the transitions of the current tick, in
	// deterministic order; interventions and the daily accounting read it.
	todayEvents []TransitionEvent

	// nodeTraits holds the user-defined per-person attributes of
	// Table V (nodeTrait[traitName]); allocated lazily per trait.
	nodeTraits map[string][]float64

	// infNbrCount[v] counts v's currently-infectious neighbors. It is
	// maintained incrementally on every state transition (O(degree) per
	// transition) so the daily transmission scan can skip the — usually
	// vast — majority of nodes with no exposure risk.
	infNbrCount []int32

	// Cached tables the transmission kernel reads (read-only while the
	// workers run; all writers execute in the serial phases):
	// effInf[u] = ω · ι(health[u]) · infectivityScale[u] is the effective
	// infectivity a contact of u sees, and effMaskT[u] caches effMask(u).
	// With the CSR's precomputed T·w_e, the inner edge loop reduces to
	// two table loads and a multiply per contact. effInfBits[u/64] has
	// bit u%64 set iff effInf[u] != 0: the bitset stays cache-resident at
	// any network scale, so the common skip (neighbor not infectious)
	// never touches the 8-byte effInf table. The tables are maintained
	// incrementally at their mutation points (updateEffInf, the mask
	// setters) rather than rebuilt O(n) every tick; Run applies the only
	// day-driven changes — isolation windows ending today and global
	// context flips — at the top of each tick.
	effInf       []float64
	effMaskT     []uint8
	effInfBits   []uint64
	maskDirtyAll bool
	// riskBits[v/64] has bit v%64 set iff infNbrCount[v] > 0. The
	// transmission scan iterates set bits word-by-word instead of testing
	// every node's counter, so a tick's cost tracks the at-risk frontier
	// rather than the population. Maintained by bumpInfNbr alongside the
	// counter; 64-aligned shard boundaries keep each word single-owner.
	riskBits []uint64
	// isolExpiry[d] lists the persons whose isolation window ends on day
	// d, whose cached masks must be refreshed that morning.
	isolExpiry [][]int32

	// iotaMax is the largest per-state infectivity of the model and
	// scaleHW a high-watermark of |infectivityScale| ever set; together
	// with the per-tick max context weight they give propBound, which
	// bounds any node's per-edge propensity factor so the kernel can
	// reject most nodes against σ·propBound·ΣT·w (the CSR's TWSum)
	// without visiting a single edge.
	iotaMax   float64
	scaleHW   float64
	lastOmega float64
	propBound float64

	// staticBytes caches the network-proportional term of MemoryBytes,
	// which is constant after construction.
	staticBytes int64
}

// TransitionEvent is one state change within the current tick.
type TransitionEvent struct {
	PID      int32
	From, To disease.State
	Infector int32
}

// scheduledAction is one queued state change. Actions created by the
// simulator's own machinery (delayed seeding, test-and-isolate detections)
// are typed so they can travel with snapshots; Schedule's arbitrary
// closures remain supported but make the sim unsnapshotable while one is
// pending.
type scheduledAction struct {
	day   int
	kind  uint8
	pids  []int32      // opSeedPersons: persons to expose if susceptible
	pid   int32        // opIsolate
	until int32        // opIsolate
	fn    func(s *Sim) // opOpaque
}

// Scheduled-action kinds. opOpaque is an arbitrary closure and cannot be
// serialized; the typed kinds round-trip through Snapshot/Restore.
const (
	opOpaque uint8 = iota
	opSeedPersons
	opIsolate
)

// run applies the action. Typed kinds reproduce exactly the closures they
// replaced: seeding exposes the listed persons (still susceptible) at the
// action's scheduled day; isolation confines one person until a fixed day.
func (a *scheduledAction) run(s *Sim) {
	switch a.kind {
	case opSeedPersons:
		for _, pid := range a.pids {
			if s.model.IsSusceptible(s.health[pid]) {
				s.infect(pid, NoInfector, a.day)
			}
		}
	case opIsolate:
		s.Isolate(a.pid, int(a.until))
	default:
		a.fn(s)
	}
}

const allContexts = uint8(1<<synthpop.NumContexts) - 1
const homeOnlyMask = uint8(1) << uint8(synthpop.CtxHome)

// New validates the configuration and builds an initialized simulation.
func New(cfg Config) (*Sim, error) {
	s, err := newSim(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.applySeeding(); err != nil {
		return nil, err
	}
	return s, nil
}

// newSim builds the simulation slabs without applying the configured
// seeding. New seeds immediately; NewFromSnapshot instead overwrites the
// fresh state with the checkpointed one (the snapshot already contains the
// seeding's effects, so seeding again would double-infect).
func newSim(cfg Config) (*Sim, error) {
	if cfg.Model == nil || cfg.Network == nil {
		return nil, fmt.Errorf("epihiper: model and network are required")
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, fmt.Errorf("epihiper: invalid model: %w", err)
	}
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("epihiper: non-positive horizon %d", cfg.Days)
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 1
	}
	if cfg.PartitionTolerance <= 0 {
		cfg.PartitionTolerance = 0.01
	}
	if cfg.Interventions == nil && cfg.InterventionsFactory != nil {
		cfg.Interventions = cfg.InterventionsFactory()
	}
	n := cfg.Network.NumNodes()
	s := &Sim{
		cfg:                 cfg,
		model:               cfg.Model,
		net:                 cfg.Network,
		csr:                 cfg.Network.CSR(),
		health:              make([]disease.State, n),
		nextState:           make([]disease.State, n),
		switchTick:          make([]int32, n),
		infectivityScale:    make([]float32, n),
		susceptibilityScale: make([]float32, n),
		ctxMask:             make([]uint8, n),
		globalCtxMask:       allContexts,
		isolatedUntil:       make([]int32, n),
		effInf:              make([]float64, n),
		effMaskT:            make([]uint8, n),
		effInfBits:          make([]uint64, (n+63)/64),
		riskBits:            make([]uint64, (n+63)/64),
		isolExpiry:          make([][]int32, cfg.Days),
		scaleHW:             1,
		lastOmega:           cfg.Model.Transmissibility,
		Vars:                make(map[string]float64),
		ivRNG:               stats.NewRNG(cfg.Seed ^ 0xA5A5A5A5A5A5A5A5),
	}
	for c := range s.ctxWeight {
		s.ctxWeight[c] = 1
	}
	for st := disease.State(0); st < disease.NumStates; st++ {
		if v := cfg.Model.Attrs[st].Infectivity; v > s.iotaMax {
			s.iotaMax = v
		}
	}
	s.infNbrCount = make([]int32, n)
	for i := 0; i < n; i++ {
		s.switchTick[i] = -1
		s.infectivityScale[i] = 1
		s.susceptibilityScale[i] = 1
		s.ctxMask[i] = allContexts
		s.effMaskT[i] = allContexts
		s.updateEffInf(int32(i))
	}
	s.currentByState[disease.Susceptible] = n
	// Shard boundaries are rounded to 64-node multiples so no
	// effInfBits/riskBits word spans two owners — the mutate phase can
	// then maintain the bitsets without atomics.
	s.parts = cfg.Network.PartitionNodesAligned(cfg.Parallelism, cfg.PartitionTolerance, shardAlign)
	s.buildShards()
	// The network-proportional memory term never changes after
	// construction; the per-tick MemoryBytes samples only add the dynamic
	// intervention state. NumEdges comes from the CSR offsets instead of
	// an O(n) adjacency walk.
	halfEdges := s.csr.Offsets[n]
	s.staticBytes = int64(n)*32 + halfEdges*16
	return s, nil
}

// applySeeding moves the configured initial infections into the exposed
// state on day 0 (seedings for later days are scheduled). Persons are drawn
// through the population database when one is configured, matching the
// production start-up path.
func (s *Sim) applySeeding() error {
	for _, pid := range s.cfg.SeedPersons {
		if pid < 0 || int(pid) >= s.net.NumNodes() {
			return fmt.Errorf("epihiper: seed person %d out of range", pid)
		}
		if s.model.IsSusceptible(s.health[pid]) {
			s.infect(pid, NoInfector, 0)
		}
	}
	var byCounty map[int32][]int32
	if s.cfg.DB != nil {
		byCounty = make(map[int32][]int32)
		conn, err := s.cfg.DB.TryConnect()
		if err != nil {
			return fmt.Errorf("epihiper: population DB: %w", err)
		}
		defer conn.Close()
		counties, err := conn.Counties()
		if err != nil {
			return err
		}
		for _, c := range counties {
			ids, err := conn.PersonsInCounty(c)
			if err != nil {
				return err
			}
			byCounty[c] = ids
		}
	} else {
		// The network's county index is built once and shared across the
		// thousands of sims a replicate fan-out constructs over one
		// network; both paths list each county ascending by person ID.
		byCounty = s.net.PersonsByCounty()
	}
	for _, seed := range s.cfg.Seeds {
		ids := byCounty[seed.CountyFIPS]
		if len(ids) == 0 {
			continue // county may be empty at small scales
		}
		count, day := seed.Count, seed.Day
		if count > len(ids) {
			count = len(ids)
		}
		// Choose the seeded persons deterministically.
		r := stats.NewRNG(s.cfg.Seed ^ uint64(seed.CountyFIPS)*0x9E3779B97F4A7C15 ^ uint64(day))
		perm := r.Perm(len(ids))
		chosen := make([]int32, count)
		for i := 0; i < count; i++ {
			chosen[i] = ids[perm[i]]
		}
		sort.Slice(chosen, func(a, b int) bool { return chosen[a] < chosen[b] })
		if day <= 0 {
			for _, pid := range chosen {
				s.infect(pid, NoInfector, 0)
			}
		} else {
			s.scheduleOp(scheduledAction{day: day, kind: opSeedPersons, pids: chosen})
		}
	}
	return nil
}

// infect moves person pid into the model's exposed state at the given tick
// and samples their onward progression. It is the serial-phase entry point
// (seeding, scheduled actions, interventions); the mutate phase uses
// infectIn with its shard.
func (s *Sim) infect(pid, infector int32, tick int) {
	s.infectIn(nil, pid, infector, tick)
}

func (s *Sim) infectIn(sh *shard, pid, infector int32, tick int) {
	s.applyTransition(sh, pid, s.health[pid], s.model.ExposedState, infector, tick)
}

// transitionTo applies a state change from a serial phase: counters, the
// event stream and every neighbor's risk counter are written directly.
func (s *Sim) transitionTo(pid int32, from, to disease.State, infector int32, tick int) {
	s.applyTransition(nil, pid, from, to, infector, tick)
}

// applyTransition applies a state change, records it, and samples the next
// progression step. With sh == nil the caller runs in a serial phase and
// every side effect lands directly in global state. With sh != nil the
// caller is sh's mutate phase: pid is owned by sh, counter changes
// accumulate in the shard's deltas, the event is buffered for the
// canonical merge, and risk-counter updates for neighbors owned by OTHER
// shards become outbox messages instead of direct writes. Both paths
// perform the identical RNG draw — determinism never depends on which one
// ran.
func (s *Sim) applyTransition(sh *shard, pid int32, from, to disease.State, infector int32, tick int) {
	s.health[pid] = to
	if sh == nil {
		s.currentByState[from]--
		s.currentByState[to]++
		s.cumByState[to]++
	} else {
		sh.curDelta[from]--
		sh.curDelta[to]++
		sh.cumDelta[to]++
	}
	s.updateEffInf(pid)
	// Maintain the infectious-neighbor counters.
	wasInf := s.model.IsInfectious(from)
	isInf := s.model.IsInfectious(to)
	if wasInf != isInf {
		var delta int32 = 1
		if wasInf {
			delta = -1
		}
		if sh == nil || len(s.shards) == 1 {
			for _, v := range s.csr.Neighbors(pid) {
				s.bumpInfNbr(v, delta)
			}
		} else {
			ownerWord := s.ownerWord
			me := uint16(sh.id)
			for _, v := range s.csr.Neighbors(pid) {
				if d := ownerWord[uint32(v)>>6]; d == me {
					s.bumpInfNbr(v, delta)
				} else {
					sh.outbox[d] = append(sh.outbox[d], nbrUpdate{pid: v, delta: delta})
				}
			}
		}
	}
	ev := TransitionEvent{PID: pid, From: from, To: to, Infector: infector}
	if sh == nil {
		s.todayEvents = append(s.todayEvents, ev)
		if s.cfg.Recorder != nil {
			s.cfg.Recorder.Record(tick, pid, from, to, infector)
		}
	} else {
		sh.events = append(sh.events, ev)
	}
	ag := s.net.Persons[pid].AgeGroup()
	r := stats.Seeded(s.nodeSeed(pid, tick, phaseProgressionSample))
	next, dwell, ok := s.model.Next(to, ag, &r)
	if !ok {
		s.switchTick[pid] = -1
		return
	}
	s.nextState[pid] = next
	fire := tick + dwell
	s.switchTick[pid] = int32(fire)
	// Progressions scheduled past the horizon can never fire; buckets
	// within the current day are intentionally left undrained (matching
	// the reference kernel, whose next scan only matched the next tick).
	// The bucket entry always goes to pid's OWNER — for serial-phase
	// transitions that may not be the calling context's shard.
	if fire < s.cfg.Days {
		owner := sh
		if owner == nil {
			owner = s.ownerOf(pid)
		}
		owner.progBuckets[fire] = append(owner.progBuckets[fire], pid)
	}
}

// bumpInfNbr adjusts one node's infectious-neighbor counter and its bit in
// the at-risk bitset. During the mutate/exchange phases it is only ever
// called by v's owner shard; 64-aligned shard boundaries make the word
// write exclusive.
func (s *Sim) bumpInfNbr(v, delta int32) {
	c := s.infNbrCount[v] + delta
	s.infNbrCount[v] = c
	bit := uint64(1) << (uint32(v) & 63)
	if c > 0 {
		s.riskBits[uint32(v)>>6] |= bit
	} else {
		s.riskBits[uint32(v)>>6] &^= bit
	}
}

// RNG phase salts keep the per-(node, tick) streams of different phases
// independent.
const (
	phaseTransmission      uint64 = 0x1000000000000001
	phaseProgressionSample uint64 = 0x2000000000000002
)

// nodeSeed derives the deterministic stream seed for one node at one tick
// in one phase. Results are therefore independent of partitioning and
// worker scheduling. Callers materialize the stream with stats.Seeded on
// the stack — the hot loop allocates no RNG state.
func (s *Sim) nodeSeed(pid int32, tick int, phase uint64) uint64 {
	h := s.cfg.Seed
	h ^= uint64(uint32(pid)) * 0x9E3779B97F4A7C15
	h ^= uint64(uint32(tick)) * 0xC2B2AE3D27D4EB4F
	h ^= phase
	return h
}

// updateEffInf refreshes one person's cached effective infectivity and
// their bit in the infectious bitset. It must be called after every write
// to the person's health state or infectivity scale, and only from the
// serial phases (the parallel transmission phase reads the tables).
func (s *Sim) updateEffInf(pid int32) {
	inf := s.model.Attrs[s.health[pid]].Infectivity * float64(s.infectivityScale[pid]) * s.model.Transmissibility
	s.effInf[pid] = inf
	bit := uint64(1) << (uint(pid) & 63)
	if inf != 0 {
		s.effInfBits[uint32(pid)>>6] |= bit
	} else {
		s.effInfBits[uint32(pid)>>6] &^= bit
	}
}

// effMask returns the currently-enabled contexts of a person, combining the
// personal mask, global mask and isolation status.
func (s *Sim) effMask(pid int32) uint8 {
	m := s.ctxMask[pid] & s.globalCtxMask
	if int32(s.day) < s.isolatedUntil[pid] {
		m &= homeOnlyMask
	}
	return m
}

// Day returns the current simulation day.
func (s *Sim) Day() int { return s.day }

// Model returns the disease model.
func (s *Sim) Model() *disease.Model { return s.model }

// Network returns the contact network.
func (s *Sim) Network() *synthpop.Network { return s.net }

// Health returns the health state of a person.
func (s *Sim) Health(pid int32) disease.State { return s.health[pid] }

// CurrentCount returns the number of persons currently in the state.
func (s *Sim) CurrentCount(st disease.State) int { return s.currentByState[st] }

// CumulativeCount returns the number of entries into the state so far.
func (s *Sim) CumulativeCount(st disease.State) int64 { return s.cumByState[st] }

// SetContextEnabled enables or disables one context for a person (an
// EpiHiper action-ensemble edge operation expressed at the node level).
func (s *Sim) SetContextEnabled(pid int32, ctx synthpop.Context, enabled bool) {
	bit := uint8(1) << uint8(ctx)
	if enabled {
		s.ctxMask[pid] |= bit
	} else {
		s.ctxMask[pid] &^= bit
	}
	s.effMaskT[pid] = s.effMask(pid)
}

// SetContextWeight scales the effective weight of every contact whose
// source context is ctx (1 = unmodified). Values below 1 model
// transmission-reducing measures that keep the contacts alive — mask
// mandates, distancing rules, ventilation.
func (s *Sim) SetContextWeight(ctx synthpop.Context, factor float64) {
	if factor < 0 {
		factor = 0
	}
	s.ctxWeight[ctx] = factor
}

// ContextWeight returns the current weight factor of a context.
func (s *Sim) ContextWeight(ctx synthpop.Context) float64 { return s.ctxWeight[ctx] }

// SetGlobalContext enables or disables a context network-wide. A call that
// leaves the mask unchanged (interventions re-assert their context state
// every active tick) is a no-op and does not schedule the O(n) cached-mask
// rebuild.
func (s *Sim) SetGlobalContext(ctx synthpop.Context, enabled bool) {
	bit := uint8(1) << uint8(ctx)
	m := s.globalCtxMask
	if enabled {
		m |= bit
	} else {
		m &^= bit
	}
	if m == s.globalCtxMask {
		return
	}
	s.globalCtxMask = m
	s.maskDirtyAll = true
}

// Isolate confines a person to home contacts until the given day
// (exclusive). Isolation state contributes to the dynamic-memory account.
func (s *Sim) Isolate(pid int32, untilDay int) {
	if int32(untilDay) > s.isolatedUntil[pid] {
		if s.isolatedUntil[pid] <= int32(s.day) {
			s.dynamicBytes += perScheduledChangeBytes
		}
		s.isolatedUntil[pid] = int32(untilDay)
		s.effMaskT[pid] = s.effMask(pid)
		// The cached mask must be refreshed the morning the window ends.
		if untilDay >= 0 && untilDay < len(s.isolExpiry) {
			s.isolExpiry[untilDay] = append(s.isolExpiry[untilDay], pid)
		}
	}
}

// IsIsolated reports whether the person is currently isolated.
func (s *Sim) IsIsolated(pid int32) bool { return int32(s.day) < s.isolatedUntil[pid] }

// SetSusceptibility sets a person's susceptibility scaling factor.
func (s *Sim) SetSusceptibility(pid int32, v float64) { s.susceptibilityScale[pid] = float32(v) }

// SetInfectivity sets a person's infectivity scaling factor.
func (s *Sim) SetInfectivity(pid int32, v float64) {
	s.infectivityScale[pid] = float32(v)
	if a := math.Abs(v); a > s.scaleHW {
		s.scaleHW = a
	}
	s.updateEffInf(pid)
}

// Schedule queues an action to run at the start of the given day. The
// paper's action ensembles "delay the operation to a later point in the
// simulation"; the queue length feeds the memory model. Closure actions are
// opaque to Snapshot — a sim with one pending cannot be checkpointed; the
// typed ScheduleIsolate is preferred where it fits.
func (s *Sim) Schedule(day int, fn func(*Sim)) {
	s.scheduleOp(scheduledAction{day: day, kind: opOpaque, fn: fn})
}

// ScheduleIsolate queues an isolation of pid until untilDay (exclusive) to
// be applied at the start of the given day. Unlike Schedule's closures the
// queued action is typed, so it survives Snapshot/Restore.
func (s *Sim) ScheduleIsolate(day int, pid int32, untilDay int) {
	s.scheduleOp(scheduledAction{day: day, kind: opIsolate, pid: pid, until: int32(untilDay)})
}

func (s *Sim) scheduleOp(a scheduledAction) {
	s.scheduled = append(s.scheduled, a)
	s.dynamicBytes += perScheduledChangeBytes
}

// Neighbors returns the adjacency of a person (shared; do not mutate).
func (s *Sim) Neighbors(pid int32) []synthpop.HalfEdge { return s.net.Adj[pid] }

// TodayEvents returns the transitions recorded so far in the current tick
// (shared; do not mutate). Interventions use it to react to, e.g., new
// symptomatic cases.
func (s *Sim) TodayEvents() []TransitionEvent { return s.todayEvents }

// AddDynamicMemory accounts additional intervention-driven state in the
// memory model (Figure 10's compliance-proportional growth).
func (s *Sim) AddDynamicMemory(bytes int64) {
	s.dynamicBytes += bytes
	if s.dynamicBytes < 0 {
		s.dynamicBytes = 0
	}
}

const perScheduledChangeBytes = 64

// MemoryBytes models the resident memory of the simulation process: the
// partitioned network plus per-person state plus the intervention-driven
// dynamic state (scheduled changes, isolation entries). The paper's
// Figure 10 shows memory growing at intervention trigger points in
// proportion to compliance; the dynamic term reproduces that. The static
// network term is cached at construction.
func (s *Sim) MemoryBytes() int64 {
	return s.staticBytes + s.dynamicBytes
}

// MemoryTrace returns the per-tick memory samples collected during Run.
func (s *Sim) MemoryTrace() []int64 { return s.memTrace }
