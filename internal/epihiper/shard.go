package epihiper

import (
	"slices"

	"repro/internal/disease"
	"repro/internal/synthpop"
)

// This file implements the shard-owned execution engine: the distributed-
// memory ABM pattern of the paper (EpiHiper splits the national network per
// state across MPI ranks; "Pandemics in Silico" formalizes the same
// shard-owns-state / exchange-at-tick-boundaries design), expressed over
// goroutines and channels inside one process.
//
// Ownership. The network's nodes are split into contiguous, 64-aligned
// ranges by the edge-balanced partitioner; shard i privately owns range
// [first_i, last_i] of every per-person slab (health, nextState,
// switchTick, scales, effInf, effMaskT, the effInfBits/riskBits bitset
// words, infNbrCount) plus its own progression buckets. During the
// parallel phases of a tick, a shard writes ONLY owned state; everything it
// reads about other shards' nodes (their effInf, effMaskT, effInfBits) is
// frozen for the duration of the phase by the barrier protocol below. The
// 64-alignment guarantees no bitset word is shared between owners, so
// bitset maintenance needs no atomics.
//
// Barrier protocol. Each tick runs four parallel phases, separated by
// barriers (the coordinator's WaitGroup), with serial stitches between:
//
//	serial : scheduled actions, propensity-bound refresh
//	upkeep : per-shard table maintenance (effInf rebuild on ω change,
//	         isolation-window expiries, global-context mask refresh)
//	-------- barrier: tables frozen -------------------------------------
//	transmit: per-shard transmission scan — reads any shard's tables,
//	         writes only the shard's private exposure buffer
//	-------- barrier 1 of the tick: reads done, writes may begin --------
//	mutate : per-shard progression drain + exposure application — writes
//	         owned state; infectiousness changes touching a REMOTE
//	         neighbor's counter become typed nbrUpdate messages sent over
//	         the owner's channel
//	-------- barrier 2 of the tick: all messages sent -------------------
//	exchange: per-shard inbox drain — each shard applies the neighbor-
//	         count deltas addressed to it, in sender order
//	serial : canonical merge (events, counters), recorder, interventions,
//	         daily accounting
//
// Determinism. Output is bit-identical at any shard count because (a)
// every stochastic decision draws from an RNG keyed on (seed, node, tick,
// phase), never a worker stream; (b) each shard drains progressions and
// applies exposures in ascending node order, and the serial merge
// concatenates per-shard buffers in shard order — reproducing exactly the
// global ascending-node order of the single-threaded kernel; (c) inbox
// batches are applied in sender order (and integer neighbor-count addition
// commutes regardless); (d) counter deltas fold in shard order.
const shardAlign = 64

// Parallel phase identifiers, in per-tick execution order.
const (
	phUpkeep = iota
	phTransmit
	phMutate
	phExchange
	numPhases
)

// phaseNames label the per-phase wall-clock series
// epi_span_seconds{span="epihiper.shard.<name>"}.
var phaseNames = [numPhases]string{"upkeep", "transmit", "mutate", "exchange"}

// nbrUpdate is the typed cross-shard message: "node pid (yours) gained or
// lost one infectious neighbor (mine)". It is the only state any shard
// ever communicates to another — everything else a shard learns about
// remote nodes it reads from the phase-frozen tables.
type nbrUpdate struct {
	pid   int32
	delta int32
}

// shardBatch carries one tick's updates from one sender shard. Batches are
// sent over the owner's inbox channel at the end of the mutate phase and
// applied in ascending sender order during the exchange phase.
type shardBatch struct {
	from    int
	updates []nbrUpdate
}

// shard is one processing unit: the owner of a contiguous node range and
// of every piece of per-tick scratch that range needs. All fields are
// touched only by the goroutine executing the shard's current phase, or by
// the coordinator between barriers.
type shard struct {
	id          int
	first, last int32 // inclusive owned node range; first is 64-aligned
	part        synthpop.Partition

	// progBuckets[d] lists owned persons whose pending progression was
	// scheduled to fire on day d (see the field of the same name the
	// pre-shard Sim had; switchTick remains the source of truth and stale
	// entries are filtered at drain time).
	progBuckets [][]int32

	// exposures is the transmit phase's output, mutate's input.
	exposures []exposure
	scratch   []propEntry

	// events buffers the mutate phase's transitions: [:progCount] are the
	// progression drain's (ascending pid), [progCount:] the exposure
	// applications' (ascending pid). The coordinator merges them into the
	// canonical tick order at the barrier.
	events    []TransitionEvent
	progCount int

	// outbox[d] accumulates updates owned by shard d; inbox receives the
	// batches addressed here. sent counts batches sent this tick so the
	// coordinator can skip the exchange phase on quiet ticks.
	outbox  [][]nbrUpdate
	inbox   chan shardBatch
	batches []shardBatch
	sent    int

	// Counter deltas of the mutate phase, folded into the Sim's global
	// counters (in shard order) at the merge.
	curDelta   [disease.NumStates]int
	cumDelta   [disease.NumStates]int64
	infections int64
}

// buildShards materializes one shard per (aligned) partition and the
// word-granular owner table behind ownerOf.
func (s *Sim) buildShards() {
	ns := len(s.parts)
	s.shards = make([]shard, ns)
	s.shardStarts = make([]int32, ns)
	nn := int(s.parts[ns-1].LastNode) + 1
	s.ownerWord = make([]uint16, (nn+63)/64)
	for i, p := range s.parts {
		sh := &s.shards[i]
		sh.id = i
		sh.first, sh.last = p.FirstNode, p.LastNode
		sh.part = p
		sh.progBuckets = make([][]int32, s.cfg.Days)
		sh.outbox = make([][]nbrUpdate, ns)
		sh.inbox = make(chan shardBatch, ns)
		s.shardStarts[i] = p.FirstNode
		for w := int(uint32(p.FirstNode) >> 6); w <= int(uint32(p.LastNode)>>6); w++ {
			s.ownerWord[w] = uint16(i)
		}
	}
}

// ownerOf returns the shard owning node v. Because shard boundaries are
// 64-aligned, ownership is constant per bitset word, so the lookup is one
// load into a table of n/64 entries — it sits on the per-neighbor path of
// the mutate phase, where a binary search was a measurable slice of the
// profile.
func (s *Sim) ownerOf(v int32) *shard {
	return &s.shards[s.ownerWord[uint32(v)>>6]]
}

// owns reports whether the shard owns node v.
func (sh *shard) owns(v int32) bool { return v >= sh.first && v <= sh.last }

// runPhase executes one parallel phase for one shard. It is called either
// inline (single shard) or from a worker goroutine; in both cases the
// coordinator guarantees exclusive access to the shard and the phase's
// read/write discipline documented above.
func (s *Sim) runPhase(phase int, sh *shard) {
	switch phase {
	case phUpkeep:
		s.upkeepPhase(sh, s.day)
	case phTransmit:
		sh.exposures, sh.scratch = s.transmissionPhase(sh.part, s.day, sh.exposures[:0], sh.scratch[:0])
	case phMutate:
		s.mutatePhase(sh, s.day)
	case phExchange:
		s.exchangePhase(sh)
	}
}

// upkeepPhase applies the day-driven changes to the shard's slice of the
// kernel's cached tables: the effInf rebuild after a transmissibility
// change, isolation windows ending today, and the effMaskT refresh after a
// global context flip. Each rewrite is idempotent and confined to owned
// nodes; the coordinator clears the dirty flags after the barrier.
func (s *Sim) upkeepPhase(sh *shard, day int) {
	if s.omegaDirty {
		for pid := sh.first; pid <= sh.last; pid++ {
			s.updateEffInf(pid)
		}
	}
	if day < len(s.isolExpiry) {
		for _, pid := range s.isolExpiry[day] {
			if sh.owns(pid) {
				s.effMaskT[pid] = s.effMask(pid)
			}
		}
	}
	if s.maskDirtyAll {
		for pid := sh.first; pid <= sh.last; pid++ {
			s.effMaskT[pid] = s.effMask(pid)
		}
	}
}

// mutatePhase applies the tick's state changes to the shard's owned nodes:
// first the progressions whose dwell expires today (ascending node order,
// stale bucket entries arbitrated by switchTick), then the exposures the
// transmit phase found (ascending node order; a node that progressed out
// of susceptibility this tick can no longer be exposed). Infectiousness
// changes update owned neighbors' counters directly and emit nbrUpdate
// messages to the owners of remote neighbors.
func (s *Sim) mutatePhase(sh *shard, day int) {
	sh.events = sh.events[:0]
	sh.progCount = 0
	sh.sent = 0
	for d := range sh.outbox {
		sh.outbox[d] = sh.outbox[d][:0]
	}
	if day < len(sh.progBuckets) {
		bucket := sh.progBuckets[day]
		sh.progBuckets[day] = nil
		slices.Sort(bucket)
		prev := int32(-1)
		for _, pid := range bucket {
			if pid == prev {
				continue
			}
			prev = pid
			if s.switchTick[pid] != int32(day) {
				continue
			}
			s.applyTransition(sh, pid, s.health[pid], s.nextState[pid], NoInfector, day)
		}
	}
	sh.progCount = len(sh.events)
	for _, e := range sh.exposures {
		if s.model.IsSusceptible(s.health[e.pid]) {
			s.infectIn(sh, e.pid, e.infector, day)
			sh.infections++
		}
	}
	for d := range sh.outbox {
		if d != sh.id && len(sh.outbox[d]) > 0 {
			s.shards[d].inbox <- shardBatch{from: sh.id, updates: sh.outbox[d]}
			sh.sent++
		}
	}
}

// exchangePhase drains the shard's inbox and applies the neighbor-count
// deltas addressed to it. All sends completed before the phase's barrier,
// so a non-blocking drain sees every batch; batches are applied in sender
// order for a deterministic (if already commutative) update sequence. The
// received slices are owned by their senders and stay valid until the
// sender's next mutate phase — strictly after this phase's barrier.
func (s *Sim) exchangePhase(sh *shard) {
	sh.batches = sh.batches[:0]
	for len(sh.inbox) > 0 {
		sh.batches = append(sh.batches, <-sh.inbox)
	}
	slices.SortFunc(sh.batches, func(a, b shardBatch) int { return a.from - b.from })
	for _, b := range sh.batches {
		for _, u := range b.updates {
			s.bumpInfNbr(u.pid, u.delta)
		}
	}
}

// mergeTick folds the shards' phase outputs into the global state, in
// shard order: counter deltas, the infection total, and the buffered
// transition events — all progressions (ascending node order across
// shards), then all exposures, exactly the order the single-threaded
// kernel emits. The recorder sees the merged stream here, on the
// coordinator goroutine.
func (s *Sim) mergeTick(res *Result, day int) {
	for si := range s.shards {
		sh := &s.shards[si]
		for st := range sh.curDelta {
			s.currentByState[st] += sh.curDelta[st]
			sh.curDelta[st] = 0
		}
		for st := range sh.cumDelta {
			s.cumByState[st] += sh.cumDelta[st]
			sh.cumDelta[st] = 0
		}
		res.TotalInfections += sh.infections
		sh.infections = 0
	}
	rec := s.cfg.Recorder
	for si := range s.shards {
		sh := &s.shards[si]
		for _, ev := range sh.events[:sh.progCount] {
			s.todayEvents = append(s.todayEvents, ev)
			if rec != nil {
				rec.Record(day, ev.PID, ev.From, ev.To, ev.Infector)
			}
		}
	}
	for si := range s.shards {
		sh := &s.shards[si]
		for _, ev := range sh.events[sh.progCount:] {
			s.todayEvents = append(s.todayEvents, ev)
			if rec != nil {
				rec.Record(day, ev.PID, ev.From, ev.To, ev.Infector)
			}
		}
		sh.events = sh.events[:0]
		sh.progCount = 0
	}
}

// ShardCount returns the number of shards (processing units) the sim runs.
func (s *Sim) ShardCount() int { return len(s.shards) }

// PhaseSeconds returns the accumulated wall-clock seconds of one parallel
// phase ("upkeep", "transmit", "mutate", "exchange") across the run so far.
func (s *Sim) PhaseSeconds(phase string) float64 {
	for i, n := range phaseNames {
		if n == phase {
			return s.phaseSecs[i]
		}
	}
	return 0
}
