package epihiper

import (
	"fmt"

	"repro/internal/disease"
	"repro/internal/stats"
	"repro/internal/synthpop"
)

// Intervention is an external modification of the simulation state: a
// trigger evaluated each tick plus an action ensemble applied when it
// fires (paper Appendix D). Step is called once per tick, after disease
// progression, with the shared intervention RNG; implementations must be
// deterministic given the RNG stream.
type Intervention interface {
	Name() string
	Step(s *Sim, day int, r *stats.RNG)
}

// InterventionState is implemented by interventions that carry mutable
// state across ticks (a compliant set, a pulse phase). Snapshot serializes
// the state of every implementing intervention under its Name; Restore and
// SwapInterventions decode it into a matching intervention of the new
// stack, so a branched run continues exactly where the checkpoint left off.
type InterventionState interface {
	Intervention
	// EncodeState returns the mutable state as bytes.
	EncodeState() []byte
	// DecodeState replaces the mutable state from bytes produced by
	// EncodeState.
	DecodeState([]byte) error
}

// nonHomeContexts lists every context except home.
var nonHomeContexts = []synthpop.Context{
	synthpop.CtxWork, synthpop.CtxShopping, synthpop.CtxOther,
	synthpop.CtxSchool, synthpop.CtxCollege, synthpop.CtxReligion,
}

// ---------------------------------------------------------------------------
// SC — school closure

// SchoolClosure disables school and college contacts network-wide between
// StartDay and EndDay (exclusive). The paper's VA case study assumes 100%
// compliance with SC.
type SchoolClosure struct {
	StartDay, EndDay int
}

// Name implements Intervention.
func (sc *SchoolClosure) Name() string { return "SC" }

// Step implements Intervention. The closure is enforced every tick while
// active (not only on the boundary days) so that SC composes with
// interventions that also toggle global contexts — place WeekendSchedule
// before SchoolClosure in the intervention list and the closure wins on
// weekdays.
func (sc *SchoolClosure) Step(s *Sim, day int, r *stats.RNG) {
	switch {
	case day >= sc.StartDay && day < sc.EndDay:
		s.SetGlobalContext(synthpop.CtxSchool, false)
		s.SetGlobalContext(synthpop.CtxCollege, false)
	case day == sc.EndDay:
		s.SetGlobalContext(synthpop.CtxSchool, true)
		s.SetGlobalContext(synthpop.CtxCollege, true)
	}
}

// ---------------------------------------------------------------------------
// SH — stay-at-home

// StayAtHome disables all non-home contacts of compliant persons between
// StartDay and EndDay. Compliance is drawn per person when the order
// starts; the compliant set is retained (and contributes to dynamic
// memory, reproducing Figure 10's compliance-proportional growth).
type StayAtHome struct {
	StartDay, EndDay int
	Compliance       float64

	compliant []int32
}

// Name implements Intervention.
func (sh *StayAtHome) Name() string { return "SH" }

// Compliant returns the IDs of persons complying with the order (valid
// after StartDay has passed).
func (sh *StayAtHome) Compliant() []int32 { return sh.compliant }

// EncodeState implements InterventionState (the compliant set).
func (sh *StayAtHome) EncodeState() []byte { return encodeI32s(sh.compliant) }

// DecodeState implements InterventionState.
func (sh *StayAtHome) DecodeState(b []byte) error {
	v, err := decodeI32s(b)
	if err != nil {
		return err
	}
	sh.compliant = v
	return nil
}

// Step implements Intervention.
func (sh *StayAtHome) Step(s *Sim, day int, r *stats.RNG) {
	switch day {
	case sh.StartDay:
		n := s.net.NumNodes()
		sh.compliant = sh.compliant[:0]
		for pid := int32(0); int(pid) < n; pid++ {
			if r.Bool(sh.Compliance) {
				sh.compliant = append(sh.compliant, pid)
				for _, c := range nonHomeContexts {
					s.SetContextEnabled(pid, c, false)
				}
			}
		}
		s.AddDynamicMemory(int64(len(sh.compliant)) * perScheduledChangeBytes)
	case sh.EndDay:
		for _, pid := range sh.compliant {
			for _, c := range nonHomeContexts {
				s.SetContextEnabled(pid, c, true)
			}
		}
		s.AddDynamicMemory(-int64(len(sh.compliant)) * perScheduledChangeBytes)
	}
}

// ---------------------------------------------------------------------------
// RO — partial reopening

// PartialReopen extends a StayAtHome order: at ReopenDay, a fraction Level
// of the order's compliant persons resume their non-home contacts; the
// remainder stay home until the underlying order expires.
type PartialReopen struct {
	SH        *StayAtHome
	ReopenDay int
	Level     float64 // fraction of compliant persons released
}

// Name implements Intervention.
func (ro *PartialReopen) Name() string { return "RO" }

// Step implements Intervention.
func (ro *PartialReopen) Step(s *Sim, day int, r *stats.RNG) {
	if day != ro.ReopenDay || ro.SH == nil {
		return
	}
	released := 0
	for _, pid := range ro.SH.compliant {
		if r.Bool(ro.Level) {
			for _, c := range nonHomeContexts {
				s.SetContextEnabled(pid, c, true)
			}
			released++
		}
	}
	s.AddDynamicMemory(int64(released) * perScheduledChangeBytes)
}

// ---------------------------------------------------------------------------
// VHI — voluntary home isolation

// VoluntaryHomeIsolation isolates a fraction of newly symptomatic persons
// at home for IsolationDays.
type VoluntaryHomeIsolation struct {
	Compliance    float64
	IsolationDays int
}

// Name implements Intervention.
func (v *VoluntaryHomeIsolation) Name() string { return "VHI" }

// Step implements Intervention.
func (v *VoluntaryHomeIsolation) Step(s *Sim, day int, r *stats.RNG) {
	days := v.IsolationDays
	if days <= 0 {
		days = 14
	}
	for _, ev := range s.TodayEvents() {
		if ev.To == disease.Symptomatic && r.Bool(v.Compliance) {
			s.Isolate(ev.PID, day+days)
		}
	}
}

// ---------------------------------------------------------------------------
// TA — testing and isolating asymptomatic cases

// TestAndIsolate detects a fraction of current asymptomatic cases each day
// and isolates them ("TA (testing and isolating asymptomatic cases), which
// extends VHI").
type TestAndIsolate struct {
	DailyDetectRate float64
	IsolationDays   int
}

// Name implements Intervention.
func (ta *TestAndIsolate) Name() string { return "TA" }

// Step implements Intervention.
func (ta *TestAndIsolate) Step(s *Sim, day int, r *stats.RNG) {
	days := ta.IsolationDays
	if days <= 0 {
		days = 14
	}
	for _, ev := range s.TodayEvents() {
		if ev.To == disease.Asymptomatic && r.Bool(ta.DailyDetectRate) {
			// Detection lags onset by a 1–3 day test turnaround. The typed
			// schedule keeps the pending isolation snapshotable.
			delay := 1 + r.Intn(3)
			s.ScheduleIsolate(day+delay, ev.PID, day+delay+days)
		}
	}
}

// ---------------------------------------------------------------------------
// PS — pulsing shutdown

// PulsingShutdown repeatedly alternates stay-at-home and reopening with the
// given period: odd pulses are shutdowns, even pulses reopenings. Each
// shutdown re-samples the compliant set, which is what makes PS
// significantly more expensive than a single SH in the paper's Figure 7.
type PulsingShutdown struct {
	StartDay, EndDay int
	PeriodDays       int
	Compliance       float64

	compliant []int32
	active    bool
}

// Name implements Intervention.
func (ps *PulsingShutdown) Name() string { return "PS" }

// Step implements Intervention.
func (ps *PulsingShutdown) Step(s *Sim, day int, r *stats.RNG) {
	period := ps.PeriodDays
	if period <= 0 {
		period = 14
	}
	if day < ps.StartDay || day > ps.EndDay {
		if ps.active && day == ps.EndDay+1 {
			ps.release(s)
		}
		return
	}
	if (day-ps.StartDay)%period != 0 {
		return
	}
	if ps.active {
		ps.release(s)
		return
	}
	// Begin a shutdown pulse: re-sample compliance.
	n := s.net.NumNodes()
	ps.compliant = ps.compliant[:0]
	for pid := int32(0); int(pid) < n; pid++ {
		if r.Bool(ps.Compliance) {
			ps.compliant = append(ps.compliant, pid)
			for _, c := range nonHomeContexts {
				s.SetContextEnabled(pid, c, false)
			}
		}
	}
	ps.active = true
	s.AddDynamicMemory(int64(len(ps.compliant)) * perScheduledChangeBytes)
}

// EncodeState implements InterventionState (pulse phase + compliant set).
func (ps *PulsingShutdown) EncodeState() []byte {
	b := encodeI32s(ps.compliant)
	if ps.active {
		return append(b, 1)
	}
	return append(b, 0)
}

// DecodeState implements InterventionState.
func (ps *PulsingShutdown) DecodeState(b []byte) error {
	if len(b) < 1 {
		return fmt.Errorf("epihiper: short PulsingShutdown state")
	}
	v, err := decodeI32s(b[:len(b)-1])
	if err != nil {
		return err
	}
	ps.compliant = v
	ps.active = b[len(b)-1] != 0
	return nil
}

func (ps *PulsingShutdown) release(s *Sim) {
	for _, pid := range ps.compliant {
		for _, c := range nonHomeContexts {
			s.SetContextEnabled(pid, c, true)
		}
	}
	ps.active = false
}

// ---------------------------------------------------------------------------
// D1CT / D2CT — contact tracing and isolating

// ContactTracing detects newly symptomatic cases with DetectProb and
// isolates the case plus its contacts out to Distance hops (1 = D1CT,
// 2 = D2CT), each contact complying with TraceCompliance. The breadth-first
// expansion over the contact network is what makes D2CT the most expensive
// intervention in Figure 7 (bottom): it touches degree² ≈ 700 nodes per
// detected case.
type ContactTracing struct {
	Distance        int // 1 or 2
	DetectProb      float64
	TraceCompliance float64
	IsolationDays   int
}

// Name implements Intervention.
func (ct *ContactTracing) Name() string {
	if ct.Distance >= 2 {
		return "D2CT"
	}
	return "D1CT"
}

// Step implements Intervention.
func (ct *ContactTracing) Step(s *Sim, day int, r *stats.RNG) {
	days := ct.IsolationDays
	if days <= 0 {
		days = 14
	}
	dist := ct.Distance
	if dist <= 0 {
		dist = 1
	}
	for _, ev := range s.TodayEvents() {
		if ev.To != disease.Symptomatic || !r.Bool(ct.DetectProb) {
			continue
		}
		s.Isolate(ev.PID, day+days)
		// BFS to the configured distance.
		frontier := []int32{ev.PID}
		seen := map[int32]bool{ev.PID: true}
		for hop := 0; hop < dist; hop++ {
			var next []int32
			for _, u := range frontier {
				for _, e := range s.Neighbors(u) {
					v := e.Neighbor
					if seen[v] {
						continue
					}
					seen[v] = true
					next = append(next, v)
					if r.Bool(ct.TraceCompliance) {
						s.Isolate(v, day+days)
					}
				}
			}
			frontier = next
		}
	}
}

// ---------------------------------------------------------------------------
// Mask mandate

// MaskMandate scales down the effective contact weight of the non-home
// contexts between StartDay and EndDay (Table V's writable edge weight):
// contacts stay live, but each carries WeightFactor of its transmission
// potential.
type MaskMandate struct {
	StartDay, EndDay int
	// WeightFactor is the residual transmission per contact (e.g. 0.6 for
	// a 40% reduction).
	WeightFactor float64
}

// Name implements Intervention.
func (mm *MaskMandate) Name() string { return "masks" }

// Step implements Intervention.
func (mm *MaskMandate) Step(s *Sim, day int, r *stats.RNG) {
	switch day {
	case mm.StartDay:
		for _, c := range nonHomeContexts {
			s.SetContextWeight(c, mm.WeightFactor)
		}
	case mm.EndDay:
		for _, c := range nonHomeContexts {
			s.SetContextWeight(c, 1)
		}
	}
}

// ---------------------------------------------------------------------------
// Weekend schedule

// WeekendSchedule models the weekly rhythm of the underlying activity data
// (the paper builds week-long activity sequences and projects to a typical
// Wednesday): on Saturdays and Sundays (day mod 7 ∈ {5, 6}) work, school
// and college contacts are globally disabled, and religion contacts are
// only enabled on Sundays when SundayReligion is set.
type WeekendSchedule struct {
	// SundayReligion restricts religion contacts to Sundays.
	SundayReligion bool

	weekdayApplied bool
}

// Name implements Intervention.
func (ws *WeekendSchedule) Name() string { return "weekend" }

// Step implements Intervention.
func (ws *WeekendSchedule) Step(s *Sim, day int, r *stats.RNG) {
	dow := day % 7
	weekend := dow == 5 || dow == 6
	s.SetGlobalContext(synthpop.CtxWork, !weekend)
	s.SetGlobalContext(synthpop.CtxSchool, !weekend)
	s.SetGlobalContext(synthpop.CtxCollege, !weekend)
	if ws.SundayReligion {
		s.SetGlobalContext(synthpop.CtxReligion, dow == 6)
	}
	ws.weekdayApplied = !weekend
}

// EncodeState implements InterventionState.
func (ws *WeekendSchedule) EncodeState() []byte {
	if ws.weekdayApplied {
		return []byte{1}
	}
	return []byte{0}
}

// DecodeState implements InterventionState.
func (ws *WeekendSchedule) DecodeState(b []byte) error {
	if len(b) != 1 {
		return fmt.Errorf("epihiper: bad WeekendSchedule state length %d", len(b))
	}
	ws.weekdayApplied = b[0] != 0
	return nil
}

// ---------------------------------------------------------------------------
// Generic trigger/action intervention

// Triggered is the general trigger + action-ensemble form of an EpiHiper
// intervention: When is evaluated every tick against the system state, and
// Do runs when it returns true.
type Triggered struct {
	Label string
	When  func(s *Sim, day int) bool
	Do    func(s *Sim, day int, r *stats.RNG)
}

// Name implements Intervention.
func (t *Triggered) Name() string { return t.Label }

// Step implements Intervention.
func (t *Triggered) Step(s *Sim, day int, r *stats.RNG) {
	if t.When != nil && t.When(s, day) {
		t.Do(s, day, r)
	}
}

// PrevalenceAbove builds a trigger that fires when the current occupancy of
// a state exceeds a fraction of the population.
func PrevalenceAbove(st disease.State, frac float64) func(*Sim, int) bool {
	return func(s *Sim, day int) bool {
		return float64(s.CurrentCount(st)) > frac*float64(s.net.NumNodes())
	}
}

// OnDay builds a trigger that fires on exactly one day.
func OnDay(d int) func(*Sim, int) bool {
	return func(_ *Sim, day int) bool { return day == d }
}

// BaseCaseInterventions returns the paper's base-case intervention set for
// performance experiments: VHI + SC + SH (Figure 7 bottom).
func BaseCaseInterventions(shStart, shEnd int, vhiCompliance, shCompliance float64) []Intervention {
	return []Intervention{
		&VoluntaryHomeIsolation{Compliance: vhiCompliance, IsolationDays: 14},
		&SchoolClosure{StartDay: shStart, EndDay: shEnd},
		&StayAtHome{StartDay: shStart, EndDay: shEnd, Compliance: shCompliance},
	}
}
