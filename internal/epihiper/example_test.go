package epihiper_test

import (
	"fmt"

	"repro/internal/disease"
	"repro/internal/epihiper"
	"repro/internal/synthpop"
)

// Example runs a small end-to-end simulation: generate a synthetic
// Wyoming, seed five infections, simulate 60 days with a stay-at-home
// order, and report the outcome. Results are deterministic given the
// seeds, so the output is exact.
func Example() {
	wy, _ := synthpop.StateByCode("WY")
	cfg := synthpop.DefaultConfig(42)
	cfg.Scale = 2000
	net, err := synthpop.Generate(wy, cfg)
	if err != nil {
		panic(err)
	}
	sim, err := epihiper.New(epihiper.Config{
		Model:       disease.COVID19(),
		Network:     net,
		Days:        60,
		Parallelism: 4,
		Seed:        7,
		SeedPersons: []int32{0, 1, 2, 3, 4},
		Interventions: []epihiper.Intervention{
			&epihiper.StayAtHome{StartDay: 20, EndDay: 60, Compliance: 0.7},
		},
	})
	if err != nil {
		panic(err)
	}
	res, err := sim.Run()
	if err != nil {
		panic(err)
	}
	fmt.Printf("population: %d\n", net.NumNodes())
	fmt.Printf("infections: %d\n", res.TotalInfections)
	fmt.Printf("attack rate: %.1f%%\n", 100*epihiper.Attack(res, net.NumNodes()))
	// Output:
	// population: 289
	// infections: 100
	// attack rate: 34.6%
}
