package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Fatal("set/at broken")
	}
	m.Add(0, 0, 2)
	if m.At(0, 0) != 3 {
		t.Fatal("add broken")
	}
}

func TestFromRowsAndTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows, tr.Cols)
	}
	if tr.At(2, 1) != 6 || tr.At(0, 0) != 1 {
		t.Fatal("transpose values wrong")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged rows accepted")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMulIdentity(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	p := m.Mul(Identity(2))
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if p.At(i, j) != m.At(i, j) {
				t.Fatal("identity mul changed matrix")
			}
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want.At(i, j) {
				t.Fatalf("mul wrong at %d,%d: %v", i, j, c.At(i, j))
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	v := a.MulVec([]float64{1, 1})
	if v[0] != 3 || v[1] != 7 {
		t.Fatalf("mulvec %v", v)
	}
}

func TestDotNormAXPY(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("dot wrong")
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Error("norm wrong")
	}
	y := []float64{1, 1}
	AXPY(2, []float64{1, 2}, y)
	if y[0] != 3 || y[1] != 5 {
		t.Errorf("axpy %v", y)
	}
}

func TestCholeskyKnown(t *testing.T) {
	a := FromRows([][]float64{{4, 2}, {2, 3}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// L L^T must equal A.
	back := l.Mul(l.T())
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !approxEq(back.At(i, j), a.At(i, j), 1e-12) {
				t.Fatalf("L L^T != A at %d,%d", i, j)
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
	if _, err := Cholesky(NewMatrix(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestSolveCholesky(t *testing.T) {
	a := FromRows([][]float64{{4, 2, 0}, {2, 5, 1}, {0, 1, 3}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, -2, 3}
	b := a.MulVec(want)
	x := SolveCholesky(l, b)
	for i := range x {
		if !approxEq(x[i], want[i], 1e-10) {
			t.Fatalf("solve wrong: %v want %v", x, want)
		}
	}
}

func TestLogDetCholesky(t *testing.T) {
	a := FromRows([][]float64{{2, 0}, {0, 8}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if ld := LogDetCholesky(l); !approxEq(ld, math.Log(16), 1e-12) {
		t.Fatalf("logdet %v want %v", ld, math.Log(16))
	}
}

func TestSymEigenKnown(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 2}}) // eigenvalues 3, 1
	vals, vecs, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(vals[0], 3, 1e-10) || !approxEq(vals[1], 1, 1e-10) {
		t.Fatalf("eigenvalues %v", vals)
	}
	// A v = λ v for each column.
	for c := 0; c < 2; c++ {
		v := vecs.Col(c)
		av := a.MulVec(v)
		for i := range v {
			if !approxEq(av[i], vals[c]*v[i], 1e-10) {
				t.Fatalf("eigenvector %d fails A v = λ v", c)
			}
		}
	}
}

func TestSymEigenRandomSPD(t *testing.T) {
	r := stats.NewRNG(77)
	n := 8
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = r.Norm()
	}
	a := b.Mul(b.T()) // SPD (almost surely PD)
	vals, vecs, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	// Eigenvalues descending and non-negative.
	for i := 1; i < n; i++ {
		if vals[i] > vals[i-1]+1e-9 {
			t.Fatalf("eigenvalues not sorted: %v", vals)
		}
	}
	// Reconstruction: V diag(vals) V^T == A.
	d := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		d.Set(i, i, vals[i])
	}
	back := vecs.Mul(d).Mul(vecs.T())
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if !approxEq(back.At(i, j), a.At(i, j), 1e-7*(1+math.Abs(a.At(i, j)))) {
				t.Fatalf("reconstruction fails at %d,%d: %v vs %v", i, j, back.At(i, j), a.At(i, j))
			}
		}
	}
	// Orthonormal columns.
	vtv := vecs.T().Mul(vecs)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !approxEq(vtv.At(i, j), want, 1e-9) {
				t.Fatalf("V not orthonormal at %d,%d: %v", i, j, vtv.At(i, j))
			}
		}
	}
}

func TestPCARecoversDominantDirection(t *testing.T) {
	r := stats.NewRNG(78)
	// Data along direction (1, 1)/sqrt(2) with small noise.
	n := 200
	x := NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		tt := r.Norm() * 5
		x.Set(i, 0, tt+r.Norm()*0.1)
		x.Set(i, 1, tt+r.Norm()*0.1)
	}
	_, basis, explained, err := PCA(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if explained < 0.99 {
		t.Fatalf("explained variance %v", explained)
	}
	// First basis direction should be proportional to (1,1).
	b0, b1 := basis.At(0, 0), basis.At(1, 0)
	if !approxEq(math.Abs(b0/b1), 1, 0.05) {
		t.Fatalf("dominant direction (%v, %v) not along (1,1)", b0, b1)
	}
}

func TestPCAGramPathWideMatrix(t *testing.T) {
	r := stats.NewRNG(79)
	// More columns than rows exercises the Gram-space branch.
	n, p := 10, 50
	x := NewMatrix(n, p)
	for i := range x.Data {
		x.Data[i] = r.Norm()
	}
	mean, basis, explained, err := PCA(x, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(mean) != p || basis.Rows != p || basis.Cols != 5 {
		t.Fatalf("shapes: mean %d basis %dx%d", len(mean), basis.Rows, basis.Cols)
	}
	if explained <= 0 || explained > 1+1e-9 {
		t.Fatalf("explained %v", explained)
	}
}

func TestPCAEmptyErrors(t *testing.T) {
	if _, _, _, err := PCA(NewMatrix(0, 0), 2); err == nil {
		t.Fatal("empty PCA accepted")
	}
}

func TestCholeskySolvePropertyRandomSPD(t *testing.T) {
	err := quick.Check(func(seed uint16) bool {
		r := stats.NewRNG(uint64(seed) + 1)
		n := r.Intn(6) + 2
		b := NewMatrix(n, n)
		for i := range b.Data {
			b.Data[i] = r.Norm()
		}
		a := b.Mul(b.T())
		for i := 0; i < n; i++ {
			a.Add(i, i, 0.5) // ensure well-conditioned
		}
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = r.Norm()
		}
		rhs := a.MulVec(want)
		x := SolveCholesky(l, rhs)
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-7 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScaleAddM(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	a.Scale(3)
	if a.At(0, 1) != 6 {
		t.Fatal("scale wrong")
	}
	s := a.AddM(FromRows([][]float64{{1, 1}}))
	if s.At(0, 0) != 4 || s.At(0, 1) != 7 {
		t.Fatal("addm wrong")
	}
}

func TestRowColClone(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(1)
	c := m.Col(0)
	if r[0] != 3 || r[1] != 4 || c[0] != 1 || c[1] != 3 {
		t.Fatal("row/col wrong")
	}
	cl := m.Clone()
	cl.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("clone aliases original")
	}
}
