// Package linalg provides the small dense linear-algebra kernel used by the
// Gaussian-process emulator and the Bayesian calibration framework: dense
// matrices, Cholesky factorization, triangular solves, and a symmetric
// eigensolver used for the PCA basis representation of simulator output
// (Appendix E of the paper, eq. 3).
//
// The matrices involved are small (design sizes of at most a few hundred
// points, output bases of pη = 5), so clarity is preferred over blocking or
// vectorization tricks.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must have equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged rows (%d vs %d)", len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments element (i, j) by v.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	return append([]float64(nil), m.Data[i*m.Cols:(i+1)*m.Cols]...)
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// T returns the transpose.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m × b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: mul shape mismatch %dx%d × %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Add(i, j, a*b.At(k, j))
			}
		}
	}
	return out
}

// MulVec returns m × v as a new slice.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic("linalg: mulvec shape mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out
}

// Scale multiplies every element by s, in place, and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddM returns m + b.
func (m *Matrix) AddM(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: add shape mismatch")
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] += b.Data[i]
	}
	return out
}

// Dot returns the inner product of two vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// AXPY computes y += a*x in place.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: axpy length mismatch")
	}
	for i := range x {
		y[i] += a * x[i]
	}
}

// Cholesky computes the lower-triangular factor L with A = L Lᵀ for a
// symmetric positive-definite matrix. It returns an error if the matrix is
// not positive definite (within a small tolerance); callers typically add a
// nugget to the diagonal and retry.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: cholesky of non-square %dx%d", a.Rows, a.Cols)
	}
	l := NewMatrix(a.Rows, a.Rows)
	if err := CholeskyInto(a, l); err != nil {
		return nil, err
	}
	return l, nil
}

// CholeskyInto factors A into the caller-provided lower-triangular L (same
// shape, must not alias A). Only L's lower triangle including the diagonal
// is written; stale upper-triangle entries of a reused L are ignored by the
// triangular solves and LogDetCholesky.
func CholeskyInto(a, l *Matrix) error {
	n := a.Rows
	if a.Cols != n || l.Rows != n || l.Cols != n {
		return fmt.Errorf("linalg: cholesky shape mismatch %dx%d into %dx%d", a.Rows, a.Cols, l.Rows, l.Cols)
	}
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 {
			return fmt.Errorf("linalg: matrix not positive definite at pivot %d (d=%g)", j, d)
		}
		dj := math.Sqrt(d)
		l.Set(j, j, dj)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/dj)
		}
	}
	return nil
}

// SolveCholesky solves A x = b given the lower Cholesky factor L of A.
func SolveCholesky(l *Matrix, b []float64) []float64 {
	y := ForwardSolve(l, b)
	return BackSolveT(l, y)
}

// ForwardSolve solves L y = b for lower-triangular L.
func ForwardSolve(l *Matrix, b []float64) []float64 {
	y := make([]float64, l.Rows)
	ForwardSolveInto(l, b, y)
	return y
}

// ForwardSolveInto solves L y = b into caller-provided y (b and y may
// alias), for hot loops that cannot afford per-solve allocations.
func ForwardSolveInto(l *Matrix, b, y []float64) {
	n := l.Rows
	if len(b) != n || len(y) != n {
		panic("linalg: forward solve length mismatch")
	}
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Data[i*l.Cols : i*l.Cols+i]
		for k, v := range row {
			s -= v * y[k]
		}
		y[i] = s / l.At(i, i)
	}
}

// BackSolveT solves Lᵀ x = y for lower-triangular L.
func BackSolveT(l *Matrix, y []float64) []float64 {
	x := make([]float64, l.Rows)
	BackSolveTInto(l, y, x)
	return x
}

// BackSolveTInto solves Lᵀ x = y into caller-provided x (x and y may alias).
func BackSolveTInto(l *Matrix, y, x []float64) {
	n := l.Rows
	if len(y) != n || len(x) != n {
		panic("linalg: back solve length mismatch")
	}
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
}

// LogDetCholesky returns log det A given the lower Cholesky factor of A.
func LogDetCholesky(l *Matrix) float64 {
	s := 0.0
	for i := 0; i < l.Rows; i++ {
		s += math.Log(l.At(i, i))
	}
	return 2 * s
}

// SymEigen computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi method. It returns the eigenvalues in descending order and
// the matching eigenvectors as the columns of V.
func SymEigen(a *Matrix) (vals []float64, vecs *Matrix, err error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("linalg: eigen of non-square %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	w := a.Clone()
	v := Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-22*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply the rotation to W on both sides and accumulate in V.
				for k := 0; k < n; k++ {
					wkp := w.At(k, p)
					wkq := w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk := w.At(p, k)
					wqk := w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue (selection sort on columns).
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if vals[j] > vals[best] {
				best = j
			}
		}
		if best != i {
			vals[i], vals[best] = vals[best], vals[i]
			for k := 0; k < n; k++ {
				vi := v.At(k, i)
				v.Set(k, i, v.At(k, best))
				v.Set(k, best, vi)
			}
		}
	}
	return vals, v, nil
}

// PCA computes the top-k principal components of the rows of X (observations
// in rows, variables in columns). It returns the column means, the basis as
// a (cols × k) matrix whose columns are the components scaled by the square
// root of their eigenvalues (the convention GPMSA uses, so basis weights are
// O(1)), and the fraction of variance captured.
func PCA(x *Matrix, k int) (mean []float64, basis *Matrix, explained float64, err error) {
	n, p := x.Rows, x.Cols
	if n == 0 || p == 0 {
		return nil, nil, 0, fmt.Errorf("linalg: PCA of empty matrix")
	}
	if k > p {
		k = p
	}
	if k > n {
		k = n
	}
	mean = make([]float64, p)
	for j := 0; j < p; j++ {
		s := 0.0
		for i := 0; i < n; i++ {
			s += x.At(i, j)
		}
		mean[j] = s / float64(n)
	}
	centered := NewMatrix(n, p)
	for i := 0; i < n; i++ {
		for j := 0; j < p; j++ {
			centered.Set(i, j, x.At(i, j)-mean[j])
		}
	}
	// Covariance (p × p); for long outputs p can exceed n, in which case we
	// work in the n × n Gram space to keep the eigenproblem small.
	if p <= n {
		cov := centered.T().Mul(centered).Scale(1 / float64(maxInt(1, n-1)))
		vals, vecs, eerr := SymEigen(cov)
		if eerr != nil {
			return nil, nil, 0, eerr
		}
		return pcaAssemble(mean, vals, vecs, p, k)
	}
	gram := centered.Mul(centered.T()).Scale(1 / float64(maxInt(1, n-1)))
	vals, u, eerr := SymEigen(gram)
	if eerr != nil {
		return nil, nil, 0, eerr
	}
	// Convert Gram eigenvectors u_i to covariance eigenvectors
	// v_i = Xᵀ u_i / sqrt((n-1) λ_i).
	vecs := NewMatrix(p, len(vals))
	for c := 0; c < len(vals); c++ {
		if vals[c] <= 1e-14 {
			continue
		}
		ucol := u.Col(c)
		vcol := centered.T().MulVec(ucol)
		scale := 1 / (math.Sqrt(vals[c]) * math.Sqrt(float64(maxInt(1, n-1))))
		for i := 0; i < p; i++ {
			vecs.Set(i, c, vcol[i]*scale)
		}
	}
	return pcaAssemble(mean, vals, vecs, p, k)
}

func pcaAssemble(mean, vals []float64, vecs *Matrix, p, k int) ([]float64, *Matrix, float64, error) {
	total := 0.0
	for _, v := range vals {
		if v > 0 {
			total += v
		}
	}
	basis := NewMatrix(p, k)
	kept := 0.0
	for c := 0; c < k; c++ {
		lam := vals[c]
		if lam < 0 {
			lam = 0
		}
		kept += lam
		s := math.Sqrt(lam)
		for i := 0; i < p; i++ {
			basis.Set(i, c, vecs.At(i, c)*s)
		}
	}
	explained := 1.0
	if total > 0 {
		explained = kept / total
	}
	return mean, basis, explained, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
