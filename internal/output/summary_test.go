package output

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/disease"
)

func TestSummaryCSVRoundTrip(t *testing.T) {
	net := testNet(t)
	_, agg, _ := runLogged(t, net, 40)
	var buf bytes.Buffer
	if err := agg.WriteSummaryCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSummaryCSV(&buf, 40)
	if err != nil {
		t.Fatal(err)
	}
	// Series that have any counts round-trip exactly.
	for _, st := range []disease.State{disease.Exposed, disease.Symptomatic, disease.Dead} {
		want := agg.StateDaily(st)
		got := back.StateDaily(st)
		for d := 0; d < 40; d++ {
			if want[d] != got[d] {
				t.Fatalf("state %v day %d: %d vs %d", st, d, got[d], want[d])
			}
		}
	}
	// County sets: readers only see counties with nonzero counts.
	for _, c := range back.Counties() {
		found := false
		for _, orig := range agg.Counties() {
			if orig == c {
				found = true
			}
		}
		if !found {
			t.Fatalf("reader invented county %d", c)
		}
	}
	// Cumulative and confirmed paths work on the read-back form.
	if back.StateConfirmedCumulative()[39] != agg.StateConfirmedCumulative()[39] {
		t.Fatal("confirmed cumulative differs after roundtrip")
	}
}

func TestReadSummaryCSVErrors(t *testing.T) {
	if _, err := ReadSummaryCSV(strings.NewReader(""), 10); err == nil {
		t.Error("empty file accepted")
	}
	if _, err := ReadSummaryCSV(strings.NewReader("bogus header\n"), 10); err == nil {
		t.Error("bad header accepted")
	}
	hdr := "county_fips,day,state,new_count\n"
	cases := map[string]string{
		"short row":  hdr + "51001,3\n",
		"bad county": hdr + "xx,3,Exposed,1\n",
		"bad day":    hdr + "51001,99,Exposed,1\n",
		"bad state":  hdr + "51001,3,Blorbo,1\n",
		"bad count":  hdr + "51001,3,Exposed,abc\n",
	}
	for name, data := range cases {
		if _, err := ReadSummaryCSV(strings.NewReader(data), 10); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// A valid minimal file parses.
	a, err := ReadSummaryCSV(strings.NewReader(hdr+"51001,3,Exposed,5\n"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.Daily(51001, disease.Exposed)[3] != 5 {
		t.Fatal("value lost")
	}
}
