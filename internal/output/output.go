// Package output handles the simulator's result streams: the raw
// individual-level transition log ("each line ... includes the tick of the
// transition event, the identifier of the person, their exit state, and the
// identifier of the person causing the state transition"), the dendograms
// (transmission trees rooted at initial infections), and the aggregation of
// individual-level output to county/state daily time series — the summary
// data that is transferred back to the home cluster.
package output

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/disease"
	"repro/internal/epihiper"
	"repro/internal/synthpop"
)

// Transition is one line of the raw EpiHiper output.
type Transition struct {
	Tick     int32
	PID      int32
	From, To disease.State
	Infector int32 // epihiper.NoInfector when not a transmission
}

// TransitionLog is a Recorder that retains every transition in order.
type TransitionLog struct {
	Entries []Transition
}

// Record implements epihiper.Recorder.
func (l *TransitionLog) Record(tick int, pid int32, from, to disease.State, infector int32) {
	l.Entries = append(l.Entries, Transition{Tick: int32(tick), PID: pid, From: from, To: to, Infector: infector})
}

// WriteCSV writes the log in the paper's raw-output schema.
func (l *TransitionLog) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "tick,pid,exit_state,contact_pid"); err != nil {
		return err
	}
	for _, t := range l.Entries {
		if _, err := fmt.Fprintf(bw, "%d,%d,%s,%d\n", t.Tick, t.PID, t.To, t.Infector); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// RawBytes estimates the serialized size of the log, feeding the Table I
// raw-output accounting (~24 bytes per line).
func (l *TransitionLog) RawBytes() int64 { return int64(len(l.Entries)) * 24 }

// Dendogram is the forest of transmission trees rooted at initial
// infections (Appendix A's disease outcome).
type Dendogram struct {
	// Children maps an infector to the persons they infected, in
	// infection order.
	Children map[int32][]int32
	// Roots are persons infected with no recorded infector (seeds).
	Roots []int32
	// InfectedAt maps each infected person to their exposure tick.
	InfectedAt map[int32]int32
}

// BuildDendogram extracts the transmission forest from a transition log.
func BuildDendogram(l *TransitionLog, exposedState disease.State) *Dendogram {
	d := &Dendogram{Children: map[int32][]int32{}, InfectedAt: map[int32]int32{}}
	for _, t := range l.Entries {
		if t.To != exposedState {
			continue
		}
		if _, dup := d.InfectedAt[t.PID]; dup {
			// Reinfection (RxFailure path): keep the first exposure as
			// the tree edge; later exposures are not re-rooted.
			continue
		}
		d.InfectedAt[t.PID] = t.Tick
		if t.Infector == epihiper.NoInfector {
			d.Roots = append(d.Roots, t.PID)
		} else {
			d.Children[t.Infector] = append(d.Children[t.Infector], t.PID)
		}
	}
	return d
}

// Size returns the total number of infected persons in the forest.
func (d *Dendogram) Size() int { return len(d.InfectedAt) }

// SubtreeSize returns the number of infections caused directly or
// transitively by the given person, including the person.
func (d *Dendogram) SubtreeSize(pid int32) int {
	size := 1
	for _, c := range d.Children[pid] {
		size += d.SubtreeSize(c)
	}
	return size
}

// Depth returns the longest transmission chain length in the forest
// (a forest of only roots has depth 1).
func (d *Dendogram) Depth() int {
	var depth func(pid int32) int
	depth = func(pid int32) int {
		best := 0
		for _, c := range d.Children[pid] {
			if dd := depth(c); dd > best {
				best = dd
			}
		}
		return best + 1
	}
	max := 0
	for _, r := range d.Roots {
		if dd := depth(r); dd > max {
			max = dd
		}
	}
	return max
}

// SecondaryCases returns the per-infector offspring counts (the empirical
// reproduction-number distribution).
func (d *Dendogram) SecondaryCases() []int {
	out := make([]int, 0, len(d.InfectedAt))
	for pid := range d.InfectedAt {
		out = append(out, len(d.Children[pid]))
	}
	sort.Ints(out)
	return out
}

// CountKey identifies one county-level daily count series.
type CountKey struct {
	CountyFIPS int32
	State      disease.State
}

// CountyAggregator is a Recorder that aggregates individual transitions to
// county-level daily new counts per health state — the "aggregate
// simulation data" (days × health states × 3 counts) of Figures 3–5.
type CountyAggregator struct {
	days     int
	countyOf []int32
	counties []int32
	// series[key][day] = new entries into key.State in key.CountyFIPS.
	series map[CountKey][]int32
}

// NewCountyAggregator builds an aggregator for the given network and
// horizon.
func NewCountyAggregator(net *synthpop.Network, days int) *CountyAggregator {
	a := &CountyAggregator{
		days:     days,
		countyOf: make([]int32, net.NumNodes()),
		series:   map[CountKey][]int32{},
	}
	seen := map[int32]bool{}
	for i := range net.Persons {
		f := net.Persons[i].CountyFIPS
		a.countyOf[i] = f
		if !seen[f] {
			seen[f] = true
			a.counties = append(a.counties, f)
		}
	}
	sort.Slice(a.counties, func(i, j int) bool { return a.counties[i] < a.counties[j] })
	return a
}

// Record implements epihiper.Recorder.
func (a *CountyAggregator) Record(tick int, pid int32, from, to disease.State, infector int32) {
	if tick < 0 || tick >= a.days {
		return
	}
	key := CountKey{CountyFIPS: a.countyOf[pid], State: to}
	s := a.series[key]
	if s == nil {
		s = make([]int32, a.days)
		a.series[key] = s
	}
	s[tick]++
}

// Counties returns the county FIPS codes in ascending order.
func (a *CountyAggregator) Counties() []int32 { return a.counties }

// Daily returns the daily new-count series for a county and state (nil when
// the county never saw that state).
func (a *CountyAggregator) Daily(county int32, st disease.State) []int32 {
	return a.series[CountKey{CountyFIPS: county, State: st}]
}

// Cumulative returns the cumulative series for a county and state.
func (a *CountyAggregator) Cumulative(county int32, st disease.State) []float64 {
	out := make([]float64, a.days)
	var acc int64
	daily := a.Daily(county, st)
	for d := 0; d < a.days; d++ {
		if daily != nil {
			acc += int64(daily[d])
		}
		out[d] = float64(acc)
	}
	return out
}

// StateDaily sums a daily series over all counties.
func (a *CountyAggregator) StateDaily(st disease.State) []int32 {
	out := make([]int32, a.days)
	for key, s := range a.series {
		if key.State != st {
			continue
		}
		for d, v := range s {
			out[d] += v
		}
	}
	return out
}

// StateCumulative returns the state-level cumulative series.
func (a *CountyAggregator) StateCumulative(st disease.State) []float64 {
	daily := a.StateDaily(st)
	out := make([]float64, a.days)
	var acc int64
	for d := range daily {
		acc += int64(daily[d])
		out[d] = float64(acc)
	}
	return out
}

// SummaryBytes estimates the serialized size of the aggregate output:
// counties × days × health states × 3 counts × 4 bytes, the quantity the
// workflow ships back to the home cluster.
func (a *CountyAggregator) SummaryBytes() int64 {
	return int64(len(a.counties)) * int64(a.days) * int64(disease.NumStates) * 3 * 4
}

// WriteSummaryCSV writes the county/day/state new-count table.
func (a *CountyAggregator) WriteSummaryCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "county_fips,day,state,new_count"); err != nil {
		return err
	}
	keys := make([]CountKey, 0, len(a.series))
	for k := range a.series {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].CountyFIPS != keys[j].CountyFIPS {
			return keys[i].CountyFIPS < keys[j].CountyFIPS
		}
		return keys[i].State < keys[j].State
	})
	for _, k := range keys {
		for d, v := range a.series[k] {
			if v == 0 {
				continue
			}
			if _, err := fmt.Fprintf(bw, "%d,%d,%s,%d\n", k.CountyFIPS, d, k.State, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadSummaryCSV parses a summary written by WriteSummaryCSV into a new
// aggregator — the home cluster's ingest side of the two-site flow. The
// aggregator carries only the series (no person mapping), sufficient for
// all read paths.
func ReadSummaryCSV(rd io.Reader, days int) (*CountyAggregator, error) {
	a := &CountyAggregator{days: days, series: map[CountKey][]int32{}}
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("output: empty summary file")
	}
	if !strings.HasPrefix(sc.Text(), "county_fips,day,state,new_count") {
		return nil, fmt.Errorf("output: unexpected summary header %q", sc.Text())
	}
	seen := map[int32]bool{}
	line := 1
	for sc.Scan() {
		line++
		parts := strings.Split(sc.Text(), ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("output: line %d: malformed summary row", line)
		}
		fips, err1 := strconv.Atoi(parts[0])
		day, err2 := strconv.Atoi(parts[1])
		count, err3 := strconv.Atoi(parts[3])
		for _, e := range []error{err1, err2, err3} {
			if e != nil {
				return nil, fmt.Errorf("output: line %d: %w", line, e)
			}
		}
		if day < 0 || day >= days {
			return nil, fmt.Errorf("output: line %d: day %d outside horizon %d", line, day, days)
		}
		st, err := parseStateName(parts[2])
		if err != nil {
			return nil, fmt.Errorf("output: line %d: %w", line, err)
		}
		key := CountKey{CountyFIPS: int32(fips), State: st}
		s := a.series[key]
		if s == nil {
			s = make([]int32, days)
			a.series[key] = s
		}
		s[day] += int32(count)
		if !seen[int32(fips)] {
			seen[int32(fips)] = true
			a.counties = append(a.counties, int32(fips))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(a.counties, func(i, j int) bool { return a.counties[i] < a.counties[j] })
	return a, nil
}

// parseStateName resolves a health-state display name.
func parseStateName(name string) (disease.State, error) {
	for s := disease.State(0); s < disease.NumStates; s++ {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("output: unknown health state %q", name)
}

// ConfirmedCases approximates the "confirmed case" forecasting target as
// entries into any medically-attended state (Attended, Attended(H),
// Attended(D)) — the simulated analogue of a case showing up in
// surveillance.
func (a *CountyAggregator) ConfirmedCases(county int32) []int32 {
	out := make([]int32, a.days)
	for _, st := range []disease.State{disease.Attended, disease.AttendedH, disease.AttendedD} {
		if s := a.Daily(county, st); s != nil {
			for d, v := range s {
				out[d] += v
			}
		}
	}
	return out
}

// StateConfirmedCumulative returns the state-level cumulative confirmed
// case series, the calibration target of the VA case study.
func (a *CountyAggregator) StateConfirmedCumulative() []float64 {
	out := make([]float64, a.days)
	var acc int64
	attd := a.StateDaily(disease.Attended)
	attdH := a.StateDaily(disease.AttendedH)
	attdD := a.StateDaily(disease.AttendedD)
	for d := 0; d < a.days; d++ {
		acc += int64(attd[d]) + int64(attdH[d]) + int64(attdD[d])
		out[d] = float64(acc)
	}
	return out
}
