package output

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/disease"
	"repro/internal/epihiper"
	"repro/internal/synthpop"
)

func testNet(t testing.TB) *synthpop.Network {
	t.Helper()
	va, err := synthpop.StateByCode("VA")
	if err != nil {
		t.Fatal(err)
	}
	cfg := synthpop.DefaultConfig(404)
	cfg.Scale = 10000
	cfg.MinPersons = 400
	net, err := synthpop.Generate(va, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func runLogged(t testing.TB, net *synthpop.Network, days int) (*TransitionLog, *CountyAggregator, *epihiper.Result) {
	t.Helper()
	log := &TransitionLog{}
	agg := NewCountyAggregator(net, days)
	byCounty := map[int32]int{}
	for _, p := range net.Persons {
		byCounty[p.CountyFIPS]++
	}
	var best int32
	bestN := 0
	for c, n := range byCounty {
		if n > bestN {
			best, bestN = c, n
		}
	}
	sim, err := epihiper.New(epihiper.Config{
		Model: disease.COVID19(), Network: net, Days: days,
		Parallelism: 2, Seed: 77,
		Seeds:    []epihiper.Seeding{{CountyFIPS: best, Day: 0, Count: 5}},
		Recorder: epihiper.MultiRecorder{log, agg},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return log, agg, res
}

func TestTransitionLogMatchesResult(t *testing.T) {
	net := testNet(t)
	log, _, res := runLogged(t, net, 60)
	if len(log.Entries) == 0 {
		t.Fatal("empty log")
	}
	exposures := 0
	for _, e := range log.Entries {
		if e.To == disease.Exposed && e.Infector != epihiper.NoInfector {
			exposures++
		}
	}
	if int64(exposures) != res.TotalInfections {
		t.Fatalf("log exposures %d vs result %d", exposures, res.TotalInfections)
	}
}

func TestTransitionLogCSV(t *testing.T) {
	net := testNet(t)
	log, _, _ := runLogged(t, net, 30)
	var buf bytes.Buffer
	if err := log.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(log.Entries)+1 {
		t.Fatalf("%d lines want %d", len(lines), len(log.Entries)+1)
	}
	if !strings.HasPrefix(lines[0], "tick,pid,exit_state,contact_pid") {
		t.Fatalf("bad header %q", lines[0])
	}
	if log.RawBytes() <= 0 {
		t.Fatal("raw byte estimate non-positive")
	}
}

func TestDendogramStructure(t *testing.T) {
	net := testNet(t)
	log, _, res := runLogged(t, net, 60)
	d := BuildDendogram(log, disease.Exposed)
	if len(d.Roots) != 5 {
		t.Fatalf("%d roots want 5 seeds", len(d.Roots))
	}
	if int64(d.Size()) != res.TotalInfections+5 {
		t.Fatalf("dendogram size %d want %d", d.Size(), res.TotalInfections+5)
	}
	// Every infected person reachable from a root exactly once.
	visited := map[int32]bool{}
	var walk func(pid int32)
	walk = func(pid int32) {
		if visited[pid] {
			t.Fatalf("person %d visited twice (cycle)", pid)
		}
		visited[pid] = true
		for _, c := range d.Children[pid] {
			walk(c)
		}
	}
	total := 0
	for _, r := range d.Roots {
		total += d.SubtreeSize(r)
		walk(r)
	}
	if total != d.Size() {
		t.Fatalf("subtree sizes %d vs size %d", total, d.Size())
	}
	if res.TotalInfections > 20 && d.Depth() < 3 {
		t.Fatalf("depth %d implausibly shallow for %d infections", d.Depth(), res.TotalInfections)
	}
	// Children are infected after their parents.
	for parent, kids := range d.Children {
		pt, ok := d.InfectedAt[parent]
		if !ok {
			continue // seed parents are in InfectedAt too; defensive
		}
		for _, k := range kids {
			if d.InfectedAt[k] < pt {
				t.Fatalf("child %d infected before parent %d", k, parent)
			}
		}
	}
}

func TestSecondaryCases(t *testing.T) {
	net := testNet(t)
	log, _, res := runLogged(t, net, 60)
	d := BuildDendogram(log, disease.Exposed)
	sc := d.SecondaryCases()
	if len(sc) != d.Size() {
		t.Fatalf("secondary cases length %d want %d", len(sc), d.Size())
	}
	sum := 0
	for _, c := range sc {
		sum += c
	}
	if int64(sum) != res.TotalInfections {
		t.Fatalf("offspring sum %d want %d", sum, res.TotalInfections)
	}
}

func TestCountyAggregatorConsistency(t *testing.T) {
	net := testNet(t)
	_, agg, res := runLogged(t, net, 60)
	if len(agg.Counties()) == 0 {
		t.Fatal("no counties")
	}
	// County daily sums equal state daily, equal result daily.
	for _, st := range []disease.State{disease.Exposed, disease.Symptomatic, disease.Dead} {
		stateDaily := agg.StateDaily(st)
		for d := 0; d < 60; d++ {
			var sum int32
			for _, c := range agg.Counties() {
				if s := agg.Daily(c, st); s != nil {
					sum += s[d]
				}
			}
			if sum != stateDaily[d] {
				t.Fatalf("state %v day %d: county sum %d vs state %d", st, d, sum, stateDaily[d])
			}
			if stateDaily[d] != res.Daily[d][st] {
				t.Fatalf("state %v day %d: agg %d vs result %d", st, d, stateDaily[d], res.Daily[d][st])
			}
		}
	}
}

func TestCumulativeMonotone(t *testing.T) {
	net := testNet(t)
	_, agg, _ := runLogged(t, net, 60)
	cum := agg.StateCumulative(disease.Exposed)
	for d := 1; d < len(cum); d++ {
		if cum[d] < cum[d-1] {
			t.Fatal("cumulative decreased")
		}
	}
	conf := agg.StateConfirmedCumulative()
	for d := 1; d < len(conf); d++ {
		if conf[d] < conf[d-1] {
			t.Fatal("confirmed cumulative decreased")
		}
	}
	if conf[len(conf)-1] == 0 {
		t.Fatal("no confirmed cases despite epidemic")
	}
	// County cumulative matches its daily sum.
	c := agg.Counties()[0]
	cc := agg.Cumulative(c, disease.Exposed)
	var acc float64
	if s := agg.Daily(c, disease.Exposed); s != nil {
		for d, v := range s {
			acc += float64(v)
			if cc[d] != acc {
				t.Fatalf("county cumulative mismatch at day %d", d)
			}
		}
	}
}

func TestConfirmedCasesCombinesAttendedStates(t *testing.T) {
	net := testNet(t)
	_, agg, _ := runLogged(t, net, 60)
	var total int64
	for _, c := range agg.Counties() {
		for _, v := range agg.ConfirmedCases(c) {
			total += int64(v)
		}
	}
	var want int64
	for _, st := range []disease.State{disease.Attended, disease.AttendedH, disease.AttendedD} {
		for _, v := range agg.StateDaily(st) {
			want += int64(v)
		}
	}
	if total != want {
		t.Fatalf("confirmed %d want %d", total, want)
	}
}

func TestSummaryCSVAndBytes(t *testing.T) {
	net := testNet(t)
	_, agg, _ := runLogged(t, net, 30)
	var buf bytes.Buffer
	if err := agg.WriteSummaryCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "county_fips,day,state,new_count") {
		t.Fatal("bad summary header")
	}
	if agg.SummaryBytes() <= 0 {
		t.Fatal("summary bytes non-positive")
	}
}

func TestAggregatorIgnoresOutOfRangeTicks(t *testing.T) {
	net := testNet(t)
	agg := NewCountyAggregator(net, 10)
	agg.Record(-1, 0, disease.Susceptible, disease.Exposed, epihiper.NoInfector)
	agg.Record(10, 0, disease.Susceptible, disease.Exposed, epihiper.NoInfector)
	if s := agg.StateDaily(disease.Exposed); s[0] != 0 {
		t.Fatal("out-of-range tick recorded")
	}
}

func TestDendogramReinfectionKeepsFirstEdge(t *testing.T) {
	log := &TransitionLog{}
	log.Record(1, 10, disease.Susceptible, disease.Exposed, 5)
	log.Record(9, 10, disease.RxFailure, disease.Exposed, 7)
	d := BuildDendogram(log, disease.Exposed)
	if d.Size() != 1 {
		t.Fatalf("size %d want 1", d.Size())
	}
	if len(d.Children[5]) != 1 || len(d.Children[7]) != 0 {
		t.Fatal("reinfection re-rooted the tree")
	}
	if d.InfectedAt[10] != 1 {
		t.Fatal("first infection tick lost")
	}
}

func TestMultiRecorderFanOut(t *testing.T) {
	a, b := &TransitionLog{}, &TransitionLog{}
	m := epihiper.MultiRecorder{a, b}
	m.Record(3, 1, disease.Susceptible, disease.Exposed, 0)
	if len(a.Entries) != 1 || len(b.Entries) != 1 {
		t.Fatal("multirecorder did not fan out")
	}
}
