package output

import (
	"math"
	"sort"
)

// This file adds the epidemiological analytics the workflow's "analytics
// that combine the simulation output, surveillance data and detailed
// synthetic data" step computes from dendograms: the effective reproduction
// number over time and the generation-interval distribution — products the
// policy assessments consume.

// RtSeries estimates the effective reproduction number by infection cohort:
// Rt[t] is the mean number of secondary infections caused by persons who
// were themselves infected during the window [t, t+window). Cohorts whose
// members were infected too close to the end of the horizon would be
// right-censored; the caller should ignore the trailing windows.
func (d *Dendogram) RtSeries(horizonTicks, window int) []float64 {
	if window <= 0 {
		window = 7
	}
	numWindows := (horizonTicks + window - 1) / window
	if numWindows <= 0 {
		return nil
	}
	offspring := make([]float64, numWindows)
	cohort := make([]float64, numWindows)
	for pid, tick := range d.InfectedAt {
		w := int(tick) / window
		if w >= numWindows {
			continue
		}
		cohort[w]++
		offspring[w] += float64(len(d.Children[pid]))
	}
	out := make([]float64, numWindows)
	for w := range out {
		if cohort[w] > 0 {
			out[w] = offspring[w] / cohort[w]
		} else {
			out[w] = math.NaN()
		}
	}
	return out
}

// GenerationIntervals returns the infector-to-infectee timing gaps (in
// ticks) across the forest, sorted ascending.
func (d *Dendogram) GenerationIntervals() []float64 {
	var out []float64
	for parent, kids := range d.Children {
		pt, ok := d.InfectedAt[parent]
		if !ok {
			continue
		}
		for _, k := range kids {
			out = append(out, float64(d.InfectedAt[k]-pt))
		}
	}
	sort.Float64s(out)
	return out
}

// MeanGenerationInterval returns the average generation interval, or NaN
// for an empty forest.
func (d *Dendogram) MeanGenerationInterval() float64 {
	gi := d.GenerationIntervals()
	if len(gi) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range gi {
		s += v
	}
	return s / float64(len(gi))
}

// TopSpreaders returns the n persons with the most direct secondary cases,
// in descending order — superspreading analysis.
type Spreader struct {
	PID       int32
	Secondary int
}

// TopSpreaders returns up to n spreaders sorted by offspring count.
func (d *Dendogram) TopSpreaders(n int) []Spreader {
	out := make([]Spreader, 0, len(d.Children))
	for pid, kids := range d.Children {
		if len(kids) > 0 {
			out = append(out, Spreader{PID: pid, Secondary: len(kids)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Secondary != out[j].Secondary {
			return out[i].Secondary > out[j].Secondary
		}
		return out[i].PID < out[j].PID
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// Dispersion estimates the offspring-distribution dispersion via the
// moment identity k ≈ m² / (v − m) for a negative-binomial offspring
// distribution with mean m and variance v. Small k (≪ 1) indicates
// superspreading; +Inf indicates Poisson-like homogeneity.
func (d *Dendogram) Dispersion() float64 {
	sc := d.SecondaryCases()
	if len(sc) < 2 {
		return math.NaN()
	}
	m, v := 0.0, 0.0
	for _, c := range sc {
		m += float64(c)
	}
	m /= float64(len(sc))
	for _, c := range sc {
		dd := float64(c) - m
		v += dd * dd
	}
	v /= float64(len(sc) - 1)
	if v <= m {
		return math.Inf(1)
	}
	return m * m / (v - m)
}
