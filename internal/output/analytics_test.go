package output

import (
	"math"
	"testing"

	"repro/internal/disease"
	"repro/internal/epihiper"
)

// chainLog builds a known forest: 0 infects 1 and 2 at ticks 3 and 5;
// 1 infects 3 at tick 8; 4 is an isolated seed.
func chainLog() *TransitionLog {
	l := &TransitionLog{}
	l.Record(0, 0, disease.Susceptible, disease.Exposed, epihiper.NoInfector)
	l.Record(0, 4, disease.Susceptible, disease.Exposed, epihiper.NoInfector)
	l.Record(3, 1, disease.Susceptible, disease.Exposed, 0)
	l.Record(5, 2, disease.Susceptible, disease.Exposed, 0)
	l.Record(8, 3, disease.Susceptible, disease.Exposed, 1)
	return l
}

func TestRtSeriesKnownForest(t *testing.T) {
	d := BuildDendogram(chainLog(), disease.Exposed)
	rt := d.RtSeries(14, 7)
	if len(rt) != 2 {
		t.Fatalf("%d windows want 2", len(rt))
	}
	// Window 0 cohort: persons 0, 4, 1, 2 (ticks 0,0,3,5) with offspring
	// 2+0+1+0 = 3 → Rt = 0.75.
	if math.Abs(rt[0]-0.75) > 1e-12 {
		t.Fatalf("Rt[0] = %v want 0.75", rt[0])
	}
	// Window 1 cohort: person 3 with no offspring → 0.
	if rt[1] != 0 {
		t.Fatalf("Rt[1] = %v want 0", rt[1])
	}
}

func TestRtSeriesEmptyWindowIsNaN(t *testing.T) {
	d := BuildDendogram(chainLog(), disease.Exposed)
	rt := d.RtSeries(28, 7)
	if !math.IsNaN(rt[3]) {
		t.Fatalf("empty window should be NaN, got %v", rt[3])
	}
}

func TestGenerationIntervals(t *testing.T) {
	d := BuildDendogram(chainLog(), disease.Exposed)
	gi := d.GenerationIntervals()
	want := []float64{3, 5, 5} // 0→1 at 3, 0→2 at 5, 1→3 at 8−3=5
	if len(gi) != len(want) {
		t.Fatalf("%d intervals want %d", len(gi), len(want))
	}
	for i := range want {
		if gi[i] != want[i] {
			t.Fatalf("intervals %v want %v", gi, want)
		}
	}
	if m := d.MeanGenerationInterval(); math.Abs(m-13.0/3.0) > 1e-12 {
		t.Fatalf("mean interval %v", m)
	}
}

func TestMeanGenerationIntervalEmpty(t *testing.T) {
	d := BuildDendogram(&TransitionLog{}, disease.Exposed)
	if !math.IsNaN(d.MeanGenerationInterval()) {
		t.Fatal("empty forest should have NaN mean interval")
	}
}

func TestTopSpreaders(t *testing.T) {
	d := BuildDendogram(chainLog(), disease.Exposed)
	top := d.TopSpreaders(5)
	if len(top) != 2 {
		t.Fatalf("%d spreaders want 2", len(top))
	}
	if top[0].PID != 0 || top[0].Secondary != 2 {
		t.Fatalf("top spreader %+v", top[0])
	}
	if top[1].PID != 1 || top[1].Secondary != 1 {
		t.Fatalf("second spreader %+v", top[1])
	}
	if len(d.TopSpreaders(1)) != 1 {
		t.Fatal("cap not applied")
	}
}

func TestDispersion(t *testing.T) {
	d := BuildDendogram(chainLog(), disease.Exposed)
	k := d.Dispersion()
	if math.IsNaN(k) || k <= 0 {
		t.Fatalf("dispersion %v", k)
	}
	// A homogeneous forest (everyone one offspring in a chain) has
	// variance < mean → +Inf dispersion.
	l := &TransitionLog{}
	l.Record(0, 0, disease.Susceptible, disease.Exposed, epihiper.NoInfector)
	l.Record(2, 1, disease.Susceptible, disease.Exposed, 0)
	l.Record(4, 2, disease.Susceptible, disease.Exposed, 1)
	l.Record(6, 3, disease.Susceptible, disease.Exposed, 2)
	chain := BuildDendogram(l, disease.Exposed)
	if !math.IsInf(chain.Dispersion(), 1) {
		t.Fatalf("chain dispersion %v want +Inf", chain.Dispersion())
	}
}

// On a real simulated epidemic, Rt starts above 1 (growth) and ends below
// 1 (depletion), and the mean generation interval is plausible for the
// COVID model (3–10 days).
func TestAnalyticsOnSimulatedEpidemic(t *testing.T) {
	net := testNet(t)
	log, _, res := runLogged(t, net, 90)
	if res.TotalInfections < 50 {
		t.Skip("epidemic too small for Rt analysis in this draw")
	}
	d := BuildDendogram(log, disease.Exposed)
	rt := d.RtSeries(90, 7)
	// First non-empty window with a meaningful cohort should show growth.
	var early float64
	for _, v := range rt[:4] {
		if !math.IsNaN(v) && v > 0 {
			early = v
			break
		}
	}
	if early <= 1 {
		t.Fatalf("early Rt %v should exceed 1 during growth", early)
	}
	gi := d.MeanGenerationInterval()
	if gi < 2 || gi > 12 {
		t.Fatalf("mean generation interval %v days implausible", gi)
	}
	// Late cohorts (excluding right-censored tail) decline below early.
	var late float64 = math.NaN()
	for w := len(rt) - 3; w >= len(rt)-5 && w >= 0; w-- {
		if !math.IsNaN(rt[w]) {
			late = rt[w]
			break
		}
	}
	if !math.IsNaN(late) && late >= early {
		t.Fatalf("Rt did not decline: early %v late %v", early, late)
	}
}
