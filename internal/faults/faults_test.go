package faults

import (
	"math"
	"testing"
)

func TestZeroSpecIsFailureFree(t *testing.T) {
	if (Spec{}).Enabled() {
		t.Fatal("zero spec reports enabled")
	}
	if m := New(Spec{Seed: 42}); m != nil {
		t.Fatal("seed alone should not enable the model")
	}
	var m *Model // nil model must be safe to query
	if f := m.Task("VA", 1, 2, 0); f.Kind != None {
		t.Fatalf("nil model injected %v", f.Kind)
	}
	if m.TransferStall("configs", 0) {
		t.Fatal("nil model stalled a transfer")
	}
	if m.Jitter("backoff", 0, 0, 0) != 0 {
		t.Fatal("nil model jitter not zero")
	}
}

func TestSpecValidate(t *testing.T) {
	if err := (Spec{TaskCrashProb: 0.5, DBRefusalProb: 1, TransferStallProb: 0}).Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	for _, bad := range []Spec{
		{TaskCrashProb: -0.1},
		{DBRefusalProb: 1.5},
		{TransferStallProb: math.NaN()},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("invalid spec accepted: %+v", bad)
		}
	}
}

// Decisions must be pure functions of (seed, identity, attempt): querying in
// any order, any number of times, gives the same answer.
func TestDecisionsDeterministicAndOrderIndependent(t *testing.T) {
	spec := Spec{Seed: 7, TaskCrashProb: 0.3, DBRefusalProb: 0.2, TransferStallProb: 0.25}
	a, b := New(spec), New(spec)
	type q struct {
		region             string
		cell, rep, attempt int
	}
	queries := []q{{"CA", 0, 0, 0}, {"VA", 3, 1, 2}, {"WY", 11, 14, 1}, {"CA", 0, 0, 1}}
	// Forward on a, reversed and repeated on b.
	fa := make([]TaskFault, len(queries))
	for i, x := range queries {
		fa[i] = a.Task(x.region, x.cell, x.rep, x.attempt)
	}
	for i := len(queries) - 1; i >= 0; i-- {
		x := queries[i]
		b.Task(x.region, x.cell, x.rep, x.attempt) // warm, answers discarded
	}
	for i, x := range queries {
		if got := b.Task(x.region, x.cell, x.rep, x.attempt); got != fa[i] {
			t.Fatalf("query %d: %+v != %+v", i, got, fa[i])
		}
	}
	if a.TransferStall("night-configs", 0) != b.TransferStall("night-configs", 0) {
		t.Fatal("transfer decision not deterministic")
	}
	if a.Jitter("backoff", 1, 2, 3) != b.Jitter("backoff", 1, 2, 3) {
		t.Fatal("jitter not deterministic")
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	specA := Spec{Seed: 1, TaskCrashProb: 0.5}
	specB := Spec{Seed: 2, TaskCrashProb: 0.5}
	a, b := New(specA), New(specB)
	same := 0
	const n = 200
	for i := 0; i < n; i++ {
		if (a.Task("VA", i, 0, 0).Kind == Crash) == (b.Task("VA", i, 0, 0).Kind == Crash) {
			same++
		}
	}
	if same == n {
		t.Fatal("seeds 1 and 2 produced identical crash traces")
	}
}

// Empirical rates must track the configured probabilities (the model is a
// hash, not an RNG stream — verify it is still uniform enough).
func TestEmpiricalRates(t *testing.T) {
	spec := Spec{Seed: 99, TaskCrashProb: 0.2, DBRefusalProb: 0.1, TransferStallProb: 0.3}
	m := New(spec)
	const n = 20000
	crashes, refusals, stalls := 0, 0, 0
	for i := 0; i < n; i++ {
		switch m.Task("CA", i, i%15, 0).Kind {
		case Crash:
			crashes++
		case DBRefusal:
			refusals++
		}
		if m.TransferStall("summaries", i) {
			stalls++
		}
	}
	// DB refusal is drawn first; crash rate is conditional on no refusal.
	wantCrash := 0.2 * (1 - 0.1)
	checkRate := func(name string, got int, want float64) {
		r := float64(got) / n
		if math.Abs(r-want) > 0.02 {
			t.Errorf("%s rate %.3f want ≈%.3f", name, r, want)
		}
	}
	checkRate("crash", crashes, wantCrash)
	checkRate("refusal", refusals, 0.1)
	checkRate("stall", stalls, 0.3)
}

func TestCrashFracInRange(t *testing.T) {
	m := New(Spec{Seed: 5, TaskCrashProb: 1})
	for i := 0; i < 1000; i++ {
		f := m.Task("TX", i, 0, 0)
		if f.Kind != Crash {
			t.Fatalf("prob 1 did not crash (got %v)", f.Kind)
		}
		if f.Frac <= 0 || f.Frac >= 1 {
			t.Fatalf("crash frac %v outside (0,1)", f.Frac)
		}
	}
}

func TestAttemptsIndependent(t *testing.T) {
	m := New(Spec{Seed: 11, TaskCrashProb: 0.5})
	differs := false
	for i := 0; i < 100; i++ {
		if m.Task("NC", i, 0, 0).Kind != m.Task("NC", i, 0, 1).Kind {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("attempt number does not affect the decision — retries could never succeed")
	}
}
