package faults

import (
	"sync/atomic"

	"repro/internal/obs"
)

// Counters books what the fault model injected and what the recovery layer
// did about it, with atomic fields so the concurrent executors and the
// recovery loop can bump them lock-free. Counting never influences a fault
// decision — the model stays a pure hash — so enabling counters cannot
// perturb a deterministic trace. Recovery tests assert on these counts
// directly instead of re-deriving them from reports.
type Counters struct {
	// Crashes / DBRefusals / TransferStalls count injected faults by class.
	Crashes        atomic.Int64
	DBRefusals     atomic.Int64
	TransferStalls atomic.Int64
	// Recovered counts previously-failed tasks that a requeue eventually
	// completed; Shed counts tasks dropped by the recovery policy.
	Recovered atomic.Int64
	Shed      atomic.Int64
}

// Injected returns the total injected fault count across classes.
func (c *Counters) Injected() int64 {
	return c.Crashes.Load() + c.DBRefusals.Load() + c.TransferStalls.Load()
}

// CountersSnapshot is a point-in-time copy of the counters.
type CountersSnapshot struct {
	Crashes, DBRefusals, TransferStalls int64
	Recovered, Shed                     int64
}

// Snapshot copies the counters.
func (c *Counters) Snapshot() CountersSnapshot {
	return CountersSnapshot{
		Crashes:        c.Crashes.Load(),
		DBRefusals:     c.DBRefusals.Load(),
		TransferStalls: c.TransferStalls.Load(),
		Recovered:      c.Recovered.Load(),
		Shed:           c.Shed.Load(),
	}
}

// Register exposes the counters on a metrics registry as the fault series
// of the unified /metrics endpoint.
func (c *Counters) Register(reg *obs.Registry) {
	reg.Help("epi_faults_injected_total", "injected faults by class")
	reg.CounterFunc(`epi_faults_injected_total{kind="crash"}`,
		func() float64 { return float64(c.Crashes.Load()) })
	reg.CounterFunc(`epi_faults_injected_total{kind="db_refusal"}`,
		func() float64 { return float64(c.DBRefusals.Load()) })
	reg.CounterFunc(`epi_faults_injected_total{kind="transfer_stall"}`,
		func() float64 { return float64(c.TransferStalls.Load()) })
	reg.Help("epi_faults_recovered_total", "failed tasks completed after requeue")
	reg.CounterFunc("epi_faults_recovered_total",
		func() float64 { return float64(c.Recovered.Load()) })
	reg.Help("epi_faults_shed_total", "tasks dropped by the recovery policy")
	reg.CounterFunc("epi_faults_shed_total",
		func() float64 { return float64(c.Shed.Load()) })
}
