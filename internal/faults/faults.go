// Package faults models the operational failures the production pipeline
// had to absorb by hand: nightly <cell, region> batches on the remote
// cluster hit node/task crashes, population-database connection refusals,
// and Globus transfer stalls inside the hard 10pm–8am window. The model is
// seeded and fully deterministic — every decision is a pure hash of
// (seed, fault class, identity, attempt), so the same Spec produces the
// same failure trace regardless of execution order, goroutine scheduling
// or GOMAXPROCS. That property is what makes recovery behaviour (retry,
// requeue, shed) reproducible and testable.
package faults

import "math"

// Spec configures the fault model. The zero value is failure-free; it is a
// plain value type so it can be embedded verbatim in night reports.
type Spec struct {
	// Seed drives every fault decision; distinct seeds give independent
	// failure traces.
	Seed uint64
	// TaskCrashProb is the per-attempt probability that a running task is
	// killed mid-execution (node failure, OOM, Slurm preemption).
	TaskCrashProb float64
	// DBRefusalProb is the per-attempt probability that the task's region
	// database refuses the connection at start-up (the bound of Section V
	// enforced at run time).
	DBRefusalProb float64
	// TransferStallProb is the per-attempt probability that a site-to-site
	// transfer stalls and must be retried.
	TransferStallProb float64
}

// Enabled reports whether any fault class can fire.
func (s Spec) Enabled() bool {
	return s.TaskCrashProb > 0 || s.DBRefusalProb > 0 || s.TransferStallProb > 0
}

// Validate rejects probabilities outside [0, 1].
func (s Spec) Validate() error {
	for _, p := range []float64{s.TaskCrashProb, s.DBRefusalProb, s.TransferStallProb} {
		if math.IsNaN(p) || p < 0 || p > 1 {
			return errBadProb(p)
		}
	}
	return nil
}

type errBadProb float64

func (e errBadProb) Error() string { return "faults: probability outside [0,1]" }

// Kind classifies a task-level fault.
type Kind int

// Task-level fault classes.
const (
	None Kind = iota
	// Crash kills the task after a fraction of its runtime has elapsed.
	Crash
	// DBRefusal fails the task instantly at start: the region database
	// refused the connection.
	DBRefusal
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Crash:
		return "crash"
	case DBRefusal:
		return "db-refusal"
	default:
		return "unknown"
	}
}

// TaskFault is the fate of one task attempt.
type TaskFault struct {
	Kind Kind
	// Frac is the fraction of the task's runtime completed before a Crash
	// (in (0, 1)); zero for other kinds.
	Frac float64
}

// Model answers fault queries for a Spec.
type Model struct {
	spec Spec
	// ctrs, when set, books injected faults. Counting happens after the
	// decision is drawn, so it never changes the deterministic trace.
	ctrs *Counters
}

// New builds a model. A nil model is returned for the zero (failure-free)
// spec so callers can branch on it cheaply.
func New(spec Spec) *Model {
	if !spec.Enabled() {
		return nil
	}
	return &Model{spec: spec}
}

// Spec returns the model's configuration.
func (m *Model) Spec() Spec { return m.spec }

// SetCounters attaches an injection-count sink; nil detaches it. Safe on a
// nil model (the failure-free case books nothing).
func (m *Model) SetCounters(c *Counters) {
	if m != nil {
		m.ctrs = c
	}
}

// Fault-class domain tags keep the decision streams independent.
const (
	tagCrash uint64 = 0xC4A5_11ED_0000_0001
	tagFrac  uint64 = 0xC4A5_11ED_0000_0002
	tagDB    uint64 = 0xDB1F_05A1_0000_0003
	tagStall uint64 = 0x57A1_1000_0000_0004
	tagJit   uint64 = 0x717E_4000_0000_0005
)

// mix64 is the splitmix64 finalizer: a strong 64-bit mixing permutation.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hash folds values into the model's seed, one mixing round per value.
func (m *Model) hash(vals ...uint64) uint64 {
	h := mix64(m.spec.Seed ^ 0x9e3779b97f4a7c15)
	for _, v := range vals {
		h = mix64(h ^ v)
	}
	return h
}

func hashString(s string) uint64 {
	h := uint64(1469598103934665603) // FNV-1a
	for _, c := range []byte(s) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}

// uniform returns a deterministic uniform value in [0, 1) for the tags.
func (m *Model) uniform(vals ...uint64) float64 {
	return float64(m.hash(vals...)>>11) * (1.0 / (1 << 53))
}

// Task decides the fate of attempt `attempt` (0-based) of the given
// <region, cell, replicate> task. The decision is a pure function of the
// spec and the arguments. DB refusal is drawn first (it strikes at start,
// before the task can crash), then the crash draw.
func (m *Model) Task(region string, cell, replicate, attempt int) TaskFault {
	if m == nil {
		return TaskFault{}
	}
	id := []uint64{hashString(region), uint64(uint32(cell)), uint64(uint32(replicate)), uint64(uint32(attempt))}
	if m.spec.DBRefusalProb > 0 && m.uniform(append([]uint64{tagDB}, id...)...) < m.spec.DBRefusalProb {
		if m.ctrs != nil {
			m.ctrs.DBRefusals.Add(1)
		}
		return TaskFault{Kind: DBRefusal}
	}
	if m.spec.TaskCrashProb > 0 && m.uniform(append([]uint64{tagCrash}, id...)...) < m.spec.TaskCrashProb {
		// Crash somewhere in (0, 1) of the runtime, bounded away from the
		// endpoints so a crashed attempt always wastes some node-time but
		// never masquerades as a completion.
		u := m.uniform(append([]uint64{tagFrac}, id...)...)
		if m.ctrs != nil {
			m.ctrs.Crashes.Add(1)
		}
		return TaskFault{Kind: Crash, Frac: 0.02 + 0.96*u}
	}
	return TaskFault{}
}

// TransferStall decides whether attempt `attempt` (0-based) of the labeled
// transfer stalls.
func (m *Model) TransferStall(label string, attempt int) bool {
	if m == nil || m.spec.TransferStallProb <= 0 {
		return false
	}
	stalled := m.uniform(tagStall, hashString(label), uint64(uint32(attempt))) < m.spec.TransferStallProb
	if stalled && m.ctrs != nil {
		m.ctrs.TransferStalls.Add(1)
	}
	return stalled
}

// Jitter returns a deterministic value in [0, 1) used to spread backoff
// delays so retries do not re-collide (the "jittered backoff" of the
// recovery policy). Scope distinguishes independent jitter streams.
func (m *Model) Jitter(scope string, cell, replicate, attempt int) float64 {
	if m == nil {
		return 0
	}
	return m.uniform(tagJit, hashString(scope), uint64(uint32(cell)), uint64(uint32(replicate)), uint64(uint32(attempt)))
}
