// Package gp implements the Gaussian-process emulator of the paper's
// Bayesian calibration framework (Appendix E): a zero-mean GP per basis
// coefficient with the Gaussian ("squared-exponential") correlation
// function of eq. (4),
//
//	R(θ, θ′; ρ) = ∏_k ρ_k^{4 (θ_k − θ′_k)²},
//
// a marginal precision λ_w, and a nugget "so that interpolation is not
// necessarily enforced". Hyperparameters are estimated by profile maximum
// likelihood with coordinate ascent over the correlation parameters —
// the paper's full Bayesian treatment of hyperparameters reduces, for the
// purposes of reproducing Figures 15–17, to a point estimate plus the
// nugget-inflated predictive variance.
package gp

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/linalg"
)

// GP is a fitted single-output Gaussian process over inputs scaled to
// [0, 1]^d.
type GP struct {
	X      [][]float64 // design points, n × d, in [0,1]
	w      []float64   // observed outputs
	Rho    []float64   // per-dimension correlation parameters in (0,1)
	Lambda float64     // marginal precision
	Nugget float64
	chol   *linalg.Matrix // Cholesky of C = R + g I
	alpha  []float64      // C^{-1} w
	logRho []float64      // precomputed log ρ_k for the corr fast path
}

// corr evaluates the paper's Gaussian correlation between two points via the
// precomputed-log form: ∏_k ρ_k^{4d²} = exp(4 Σ_k d² log ρ_k) — a single
// Exp per pair instead of d Pows. The fitted ρ live in (0,1), so log ρ is
// finite and the two forms agree to rounding.
func corr(a, b, logRho []float64) float64 {
	s := 0.0
	for k := range a {
		d := a[k] - b[k]
		s += d * d * logRho[k]
	}
	return math.Exp(4 * s)
}

// logRhoOf precomputes log ρ_k once per fitted parameter vector.
func logRhoOf(rho []float64) []float64 {
	lr := make([]float64, len(rho))
	for k, r := range rho {
		lr[k] = math.Log(r)
	}
	return lr
}

// corrMatrix builds R + g·I over the design.
func corrMatrix(x [][]float64, rho []float64, nugget float64) *linalg.Matrix {
	lr := logRhoOf(rho)
	n := len(x)
	m := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1+nugget)
		for j := i + 1; j < n; j++ {
			c := corr(x[i], x[j], lr)
			m.Set(i, j, c)
			m.Set(j, i, c)
		}
	}
	return m
}

// profileNegLML returns the negative profile log marginal likelihood (up to
// constants) for the given correlation parameters: with λ profiled out,
// n·log(wᵀC⁻¹w) + log|C|.
func profileNegLML(x [][]float64, w []float64, rho []float64, nugget float64) (float64, error) {
	c := corrMatrix(x, rho, nugget)
	l, err := linalg.Cholesky(c)
	if err != nil {
		return math.Inf(1), err
	}
	alpha := linalg.SolveCholesky(l, w)
	q := linalg.Dot(w, alpha)
	if q <= 0 {
		return math.Inf(1), fmt.Errorf("gp: non-positive quadratic form")
	}
	n := float64(len(w))
	return n*math.Log(q) + linalg.LogDetCholesky(l), nil
}

// Fit estimates a GP over the scaled design x (all coordinates in [0,1])
// and outputs w by coordinate-ascent profile maximum likelihood over the
// per-dimension correlation parameters.
func Fit(x [][]float64, w []float64) (*GP, error) {
	n := len(x)
	if n == 0 || len(w) != n {
		return nil, fmt.Errorf("gp: design size %d, outputs %d", n, len(w))
	}
	d := len(x[0])
	if d == 0 {
		return nil, fmt.Errorf("gp: zero-dimensional design")
	}
	for i, xi := range x {
		if len(xi) != d {
			return nil, fmt.Errorf("gp: ragged design at row %d", i)
		}
		for k, v := range xi {
			if v < -1e-9 || v > 1+1e-9 {
				return nil, fmt.Errorf("gp: design point %d dim %d = %g outside [0,1]", i, k, v)
			}
		}
	}

	grid := []float64{0.05, 0.2, 0.4, 0.6, 0.75, 0.85, 0.92, 0.97, 0.995}
	nuggets := []float64{1e-6, 1e-4, 1e-2}
	rho := make([]float64, d)
	for k := range rho {
		rho[k] = 0.6
	}
	bestNugget := nuggets[0]
	best, err := profileNegLML(x, w, rho, bestNugget)
	if err != nil {
		best = math.Inf(1)
	}
	// Coordinate ascent: two sweeps over dimensions, then nugget.
	for sweep := 0; sweep < 2; sweep++ {
		for k := 0; k < d; k++ {
			for _, r := range grid {
				old := rho[k]
				rho[k] = r
				v, err := profileNegLML(x, w, rho, bestNugget)
				if err == nil && v < best {
					best = v
				} else {
					rho[k] = old
				}
			}
		}
		for _, g := range nuggets {
			v, err := profileNegLML(x, w, rho, g)
			if err == nil && v < best {
				best = v
				bestNugget = g
			}
		}
	}
	if math.IsInf(best, 1) {
		// Degenerate design (e.g. duplicated points): fall back to a
		// heavy nugget.
		bestNugget = 0.1
	}
	c := corrMatrix(x, rho, bestNugget)
	l, err := linalg.Cholesky(c)
	if err != nil {
		return nil, fmt.Errorf("gp: final factorization: %w", err)
	}
	alpha := linalg.SolveCholesky(l, w)
	q := linalg.Dot(w, alpha)
	lambda := float64(n) / q
	if q <= 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		lambda = 1
	}
	return &GP{
		X: x, w: append([]float64(nil), w...),
		Rho: rho, Lambda: lambda, Nugget: bestNugget,
		chol: l, alpha: alpha, logRho: logRhoOf(rho),
	}, nil
}

// Predict returns the posterior mean and variance at a scaled input point.
func (g *GP) Predict(theta []float64) (mean, variance float64) {
	n := len(g.X)
	buf := NewPredictBuf(n)
	return g.PredictInto(theta, buf)
}

// PredictBuf holds the per-prediction scratch of one GP (or of a MultiGP
// whose design all GPs share). One buffer per goroutine: predictions into
// distinct buffers are safe concurrently.
type PredictBuf struct {
	r, y []float64
}

// NewPredictBuf sizes a scratch buffer for a design of n points.
func NewPredictBuf(n int) *PredictBuf {
	return &PredictBuf{
		r: make([]float64, n),
		y: make([]float64, n),
	}
}

// PredictInto is Predict reusing caller scratch, for likelihood hot loops
// that evaluate the emulator once per MCMC step.
func (g *GP) PredictInto(theta []float64, buf *PredictBuf) (mean, variance float64) {
	n := len(g.X)
	r := buf.r[:n]
	for i := 0; i < n; i++ {
		r[i] = corr(theta, g.X[i], g.logRho)
	}
	mean = linalg.Dot(r, g.alpha)
	// rᵀC⁻¹r = ‖L⁻¹r‖², so a single forward solve suffices — no
	// back-substitution.
	y := buf.y[:n]
	linalg.ForwardSolveInto(g.chol, r, y)
	variance = (1 + g.Nugget - linalg.Dot(y, y)) / g.Lambda
	if variance < 0 {
		variance = 0
	}
	return mean, variance
}

// Scaler maps natural parameter ranges to the unit cube and back; GPMSA
// standardizes inputs this way before fitting.
type Scaler struct {
	Lo, Hi []float64
}

// NewScaler builds a scaler from parallel bound slices.
func NewScaler(lo, hi []float64) (*Scaler, error) {
	if len(lo) != len(hi) || len(lo) == 0 {
		return nil, fmt.Errorf("gp: scaler bounds mismatch")
	}
	for k := range lo {
		if hi[k] < lo[k] {
			return nil, fmt.Errorf("gp: inverted bound in dim %d", k)
		}
	}
	return &Scaler{Lo: append([]float64(nil), lo...), Hi: append([]float64(nil), hi...)}, nil
}

// ToUnit maps a natural point into [0,1]^d.
func (s *Scaler) ToUnit(theta []float64) []float64 {
	out := make([]float64, len(theta))
	for k := range theta {
		span := s.Hi[k] - s.Lo[k]
		if span == 0 {
			out[k] = 0
			continue
		}
		out[k] = (theta[k] - s.Lo[k]) / span
	}
	return out
}

// FromUnit maps a unit-cube point back to natural units.
func (s *Scaler) FromUnit(u []float64) []float64 {
	out := make([]float64, len(u))
	for k := range u {
		out[k] = s.Lo[k] + u[k]*(s.Hi[k]-s.Lo[k])
	}
	return out
}

// MultiGP emulates a multivariate (time-series) simulator output through
// the basis representation of eq. (3): η(θ) = φ₀ + Σ_k φ_k w_k(θ), with the
// φ_k eigenvector (PCA) basis functions and one GP per basis weight.
type MultiGP struct {
	Mean      []float64      // φ₀, length T
	Basis     *linalg.Matrix // T × pη, columns scaled by sqrt eigenvalues
	GPs       []*GP          // one per basis column
	Explained float64        // PCA variance captured
	// ResidVar is the per-time-point variance left outside the basis
	// (the w₀ term of eq. 3).
	ResidVar []float64
}

// FitMulti fits the basis representation to a design (unit-cube inputs) and
// an n × T output matrix, with pη basis functions (the paper uses pη = 5).
func FitMulti(x [][]float64, y *linalg.Matrix, numBasis int) (*MultiGP, error) {
	n := len(x)
	if y.Rows != n || n == 0 {
		return nil, fmt.Errorf("gp: output rows %d vs design %d", y.Rows, n)
	}
	if numBasis <= 0 {
		numBasis = 5
	}
	mean, basis, explained, err := linalg.PCA(y, numBasis)
	if err != nil {
		return nil, err
	}
	pEta := basis.Cols
	// Weights solve the least-squares projection onto the basis:
	// W = (ΦᵀΦ)^{-1} Φᵀ (y − φ₀), column per basis function.
	btb := basis.T().Mul(basis)
	for k := 0; k < pEta; k++ {
		btb.Add(k, k, 1e-10)
	}
	l, err := linalg.Cholesky(btb)
	if err != nil {
		return nil, fmt.Errorf("gp: basis gram: %w", err)
	}
	weights := linalg.NewMatrix(n, pEta)
	resid := make([]float64, y.Cols)
	centered := make([]float64, y.Cols)
	for i := 0; i < n; i++ {
		for t := 0; t < y.Cols; t++ {
			centered[t] = y.At(i, t) - mean[t]
		}
		bty := basis.T().MulVec(centered)
		wi := linalg.SolveCholesky(l, bty)
		for k := 0; k < pEta; k++ {
			weights.Set(i, k, wi[k])
		}
		recon := basis.MulVec(wi)
		for t := 0; t < y.Cols; t++ {
			d := centered[t] - recon[t]
			resid[t] += d * d
		}
	}
	for t := range resid {
		resid[t] /= float64(n)
	}
	m := &MultiGP{Mean: mean, Basis: basis, Explained: explained, ResidVar: resid}
	// The per-basis GPs are independent (each sees only its own weight
	// column), so fit them concurrently; results are positional, keeping
	// the fit deterministic regardless of scheduling.
	m.GPs = make([]*GP, pEta)
	errs := make([]error, pEta)
	var wg sync.WaitGroup
	for k := 0; k < pEta; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			m.GPs[k], errs[k] = Fit(x, weights.Col(k))
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("gp: basis %d: %w", k, err)
		}
	}
	return m, nil
}

// Predict returns the emulated output mean and pointwise variance at a
// unit-cube input.
func (m *MultiGP) Predict(theta []float64) (mean, variance []float64) {
	t := len(m.Mean)
	mean = make([]float64, t)
	variance = make([]float64, t)
	m.PredictInto(theta, mean, variance, m.NewBuf())
	return mean, variance
}

// MultiBuf is per-goroutine scratch for MultiGP predictions; one per MCMC
// chain lets concurrent likelihood evaluations share a fitted emulator
// without allocation or synchronization.
type MultiBuf struct {
	pb          *PredictBuf
	wMean, wVar []float64
}

// NewBuf sizes a scratch buffer for this emulator.
func (m *MultiGP) NewBuf() *MultiBuf {
	n := 0
	if len(m.GPs) > 0 {
		n = len(m.GPs[0].X)
	}
	return &MultiBuf{
		pb:    NewPredictBuf(n),
		wMean: make([]float64, len(m.GPs)),
		wVar:  make([]float64, len(m.GPs)),
	}
}

// PredictInto is Predict into caller-provided mean/variance slices (length
// T) using the given scratch buffer.
func (m *MultiGP) PredictInto(theta, mean, variance []float64, buf *MultiBuf) {
	pEta := len(m.GPs)
	for k, g := range m.GPs {
		buf.wMean[k], buf.wVar[k] = g.PredictInto(theta, buf.pb)
	}
	t := len(m.Mean)
	for i := 0; i < t; i++ {
		v := m.Mean[i]
		s2 := m.ResidVar[i]
		row := m.Basis.Data[i*m.Basis.Cols : i*m.Basis.Cols+pEta]
		for k, b := range row {
			v += b * buf.wMean[k]
			s2 += b * b * buf.wVar[k]
		}
		mean[i] = v
		variance[i] = s2
	}
}

// PredictWeights returns the basis-weight means and variances at a
// unit-cube input, used by the calibration likelihood.
func (m *MultiGP) PredictWeights(theta []float64) (mean, variance []float64) {
	pEta := len(m.GPs)
	mean = make([]float64, pEta)
	variance = make([]float64, pEta)
	for k, g := range m.GPs {
		mean[k], variance[k] = g.Predict(theta)
	}
	return mean, variance
}
