package gp

import (
	"math"
	"testing"

	"repro/internal/lhs"
	"repro/internal/linalg"
	"repro/internal/stats"
)

// designFor builds an n-point LHS design in [0,1]^d.
func designFor(t testing.TB, seed uint64, n, d int) [][]float64 {
	t.Helper()
	r := stats.NewRNG(seed)
	ranges := make([]lhs.Range, d)
	for i := range ranges {
		ranges[i] = lhs.Range{Lo: 0, Hi: 1}
	}
	x, err := lhs.Sample(r, n, ranges)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil, nil); err == nil {
		t.Error("empty design accepted")
	}
	if _, err := Fit([][]float64{{0.5}}, []float64{1, 2}); err == nil {
		t.Error("mismatched outputs accepted")
	}
	if _, err := Fit([][]float64{{2.0}}, []float64{1}); err == nil {
		t.Error("out-of-cube design accepted")
	}
	if _, err := Fit([][]float64{{0.1}, {0.2, 0.3}}, []float64{1, 2}); err == nil {
		t.Error("ragged design accepted")
	}
}

func TestGPInterpolatesSmoothFunction(t *testing.T) {
	x := designFor(t, 1, 40, 1)
	f := func(u float64) float64 { return math.Sin(4 * u) }
	w := make([]float64, len(x))
	for i := range x {
		w[i] = f(x[i][0])
	}
	g, err := Fit(x, w)
	if err != nil {
		t.Fatal(err)
	}
	// Check prediction error at held-out points.
	for _, u := range []float64{0.13, 0.37, 0.51, 0.77, 0.93} {
		mean, variance := g.Predict([]float64{u})
		if math.Abs(mean-f(u)) > 0.05 {
			t.Errorf("at %v: predicted %v want %v", u, mean, f(u))
		}
		if variance < 0 {
			t.Errorf("negative variance at %v", u)
		}
	}
}

func TestGPPredictsTrainingPoints(t *testing.T) {
	x := designFor(t, 2, 25, 2)
	w := make([]float64, len(x))
	for i := range x {
		w[i] = x[i][0]*2 - x[i][1]
	}
	g, err := Fit(x, w)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		mean, _ := g.Predict(x[i])
		if math.Abs(mean-w[i]) > 0.1 {
			t.Fatalf("training point %d: %v want %v", i, mean, w[i])
		}
	}
}

func TestGPVarianceGrowsAwayFromData(t *testing.T) {
	// Design clustered in [0, 0.5]: variance at 0.95 must exceed at 0.25.
	x := [][]float64{{0.05}, {0.1}, {0.2}, {0.3}, {0.4}, {0.5}}
	w := []float64{0, 0.1, 0.3, 0.2, 0.5, 0.4}
	g, err := Fit(x, w)
	if err != nil {
		t.Fatal(err)
	}
	_, vNear := g.Predict([]float64{0.25})
	_, vFar := g.Predict([]float64{0.95})
	if vFar <= vNear {
		t.Fatalf("variance near %v, far %v — no growth away from data", vNear, vFar)
	}
}

func TestGPHandlesConstantOutput(t *testing.T) {
	x := designFor(t, 3, 10, 1)
	w := make([]float64, len(x)) // all zeros
	g, err := Fit(x, w)
	if err != nil {
		t.Fatal(err)
	}
	mean, _ := g.Predict([]float64{0.5})
	if math.Abs(mean) > 1e-6 {
		t.Fatalf("constant-zero GP predicts %v", mean)
	}
}

func TestCorrProperties(t *testing.T) {
	rho := []float64{0.5, 0.8}
	lr := logRhoOf(rho)
	a := []float64{0.3, 0.7}
	if c := corr(a, a, lr); c != 1 {
		t.Fatalf("self correlation %v want 1", c)
	}
	b := []float64{0.9, 0.1}
	cab := corr(a, b, lr)
	if cab <= 0 || cab >= 1 {
		t.Fatalf("cross correlation %v outside (0,1)", cab)
	}
	if corr(b, a, lr) != cab {
		t.Fatal("correlation not symmetric")
	}
	// Smaller rho → faster decay.
	if corr(a, b, logRhoOf([]float64{0.1, 0.1})) >= cab {
		t.Fatal("smaller rho should decay faster")
	}
	// The log-exp fast path agrees with the paper's ∏ ρ^{4d²} form.
	direct := 1.0
	for k := range a {
		d := a[k] - b[k]
		direct *= math.Pow(rho[k], 4*d*d)
	}
	if math.Abs(cab-direct) > 1e-12*direct {
		t.Fatalf("fast-path corr %v vs direct %v", cab, direct)
	}
}

func TestScalerRoundTrip(t *testing.T) {
	s, err := NewScaler([]float64{1, -5}, []float64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	theta := []float64{2.2, 0}
	u := s.ToUnit(theta)
	if math.Abs(u[0]-0.6) > 1e-12 || math.Abs(u[1]-0.5) > 1e-12 {
		t.Fatalf("unit %v", u)
	}
	back := s.FromUnit(u)
	for k := range back {
		if math.Abs(back[k]-theta[k]) > 1e-12 {
			t.Fatalf("roundtrip %v want %v", back, theta)
		}
	}
}

func TestScalerValidation(t *testing.T) {
	if _, err := NewScaler([]float64{0}, []float64{1, 2}); err == nil {
		t.Error("mismatched bounds accepted")
	}
	if _, err := NewScaler([]float64{2}, []float64{1}); err == nil {
		t.Error("inverted bounds accepted")
	}
	s, _ := NewScaler([]float64{1}, []float64{1})
	if u := s.ToUnit([]float64{1}); u[0] != 0 {
		t.Error("degenerate range should map to 0")
	}
}

// Multi-output emulation of a family of logistic curves, the shape the
// calibration workflow actually emulates.
func TestFitMultiEmulatesCurveFamily(t *testing.T) {
	const n, T = 60, 50
	x := designFor(t, 4, n, 2)
	y := linalg.NewMatrix(n, T)
	curve := func(theta []float64, d int) float64 {
		growth := 0.1 + 0.3*theta[0]
		size := 100 + 900*theta[1]
		return size / (1 + math.Exp(-growth*(float64(d)-25)))
	}
	for i := 0; i < n; i++ {
		for d := 0; d < T; d++ {
			y.Set(i, d, curve(x[i], d))
		}
	}
	m, err := FitMulti(x, y, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.GPs) != 5 {
		t.Fatalf("%d basis GPs want 5", len(m.GPs))
	}
	if m.Explained < 0.99 {
		t.Fatalf("PCA explained %v of a 2-parameter family", m.Explained)
	}
	// Held-out accuracy.
	test := [][]float64{{0.25, 0.5}, {0.6, 0.2}, {0.85, 0.85}}
	for _, theta := range test {
		mean, variance := m.Predict(theta)
		for d := 0; d < T; d += 7 {
			want := curve(theta, d)
			tol := 0.05*want + 10
			if math.Abs(mean[d]-want) > tol {
				t.Errorf("theta %v day %d: %v want %v", theta, d, mean[d], want)
			}
			if variance[d] < 0 {
				t.Errorf("negative variance at day %d", d)
			}
		}
	}
}

func TestFitMultiValidation(t *testing.T) {
	if _, err := FitMulti(nil, linalg.NewMatrix(0, 5), 3); err == nil {
		t.Error("empty design accepted")
	}
	x := designFor(t, 5, 10, 1)
	if _, err := FitMulti(x, linalg.NewMatrix(3, 5), 2); err == nil {
		t.Error("mismatched rows accepted")
	}
}

func TestPredictWeightsShape(t *testing.T) {
	const n, T = 30, 20
	x := designFor(t, 6, n, 1)
	y := linalg.NewMatrix(n, T)
	for i := 0; i < n; i++ {
		for d := 0; d < T; d++ {
			y.Set(i, d, x[i][0]*float64(d))
		}
	}
	m, err := FitMulti(x, y, 3)
	if err != nil {
		t.Fatal(err)
	}
	wm, wv := m.PredictWeights([]float64{0.5})
	if len(wm) != len(m.GPs) || len(wv) != len(m.GPs) {
		t.Fatal("weight prediction shape wrong")
	}
	for _, v := range wv {
		if v < 0 {
			t.Fatal("negative weight variance")
		}
	}
}

func TestEmulatorUncertaintyCoversTruth(t *testing.T) {
	// At held-out points, |truth − mean| should rarely exceed 3 sd.
	const n, T = 50, 40
	x := designFor(t, 7, n, 2)
	y := linalg.NewMatrix(n, T)
	f := func(theta []float64, d int) float64 {
		return 50*theta[0]*math.Sin(float64(d)/8) + 100*theta[1]
	}
	for i := 0; i < n; i++ {
		for d := 0; d < T; d++ {
			y.Set(i, d, f(x[i], d))
		}
	}
	m, err := FitMulti(x, y, 5)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(8)
	violations, checks := 0, 0
	for trial := 0; trial < 20; trial++ {
		theta := []float64{r.Float64(), r.Float64()}
		mean, variance := m.Predict(theta)
		for d := 0; d < T; d += 5 {
			sd := math.Sqrt(variance[d]) + 1e-9
			if math.Abs(mean[d]-f(theta, d)) > 4*sd+1 {
				violations++
			}
			checks++
		}
	}
	if violations > checks/10 {
		t.Fatalf("emulator badly overconfident: %d/%d violations", violations, checks)
	}
}
