package gp

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// LOOCV computes leave-one-out cross-validation residuals for a fitted GP
// without refitting: for a zero-mean GP with covariance C (correlation plus
// nugget), the classical identities give
//
//	e_i = α_i / [C⁻¹]_{ii},   s²_i = 1 / (λ [C⁻¹]_{ii}),
//
// where α = C⁻¹w. The returned residuals are the held-out prediction
// errors e_i and their predictive variances — the standard emulator
// diagnostic (standardized residuals ≈ N(0,1) for a well-specified fit).
func (g *GP) LOOCV() (residuals, variances []float64, err error) {
	n := len(g.X)
	if n == 0 {
		return nil, nil, fmt.Errorf("gp: LOOCV on empty design")
	}
	// Compute C⁻¹ column by column from the stored Cholesky factor.
	residuals = make([]float64, n)
	variances = make([]float64, n)
	e := make([]float64, n)
	for i := 0; i < n; i++ {
		for k := range e {
			e[k] = 0
		}
		e[i] = 1
		col := linalg.SolveCholesky(g.chol, e)
		cii := col[i]
		if cii <= 0 {
			return nil, nil, fmt.Errorf("gp: non-positive C⁻¹ diagonal at %d", i)
		}
		residuals[i] = g.alpha[i] / cii
		variances[i] = 1 / (g.Lambda * cii)
	}
	return residuals, variances, nil
}

// LOOCVSummary reports RMSE of the held-out residuals and the fraction of
// standardized residuals within ±2 (expected ≈ 0.95 for a well-calibrated
// emulator).
type LOOCVSummary struct {
	RMSE            float64
	Within2SDFrac   float64
	MaxStandardized float64
}

// Summary runs LOOCV and aggregates the diagnostics.
func (g *GP) Summary() (LOOCVSummary, error) {
	res, vars, err := g.LOOCV()
	if err != nil {
		return LOOCVSummary{}, err
	}
	var sum float64
	within := 0
	maxZ := 0.0
	for i := range res {
		sum += res[i] * res[i]
		sd := math.Sqrt(vars[i])
		if sd == 0 {
			sd = 1e-12
		}
		z := math.Abs(res[i]) / sd
		if z <= 2 {
			within++
		}
		if z > maxZ {
			maxZ = z
		}
	}
	return LOOCVSummary{
		RMSE:            math.Sqrt(sum / float64(len(res))),
		Within2SDFrac:   float64(within) / float64(len(res)),
		MaxStandardized: maxZ,
	}, nil
}
