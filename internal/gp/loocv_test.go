package gp

import (
	"math"
	"testing"

	"repro/internal/linalg"
)

func TestLOOCVMatchesRefit(t *testing.T) {
	// Verify the shortcut identity against brute-force refitting with
	// fixed hyperparameters.
	x := designFor(t, 20, 15, 1)
	w := make([]float64, len(x))
	for i := range x {
		w[i] = math.Sin(5 * x[i][0])
	}
	g, err := Fit(x, w)
	if err != nil {
		t.Fatal(err)
	}
	res, vars, err := g.LOOCV()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(x) || len(vars) != len(x) {
		t.Fatal("shape wrong")
	}
	// Brute force: refit without point i (same rho/nugget) and predict.
	for i := 0; i < len(x); i += 4 {
		var xi [][]float64
		var wi []float64
		for j := range x {
			if j != i {
				xi = append(xi, x[j])
				wi = append(wi, w[j])
			}
		}
		held := refitPredict(t, xi, wi, g.Rho, g.Nugget, g.Lambda, x[i])
		gotErr := w[i] - held
		if math.Abs(gotErr-res[i]) > 1e-6*(1+math.Abs(gotErr)) {
			t.Fatalf("point %d: LOOCV residual %v, brute force %v", i, res[i], gotErr)
		}
	}
}

// refitPredict computes the GP posterior mean at theta using the given
// hyperparameters and a reduced design.
func refitPredict(t *testing.T, x [][]float64, w []float64, rho []float64, nugget, lambda float64, theta []float64) float64 {
	t.Helper()
	c := corrMatrix(x, rho, nugget)
	l, err := linalg.Cholesky(c)
	if err != nil {
		t.Fatal(err)
	}
	alpha := linalg.SolveCholesky(l, w)
	r := make([]float64, len(x))
	lr := logRhoOf(rho)
	for i := range x {
		r[i] = corr(theta, x[i], lr)
	}
	s := 0.0
	for i := range r {
		s += r[i] * alpha[i]
	}
	return s
}

func TestLOOCVSummaryWellSpecified(t *testing.T) {
	x := designFor(t, 21, 40, 2)
	w := make([]float64, len(x))
	for i := range x {
		w[i] = x[i][0] + 0.5*math.Sin(6*x[i][1])
	}
	g, err := Fit(x, w)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := g.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if sum.RMSE < 0 || math.IsNaN(sum.RMSE) {
		t.Fatalf("bad RMSE %v", sum.RMSE)
	}
	// A smooth function should be predicted well out of sample.
	if sum.RMSE > 0.2 {
		t.Fatalf("LOOCV RMSE %v too high for a smooth 2-d function", sum.RMSE)
	}
	if sum.Within2SDFrac < 0.6 {
		t.Fatalf("only %v of standardized residuals within 2sd", sum.Within2SDFrac)
	}
}

func TestLOOCVFlagsModelMisfit(t *testing.T) {
	// A discontinuous function: held-out errors near the step should be
	// large relative to the smooth case.
	x := designFor(t, 22, 40, 1)
	smooth := make([]float64, len(x))
	step := make([]float64, len(x))
	for i := range x {
		smooth[i] = x[i][0]
		if x[i][0] > 0.5 {
			step[i] = 1
		}
	}
	gS, err := Fit(x, smooth)
	if err != nil {
		t.Fatal(err)
	}
	gD, err := Fit(x, step)
	if err != nil {
		t.Fatal(err)
	}
	sumS, err := gS.Summary()
	if err != nil {
		t.Fatal(err)
	}
	sumD, err := gD.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if sumD.RMSE <= sumS.RMSE {
		t.Fatalf("step RMSE %v should exceed smooth %v", sumD.RMSE, sumS.RMSE)
	}
}
