package replica

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/castore"
	"repro/internal/obs"
	"repro/internal/scenario"
)

// Config parameterizes a Coordinator.
type Config struct {
	// Replicas is the number of scenario.Service replicas to run (default 2).
	Replicas int
	// Base is the per-replica service configuration. Its Registry is
	// ignored: each replica gets a private registry (the obs registry's
	// GaugeFunc re-registration semantics make sharing one across replicas
	// unsound), and the coordinator's registry carries the aggregate and
	// per-replica labeled series instead. Its Shared field is likewise
	// overridden with the coordinator's store.
	Base scenario.Config
	// RunnerFor overrides Base.Runner per replica (chaos tests give each
	// replica a distinguishable runner). Nil uses Base.Runner everywhere.
	RunnerFor func(i int) scenario.Runner
	// Shared is the peer-visible result store; nil allocates one with
	// SharedCap entries.
	Shared *castore.Store[*scenario.Result]
	// SharedCap sizes the allocated store (default 512).
	SharedCap int
	// BatchWindow is how long a batchable what-if spec waits for
	// near-identical peers before dispatch; 0 disables batching.
	BatchWindow time.Duration
	// RebalanceEvery is the work-stealing scan period (default 25ms; <0
	// disables the background loop — tests drive RebalanceOnce directly).
	RebalanceEvery time.Duration
	// Registry receives the coordinator's metric series; nil allocates a
	// private one.
	Registry *obs.Registry
}

// replicaHandle pairs a service with its cluster bookkeeping.
type replicaHandle struct {
	id   int
	svc  *scenario.Service
	down atomic.Bool
}

// Coordinator fronts N replicas as one scenario.Backend.
type Coordinator struct {
	fingerprint string
	shared      *castore.Store[*scenario.Result]
	reg         *obs.Registry
	replicas    []*replicaHandle
	batchWindow time.Duration

	dispatched atomic.Int64 // jobs handed to a replica
	steals     atomic.Int64 // queued jobs moved to an idle peer
	requeues   atomic.Int64 // jobs resubmitted after a replica death
	batchExecs atomic.Int64 // ensemble executions flushed
	batchMembs atomic.Int64 // member specs folded into ensembles

	mu       sync.Mutex         // guards the maps below; order: Coordinator.mu → ticket.mu
	tickets  map[string]*ticket // live (unfinalized) tickets by hash
	registry map[string]*ticket // live + recently finalized, for Lookup
	recent   []*ticket
	batches  map[string]*pendingBatch
	draining bool

	stopRebalance chan struct{}
	rebalanceDone chan struct{}
}

// recentCap bounds how many finalized tickets stay pollable (results live
// on in the shared store beyond this).
const recentCap = 256

// NewCoordinator builds the replica set and starts the rebalance loop.
// Callers must Drain it.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.SharedCap <= 0 {
		cfg.SharedCap = 512
	}
	shared := cfg.Shared
	if shared == nil {
		shared = castore.New(castore.WithMaxEntries[*scenario.Result](cfg.SharedCap))
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c := &Coordinator{
		shared:        shared,
		reg:           reg,
		batchWindow:   cfg.BatchWindow,
		tickets:       map[string]*ticket{},
		registry:      map[string]*ticket{},
		batches:       map[string]*pendingBatch{},
		stopRebalance: make(chan struct{}),
		rebalanceDone: make(chan struct{}),
	}
	for i := 0; i < cfg.Replicas; i++ {
		sc := cfg.Base
		sc.Registry = nil // private per replica; see Config.Base
		sc.Shared = shared
		sc.Name = fmt.Sprintf("r%d", i)
		if cfg.RunnerFor != nil {
			sc.Runner = cfg.RunnerFor(i)
		}
		svc := scenario.NewService(sc)
		if i > 0 && svc.Fingerprint() != c.replicas[0].svc.Fingerprint() {
			return nil, fmt.Errorf("replica: fingerprint mismatch between replicas 0 and %d", i)
		}
		c.replicas = append(c.replicas, &replicaHandle{id: i, svc: svc})
	}
	c.fingerprint = c.replicas[0].svc.Fingerprint()
	c.registerMetrics()
	every := cfg.RebalanceEvery
	if every == 0 {
		every = 25 * time.Millisecond
	}
	if every > 0 {
		go c.rebalanceLoop(every)
	} else {
		close(c.rebalanceDone)
	}
	return c, nil
}

// Replicas returns the number of replicas (up or down).
func (c *Coordinator) Replicas() int { return len(c.replicas) }

// Registry returns the coordinator's metric registry (scenario.Backend).
func (c *Coordinator) Registry() *obs.Registry { return c.reg }

// Submit admits a spec at a priority class (scenario.Backend). The flow
// mirrors Service.SubmitCtx one level up: shared-store hit → coordinator
// single-flight attach → aggregate admission control → batch or dispatch.
// ctx contributes tracing identity only (see Backend.Submit): the request
// trace follows the ticket through dispatch, steal, requeue, and batch
// hops; lifecycle stays with interest references.
func (c *Coordinator) Submit(ctx context.Context, spec scenario.Spec, pri scenario.Priority) (scenario.Handle, error) {
	ns, err := spec.Normalize()
	if err != nil {
		return nil, &scenario.BadSpecError{Err: err}
	}
	hash, err := ns.Hash(c.fingerprint)
	if err != nil {
		return nil, &scenario.BadSpecError{Err: err}
	}
	if res, ok := c.shared.Get(hash); ok {
		obs.Event(ctx, "castore.hit", obs.String("hash", hash))
		return terminalTicket(hash, res), nil
	}
	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		return nil, scenario.ErrDraining
	}
	if t, ok := c.tickets[hash]; ok {
		t.mu.Lock()
		t.interest++
		t.shared++
		t.mu.Unlock()
		c.mu.Unlock()
		obs.Event(ctx, "singleflight.attach", obs.String("hash", hash),
			obs.String("layer", "coordinator"))
		return t, nil
	}
	if err := c.admitLocked(pri); err != nil {
		c.mu.Unlock()
		reason := "queue_full"
		if _, ok := err.(*scenario.ShedError); ok {
			reason = "shed"
		}
		obs.Event(ctx, "admission.reject", obs.String("reason", reason),
			obs.String("class", pri.String()), obs.String("layer", "coordinator"))
		return nil, err
	}
	t := &ticket{c: c, hash: hash, spec: ns, pri: pri,
		done: make(chan struct{}), interest: 1,
		tctx: obs.AdoptTrace(context.Background(), ctx)}
	c.tickets[hash] = t
	c.registry[hash] = t
	if c.batchWindow > 0 && batchable(ns) {
		c.enrollLocked(t)
		c.mu.Unlock()
		return t, nil
	}
	c.mu.Unlock()
	if err := c.dispatch(t); err != nil {
		c.dropTicket(t)
		return nil, err
	}
	return t, nil
}

// admitLocked applies priority budgets over the aggregate queue of the up
// replicas — the same class shape Service.admitLocked uses per replica, so
// a one-replica cluster admits exactly like a bare service. Caller holds
// c.mu.
func (c *Coordinator) admitLocked(pri scenario.Priority) error {
	queued, capacity := 0, 0
	for _, r := range c.replicas {
		if r.down.Load() {
			continue
		}
		q, _ := r.svc.Loads()
		queued += q
		capacity += r.svc.QueueCap()
	}
	if capacity == 0 {
		return scenario.ErrDraining // every replica down or draining
	}
	if queued >= capacity {
		return scenario.ErrQueueFull
	}
	var budget int
	switch pri {
	case scenario.PriorityBatch:
		budget = (capacity + 1) / 2
	case scenario.PriorityNormal:
		budget = capacity - capacity/8
	default:
		return nil
	}
	if queued >= budget {
		return &scenario.ShedError{Class: pri, Depth: queued, Capacity: capacity}
	}
	return nil
}

// dropTicket removes a never-dispatched ticket after an admission failure.
func (c *Coordinator) dropTicket(t *ticket) {
	c.mu.Lock()
	delete(c.tickets, t.hash)
	if c.registry[t.hash] == t {
		delete(c.registry, t.hash)
	}
	c.mu.Unlock()
}

// upCandidates returns the up replicas ordered by load (queued+running,
// normalized by worker count), least-loaded first.
func (c *Coordinator) upCandidates() []*replicaHandle {
	var up []*replicaHandle
	loads := map[int]float64{}
	for _, r := range c.replicas {
		if r.down.Load() {
			continue
		}
		q, run := r.svc.Loads()
		loads[r.id] = float64(q+run) / float64(r.svc.Workers())
		up = append(up, r)
	}
	sort.Slice(up, func(i, j int) bool {
		if loads[up[i].id] != loads[up[j].id] {
			return loads[up[i].id] < loads[up[j].id]
		}
		return up[i].id < up[j].id
	})
	return up
}

// dispatch submits a ticket's spec to the least-loaded up replica and
// starts a watcher. The coordinator is the sole admission point, so the
// underlying submission always rides the interactive class — class budgets
// were already applied over the aggregate queue, and double-applying them
// per replica would shed admitted work.
func (c *Coordinator) dispatch(t *ticket) error {
	for _, rep := range c.upCandidates() {
		j, err := rep.svc.SubmitCtx(t.tickCtx(), t.spec, scenario.PriorityInteractive)
		switch {
		case err == nil:
			obs.Event(t.tickCtx(), "replica.dispatch",
				obs.Int("replica", int64(rep.id)), obs.String("hash", t.hash))
			t.mu.Lock()
			t.job, t.rep = j, rep
			canceled := t.clientCanceled
			t.mu.Unlock()
			c.dispatched.Add(1)
			go c.watch(t, rep, j)
			if canceled {
				rep.svc.Cancel(t.hash)
			}
			return nil
		case errors.Is(err, scenario.ErrQueueFull), errors.Is(err, scenario.ErrDraining):
			continue // try the next replica
		default:
			return err
		}
	}
	return scenario.ErrQueueFull
}

// watch waits for a ticket's current job and settles the outcome: a stolen
// job is someone else's problem (the steal path owns the redispatch), a job
// cancelled by a replica death is requeued on a peer, anything else
// finalizes the ticket.
func (c *Coordinator) watch(t *ticket, rep *replicaHandle, j *scenario.Job) {
	res, err := j.Wait(context.Background())
	if errors.Is(err, scenario.ErrStolen) {
		return
	}
	t.mu.Lock()
	if t.finalized || t.job != j {
		t.mu.Unlock()
		return
	}
	clientCanceled := t.clientCanceled
	t.mu.Unlock()
	if err != nil && isCancel(err) && rep.down.Load() && !clientCanceled {
		// The replica died under the job, not the client under the
		// request: move the work to a peer. The old job is already
		// terminal, so the spec is not running anywhere during the hop.
		t.mu.Lock()
		t.job, t.rep = nil, nil
		t.mu.Unlock()
		c.requeues.Add(1)
		obs.Event(t.tickCtx(), "replica.requeue",
			obs.Int("from", int64(rep.id)), obs.String("hash", t.hash))
		if derr := c.dispatch(t); derr != nil {
			c.finalizeTicket(t, nil, derr)
		}
		return
	}
	c.finalizeTicket(t, res, err)
}

// finalizeTicket settles a ticket exactly once and retires it from the
// live table. The underlying job (if any) is released to balance the
// coordinator's dispatch-time interest reference.
func (c *Coordinator) finalizeTicket(t *ticket, res *scenario.Result, err error) {
	c.mu.Lock()
	t.mu.Lock()
	if t.finalized {
		t.mu.Unlock()
		c.mu.Unlock()
		return
	}
	t.finalized = true
	t.result, t.err = res, err
	j := t.job
	t.job, t.rep = nil, nil
	close(t.done)
	if c.tickets[t.hash] == t {
		delete(c.tickets, t.hash)
	}
	c.recent = append(c.recent, t)
	for len(c.recent) > recentCap {
		old := c.recent[0]
		c.recent = c.recent[1:]
		if c.registry[old.hash] == old {
			delete(c.registry, old.hash)
		}
	}
	t.mu.Unlock()
	c.mu.Unlock()
	if j != nil {
		j.Release()
	}
}

// releaseTicket drops one client interest reference; the last release of an
// unpinned live ticket cancels the work wherever it currently is.
func (c *Coordinator) releaseTicket(t *ticket) {
	c.mu.Lock()
	t.mu.Lock()
	t.interest--
	abandon := t.interest <= 0 && !t.pinned && !t.finalized
	if !abandon {
		t.mu.Unlock()
		c.mu.Unlock()
		return
	}
	t.clientCanceled = true
	c.abandonLocked(t)
}

// abandonLocked cancels a live ticket's work. Caller holds c.mu and t.mu;
// both are released before returning.
func (c *Coordinator) abandonLocked(t *ticket) {
	switch {
	case t.batch != nil:
		// Still pending in a batch: pull it out and finalize directly.
		t.batch.remove(t)
		t.batch = nil
		t.mu.Unlock()
		c.mu.Unlock()
		c.finalizeTicket(t, nil, context.Canceled)
	case t.ensemble != nil:
		ens := t.ensemble
		t.mu.Unlock()
		c.mu.Unlock()
		c.finalizeTicket(t, nil, context.Canceled)
		ens.Release() // last member out cancels the ensemble execution
	case t.job != nil:
		rep, hash := t.rep, t.hash
		t.mu.Unlock()
		c.mu.Unlock()
		rep.svc.Cancel(hash) // watcher observes the cancellation and finalizes
	default:
		// Dispatch in flight (migrating); the clientCanceled flag makes the
		// dispatcher cancel the fresh job as soon as it exists.
		t.mu.Unlock()
		c.mu.Unlock()
	}
}

// Lookup resolves an ID to a handle with no interest reference
// (scenario.Backend): live and recently finalized tickets first, then the
// shared store.
func (c *Coordinator) Lookup(id string) (scenario.Handle, bool) {
	c.mu.Lock()
	t, ok := c.registry[id]
	c.mu.Unlock()
	if ok {
		return t, true
	}
	if res, ok := c.shared.Peek(id); ok {
		return terminalTicket(id, res), true
	}
	return nil, false
}

// Cancel cancels a live submission by ID (scenario.Backend).
func (c *Coordinator) Cancel(id string) bool {
	c.mu.Lock()
	t, ok := c.registry[id]
	if !ok {
		c.mu.Unlock()
		return false
	}
	t.mu.Lock()
	if t.finalized {
		t.mu.Unlock()
		c.mu.Unlock()
		return false
	}
	t.clientCanceled = true
	c.abandonLocked(t) // releases both locks
	return true
}

// Draining reports whether cluster shutdown has begun (scenario.Backend).
func (c *Coordinator) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// Readiness aggregates replica readiness (scenario.Backend): the cluster
// is ready while at least one up replica is ready, and reports summed
// worker counts so operators see capacity at a glance.
func (c *Coordinator) Readiness() scenario.Readiness {
	agg := scenario.Readiness{Draining: c.Draining()}
	for _, r := range c.replicas {
		if r.down.Load() {
			continue
		}
		rr := r.svc.Readiness()
		agg.WorkersUp += rr.WorkersUp
		agg.WorkersSet += rr.WorkersSet
		if rr.Ready {
			agg.Ready = true
		}
		if rr.Fidelity != nil && agg.Fidelity == nil {
			agg.Fidelity = rr.Fidelity
		}
	}
	if agg.Draining {
		agg.Ready = false
	}
	return agg
}

// MetricsSnapshot merges the replicas' snapshots into one cluster view
// (scenario.Backend): counters and job totals sum, queue capacity and
// workers sum, per-workflow latency histograms merge bucket-wise (every
// replica uses the same bounds), and cache stats aggregate.
func (c *Coordinator) MetricsSnapshot() scenario.Snapshot {
	agg := scenario.Snapshot{
		Jobs:    map[string]int64{},
		Latency: map[string]scenario.HistogramSnapshot{},
	}
	agg.Draining = c.Draining()
	for _, r := range c.replicas {
		s := r.svc.MetricsSnapshot()
		agg.QueueDepth += s.QueueDepth
		agg.QueueCapacity += s.QueueCapacity
		agg.Workers += s.Workers
		agg.Submitted += s.Submitted
		agg.Rejected += s.Rejected
		agg.Deduped += s.Deduped
		agg.Shed += s.Shed
		agg.SharedHits += s.SharedHits
		for k, v := range s.Jobs {
			agg.Jobs[k] += v
		}
		for wf, h := range s.Latency {
			agg.Latency[wf] = mergeHistograms(agg.Latency[wf], h)
		}
		agg.Cache.Entries += s.Cache.Entries
		agg.Cache.Capacity += s.Cache.Capacity
		agg.Cache.Hits += s.Cache.Hits
		agg.Cache.Misses += s.Cache.Misses
		agg.Cache.Evictions += s.Cache.Evictions
	}
	if lookups := agg.Cache.Hits + agg.Cache.Misses; lookups > 0 {
		agg.Cache.HitRatio = float64(agg.Cache.Hits) / float64(lookups)
	}
	agg.Jobs["stolen"] += 0 // present even before the first steal
	return agg
}

// mergeHistograms adds b into a bucket-wise; both sides come from the same
// latencyBounds, so counts align by index (an empty a adopts b's shape).
func mergeHistograms(a, b scenario.HistogramSnapshot) scenario.HistogramSnapshot {
	if len(a.Buckets) == 0 {
		return b
	}
	a.Count += b.Count
	a.SumSeconds += b.SumSeconds
	for i := range a.Buckets {
		if i < len(b.Buckets) {
			a.Buckets[i].Count += b.Buckets[i].Count
		}
	}
	return a
}

// ReplicaInfo is one replica's row in the /replicas payload.
type ReplicaInfo struct {
	ID       int  `json:"id"`
	Up       bool `json:"up"`
	Queued   int  `json:"queued"`
	Running  int  `json:"running"`
	Workers  int  `json:"workers"`
	QueueCap int  `json:"queue_cap"`
	// QueuedByClass breaks Queued down per priority class
	// (interactive/normal/batch) so operators can see whose work is waiting
	// where. Note the coordinator dispatches admitted work at interactive
	// class (see dispatch); the aggregate view reflects coordinator-level
	// classes via the ticket table.
	QueuedByClass map[string]int `json:"queued_by_class"`
}

// ClusterStatus is the /replicas payload.
type ClusterStatus struct {
	Replicas    []ReplicaInfo `json:"replicas"`
	LiveTickets int           `json:"live_tickets"`
	// QueuedByClass aggregates the per-class queued counts across the up
	// replicas' queues.
	QueuedByClass map[string]int `json:"queued_by_class"`
	Dispatched    int64          `json:"dispatched"`
	Steals        int64          `json:"steals"`
	Requeues      int64          `json:"requeues"`
	BatchExecs    int64          `json:"batch_execs"`
	BatchMembs    int64          `json:"batch_members"`
	SharedKeys    int            `json:"shared_keys"`
}

// ReplicaStatus implements the HTTP layer's optional /replicas extension.
func (c *Coordinator) ReplicaStatus() any {
	st := ClusterStatus{
		QueuedByClass: map[string]int{},
		Dispatched:    c.dispatched.Load(),
		Steals:        c.steals.Load(),
		Requeues:      c.requeues.Load(),
		BatchExecs:    c.batchExecs.Load(),
		BatchMembs:    c.batchMembs.Load(),
		SharedKeys:    len(c.shared.Keys()),
	}
	for _, r := range c.replicas {
		q, run := r.svc.Loads()
		byClass := r.svc.QueuedByClass()
		st.Replicas = append(st.Replicas, ReplicaInfo{
			ID: r.id, Up: !r.down.Load(), Queued: q, Running: run,
			Workers: r.svc.Workers(), QueueCap: r.svc.QueueCap(),
			QueuedByClass: byClass,
		})
		if !r.down.Load() {
			for k, v := range byClass {
				st.QueuedByClass[k] += v
			}
		}
	}
	c.mu.Lock()
	st.LiveTickets = len(c.tickets)
	c.mu.Unlock()
	return st
}

// KillReplica simulates a crash of replica i: the replica is marked down
// (no new dispatches, steals, or submissions land on it) and every job it
// holds — queued or running — is cancelled via an already-expired drain.
// Watchers observe the cancellations and requeue the work on up peers, so
// no waiter is lost and no spec runs twice. Returns false for an unknown
// or already-down replica.
func (c *Coordinator) KillReplica(i int) bool {
	if i < 0 || i >= len(c.replicas) {
		return false
	}
	rep := c.replicas[i]
	if !rep.down.CompareAndSwap(false, true) {
		return false
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	go func() { _ = rep.svc.Drain(ctx) }()
	return true
}

// rebalanceLoop periodically moves queued work from hot replicas to idle
// peers.
func (c *Coordinator) rebalanceLoop(every time.Duration) {
	defer close(c.rebalanceDone)
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-c.stopRebalance:
			return
		case <-tick.C:
			c.RebalanceOnce()
		}
	}
}

// RebalanceOnce performs one work-stealing scan: while some up replica has
// an idle worker and another has a backlog, a queued job moves over. The
// steal finalizes the donor's job (ErrStolen) before the new dispatch
// exists, so single-flight holds: one canonical owner per hash, always.
// Returns the number of jobs moved.
func (c *Coordinator) RebalanceOnce() int {
	moved := 0
	for {
		var donor, idle *replicaHandle
		for _, r := range c.upCandidates() {
			q, run := r.svc.Loads()
			if q > 0 && donor == nil {
				donor = r
			}
			if q == 0 && run < r.svc.Workers() && idle == nil {
				idle = r
			}
		}
		if donor == nil || idle == nil || donor == idle {
			return moved
		}
		if !c.stealOne(donor, idle) {
			return moved
		}
		moved++
	}
}

// stealOne moves one queued ticket from donor to idle. Returns false when
// no queued ticket on donor could be claimed.
func (c *Coordinator) stealOne(donor, idle *replicaHandle) bool {
	// Snapshot donor-owned tickets; claims race benignly with completion
	// (StealQueued refuses anything not still queued).
	c.mu.Lock()
	var candidates []*ticket
	for _, t := range c.tickets {
		t.mu.Lock()
		if !t.finalized && t.rep == donor && t.job != nil {
			candidates = append(candidates, t)
		}
		t.mu.Unlock()
	}
	c.mu.Unlock()
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].hash < candidates[j].hash })
	for _, t := range candidates {
		spec, ok := donor.svc.StealQueued(t.hash)
		if !ok {
			continue // already running or finished where it is
		}
		// The donor's job is finalized with ErrStolen; its watcher stands
		// down. Redispatch onto the idle peer.
		t.mu.Lock()
		t.job, t.rep = nil, nil
		canceled := t.clientCanceled
		t.mu.Unlock()
		c.steals.Add(1)
		obs.Event(t.tickCtx(), "replica.steal",
			obs.Int("from", int64(donor.id)), obs.Int("to", int64(idle.id)),
			obs.String("hash", t.hash))
		if canceled {
			c.finalizeTicket(t, nil, context.Canceled)
			return true
		}
		j, err := idle.svc.SubmitCtx(t.tickCtx(), spec, scenario.PriorityInteractive)
		if err != nil {
			// Idle peer refused (raced with other load); fall back to any
			// up replica, and as a last resort finalize with the error so
			// no waiter hangs.
			if derr := c.dispatch(t); derr != nil {
				c.finalizeTicket(t, nil, derr)
			}
			return true
		}
		t.mu.Lock()
		t.job, t.rep = j, idle
		canceled = t.clientCanceled
		t.mu.Unlock()
		c.dispatched.Add(1)
		go c.watch(t, idle, j)
		if canceled {
			idle.svc.Cancel(t.hash)
		}
		return true
	}
	return false
}

// Drain gracefully shuts the cluster down: pending batches flush, new
// submissions are rejected, and every replica drains under ctx. Replica
// drain errors are joined.
func (c *Coordinator) Drain(ctx context.Context) error {
	c.mu.Lock()
	already := c.draining
	c.draining = true
	var toFlush []*pendingBatch
	for _, b := range c.batches {
		toFlush = append(toFlush, b)
	}
	c.mu.Unlock()
	if !already {
		close(c.stopRebalance)
	}
	<-c.rebalanceDone
	for _, b := range toFlush {
		b.flush()
	}
	var wg sync.WaitGroup
	errs := make([]error, len(c.replicas))
	for i, r := range c.replicas {
		if r.down.Load() {
			continue
		}
		wg.Add(1)
		go func(i int, r *replicaHandle) {
			defer wg.Done()
			errs[i] = r.svc.Drain(ctx)
		}(i, r)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// registerMetrics wires the cluster series onto the coordinator registry:
// per-replica labeled gauges plus coordinator-level counters.
func (c *Coordinator) registerMetrics() {
	reg := c.reg
	reg.Help("epi_replica_queue_depth", "queued jobs per replica")
	reg.Help("epi_replica_running", "running jobs per replica")
	reg.Help("epi_replica_up", "1 while the replica accepts work")
	for _, r := range c.replicas {
		rep := r
		label := fmt.Sprintf(`{replica="%d"}`, rep.id)
		reg.GaugeFunc("epi_replica_queue_depth"+label, func() float64 {
			q, _ := rep.svc.Loads()
			return float64(q)
		})
		reg.GaugeFunc("epi_replica_running"+label, func() float64 {
			_, run := rep.svc.Loads()
			return float64(run)
		})
		reg.GaugeFunc("epi_replica_up"+label, func() float64 {
			if rep.down.Load() {
				return 0
			}
			return 1
		})
	}
	reg.Help("epi_replica_dispatched_total", "jobs dispatched to replicas")
	reg.CounterFunc("epi_replica_dispatched_total", func() float64 { return float64(c.dispatched.Load()) })
	reg.Help("epi_replica_steals_total", "queued jobs stolen onto idle peers")
	reg.CounterFunc("epi_replica_steals_total", func() float64 { return float64(c.steals.Load()) })
	reg.Help("epi_replica_requeues_total", "jobs requeued after a replica death")
	reg.CounterFunc("epi_replica_requeues_total", func() float64 { return float64(c.requeues.Load()) })
	reg.Help("epi_replica_batch_execs_total", "ensemble executions flushed by the batcher")
	reg.CounterFunc("epi_replica_batch_execs_total", func() float64 { return float64(c.batchExecs.Load()) })
	reg.Help("epi_replica_batch_members_total", "member specs folded into ensembles")
	reg.CounterFunc("epi_replica_batch_members_total", func() float64 { return float64(c.batchMembs.Load()) })
	c.shared.RegisterMetrics(reg, "epi_replica_shared")
}
