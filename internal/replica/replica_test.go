package replica

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/scenario"
)

// clusterRunner hands each replica a distinguishable gated runner and
// tracks global execution counts per hash-identity (spec state+days), so
// tests can assert exactly-once execution across the cluster.
type clusterRunner struct {
	mu      sync.Mutex
	runs    map[string]int   // completed executions by spec identity
	started map[string]int   // begun executions by spec identity
	byRep   map[int]int      // begun executions by replica
	gates   []chan struct{}  // per-replica release gates
	live    map[string]int32 // concurrently-running count by spec identity
	overlap atomic.Bool      // any identity ever ran twice at once
	begun   chan string      // announces identity/replica on start
}

func newClusterRunner(replicas int) *clusterRunner {
	cr := &clusterRunner{
		runs: map[string]int{}, started: map[string]int{},
		byRep: map[int]int{}, live: map[string]int32{},
		begun: make(chan string, 1024),
	}
	for i := 0; i < replicas; i++ {
		cr.gates = append(cr.gates, make(chan struct{}, 1024))
	}
	return cr
}

func specIdent(s scenario.Spec) string {
	return fmt.Sprintf("%s/%s/%d/%d", s.Workflow, s.State, s.Days, len(s.WhatIfs))
}

func (cr *clusterRunner) runnerFor(rep int) scenario.Runner {
	return func(ctx context.Context, spec scenario.Spec) (*scenario.Result, error) {
		id := specIdent(spec)
		cr.mu.Lock()
		cr.started[id]++
		cr.byRep[rep]++
		cr.live[id]++
		if cr.live[id] > 1 {
			cr.overlap.Store(true)
		}
		cr.mu.Unlock()
		cr.begun <- fmt.Sprintf("%d:%s", rep, id)
		defer func() {
			cr.mu.Lock()
			cr.live[id]--
			cr.mu.Unlock()
		}()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-cr.gates[rep]:
		}
		cr.mu.Lock()
		cr.runs[id]++
		cr.mu.Unlock()
		res := &scenario.Result{}
		for _, w := range spec.WhatIfs {
			res.Scenarios = append(res.Scenarios, scenario.ScenarioResult{Name: w.Name})
		}
		return res, nil
	}
}

func (cr *clusterRunner) release(rep, n int) {
	for i := 0; i < n; i++ {
		cr.gates[rep] <- struct{}{}
	}
}

func testCoordinator(t *testing.T, replicas, workers, queueCap int, opts func(*Config)) (*Coordinator, *clusterRunner) {
	t.Helper()
	cr := newClusterRunner(replicas)
	cfg := Config{
		Replicas: replicas,
		Base: scenario.Config{
			Workers: workers, QueueCap: queueCap, Fingerprint: "test",
		},
		RunnerFor:      cr.runnerFor,
		RebalanceEvery: -1, // tests drive RebalanceOnce explicitly
	}
	if opts != nil {
		opts(&cfg)
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for i := range cr.gates {
			cr.release(i, 64)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = c.Drain(ctx)
	})
	return c, cr
}

func predSpec(state string, days int) scenario.Spec {
	return scenario.Spec{Workflow: scenario.WorkflowPrediction, State: state, Days: days}
}

func waitFor(t *testing.T, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ok() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestCoordinatorSingleFlightAcrossFrontDoor(t *testing.T) {
	c, cr := testCoordinator(t, 2, 1, 8, nil)
	h1, err := c.Submit(context.Background(), predSpec("VA", 30), scenario.PriorityNormal)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c.Submit(context.Background(), predSpec("va", 30), scenario.PriorityNormal)
	if err != nil {
		t.Fatal(err)
	}
	if h1.ID() != h2.ID() {
		t.Fatalf("same spec got different IDs: %s vs %s", h1.ID(), h2.ID())
	}
	if got := h2.Status().Shared; got != 1 {
		t.Fatalf("want Shared=1 on the attached handle, got %d", got)
	}
	cr.release(0, 1)
	cr.release(1, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := h1.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := h2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	cr.mu.Lock()
	total := 0
	for _, n := range cr.started {
		total += n
	}
	cr.mu.Unlock()
	if total != 1 {
		t.Fatalf("want exactly one execution, got %d", total)
	}
	h1.Release()
	h2.Release()
}

func TestSharedStoreServesPeerResults(t *testing.T) {
	c, cr := testCoordinator(t, 2, 1, 8, nil)
	h, err := c.Submit(context.Background(), predSpec("VA", 40), scenario.PriorityNormal)
	if err != nil {
		t.Fatal(err)
	}
	cr.release(0, 1)
	cr.release(1, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := h.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	h.Release()

	// The same spec resubmitted is a shared-store hit: served terminal,
	// no new execution anywhere in the cluster.
	h2, err := c.Submit(context.Background(), predSpec("VA", 40), scenario.PriorityNormal)
	if err != nil {
		t.Fatal(err)
	}
	st := h2.Status()
	if st.State != "done" || !st.Cached {
		t.Fatalf("want cached done handle, got %+v", st)
	}
	cr.mu.Lock()
	started := cr.started[specIdent(mustNormalize(t, predSpec("VA", 40)))]
	cr.mu.Unlock()
	if started != 1 {
		t.Fatalf("peer-cached result recomputed: %d executions", started)
	}
	// And each replica's own Submit path consults the shared store too:
	// the hit is visible in the aggregate snapshot once a replica forwards
	// a peer result (exercised via the cluster snapshot fields existing).
	snap := c.MetricsSnapshot()
	if snap.Workers != 2 {
		t.Fatalf("aggregate workers = %d, want 2", snap.Workers)
	}
}

func mustNormalize(t *testing.T, s scenario.Spec) scenario.Spec {
	t.Helper()
	ns, err := s.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	return ns
}

func TestWorkStealingMovesQueuedJobToIdlePeer(t *testing.T) {
	c, cr := testCoordinator(t, 2, 1, 8, nil)
	// Occupy both workers, then queue one more job on each replica.
	handles := map[string]scenario.Handle{}
	for i, st := range []string{"VA", "NC", "MD", "GA"} {
		h, err := c.Submit(context.Background(), predSpec(st, 20), scenario.PriorityNormal)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		handles[st] = h
	}
	waitFor(t, "two runs started", func() bool {
		cr.mu.Lock()
		defer cr.mu.Unlock()
		n := 0
		for _, v := range cr.started {
			n += v
		}
		return n == 2
	})
	// Drain replica 1 completely: its running job finishes, then its
	// queued job runs and finishes, leaving it idle while replica 0 still
	// holds a blocked run plus a queued job.
	cr.release(1, 2)
	waitFor(t, "replica 1 idle", func() bool {
		st := c.ReplicaStatus().(ClusterStatus)
		r1 := st.Replicas[1]
		return r1.Queued == 0 && r1.Running == 0
	})
	moved := c.RebalanceOnce()
	if moved != 1 {
		t.Fatalf("RebalanceOnce moved %d jobs, want 1", moved)
	}
	if got := c.ReplicaStatus().(ClusterStatus).Steals; got != 1 {
		t.Fatalf("steals counter = %d, want 1", got)
	}
	// The stolen job now runs on replica 1; release it and its waiter
	// completes even though replica 0 never freed a worker.
	cr.release(1, 1)
	stolenDone := false
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, st := range []string{"MD", "GA"} {
		h := handles[st]
		done := make(chan struct{})
		go func() {
			if _, err := h.Wait(ctx); err == nil {
				close(done)
			}
		}()
		select {
		case <-done:
			stolenDone = true
		case <-time.After(250 * time.Millisecond):
		}
		if stolenDone {
			break
		}
	}
	if !stolenDone {
		t.Fatal("no queued job completed after the steal; waiter lost")
	}
	if cr.overlap.Load() {
		t.Fatal("a spec ran on two replicas concurrently")
	}
	cr.release(0, 4)
	for _, h := range handles {
		h.Release()
	}
}

func whatIfSpec(name string) scenario.Spec {
	return scenario.Spec{
		Workflow: scenario.WorkflowWhatIf, State: "VA", Days: 30,
		WhatIfs: []scenario.WhatIfSpec{{Name: name, SHEndShift: 7}},
	}
}

func TestBatchingMergesNearIdenticalWhatIfs(t *testing.T) {
	c, cr := testCoordinator(t, 2, 2, 8, func(cfg *Config) {
		cfg.BatchWindow = 30 * time.Millisecond
	})
	h1, err := c.Submit(context.Background(), whatIfSpec("alpha"), scenario.PriorityNormal)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c.Submit(context.Background(), whatIfSpec("beta"), scenario.PriorityNormal)
	if err != nil {
		t.Fatal(err)
	}
	if h1.Status().State != "queued" || h2.Status().State != "queued" {
		t.Fatalf("batched members should report queued, got %s / %s",
			h1.Status().State, h2.Status().State)
	}
	cr.release(0, 4)
	cr.release(1, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	r1, err := h1.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := h2.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Scenarios) != 1 || r1.Scenarios[0].Name != "alpha" {
		t.Fatalf("member 1 got wrong slice: %+v", r1.Scenarios)
	}
	if len(r2.Scenarios) != 1 || r2.Scenarios[0].Name != "beta" {
		t.Fatalf("member 2 got wrong slice: %+v", r2.Scenarios)
	}
	cr.mu.Lock()
	execs := 0
	for id, n := range cr.started {
		if n > 0 && id != "" {
			execs += n
		}
	}
	cr.mu.Unlock()
	if execs != 1 {
		t.Fatalf("want one ensemble execution, got %d", execs)
	}
	st := c.ReplicaStatus().(ClusterStatus)
	if st.BatchExecs != 1 || st.BatchMembs != 2 {
		t.Fatalf("batch counters = %d execs / %d members, want 1 / 2", st.BatchExecs, st.BatchMembs)
	}
	// Member results were published per-member: resubmitting a member spec
	// is a cluster-wide cache hit.
	h3, err := c.Submit(context.Background(), whatIfSpec("alpha"), scenario.PriorityNormal)
	if err != nil {
		t.Fatal(err)
	}
	if st := h3.Status(); st.State != "done" || !st.Cached {
		t.Fatalf("member result not in shared store: %+v", st)
	}
	h1.Release()
	h2.Release()
}

func TestCoordinatorAdmissionControl(t *testing.T) {
	c, cr := testCoordinator(t, 2, 1, 2, nil)
	// Fill both workers, then both queues (aggregate queue capacity 4).
	var handles []scenario.Handle
	for i := 0; i < 2; i++ {
		h, err := c.Submit(context.Background(), predSpec("VA", 10+i), scenario.PriorityInteractive)
		if err != nil {
			t.Fatalf("interactive submit %d: %v", i, err)
		}
		handles = append(handles, h)
	}
	waitFor(t, "both workers busy", func() bool {
		st := c.ReplicaStatus().(ClusterStatus)
		return st.Replicas[0].Running == 1 && st.Replicas[1].Running == 1
	})
	for i := 2; i < 6; i++ {
		h, err := c.Submit(context.Background(), predSpec("VA", 10+i), scenario.PriorityInteractive)
		if err != nil {
			t.Fatalf("interactive submit %d: %v", i, err)
		}
		handles = append(handles, h)
	}
	if _, err := c.Submit(context.Background(), predSpec("VA", 90), scenario.PriorityInteractive); !errors.Is(err, scenario.ErrQueueFull) {
		t.Fatalf("want ErrQueueFull at aggregate capacity, got %v", err)
	}
	// At hard-full the saturation signal wins for every class — batch gets
	// queue-full, not a class shed (class sheds require spare capacity).
	if _, err := c.Submit(context.Background(), predSpec("VA", 91), scenario.PriorityBatch); !errors.Is(err, scenario.ErrQueueFull) {
		t.Fatalf("want ErrQueueFull for batch at hard-full, got %v", err)
	}
	cr.release(0, 8)
	cr.release(1, 8)
	for _, h := range handles {
		h.Release()
	}
}

func TestBatchClassShedsBeforeQueueFull(t *testing.T) {
	c, cr := testCoordinator(t, 2, 1, 8, nil)
	var handles []scenario.Handle
	// Occupy workers, then push queued depth to half of aggregate capacity.
	for i := 0; i < 2; i++ {
		h, err := c.Submit(context.Background(), predSpec("VA", 10+i), scenario.PriorityInteractive)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		handles = append(handles, h)
	}
	waitFor(t, "both workers busy", func() bool {
		st := c.ReplicaStatus().(ClusterStatus)
		return st.Replicas[0].Running == 1 && st.Replicas[1].Running == 1
	})
	for i := 2; i < 10; i++ {
		h, err := c.Submit(context.Background(), predSpec("VA", 10+i), scenario.PriorityInteractive)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		handles = append(handles, h)
	}
	var shed *scenario.ShedError
	if _, err := c.Submit(context.Background(), predSpec("VA", 80), scenario.PriorityBatch); !errors.As(err, &shed) {
		t.Fatalf("want batch shed at half queue, got %v", err)
	}
	if _, err := c.Submit(context.Background(), predSpec("VA", 81), scenario.PriorityNormal); err != nil {
		t.Fatalf("normal class should still admit: %v", err)
	}
	cr.release(0, 16)
	cr.release(1, 16)
	for _, h := range handles {
		h.Release()
	}
}

func TestKillReplicaRequeuesOnPeer(t *testing.T) {
	c, cr := testCoordinator(t, 2, 1, 8, nil)
	h1, err := c.Submit(context.Background(), predSpec("VA", 30), scenario.PriorityNormal)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c.Submit(context.Background(), predSpec("NC", 30), scenario.PriorityNormal)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "both replicas running", func() bool {
		st := c.ReplicaStatus().(ClusterStatus)
		return st.Replicas[0].Running == 1 && st.Replicas[1].Running == 1
	})
	if !c.KillReplica(0) {
		t.Fatal("KillReplica(0) refused")
	}
	if c.KillReplica(0) {
		t.Fatal("double kill should refuse")
	}
	// Replica 0's job is cancelled by the crash and must reappear on
	// replica 1 — not fail its waiter.
	waitFor(t, "requeue on peer", func() bool {
		return c.ReplicaStatus().(ClusterStatus).Requeues >= 1
	})
	cr.release(1, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := h1.Wait(ctx); err != nil {
		t.Fatalf("waiter on killed replica's job lost: %v", err)
	}
	if _, err := h2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if cr.overlap.Load() {
		t.Fatal("a spec ran on two replicas concurrently")
	}
	h1.Release()
	h2.Release()
}

func TestCoordinatorCancelAndAbandon(t *testing.T) {
	c, cr := testCoordinator(t, 2, 1, 8, nil)
	h, err := c.Submit(context.Background(), predSpec("VA", 30), scenario.PriorityNormal)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "run started", func() bool {
		cr.mu.Lock()
		defer cr.mu.Unlock()
		return len(cr.started) > 0
	})
	if !c.Cancel(h.ID()) {
		t.Fatal("Cancel refused a running ticket")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := h.Wait(ctx); !isCancel(err) {
		t.Fatalf("want cancellation, got %v", err)
	}
	// Abandonment: a waiter that releases its only interest cancels the run.
	h2, err := c.Submit(context.Background(), predSpec("NC", 30), scenario.PriorityNormal)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "second run started", func() bool {
		st := c.ReplicaStatus().(ClusterStatus)
		running := 0
		for _, r := range st.Replicas {
			running += r.Running
		}
		return running >= 1
	})
	h2.Release()
	waitFor(t, "abandoned ticket finalized", func() bool {
		st, ok := c.Lookup(h2.ID())
		return ok && st.Status().State == "canceled"
	})
}

func TestBackendServerOverCoordinator(t *testing.T) {
	c, cr := testCoordinator(t, 2, 1, 8, nil)
	cr.release(0, 16)
	cr.release(1, 16)
	srv := httptest.NewServer(scenario.NewBackendServer(c))
	defer srv.Close()

	rep, err := RunLoadgen(LoadgenConfig{
		BaseURL: srv.URL, Clients: 8, Requests: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 16 || rep.Errors != 0 {
		t.Fatalf("loadgen over coordinator: %+v", rep)
	}
	resp, err := srv.Client().Get(srv.URL + "/replicas")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/replicas = %d, want 200", resp.StatusCode)
	}
}
