package replica

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/scenario"
)

// LoadgenConfig parameterizes a load run against a scenario front door.
type LoadgenConfig struct {
	// BaseURL is the server root, e.g. http://127.0.0.1:8080.
	BaseURL string
	// Clients is the number of concurrent closed-loop clients (default 64).
	Clients int
	// Requests is the total request budget across clients (default 4 per
	// client). Each client issues its share back to back.
	Requests int
	// SpecFor produces the spec for one request; nil uses a cache-missing
	// prediction profile (every request a distinct spec, so throughput
	// measures computation, not cache hits).
	SpecFor func(client, seq int) scenario.Spec
	// Priority is the admission class query parameter ("" = normal).
	Priority string
	// PriorityFor overrides Priority per request (the -mix profile); nil
	// sends every request at Priority.
	PriorityFor func(client, seq int) string
	// Client overrides the HTTP client (default: pooled, 30s timeout).
	Client *http.Client
	// Registry, when set, receives the run's latency histogram and
	// throughput gauge under epi_loadgen_* (the PR 5 metrics surface).
	Registry *obs.Registry
}

// PriorityStats is the per-class latency breakdown in a LoadgenReport.
type PriorityStats struct {
	Requests int     `json:"requests"`
	OK       int     `json:"ok"`
	P50ms    float64 `json:"p50_ms"`
	P99ms    float64 `json:"p99_ms"`
}

// LoadgenReport summarizes one load run.
type LoadgenReport struct {
	Clients    int           `json:"clients"`
	Requests   int           `json:"requests"`
	OK         int           `json:"ok"`
	Errors     int           `json:"errors"`
	StatusDist map[int]int   `json:"status_dist"`
	Elapsed    time.Duration `json:"-"`
	ElapsedSec float64       `json:"elapsed_seconds"`
	P50        time.Duration `json:"-"`
	P99        time.Duration `json:"-"`
	P50ms      float64       `json:"p50_ms"`
	P99ms      float64       `json:"p99_ms"`
	Throughput float64       `json:"throughput_rps"`
	// ByPriority breaks latency down per admission class actually sent.
	ByPriority map[string]PriorityStats `json:"by_priority,omitempty"`
	// SlowestID echoes the server's X-Request-Id for the slowest request of
	// the run, ready to paste into GET /debug/requests/{id}.
	SlowestID string  `json:"slowest_request_id,omitempty"`
	SlowestMS float64 `json:"slowest_ms"`
}

// DefaultSpecFor is the cache-miss traffic profile: unique prediction
// specs, distinguished by a (client, seq)-derived parameter wiggle small
// enough to stay inside validation bounds.
func DefaultSpecFor(client, seq int) scenario.Spec {
	n := client*1000 + seq
	return scenario.Spec{
		Workflow:   scenario.WorkflowPrediction,
		State:      "VA",
		Days:       30,
		Replicates: 2,
		Configs: []scenario.ParamSpec{{
			TAU:  0.16 + float64(n%100000)*1e-7,
			SYMP: 0.65, SHCompliance: 0.6, VHICompliance: 0.5,
		}},
	}
}

// RunLoadgen drives Clients concurrent synchronous submissions (?wait=1)
// against BaseURL and reports client-side p50/p99 latency and sustained
// throughput. Requests that return a non-200 status count as errors but
// still book their latency into the distribution of record — a load proof
// that silently dropped its failures would overstate the service.
func RunLoadgen(cfg LoadgenConfig) (LoadgenReport, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 64
	}
	if cfg.Requests <= 0 {
		cfg.Requests = cfg.Clients * 4
	}
	if cfg.SpecFor == nil {
		cfg.SpecFor = DefaultSpecFor
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns: cfg.Clients, MaxIdleConnsPerHost: cfg.Clients,
			},
		}
	}
	baseURL := cfg.BaseURL + "/scenarios?wait=1"

	perClient := (cfg.Requests + cfg.Clients - 1) / cfg.Clients
	type sample struct {
		lat   time.Duration
		ok    bool
		st    int
		pri   string
		reqID string
	}
	samples := make([][]sample, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	issued := 0
	for ci := 0; ci < cfg.Clients; ci++ {
		n := perClient
		if rem := cfg.Requests - issued; n > rem {
			n = rem
		}
		issued += n
		if n == 0 {
			break
		}
		wg.Add(1)
		go func(ci, n int) {
			defer wg.Done()
			for seq := 0; seq < n; seq++ {
				spec := cfg.SpecFor(ci, seq)
				pri := cfg.Priority
				if cfg.PriorityFor != nil {
					pri = cfg.PriorityFor(ci, seq)
				}
				url := baseURL
				if pri != "" {
					url += "&priority=" + pri
				}
				if pri == "" {
					pri = "normal"
				}
				body, err := json.Marshal(spec)
				if err != nil {
					samples[ci] = append(samples[ci], sample{ok: false, pri: pri})
					continue
				}
				req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
				if err != nil {
					samples[ci] = append(samples[ci], sample{ok: false, pri: pri})
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				t0 := time.Now()
				resp, err := client.Do(req)
				lat := time.Since(t0)
				s := sample{lat: lat, pri: pri}
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					s.st = resp.StatusCode
					s.ok = resp.StatusCode == http.StatusOK
					// The server mints (or echoes) a request trace ID; keep it
					// so the slowest request can be pulled from the flight
					// recorder afterwards.
					s.reqID = resp.Header.Get("X-Request-Id")
				}
				samples[ci] = append(samples[ci], s)
			}
		}(ci, n)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := LoadgenReport{Clients: cfg.Clients, StatusDist: map[int]int{}}
	var lats []time.Duration
	byPri := map[string][]time.Duration{}
	priOK := map[string]int{}
	for _, cs := range samples {
		for _, s := range cs {
			rep.Requests++
			if s.ok {
				rep.OK++
				priOK[s.pri]++
			} else {
				rep.Errors++
			}
			if s.st != 0 {
				rep.StatusDist[s.st]++
			}
			lats = append(lats, s.lat)
			byPri[s.pri] = append(byPri[s.pri], s.lat)
			if s.reqID != "" && (rep.SlowestID == "" || s.lat > time.Duration(rep.SlowestMS*float64(time.Millisecond))) {
				rep.SlowestID = s.reqID
				rep.SlowestMS = float64(s.lat) / float64(time.Millisecond)
			}
		}
	}
	if rep.Requests == 0 {
		return rep, fmt.Errorf("replica: loadgen issued no requests")
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rep.P50 = quantile(lats, 0.50)
	rep.P99 = quantile(lats, 0.99)
	rep.P50ms = float64(rep.P50) / float64(time.Millisecond)
	rep.P99ms = float64(rep.P99) / float64(time.Millisecond)
	rep.Elapsed = elapsed
	rep.ElapsedSec = elapsed.Seconds()
	rep.Throughput = float64(rep.OK) / elapsed.Seconds()
	rep.ByPriority = map[string]PriorityStats{}
	for pri, ls := range byPri {
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		rep.ByPriority[pri] = PriorityStats{
			Requests: len(ls),
			OK:       priOK[pri],
			P50ms:    float64(quantile(ls, 0.50)) / float64(time.Millisecond),
			P99ms:    float64(quantile(ls, 0.99)) / float64(time.Millisecond),
		}
	}

	if cfg.Registry != nil {
		cfg.Registry.Help("epi_loadgen_latency_seconds", "client-observed request latency")
		h := cfg.Registry.Histogram("epi_loadgen_latency_seconds", nil)
		for _, l := range lats {
			h.Observe(l.Seconds())
		}
		cfg.Registry.Help("epi_loadgen_throughput_rps", "completed requests per second over the run")
		cfg.Registry.Gauge("epi_loadgen_throughput_rps").Set(rep.Throughput)
		cfg.Registry.Help("epi_loadgen_requests_total", "requests issued by the load generator")
		cfg.Registry.Counter("epi_loadgen_requests_total").Add(int64(rep.Requests))
	}
	return rep, nil
}

// quantile reads the q-quantile from sorted latencies (nearest-rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
