package replica

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/scenario"
)

// latencyRunner models a fixed service time that honors cancellation — the
// load-proof stand-in for a real workflow execution. Because the cost is
// latency-bound rather than CPU-bound, adding replicas (and so workers)
// must raise sustained throughput even on a single-core host.
func latencyRunner(d time.Duration) func(int) scenario.Runner {
	return func(int) scenario.Runner {
		return func(ctx context.Context, spec scenario.Spec) (*scenario.Result, error) {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(d):
				return &scenario.Result{}, nil
			}
		}
	}
}

// TestLoadProof is the deterministic short profile behind `make loadtest`:
// 64 concurrent closed-loop clients against a two-replica front door on
// cache-miss traffic, every request 200, latency percentiles ordered, and
// the loadgen metrics published into a registry.
func TestLoadProof(t *testing.T) {
	const clients, requests = 64, 192
	c, err := NewCoordinator(Config{
		Replicas: 2,
		Base: scenario.Config{
			Workers: 2, QueueCap: 128, Fingerprint: "loadproof",
		},
		RunnerFor: latencyRunner(time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = c.Drain(ctx)
	}()
	ts := httptest.NewServer(scenario.NewBackendServer(c))
	defer ts.Close()

	reg := obs.NewRegistry()
	rep, err := RunLoadgen(LoadgenConfig{
		BaseURL: ts.URL, Clients: clients, Requests: requests,
		Priority: "interactive", Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != requests || rep.Errors != 0 {
		t.Fatalf("ok=%d errors=%d dist=%v, want all %d OK", rep.OK, rep.Errors, rep.StatusDist, requests)
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 {
		t.Fatalf("percentiles out of order: p50=%s p99=%s", rep.P50, rep.P99)
	}
	if rep.Throughput <= 0 {
		t.Fatalf("throughput %.2f, want > 0", rep.Throughput)
	}
	// Every request was a distinct spec: the cluster computed all of them.
	// A loaded machine may shed some submissions (429 → client retry →
	// re-submission of the same spec), so Submitted can legitimately exceed
	// the request count; fewer would mean specs accidentally shared a cache
	// entry.
	snap := c.MetricsSnapshot()
	if snap.Submitted < requests {
		t.Fatalf("cluster submitted %d, want ≥ %d cache misses", snap.Submitted, requests)
	}
	t.Logf("load proof: p50=%s p99=%s throughput=%.1f req/s", rep.P50, rep.P99, rep.Throughput)
}

// TestRunLoadgenFixedSpecHitsCache pins the -fixed profile: one identical
// spec from every client rides the single-flight/cache path, so the
// cluster runs it at most a handful of times, not once per request.
func TestRunLoadgenFixedSpecHitsCache(t *testing.T) {
	c, err := NewCoordinator(Config{
		Replicas:  2,
		Base:      scenario.Config{Workers: 1, QueueCap: 32, Fingerprint: "loadfixed"},
		RunnerFor: latencyRunner(time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = c.Drain(ctx)
	}()
	ts := httptest.NewServer(scenario.NewBackendServer(c))
	defer ts.Close()

	fixed := predSpec("VA", 30)
	rep, err := RunLoadgen(LoadgenConfig{
		BaseURL: ts.URL, Clients: 16, Requests: 64,
		SpecFor: func(int, int) scenario.Spec { return fixed },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 64 {
		t.Fatalf("ok=%d dist=%v, want 64", rep.OK, rep.StatusDist)
	}
	snap := c.MetricsSnapshot()
	st := c.ReplicaStatus().(ClusterStatus)
	if snap.Submitted > 2 || st.Dispatched > 2 {
		t.Fatalf("fixed spec executed %d times (dispatched %d), want ≤2 (dedup + shared store)",
			snap.Submitted, st.Dispatched)
	}
}
